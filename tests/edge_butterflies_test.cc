#include "butterfly/edge_butterflies.h"

#include <gtest/gtest.h>

#include "butterfly/butterfly_counting.h"
#include "graph/generators.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MaskOf;

struct BipartiteSetup {
  LabeledGraph g;
  std::vector<VertexId> left, right;
  std::vector<char> in_left, in_right;

  BipartiteSetup(std::size_t nl, std::size_t nr, double p, std::uint64_t seed) {
    g = GenerateRandomBipartite(nl, nr, p, seed);
    for (VertexId v = 0; v < nl; ++v) left.push_back(v);
    for (VertexId v = static_cast<VertexId>(nl); v < nl + nr; ++v) right.push_back(v);
    in_left = MaskOf(g, left);
    in_right = MaskOf(g, right);
  }
};

TEST(EdgeButterfliesTest, SingleButterfly) {
  BipartiteSetup s(2, 2, 1.0, 1);
  auto counts = CountEdgeButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
  ASSERT_EQ(counts.edges.size(), 4u);
  EXPECT_EQ(counts.total, 1u);
  for (std::uint64_t sup : counts.support) EXPECT_EQ(sup, 1u);
}

TEST(EdgeButterfliesTest, CompleteBipartite) {
  // In K_{a,b}, every edge (u, x) is in (a-1)(b-1) butterflies.
  for (std::size_t a : {3u, 4u}) {
    for (std::size_t b : {2u, 5u}) {
      BipartiteSetup s(a, b, 1.0, 2);
      auto counts = CountEdgeButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
      ASSERT_EQ(counts.edges.size(), a * b);
      for (std::uint64_t sup : counts.support) {
        EXPECT_EQ(sup, (a - 1) * (b - 1)) << "a=" << a << " b=" << b;
      }
      EXPECT_EQ(counts.total, a * (a - 1) * b * (b - 1) / 4);
    }
  }
}

TEST(EdgeButterfliesTest, ButterflyFree) {
  // Perfect matching: every edge has support 0.
  std::vector<Edge> edges = {{0, 3}, {1, 4}, {2, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), {0, 0, 0, 1, 1, 1});
  std::vector<VertexId> left = {0, 1, 2}, right = {3, 4, 5};
  auto counts = CountEdgeButterflies(g, left, right, MaskOf(g, left), MaskOf(g, right));
  EXPECT_EQ(counts.total, 0u);
  for (std::uint64_t sup : counts.support) EXPECT_EQ(sup, 0u);
}

TEST(EdgeButterfliesTest, IndexLookup) {
  BipartiteSetup s(3, 3, 1.0, 3);
  auto counts = CountEdgeButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
  EXPECT_GE(counts.IndexOf(0, 3), 0);
  EXPECT_EQ(counts.IndexOf(3, 0), counts.IndexOf(0, 3));  // orientation-free
  EXPECT_EQ(counts.IndexOf(0, 1), -1);  // same-side pair, not an edge of B
}

class EdgeButterflyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdgeButterflyPropertyTest, ConsistentWithVertexCounts) {
  BipartiteSetup s(14, 12, 0.35, GetParam() + 70);
  auto edge_counts = CountEdgeButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
  auto vertex_counts = CountButterflies(s.g, s.left, s.right, s.in_left, s.in_right);

  EXPECT_EQ(edge_counts.total, vertex_counts.total);

  // Each butterfly contains two of a vertex's incident edges, so the edge
  // supports around v sum to 2 * chi(v).
  for (VertexId v = 0; v < s.g.NumVertices(); ++v) {
    std::uint64_t incident = 0;
    for (VertexId u : s.g.Neighbors(v)) {
      std::int64_t idx = edge_counts.IndexOf(v, u);
      if (idx >= 0) incident += edge_counts.support[static_cast<std::size_t>(idx)];
    }
    EXPECT_EQ(incident, 2 * vertex_counts.chi[v]) << "vertex " << v;
  }
}

TEST_P(EdgeButterflyPropertyTest, MatchesBruteForceEnumeration) {
  BipartiteSetup s(9, 8, 0.4, GetParam() + 90);
  auto counts = CountEdgeButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
  // Brute force: enumerate all 2x2 bicliques and accumulate per edge.
  std::vector<std::uint64_t> expected(counts.edges.size(), 0);
  for (std::size_t i = 0; i < s.left.size(); ++i) {
    for (std::size_t j = i + 1; j < s.left.size(); ++j) {
      for (std::size_t x = 0; x < s.right.size(); ++x) {
        for (std::size_t y = x + 1; y < s.right.size(); ++y) {
          VertexId a = s.left[i], b = s.left[j], c = s.right[x], d = s.right[y];
          if (s.g.HasEdge(a, c) && s.g.HasEdge(a, d) && s.g.HasEdge(b, c) &&
              s.g.HasEdge(b, d)) {
            for (auto [u, v] : {std::pair{a, c}, {a, d}, {b, c}, {b, d}}) {
              ++expected[static_cast<std::size_t>(counts.IndexOf(u, v))];
            }
          }
        }
      }
    }
  }
  for (std::size_t e = 0; e < counts.edges.size(); ++e) {
    EXPECT_EQ(counts.support[e], expected[e])
        << "edge (" << counts.edges[e].u << "," << counts.edges[e].v << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeButterflyPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(EdgeButterfliesTest, MasksFilterEdges) {
  BipartiteSetup s(4, 4, 1.0, 5);
  s.in_left[0] = 0;
  auto counts = CountEdgeButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
  EXPECT_EQ(counts.edges.size(), 12u);  // K_{3,4} edges only
  EXPECT_EQ(counts.IndexOf(0, 4), -1);
  for (std::uint64_t sup : counts.support) EXPECT_EQ(sup, 2u * 3u);
}

}  // namespace
}  // namespace bccs
