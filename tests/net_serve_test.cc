// Socket-level integration tests of the TCP front-end (src/net/server.h):
// a real NetServer on an ephemeral loopback port, driven by real sockets.
// THE acceptance property: a mixed query/update workload over 100
// concurrent connections returns answers bit-identical — community hash,
// size, and epoch_of — to a serialized single-stream replay of the same
// items, with every response streamed back on its originating connection
// while the server is still serving (not at drain). Plus the satellite
// guarantees: per-connection epoch views are monotone, a resent request id
// is applied exactly once (idempotent retries), the response keeper evicts
// at capacity, over-limit connections are rejected, and torn/oversize input
// closes cleanly without partial apply. Runs under the `sanitize` ctest
// label (ASan+UBSan and TSan presets).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "eval/serve_engine.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/line_protocol.h"
#include "net/server.h"

namespace bccs {
namespace {

PlantedGraph MakeGraph(std::size_t communities = 5, std::uint64_t seed = 77) {
  PlantedConfig cfg;
  cfg.num_communities = communities;
  cfg.groups_per_community = 2;
  cfg.num_labels = 3;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  cfg.seed = seed;
  return GeneratePlanted(cfg);
}

/// A live server over its own engine: Run() on a background thread,
/// RequestShutdown + join on Stop(). The engine/runner/graph live here so a
/// test is one object.
struct ServerHarness {
  explicit ServerHarness(const PlantedGraph& pg, NetServerOptions nopts = {},
                         std::size_t threads = 2, ServeOptions sopts = {})
      : runner(threads), engine(runner, pg.graph, nullptr, sopts), server(engine, nopts) {
    std::string error;
    if (!server.Start(&error)) {
      ADD_FAILURE() << "server start: " << error;
      return;
    }
    started = true;
    loop = std::thread([this] { result = server.Run(); });
  }

  ~ServerHarness() { Stop(); }

  const BatchResult& Stop() {
    if (started && loop.joinable()) {
      server.RequestShutdown();
      loop.join();
    }
    return result;
  }

  NetClient Connect() {
    NetClient client;
    std::string error;
    EXPECT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
    return client;
  }

  BatchRunner runner;
  ServeEngine engine;
  NetServer server;
  std::thread loop;
  BatchResult result;
  bool started = false;
};

/// One parsed response line of the wire protocol.
struct WireResponse {
  std::string status;  // "ok" | "rej" | "err" | "pong"
  std::uint64_t id = 0;
  char kind = '?';  // 'q' | 'u'
  std::uint64_t epoch = 0;
  std::uint64_t n = 0;          // queries: community size
  std::uint64_t hash = 0;       // queries: community hash
  std::uint64_t inserts = 0;    // updates
  std::uint64_t deletes = 0;    // updates
  std::string raw;
};

bool ParseKeyValue(const std::string& token, const std::string& key, std::uint64_t* out,
                   int base = 10) {
  if (token.rfind(key, 0) != 0) return false;
  *out = std::stoull(token.substr(key.size()), nullptr, base);
  return true;
}

WireResponse ParseResponse(const std::string& line) {
  WireResponse r;
  r.raw = line;
  std::istringstream ss(line);
  ss >> r.status;
  if (r.status == "pong" || r.status == "err") {
    if (r.status == "err") ss >> r.id;
    return r;
  }
  ss >> r.id >> r.kind;
  std::string token;
  while (ss >> token) {
    std::uint64_t v = 0;
    if (ParseKeyValue(token, "epoch=", &v)) {
      r.epoch = v;
    } else if (ParseKeyValue(token, "n=", &v)) {
      r.n = v;
    } else if (ParseKeyValue(token, "h=", &v, 16)) {
      r.hash = v;
    } else if (ParseKeyValue(token, "+", &v)) {
      r.inserts = v;
    } else if (ParseKeyValue(token, "-", &v)) {
      r.deletes = v;
    }
  }
  return r;
}

// --------------------------------------------------------------------------
// Basic roundtrips.

TEST(NetServeTest, PingQueryUpdatePipelinedRoundtrip) {
  PlantedGraph pg = MakeGraph();
  ServerHarness harness(pg);
  NetClient client = harness.Connect();

  // One packet, four requests: the server must frame and answer all of
  // them. Responses arrive in completion order; ids match them back.
  const Edge e = pg.graph.AllEdges()[0];
  ASSERT_TRUE(client.SendRaw("ping\nq 0 1 id=11\nu - " + std::to_string(e.u) + " " +
                             std::to_string(e.v) + " id=12\nq 0 1 id=13\n"));
  bool saw_pong = false;
  WireResponse q1, u1, q2;
  for (int i = 0; i < 4; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    const WireResponse r = ParseResponse(line);
    if (r.status == "pong") {
      saw_pong = true;
    } else if (r.id == 11) {
      q1 = r;
    } else if (r.id == 12) {
      u1 = r;
    } else if (r.id == 13) {
      q2 = r;
    }
  }
  EXPECT_TRUE(saw_pong);
  EXPECT_EQ(q1.status, "ok");
  EXPECT_EQ(q1.kind, 'q');
  EXPECT_EQ(q1.epoch, 1u);  // admitted before the update
  EXPECT_EQ(u1.status, "ok");
  EXPECT_EQ(u1.epoch, 2u);
  EXPECT_EQ(u1.deletes, 1u);
  EXPECT_EQ(q2.epoch, 2u);  // same connection: sees its own update

  const BatchResult& result = harness.Stop();
  EXPECT_EQ(result.epoch_of.size(), 3u);
  ASSERT_EQ(result.updates.size(), 1u);
  EXPECT_TRUE(result.updates[0].applied);
}

// Responses must stream back while the server keeps serving — reading a
// completion and then submitting MORE work on the same connection proves
// the response did not wait for drain (drain only happens at shutdown).
TEST(NetServeTest, CompletionsStreamBeforeDrain) {
  PlantedGraph pg = MakeGraph();
  ServerHarness harness(pg);
  NetClient client = harness.Connect();
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(client.SendLine("q 0 1 id=" + std::to_string(round + 1)));
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line)) << "round " << round;
    const WireResponse r = ParseResponse(line);
    EXPECT_EQ(r.status, "ok");
    EXPECT_EQ(r.id, static_cast<std::uint64_t>(round + 1));
  }
  const BatchResult& result = harness.Stop();
  EXPECT_EQ(result.epoch_of.size(), 5u);
}

TEST(NetServeTest, MalformedLinesAnsweredConnectionStaysUsable) {
  PlantedGraph pg = MakeGraph();
  ServerHarness harness(pg);
  NetClient client = harness.Connect();
  ASSERT_TRUE(client.SendLine("frobnicate the graph"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(ParseResponse(line).status, "err");
  // The framing is still line-aligned: the next request works.
  ASSERT_TRUE(client.SendLine("ping"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "pong");
}

TEST(NetServeTest, QuitFlushesResponsesThenCloses) {
  PlantedGraph pg = MakeGraph();
  ServerHarness harness(pg);
  NetClient client = harness.Connect();
  ASSERT_TRUE(client.SendRaw("q 0 1 id=1\nq 2 3 id=2\nquit\n"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  ASSERT_TRUE(client.ReadLine(&line));
  // Both responses delivered; now the server closes its end.
  EXPECT_FALSE(client.ReadLine(&line));
}

// --------------------------------------------------------------------------
// Engine-level streaming completions (no sockets): the Submit(callback)
// contract the server is built on.

TEST(NetServeTest, EngineCompletionsFireBeforeFinishMultiProducer) {
  PlantedGraph pg = MakeGraph();
  BatchRunner runner(2);
  ServeEngine engine(runner, pg.graph);
  ServeEngine::Stream stream = engine.OpenStream();

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 8;
  std::atomic<int> completed{0};
  std::atomic<std::uint64_t> order_violations{0};
  // Outlives the producer threads: completion callbacks run on workers
  // until Finish, long after the producers have returned.
  std::vector<std::atomic<std::uint64_t>> update_epochs(kProducers);
  std::vector<std::thread> producers;
  std::vector<Edge> edges = pg.graph.AllEdges();
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Program order per producer: delete an edge, then query — the
      // query's completion must observe an epoch at least as new as the
      // update's (the connection-scoped epoch view, DESIGN contract 7).
      std::atomic<std::uint64_t>& update_epoch = update_epochs[static_cast<std::size_t>(p)];
      UpdateRequest del;
      del.updates.push_back({EdgeUpdateKind::kDelete, edges[static_cast<std::size_t>(p)]});
      stream.Submit(std::move(del), [&completed, &update_epoch](const ItemCompletion& done) {
        update_epoch.store(done.epoch);
        completed.fetch_add(1);
      });
      for (int i = 0; i < kPerProducer - 1; ++i) {
        QueryRequest q;
        q.query = BccQuery{0, 1};
        q.lane = i % 2 == 0 ? Lane::kInteractive : Lane::kBulk;
        stream.Submit(std::move(q), [&completed, &update_epoch, &order_violations](
                                        const ItemCompletion& done) {
          // This query was submitted after the same producer's update, so
          // its pinned epoch includes that update — unless the update's own
          // callback has not stored its epoch yet (0), which is vacuously
          // fine.
          if (done.epoch < update_epoch.load()) order_violations.fetch_add(1);
          completed.fetch_add(1);
        });
      }
    });
  }
  for (auto& t : producers) t.join();

  // All completions observable BEFORE Finish: streaming, not batch.
  constexpr int kTotal = kProducers * kPerProducer;
  for (int spin = 0; spin < 20000 && completed.load() < kTotal; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(completed.load(), kTotal);

  BatchResult result = stream.Finish();
  EXPECT_EQ(result.epoch_of.size(), static_cast<std::size_t>(kTotal));
  EXPECT_EQ(result.updates.size(), static_cast<std::size_t>(kProducers));
  EXPECT_EQ(order_violations.load(), 0u);
}

// --------------------------------------------------------------------------
// THE acceptance test: 100 concurrent connections, mixed queries and
// updates, bit-identical to a serialized single-stream replay.

struct SentRequest {
  std::uint64_t id = 0;
  bool is_update = false;
  BccQuery query;      // queries
  Lane lane = Lane::kBulk;
  EdgeUpdate update;   // updates
  WireResponse response;
  bool got_response = false;
};

TEST(NetServeTest, HundredConnectionsMatchSerializedReplay) {
  PlantedGraph pg = MakeGraph(/*communities=*/6, /*seed=*/123);
  const std::vector<Edge> edges = pg.graph.AllEdges();
  constexpr std::size_t kConns = 100;
  constexpr std::size_t kPerConn = 4;
  ASSERT_GE(edges.size(), kConns);

  ServerHarness harness(pg, {}, /*threads=*/2);
  std::mutex merge_mutex;
  std::vector<SentRequest> all;  // merged after join
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kConns);
  for (std::size_t c = 0; c < kConns; ++c) {
    clients.emplace_back([&, c] {
      NetClient client;
      std::string error;
      if (!client.Connect("127.0.0.1", harness.server.port(), &error)) {
        failures.fetch_add(1);
        return;
      }
      // Every 4th connection is a writer: delete its own planted edge, query,
      // re-insert it, query — program order over one connection guarantees
      // the re-insert is valid. The rest are readers on varying vertex pairs
      // and lanes.
      std::vector<SentRequest> mine;
      std::string wire;
      const std::uint64_t base = 1'000'000 + static_cast<std::uint64_t>(c) * 100;
      const std::size_t nv = pg.graph.NumVertices();
      for (std::size_t k = 0; k < kPerConn; ++k) {
        SentRequest req;
        req.id = base + k;
        if (c % 4 == 0 && k % 2 == 0) {
          req.is_update = true;
          req.update.kind = k == 0 ? EdgeUpdateKind::kDelete : EdgeUpdateKind::kInsert;
          req.update.edge = edges[c];
          wire += std::string("u ") + (k == 0 ? "-" : "+") + " " +
                  std::to_string(req.update.edge.u) + " " +
                  std::to_string(req.update.edge.v) + " id=" + std::to_string(req.id) +
                  "\n";
        } else {
          req.query = BccQuery{static_cast<VertexId>((c * 7 + k) % nv),
                               static_cast<VertexId>((c * 13 + k * 5) % nv)};
          req.lane = (c + k) % 2 == 0 ? Lane::kInteractive : Lane::kBulk;
          wire += "q " + std::to_string(req.query.ql) + " " + std::to_string(req.query.qr) +
                  (req.lane == Lane::kInteractive ? " interactive" : " bulk") +
                  " id=" + std::to_string(req.id) + "\n";
        }
        mine.push_back(req);
      }
      if (!client.SendRaw(wire)) {
        failures.fetch_add(1);
        return;
      }
      for (std::size_t k = 0; k < kPerConn; ++k) {
        std::string line;
        if (!client.ReadLine(&line, 120.0)) {
          failures.fetch_add(1);
          return;
        }
        const WireResponse r = ParseResponse(line);
        for (SentRequest& req : mine) {
          if (req.id == r.id) {
            req.response = r;
            req.got_response = true;
            break;
          }
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (SentRequest& req : mine) all.push_back(std::move(req));
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  const BatchResult& live = harness.Stop();
  ASSERT_EQ(all.size(), kConns * kPerConn);
  ASSERT_EQ(live.epoch_of.size(), kConns * kPerConn);

  // Every request got an "ok" response (all updates here are valid by
  // construction), and every applied update owns a unique epoch.
  std::vector<const SentRequest*> applied_updates;
  std::vector<const SentRequest*> queries;
  for (const SentRequest& req : all) {
    ASSERT_TRUE(req.got_response) << "id " << req.id;
    ASSERT_EQ(req.response.status, "ok") << req.response.raw;
    if (req.is_update) {
      applied_updates.push_back(&req);
    } else {
      queries.push_back(&req);
    }
  }
  std::sort(applied_updates.begin(), applied_updates.end(),
            [](const SentRequest* a, const SentRequest* b) {
              return a->response.epoch < b->response.epoch;
            });
  for (std::size_t i = 0; i < applied_updates.size(); ++i) {
    // Applied epochs are exactly 2, 3, ..., K+1: every publish is visible
    // and none is double-counted.
    ASSERT_EQ(applied_updates[i]->response.epoch, i + 2) << "update " << i;
  }

  // Serialized replay on a fresh single-worker engine: apply the updates in
  // epoch order; before each, run every query that reported the pre-update
  // epoch. Answers must match bit-for-bit (hash + size + epoch).
  BatchRunner replay_runner(1);
  ServeEngine replay(replay_runner, pg.graph);
  std::size_t checked = 0;
  const std::uint64_t final_epoch = applied_updates.size() + 1;
  for (std::uint64_t e = 1; e <= final_epoch; ++e) {
    for (const SentRequest* req : queries) {
      if (req->response.epoch != e) continue;
      QueryRequest q;
      q.query = req->query;
      q.lane = req->lane;
      ServeItem item = q;
      BatchResult one = replay.Serve(std::span<const ServeItem>(&item, 1));
      ASSERT_EQ(one.epoch_of[0], e);
      EXPECT_EQ(one.communities[0].Size(), req->response.n) << "id " << req->id;
      EXPECT_EQ(CommunityHash(one.communities[0]), req->response.hash)
          << "id " << req->id << " at epoch " << e;
      ++checked;
    }
    if (e <= applied_updates.size()) {
      UpdateRequest u;
      u.updates.push_back(applied_updates[e - 1]->update);
      ServeItem item = std::move(u);
      BatchResult one = replay.Serve(std::span<const ServeItem>(&item, 1));
      ASSERT_EQ(one.updates.size(), 1u);
      ASSERT_TRUE(one.updates[0].applied) << "replay update at epoch " << e + 1;
      ASSERT_EQ(one.updates[0].epoch, e + 1);
      EXPECT_EQ(one.updates[0].inserts, applied_updates[e - 1]->response.inserts);
      EXPECT_EQ(one.updates[0].deletes, applied_updates[e - 1]->response.deletes);
    }
  }
  EXPECT_EQ(checked, queries.size());  // no query reported an impossible epoch

  // Per-connection epoch view: each connection's responses, in ITS OWN
  // submission order, observe monotonically non-decreasing epochs.
  for (std::size_t c = 0; c < kConns; ++c) {
    const std::uint64_t base = 1'000'000 + static_cast<std::uint64_t>(c) * 100;
    std::uint64_t prev = 0;
    for (std::size_t k = 0; k < kPerConn; ++k) {
      for (const SentRequest& req : all) {
        if (req.id != base + k) continue;
        EXPECT_GE(req.response.epoch, prev) << "conn " << c << " item " << k;
        prev = req.response.epoch;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Idempotent retries.

// The dropped-ack scenario: the update is applied and acknowledged, but the
// client dies before reading the ack. The reconnect-and-resend of the SAME
// id must not double-apply: the keeper replays the kept response, epoch
// unchanged.
TEST(NetServeTest, ResentUpdateIdAppliesExactlyOnce) {
  PlantedGraph pg = MakeGraph();
  const Edge e = pg.graph.AllEdges()[3];
  const std::string update_line =
      "u - " + std::to_string(e.u) + " " + std::to_string(e.v) + " id=777";
  ServerHarness harness(pg);

  WireResponse first;
  {
    NetClient client = harness.Connect();
    ASSERT_TRUE(client.SendLine(update_line));
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
    first = ParseResponse(line);
    ASSERT_EQ(first.status, "ok");
    ASSERT_EQ(first.epoch, 2u);
    // Abrupt close: from the client's view the ack could just as well have
    // been lost in flight.
    client.Close();
  }
  {
    NetClient retry = harness.Connect();
    ASSERT_TRUE(retry.SendLine(update_line));
    std::string line;
    ASSERT_TRUE(retry.ReadLine(&line));
    const WireResponse replayed = ParseResponse(line);
    // Bit-identical replay of the kept response — NOT a re-execution (a
    // re-executed delete of the now-missing edge would come back "rej").
    EXPECT_EQ(replayed.raw, first.raw);
  }

  const BatchResult& result = harness.Stop();
  // Exactly one update reached the engine; the epoch advanced exactly once.
  ASSERT_EQ(result.updates.size(), 1u);
  EXPECT_TRUE(result.updates[0].applied);
  EXPECT_EQ(harness.engine.epoch(), 2u);
  EXPECT_EQ(harness.server.stats().keeper.replayed, 1u);
}

// The torn-send variant: the client writes the update and dies without ever
// reading. Whether or not the first copy reached the engine, the resend
// converges to exactly one apply.
TEST(NetServeTest, RetryAfterSilentDeathAppliesOnce) {
  PlantedGraph pg = MakeGraph();
  const Edge e = pg.graph.AllEdges()[4];
  const std::string update_line =
      "u - " + std::to_string(e.u) + " " + std::to_string(e.v) + " id=888";
  ServerHarness harness(pg);
  {
    NetClient client = harness.Connect();
    ASSERT_TRUE(client.SendLine(update_line));
    client.Close();  // never reads the ack
  }
  NetClient retry = harness.Connect();
  ASSERT_TRUE(retry.SendLine(update_line));
  std::string line;
  ASSERT_TRUE(retry.ReadLine(&line, 120.0));
  const WireResponse r = ParseResponse(line);
  EXPECT_EQ(r.status, "ok");
  EXPECT_EQ(r.epoch, 2u);
  retry.Close();

  const BatchResult& result = harness.Stop();
  ASSERT_EQ(result.updates.size(), 1u);
  EXPECT_TRUE(result.updates[0].applied);
  EXPECT_EQ(harness.engine.epoch(), 2u);
}

// Past keeper capacity the oldest completed ids are evicted and their
// retries re-execute — the documented trade of a bounded keeper.
TEST(NetServeTest, KeeperCapacityEvictionReexecutesOldIds) {
  PlantedGraph pg = MakeGraph();
  NetServerOptions nopts;
  nopts.keeper_capacity = 2;
  ServerHarness harness(pg, nopts);
  NetClient client = harness.Connect();
  for (int id = 1; id <= 5; ++id) {
    ASSERT_TRUE(client.SendLine("q 0 1 id=" + std::to_string(id)));
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
  }
  // id=5 is still kept: replayed. id=1 was evicted: re-executed.
  std::string line;
  ASSERT_TRUE(client.SendLine("q 0 1 id=5"));
  ASSERT_TRUE(client.ReadLine(&line));
  ASSERT_TRUE(client.SendLine("q 0 1 id=1"));
  ASSERT_TRUE(client.ReadLine(&line));
  client.Close();

  harness.Stop();
  const NetServerStats& stats = harness.server.stats();
  EXPECT_EQ(stats.keeper.started, 6u);  // 5 fresh + 1 evicted re-execute
  EXPECT_EQ(stats.keeper.replayed, 1u);
  EXPECT_EQ(stats.keeper.evictions, 4u);  // capacity 2, 6 completions
}

// --------------------------------------------------------------------------
// Connection hygiene.

TEST(NetServeTest, OverCapacityConnectionsAreRejected) {
  PlantedGraph pg = MakeGraph();
  NetServerOptions nopts;
  nopts.max_connections = 2;
  ServerHarness harness(pg, nopts);
  NetClient a = harness.Connect();
  NetClient b = harness.Connect();
  // Make sure both are registered before the third knocks (the accept loop
  // must have seen them).
  std::string line;
  ASSERT_TRUE(a.SendLine("ping"));
  ASSERT_TRUE(a.ReadLine(&line));
  ASSERT_TRUE(b.SendLine("ping"));
  ASSERT_TRUE(b.ReadLine(&line));

  NetClient c = harness.Connect();
  ASSERT_TRUE(c.ReadLine(&line));
  EXPECT_EQ(line, "err 0 server at connection limit");
  EXPECT_FALSE(c.ReadLine(&line));  // closed

  // The admitted connections keep working.
  ASSERT_TRUE(a.SendLine("ping"));
  ASSERT_TRUE(a.ReadLine(&line));
  EXPECT_EQ(line, "pong");
  a.Close();
  b.Close();
  harness.Stop();
  EXPECT_EQ(harness.server.stats().rejected_over_capacity, 1u);
}

TEST(NetServeTest, OversizeLineClosesConnection) {
  PlantedGraph pg = MakeGraph();
  NetServerOptions nopts;
  nopts.max_line_bytes = 64;
  ServerHarness harness(pg, nopts);
  NetClient client = harness.Connect();
  // No terminator within the limit: the frame boundary is lost.
  ASSERT_TRUE(client.SendRaw("q " + std::string(200, '1')));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(ParseResponse(line).status, "err");
  EXPECT_FALSE(client.ReadLine(&line));  // closed after the error
  harness.Stop();
  EXPECT_EQ(harness.server.stats().overlong_closes, 1u);
}

// An abrupt disconnect mid-request: the unterminated fragment must be
// discarded, never parsed — no partial apply.
TEST(NetServeTest, TornMidRequestFragmentNeverApplies) {
  PlantedGraph pg = MakeGraph();
  const Edge e = pg.graph.AllEdges()[5];
  ServerHarness harness(pg);
  {
    NetClient client = harness.Connect();
    // A complete query, then a torn update missing its terminator.
    ASSERT_TRUE(client.SendRaw("q 0 1 id=1\nu - " + std::to_string(e.u) + " " +
                               std::to_string(e.v)));
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));  // the query's response
    EXPECT_EQ(ParseResponse(line).id, 1u);
    client.Close();  // EOF with the fragment pending
  }
  // Barrier: the torn connection's EOF arrived before this ping, and the
  // loop handles connections in registration order within a poll round, so
  // a pong means the EOF has been observed. (stats() must not be polled
  // while the loop runs.)
  {
    NetClient barrier = harness.Connect();
    ASSERT_TRUE(barrier.SendLine("ping"));
    std::string line;
    ASSERT_TRUE(barrier.ReadLine(&line));
    EXPECT_EQ(line, "pong");
  }
  const BatchResult& result = harness.Stop();
  EXPECT_EQ(result.updates.size(), 0u);  // the torn update never reached the engine
  EXPECT_EQ(harness.engine.epoch(), 1u);
  EXPECT_EQ(harness.server.stats().torn_disconnects, 1u);
}

// Graceful shutdown with live connections: in-flight items drain, their
// responses still arrive (the flushed tail), then the server closes.
TEST(NetServeTest, ShutdownDrainsAndFlushesTails) {
  PlantedGraph pg = MakeGraph();
  ServerHarness harness(pg);
  NetClient client = harness.Connect();
  std::string wire;
  for (int id = 1; id <= 10; ++id) wire += "q 0 1 id=" + std::to_string(id) + "\n";
  ASSERT_TRUE(client.SendRaw(wire));
  // Wait for the first response — the loop frames a whole packet's lines in
  // one read, so one response means every line was admitted. Then shut down
  // while later items may still be queued or executing.
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  int got = ParseResponse(line).status == "ok" ? 1 : 0;
  const BatchResult& result = harness.Stop();
  while (client.ReadLine(&line, 5.0)) {
    if (ParseResponse(line).status == "ok") ++got;
  }
  // Every ADMITTED item drained and its response was flushed before close.
  EXPECT_EQ(got, static_cast<int>(result.epoch_of.size()));
  EXPECT_GE(got, 1);
}

}  // namespace
}  // namespace bccs
