#include "tools/arg_parser.h"

#include <gtest/gtest.h>

namespace bccs {
namespace {

TEST(ArgParserTest, EqualsSyntax) {
  ArgParser p = ArgParser::Parse({"--graph=g.txt", "--k1=4", "--b=2.5"});
  EXPECT_EQ(p.GetStringOr("graph", ""), "g.txt");
  EXPECT_EQ(p.GetIntOr("k1", 0), 4);
  EXPECT_DOUBLE_EQ(p.GetDoubleOr("b", 0), 2.5);
}

TEST(ArgParserTest, SpaceSyntax) {
  ArgParser p = ArgParser::Parse({"--graph", "g.txt", "--k1", "4"});
  EXPECT_EQ(p.GetStringOr("graph", ""), "g.txt");
  EXPECT_EQ(p.GetIntOr("k1", 0), 4);
}

TEST(ArgParserTest, BareBooleanFlags) {
  ArgParser p = ArgParser::Parse({"--verify", "--method", "lp"});
  EXPECT_TRUE(p.Has("verify"));
  EXPECT_EQ(p.GetStringOr("method", ""), "lp");
  EXPECT_FALSE(p.Has("missing"));
}

TEST(ArgParserTest, TrailingBareFlag) {
  ArgParser p = ArgParser::Parse({"--graph", "g.txt", "--verbose"});
  EXPECT_TRUE(p.Has("verbose"));
  EXPECT_EQ(p.GetStringOr("verbose", "x"), "");
}

TEST(ArgParserTest, Positional) {
  ArgParser p = ArgParser::Parse({"input.txt", "--k1=3", "output.txt"});
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(ArgParserTest, MalformedNumbers) {
  ArgParser p = ArgParser::Parse({"--k1=abc", "--b=1.2.3", "--empty="});
  EXPECT_FALSE(p.GetInt("k1").has_value());
  EXPECT_FALSE(p.GetDouble("b").has_value());
  EXPECT_FALSE(p.GetInt("empty").has_value());
  EXPECT_EQ(p.GetIntOr("k1", 7), 7);
}

TEST(ArgParserTest, NegativeNumbers) {
  ArgParser p = ArgParser::Parse({"--offset=-5"});
  EXPECT_EQ(p.GetIntOr("offset", 0), -5);
}

TEST(ArgParserTest, UnknownFlags) {
  ArgParser p = ArgParser::Parse({"--graph=g", "--typo=1"});
  auto unknown = p.UnknownFlags({"graph", "k1"});
  EXPECT_EQ(unknown, (std::vector<std::string>{"typo"}));
  EXPECT_TRUE(p.UnknownFlags({"graph", "typo"}).empty());
}

TEST(ArgParserTest, ArgcArgvEntry) {
  const char* argv[] = {"prog", "--k1=2", "file"};
  ArgParser p = ArgParser::Parse(3, argv);
  EXPECT_EQ(p.GetIntOr("k1", 0), 2);
  EXPECT_EQ(p.positional().size(), 1u);
}

TEST(ArgParserTest, LastValueWins) {
  ArgParser p = ArgParser::Parse({"--k1=2", "--k1=5"});
  EXPECT_EQ(p.GetIntOr("k1", 0), 5);
}

}  // namespace
}  // namespace bccs
