#include "bcc/leader_pair.h"

#include <gtest/gtest.h>

#include "butterfly/butterfly_counting.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MaskOf;

struct Figure3Setup {
  Figure3Graph f = MakeFigure3Graph();
  std::vector<VertexId> left, right;
  std::vector<char> in_left, in_right;
  ButterflyCounts counts;

  Figure3Setup() {
    left = {f.ql, f.v1, f.v2, f.v3};
    right = {f.qr, f.u1, f.u2, f.u3, f.u4, f.u5, f.u6, f.u7, f.u9};
    in_left = MaskOf(f.graph, left);
    in_right = MaskOf(f.graph, right);
    counts = CountButterflies(f.graph, left, right, in_left, in_right);
  }
};

TEST(LeaderPairTest, PaperExample5) {
  Figure3Setup s;
  // Left side: bmax = 6, bp = 3, chi(ql) = 0 -> search 1-hop neighbors
  // {v1, v2, v3}; v1 with chi = 6 >= 3 is the leader.
  LeaderState ll = IdentifyLeader(s.f.graph, s.in_left, s.f.ql, 3, 1, s.counts,
                                  s.counts.max_left, s.counts.argmax_left);
  EXPECT_EQ(ll.leader, s.f.v1);
  EXPECT_EQ(ll.chi, 6u);
  // Right side: bmax = 3, chi(qr) = 0 -> 1-hop {u1, u2, u3, u9}; u2 with
  // chi = 3 is the leader ({v1, u2} is the paper's leader pair).
  LeaderState lr = IdentifyLeader(s.f.graph, s.in_right, s.f.qr, 3, 1, s.counts,
                                  s.counts.max_right, s.counts.argmax_right);
  EXPECT_EQ(lr.leader, s.f.u2);
  EXPECT_EQ(lr.chi, 3u);
}

TEST(LeaderPairTest, LeaderBiasedQueryReturnsItself) {
  Figure3Setup s;
  // v1 itself as query: chi(v1) = 6 > bmax/2 = 3, so it is its own leader.
  LeaderState l = IdentifyLeader(s.f.graph, s.in_left, s.f.v1, 3, 1, s.counts,
                                 s.counts.max_left, s.counts.argmax_left);
  EXPECT_EQ(l.leader, s.f.v1);
  EXPECT_EQ(l.chi, 6u);
}

TEST(LeaderPairTest, RhoLimitsSearchRadius) {
  Figure3Setup s;
  // From u9, the butterfly-rich vertices u2/u3 are 1 hop away via qr... u9's
  // neighbors within the right side are {qr, u4, u7} (chi = 0each); at rho=1
  // no vertex with chi >= bp is reachable, so the fallback argmax fires.
  LeaderState l1 = IdentifyLeader(s.f.graph, s.in_right, s.f.u9, 1, 1, s.counts,
                                  s.counts.max_right, s.counts.argmax_right);
  EXPECT_GE(l1.chi, 1u);  // fallback guarantees a valid leader
  // With rho = 2, u2 (distance 2 via qr) is found by the threshold scan.
  LeaderState l2 = IdentifyLeader(s.f.graph, s.in_right, s.f.u9, 2, 1, s.counts,
                                  s.counts.max_right, s.counts.argmax_right);
  EXPECT_EQ(l2.chi, 3u);
}

TEST(LeaderPairTest, FallbackToArgmax) {
  // One butterfly between {0,1} x {2,3}, query 4 is an isolated-ish left
  // vertex connected only to the right vertex 3: no neighbor reaches the
  // threshold within rho, so the argmax fallback must return a valid leader.
  std::vector<Edge> edges = {{0, 2}, {0, 3}, {1, 2}, {1, 3}, {4, 3}};
  LabeledGraph g = LabeledGraph::FromEdges(5, std::move(edges), {0, 0, 1, 1, 0});
  std::vector<VertexId> left = {0, 1, 4}, right = {2, 3};
  auto counts = CountButterflies(g, left, right, MaskOf(g, left), MaskOf(g, right));
  // The left side graph has no homogeneous edges, so a BFS from 4 inside the
  // side finds nothing; fallback must pick the argmax vertex (chi = 1).
  LeaderState l = IdentifyLeader(g, MaskOf(g, left), 4, 2, 1, counts, counts.max_left,
                                 counts.argmax_left);
  EXPECT_EQ(l.chi, 1u);
  EXPECT_TRUE(l.leader == 0 || l.leader == 1);
}

}  // namespace
}  // namespace bccs
