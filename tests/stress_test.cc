// Randomized cross-module stress tests: on arbitrary random labeled graphs
// (not planted, no guarantees), every search must either return a valid
// community or empty, the accelerated variants must agree with the plain
// ones, and no combination of inputs may crash.

#include <random>

#include <gtest/gtest.h>

#include "baselines/ctc.h"
#include "baselines/psa.h"
#include "bcc/exact_search.h"
#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "bcc/verify.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MakeRandomGraph;

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, RandomGraphsRandomQueries) {
  std::mt19937_64 rng(GetParam());
  LabeledGraph g = MakeRandomGraph(30 + rng() % 40, 0.05 + 0.002 * (rng() % 100),
                                   2 + rng() % 3, GetParam() * 7 + 3);
  BcIndex index(g);

  for (int trial = 0; trial < 6; ++trial) {
    VertexId ql = static_cast<VertexId>(rng() % g.NumVertices());
    VertexId qr = static_cast<VertexId>(rng() % g.NumVertices());
    BccQuery q{ql, qr};
    BccParams p{static_cast<std::uint32_t>(rng() % 4), static_cast<std::uint32_t>(rng() % 4),
                1 + rng() % 3};

    Community online = OnlineBcc(g, q, p);
    Community lp = LpBcc(g, q, p);
    EXPECT_EQ(online.vertices, lp.vertices) << "LP must equal Online";

    SearchStats stats;
    G0Result g0 = FindG0(g, q, p, &stats);
    if (!online.Empty()) {
      ASSERT_TRUE(g0.found);
      BccParams resolved = p;
      resolved.k1 = g0.k1;
      resolved.k2 = g0.k2;
      EXPECT_EQ(VerifyBcc(g, online, q, resolved), BccViolation::kNone)
          << "ql=" << ql << " qr=" << qr << " k1=" << p.k1 << " k2=" << p.k2
          << " b=" << p.b << " seed=" << GetParam();
    } else {
      // Online search starting from a found G0 always yields an answer (G0
      // itself is a valid snapshot), so empty implies no G0.
      EXPECT_FALSE(g0.found);
    }

    // The local search never crashes and verifies whenever non-empty.
    Community local = L2pBcc(g, index, q, p);
    if (!local.Empty()) {
      EXPECT_EQ(VerifyBcc(g, local, q, BccParams{1, 1, p.b}), BccViolation::kNone);
    }
  }
}

TEST_P(StressTest, BaselinesNeverCrashAndContainQueries) {
  std::mt19937_64 rng(GetParam() + 500);
  LabeledGraph g = MakeRandomGraph(25 + rng() % 30, 0.05 + 0.004 * (rng() % 60),
                                   2, GetParam() * 31 + 11);
  CtcSearcher ctc(g);
  PsaSearcher psa(g);
  for (int trial = 0; trial < 5; ++trial) {
    VertexId a = static_cast<VertexId>(rng() % g.NumVertices());
    VertexId b = static_cast<VertexId>(rng() % g.NumVertices());
    const VertexId queries[] = {a, b};
    Community c1 = ctc.Search(queries);
    if (!c1.Empty()) {
      EXPECT_TRUE(c1.Contains(a));
      EXPECT_TRUE(c1.Contains(b));
    }
    Community c2 = psa.Search(queries);
    if (!c2.Empty()) {
      EXPECT_TRUE(c2.Contains(a));
      EXPECT_TRUE(c2.Contains(b));
    }
  }
}

TEST_P(StressTest, MbccRandomQueries) {
  std::mt19937_64 rng(GetParam() + 900);
  LabeledGraph g = MakeRandomGraph(40, 0.12, 4, GetParam() * 13 + 29);
  for (int trial = 0; trial < 4; ++trial) {
    MbccQuery q;
    std::size_t m = 2 + rng() % 3;
    for (std::size_t i = 0; i < m; ++i) {
      q.vertices.push_back(static_cast<VertexId>(rng() % g.NumVertices()));
    }
    MbccParams p;
    p.k.assign(m, static_cast<std::uint32_t>(1 + rng() % 3));
    p.b = 1;
    Community online = MbccSearch(g, q, p, OnlineBccOptions());
    Community lp = MbccSearch(g, q, p, LpBccOptions());
    EXPECT_EQ(online.vertices, lp.vertices);
    if (!online.Empty()) {
      EXPECT_EQ(VerifyMbcc(g, online, q.vertices, p.k, p.b), MbccViolation::kNone);
    }
  }
}

TEST_P(StressTest, GreedyVsExactTwoApproximation) {
  std::mt19937_64 rng(GetParam() + 1300);
  LabeledGraph g = MakeRandomGraph(14, 0.4, 2, GetParam() * 3 + 41);
  for (int trial = 0; trial < 4; ++trial) {
    VertexId ql = static_cast<VertexId>(rng() % g.NumVertices());
    VertexId qr = static_cast<VertexId>(rng() % g.NumVertices());
    BccQuery q{ql, qr};
    BccParams p{2, 2, 1};
    auto exact = ExactMinDiameterBcc(g, q, p, 14);
    if (!exact.has_value()) continue;
    Community greedy = OnlineBcc(g, q, p);
    ASSERT_FALSE(greedy.Empty());
    EXPECT_LE(CommunityDiameter(g, greedy), 2 * exact->diameter)
        << "2-approximation violated, seed " << GetParam();
  }
}

TEST_P(StressTest, DegenerateInputs) {
  std::mt19937_64 rng(GetParam());
  LabeledGraph g = MakeRandomGraph(20, 0.2, 2, GetParam() + 7);
  VertexId v = static_cast<VertexId>(rng() % g.NumVertices());
  // Same vertex twice (identical labels): rejected.
  EXPECT_TRUE(OnlineBcc(g, BccQuery{v, v}, BccParams{}).Empty());
  // b = 0 is accepted trivially (no butterfly requirement).
  Community c = OnlineBcc(g, BccQuery{0, 1}, BccParams{1, 1, 0});
  if (!c.Empty() && g.LabelOf(0) != g.LabelOf(1)) {
    EXPECT_EQ(VerifyBcc(g, c, BccQuery{0, 1}, BccParams{1, 1, 0}), BccViolation::kNone);
  }
  // Empty query list for mBCC.
  EXPECT_TRUE(MbccSearch(g, MbccQuery{}, MbccParams{}, LpBccOptions()).Empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace bccs
