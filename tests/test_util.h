#ifndef BCCS_TESTS_TEST_UTIL_H_
#define BCCS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "graph/labeled_graph.h"

namespace bccs::testing {

/// Complete graph K_n, single label.
inline LabeledGraph MakeClique(std::size_t n, Label label = 0) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return LabeledGraph::FromEdges(n, std::move(edges), std::vector<Label>(n, label));
}

/// Path 0-1-...-(n-1), single label.
inline LabeledGraph MakePath(std::size_t n, Label label = 0) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i + 1 < n; ++i) edges.push_back({i, static_cast<VertexId>(i + 1)});
  return LabeledGraph::FromEdges(n, std::move(edges), std::vector<Label>(n, label));
}

/// Cycle on n vertices, single label.
inline LabeledGraph MakeCycle(std::size_t n, Label label = 0) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i < n; ++i) {
    edges.push_back({i, static_cast<VertexId>((i + 1) % n)});
  }
  return LabeledGraph::FromEdges(n, std::move(edges), std::vector<Label>(n, label));
}

/// Random G(n, p) with labels round-robin over `num_labels`.
inline LabeledGraph MakeRandomGraph(std::size_t n, double p, std::size_t num_labels,
                                    std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(p);
  std::vector<Edge> edges;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      if (coin(rng)) edges.push_back({i, j});
    }
  }
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v] = static_cast<Label>(v % num_labels);
  return LabeledGraph::FromEdges(n, std::move(edges), std::move(labels));
}

/// Membership mask over graph vertices.
inline std::vector<char> MaskOf(const LabeledGraph& g, const std::vector<VertexId>& members) {
  std::vector<char> mask(g.NumVertices(), 0);
  for (VertexId v : members) mask[v] = 1;
  return mask;
}

/// All vertex ids of the graph.
inline std::vector<VertexId> AllVertices(const LabeledGraph& g) {
  std::vector<VertexId> all(g.NumVertices());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

/// Reference coreness: repeatedly removes a minimum-degree vertex.
inline std::vector<std::uint32_t> NaiveCoreness(const LabeledGraph& g,
                                                const std::vector<VertexId>& members) {
  std::vector<char> in_set = MaskOf(g, members);
  std::vector<std::uint32_t> core(g.NumVertices(), 0);
  std::vector<VertexId> remaining = members;
  std::uint32_t k = 0;
  while (!remaining.empty()) {
    auto degree = [&](VertexId v) {
      std::uint32_t d = 0;
      for (VertexId w : g.Neighbors(v)) d += in_set[w];
      return d;
    };
    auto it = std::min_element(remaining.begin(), remaining.end(),
                               [&](VertexId a, VertexId b) { return degree(a) < degree(b); });
    VertexId v = *it;
    k = std::max(k, degree(v));
    core[v] = k;
    in_set[v] = 0;
    remaining.erase(it);
  }
  return core;
}

/// Reference per-vertex butterfly degree by brute-force 2x2 enumeration over
/// explicit vertex lists.
inline std::vector<std::uint64_t> NaiveButterflies(const LabeledGraph& g,
                                                   const std::vector<VertexId>& left,
                                                   const std::vector<VertexId>& right) {
  std::vector<std::uint64_t> chi(g.NumVertices(), 0);
  auto has_cross = [&](VertexId a, VertexId b) { return g.HasEdge(a, b); };
  for (std::size_t i = 0; i < left.size(); ++i) {
    for (std::size_t j = i + 1; j < left.size(); ++j) {
      for (std::size_t x = 0; x < right.size(); ++x) {
        for (std::size_t y = x + 1; y < right.size(); ++y) {
          if (has_cross(left[i], right[x]) && has_cross(left[i], right[y]) &&
              has_cross(left[j], right[x]) && has_cross(left[j], right[y])) {
            ++chi[left[i]];
            ++chi[left[j]];
            ++chi[right[x]];
            ++chi[right[y]];
          }
        }
      }
    }
  }
  return chi;
}

}  // namespace bccs::testing

#endif  // BCCS_TESTS_TEST_UTIL_H_
