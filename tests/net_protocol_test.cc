// Wire-protocol codec: the parser and line framing of the socket front-end
// (src/net/line_protocol.h) plus the idempotent-retry ResponseKeeper
// (src/net/response_keeper.h) — all byte-in/byte-out, no sockets. The
// load-bearing properties: framing is chunking-independent (1-byte torn
// reads reassemble identically to one big read), a malformed line is a
// clean per-line error (never a crash, never a partial apply), an overlong
// line forces a close because the frame boundary itself is lost, and the
// keeper executes each request id exactly once no matter how it is retried.
// Runs under the `sanitize` ctest label (ASan+UBSan and TSan presets).

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/line_protocol.h"
#include "net/response_keeper.h"

namespace bccs {
namespace {

constexpr std::size_t kVertices = 100;

NetParseStatus Parse(const std::string& line, NetRequest* out, std::string* error) {
  return ParseNetRequest(line, kVertices, out, error);
}

// --------------------------------------------------------------------------
// ParseNetRequest: the strict request grammar.

TEST(NetProtocolTest, ParsesQueryWithDefaults) {
  NetRequest req;
  std::string error;
  ASSERT_EQ(Parse("q 3 7", &req, &error), NetParseStatus::kOk);
  EXPECT_EQ(req.kind, NetRequestKind::kQuery);
  EXPECT_EQ(req.ql, 3u);
  EXPECT_EQ(req.qr, 7u);
  EXPECT_EQ(req.lane, Lane::kBulk);
  EXPECT_EQ(req.id, 0u);
}

TEST(NetProtocolTest, ParsesQueryLaneAndId) {
  NetRequest req;
  std::string error;
  ASSERT_EQ(Parse("q 3 7 interactive id=42", &req, &error), NetParseStatus::kOk);
  EXPECT_EQ(req.lane, Lane::kInteractive);
  EXPECT_EQ(req.id, 42u);
  ASSERT_EQ(Parse("q 3 7 b", &req, &error), NetParseStatus::kOk);
  EXPECT_EQ(req.lane, Lane::kBulk);
  ASSERT_EQ(Parse("q 3 7 id=9", &req, &error), NetParseStatus::kOk);
  EXPECT_EQ(req.lane, Lane::kBulk);
  EXPECT_EQ(req.id, 9u);
}

TEST(NetProtocolTest, ParsesUpdateCanonicalizesEdge) {
  NetRequest req;
  std::string error;
  ASSERT_EQ(Parse("u + 9 4 id=7", &req, &error), NetParseStatus::kOk);
  EXPECT_EQ(req.kind, NetRequestKind::kUpdate);
  EXPECT_EQ(req.update.kind, EdgeUpdateKind::kInsert);
  EXPECT_EQ(req.update.edge.u, 4u);  // min/max canonical order
  EXPECT_EQ(req.update.edge.v, 9u);
  EXPECT_EQ(req.id, 7u);
  ASSERT_EQ(Parse("u - 1 2", &req, &error), NetParseStatus::kOk);
  EXPECT_EQ(req.update.kind, EdgeUpdateKind::kDelete);
}

TEST(NetProtocolTest, BlankAndCommentLinesAreIgnored) {
  NetRequest req;
  std::string error;
  EXPECT_EQ(Parse("", &req, &error), NetParseStatus::kBlank);
  EXPECT_EQ(Parse("   \t  ", &req, &error), NetParseStatus::kBlank);
  EXPECT_EQ(Parse("# a comment", &req, &error), NetParseStatus::kBlank);
}

TEST(NetProtocolTest, PingAndQuitTakeNoArguments) {
  NetRequest req;
  std::string error;
  EXPECT_EQ(Parse("ping", &req, &error), NetParseStatus::kOk);
  EXPECT_EQ(req.kind, NetRequestKind::kPing);
  EXPECT_EQ(Parse("quit", &req, &error), NetParseStatus::kOk);
  EXPECT_EQ(req.kind, NetRequestKind::kQuit);
  EXPECT_EQ(Parse("ping now", &req, &error), NetParseStatus::kError);
  EXPECT_EQ(Parse("quit 1", &req, &error), NetParseStatus::kError);
}

// Every malformed line must come back kError with a reason — never crash,
// never misparse as a different request.
TEST(NetProtocolTest, MalformedLinesAreCleanErrors) {
  const std::vector<std::string> bad = {
      "bogus",
      "q",
      "q 1",
      "q 1 2 3",             // numeric lane
      "q one two",
      "q -1 2",              // sign rejected by strict u64 parse
      "q +1 2",
      "q 1 2 warp",          // unknown lane
      "q 1 2 bulk id=0",     // id must be positive
      "q 1 2 id=abc",
      "q 1 2 id=3 trailing",
      "q 1 2 bulk 9",
      "q 999 1",             // vertex out of range
      "q 1 100",             // == num_vertices: out of range
      "u",
      "u + 1",
      "u * 1 2",             // bad sign
      "u + 1 2 3",           // trailing junk
      "u + a b",
      "u + 1 999",
      "u + 1 2 id=",
      "q 18446744073709551616 1",  // u64 overflow
  };
  for (const std::string& line : bad) {
    NetRequest req;
    std::string error;
    EXPECT_EQ(Parse(line, &req, &error), NetParseStatus::kError) << "line: " << line;
    EXPECT_FALSE(error.empty()) << "line: " << line;
  }
}

// Garbage bytes — including invalid UTF-8 and embedded controls — must be a
// clean per-line error, not a crash or a half-parse.
TEST(NetProtocolTest, GarbageBytesAreCleanErrors) {
  std::vector<std::string> garbage = {
      std::string("\xff\xfe\x80\x80"),          // invalid UTF-8
      std::string("q \xc3\x28 2"),              // invalid UTF-8 inside a token
      std::string("q\x01 1 2"),                 // control byte glued to the kind
      std::string("u + 1\x07 2"),               // control byte inside a number
      std::string(3, '\0') + "q 1 2",           // NULs
      std::string("\xf0\x9f\x92\xa9 dump"),     // valid UTF-8, invalid request
  };
  for (const std::string& line : garbage) {
    NetRequest req;
    std::string error;
    EXPECT_EQ(Parse(line, &req, &error), NetParseStatus::kError);
    EXPECT_FALSE(error.empty());
  }
}

// Property check over random byte soup: the parser never crashes and never
// returns kOk for lines that aren't plausibly well-formed requests.
TEST(NetProtocolTest, RandomByteSoupNeverCrashes) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> len_dist(0, 60);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string line;
    const int len = len_dist(rng);
    for (int i = 0; i < len; ++i) {
      char c = static_cast<char>(byte_dist(rng));
      if (c == '\n') c = ' ';  // the framing layer strips terminators
      line.push_back(c);
    }
    NetRequest req;
    std::string error;
    const NetParseStatus status = Parse(line, &req, &error);
    if (status == NetParseStatus::kOk) {
      // A random line that parses must at least be a known kind with
      // in-range vertices.
      if (req.kind == NetRequestKind::kQuery) {
        EXPECT_LT(req.ql, kVertices);
        EXPECT_LT(req.qr, kVertices);
      }
    } else if (status == NetParseStatus::kError) {
      EXPECT_FALSE(error.empty());
    }
  }
}

// --------------------------------------------------------------------------
// LineSplitter: chunking-independent framing.

std::vector<std::string> SplitAll(LineSplitter& splitter) {
  std::vector<std::string> lines;
  std::string line;
  while (splitter.Next(&line)) lines.push_back(line);
  return lines;
}

TEST(NetProtocolTest, SplitterReassemblesOneByteReads) {
  const std::string wire = "q 1 2\nu + 3 4 id=9\r\nping\nq 5 6 interactive\n";
  LineSplitter whole(4096);
  ASSERT_TRUE(whole.Feed(wire));
  const std::vector<std::string> expected = SplitAll(whole);
  ASSERT_EQ(expected.size(), 4u);
  EXPECT_EQ(expected[1], "u + 3 4 id=9");  // '\r' stripped

  // The same bytes one at a time — the torn-read extreme — must frame
  // identically.
  LineSplitter torn(4096);
  std::vector<std::string> got;
  for (char c : wire) {
    ASSERT_TRUE(torn.Feed(std::string_view(&c, 1)));
    std::string line;
    while (torn.Next(&line)) got.push_back(line);
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(torn.pending_bytes(), 0u);
}

// Chunk the same byte stream at random boundaries many ways: every chunking
// must produce the identical line sequence.
TEST(NetProtocolTest, SplitterIsChunkingIndependent) {
  std::string wire;
  for (int i = 0; i < 200; ++i) {
    wire += "q " + std::to_string(i % kVertices) + " " +
            std::to_string((i * 7) % kVertices) + " id=" + std::to_string(i + 1) + "\n";
  }
  LineSplitter whole(4096);
  ASSERT_TRUE(whole.Feed(wire));
  const std::vector<std::string> expected = SplitAll(whole);
  ASSERT_EQ(expected.size(), 200u);

  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    LineSplitter chunked(4096);
    std::vector<std::string> got;
    std::size_t off = 0;
    std::uniform_int_distribution<std::size_t> chunk_dist(1, 37);
    while (off < wire.size()) {
      const std::size_t n = std::min(chunk_dist(rng), wire.size() - off);
      ASSERT_TRUE(chunked.Feed(std::string_view(wire).substr(off, n)));
      off += n;
      std::string line;
      while (chunked.Next(&line)) got.push_back(line);
    }
    ASSERT_EQ(got, expected) << "trial " << trial;
  }
}

// Many pipelined requests arriving in ONE packet all frame out immediately.
TEST(NetProtocolTest, SplitterHandlesPipelinedPacket) {
  LineSplitter splitter(4096);
  ASSERT_TRUE(splitter.Feed("ping\nq 1 2\nu - 3 4\nquit\n"));
  const std::vector<std::string> lines = SplitAll(splitter);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "ping");
  EXPECT_EQ(lines[3], "quit");
}

TEST(NetProtocolTest, SplitterRejectsOverlongLine) {
  LineSplitter splitter(16);
  // A terminated line within the limit is fine even when fed with a long tail.
  ASSERT_TRUE(splitter.Feed("q 1 2\n"));
  // An un-terminated line can dribble in up to the limit...
  ASSERT_TRUE(splitter.Feed(std::string(16, 'x')));
  // ...but one more byte without a terminator loses the frame boundary.
  EXPECT_FALSE(splitter.Feed("y"));
}

TEST(NetProtocolTest, SplitterOverlongDetectsAcrossChunks) {
  LineSplitter splitter(32);
  bool ok = true;
  for (int i = 0; i < 100 && ok; ++i) ok = splitter.Feed("aaaa");
  EXPECT_FALSE(ok);
}

// An abrupt disconnect mid-request leaves a fragment that must be
// detectable (and discarded) — pending_bytes is the EOF-time check.
TEST(NetProtocolTest, PendingBytesExposesTornTail) {
  LineSplitter splitter(4096);
  ASSERT_TRUE(splitter.Feed("q 1 2\nu + 3"));
  std::string line;
  ASSERT_TRUE(splitter.Next(&line));
  EXPECT_EQ(line, "q 1 2");
  EXPECT_FALSE(splitter.Next(&line));
  EXPECT_EQ(splitter.pending_bytes(), 5u);  // "u + 3" must never parse
}

// The lazy compaction path: a long-lived connection's buffer must not grow
// with total traffic.
TEST(NetProtocolTest, SplitterCompactsLongLivedBuffers) {
  LineSplitter splitter(64);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(splitter.Feed("q 1 2\n"));
    std::string line;
    ASSERT_TRUE(splitter.Next(&line));
    EXPECT_EQ(line, "q 1 2");
    EXPECT_FALSE(splitter.Next(&line));
  }
  EXPECT_EQ(splitter.pending_bytes(), 0u);
}

// --------------------------------------------------------------------------
// Response formatting.

TEST(NetProtocolTest, FormatsResponses) {
  Community c;
  c.vertices = {3, 5, 9};
  const std::string q = FormatQueryResponse(42, 7, c);
  EXPECT_EQ(q.substr(0, 20), "ok 42 q epoch=7 n=3 ");
  EXPECT_NE(q.find("h="), std::string::npos);

  UpdateOutcome applied;
  applied.applied = true;
  applied.epoch = 9;
  applied.inserts = 1;
  applied.deletes = 0;
  EXPECT_EQ(FormatUpdateResponse(8, applied), "ok 8 u epoch=9 +1 -0");

  UpdateOutcome rejected;
  rejected.applied = false;
  rejected.epoch = 9;
  rejected.error = "duplicate edge";
  EXPECT_EQ(FormatUpdateResponse(8, rejected), "rej 8 u epoch=9 duplicate edge");

  EXPECT_EQ(FormatErrorResponse(0, "nope"), "err 0 nope");
}

TEST(NetProtocolTest, CommunityHashDependsOnMembers) {
  Community a;
  a.vertices = {1, 2, 3};
  Community b;
  b.vertices = {1, 2, 4};
  Community c;
  c.vertices = {1, 2, 3};
  EXPECT_NE(CommunityHash(a), CommunityHash(b));
  EXPECT_EQ(CommunityHash(a), CommunityHash(c));
  // Size is part of the identity: {} vs {0} differ even though FNV over no
  // members could collide with a zero member otherwise.
  Community empty;
  Community zero;
  zero.vertices = {0};
  EXPECT_NE(CommunityHash(empty), CommunityHash(zero));
}

// --------------------------------------------------------------------------
// ResponseKeeper: exactly-once execution per id.

TEST(NetProtocolTest, KeeperStartsCompletesReplays) {
  ResponseKeeper keeper(8);
  std::vector<std::string> delivered;
  auto deliver = [&delivered](const std::string& r) { delivered.push_back(r); };

  ASSERT_EQ(keeper.StartRequest(1, deliver), ResponseKeeper::Start::kStarted);
  // A retry while the first execution is in flight attaches — it must NOT
  // re-execute.
  ASSERT_EQ(keeper.StartRequest(1, deliver), ResponseKeeper::Start::kAttached);
  EXPECT_TRUE(delivered.empty());

  keeper.CompleteRequest(1, "ok 1 u epoch=2 +1 -0");
  ASSERT_EQ(delivered.size(), 2u);  // original + attached retry
  EXPECT_EQ(delivered[0], delivered[1]);

  // A retry after completion replays the kept response immediately.
  ASSERT_EQ(keeper.StartRequest(1, deliver), ResponseKeeper::Start::kReplayed);
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[2], "ok 1 u epoch=2 +1 -0");

  const ResponseKeeper::Stats stats = keeper.stats();
  EXPECT_EQ(stats.started, 1u);
  EXPECT_EQ(stats.attached, 1u);
  EXPECT_EQ(stats.replayed, 1u);
}

TEST(NetProtocolTest, KeeperEvictsOldestCompletedAtCapacity) {
  ResponseKeeper keeper(2);
  auto noop = [](const std::string&) {};
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_EQ(keeper.StartRequest(id, noop), ResponseKeeper::Start::kStarted);
    keeper.CompleteRequest(id, "resp" + std::to_string(id));
  }
  const ResponseKeeper::Stats stats = keeper.stats();
  EXPECT_EQ(stats.completed_entries, 2u);
  EXPECT_EQ(stats.evictions, 3u);
  // Ids 4 and 5 are kept; 1–3 were evicted, so their retries re-execute.
  EXPECT_EQ(keeper.StartRequest(5, noop), ResponseKeeper::Start::kReplayed);
  EXPECT_EQ(keeper.StartRequest(4, noop), ResponseKeeper::Start::kReplayed);
  EXPECT_EQ(keeper.StartRequest(1, noop), ResponseKeeper::Start::kStarted);
}

TEST(NetProtocolTest, KeeperNeverEvictsPendingEntries) {
  ResponseKeeper keeper(1);
  auto noop = [](const std::string&) {};
  // Two pending ids with capacity 1: both stay (pending is bounded by the
  // stream's in-flight items, not the keeper).
  ASSERT_EQ(keeper.StartRequest(1, noop), ResponseKeeper::Start::kStarted);
  ASSERT_EQ(keeper.StartRequest(2, noop), ResponseKeeper::Start::kStarted);
  EXPECT_EQ(keeper.stats().pending_entries, 2u);
  keeper.CompleteRequest(1, "a");
  keeper.CompleteRequest(2, "b");
  // Capacity 1: id 1's response was evicted when id 2 completed.
  EXPECT_EQ(keeper.StartRequest(2, noop), ResponseKeeper::Start::kReplayed);
  EXPECT_EQ(keeper.StartRequest(1, noop), ResponseKeeper::Start::kStarted);
}

// Concurrent retries of the same id from many threads: exactly one caller
// wins kStarted; everyone receives the same response exactly once.
TEST(NetProtocolTest, KeeperConcurrentRetriesExecuteOnce) {
  ResponseKeeper keeper(64);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kId = 99;
  std::atomic<int> started{0};
  std::atomic<int> delivered{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&keeper, &started, &delivered] {
      const ResponseKeeper::Start s = keeper.StartRequest(
          kId, [&delivered](const std::string& r) {
            EXPECT_EQ(r, "the-response");
            delivered.fetch_add(1);
          });
      if (s == ResponseKeeper::Start::kStarted) {
        started.fetch_add(1);
        keeper.CompleteRequest(kId, "the-response");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(started.load(), 1);
  EXPECT_EQ(delivered.load(), kThreads);
}

}  // namespace
}  // namespace bccs
