// End-to-end checks against every worked example in the paper, on the
// reconstructed Figure 1/2 and Figure 3 instances.

#include <gtest/gtest.h>

#include "bcc/online_search.h"
#include "bcc/query_distance.h"
#include "bcc/verify.h"
#include "butterfly/butterfly_counting.h"
#include "core/core_decomposition.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MaskOf;

TEST(PaperExamplesTest, Example1ButterflyDegreeOfQr) {
  // "There exists a unique butterfly B containing the vertex qr. Thus, the
  // butterfly degree of qr is chi(qr) = 1."
  Figure1Graph f = MakeFigure1Graph();
  G0Result g0 = FindG0(f.graph, BccQuery{f.ql, f.qr}, BccParams{4, 3, 1}, nullptr);
  ASSERT_TRUE(g0.found);
  EXPECT_EQ(g0.counts.chi[f.qr], 1u);
}

TEST(PaperExamplesTest, Example2FourThreeOneBcc) {
  // "Figure 2 shows a (4, 3, 1)-BCC ... chi(ql) = chi(qr) = 1."
  Figure1Graph f = MakeFigure1Graph();
  Community c{f.expected_bcc};
  EXPECT_EQ(VerifyBcc(f.graph, c, BccQuery{f.ql, f.qr}, BccParams{4, 3, 1}),
            BccViolation::kNone);
}

TEST(PaperExamplesTest, Example3SearchAnswer) {
  // "Assume that the inputs Q = {ql, qr}, k1 = 4, k2 = 3, and b = 1. The
  // answer is the (4, 3, 1)-butterfly-core community ... shown in Figure 2."
  Figure1Graph f = MakeFigure1Graph();
  EXPECT_EQ(OnlineBcc(f.graph, BccQuery{f.ql, f.qr}, BccParams{4, 3, 1}).vertices,
            f.expected_bcc);
}

TEST(PaperExamplesTest, Example4FastDistanceUpdateSets) {
  // Example 4 walks Algorithm 5 after deleting u9: for ql, S_u is empty; for
  // qr, d_min = 1, S_s = {u1, u2, u3} and S_u = {ql, v1, v2, v3, u4, u5,
  // u6, u7}.
  Figure3Graph f = MakeFigure3Graph();
  const LabeledGraph& g = f.graph;
  std::vector<char> alive(g.NumVertices(), 1);
  std::vector<std::uint32_t> dl, dr;
  BfsDistances(g, alive, f.ql, &dl);
  BfsDistances(g, alive, f.qr, &dr);

  // u9 is the unique farthest vertex from Q (dist 4 from ql).
  std::uint32_t max_qd = 0;
  VertexId farthest = kInvalidVertex;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::uint32_t qd = std::max(dl[v], dr[v]);
    if (qd > max_qd) {
      max_qd = qd;
      farthest = v;
    }
  }
  EXPECT_EQ(farthest, f.u9);
  EXPECT_EQ(max_qd, 4u);

  // For ql: d_min = dist(u9, ql) = 4 is the maximum, so no vertex has a
  // larger distance (S_u = empty set).
  std::uint32_t count_beyond = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (v != f.u9 && dl[v] > 4) ++count_beyond;
  }
  EXPECT_EQ(count_beyond, 0u);

  // For qr: d_min = 1 and S_u has exactly 8 members.
  EXPECT_EQ(dr[f.u9], 1u);
  std::vector<VertexId> su;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (v != f.u9 && dr[v] > 1) su.push_back(v);
  }
  std::vector<VertexId> expected_su = {f.ql, f.v1, f.v2, f.v3, f.u4, f.u5, f.u6, f.u7};
  std::sort(expected_su.begin(), expected_su.end());
  EXPECT_EQ(su, expected_su);
}

TEST(PaperExamplesTest, Example5LeaderPairIsV1U2) {
  // Covered in detail by leader_pair_test; assert the headline here: the
  // leader pair of Figure 3 is {v1, u2}.
  Figure3Graph f = MakeFigure3Graph();
  std::vector<VertexId> left = {f.ql, f.v1, f.v2, f.v3};
  std::vector<VertexId> right = {f.qr, f.u1, f.u2, f.u3, f.u4, f.u5, f.u6, f.u7, f.u9};
  auto counts =
      CountButterflies(f.graph, left, right, MaskOf(f.graph, left), MaskOf(f.graph, right));
  EXPECT_EQ(counts.max_left, 6u);
  EXPECT_EQ(counts.max_right, 3u);
  EXPECT_TRUE(counts.argmax_left == f.v1 || counts.argmax_left == f.v3);
  EXPECT_TRUE(counts.argmax_right == f.u2 || counts.argmax_right == f.u3 ||
              counts.argmax_right == f.u5 || counts.argmax_right == f.u6);
}

TEST(PaperExamplesTest, Example6UpdatedDegrees) {
  // "the updated butterfly degree is chi(u2) = 3 - 1 = 2 ... chi(v1) =
  // 6 - 3 = 3": verified by recounting after actually deleting u6.
  Figure3Graph f = MakeFigure3Graph();
  std::vector<VertexId> left = {f.ql, f.v1, f.v2, f.v3};
  std::vector<VertexId> right = {f.qr, f.u1, f.u2, f.u3, f.u4, f.u5, f.u6, f.u7, f.u9};
  auto in_left = MaskOf(f.graph, left);
  auto in_right = MaskOf(f.graph, right);
  in_right[f.u9] = 0;  // Example 6 happens after u9 was deleted
  in_right[f.u6] = 0;  // delete u6
  auto counts = CountButterflies(f.graph, left, right, in_left, in_right);
  EXPECT_EQ(counts.chi[f.u2], 2u);
  EXPECT_EQ(counts.chi[f.v1], 3u);
}

TEST(PaperExamplesTest, Figure1WholeGraphMinDegreeThree) {
  // "Each vertex on G has a degree of at least 3" (Section 1).
  Figure1Graph f = MakeFigure1Graph();
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    EXPECT_GE(f.graph.Degree(v), 3u) << "vertex " << v;
  }
}

TEST(PaperExamplesTest, Figure1CoreValues) {
  // "the maximum core value of ql, qr are 4 and 3 respectively" — within
  // their label groups (the coreness the BCC model uses).
  Figure1Graph f = MakeFigure1Graph();
  auto core = LabelCoreness(f.graph);
  EXPECT_EQ(core[f.ql], 4u);
  EXPECT_EQ(core[f.qr], 3u);
}

TEST(PaperExamplesTest, Figure2SidesAreCores) {
  // "L is a 4-core ... R is the 3-core" — inside the answer, every left
  // vertex has >= 4 same-label neighbors and every right vertex >= 3.
  Figure1Graph f = MakeFigure1Graph();
  auto mask = MaskOf(f.graph, f.expected_bcc);
  for (VertexId v : f.expected_bcc) {
    std::uint32_t same = 0;
    for (VertexId w : f.graph.Neighbors(v)) {
      if (mask[w] && f.graph.LabelOf(w) == f.graph.LabelOf(v)) ++same;
    }
    if (f.graph.LabelOf(v) == f.se) {
      EXPECT_GE(same, 4u);
    } else {
      EXPECT_GE(same, 3u);
    }
  }
}

}  // namespace
}  // namespace bccs
