#include "butterfly/butterfly_counting.h"

#include <gtest/gtest.h>

#include "butterfly/butterfly_update.h"
#include "graph/generators.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MaskOf;
using testing::NaiveButterflies;

// Complete bipartite K_{a,b}: a left vertex sits in (a-1) * C(b,2)
// butterflies; total = C(a,2) * C(b,2).
TEST(ButterflyCountingTest, CompleteBipartite) {
  for (std::size_t a : {2u, 3u, 5u}) {
    for (std::size_t b : {2u, 4u}) {
      LabeledGraph g = GenerateRandomBipartite(a, b, 1.0, 1);
      std::vector<VertexId> left, right;
      for (VertexId v = 0; v < a; ++v) left.push_back(v);
      for (VertexId v = 0; v < b; ++v) right.push_back(static_cast<VertexId>(a + v));
      auto counts = CountButterflies(g, left, right, MaskOf(g, left), MaskOf(g, right));
      auto choose2 = [](std::size_t n) { return n * (n - 1) / 2; };
      for (VertexId v : left) {
        EXPECT_EQ(counts.chi[v], (a - 1) * choose2(b)) << "a=" << a << " b=" << b;
      }
      for (VertexId v : right) {
        EXPECT_EQ(counts.chi[v], (b - 1) * choose2(a)) << "a=" << a << " b=" << b;
      }
      EXPECT_EQ(counts.total, choose2(a) * choose2(b));
    }
  }
}

TEST(ButterflyCountingTest, SingleButterfly) {
  LabeledGraph g = GenerateRandomBipartite(2, 2, 1.0, 1);
  std::vector<VertexId> left = {0, 1}, right = {2, 3};
  auto counts = CountButterflies(g, left, right, MaskOf(g, left), MaskOf(g, right));
  EXPECT_EQ(counts.total, 1u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(counts.chi[v], 1u);
  EXPECT_EQ(counts.max_left, 1u);
  EXPECT_EQ(counts.max_right, 1u);
}

TEST(ButterflyCountingTest, NoButterflyInTree) {
  // A star from one left vertex has no 2x2 biclique.
  std::vector<Edge> edges = {{0, 2}, {0, 3}, {1, 2}};
  LabeledGraph g = LabeledGraph::FromEdges(4, std::move(edges), {0, 0, 1, 1});
  std::vector<VertexId> left = {0, 1}, right = {2, 3};
  auto counts = CountButterflies(g, left, right, MaskOf(g, left), MaskOf(g, right));
  EXPECT_EQ(counts.total, 0u);
  EXPECT_EQ(counts.max_left, 0u);
}

TEST(ButterflyCountingTest, MasksExcludeDeadVertices) {
  LabeledGraph g = GenerateRandomBipartite(3, 3, 1.0, 1);  // K_{3,3}
  std::vector<VertexId> left = {0, 1, 2}, right = {3, 4, 5};
  auto in_left = MaskOf(g, left);
  auto in_right = MaskOf(g, right);
  in_left[2] = 0;  // kill one left vertex -> K_{2,3}
  auto counts = CountButterflies(g, left, right, in_left, in_right);
  EXPECT_EQ(counts.total, 3u);  // C(2,2)*C(3,2)
  EXPECT_EQ(counts.chi[2], 0u);
}

TEST(ButterflyCountingTest, PaperFigure3Degrees) {
  Figure3Graph f = MakeFigure3Graph();
  std::vector<VertexId> left = {f.ql, f.v1, f.v2, f.v3};
  std::vector<VertexId> right = {f.qr, f.u1, f.u2, f.u3, f.u4, f.u5, f.u6, f.u7, f.u9};
  auto counts =
      CountButterflies(f.graph, left, right, MaskOf(f.graph, left), MaskOf(f.graph, right));
  // Example 5: "the non-zero butterfly degrees are chi(v1) = chi(v3) = 6 and
  // chi(u2) = chi(u3) = chi(u5) = chi(u6) = 3".
  EXPECT_EQ(counts.chi[f.v1], 6u);
  EXPECT_EQ(counts.chi[f.v3], 6u);
  EXPECT_EQ(counts.chi[f.u2], 3u);
  EXPECT_EQ(counts.chi[f.u3], 3u);
  EXPECT_EQ(counts.chi[f.u5], 3u);
  EXPECT_EQ(counts.chi[f.u6], 3u);
  EXPECT_EQ(counts.chi[f.ql], 0u);
  EXPECT_EQ(counts.chi[f.v2], 0u);
  EXPECT_EQ(counts.chi[f.qr], 0u);
  EXPECT_EQ(counts.chi[f.u1], 0u);
  EXPECT_EQ(counts.chi[f.u9], 0u);
  EXPECT_EQ(counts.max_left, 6u);
  EXPECT_EQ(counts.max_right, 3u);
}

class ButterflyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ButterflyPropertyTest, MatchesBruteForceEnumeration) {
  LabeledGraph g = GenerateRandomBipartite(12, 10, 0.35, GetParam());
  std::vector<VertexId> left, right;
  for (VertexId v = 0; v < 12; ++v) left.push_back(v);
  for (VertexId v = 12; v < 22; ++v) right.push_back(v);
  auto counts = CountButterflies(g, left, right, MaskOf(g, left), MaskOf(g, right));
  auto naive = NaiveButterflies(g, left, right);
  std::uint64_t naive_total = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(counts.chi[v], naive[v]) << "vertex " << v;
    naive_total += naive[v];
  }
  EXPECT_EQ(counts.total, naive_total / 4);

  auto brute = CountButterfliesBruteForce(g, left, right, MaskOf(g, left), MaskOf(g, right));
  for (VertexId v = 0; v < g.NumVertices(); ++v) EXPECT_EQ(brute.chi[v], naive[v]);
  EXPECT_EQ(brute.total, counts.total);
}

TEST_P(ButterflyPropertyTest, VertexPriorityTotalAgrees) {
  LabeledGraph g = GenerateRandomBipartite(20, 16, 0.3, GetParam() + 500);
  std::vector<VertexId> left, right;
  for (VertexId v = 0; v < 20; ++v) left.push_back(v);
  for (VertexId v = 20; v < 36; ++v) right.push_back(v);
  auto in_left = MaskOf(g, left);
  auto in_right = MaskOf(g, right);
  auto counts = CountButterflies(g, left, right, in_left, in_right);
  EXPECT_EQ(CountTotalButterfliesVertexPriority(g, left, right, in_left, in_right),
            counts.total);
}

TEST_P(ButterflyPropertyTest, LeaderUpdateMatchesRecount) {
  LabeledGraph g = GenerateRandomBipartite(10, 10, 0.4, GetParam() + 900);
  std::vector<VertexId> left, right;
  for (VertexId v = 0; v < 10; ++v) left.push_back(v);
  for (VertexId v = 10; v < 20; ++v) right.push_back(v);
  auto in_left = MaskOf(g, left);
  auto in_right = MaskOf(g, right);

  LeaderButterflyUpdater updater(g);
  std::mt19937_64 rng(GetParam());
  // Track one leader per side through a random deletion sequence.
  VertexId leader_l = left[rng() % left.size()];
  VertexId leader_r = right[rng() % right.size()];
  auto counts = CountButterflies(g, left, right, in_left, in_right);
  std::uint64_t chi_l = counts.chi[leader_l];
  std::uint64_t chi_r = counts.chi[leader_r];

  std::vector<VertexId> order;
  for (VertexId v = 0; v < 20; ++v) {
    if (v != leader_l && v != leader_r) order.push_back(v);
  }
  std::shuffle(order.begin(), order.end(), rng);

  for (VertexId victim : order) {
    chi_l -= updater.LossOnDeletion(in_left, in_right, leader_l, victim);
    chi_r -= updater.LossOnDeletion(in_left, in_right, leader_r, victim);
    (victim < 10 ? in_left : in_right)[victim] = 0;
    auto fresh = CountButterflies(g, left, right, in_left, in_right);
    ASSERT_EQ(chi_l, fresh.chi[leader_l]) << "victim " << victim;
    ASSERT_EQ(chi_r, fresh.chi[leader_r]) << "victim " << victim;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ButterflyPropertyTest, ::testing::Range<std::uint64_t>(0, 8));

TEST(ButterflyUpdateTest, PaperExample6) {
  Figure3Graph f = MakeFigure3Graph();
  std::vector<VertexId> left = {f.ql, f.v1, f.v2, f.v3};
  std::vector<VertexId> right = {f.qr, f.u1, f.u2, f.u3, f.u4, f.u5, f.u6, f.u7, f.u9};
  auto in_left = MaskOf(f.graph, left);
  auto in_right = MaskOf(f.graph, right);
  LeaderButterflyUpdater updater(f.graph);

  // Deleting u9 has no influence on butterfly degrees.
  EXPECT_EQ(updater.LossOnDeletion(in_left, in_right, f.u2, f.u9), 0u);
  EXPECT_EQ(updater.LossOnDeletion(in_left, in_right, f.v1, f.u9), 0u);
  in_right[f.u9] = 0;

  // Deleting u6: same-side update for u2 loses C(2,2) = 1 (common neighbors
  // {v1, v3}); cross-side update for v1 loses 3.
  EXPECT_EQ(updater.LossOnDeletion(in_left, in_right, f.u2, f.u6), 1u);
  EXPECT_EQ(updater.LossOnDeletion(in_left, in_right, f.v1, f.u6), 3u);
}

TEST(ButterflyUpdateTest, NoEdgeNoLoss) {
  // leader and removed on different sides without an edge: loss must be 0.
  std::vector<Edge> edges = {{0, 2}, {1, 2}, {1, 3}};
  LabeledGraph g = LabeledGraph::FromEdges(4, std::move(edges), {0, 0, 1, 1});
  auto in_left = MaskOf(g, {0, 1});
  auto in_right = MaskOf(g, {2, 3});
  LeaderButterflyUpdater updater(g);
  EXPECT_EQ(updater.LossOnDeletion(in_left, in_right, 0, 3), 0u);
  EXPECT_EQ(updater.LossOnDeletion(in_left, in_right, 0, 0), 0u);  // self
}

}  // namespace
}  // namespace bccs
