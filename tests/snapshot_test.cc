#include "graph/snapshot.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bcc/local_search.h"
#include "bcc/online_search.h"
#include "eval/batch_runner.h"
#include "eval/query_gen.h"
#include "graph/generators.h"
#include "test_util.h"

namespace bccs {
namespace {

PlantedGraph MakePlanted(std::size_t communities = 6, std::size_t labels = 3) {
  PlantedConfig cfg;
  cfg.num_communities = communities;
  cfg.groups_per_community = labels;
  cfg.num_labels = labels;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  cfg.seed = 13;
  return GeneratePlanted(cfg);
}

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

void ExpectSameGraph(const LabeledGraph& a, const LabeledGraph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  ASSERT_EQ(a.NumLabels(), b.NumLabels());
  EXPECT_EQ(a.MaxDegree(), b.MaxDegree());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.LabelOf(v), b.LabelOf(v));
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
  }
  for (Label l = 0; l < a.NumLabels(); ++l) {
    auto ma = a.VerticesWithLabel(l);
    auto mb = b.VerticesWithLabel(l);
    ASSERT_EQ(ma.size(), mb.size());
    EXPECT_TRUE(std::equal(ma.begin(), ma.end(), mb.begin()));
  }
}

void ExpectSameIndex(const BcIndex& a, const BcIndex& b) {
  const LabeledGraph& g = a.graph();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(a.Coreness(v), b.Coreness(v));
  }
  for (Label l = 0; l < g.NumLabels(); ++l) {
    EXPECT_EQ(a.MaxCoreness(l), b.MaxCoreness(l));
  }
  EXPECT_EQ(a.CachedPairCount(), b.CachedPairCount());
  a.ForEachCachedPair([&](Label la, Label lb, const ButterflyCounts& ca) {
    const auto cb_pin = b.PairButterflies(la, lb);
    const ButterflyCounts& cb = *cb_pin;
    EXPECT_EQ(ca.total, cb.total);
    EXPECT_EQ(ca.max_left, cb.max_left);
    EXPECT_EQ(ca.max_right, cb.max_right);
    EXPECT_EQ(ca.argmax_left, cb.argmax_left);
    EXPECT_EQ(ca.argmax_right, cb.argmax_right);
    EXPECT_EQ(ca.chi, cb.chi);
  });
}

TEST(SnapshotTest, RoundTripIsBitIdentical) {
  PlantedGraph pg = MakePlanted();
  BcIndex built(pg.graph);
  built.MaterializeAllPairs();
  ASSERT_GT(built.CachedPairCount(), 0u);

  const std::string path = TempPath("roundtrip.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(built, path, &error)) << error;

  for (bool allow_mmap : {true, false}) {
    SnapshotLoadOptions opts;
    opts.allow_mmap = allow_mmap;
    auto loaded = LoadSnapshot(path, &error, opts);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(loaded->loaded_from_snapshot);
    EXPECT_GT(loaded->snapshot_bytes, 0u);
    ExpectSameGraph(pg.graph, *loaded->graph);
    ExpectSameIndex(built, *loaded->index);
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadedIndexAnswersQueriesIdentically) {
  PlantedGraph pg = MakePlanted();
  BcIndex built(pg.graph);
  built.MaterializeAllPairs();
  const std::string path = TempPath("queries.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(built, path, &error)) << error;
  auto loaded = LoadSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  std::remove(path.c_str());

  QueryGenConfig qcfg;
  auto gt = SampleGroundTruthQueries(pg, 24, qcfg);
  ASSERT_FALSE(gt.empty());
  BccParams params;  // auto k, b = 1
  std::size_t non_empty = 0;
  for (const auto& q : gt) {
    // LP-BCC / Online-BCC depend only on the graph; L2P also on the index.
    Community lp_a = LpBcc(pg.graph, q.query, params);
    Community lp_b = LpBcc(*loaded->graph, q.query, params);
    EXPECT_EQ(lp_a.vertices, lp_b.vertices);
    Community on_a = OnlineBcc(pg.graph, q.query, params);
    Community on_b = OnlineBcc(*loaded->graph, q.query, params);
    EXPECT_EQ(on_a.vertices, on_b.vertices);
    Community l2p_a = L2pBcc(pg.graph, built, q.query, params);
    Community l2p_b = L2pBcc(*loaded->graph, *loaded->index, q.query, params);
    EXPECT_EQ(l2p_a.vertices, l2p_b.vertices);
    non_empty += lp_a.Empty() ? 0 : 1;
  }
  EXPECT_GT(non_empty, 0u);
}

TEST(SnapshotTest, BatchRunnerSharesOneLoadedIndexAcrossWorkers) {
  PlantedGraph pg = MakePlanted();
  BcIndex built(pg.graph);
  built.MaterializeAllPairs();
  const std::string path = TempPath("batch.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(built, path, &error)) << error;
  auto loaded = LoadSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  std::remove(path.c_str());

  QueryGenConfig qcfg;
  auto gt = SampleGroundTruthQueries(pg, 32, qcfg);
  std::vector<BccQuery> queries;
  for (const auto& q : gt) queries.push_back(q.query);
  BccParams params;

  BatchRunner seq(1);
  BatchRunner par(4);
  BatchResult a = seq.RunL2pBatch(pg.graph, built, queries, params, {});
  BatchResult b = par.RunL2pBatch(*loaded->graph, *loaded->index, queries, params, {});
  ASSERT_EQ(a.communities.size(), b.communities.size());
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].vertices, b.communities[i].vertices);
  }
}

TEST(SnapshotTest, LazyPairsStillComputeAfterLoad) {
  // A snapshot saved with no materialized pairs must still serve L2P: pairs
  // fault in lazily against the mapped graph.
  PlantedGraph pg = MakePlanted(4, 2);
  BcIndex built(pg.graph);  // no MaterializeAllPairs
  const std::string path = TempPath("lazy.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(built, path, &error)) << error;
  auto loaded = LoadSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  std::remove(path.c_str());
  EXPECT_EQ(loaded->index->CachedPairCount(), 0u);
  const auto fresh = built.PairButterflies(0, 1);
  const auto lazy = loaded->index->PairButterflies(0, 1);
  EXPECT_EQ(fresh->total, lazy->total);
  EXPECT_EQ(fresh->chi, lazy->chi);
}

TEST(SnapshotTest, BuildOrLoadBuildsThenLoads) {
  PlantedGraph pg = MakePlanted(4, 2);
  const std::string path = TempPath("build_or_load.snap");
  std::remove(path.c_str());

  std::string error;
  SnapshotBundle first = BcIndex::BuildOrLoad(pg.graph, path, &error);
  EXPECT_FALSE(first.loaded_from_snapshot);
  EXPECT_GT(first.snapshot_bytes, 0u) << error;
  ASSERT_NE(first.index, nullptr);
  EXPECT_GT(first.index->CachedPairCount(), 0u);  // materialized before save

  SnapshotBundle second = BcIndex::BuildOrLoad(pg.graph, path, &error);
  EXPECT_TRUE(second.loaded_from_snapshot) << error;
  ExpectSameGraph(*first.graph, *second.graph);
  ExpectSameIndex(*first.index, *second.index);
  std::remove(path.c_str());
}

TEST(SnapshotTest, BuildOrLoadRebuildsWhenSourceChanges) {
  PlantedGraph pg = MakePlanted(4, 2);
  const std::string path = TempPath("build_or_load_stale.snap");
  std::remove(path.c_str());

  std::string error;
  const SourceGraphInfo v1{100, 200};
  SnapshotBundle first = BcIndex::BuildOrLoad(pg.graph, path, &error, v1);
  EXPECT_FALSE(first.loaded_from_snapshot);
  SnapshotBundle again = BcIndex::BuildOrLoad(pg.graph, path, &error, v1);
  EXPECT_TRUE(again.loaded_from_snapshot) << error;

  // A changed source identity makes the snapshot stale: rebuilt and
  // restamped, after which loads succeed again.
  const SourceGraphInfo v2{101, 201};
  SnapshotBundle rebuilt = BcIndex::BuildOrLoad(pg.graph, path, &error, v2);
  EXPECT_FALSE(rebuilt.loaded_from_snapshot);
  SnapshotBundle reloaded = BcIndex::BuildOrLoad(pg.graph, path, &error, v2);
  EXPECT_TRUE(reloaded.loaded_from_snapshot) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, StatSourceGraphTracksFileChanges) {
  const std::string path = TempPath("stat_source.txt");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "v 0 0\n";
  }
  const SourceGraphInfo a = StatSourceGraph(path);
  EXPECT_TRUE(a.Known());
  {
    std::ofstream out(path, std::ios::app);
    out << "v 1 0\n";
  }
  const SourceGraphInfo b = StatSourceGraph(path);
  EXPECT_TRUE(b.Known());
  EXPECT_FALSE(a == b);  // size changed
  EXPECT_FALSE(StatSourceGraph(path + ".absent").Known());
  std::remove(path.c_str());
}

class SnapshotRejectionTest : public ::testing::Test {
 protected:
  // Mirrors the on-disk constants in snapshot.cc: the 88-byte v3 header and
  // the 64-byte section alignment (so the first section starts at 128).
  static constexpr std::size_t kHeaderBytes = 88;
  static std::size_t Align64(std::size_t o) { return (o + 63) / 64 * 64; }

  void SetUp() override {
    PlantedGraph pg = MakePlanted(3, 2);
    graph_ = std::make_unique<LabeledGraph>(pg.graph);
    BcIndex index(*graph_);
    index.MaterializeAllPairs();
    path_ = TempPath("reject.snap");
    std::string error;
    ASSERT_TRUE(SaveSnapshot(index, path_, &error)) << error;
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), kHeaderBytes);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  void WriteBytes(const std::string& data) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  /// Expect both load paths (mmap and read fallback) to reject, with the
  /// reason mentioning `needle`.
  void ExpectRejected(const std::string& needle) {
    for (bool allow_mmap : {true, false}) {
      SnapshotLoadOptions opts;
      opts.allow_mmap = allow_mmap;
      std::string error;
      EXPECT_FALSE(LoadSnapshot(path_, &error, opts).has_value());
      EXPECT_NE(error.find(needle), std::string::npos)
          << "mmap=" << allow_mmap << ": " << error;
    }
  }

  /// Byte offset of the first SnapshotPairEntry (walks the 64-byte-aligned
  /// section layout up to the pair table).
  std::size_t FirstPairEntryOffset() const {
    const std::size_t n = graph_->NumVertices();
    const std::size_t m2 = 2 * graph_->NumEdges();
    const std::size_t num_labels = graph_->NumLabels();
    std::size_t off = kHeaderBytes;
    off = Align64(off) + (n + 1) * 8;   // offsets
    off = Align64(off) + m2 * 4;        // adjacency
    off = Align64(off) + n * 4;         // labels
    off = Align64(off) + (num_labels + 1) * 8;  // label_offsets
    off = Align64(off) + n * 4;         // label_members
    off = Align64(off) + n * 4;         // coreness
    off = Align64(off) + num_labels * 4;  // max_core_per_label
    return Align64(off);
  }

  std::unique_ptr<LabeledGraph> graph_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotRejectionTest, MissingFile) {
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path_ + ".absent", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(SnapshotRejectionTest, TruncatedHeader) {
  WriteBytes(bytes_.substr(0, 40));
  ExpectRejected("truncated");
}

TEST_F(SnapshotRejectionTest, TruncatedPayload) {
  WriteBytes(bytes_.substr(0, bytes_.size() - 9));
  ExpectRejected("truncated");
}

TEST_F(SnapshotRejectionTest, TrailingGarbage) {
  // Bytes past the payload must be a valid delta log (PR 4); arbitrary
  // trailing garbage is rejected as neither.
  WriteBytes(bytes_ + "extra");
  ExpectRejected("delta log");
}

TEST_F(SnapshotRejectionTest, BadMagic) {
  std::string corrupt = bytes_;
  corrupt[0] = 'X';
  WriteBytes(corrupt);
  ExpectRejected("magic");
}

TEST_F(SnapshotRejectionTest, WrongVersion) {
  std::string corrupt = bytes_;
  corrupt[8] = static_cast<char>(kSnapshotFormatVersion + 1);  // version field
  WriteBytes(corrupt);
  ExpectRejected("version");
}

TEST_F(SnapshotRejectionTest, ChecksumMismatch) {
  std::string corrupt = bytes_;
  corrupt[bytes_.size() - 1] = static_cast<char>(corrupt[bytes_.size() - 1] ^ 0x5a);
  WriteBytes(corrupt);
  ExpectRejected("checksum");
}

TEST_F(SnapshotRejectionTest, StructuralChecksCatchOutOfRangeAdjacency) {
  // Even with checksum verification off, values used as indices must be
  // range-checked: plant an out-of-range vertex id in the adjacency section
  // (which starts 64-byte aligned after the (n+1)*8-byte offsets section).
  const std::size_t offsets_end = Align64(kHeaderBytes) + (graph_->NumVertices() + 1) * 8;
  const std::size_t adjacency_off = Align64(offsets_end);
  std::string corrupt = bytes_;
  ASSERT_LT(adjacency_off + 4, corrupt.size());
  for (std::size_t i = 0; i < 4; ++i) corrupt[adjacency_off + i] = '\xff';
  WriteBytes(corrupt);
  for (bool verify : {true, false}) {
    SnapshotLoadOptions opts;
    opts.verify_checksum = verify;
    std::string error;
    EXPECT_FALSE(LoadSnapshot(path_, &error, opts).has_value());
    if (!verify) {
      EXPECT_NE(error.find("adjacency"), std::string::npos) << error;
    }
  }
}

TEST_F(SnapshotRejectionTest, MaxDegreeHeaderCorruptionRejected) {
  // max_degree lives at header bytes 48-55 and is outside the payload
  // checksum; the loader must cross-check it against the offsets.
  std::string corrupt = bytes_;
  corrupt[48] = static_cast<char>(corrupt[48] ^ 0x01);
  WriteBytes(corrupt);
  ExpectRejected("max degree");
}

TEST_F(SnapshotRejectionTest, OutOfGroupPairArgmaxRejected) {
  // Plant an argmax_left that is no group member (it indexes chi at query
  // time); pair-entry field offset: label_a 0, label_b 4, chi_len 8,
  // total 16, max_left 24, max_right 32, argmax_left 40.
  const std::size_t argmax_left_off = FirstPairEntryOffset() + 40;

  std::string corrupt = bytes_;
  ASSERT_LT(argmax_left_off + 4, corrupt.size());
  corrupt[argmax_left_off] = '\xfe';
  corrupt[argmax_left_off + 1] = '\xff';
  corrupt[argmax_left_off + 2] = '\xff';
  corrupt[argmax_left_off + 3] = '\xff';
  WriteBytes(corrupt);
  SnapshotLoadOptions opts;
  opts.verify_checksum = false;  // structural check must catch it on its own
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path_, &error, opts).has_value());
  EXPECT_NE(error.find("argmax"), std::string::npos) << error;
}

TEST_F(SnapshotRejectionTest, ChiLenSumOverflowRejected) {
  // Regression: add 2^61 to the first pair's chi_len. The chi_total sum then
  // wraps 2^64 (2^61 * 8 == 0 mod 2^64), so the whole-file expected-size
  // check still passes, but reading chi_len*8 bytes for that pair would run
  // ~2^64 bytes past EOF — the loader must reject on the per-entry bound.
  const std::size_t chi_len_off = FirstPairEntryOffset() + 8;
  std::string corrupt = bytes_;
  ASSERT_LT(chi_len_off + 8, corrupt.size());
  corrupt[chi_len_off + 7] = '\x20';  // top byte of the little-endian uint64
  WriteBytes(corrupt);
  for (bool allow_mmap : {true, false}) {
    SnapshotLoadOptions opts;
    opts.allow_mmap = allow_mmap;
    opts.verify_checksum = false;  // the size checks must catch it on their own
    std::string error;
    EXPECT_FALSE(LoadSnapshot(path_, &error, opts).has_value());
    EXPECT_NE(error.find("chi lengths"), std::string::npos)
        << "mmap=" << allow_mmap << ": " << error;
  }
}

TEST_F(SnapshotRejectionTest, StaleSourceGraphRejected) {
  const SourceGraphInfo source{1234, 5678};
  std::string error;
  {
    BcIndex index(*graph_);
    index.MaterializeAllPairs();
    ASSERT_TRUE(SaveSnapshot(index, path_, &error, source)) << error;
  }

  SnapshotLoadOptions opts;
  opts.expected_source = source;  // matching stamp loads
  EXPECT_TRUE(LoadSnapshot(path_, &error, opts).has_value()) << error;

  opts.expected_source = {source.size_bytes + 1, source.mtime_ns};  // graph grew
  EXPECT_FALSE(LoadSnapshot(path_, &error, opts).has_value());
  EXPECT_NE(error.find("stale"), std::string::npos) << error;
  opts.expected_source = {source.size_bytes, source.mtime_ns + 1};  // graph touched
  EXPECT_FALSE(LoadSnapshot(path_, &error, opts).has_value());
  EXPECT_NE(error.find("stale"), std::string::npos) << error;

  opts.expected_source = {};  // caller without a graph file: no check
  EXPECT_TRUE(LoadSnapshot(path_, &error, opts).has_value()) << error;
}

TEST_F(SnapshotRejectionTest, UnstampedSnapshotSkipsStalenessCheck) {
  // The fixture snapshot was saved without a source stamp (in-memory graph):
  // an expected_source cannot prove it stale, so it still loads.
  SnapshotLoadOptions opts;
  opts.expected_source = {1234, 5678};
  std::string error;
  EXPECT_TRUE(LoadSnapshot(path_, &error, opts).has_value()) << error;
}

TEST_F(SnapshotRejectionTest, ChecksumCanBeSkipped) {
  // Same corruption as ChecksumMismatch, but verification disabled: the
  // structural checks alone accept the file (the flipped chi byte is data).
  std::string corrupt = bytes_;
  corrupt[bytes_.size() - 1] = static_cast<char>(corrupt[bytes_.size() - 1] ^ 0x5a);
  WriteBytes(corrupt);
  SnapshotLoadOptions opts;
  opts.verify_checksum = false;
  std::string error;
  EXPECT_TRUE(LoadSnapshot(path_, &error, opts).has_value()) << error;
}

}  // namespace
}  // namespace bccs
