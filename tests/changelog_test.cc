// Rotated-changelog durability tests: append/rotate/scan round trips,
// per-byte torn-tail recovery, hard rejection of non-tail corruption,
// compaction folds (including crash idempotency via leftover stale
// segments and temp files), and the serve engine's durable-ack contract
// through AttachDurability.

#include "graph/changelog.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/resource.h>
#endif

#include <gtest/gtest.h>

#include "bcc/bc_index.h"
#include "eval/serve_engine.h"
#include "graph/compactor.h"
#include "graph/graph_delta.h"
#include "graph/snapshot.h"
#include "test_util.h"

namespace bccs {
namespace {

namespace fs = std::filesystem;
using testing::MakeRandomGraph;

// Changelog's mutators and counters REQUIRE the commit lock; these helpers
// take it around the single-threaded test call sites.
bool LockedAppend(Changelog& log, std::span<const EdgeUpdate> updates,
                  std::string* error) {
  MutexLock commit(log.commit_mutex());
  return log.Append(updates, {}, error);
}

struct LogCounters {
  std::uint64_t last_seq = 0;
  std::uint64_t sealed_seq = 0;
  std::size_t sealed_segments = 0;
  std::size_t updates_appended = 0;
};

LogCounters ReadCounters(Changelog& log) {
  MutexLock commit(log.commit_mutex());
  return {log.last_seq(), log.sealed_seq(), log.sealed_segments(),
          log.updates_appended()};
}

void ExpectSameGraph(const LabeledGraph& a, const LabeledGraph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.LabelOf(v), b.LabelOf(v));
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin())) << "vertex " << v;
  }
}

class ChangelogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "changelog_test.snap";
    Cleanup();
  }
  void TearDown() override { Cleanup(); }

  void Cleanup() {
    std::error_code ec;
    fs::remove(path_, ec);
    fs::remove(CompactionTempPath(path_), ec);
    RemoveChangelogSegments(path_);
  }

  std::string SegmentPath(std::uint64_t seq) const {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%06llu", static_cast<unsigned long long>(seq));
    return path_ + ".log." + buf;
  }

  // One single-delete batch per call, each deleting a distinct edge of the
  // ORIGINAL graph, so any prefix of the history is a valid replay.
  std::vector<std::vector<EdgeUpdate>> DeleteBatches(const LabeledGraph& g,
                                                     std::size_t count) {
    std::vector<Edge> edges = g.AllEdges();
    EXPECT_GE(edges.size(), count);
    std::vector<std::vector<EdgeUpdate>> out;
    for (std::size_t i = 0; i < count && i < edges.size(); ++i) {
      out.push_back({{EdgeUpdateKind::kDelete, edges[i]}});
    }
    return out;
  }

  LabeledGraph ApplyPrefix(const LabeledGraph& g,
                           const std::vector<std::vector<EdgeUpdate>>& batches,
                           std::size_t prefix) {
    LabeledGraph cur = g;
    for (std::size_t i = 0; i < prefix; ++i) {
      auto delta = BuildGraphDelta(cur, batches[i]);
      EXPECT_TRUE(delta.has_value());
      cur = ApplyGraphDelta(cur, *delta);
    }
    return cur;
  }

  std::string path_;
};

TEST(FsyncPolicyTest, ParsesTheFlagValues) {
  FsyncPolicy p = FsyncPolicy::kNone;
  EXPECT_TRUE(ParseFsyncPolicy("none", &p));
  EXPECT_EQ(p, FsyncPolicy::kNone);
  EXPECT_TRUE(ParseFsyncPolicy("on-rotation", &p));
  EXPECT_EQ(p, FsyncPolicy::kOnRotation);
  EXPECT_TRUE(ParseFsyncPolicy("every-append", &p));
  EXPECT_EQ(p, FsyncPolicy::kEveryAppend);
  EXPECT_FALSE(ParseFsyncPolicy("always", &p));
  EXPECT_FALSE(ParseFsyncPolicy("", &p));
  EXPECT_STREQ(Name(FsyncPolicy::kNone), "none");
  EXPECT_STREQ(Name(FsyncPolicy::kOnRotation), "on-rotation");
  EXPECT_STREQ(Name(FsyncPolicy::kEveryAppend), "every-append");
}

TEST_F(ChangelogTest, AppendRotateScanRoundTrip) {
  LabeledGraph g = MakeRandomGraph(30, 0.2, 3, 900);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));

  ChangelogOptions opts;
  opts.fsync = FsyncPolicy::kEveryAppend;
  opts.segment_blocks = 2;  // rotate after every second record
  ChangelogStatus st;
  std::string error;
  auto log = Changelog::Open(path_, 0, opts, &st, &error);
  ASSERT_NE(log, nullptr) << error;
  EXPECT_EQ(st.segments, 0u);

  const auto batches = DeleteBatches(g, 5);
  std::vector<EdgeUpdate> all;
  for (const auto& b : batches) {
    ASSERT_TRUE(LockedAppend(*log, std::span<const EdgeUpdate>(b), &error)) << error;
    all.insert(all.end(), b.begin(), b.end());
  }
  // 5 records at 2 per segment: segments 1 and 2 sealed, 3 is the live tail.
  EXPECT_EQ(ReadCounters(*log).last_seq, 3u);
  EXPECT_EQ(ReadCounters(*log).sealed_seq, 2u);
  EXPECT_EQ(ReadCounters(*log).sealed_segments, 2u);
  EXPECT_EQ(ReadCounters(*log).updates_appended, 5u);
  EXPECT_TRUE(fs::exists(SegmentPath(1)));
  EXPECT_TRUE(fs::exists(SegmentPath(2)));
  EXPECT_TRUE(fs::exists(SegmentPath(3)));

  // Read-only scan sees every record in order, torn-free.
  ChangelogReplay replay;
  ASSERT_TRUE(ScanChangelog(path_, 0, &replay, &error)) << error;
  EXPECT_EQ(replay.segments, 3u);
  EXPECT_EQ(replay.sealed_segments, 2u);
  EXPECT_EQ(replay.records, 5u);
  EXPECT_EQ(replay.torn_tail_bytes, 0u);
  ASSERT_EQ(replay.updates.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(replay.updates[i].kind, all[i].kind) << i;
    EXPECT_EQ(replay.updates[i].edge.u, all[i].edge.u) << i;
    EXPECT_EQ(replay.updates[i].edge.v, all[i].edge.v) << i;
  }

  // LoadSnapshot replays the changelog on top of the base payload.
  auto loaded = LoadSnapshot(path_, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->replayed_updates, 5u);
  EXPECT_EQ(loaded->changelog_segments, 3u);
  EXPECT_EQ(loaded->changelog_updates, 5u);
  ExpectSameGraph(*loaded->graph, ApplyPrefix(g, batches, 5));

  // Reopening (clean shutdown) recovers every record and keeps appending
  // where the last handle stopped.
  log.reset();
  auto reopened = OpenSnapshotWithChangelog(path_, opts, {}, &error);
  ASSERT_TRUE(reopened.has_value()) << error;
  EXPECT_EQ(reopened->bundle.replayed_updates, 5u);
  EXPECT_EQ(reopened->status.records, 5u);
  EXPECT_EQ(reopened->status.truncated_bytes, 0u);
  EXPECT_EQ(ReadCounters(*reopened->log).last_seq, 3u);
  ExpectSameGraph(*reopened->bundle.graph, ApplyPrefix(g, batches, 5));
  ASSERT_TRUE(LockedAppend(*reopened->log, std::span<const EdgeUpdate>(batches[0]), &error))
      << error;  // re-inserting nothing: batch 0 deletes an already-deleted
                 // edge is INVALID to replay — undo it instead
  // Undo the extra append by folding is out of scope here; just verify the
  // scan now reports one more record in the same tail segment.
  ChangelogReplay again;
  // The replay chain is no longer prefix-valid (batch 0 deletes a deleted
  // edge), but the scan layer does not validate against a graph — it only
  // checks integrity.
  ASSERT_TRUE(ScanChangelog(path_, 0, &again, &error)) << error;
  EXPECT_EQ(again.records, 6u);
  EXPECT_EQ(again.segments, 3u);
}

TEST_F(ChangelogTest, TornTailTruncatedAtEveryByteOffset) {
  LabeledGraph g = MakeRandomGraph(24, 0.2, 3, 901);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));

  ChangelogOptions opts;
  opts.fsync = FsyncPolicy::kNone;  // keep the tail unsealed
  opts.segment_blocks = 64;
  std::string error;
  auto log = Changelog::Open(path_, 0, opts, nullptr, &error);
  ASSERT_NE(log, nullptr) << error;

  const auto batches = DeleteBatches(g, 3);
  const std::string tail = SegmentPath(1);
  std::vector<std::uint64_t> size_after;  // record boundaries in the tail
  for (const auto& b : batches) {
    ASSERT_TRUE(LockedAppend(*log, std::span<const EdgeUpdate>(b), &error)) << error;
    size_after.push_back(fs::file_size(tail));
  }
  log.reset();
  const std::uint64_t header_bytes = size_after[0] - (size_after[1] - size_after[0]);
  ASSERT_GT(header_bytes, 0u);

  // Keep a pristine copy; each iteration restores it and cuts the tail at
  // one byte offset. Every cut must recover to the longest record prefix
  // that fits — never an error, never a partial record.
  const std::string pristine = tail + ".orig";
  fs::copy_file(tail, pristine, fs::copy_options::overwrite_existing);
  for (std::uint64_t cut = header_bytes; cut < size_after.back(); ++cut) {
    fs::copy_file(pristine, tail, fs::copy_options::overwrite_existing);
    fs::resize_file(tail, cut);

    std::size_t complete = 0;
    while (complete < size_after.size() && size_after[complete] <= cut) ++complete;

    auto recovered = OpenSnapshotWithChangelog(path_, opts, {}, &error);
    ASSERT_TRUE(recovered.has_value()) << "cut at " << cut << ": " << error;
    EXPECT_EQ(recovered->bundle.replayed_updates, complete) << "cut at " << cut;
    const std::uint64_t prefix_end = complete > 0 ? size_after[complete - 1] : header_bytes;
    EXPECT_EQ(recovered->status.truncated_bytes, cut - prefix_end)
        << "cut at " << cut;
    ExpectSameGraph(*recovered->bundle.graph, ApplyPrefix(g, batches, complete));
    // Repair is physical: the torn bytes are gone and the tail is
    // append-ready at the prefix boundary (or the record-less tail file was
    // dropped outright).
    if (fs::exists(tail)) {
      EXPECT_EQ(fs::file_size(tail), prefix_end) << "cut at " << cut;
    } else {
      EXPECT_EQ(complete, 0u) << "cut at " << cut;
    }
  }
  fs::remove(pristine);
}

#if defined(__unix__) || defined(__APPLE__)
// A transient append failure must not poison the segment for later appends:
// the rollback truncates the torn fragment away, and the NEXT acknowledged
// append must continue exactly at the rolled-back offset (O_APPEND), never
// beyond a zero-filled hole left by the fd's stale offset — a hole would
// make recovery truncate there and silently drop records acknowledged
// after the failure. RLIMIT_FSIZE induces the partial write: the kernel
// writes the bytes that fit under the cap, then fails the retry.
TEST_F(ChangelogTest, AppendAfterRolledBackFailureLeavesNoHole) {
  LabeledGraph g = MakeRandomGraph(24, 0.2, 3, 906);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));

  ChangelogOptions opts;
  opts.fsync = FsyncPolicy::kNone;  // keep the tail unsealed
  opts.segment_blocks = 64;
  std::string error;
  auto log = Changelog::Open(path_, 0, opts, nullptr, &error);
  ASSERT_NE(log, nullptr) << error;

  const auto batches = DeleteBatches(g, 3);
  ASSERT_TRUE(LockedAppend(*log, std::span<const EdgeUpdate>(batches[0]), &error))
      << error;
  const std::string tail = SegmentPath(1);
  const std::uint64_t acked_bytes = fs::file_size(tail);

  struct rlimit old_lim;
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_lim), 0);
  auto old_handler = std::signal(SIGXFSZ, SIG_IGN);  // EFBIG instead of death
  struct rlimit capped = old_lim;
  capped.rlim_cur = acked_bytes + 8;  // room for a torn fragment, not a record
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &capped), 0);
  EXPECT_FALSE(LockedAppend(*log, std::span<const EdgeUpdate>(batches[1]), &error));
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_lim), 0);
  std::signal(SIGXFSZ, old_handler);

  // Rollback restored the acked prefix physically.
  EXPECT_EQ(fs::file_size(tail), acked_bytes);

  // The log is NOT broken: the next append is acknowledged and recovery
  // replays both acked records — nothing torn, nothing dropped.
  ASSERT_TRUE(LockedAppend(*log, std::span<const EdgeUpdate>(batches[2]), &error))
      << error;
  log.reset();
  auto recovered = OpenSnapshotWithChangelog(path_, opts, {}, &error);
  ASSERT_TRUE(recovered.has_value()) << error;
  EXPECT_EQ(recovered->status.truncated_bytes, 0u);
  EXPECT_EQ(recovered->bundle.replayed_updates, 2u);
  const std::vector<std::vector<EdgeUpdate>> acked = {batches[0], batches[2]};
  ExpectSameGraph(*recovered->bundle.graph, ApplyPrefix(g, acked, 2));
}
#endif  // defined(__unix__) || defined(__APPLE__)

TEST_F(ChangelogTest, NonTailCorruptionIsAHardError) {
  LabeledGraph g = MakeRandomGraph(24, 0.2, 3, 902);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));

  ChangelogOptions opts;
  opts.segment_blocks = 1;  // every record in its own sealed segment
  std::string error;
  auto log = Changelog::Open(path_, 0, opts, nullptr, &error);
  ASSERT_NE(log, nullptr) << error;
  const auto batches = DeleteBatches(g, 2);
  for (const auto& b : batches) {
    ASSERT_TRUE(LockedAppend(*log, std::span<const EdgeUpdate>(b), &error)) << error;
  }
  log.reset();
  ASSERT_TRUE(fs::exists(SegmentPath(2)));

  // Flip one payload byte in the FIRST (sealed, non-tail) segment: that is
  // corruption of possibly-acknowledged data, not a torn tail.
  {
    std::fstream f(SegmentPath(1), std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(40);
    char c = 0;
    f.read(&c, 1);
    f.seekp(40);
    c = static_cast<char>(c ^ 0x20);
    f.write(&c, 1);
  }
  ChangelogReplay replay;
  EXPECT_FALSE(ScanChangelog(path_, 0, &replay, &error));
  EXPECT_FALSE(LoadSnapshot(path_, &error).has_value());
  EXPECT_EQ(Changelog::Open(path_, 0, opts, nullptr, &error), nullptr);

  // A sequence gap (segment 1 missing entirely) is equally fatal.
  Cleanup();
  ASSERT_TRUE(SaveSnapshot(index, path_));
  log = Changelog::Open(path_, 0, opts, nullptr, &error);
  ASSERT_NE(log, nullptr) << error;
  for (const auto& b : batches) {
    ASSERT_TRUE(LockedAppend(*log, std::span<const EdgeUpdate>(b), &error)) << error;
  }
  log.reset();
  fs::remove(SegmentPath(1));
  EXPECT_FALSE(ScanChangelog(path_, 0, &replay, &error));
  EXPECT_EQ(Changelog::Open(path_, 0, opts, nullptr, &error), nullptr);
}

TEST_F(ChangelogTest, CompactionFoldsAndStaysIdempotentAcrossCrashes) {
  LabeledGraph g = MakeRandomGraph(30, 0.2, 3, 903);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));

  ChangelogOptions opts;
  opts.segment_blocks = 1;
  std::string error;
  auto recovered = OpenSnapshotWithChangelog(path_, opts, {}, &error);
  ASSERT_TRUE(recovered.has_value()) << error;
  Changelog& log = *recovered->log;

  const auto batches = DeleteBatches(g, 2);
  std::vector<EdgeUpdate> flat;
  for (const auto& b : batches) {
    ASSERT_TRUE(LockedAppend(log, std::span<const EdgeUpdate>(b), &error)) << error;
    flat.insert(flat.end(), b.begin(), b.end());
  }
  ASSERT_EQ(ReadCounters(log).sealed_segments, 2u);

  // The folded state: base graph + both batches, re-indexed.
  const LabeledGraph folded_graph = ApplyPrefix(g, batches, 2);
  auto folded_index = std::make_shared<BcIndex>(folded_graph);
  folded_index->MaterializeAllPairs();
  Compactor::State state;
  state.graph = std::make_shared<const LabeledGraph>(folded_graph);
  state.index = folded_index;

  CompactorOptions copts;
  copts.threshold_segments = 4;
  Compactor compactor(log, [&state] { return state; }, copts);

  // Below the threshold: RunOnce(false) is a no-op.
  bool folded = false;
  ASSERT_TRUE(compactor.RunOnce(/*force=*/false, &error, &folded)) << error;
  EXPECT_FALSE(folded);
  EXPECT_TRUE(fs::exists(SegmentPath(1)));

  // Keep copies of the sealed segments to resurrect after the fold — the
  // on-disk picture of a crash BETWEEN the rename and the segment drop.
  const std::string keep1 = SegmentPath(1) + ".keep";
  const std::string keep2 = SegmentPath(2) + ".keep";
  fs::copy_file(SegmentPath(1), keep1);
  fs::copy_file(SegmentPath(2), keep2);

  ASSERT_TRUE(compactor.RunOnce(/*force=*/true, &error, &folded)) << error;
  EXPECT_TRUE(folded);
  EXPECT_EQ(compactor.folds(), 1u);
  EXPECT_FALSE(fs::exists(SegmentPath(1)));
  EXPECT_FALSE(fs::exists(SegmentPath(2)));
  EXPECT_FALSE(fs::exists(CompactionTempPath(path_)));

  // The new base carries the watermark and needs no replay.
  auto loaded = LoadSnapshot(path_, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->base_changelog_seq, 2u);
  EXPECT_EQ(loaded->replayed_updates, 0u);
  ExpectSameGraph(*loaded->graph, folded_graph);

  // Crash idempotency: stale segments (seq <= watermark) plus a leftover
  // compaction temp file are swept on the next open, and the recovered
  // state is the folded one — the folded records do NOT replay twice.
  fs::rename(keep1, SegmentPath(1));
  fs::rename(keep2, SegmentPath(2));
  {
    std::ofstream tmp(CompactionTempPath(path_), std::ios::binary);
    tmp << "leftover garbage from a crashed fold";
  }
  recovered.reset();  // release the old handle before reopening
  auto reopened = OpenSnapshotWithChangelog(path_, opts, {}, &error);
  ASSERT_TRUE(reopened.has_value()) << error;
  EXPECT_EQ(reopened->status.stale_segments_removed, 2u);
  EXPECT_EQ(reopened->bundle.replayed_updates, 0u);
  EXPECT_FALSE(fs::exists(SegmentPath(1)));
  EXPECT_FALSE(fs::exists(SegmentPath(2)));
  EXPECT_FALSE(fs::exists(CompactionTempPath(path_)));
  ExpectSameGraph(*reopened->bundle.graph, folded_graph);

  // Appends resume ABOVE the watermark; the next scan replays only them.
  const auto more = DeleteBatches(folded_graph, 1);
  ASSERT_TRUE(LockedAppend(*reopened->log, std::span<const EdgeUpdate>(more[0]), &error))
      << error;
  EXPECT_EQ(ReadCounters(*reopened->log).last_seq, 3u);
  auto after = LoadSnapshot(path_, &error);
  ASSERT_TRUE(after.has_value()) << error;
  EXPECT_EQ(after->replayed_updates, 1u);
  ExpectSameGraph(*after->graph, ApplyPrefix(folded_graph, more, 1));
}

// --------------------------------------------------------------------------
// ServeEngine durable-ack contract.
// --------------------------------------------------------------------------

TEST_F(ChangelogTest, ServeEngineAppendsAppliedUpdatesDurably) {
  LabeledGraph g = MakeRandomGraph(30, 0.2, 3, 904);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));

  ChangelogOptions opts;
  opts.fsync = FsyncPolicy::kEveryAppend;
  std::string error;
  auto log = Changelog::Open(path_, 0, opts, nullptr, &error);
  ASSERT_NE(log, nullptr) << error;

  const auto batches = DeleteBatches(g, 1);
  BatchRunner runner(2);
  ServeEngine engine(runner, g, &index);
  engine.AttachDurability(log.get());

  UpdateRequest del;
  del.updates = batches[0];
  std::vector<ServeItem> items = {ServeItem(del)};
  BatchResult result = engine.RunStream(items);
  ASSERT_EQ(result.updates.size(), 1u);
  ASSERT_TRUE(result.updates[0].applied) << result.updates[0].error;
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_EQ(ReadCounters(*log).updates_appended, 1u);
  EXPECT_EQ(ReadCounters(*log).last_seq, 1u);

  // Restart: the applied update is on disk and replays.
  log.reset();
  auto loaded = LoadSnapshot(path_, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->replayed_updates, 1u);
  ExpectSameGraph(*loaded->graph, ApplyPrefix(g, batches, 1));
}

TEST_F(ChangelogTest, ServeEngineRejectsTheBatchWhenTheAppendFails) {
  const std::string dir = ::testing::TempDir() + "changelog_fail_dir";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  const std::string snap = dir + "/w.snap";

  LabeledGraph g = MakeRandomGraph(24, 0.2, 3, 905);
  BcIndex index(g);
  index.MaterializeAllPairs();
  std::string error;
  ASSERT_TRUE(SaveSnapshot(index, snap, &error)) << error;

  auto log = Changelog::Open(snap, 0, {}, nullptr, &error);
  ASSERT_NE(log, nullptr) << error;

  BatchRunner runner(1);
  ServeEngine engine(runner, g, &index);
  engine.AttachDurability(log.get());

  // Tear the directory out from under the changelog: the first append must
  // fail to create its segment, and the engine must refuse to publish the
  // epoch — "applied" may never outrun what the log acknowledged.
  fs::remove_all(dir, ec);
  UpdateRequest del;
  del.updates = {{EdgeUpdateKind::kDelete, g.AllEdges().front()}};
  std::vector<ServeItem> items = {ServeItem(del)};
  BatchResult result = engine.RunStream(items);
  ASSERT_EQ(result.updates.size(), 1u);
  EXPECT_FALSE(result.updates[0].applied);
  EXPECT_NE(result.updates[0].error.find("durability append failed"),
            std::string::npos)
      << result.updates[0].error;
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(ReadCounters(*log).updates_appended, 0u);
}

}  // namespace
}  // namespace bccs
