#include "core/core_hierarchy.h"

#include <gtest/gtest.h>

#include "core/core_decomposition.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::AllVertices;
using testing::MakeClique;
using testing::MakeRandomGraph;

TEST(CoreHierarchyTest, Clique) {
  LabeledGraph g = MakeClique(5);
  CoreHierarchy h(g, AllVertices(g));
  EXPECT_EQ(h.MaxLevel(), 4u);
  for (std::uint32_t k = 1; k <= 4; ++k) {
    for (VertexId v = 0; v < 5; ++v) {
      EXPECT_NE(h.ComponentId(v, k), kInvalidVertex);
      EXPECT_TRUE(h.SameComponent(0, v, k));
    }
  }
  EXPECT_EQ(h.ComponentId(0, 5), kInvalidVertex);  // beyond max level
}

TEST(CoreHierarchyTest, DirectBridgeKeepsCoreConnected) {
  // Two K4s joined by one edge: both bridge endpoints have coreness 3, so
  // the induced 3-core contains the bridge and stays connected.
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) {
      edges.push_back({i, j});
      edges.push_back({static_cast<VertexId>(4 + i), static_cast<VertexId>(4 + j)});
    }
  }
  edges.push_back({3, 4});
  LabeledGraph g = LabeledGraph::FromEdges(8, std::move(edges), std::vector<Label>(8, 0));
  CoreHierarchy h(g, AllVertices(g));
  EXPECT_EQ(h.MaxLevel(), 3u);
  EXPECT_TRUE(h.SameComponent(0, 7, 3));
}

TEST(CoreHierarchyTest, TwoCliquesBridgedByLowCoreVertex) {
  // Two K4s joined through a middle vertex of coreness 2: at level 3 the
  // cliques are separate components; at level 2 and below they are one.
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) {
      edges.push_back({i, j});
      edges.push_back({static_cast<VertexId>(4 + i), static_cast<VertexId>(4 + j)});
    }
  }
  edges.push_back({3, 8});
  edges.push_back({8, 4});
  LabeledGraph g = LabeledGraph::FromEdges(9, std::move(edges), std::vector<Label>(9, 0));
  CoreHierarchy h(g, AllVertices(g));
  EXPECT_EQ(h.MaxLevel(), 3u);
  EXPECT_EQ(h.Coreness(8), 2u);
  EXPECT_TRUE(h.SameComponent(0, 7, 1));
  EXPECT_TRUE(h.SameComponent(0, 7, 2));
  EXPECT_FALSE(h.SameComponent(0, 7, 3));
  EXPECT_TRUE(h.SameComponent(0, 3, 3));
  EXPECT_TRUE(h.SameComponent(4, 7, 3));
  EXPECT_EQ(h.ComponentMembers(0, 3), (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(h.ComponentMembers(5, 3), (std::vector<VertexId>{4, 5, 6, 7}));
  EXPECT_EQ(h.ComponentId(8, 3), kInvalidVertex);
}

TEST(CoreHierarchyTest, NonMemberExcluded) {
  LabeledGraph g = MakeClique(4);
  std::vector<VertexId> members = {0, 1, 2};
  CoreHierarchy h(g, members);
  EXPECT_EQ(h.Coreness(3), 0u);
  EXPECT_EQ(h.ComponentId(3, 1), kInvalidVertex);
  EXPECT_EQ(h.MaxLevel(), 2u);  // K3 among members
}

class CoreHierarchyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoreHierarchyPropertyTest, MatchesDirectComputation) {
  LabeledGraph g = MakeRandomGraph(45, 0.12, 1, GetParam() + 321);
  auto members = AllVertices(g);
  CoreHierarchy h(g, members);
  auto coreness = SubsetCoreness(g, members);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(h.Coreness(v), coreness[v]);
  }
  for (std::uint32_t k = 1; k <= h.MaxLevel(); ++k) {
    auto core = KCoreOfSubset(g, members, k);
    for (VertexId v : core) {
      // The hierarchy's component must equal the directly computed one.
      EXPECT_EQ(h.ComponentMembers(v, k), ComponentContaining(g, core, v));
    }
    // Vertices outside the k-core must have no component.
    std::vector<char> in_core(g.NumVertices(), 0);
    for (VertexId v : core) in_core[v] = 1;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (!in_core[v]) {
        EXPECT_EQ(h.ComponentId(v, k), kInvalidVertex);
      }
    }
  }
}

TEST_P(CoreHierarchyPropertyTest, NestingProperty) {
  // The k-core is nested: same component at level k implies same component
  // at every level below.
  LabeledGraph g = MakeRandomGraph(40, 0.15, 1, GetParam() + 654);
  auto members = AllVertices(g);
  CoreHierarchy h(g, members);
  for (std::uint32_t k = 2; k <= h.MaxLevel(); ++k) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (h.ComponentId(v, k) == kInvalidVertex) continue;
      for (VertexId w = v + 1; w < g.NumVertices(); ++w) {
        if (h.ComponentId(w, k) == kInvalidVertex) continue;
        if (h.SameComponent(v, w, k)) {
          EXPECT_TRUE(h.SameComponent(v, w, k - 1))
              << "nesting violated at level " << k << " for " << v << "," << w;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreHierarchyPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 5));

}  // namespace
}  // namespace bccs
