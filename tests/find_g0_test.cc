#include "bcc/find_g0.h"

#include <gtest/gtest.h>

#include "core/core_decomposition.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

TEST(FindG0Test, PaperFigure1) {
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.ql, f.qr};
  BccParams p{4, 3, 1};
  SearchStats stats;
  G0Result g0 = FindG0(f.graph, q, p, &stats);
  ASSERT_TRUE(g0.found);
  // L = {ql, v1..v5}, R = {qr, u1..u3} (the paper's Figure 2).
  EXPECT_EQ(g0.left, (std::vector<VertexId>{f.ql, f.v1, f.v2, f.v3, f.v4, f.v5}));
  EXPECT_EQ(g0.right, (std::vector<VertexId>{f.qr, f.u1, f.u2, f.u3}));
  // Example 1/2: B is the single butterfly {ql, v5} x {qr, u3}.
  EXPECT_EQ(g0.counts.total, 1u);
  EXPECT_EQ(g0.counts.chi[f.ql], 1u);
  EXPECT_EQ(g0.counts.chi[f.v5], 1u);
  EXPECT_EQ(g0.counts.chi[f.qr], 1u);
  EXPECT_EQ(g0.counts.chi[f.u3], 1u);
  EXPECT_EQ(g0.counts.chi[f.v1], 0u);
  EXPECT_EQ(stats.butterfly_counting_calls, 1u);
}

TEST(FindG0Test, AutoParametersUseQueryCoreness) {
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.ql, f.qr};
  BccParams p;  // k1 = k2 = 0 (auto), b = 1
  G0Result g0 = FindG0(f.graph, q, p, nullptr);
  ASSERT_TRUE(g0.found);
  EXPECT_EQ(g0.k1, 4u);
  EXPECT_EQ(g0.k2, 3u);
}

TEST(FindG0Test, ButterflyThresholdTooHigh) {
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.ql, f.qr};
  BccParams p{4, 3, 2};  // only one butterfly exists
  G0Result g0 = FindG0(f.graph, q, p, nullptr);
  EXPECT_FALSE(g0.found);
}

TEST(FindG0Test, CoreTooHigh) {
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.ql, f.qr};
  BccParams p{5, 3, 1};  // the SE side has no 5-core
  EXPECT_FALSE(FindG0(f.graph, q, p, nullptr).found);
}

TEST(FindG0Test, SameLabelQueriesRejected) {
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.ql, f.v1};
  EXPECT_FALSE(FindG0(f.graph, q, BccParams{}, nullptr).found);
}

TEST(FindG0Test, JuniorBiasedQueriesFindSameCommunity) {
  // Section 3.3: whether queries are leaders or juniors, the underlying
  // community is identical.
  Figure1Graph f = MakeFigure1Graph();
  BccParams p{4, 3, 1};
  G0Result leader = FindG0(f.graph, BccQuery{f.ql, f.qr}, p, nullptr);
  G0Result junior = FindG0(f.graph, BccQuery{f.v1, f.u1}, p, nullptr);
  ASSERT_TRUE(leader.found);
  ASSERT_TRUE(junior.found);
  EXPECT_EQ(leader.left, junior.left);
  EXPECT_EQ(leader.right, junior.right);
}

TEST(FindG0Test, RestrictionMaskLimitsSearch) {
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.ql, f.qr};
  BccParams p{4, 3, 1};
  // Restrict away v5: the left 4-core collapses (K6 minus a matching minus a
  // vertex is 3-regular at best), so no BCC exists in the restriction.
  std::vector<char> restrict_to(f.graph.NumVertices(), 1);
  restrict_to[f.v5] = 0;
  EXPECT_FALSE(FindG0Restricted(f.graph, q, p, &restrict_to, nullptr).found);
  // Full restriction mask reproduces the unrestricted result.
  restrict_to[f.v5] = 1;
  G0Result g0 = FindG0Restricted(f.graph, q, p, &restrict_to, nullptr);
  ASSERT_TRUE(g0.found);
  EXPECT_EQ(g0.left.size(), 6u);
}

TEST(FindG0Test, ComponentRestriction) {
  // Two parallel butterfly-core communities with the same labels but no
  // connection between them: G0 must contain only the query's component.
  std::vector<Edge> edges;
  std::vector<Label> labels(12);
  // Community A: left triangle {0,1,2}, right triangle {3,4,5}, butterfly.
  // Community B: identical on {6..11}.
  for (VertexId base : {0u, 6u}) {
    edges.push_back({base + 0, base + 1});
    edges.push_back({base + 1, base + 2});
    edges.push_back({base + 0, base + 2});
    edges.push_back({base + 3, base + 4});
    edges.push_back({base + 4, base + 5});
    edges.push_back({base + 3, base + 5});
    edges.push_back({base + 0, base + 3});
    edges.push_back({base + 0, base + 4});
    edges.push_back({base + 1, base + 3});
    edges.push_back({base + 1, base + 4});
    for (int i = 0; i < 3; ++i) {
      labels[base + i] = 0;
      labels[base + 3 + i] = 1;
    }
  }
  LabeledGraph g = LabeledGraph::FromEdges(12, std::move(edges), std::move(labels));
  G0Result g0 = FindG0(g, BccQuery{0, 3}, BccParams{2, 2, 1}, nullptr);
  ASSERT_TRUE(g0.found);
  EXPECT_EQ(g0.left, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(g0.right, (std::vector<VertexId>{3, 4, 5}));
}

TEST(FindG0Test, QueryNotInCore) {
  // Pendant left vertex (degree 1 inside its label group) cannot be in a
  // 2-core, so the search must fail.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 1}, {0, 4}, {4, 5}, {5, 0}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), {0, 0, 0, 0, 1, 1});
  EXPECT_FALSE(FindG0(g, BccQuery{0, 4}, BccParams{2, 1, 1}, nullptr).found);
}

}  // namespace
}  // namespace bccs
