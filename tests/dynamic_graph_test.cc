// Dynamic-graph layer tests: delta validation and application, incremental
// BcIndex repair vs full rebuild (bit-identical), epoch semantics in the
// serving engine, and snapshot delta-log round trips.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bcc/bc_index.h"
#include "eval/serve_engine.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "graph/snapshot.h"
#include "test_util.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_maintenance.h"

namespace bccs {
namespace {

using testing::MakeRandomGraph;

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

std::vector<EdgeUpdate> MakeInsert(std::initializer_list<Edge> edges) {
  std::vector<EdgeUpdate> out;
  for (const Edge& e : edges) out.push_back({EdgeUpdateKind::kInsert, e});
  return out;
}

std::vector<EdgeUpdate> MakeDelete(std::initializer_list<Edge> edges) {
  std::vector<EdgeUpdate> out;
  for (const Edge& e : edges) out.push_back({EdgeUpdateKind::kDelete, e});
  return out;
}

/// Random batch: `deletes` existing edges and `inserts` absent edges, each
/// edge touched at most once.
std::vector<EdgeUpdate> RandomDelta(const LabeledGraph& g, std::mt19937_64& rng,
                                    std::size_t inserts, std::size_t deletes) {
  std::vector<EdgeUpdate> out;
  std::vector<Edge> edges = g.AllEdges();
  std::shuffle(edges.begin(), edges.end(), rng);
  for (std::size_t i = 0; i < deletes && i < edges.size(); ++i) {
    out.push_back({EdgeUpdateKind::kDelete, edges[i]});
  }
  const auto n = static_cast<VertexId>(g.NumVertices());
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  std::set<std::pair<VertexId, VertexId>> used;
  std::size_t guard = 0;
  while (used.size() < inserts && ++guard < 100000) {
    VertexId u = pick(rng), v = pick(rng);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (g.HasEdge(u, v)) continue;
    if (!used.insert({u, v}).second) continue;
    out.push_back({EdgeUpdateKind::kInsert, {u, v}});
  }
  return out;
}

void ExpectSameGraph(const LabeledGraph& a, const LabeledGraph& b, const char* note) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices()) << note;
  ASSERT_EQ(a.NumEdges(), b.NumEdges()) << note;
  ASSERT_EQ(a.NumLabels(), b.NumLabels()) << note;
  EXPECT_EQ(a.MaxDegree(), b.MaxDegree()) << note;
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.LabelOf(v), b.LabelOf(v)) << note << " vertex " << v;
    const auto na = a.Neighbors(v);
    const auto nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << note << " vertex " << v;
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin())) << note << " vertex " << v;
  }
  for (Label l = 0; l < a.NumLabels(); ++l) {
    const auto ga = a.VerticesWithLabel(l);
    const auto gb = b.VerticesWithLabel(l);
    ASSERT_EQ(ga.size(), gb.size()) << note << " label " << l;
    EXPECT_TRUE(std::equal(ga.begin(), ga.end(), gb.begin())) << note << " label " << l;
  }
}

/// The acceptance check: the repaired index must be bit-identical to a
/// freshly built index of the updated graph — coreness, per-label maxima,
/// and every cached pair entry (chi, total, max, argmax on both sides).
void ExpectIndexMatchesFreshBuild(const BcIndex& repaired, const LabeledGraph& updated,
                                  const char* note) {
  BcIndex fresh(updated);
  for (VertexId v = 0; v < updated.NumVertices(); ++v) {
    ASSERT_EQ(repaired.Coreness(v), fresh.Coreness(v)) << note << " coreness of " << v;
  }
  for (Label l = 0; l < updated.NumLabels(); ++l) {
    EXPECT_EQ(repaired.MaxCoreness(l), fresh.MaxCoreness(l)) << note << " label " << l;
  }
  repaired.ForEachCachedPair([&](Label a, Label b, const ButterflyCounts& counts) {
    const auto want_pin = fresh.PairButterflies(a, b);
    const ButterflyCounts& want = *want_pin;
    EXPECT_EQ(counts.total, want.total) << note << " pair " << a << "," << b;
    EXPECT_EQ(counts.max_left, want.max_left) << note << " pair " << a << "," << b;
    EXPECT_EQ(counts.max_right, want.max_right) << note << " pair " << a << "," << b;
    EXPECT_EQ(counts.argmax_left, want.argmax_left) << note << " pair " << a << "," << b;
    EXPECT_EQ(counts.argmax_right, want.argmax_right) << note << " pair " << a << "," << b;
    ASSERT_EQ(counts.chi.size(), want.chi.size()) << note;
    for (VertexId v = 0; v < counts.chi.size(); ++v) {
      ASSERT_EQ(counts.chi[v], want.chi[v])
          << note << " chi of " << v << " in pair " << a << "," << b;
    }
  });
}

PlantedGraph SmallPlanted(std::uint64_t seed, std::size_t labels = 3) {
  PlantedConfig cfg;
  cfg.num_communities = 4;
  cfg.groups_per_community = labels;
  cfg.num_labels = labels;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.seed = seed;
  return GeneratePlanted(cfg);
}

// ---------------------------------------------------------------------------
// BuildGraphDelta validation and normalization.
// ---------------------------------------------------------------------------

TEST(GraphDeltaTest, ValidatesAgainstGraph) {
  // Path 0-1-2-3 with labels 0/1 alternating.
  LabeledGraph g = LabeledGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 1, 0, 1});
  std::string error;

  EXPECT_FALSE(BuildGraphDelta(g, MakeInsert({{0, 4}}), &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;

  EXPECT_FALSE(BuildGraphDelta(g, MakeInsert({{2, 2}}), &error));
  EXPECT_NE(error.find("self loop"), std::string::npos) << error;

  EXPECT_FALSE(BuildGraphDelta(g, MakeInsert({{1, 0}}), &error));
  EXPECT_NE(error.find("insert of existing edge"), std::string::npos) << error;

  EXPECT_FALSE(BuildGraphDelta(g, MakeDelete({{0, 2}}), &error));
  EXPECT_NE(error.find("delete of absent edge"), std::string::npos) << error;

  // Sequential semantics: the second insert of the same edge is a dup.
  EXPECT_FALSE(BuildGraphDelta(g, MakeInsert({{0, 3}, {3, 0}}), &error));
  EXPECT_NE(error.find("update #1"), std::string::npos) << error;
}

TEST(GraphDeltaTest, NormalizesToNetToggles) {
  LabeledGraph g = LabeledGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 1, 0, 1});

  // Insert then delete the same edge: nets to nothing.
  std::vector<EdgeUpdate> updates = MakeInsert({{0, 3}});
  updates.push_back({EdgeUpdateKind::kDelete, {0, 3}});
  auto delta = BuildGraphDelta(g, updates);
  ASSERT_TRUE(delta.has_value());
  EXPECT_TRUE(delta->Empty());

  // Delete then re-insert an existing edge: also nothing.
  updates = MakeDelete({{1, 2}});
  updates.push_back({EdgeUpdateKind::kInsert, {1, 2}});
  delta = BuildGraphDelta(g, updates);
  ASSERT_TRUE(delta.has_value());
  EXPECT_TRUE(delta->Empty());

  // Mixed batch: canonical, sorted, disjoint.
  updates = MakeInsert({{3, 0}});
  updates.push_back({EdgeUpdateKind::kDelete, {2, 1}});
  delta = BuildGraphDelta(g, updates);
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->inserts.size(), 1u);
  ASSERT_EQ(delta->deletes.size(), 1u);
  EXPECT_EQ(delta->inserts[0], (Edge{0, 3}));
  EXPECT_EQ(delta->deletes[0], (Edge{1, 2}));
}

TEST(GraphDeltaTest, ApplyMatchesFromEdgesRebuild) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    LabeledGraph g = MakeRandomGraph(30, 0.15, 3, 100 + trial);
    const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 4, 4);
    auto delta = BuildGraphDelta(g, updates);
    ASSERT_TRUE(delta.has_value());
    const LabeledGraph updated = ApplyGraphDelta(g, *delta);

    // Reference: edit the edge list and rebuild from scratch.
    std::vector<Edge> edges = g.AllEdges();
    for (const Edge& e : delta->deletes) {
      edges.erase(std::find(edges.begin(), edges.end(), e));
    }
    for (const Edge& e : delta->inserts) edges.push_back(e);
    std::vector<Label> labels(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) labels[v] = g.LabelOf(v);
    const LabeledGraph want =
        LabeledGraph::FromEdges(g.NumVertices(), std::move(edges), std::move(labels));
    ExpectSameGraph(updated, want, "trial");
  }
}

TEST(GraphDeltaTest, EmptyDeltaSharesBaseArrays) {
  LabeledGraph g = MakeRandomGraph(20, 0.2, 2, 5);
  auto delta = BuildGraphDelta(g, {});
  ASSERT_TRUE(delta.has_value());
  const LabeledGraph same = ApplyGraphDelta(g, *delta);
  ExpectSameGraph(same, g, "empty delta");
  // Zero-copy: the adjacency storage is literally shared.
  EXPECT_EQ(same.Neighbors(0).data(), g.Neighbors(0).data());
}

// ---------------------------------------------------------------------------
// Updates-file IO.
// ---------------------------------------------------------------------------

TEST(GraphDeltaTest, ReadEdgeUpdatesParsesAndRejects) {
  std::istringstream good("# comment\r\n+ 1 2\n\n- 3 4\r\n  # indented comment\n+ 5 6\n");
  std::string error;
  auto updates = ReadEdgeUpdates(good, &error);
  ASSERT_TRUE(updates.has_value()) << error;
  ASSERT_EQ(updates->size(), 3u);
  EXPECT_EQ((*updates)[0].kind, EdgeUpdateKind::kInsert);
  EXPECT_EQ((*updates)[1].kind, EdgeUpdateKind::kDelete);
  EXPECT_EQ((*updates)[1].edge, (Edge{3, 4}));

  std::istringstream bad_op("* 1 2\n");
  EXPECT_FALSE(ReadEdgeUpdates(bad_op, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;

  std::istringstream trailing("+ 1 2 9\n");
  EXPECT_FALSE(ReadEdgeUpdates(trailing, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  std::istringstream missing("- 7\n");
  EXPECT_FALSE(ReadEdgeUpdates(missing, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Incremental index repair == full rebuild.
// ---------------------------------------------------------------------------

/// Runs one repair-vs-rebuild comparison and returns the stats.
UpdateRepairStats RepairAndCheck(const LabeledGraph& g, const std::vector<EdgeUpdate>& updates,
                                 const UpdateRepairOptions& opts, const char* note) {
  BcIndex index(g);
  index.MaterializeAllPairs();
  auto delta = BuildGraphDelta(g, updates);
  EXPECT_TRUE(delta.has_value());
  const LabeledGraph updated = ApplyGraphDelta(g, *delta);
  UpdateRepairStats stats;
  const auto repaired = index.ApplyUpdates(updated, *delta, opts, &stats);
  EXPECT_EQ(repaired->CachedPairCount(), index.CachedPairCount()) << note;
  ExpectIndexMatchesFreshBuild(*repaired, updated, note);
  return stats;
}

TEST(DynamicIndexTest, InsertOnlyBatchesMatchRebuild) {
  std::mt19937_64 rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    LabeledGraph g = MakeRandomGraph(40, 0.12, 3, 200 + trial);
    const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 1 + trial % 5, 0);
    RepairAndCheck(g, updates, {}, "insert-only");
  }
}

TEST(DynamicIndexTest, DeleteOnlyBatchesMatchRebuild) {
  std::mt19937_64 rng(22);
  for (int trial = 0; trial < 8; ++trial) {
    LabeledGraph g = MakeRandomGraph(40, 0.12, 3, 300 + trial);
    const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 0, 1 + trial % 5);
    RepairAndCheck(g, updates, {}, "delete-only");
  }
}

TEST(DynamicIndexTest, MixedBatchesMatchRebuild) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    LabeledGraph g = MakeRandomGraph(40, 0.12, 3, 400 + trial);
    const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 2 + trial % 4, 2);
    RepairAndCheck(g, updates, {}, "mixed");
  }
}

TEST(DynamicIndexTest, PlantedGraphRepairMatchesRebuild) {
  std::mt19937_64 rng(24);
  PlantedGraph pg = SmallPlanted(9);
  for (int trial = 0; trial < 4; ++trial) {
    const std::vector<EdgeUpdate> updates = RandomDelta(pg.graph, rng, 3, 3);
    RepairAndCheck(pg.graph, updates, {}, "planted");
  }
}

TEST(DynamicIndexTest, FallbackThresholdCrossing) {
  std::mt19937_64 rng(25);
  LabeledGraph g = MakeRandomGraph(40, 0.15, 2, 500);
  const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 3, 3);

  // Cap 0 forces every touched label/pair onto the scoped-rebuild path.
  UpdateRepairOptions scoped;
  scoped.label_incremental_cap = 0;
  scoped.pair_incremental_cap = 0;
  const UpdateRepairStats s1 = RepairAndCheck(g, updates, scoped, "cap 0");
  EXPECT_EQ(s1.labels_incremental, 0u);
  EXPECT_EQ(s1.pairs_incremental, 0u);
  EXPECT_EQ(s1.labels_rebuilt + s1.pairs_recounted, s1.labels_touched + s1.pairs_touched);

  // A huge cap keeps single-direction labels and all pairs incremental.
  UpdateRepairOptions generous;
  generous.label_incremental_cap = 1000;
  generous.pair_incremental_cap = 1000;
  const UpdateRepairStats s2 = RepairAndCheck(g, updates, generous, "cap 1000");
  EXPECT_GT(s2.pairs_incremental + s2.labels_incremental + s2.labels_rebuilt, 0u);
  EXPECT_EQ(s2.pairs_recounted, 0u);
}

TEST(DynamicIndexTest, UncachedPairsFaultInAgainstUpdatedGraph) {
  std::mt19937_64 rng(26);
  LabeledGraph g = MakeRandomGraph(36, 0.15, 3, 600);
  BcIndex index(g);  // nothing materialized
  const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 3, 3);
  auto delta = BuildGraphDelta(g, updates);
  ASSERT_TRUE(delta.has_value());
  const LabeledGraph updated = ApplyGraphDelta(g, *delta);
  const auto repaired = index.ApplyUpdates(updated, *delta);
  EXPECT_EQ(repaired->CachedPairCount(), 0u);
  // First use computes against the updated graph.
  BcIndex fresh(updated);
  for (Label a = 0; a < 3; ++a) {
    for (Label b = a + 1; b < 3; ++b) {
      EXPECT_EQ(repaired->PairButterflies(a, b)->total, fresh.PairButterflies(a, b)->total);
    }
  }
}

// ---------------------------------------------------------------------------
// Query answers after ApplyUpdates are bit-identical to a fresh build.
// ---------------------------------------------------------------------------

TEST(DynamicIndexTest, QueriesBitIdenticalToFreshIndex) {
  std::mt19937_64 rng(27);
  PlantedGraph pg = SmallPlanted(13);
  const LabeledGraph& g = pg.graph;
  const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 6, 6);
  auto delta = BuildGraphDelta(g, updates);
  ASSERT_TRUE(delta.has_value());
  const LabeledGraph updated = ApplyGraphDelta(g, *delta);

  BcIndex base(g);
  base.MaterializeAllPairs();
  const auto repaired = base.ApplyUpdates(updated, *delta);
  BcIndex fresh(updated);
  fresh.MaterializeAllPairs();

  std::vector<BccQuery> queries;
  for (const PlantedCommunity& c : pg.communities) {
    queries.push_back({c.groups[0][0], c.groups[1][0]});
  }
  BatchRunner runner(2);
  const BccParams params;
  const BatchResult from_repaired = runner.RunL2pBatch(updated, *repaired, queries, params, {});
  const BatchResult from_fresh = runner.RunL2pBatch(updated, fresh, queries, params, {});
  ASSERT_EQ(from_repaired.communities.size(), from_fresh.communities.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(from_repaired.communities[i].vertices, from_fresh.communities[i].vertices)
        << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// ServeEngine epoch semantics.
// ---------------------------------------------------------------------------

TEST(ServeUpdateTest, QueriesObserveTheirEpoch) {
  PlantedGraph pg = SmallPlanted(31, 2);
  const LabeledGraph& g = pg.graph;
  const BccQuery q{pg.communities[0].groups[0][0], pg.communities[0].groups[1][0]};

  // Pre-update answer (separate engine, same planning options).
  BatchRunner runner(2);
  QueryRequest query;
  query.query = q;
  query.method = QueryMethod::kLpBcc;
  ServeEngine pre_engine(runner, g);
  const Community pre = pre_engine.Serve(std::vector<QueryRequest>{query}).communities[0];
  ASSERT_FALSE(pre.Empty());

  // Isolate ql entirely: afterwards no connected subgraph contains both
  // query vertices, so the post-update answer must be empty.
  UpdateRequest update;
  for (VertexId w : g.Neighbors(q.ql)) {
    update.updates.push_back({EdgeUpdateKind::kDelete, {q.ql, w}});
  }
  ASSERT_FALSE(update.updates.empty());

  ServeEngine engine(runner, g);
  std::vector<ServeItem> items;
  items.emplace_back(query);
  items.emplace_back(update);
  items.emplace_back(query);
  const BatchResult result = engine.Serve(std::span<const ServeItem>(items));

  ASSERT_EQ(result.updates.size(), 1u);
  EXPECT_TRUE(result.updates[0].applied) << result.updates[0].error;
  EXPECT_EQ(result.updates[0].epoch, 2u);
  ASSERT_EQ(result.epoch_of.size(), 3u);
  EXPECT_EQ(result.epoch_of[0], 1u);
  EXPECT_EQ(result.epoch_of[1], 2u);
  EXPECT_EQ(result.epoch_of[2], 2u);

  // The pre-update query matches the pre-update engine; the post-update
  // query observes the changed graph.
  EXPECT_EQ(result.communities[0].vertices, pre.vertices);
  EXPECT_TRUE(result.communities[2].Empty());
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_LT(engine.graph().NumEdges(), g.NumEdges());
}

TEST(ServeUpdateTest, RejectedUpdateLeavesEpochUntouched) {
  LabeledGraph g = LabeledGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 1, 0, 1});
  BatchRunner runner(1);
  ServeEngine engine(runner, g);

  QueryRequest query;
  query.query = BccQuery{0, 1};
  query.method = QueryMethod::kOnlineBcc;
  UpdateRequest bad;
  bad.updates = MakeInsert({{0, 1}});  // already present: rejected

  std::vector<ServeItem> items;
  items.emplace_back(bad);
  items.emplace_back(query);
  const BatchResult result = engine.Serve(std::span<const ServeItem>(items));
  ASSERT_EQ(result.updates.size(), 1u);
  EXPECT_FALSE(result.updates[0].applied);
  EXPECT_NE(result.updates[0].error.find("insert of existing edge"), std::string::npos)
      << result.updates[0].error;
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(result.epoch_of[1], 1u);
  EXPECT_EQ(&engine.graph(), &g);  // still serving the original graph
}

TEST(ServeUpdateTest, UpdateOnlyStreamHasNoQueryLatency) {
  // The latency/qps summary describes query serving; an update's apply
  // time must not masquerade as a served query.
  LabeledGraph g = LabeledGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 1, 0, 1});
  BatchRunner runner(1);
  ServeEngine engine(runner, g);
  UpdateRequest update;
  update.updates = MakeInsert({{0, 3}});
  std::vector<ServeItem> items;
  items.emplace_back(update);
  const BatchResult result = engine.Serve(std::span<const ServeItem>(items));
  ASSERT_EQ(result.updates.size(), 1u);
  EXPECT_TRUE(result.updates[0].applied) << result.updates[0].error;
  EXPECT_EQ(result.latency.qps, 0);
  EXPECT_EQ(result.latency.avg_seconds, 0);
  EXPECT_TRUE(result.lanes.empty());
  EXPECT_GE(result.seconds[0], 0);  // the slot still records the apply time
}

TEST(ServeUpdateTest, L2pServesRepairedIndexAcrossEpochs) {
  PlantedGraph pg = SmallPlanted(37, 2);
  const LabeledGraph& g = pg.graph;
  std::mt19937_64 rng(41);
  const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 4, 4);

  auto base_graph = std::make_shared<const LabeledGraph>(g);
  auto base_index = std::make_shared<BcIndex>(*base_graph);
  base_index->MaterializeAllPairs();

  BatchRunner runner(2);
  ServeEngine engine(runner, base_graph, base_index);

  UpdateRequest update;
  update.updates = updates;
  std::vector<ServeItem> items;
  items.emplace_back(update);
  QueryRequest query;
  query.method = QueryMethod::kL2pBcc;
  for (const PlantedCommunity& c : pg.communities) {
    query.query = BccQuery{c.groups[0][0], c.groups[1][0]};
    items.emplace_back(query);
  }
  const BatchResult served = engine.Serve(std::span<const ServeItem>(items));
  ASSERT_TRUE(served.updates[0].applied) << served.updates[0].error;

  // Reference: fresh index on the updated graph, same request ids.
  auto delta = BuildGraphDelta(g, updates);
  ASSERT_TRUE(delta.has_value());
  const LabeledGraph updated = ApplyGraphDelta(g, *delta);
  BcIndex fresh(updated);
  fresh.MaterializeAllPairs();
  ServeEngine reference(runner, updated, &fresh);
  std::vector<QueryRequest> ref_queries;
  for (std::size_t i = 1; i < items.size(); ++i) {
    QueryRequest r = std::get<QueryRequest>(items[i]);
    r.request_id = 1 + i;  // match the ids the mixed stream assigned
    ref_queries.push_back(r);
  }
  const BatchResult want = reference.Serve(ref_queries);
  for (std::size_t i = 0; i < ref_queries.size(); ++i) {
    EXPECT_EQ(served.communities[1 + i].vertices, want.communities[i].vertices)
        << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Snapshot delta log.
// ---------------------------------------------------------------------------

class SnapshotDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "dynamic_snapshot_test.snap";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string ReadFile() {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  void WriteFile(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

TEST_F(SnapshotDeltaTest, RoundTripReplaysUpdates) {
  std::mt19937_64 rng(51);
  LabeledGraph g = MakeRandomGraph(36, 0.15, 3, 700);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));

  const std::vector<EdgeUpdate> first = RandomDelta(g, rng, 3, 3);
  ASSERT_TRUE(AppendDeltaBlock(path_, first, {}));

  std::string error;
  auto loaded = LoadSnapshot(path_, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->replayed_updates, first.size());

  auto delta = BuildGraphDelta(g, first);
  ASSERT_TRUE(delta.has_value());
  const LabeledGraph updated = ApplyGraphDelta(g, *delta);
  ExpectSameGraph(*loaded->graph, updated, "after one block");
  ExpectIndexMatchesFreshBuild(*loaded->index, updated, "after one block");

  // A second block chains on top of the replayed state.
  const std::vector<EdgeUpdate> second = RandomDelta(updated, rng, 2, 2);
  ASSERT_TRUE(AppendDeltaBlock(path_, second, {}));
  loaded = LoadSnapshot(path_, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->replayed_updates, first.size() + second.size());

  auto delta2 = BuildGraphDelta(updated, second);
  ASSERT_TRUE(delta2.has_value());
  const LabeledGraph updated2 = ApplyGraphDelta(updated, *delta2);
  ExpectSameGraph(*loaded->graph, updated2, "after two blocks");
  ExpectIndexMatchesFreshBuild(*loaded->index, updated2, "after two blocks");
}

TEST_F(SnapshotDeltaTest, EffectiveStampIsLastBlock) {
  LabeledGraph g = MakeRandomGraph(24, 0.2, 2, 800);
  BcIndex index(g);
  index.MaterializeAllPairs();
  const SourceGraphInfo base_stamp{100, 200};
  ASSERT_TRUE(SaveSnapshot(index, path_, nullptr, base_stamp));

  std::mt19937_64 rng(61);
  const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 2, 2);
  const SourceGraphInfo new_stamp{300, 400};
  ASSERT_TRUE(AppendDeltaBlock(path_, updates, new_stamp));

  std::string error;
  SnapshotLoadOptions opts;

  // The base payload is stale relative to new_stamp, but the delta block
  // re-stamped the file: the effective stamp matches, so the load succeeds
  // and replays.
  opts.expected_source = new_stamp;
  auto loaded = LoadSnapshot(path_, &error, opts);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->replayed_updates, updates.size());

  // The OLD stamp no longer matches the effective one.
  opts.expected_source = base_stamp;
  EXPECT_FALSE(LoadSnapshot(path_, &error, opts));
  EXPECT_NE(error.find("stale"), std::string::npos) << error;

  // Unknown expectation skips the check.
  opts.expected_source = {};
  EXPECT_TRUE(LoadSnapshot(path_, &error, opts));
}

TEST_F(SnapshotDeltaTest, CorruptDeltaLogRejected) {
  LabeledGraph g = MakeRandomGraph(24, 0.2, 2, 900);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));
  const std::string base = ReadFile();

  std::mt19937_64 rng(71);
  const std::vector<EdgeUpdate> updates = RandomDelta(g, rng, 2, 2);
  ASSERT_TRUE(AppendDeltaBlock(path_, updates, {}));
  const std::string with_block = ReadFile();
  ASSERT_GT(with_block.size(), base.size());

  std::string error;

  // Arbitrary trailing bytes are not a delta log.
  WriteFile(base + "garbage!");
  EXPECT_FALSE(LoadSnapshot(path_, &error));
  EXPECT_NE(error.find("delta"), std::string::npos) << error;

  // A truncated block header is a torn tail: RECOVERED, not rejected — the
  // loader replays the (empty) valid prefix and reports the torn bytes.
  WriteFile(with_block.substr(0, base.size() + 16));
  {
    auto torn = LoadSnapshot(path_, &error);
    ASSERT_TRUE(torn.has_value()) << error;
    EXPECT_EQ(torn->replayed_updates, 0u);
    EXPECT_EQ(torn->delta_log_valid_bytes, base.size());
    EXPECT_EQ(torn->delta_log_torn_bytes, 16u);
  }

  // Entries cut short: same recovery.
  WriteFile(with_block.substr(0, with_block.size() - 8));
  {
    auto torn = LoadSnapshot(path_, &error);
    ASSERT_TRUE(torn.has_value()) << error;
    EXPECT_EQ(torn->replayed_updates, 0u);
    EXPECT_EQ(torn->delta_log_torn_bytes, with_block.size() - 8 - base.size());
  }

  // A flipped entry byte fails the block checksum. As the LAST block it is
  // indistinguishable from a torn append and recovers to the prefix...
  std::string corrupt = with_block;
  corrupt[base.size() + 44] ^= 0x5a;  // inside the first entry
  WriteFile(corrupt);
  {
    auto torn = LoadSnapshot(path_, &error);
    ASSERT_TRUE(torn.has_value()) << error;
    EXPECT_EQ(torn->replayed_updates, 0u);
    EXPECT_GT(torn->delta_log_torn_bytes, 0u);
  }
  // ...but with a valid block AFTER it, the flipped byte is settled-data
  // corruption and the load is rejected.
  {
    std::mt19937_64 rng2(73);
    WriteFile(with_block);
    auto clean = LoadSnapshot(path_, &error);
    ASSERT_TRUE(clean.has_value()) << error;
    const std::vector<EdgeUpdate> more = RandomDelta(*clean->graph, rng2, 1, 1);
    ASSERT_TRUE(AppendDeltaBlock(path_, more, {}));
    std::string two_blocks = ReadFile();
    two_blocks[base.size() + 44] ^= 0x5a;  // first block's entries again
    WriteFile(two_blocks);
    EXPECT_FALSE(LoadSnapshot(path_, &error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  }

  // Updates that do not apply to the stored graph are rejected on replay:
  // append a block deleting an absent edge.
  WriteFile(base);
  std::vector<EdgeUpdate> bogus = MakeDelete({{0, 1}});
  if (g.HasEdge(0, 1)) bogus = MakeInsert({{0, 1}});
  ASSERT_TRUE(AppendDeltaBlock(path_, bogus, {}));
  EXPECT_FALSE(LoadSnapshot(path_, &error));
  EXPECT_NE(error.find("does not apply"), std::string::npos) << error;

  // The intact block still loads.
  WriteFile(with_block);
  EXPECT_TRUE(LoadSnapshot(path_, &error)) << error;
}

// A crash (or full disk) partway through AppendDeltaBlock must leave the
// file exactly as it was: the injected failure trips after every possible
// byte count of the block, and each time the rollback restores the prior
// size and the snapshot replays the prior state.
TEST_F(SnapshotDeltaTest, PartialAppendRollsBackAtEverySeamByte) {
  LabeledGraph g = MakeRandomGraph(24, 0.2, 2, 910);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));
  const std::string base = ReadFile();

  std::mt19937_64 rng(75);
  const std::vector<EdgeUpdate> first = RandomDelta(g, rng, 2, 2);
  ASSERT_TRUE(AppendDeltaBlock(path_, first, {}));
  const std::size_t block_bytes = ReadFile().size() - base.size();
  WriteFile(base);

  std::string error;
  for (std::size_t inject = 0; inject < block_bytes; ++inject) {
    internal::g_append_fail_after_bytes_for_test = inject;
    EXPECT_FALSE(AppendDeltaBlock(path_, first, {}, &error)) << "inject " << inject;
    internal::g_append_fail_after_bytes_for_test = SIZE_MAX;
    EXPECT_NE(error.find("rolled back"), std::string::npos) << error;
    EXPECT_EQ(ReadFile(), base) << "inject " << inject;
    auto loaded = LoadSnapshot(path_, &error);
    ASSERT_TRUE(loaded.has_value()) << "inject " << inject << ": " << error;
    EXPECT_EQ(loaded->replayed_updates, 0u);
  }

  // The seam disabled, the very same append succeeds and replays.
  ASSERT_TRUE(AppendDeltaBlock(path_, first, {}, &error)) << error;
  auto loaded = LoadSnapshot(path_, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->replayed_updates, first.size());
}

// Torn-tail recovery of the in-file delta chain at EVERY byte offset of the
// last block: one complete block followed by a cut anywhere inside the
// second block always recovers the first block exactly.
TEST_F(SnapshotDeltaTest, TornTailRecoversAtEveryByteOfTheLastBlock) {
  LabeledGraph g = MakeRandomGraph(24, 0.2, 2, 911);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(SaveSnapshot(index, path_));
  const std::string base = ReadFile();

  std::mt19937_64 rng(77);
  const std::vector<EdgeUpdate> first = RandomDelta(g, rng, 2, 2);
  ASSERT_TRUE(AppendDeltaBlock(path_, first, {}));
  const std::string one_block = ReadFile();

  std::string error;
  auto replayed = LoadSnapshot(path_, &error);
  ASSERT_TRUE(replayed.has_value()) << error;
  const std::vector<EdgeUpdate> second = RandomDelta(*replayed->graph, rng, 2, 2);
  ASSERT_TRUE(AppendDeltaBlock(path_, second, {}));
  const std::string two_blocks = ReadFile();

  for (std::size_t cut = one_block.size(); cut < two_blocks.size(); ++cut) {
    WriteFile(two_blocks.substr(0, cut));
    auto torn = LoadSnapshot(path_, &error);
    ASSERT_TRUE(torn.has_value()) << "cut at " << cut << ": " << error;
    EXPECT_EQ(torn->replayed_updates, first.size()) << "cut at " << cut;
    EXPECT_EQ(torn->delta_log_valid_bytes, one_block.size()) << "cut at " << cut;
    EXPECT_EQ(torn->delta_log_torn_bytes, cut - one_block.size()) << "cut at " << cut;
    ExpectSameGraph(*torn->graph, *replayed->graph, "torn tail");
  }
}

// ---------------------------------------------------------------------------
// Truss maintenance under edge updates (the CTC substrate on dynamic
// graphs): RemoveEdge must leave exactly the k-truss of the remaining
// edges.
// ---------------------------------------------------------------------------

TEST(TrussRemoveEdgeTest, MatchesRebuiltDecomposition) {
  // K5 {0..4} plus a pendant triangle {4, 5, 6}.
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) edges.push_back({i, j});
  }
  edges.push_back({4, 5});
  edges.push_back({4, 6});
  edges.push_back({5, 6});
  LabeledGraph g = LabeledGraph::FromEdges(7, edges, std::vector<Label>(7, 0));

  const std::uint32_t k = 4;
  TrussDecomposition td = TrussDecomposition::Compute(g);
  const auto all = testing::AllVertices(g);
  KTrussMaintainer maintainer(g, td, all, k);

  auto alive_edges = [&] {
    std::vector<Edge> out;
    for (std::uint32_t e = 0; e < td.edges().size(); ++e) {
      if (maintainer.EdgeAlive(e)) out.push_back(td.edges()[e]);
    }
    return out;
  };
  auto expect_matches_rebuild = [&](const std::vector<Edge>& removed) {
    std::vector<Edge> remaining;
    for (const Edge& e : g.AllEdges()) {
      if (std::find(removed.begin(), removed.end(), e) == removed.end()) {
        remaining.push_back(e);
      }
    }
    LabeledGraph rebuilt =
        LabeledGraph::FromEdges(7, remaining, std::vector<Label>(7, 0));
    TrussDecomposition td2 = TrussDecomposition::Compute(rebuilt);
    std::vector<Edge> want;
    for (std::uint32_t e = 0; e < td2.edges().size(); ++e) {
      if (td2.trussness()[e] >= k) want.push_back(td2.edges()[e]);
    }
    EXPECT_EQ(alive_edges(), want);
  };

  // Removing one K5 edge keeps the rest of the clique 4-trussy.
  EXPECT_TRUE(maintainer.RemoveEdge(0, 1).empty());
  expect_matches_rebuild({{0, 1}});

  // A second incident removal cascades vertex 0 out entirely.
  const std::vector<VertexId> died = maintainer.RemoveEdge(0, 2);
  EXPECT_EQ(died, std::vector<VertexId>{0});
  expect_matches_rebuild({{0, 1}, {0, 2}});

  // Removing an edge that is already dead is a no-op.
  EXPECT_TRUE(maintainer.RemoveEdge(0, 3).empty());
  // Absent edges are a no-op too.
  EXPECT_TRUE(maintainer.RemoveEdge(1, 6).empty());
}

}  // namespace
}  // namespace bccs
