#include "bcc/mbcc.h"

#include <gtest/gtest.h>

#include "bcc/online_search.h"
#include "bcc/verify.h"
#include "graph/generators.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

TEST(MbccTest, TwoLabelsEquivalentToBcc) {
  // Definition 8 with m = 2 coincides with Definition 4; the search result
  // must match the two-label search.
  Figure1Graph f = MakeFigure1Graph();
  MbccQuery q{{f.ql, f.qr}};
  MbccParams p;
  p.k = {4, 3};
  p.b = 1;
  Community mbcc = MbccSearch(f.graph, q, p, LpBccOptions());
  Community bcc = LpBcc(f.graph, BccQuery{f.ql, f.qr}, BccParams{4, 3, 1});
  EXPECT_EQ(mbcc.vertices, bcc.vertices);
}

TEST(MbccTest, RejectsDuplicateLabels) {
  Figure1Graph f = MakeFigure1Graph();
  MbccQuery q{{f.ql, f.v1}};  // both SE
  EXPECT_TRUE(MbccSearch(f.graph, q, MbccParams{}, LpBccOptions()).Empty());
}

TEST(MbccTest, RejectsSingleQuery) {
  Figure1Graph f = MakeFigure1Graph();
  MbccQuery q{{f.ql}};
  EXPECT_TRUE(MbccSearch(f.graph, q, MbccParams{}, LpBccOptions()).Empty());
}

TEST(MbccTest, ResolveCores) {
  Figure1Graph f = MakeFigure1Graph();
  MbccQuery q{{f.ql, f.qr}};
  MbccParams p;  // all auto
  auto ks = ResolveMbccCores(f.graph, q, p);
  EXPECT_EQ(ks, (std::vector<std::uint32_t>{4, 3}));
  p.k = {2, 0};
  ks = ResolveMbccCores(f.graph, q, p);
  EXPECT_EQ(ks, (std::vector<std::uint32_t>{2, 3}));
}

// Builds a 3-label chain community: groups A-B connected by a biclique and
// B-C connected by a biclique, but no A-C cross edges. Cross-group
// connectivity (Definition 7) must hold through the path A-B-C.
LabeledGraph ChainCommunity() {
  std::vector<Edge> edges;
  std::vector<Label> labels(12);
  // Three labeled K4s: {0..3} label 0, {4..7} label 1, {8..11} label 2.
  for (VertexId base : {0u, 4u, 8u}) {
    for (VertexId i = 0; i < 4; ++i) {
      for (VertexId j = i + 1; j < 4; ++j) {
        edges.push_back({base + i, base + j});
      }
      labels[base + i] = base / 4;
    }
  }
  // Biclique {0,1} x {4,5} and biclique {6,7} x {8,9}.
  for (VertexId a : {0u, 1u}) {
    for (VertexId b : {4u, 5u}) edges.push_back({a, b});
  }
  for (VertexId a : {6u, 7u}) {
    for (VertexId b : {8u, 9u}) edges.push_back({a, b});
  }
  return LabeledGraph::FromEdges(12, std::move(edges), std::move(labels));
}

TEST(MbccTest, ChainConnectivityAccepted) {
  LabeledGraph g = ChainCommunity();
  MbccQuery q{{0, 4, 8}};
  MbccParams p;
  p.k = {3, 3, 3};
  p.b = 1;
  Community c = MbccSearch(g, q, p, LpBccOptions());
  ASSERT_FALSE(c.Empty());
  EXPECT_EQ(c.vertices.size(), 12u);
  EXPECT_EQ(VerifyMbcc(g, c, q.vertices, p.k, p.b), MbccViolation::kNone);
}

TEST(MbccTest, BrokenChainRejected) {
  // Remove the B-C biclique: label 2 becomes unreachable in the meta-graph.
  std::vector<Edge> edges;
  std::vector<Label> labels(12);
  for (VertexId base : {0u, 4u, 8u}) {
    for (VertexId i = 0; i < 4; ++i) {
      for (VertexId j = i + 1; j < 4; ++j) edges.push_back({base + i, base + j});
      labels[base + i] = base / 4;
    }
  }
  for (VertexId a : {0u, 1u}) {
    for (VertexId b : {4u, 5u}) edges.push_back({a, b});
  }
  // Single edge B-C: connectivity of the plain graph holds but there is no
  // butterfly between labels 1 and 2.
  edges.push_back({7, 8});
  LabeledGraph g = LabeledGraph::FromEdges(12, std::move(edges), std::move(labels));
  MbccQuery q{{0, 4, 8}};
  MbccParams p;
  p.k = {3, 3, 3};
  p.b = 1;
  EXPECT_TRUE(MbccSearch(g, q, p, LpBccOptions()).Empty());
}

class MbccPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MbccPropertyTest, ValidOnPlantedMultiLabelGraphs) {
  PlantedConfig cfg;
  cfg.num_communities = 5;
  cfg.groups_per_community = 4;
  cfg.num_labels = 6;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  cfg.intra_edge_prob = 0.5;
  cfg.cross_pair_prob = 0.15;
  cfg.seed = GetParam() + 60;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[GetParam() % pg.communities.size()];

  for (std::size_t m : {2u, 3u, 4u}) {
    MbccQuery q;
    for (std::size_t i = 0; i < m; ++i) q.vertices.push_back(comm.groups[i][0]);
    MbccParams p;
    p.k.assign(m, 2);
    p.b = 1;
    for (bool leader : {false, true}) {
      SearchOptions opts = leader ? LpBccOptions() : OnlineBccOptions();
      Community c = MbccSearch(pg.graph, q, p, opts);
      ASSERT_FALSE(c.Empty()) << "m=" << m << " leader=" << leader;
      EXPECT_EQ(VerifyMbcc(pg.graph, c, q.vertices, p.k, p.b), MbccViolation::kNone)
          << "m=" << m << " leader=" << leader << " seed=" << GetParam();
    }
  }
}

TEST_P(MbccPropertyTest, LeaderStrategyMatchesOnline) {
  PlantedConfig cfg;
  cfg.num_communities = 4;
  cfg.groups_per_community = 3;
  cfg.num_labels = 5;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  cfg.intra_edge_prob = 0.5;
  cfg.cross_pair_prob = 0.2;
  cfg.seed = GetParam() + 90;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  MbccQuery q;
  for (std::size_t i = 0; i < 3; ++i) q.vertices.push_back(comm.groups[i][0]);
  MbccParams p;
  p.k.assign(3, 2);
  Community online = MbccSearch(pg.graph, q, p, OnlineBccOptions());
  Community lp = MbccSearch(pg.graph, q, p, LpBccOptions());
  EXPECT_EQ(online.vertices, lp.vertices);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbccPropertyTest, ::testing::Range<std::uint64_t>(0, 5));

}  // namespace
}  // namespace bccs
