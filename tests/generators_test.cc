#include "graph/generators.h"

#include <set>

#include <gtest/gtest.h>

#include "butterfly/butterfly_counting.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MaskOf;

TEST(PlantedGeneratorTest, Deterministic) {
  PlantedConfig cfg;
  cfg.seed = 99;
  PlantedGraph a = GeneratePlanted(cfg);
  PlantedGraph b = GeneratePlanted(cfg);
  EXPECT_EQ(a.graph.NumVertices(), b.graph.NumVertices());
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  cfg.seed = 100;
  PlantedGraph c = GeneratePlanted(cfg);
  EXPECT_NE(a.graph.NumEdges(), c.graph.NumEdges());
}

TEST(PlantedGeneratorTest, CommunityStructure) {
  PlantedConfig cfg;
  cfg.num_communities = 6;
  cfg.min_group_size = 10;
  cfg.max_group_size = 20;
  cfg.seed = 1;
  PlantedGraph pg = GeneratePlanted(cfg);
  ASSERT_EQ(pg.communities.size(), 6u);
  for (const PlantedCommunity& comm : pg.communities) {
    ASSERT_EQ(comm.groups.size(), 2u);
    ASSERT_EQ(comm.labels.size(), 2u);
    EXPECT_NE(comm.labels[0], comm.labels[1]);
    for (std::size_t gi = 0; gi < 2; ++gi) {
      EXPECT_GE(comm.groups[gi].size(), cfg.min_group_size);
      EXPECT_LE(comm.groups[gi].size(), cfg.max_group_size);
      for (VertexId v : comm.groups[gi]) {
        EXPECT_EQ(pg.graph.LabelOf(v), comm.labels[gi]);
      }
    }
  }
}

TEST(PlantedGeneratorTest, SiblingGroupsHaveAButterfly) {
  PlantedConfig cfg;
  cfg.num_communities = 5;
  cfg.cross_pair_prob = 0.0;  // only the explicit biclique remains
  cfg.noise_cross_fraction = 0.0;
  cfg.seed = 4;
  PlantedGraph pg = GeneratePlanted(cfg);
  for (const PlantedCommunity& comm : pg.communities) {
    auto counts = CountButterflies(pg.graph, comm.groups[0], comm.groups[1],
                                   MaskOf(pg.graph, comm.groups[0]),
                                   MaskOf(pg.graph, comm.groups[1]));
    EXPECT_GE(counts.total, 1u);
    EXPECT_GE(counts.max_left, 1u);
    EXPECT_GE(counts.max_right, 1u);
  }
}

TEST(PlantedGeneratorTest, GroupsAreConnectedAndDense) {
  PlantedConfig cfg;
  cfg.num_communities = 4;
  cfg.intra_edge_prob = 0.3;
  cfg.seed = 11;
  PlantedGraph pg = GeneratePlanted(cfg);
  for (const PlantedCommunity& comm : pg.communities) {
    for (const auto& group : comm.groups) {
      // The cycle backbone guarantees same-group degree >= 2.
      auto mask = MaskOf(pg.graph, group);
      for (VertexId v : group) {
        std::uint32_t d = 0;
        for (VertexId w : pg.graph.Neighbors(v)) d += mask[w];
        EXPECT_GE(d, 2u);
      }
    }
  }
}

TEST(PlantedGeneratorTest, MultiLabelCommunities) {
  PlantedConfig cfg;
  cfg.groups_per_community = 4;
  cfg.num_labels = 7;
  cfg.num_communities = 5;
  cfg.seed = 2;
  PlantedGraph pg = GeneratePlanted(cfg);
  for (const PlantedCommunity& comm : pg.communities) {
    ASSERT_EQ(comm.groups.size(), 4u);
    std::set<Label> labels(comm.labels.begin(), comm.labels.end());
    EXPECT_EQ(labels.size(), 4u) << "labels must be distinct within a community";
  }
}

TEST(PlantedGeneratorTest, BackgroundVerticesAttached) {
  PlantedConfig cfg;
  cfg.num_communities = 3;
  cfg.background_vertices = 50;
  cfg.seed = 6;
  PlantedGraph pg = GeneratePlanted(cfg);
  std::size_t planted = 0;
  for (const auto& comm : pg.communities) {
    for (const auto& grp : comm.groups) planted += grp.size();
  }
  EXPECT_EQ(pg.graph.NumVertices(), planted + 50);
  for (VertexId v = static_cast<VertexId>(planted); v < pg.graph.NumVertices(); ++v) {
    EXPECT_GE(pg.graph.Degree(v), 1u) << "background vertex " << v << " isolated";
  }
}

TEST(PlantedGeneratorTest, AllVerticesHelper) {
  PlantedCommunity comm;
  comm.groups = {{5, 3}, {9, 1}};
  EXPECT_EQ(comm.AllVertices(), (std::vector<VertexId>{1, 3, 5, 9}));
}

TEST(ErdosRenyiTest, ApproximatesTargetDegree) {
  LabeledGraph g = GenerateErdosRenyi(2000, 8.0, 3, 5);
  double avg = 2.0 * static_cast<double>(g.NumEdges()) / static_cast<double>(g.NumVertices());
  EXPECT_GT(avg, 6.0);
  EXPECT_LT(avg, 9.0);
  EXPECT_EQ(g.NumLabels(), 3u);
}

TEST(RandomBipartiteTest, OnlyCrossEdges) {
  LabeledGraph g = GenerateRandomBipartite(20, 30, 0.2, 8);
  EXPECT_EQ(g.NumVertices(), 50u);
  for (const Edge& e : g.AllEdges()) {
    EXPECT_NE(g.LabelOf(e.u), g.LabelOf(e.v));
  }
}

TEST(HubSpokeTest, Shape) {
  HubSpokeConfig cfg;
  cfg.num_countries = 6;
  cfg.hubs_per_country = 2;
  cfg.spokes_per_country = 8;
  LabeledGraph g = GenerateHubSpoke(cfg);
  EXPECT_EQ(g.NumVertices(), 6u * 10u);
  EXPECT_EQ(g.NumLabels(), 6u);
  // Hubs (first vertices of each country block) out-degree spokes on
  // average.
  double hub_deg = 0, spoke_deg = 0;
  for (std::size_t c = 0; c < 6; ++c) {
    auto base = static_cast<VertexId>(c * 10);
    for (VertexId h = base; h < base + 2; ++h) hub_deg += static_cast<double>(g.Degree(h));
    for (VertexId s = base + 2; s < base + 10; ++s) {
      spoke_deg += static_cast<double>(g.Degree(s));
    }
  }
  EXPECT_GT(hub_deg / 12.0, spoke_deg / 48.0);
}

TEST(CorePeripheryTest, MajorsFormWorldCore) {
  CorePeripheryConfig cfg;
  LabeledGraph g = GenerateCorePeriphery(cfg);
  EXPECT_EQ(g.NumLabels(), cfg.num_continents);
  // Majors have many cross-label edges; minors mostly intra-continent.
  std::size_t cross_major = 0;
  const auto stride =
      static_cast<VertexId>(cfg.majors_per_continent + cfg.minors_per_continent);
  for (std::size_t c = 0; c < cfg.num_continents; ++c) {
    VertexId major0 = static_cast<VertexId>(c) * stride;
    for (VertexId w : g.Neighbors(major0)) {
      if (g.IsCrossEdge(major0, w)) ++cross_major;
    }
  }
  EXPECT_GT(cross_major, cfg.num_continents);
}

}  // namespace
}  // namespace bccs
