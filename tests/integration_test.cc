// Cross-module pipeline tests: the Figure-4/5 experiment machinery on a
// small planted dataset, asserting the paper's qualitative findings.

#include <gtest/gtest.h>

#include "baselines/ctc.h"
#include "baselines/psa.h"
#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "bcc/verify.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/generators.h"

namespace bccs {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PlantedConfig cfg;
    cfg.num_communities = 12;
    cfg.min_group_size = 10;
    cfg.max_group_size = 18;
    cfg.intra_edge_prob = 0.4;
    cfg.background_vertices = 150;
    cfg.seed = 314;
    pg_ = new PlantedGraph(GeneratePlanted(cfg));
    QueryGenConfig qcfg;
    qcfg.seed = 27;
    queries_ = new std::vector<GroundTruthQuery>(SampleGroundTruthQueries(*pg_, 10, qcfg));
  }

  static void TearDownTestSuite() {
    delete queries_;
    delete pg_;
    queries_ = nullptr;
    pg_ = nullptr;
  }

  static PlantedGraph* pg_;
  static std::vector<GroundTruthQuery>* queries_;
};

PlantedGraph* PipelineTest::pg_ = nullptr;
std::vector<GroundTruthQuery>* PipelineTest::queries_ = nullptr;

TEST_F(PipelineTest, BccMethodsAgreeAndAreValid) {
  ASSERT_FALSE(queries_->empty());
  BcIndex index(pg_->graph);
  for (const auto& gq : *queries_) {
    Community online = OnlineBcc(pg_->graph, gq.query, BccParams{});
    Community lp = LpBcc(pg_->graph, gq.query, BccParams{});
    EXPECT_EQ(online.vertices, lp.vertices);
    Community local = L2pBcc(pg_->graph, index, gq.query, BccParams{});
    if (!online.Empty()) {
      EXPECT_FALSE(local.Empty());
    }
  }
}

TEST_F(PipelineTest, BccBeatsBaselinesOnF1) {
  // The paper's Figure 4 finding: the BCC methods dominate CTC and PSA on
  // labeled ground-truth communities.
  ASSERT_FALSE(queries_->empty());
  CtcSearcher ctc(pg_->graph);
  PsaSearcher psa(pg_->graph);
  BcIndex index(pg_->graph);

  double f1_lp = 0, f1_l2p = 0, f1_ctc = 0, f1_psa = 0;
  for (const auto& gq : *queries_) {
    auto truth = pg_->communities[gq.community_index].AllVertices();
    f1_lp += F1Score(LpBcc(pg_->graph, gq.query, BccParams{}).vertices, truth).f1;
    f1_l2p += F1Score(L2pBcc(pg_->graph, index, gq.query, BccParams{}).vertices, truth).f1;
    f1_ctc += F1Score(ctc.Search(gq.query).vertices, truth).f1;
    f1_psa += F1Score(psa.Search(gq.query).vertices, truth).f1;
  }
  const auto n = static_cast<double>(queries_->size());
  f1_lp /= n;
  f1_l2p /= n;
  f1_ctc /= n;
  f1_psa /= n;

  EXPECT_GT(f1_lp, 0.5) << "BCC quality unexpectedly low";
  EXPECT_GT(f1_lp, f1_ctc) << "paper shape violated: CTC must lose to BCC";
  EXPECT_GT(f1_lp, f1_psa) << "paper shape violated: PSA must lose to BCC";
  EXPECT_GT(f1_l2p, f1_ctc);
}

TEST_F(PipelineTest, LeaderPairStrategySavesButterflyCounting) {
  // The paper's Table 4 finding: LP-BCC calls Algorithm 3 far less often.
  // k = 2 gives a large G0 and a long peeling phase, where Online-BCC must
  // recount butterflies every round. The incremental counter is pinned off
  // here: the comparison is leader-pair versus per-round recounting.
  std::size_t online_calls = 0, lp_calls = 0, online_rounds = 0;
  std::size_t delta_calls = 0, delta_rounds = 0;
  const BccParams params{2, 2, 1};
  SearchOptions online_opts = OnlineBccOptions();
  online_opts.incremental_butterflies = false;
  SearchOptions lp_opts = LpBccOptions();
  lp_opts.incremental_butterflies = false;
  for (const auto& gq : *queries_) {
    SearchStats so, sl, sd;
    Community online = BccSearch(pg_->graph, gq.query, params, online_opts, &so);
    BccSearch(pg_->graph, gq.query, params, lp_opts, &sl);
    Community delta = OnlineBcc(pg_->graph, gq.query, params, &sd);
    EXPECT_EQ(online.vertices, delta.vertices);
    online_calls += so.butterfly_counting_calls;
    lp_calls += sl.butterfly_counting_calls;
    online_rounds += so.rounds;
    delta_calls += sd.butterfly_counting_calls;
    delta_rounds += sd.delta_rounds;
  }
  ASSERT_GT(online_rounds, 2 * queries_->size()) << "peeling unexpectedly short";
  EXPECT_LT(lp_calls, online_calls);
  // This PR's finding: the delta counter drops per-round recounts even
  // without the leader-pair strategy.
  EXPECT_LT(delta_calls, online_calls);
  EXPECT_GT(delta_rounds, 0u);
}

TEST_F(PipelineTest, MbccPipelineOnMultiLabelGraph) {
  PlantedConfig cfg;
  cfg.num_communities = 6;
  cfg.groups_per_community = 4;
  cfg.num_labels = 6;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  cfg.cross_pair_prob = 0.15;
  cfg.seed = 2718;
  PlantedGraph pg = GeneratePlanted(cfg);
  auto queries = SampleMbccGroundTruthQueries(pg, 3, 5, 8);
  ASSERT_FALSE(queries.empty());
  for (const auto& gq : queries) {
    MbccParams p;
    p.k.assign(3, 2);
    Community c = MbccSearch(pg.graph, gq.query, p, LpBccOptions());
    if (c.Empty()) continue;
    EXPECT_EQ(VerifyMbcc(pg.graph, c, gq.query.vertices, p.k, p.b), MbccViolation::kNone);
    auto truth = pg.communities[gq.community_index].AllVertices();
    // The discovered mBCC overlaps its ground-truth community.
    EXPECT_GT(F1Score(c.vertices, truth).f1, 0.2);
  }
}

}  // namespace
}  // namespace bccs
