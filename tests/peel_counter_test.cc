// PeelButterflyCounter: delta-chi maintenance must be indistinguishable from
// recounting. The unit tests drive the counter directly against a reference
// recount after every single removal; the search-level tests assert the
// bit-identity contract — same communities with the flag on or off, across
// methods, thread counts, deadlines, and approx fallbacks (DESIGN.md,
// contract 8).

#include "butterfly/peel_counter.h"

#include <gtest/gtest.h>

#include <random>

#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "bcc/workspace.h"
#include "eval/batch_runner.h"
#include "eval/serve_engine.h"
#include "graph/generators.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MakeRandomGraph;
using testing::MaskOf;

/// Members of `g` carrying `label`, in id order (the span order the real
/// callers use: FindG0 builds its side lists sorted).
std::vector<VertexId> LabelMembers(const LabeledGraph& g, Label label) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.LabelOf(v) == label) out.push_back(v);
  }
  return out;
}

void ExpectMatchesRecount(const LabeledGraph& g, PeelButterflyCounter& pc,
                          const std::vector<VertexId>& left, const std::vector<VertexId>& right,
                          const std::vector<char>& lmask, const std::vector<char>& rmask) {
  ButterflyCounts fresh = CountButterflies(g, left, right, lmask, rmask);
  const ButterflyCounts& maintained = pc.RefreshMaxes();
  for (VertexId v : left) {
    ASSERT_EQ(maintained.chi[v], fresh.chi[v]) << "left vertex " << v;
  }
  for (VertexId v : right) {
    ASSERT_EQ(maintained.chi[v], fresh.chi[v]) << "right vertex " << v;
  }
  ASSERT_EQ(maintained.total, fresh.total);
  ASSERT_EQ(maintained.max_left, fresh.max_left);
  ASSERT_EQ(maintained.max_right, fresh.max_right);
  ASSERT_EQ(maintained.argmax_left, fresh.argmax_left);
  ASSERT_EQ(maintained.argmax_right, fresh.argmax_right);
}

class PeelCounterTraceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeelCounterTraceTest, RandomPeelTraceMatchesRecountAfterEveryRemoval) {
  LabeledGraph g = MakeRandomGraph(40, 0.3, 2, GetParam());
  std::vector<VertexId> left = LabelMembers(g, 0);
  std::vector<VertexId> right = LabelMembers(g, 1);
  std::vector<char> lmask = MaskOf(g, left);
  std::vector<char> rmask = MaskOf(g, right);

  QueryWorkspace ws;
  PeelButterflyCounter* pc = ws.AcquirePeelCounter();
  pc->Init(g, left, right, lmask, rmask, &ws);
  pc->Recount();
  ASSERT_FALSE(pc->stale());
  EXPECT_GT(pc->wedge_budget(), 0u);

  // Remove every vertex in a seeded shuffled order, one per round (so the
  // per-round budget never trips), checking the maintained view against a
  // from-scratch recount after each removal.
  std::vector<VertexId> order = testing::AllVertices(g);
  std::mt19937_64 rng(GetParam() * 977 + 5);
  std::shuffle(order.begin(), order.end(), rng);
  for (VertexId v : order) {
    pc->BeginRound();
    ASSERT_TRUE(pc->OnRemove(v)) << "unexpected budget refusal on vertex " << v;
    (g.LabelOf(v) == 0 ? lmask : rmask)[v] = 0;  // mask clears AFTER the callback
    ExpectMatchesRecount(g, *pc, left, right, lmask, rmask);
  }
  const ButterflyCounts& empty = pc->RefreshMaxes();
  EXPECT_EQ(empty.total, 0u);
  EXPECT_EQ(empty.max_left, 0u);
  EXPECT_EQ(empty.argmax_left, kInvalidVertex);
  ws.ReleasePeelCounter(pc);
}

TEST_P(PeelCounterTraceTest, BatchedRoundsMatchRecount) {
  // Same trace but several removals per round, mask bits clearing between
  // callbacks exactly like GroupedCandidate::RemoveAndMaintain does — the
  // debit-exactly-once ordering under test.
  LabeledGraph g = MakeRandomGraph(36, 0.35, 2, GetParam() + 17);
  std::vector<VertexId> left = LabelMembers(g, 0);
  std::vector<VertexId> right = LabelMembers(g, 1);
  std::vector<char> lmask = MaskOf(g, left);
  std::vector<char> rmask = MaskOf(g, right);

  QueryWorkspace ws;
  PeelButterflyCounter* pc = ws.AcquirePeelCounter();
  pc->Init(g, left, right, lmask, rmask, &ws);

  // Seed from an externally computed count instead of Recount: the FindG0
  // hand-off path.
  ButterflyCounts seed = CountButterflies(g, left, right, lmask, rmask);
  pc->SeedFrom(seed);
  ASSERT_FALSE(pc->stale());
  EXPECT_EQ(pc->wedge_budget(), seed.wedges);

  std::vector<VertexId> order = testing::AllVertices(g);
  std::mt19937_64 rng(GetParam() * 131 + 7);
  std::shuffle(order.begin(), order.end(), rng);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t batch = std::min<std::size_t>(1 + rng() % 5, order.size() - i);
    pc->BeginRound();
    for (std::size_t k = 0; k < batch; ++k) {
      VertexId v = order[i + k];
      ASSERT_TRUE(pc->OnRemove(v));
      (g.LabelOf(v) == 0 ? lmask : rmask)[v] = 0;
    }
    i += batch;
    ExpectMatchesRecount(g, *pc, left, right, lmask, rmask);
  }
  ws.ReleasePeelCounter(pc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeelCounterTraceTest, ::testing::Values(1, 2, 3, 7, 42));

TEST(PeelCounterTest, BudgetRefusalLeavesChiExactAndRecountResyncs) {
  LabeledGraph g = MakeRandomGraph(30, 0.4, 2, 99);
  std::vector<VertexId> left = LabelMembers(g, 0);
  std::vector<VertexId> right = LabelMembers(g, 1);
  std::vector<char> lmask = MaskOf(g, left);
  std::vector<char> rmask = MaskOf(g, right);

  QueryWorkspace ws;
  PeelButterflyCounter* pc = ws.AcquirePeelCounter();
  pc->Init(g, left, right, lmask, rmask, &ws);
  pc->Recount();

  // Pick a vertex with live wedges so the first debit costs > 0 steps.
  VertexId first = kInvalidVertex;
  ButterflyCounts initial = CountButterflies(g, left, right, lmask, rmask);
  for (VertexId v : left) {
    if (initial.chi[v] > 0) {
      first = v;
      break;
    }
  }
  ASSERT_NE(first, kInvalidVertex) << "graph too sparse for the budget test";

  // Budget 0: the first removal of the round is always admitted (the cap is
  // checked against work already spent), the second must refuse without
  // touching chi.
  pc->SetWedgeBudgetForTest(0);
  pc->BeginRound();
  ASSERT_TRUE(pc->OnRemove(first));
  lmask[first] = 0;
  ButterflyCounts after_first = CountButterflies(g, left, right, lmask, rmask);

  VertexId second = kInvalidVertex;
  for (VertexId v : left) {
    if (lmask[v]) {
      second = v;
      break;
    }
  }
  ASSERT_NE(second, kInvalidVertex);
  EXPECT_FALSE(pc->OnRemove(second));
  EXPECT_TRUE(pc->stale());
  // The refusal debited nothing: chi still describes the pre-refusal
  // candidate exactly (what the mid-cascade leader re-sync relies on).
  for (VertexId v : left) {
    EXPECT_EQ(pc->Chi(v), after_first.chi[v]);
  }
  for (VertexId v : right) {
    EXPECT_EQ(pc->Chi(v), after_first.chi[v]);
  }

  // Recount resyncs: fresh again, with the actual removals applied.
  lmask[second] = 0;
  pc->Recount();
  EXPECT_FALSE(pc->stale());
  ExpectMatchesRecount(g, *pc, left, right, lmask, rmask);
  ws.ReleasePeelCounter(pc);
}

TEST(PeelCounterTest, WorkspacePoolingReusesCounters) {
  QueryWorkspace ws;
  PeelButterflyCounter* a = ws.AcquirePeelCounter();
  ws.ReleasePeelCounter(a);
  PeelButterflyCounter* b = ws.AcquirePeelCounter();
  EXPECT_EQ(a, b);  // parked counter is handed back out
  ws.ReleasePeelCounter(b);
}

// --- Search-level bit-identity: flag on == flag off, everywhere. ---

SearchOptions WithFlag(SearchOptions o, bool incremental) {
  o.incremental_butterflies = incremental;
  return o;
}

class PeelCounterSearchTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeelCounterSearchTest, FlagOnOffBitIdenticalAcrossOptionMatrix) {
  PlantedConfig cfg;
  cfg.num_communities = 6;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  cfg.noise_cross_fraction = 0.2;
  cfg.seed = GetParam();
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[GetParam() % pg.communities.size()];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BccParams p{2, 2, 1};

  for (bool bulk : {true, false}) {
    for (bool leader : {true, false}) {
      SearchOptions opts;
      opts.bulk_delete = bulk;
      opts.use_leader_pair = leader;
      SearchStats son, soff;
      Community on = BccSearch(pg.graph, q, p, WithFlag(opts, true), &son);
      Community off = BccSearch(pg.graph, q, p, WithFlag(opts, false), &soff);
      EXPECT_EQ(on.vertices, off.vertices) << "bulk=" << bulk << " leader=" << leader;
      // Identical deletion sequence, not just identical answers.
      EXPECT_EQ(son.rounds, soff.rounds);
      EXPECT_EQ(son.vertices_removed, soff.vertices_removed);
      EXPECT_EQ(soff.delta_rounds, 0u);  // the flag-off run never uses the counter
    }
  }
}

TEST_P(PeelCounterSearchTest, DeltaRoundsReplaceRecountsInOnlineMode) {
  PlantedConfig cfg;
  cfg.num_communities = 6;
  cfg.min_group_size = 10;
  cfg.max_group_size = 16;
  cfg.intra_edge_prob = 0.5;
  cfg.seed = GetParam() + 11;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BccParams p{2, 2, 1};

  SearchStats son, soff;
  BccSearch(pg.graph, q, p, WithFlag(OnlineBccOptions(), true), &son);
  BccSearch(pg.graph, q, p, WithFlag(OnlineBccOptions(), false), &soff);
  if (soff.rounds > 2) {
    EXPECT_GT(son.delta_rounds, 0u);
    EXPECT_LT(son.butterfly_counting_calls, soff.butterfly_counting_calls);
  }
}

TEST_P(PeelCounterSearchTest, MbccFlagOnOffBitIdentical) {
  PlantedConfig cfg;
  cfg.num_communities = 5;
  cfg.groups_per_community = 3;
  cfg.num_labels = 3;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  cfg.intra_edge_prob = 0.5;
  cfg.cross_pair_prob = 0.2;
  cfg.seed = GetParam() + 300;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  MbccQuery q{{comm.groups[0][0], comm.groups[1][0], comm.groups[2][0]}};
  MbccParams p;
  p.b = 1;

  for (bool leader : {true, false}) {
    SearchOptions opts;
    opts.use_leader_pair = leader;
    opts.fast_query_distance = leader;
    SearchStats son, soff;
    Community on = MbccSearch(pg.graph, q, p, WithFlag(opts, true), &son);
    Community off = MbccSearch(pg.graph, q, p, WithFlag(opts, false), &soff);
    EXPECT_EQ(on.vertices, off.vertices) << "leader=" << leader;
    EXPECT_EQ(son.rounds, soff.rounds);
  }
}

TEST_P(PeelCounterSearchTest, ApproxRoundsForceFallbackThenResync) {
  // Sweep the approx threshold across the peel trajectory: whenever it lands
  // between two checked rounds' alive counts, early rounds take the sampled
  // path (counter marked stale) and a later exact round must resync with a
  // staleness-forced recount (delta_fallbacks). Bit-identity with the
  // flag-off run is required at every threshold; at least one threshold in
  // the sweep must exhibit the approx -> exact resync.
  PlantedConfig cfg;
  cfg.num_communities = 8;
  cfg.min_group_size = 10;
  cfg.max_group_size = 18;
  cfg.intra_edge_prob = 0.4;
  cfg.background_vertices = 120;
  cfg.seed = GetParam() + 77;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BccParams p{2, 2, 1};

  // Probe the query once to size the sweep to its actual G0.
  SearchStats probe;
  BccSearch(pg.graph, q, p, WithFlag(OnlineBccOptions(), true), &probe);
  ASSERT_GT(probe.g0_size, 8u);

  std::size_t total_fallbacks = 0;
  std::size_t total_approx = 0;
  const std::size_t step = std::max<std::size_t>(1, probe.g0_size / 48);
  for (std::size_t threshold = 4; threshold < probe.g0_size; threshold += step) {
    SearchOptions opts;  // online mode: every round needs an exact or sampled check
    opts.approx.enabled = true;
    opts.approx.samples = 256;
    opts.approx.threshold = threshold;
    opts.approx.seed = 5;

    SearchStats son, soff;
    Community on = BccSearch(pg.graph, q, p, WithFlag(opts, true), &son);
    Community off = BccSearch(pg.graph, q, p, WithFlag(opts, false), &soff);
    ASSERT_EQ(on.vertices, off.vertices) << "threshold=" << threshold;
    ASSERT_EQ(son.rounds, soff.rounds) << "threshold=" << threshold;
    total_fallbacks += son.delta_fallbacks;
    total_approx += son.approx_checks;
  }
  EXPECT_GT(total_approx, 0u) << "sweep never hit the sampled path";
  EXPECT_GT(total_fallbacks, 0u) << "sweep never crossed an approx -> exact boundary";
}

TEST_P(PeelCounterSearchTest, ExpiredDeadlineBitIdentical) {
  // An already-expired deadline trips the very first check in both runs, so
  // even the partial answers must agree.
  PlantedConfig cfg;
  cfg.num_communities = 5;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  cfg.seed = GetParam() + 500;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BccParams p{2, 2, 1};

  QueryWorkspace ws;
  ws.SetDeadline(Deadline::After(0));
  SearchStats son, soff;
  Community on = BccSearch(pg.graph, q, p, WithFlag(OnlineBccOptions(), true), &son, &ws);
  Community off = BccSearch(pg.graph, q, p, WithFlag(OnlineBccOptions(), false), &soff, &ws);
  EXPECT_EQ(on.vertices, off.vertices);
  EXPECT_EQ(son.timed_out, soff.timed_out);
  ws.SetDeadline(Deadline());
}

TEST(PeelCounterServeTest, OneVsFourThreadsIdenticalWithCounterOn) {
  PlantedConfig cfg;
  cfg.num_communities = 8;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.45;
  cfg.seed = 1234;
  PlantedGraph pg = GeneratePlanted(cfg);

  std::vector<QueryRequest> requests;
  for (const auto& comm : pg.communities) {
    QueryRequest r;
    r.query = BccQuery{comm.groups[0][0], comm.groups[1][0]};
    r.method = QueryMethod::kLpBcc;
    r.params = BccParams{2, 2, 1};
    requests.push_back(r);
  }

  BatchRunner one(1);
  ServeEngine engine_one(one, pg.graph, nullptr);
  BatchResult r1 = engine_one.Serve(requests);

  BatchRunner four(4);
  ServeEngine engine_four(four, pg.graph, nullptr);
  BatchResult r4 = engine_four.Serve(requests);

  ASSERT_EQ(r1.communities.size(), r4.communities.size());
  for (std::size_t i = 0; i < r1.communities.size(); ++i) {
    EXPECT_EQ(r1.communities[i].vertices, r4.communities[i].vertices) << "query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeelCounterSearchTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace bccs
