#include "baselines/ctc.h"

#include <gtest/gtest.h>

#include "baselines/psa.h"
#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::AllVertices;
using testing::MakeClique;
using testing::MakeRandomGraph;
using testing::MaskOf;

bool IsConnectedSubset(const LabeledGraph& g, const std::vector<VertexId>& members) {
  if (members.empty()) return false;
  auto comp = ComponentContaining(g, members, members[0]);
  return comp.size() == members.size();
}

TEST(CtcTest, CliqueReturnsClique) {
  LabeledGraph g = MakeClique(6);
  CtcSearcher ctc(g);
  Community c = ctc.Search(BccQuery{0, 3});
  EXPECT_EQ(c.vertices.size(), 6u);
}

TEST(CtcTest, ContainsQueriesAndConnected) {
  LabeledGraph g = MakeRandomGraph(40, 0.25, 2, 7);
  CtcSearcher ctc(g);
  Community c = ctc.Search(BccQuery{0, 1});
  if (!c.Empty()) {
    EXPECT_TRUE(c.Contains(0));
    EXPECT_TRUE(c.Contains(1));
    EXPECT_TRUE(IsConnectedSubset(g, c.vertices));
  }
}

TEST(CtcTest, DisconnectedQueriesEmpty) {
  // Two disjoint triangles.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), {0, 0, 0, 1, 1, 1});
  CtcSearcher ctc(g);
  EXPECT_TRUE(ctc.Search(BccQuery{0, 5}).Empty());
}

TEST(CtcTest, PaperSection1ComparisonOnFigure1) {
  // The paper's Section 1: "such improved models find the answer of
  // {ql, qr, v5, u3}, which suffers from missing many group members with no
  // cross-group edges". Our CTC reimplementation peels the Figure 1 instance
  // down to exactly that bow-tie 4-clique.
  Figure1Graph f = MakeFigure1Graph();
  CtcSearcher ctc(f.graph);
  Community c = ctc.Search(BccQuery{f.ql, f.qr});
  ASSERT_FALSE(c.Empty());
  std::vector<VertexId> expected = {f.ql, f.v5, f.qr, f.u3};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(c.vertices, expected);
  EXPECT_NE(c.vertices, f.expected_bcc);
}

TEST(CtcTest, PeelingShrinksCommunity) {
  // A K5 with a long path attached between two query vertices: the distant
  // path vertices must be peeled away.
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) edges.push_back({i, j});
  }
  // Path 4-5-6-7 and a triangle {7,8,9} to give the tail some truss.
  edges.push_back({4, 5});
  edges.push_back({5, 6});
  edges.push_back({6, 7});
  edges.push_back({7, 8});
  edges.push_back({8, 9});
  edges.push_back({7, 9});
  LabeledGraph g = LabeledGraph::FromEdges(10, std::move(edges), std::vector<Label>(10, 0));
  CtcSearcher ctc(g);
  Community c = ctc.Search(BccQuery{0, 1});
  ASSERT_FALSE(c.Empty());
  // The max truss connecting 0 and 1 is the K5 itself (5-truss).
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(PsaTest, CliqueReturnsCore) {
  LabeledGraph g = MakeClique(5);
  PsaSearcher psa(g);
  Community c = psa.Search(BccQuery{0, 2});
  EXPECT_EQ(c.vertices.size(), 5u);
}

TEST(PsaTest, ReturnsConnectedKCoreContainingQueries) {
  LabeledGraph g = MakeRandomGraph(50, 0.15, 2, 11);
  PsaSearcher psa(g);
  const VertexId queries[] = {0, 1};
  Community c = psa.Search(queries);
  if (c.Empty()) return;
  EXPECT_TRUE(c.Contains(0));
  EXPECT_TRUE(c.Contains(1));
  EXPECT_TRUE(IsConnectedSubset(g, c.vertices));
  // Induced min degree >= min query coreness.
  std::uint32_t k = std::min(psa.CorenessOf(0), psa.CorenessOf(1));
  auto mask = MaskOf(g, c.vertices);
  for (VertexId v : c.vertices) {
    std::uint32_t d = 0;
    for (VertexId w : g.Neighbors(v)) d += mask[w];
    EXPECT_GE(d, k);
  }
}

TEST(PsaTest, ShrinksBelowGlobalCore) {
  // Two K4s sharing a chain of 2-core structure: PSA should not return the
  // entire global k-core when a local one suffices.
  PlantedConfig cfg;
  cfg.num_communities = 10;
  cfg.min_group_size = 10;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  cfg.seed = 3;
  PlantedGraph pg = GeneratePlanted(cfg);
  PsaSearcher psa(pg.graph);
  const auto& comm = pg.communities[0];
  const VertexId queries[] = {comm.groups[0][0], comm.groups[1][0]};
  Community c = psa.Search(queries);
  ASSERT_FALSE(c.Empty());
  // A planted graph holds ~10 communities; the local result must be far
  // smaller than the graph.
  EXPECT_LT(c.vertices.size(), pg.graph.NumVertices() / 2);
}

TEST(PsaTest, DisconnectedQueriesEmpty) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), {0, 0, 0, 1, 1, 1});
  PsaSearcher psa(g);
  EXPECT_TRUE(psa.Search(BccQuery{0, 5}).Empty());
}

TEST(PsaTest, IsolatedQueryEmpty) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}};
  LabeledGraph g = LabeledGraph::FromEdges(4, std::move(edges), {0, 0, 0, 1});
  PsaSearcher psa(g);
  EXPECT_TRUE(psa.Search(BccQuery{0, 3}).Empty());
}

class BaselinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselinePropertyTest, CtcCommunityIsTrussConnected) {
  LabeledGraph g = MakeRandomGraph(35, 0.3, 2, GetParam() + 13);
  CtcSearcher ctc(g);
  std::mt19937_64 rng(GetParam());
  VertexId a = static_cast<VertexId>(rng() % g.NumVertices());
  VertexId b = static_cast<VertexId>(rng() % g.NumVertices());
  if (a == b) b = (b + 1) % static_cast<VertexId>(g.NumVertices());
  const VertexId queries[] = {a, b};
  Community c = ctc.Search(queries);
  if (c.Empty()) return;
  EXPECT_TRUE(c.Contains(a));
  EXPECT_TRUE(c.Contains(b));
  EXPECT_TRUE(IsConnectedSubset(g, c.vertices));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselinePropertyTest, ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace bccs
