#include "bcc/verify.h"

#include <gtest/gtest.h>

#include "bcc/query_distance.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

class VerifyBccTest : public ::testing::Test {
 protected:
  Figure1Graph f_ = MakeFigure1Graph();
  BccQuery q_{f_.ql, f_.qr};
  BccParams p_{4, 3, 1};

  Community Expected() const { return Community{f_.expected_bcc}; }
};

TEST_F(VerifyBccTest, AcceptsValid) {
  EXPECT_EQ(VerifyBcc(f_.graph, Expected(), q_, p_), BccViolation::kNone);
}

TEST_F(VerifyBccTest, Empty) {
  EXPECT_EQ(VerifyBcc(f_.graph, Community{}, q_, p_), BccViolation::kEmpty);
}

TEST_F(VerifyBccTest, MissingQuery) {
  Community c = Expected();
  std::erase(c.vertices, f_.qr);
  EXPECT_EQ(VerifyBcc(f_.graph, c, q_, p_), BccViolation::kMissingQuery);
}

TEST_F(VerifyBccTest, WrongLabels) {
  Community c = Expected();
  c.vertices.push_back(f_.z1);  // a PM vertex
  std::sort(c.vertices.begin(), c.vertices.end());
  EXPECT_EQ(VerifyBcc(f_.graph, c, q_, p_), BccViolation::kWrongLabels);
}

TEST_F(VerifyBccTest, LeftCoreViolated) {
  Community c = Expected();
  std::erase(c.vertices, f_.v1);  // drops left degrees below 4
  EXPECT_EQ(VerifyBcc(f_.graph, c, q_, p_), BccViolation::kLeftCoreViolated);
}

TEST_F(VerifyBccTest, RightCoreViolated) {
  Community c = Expected();
  std::erase(c.vertices, f_.u1);
  EXPECT_EQ(VerifyBcc(f_.graph, c, q_, p_), BccViolation::kRightCoreViolated);
}

TEST_F(VerifyBccTest, ButterflyViolated) {
  BccParams strict = p_;
  strict.b = 2;  // the instance has exactly one butterfly
  EXPECT_EQ(VerifyBcc(f_.graph, Expected(), q_, strict), BccViolation::kButterflyViolated);
}

TEST_F(VerifyBccTest, Disconnected) {
  // Two disjoint valid-looking halves: left triangle-pair and right
  // triangle-pair with no connection.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), {0, 0, 0, 1, 1, 1});
  Community c{{0, 1, 2, 3, 4, 5}};
  EXPECT_EQ(VerifyBcc(g, c, BccQuery{0, 3}, BccParams{2, 2, 0}),
            BccViolation::kDisconnected);
}

TEST(VerifyBccToStringTest, AllNamesDistinct) {
  EXPECT_STREQ(ToString(BccViolation::kNone), "none");
  EXPECT_STREQ(ToString(BccViolation::kButterflyViolated), "butterfly");
  EXPECT_STREQ(ToString(MbccViolation::kMetaDisconnected), "meta-disconnected");
}

TEST(CommunityDiameterTest, PathDiameter) {
  LabeledGraph g = testing::MakePath(5);
  Community c{{0, 1, 2, 3, 4}};
  EXPECT_EQ(CommunityDiameter(g, c), 4u);
  Community sub{{0, 1, 2}};
  EXPECT_EQ(CommunityDiameter(g, sub), 2u);
  Community split{{0, 1, 3}};
  EXPECT_EQ(CommunityDiameter(g, split), kInfDistance);
}

TEST(CommunityQueryDistanceTest, Basics) {
  LabeledGraph g = testing::MakePath(5);
  Community c{{0, 1, 2, 3, 4}};
  EXPECT_EQ(CommunityQueryDistance(g, c, {0}), 4u);
  EXPECT_EQ(CommunityQueryDistance(g, c, {2}), 2u);
  EXPECT_EQ(CommunityQueryDistance(g, c, {0, 4}), 4u);
}

TEST(VerifyMbccTest, DetectsCoreAndMetaViolations) {
  // Three labeled K4s chained by bicliques (the mbcc_test chain fixture).
  std::vector<Edge> edges;
  std::vector<Label> labels(12);
  for (VertexId base : {0u, 4u, 8u}) {
    for (VertexId i = 0; i < 4; ++i) {
      for (VertexId j = i + 1; j < 4; ++j) edges.push_back({base + i, base + j});
      labels[base + i] = base / 4;
    }
  }
  for (VertexId a : {0u, 1u}) {
    for (VertexId b : {4u, 5u}) edges.push_back({a, b});
  }
  for (VertexId a : {6u, 7u}) {
    for (VertexId b : {8u, 9u}) edges.push_back({a, b});
  }
  LabeledGraph g = LabeledGraph::FromEdges(12, std::move(edges), std::move(labels));
  std::vector<VertexId> queries = {0, 4, 8};
  std::vector<std::uint32_t> ks = {3, 3, 3};
  Community all{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}};
  EXPECT_EQ(VerifyMbcc(g, all, queries, ks, 1), MbccViolation::kNone);
  // b = 2 demands two butterflies per pair; each biclique has exactly one.
  EXPECT_EQ(VerifyMbcc(g, all, queries, ks, 2), MbccViolation::kMetaDisconnected);
  // Raising a core requirement breaks the K4 groups.
  std::vector<std::uint32_t> ks4 = {4, 3, 3};
  EXPECT_EQ(VerifyMbcc(g, all, queries, ks4, 1), MbccViolation::kCoreViolated);
  // Dropping one group's member: core violation there.
  Community missing{{0, 1, 2, 3, 4, 5, 6, 8, 9, 10, 11}};
  EXPECT_EQ(VerifyMbcc(g, missing, queries, ks, 1), MbccViolation::kCoreViolated);
}

}  // namespace
}  // namespace bccs
