#include "bcc/online_search.h"

#include <gtest/gtest.h>

#include "bcc/query_distance.h"
#include "bcc/verify.h"
#include "graph/generators.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

// Brute-force minimum-diameter BCC by subset enumeration over the G0
// vertices. Only usable for |G0| <= ~16.
std::uint32_t BruteForceOptimalDiameter(const LabeledGraph& g, const G0Result& g0,
                                        const BccQuery& q, const BccParams& p) {
  std::vector<VertexId> universe = g0.left;
  universe.insert(universe.end(), g0.right.begin(), g0.right.end());
  const std::size_t n = universe.size();
  EXPECT_LE(n, 16u);
  std::uint32_t best = kInfDistance;
  BccParams resolved = p;
  resolved.k1 = g0.k1;
  resolved.k2 = g0.k2;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    Community c;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) c.vertices.push_back(universe[i]);
    }
    std::sort(c.vertices.begin(), c.vertices.end());
    if (VerifyBcc(g, c, q, resolved) != BccViolation::kNone) continue;
    best = std::min(best, CommunityDiameter(g, c));
  }
  return best;
}

TEST(OnlineSearchTest, PaperFigure1Answer) {
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.ql, f.qr};
  BccParams p{4, 3, 1};
  Community c = OnlineBcc(f.graph, q, p);
  EXPECT_EQ(c.vertices, f.expected_bcc);
  EXPECT_EQ(VerifyBcc(f.graph, c, q, p), BccViolation::kNone);
}

TEST(OnlineSearchTest, LpBccSameAnswerOnFigure1) {
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.ql, f.qr};
  BccParams p{4, 3, 1};
  EXPECT_EQ(LpBcc(f.graph, q, p).vertices, f.expected_bcc);
}

TEST(OnlineSearchTest, AutoParamsOnFigure1) {
  Figure1Graph f = MakeFigure1Graph();
  Community c = OnlineBcc(f.graph, BccQuery{f.ql, f.qr}, BccParams{});
  EXPECT_EQ(c.vertices, f.expected_bcc);
}

TEST(OnlineSearchTest, EmptyWhenNoBcc) {
  Figure1Graph f = MakeFigure1Graph();
  Community c = OnlineBcc(f.graph, BccQuery{f.ql, f.qr}, BccParams{4, 3, 5});
  EXPECT_TRUE(c.Empty());
}

TEST(OnlineSearchTest, StatsArePopulated) {
  Figure1Graph f = MakeFigure1Graph();
  SearchStats stats;
  OnlineBcc(f.graph, BccQuery{f.ql, f.qr}, BccParams{4, 3, 1}, &stats);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_GE(stats.butterfly_counting_calls, 1u);
  EXPECT_EQ(stats.g0_size, 10u);
  EXPECT_GE(stats.total_seconds, 0.0);
}

struct PeelCase {
  std::uint64_t seed;
  bool bulk;
};

class OnlineSearchPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineSearchPropertyTest, ResultIsValidBccOnPlantedGraphs) {
  PlantedConfig cfg;
  cfg.num_communities = 6;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  cfg.seed = GetParam();
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[GetParam() % pg.communities.size()];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BccParams p{2, 2, 1};

  for (bool bulk : {true, false}) {
    for (bool fast : {true, false}) {
      for (bool leader : {true, false}) {
        SearchOptions opts;
        opts.bulk_delete = bulk;
        opts.fast_query_distance = fast;
        opts.use_leader_pair = leader;
        Community c = BccSearch(pg.graph, q, p, opts, nullptr);
        ASSERT_FALSE(c.Empty())
            << "bulk=" << bulk << " fast=" << fast << " leader=" << leader;
        EXPECT_EQ(VerifyBcc(pg.graph, c, q, p), BccViolation::kNone)
            << "bulk=" << bulk << " fast=" << fast << " leader=" << leader;
      }
    }
  }
}

TEST_P(OnlineSearchPropertyTest, LpEqualsOnline) {
  // The LP strategies (Algorithm 5 + leader pair) are exact accelerations:
  // the deletion sequence, and hence the final community, must be identical.
  PlantedConfig cfg;
  cfg.num_communities = 5;
  cfg.min_group_size = 8;
  cfg.max_group_size = 16;
  cfg.intra_edge_prob = 0.45;
  cfg.noise_cross_fraction = 0.2;
  cfg.seed = GetParam() + 40;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  BccQuery q{comm.groups[0][1], comm.groups[1][1]};
  BccParams p{};  // auto
  Community online = OnlineBcc(pg.graph, q, p);
  Community lp = LpBcc(pg.graph, q, p);
  EXPECT_EQ(online.vertices, lp.vertices);
}

TEST_P(OnlineSearchPropertyTest, LeaderPairReducesButterflyCounting) {
  PlantedConfig cfg;
  cfg.num_communities = 8;
  cfg.min_group_size = 10;
  cfg.max_group_size = 20;
  cfg.intra_edge_prob = 0.45;
  cfg.seed = GetParam() + 80;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  SearchStats online_stats, lp_stats;
  OnlineBcc(pg.graph, q, BccParams{}, &online_stats);
  LpBcc(pg.graph, q, BccParams{}, &lp_stats);
  EXPECT_LE(lp_stats.butterfly_counting_calls, online_stats.butterfly_counting_calls);
}

TEST_P(OnlineSearchPropertyTest, TwoApproximationOnTinyInstances) {
  // Build tiny instances whose G0 has <= 14 vertices and compare against the
  // brute-force optimal diameter (Theorem 3).
  PlantedConfig cfg;
  cfg.num_communities = 1;
  cfg.min_group_size = 5;
  cfg.max_group_size = 7;
  cfg.intra_edge_prob = 0.6;
  cfg.cross_pair_prob = 0.25;
  cfg.noise_cross_fraction = 0;
  cfg.seed = GetParam() + 7;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BccParams p{2, 2, 1};
  SearchStats stats;
  G0Result g0 = FindG0(pg.graph, q, p, &stats);
  if (!g0.found || g0.left.size() + g0.right.size() > 14) {
    GTEST_SKIP() << "instance too large for brute force";
  }
  std::uint32_t optimal = BruteForceOptimalDiameter(pg.graph, g0, q, p);
  ASSERT_NE(optimal, kInfDistance);
  Community c = OnlineBcc(pg.graph, q, p);
  ASSERT_FALSE(c.Empty());
  EXPECT_LE(CommunityDiameter(pg.graph, c), 2 * optimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineSearchPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(OnlineSearchTest, SingleDeletionMatchesBulkValidity) {
  // Single-vertex deletion (the literal Algorithm 1) also returns a valid
  // BCC, possibly different from bulk deletion but never worse than 2x the
  // query distance bound.
  Figure1Graph f = MakeFigure1Graph();
  SearchOptions opts;
  opts.bulk_delete = false;
  BccQuery q{f.ql, f.qr};
  BccParams p{4, 3, 1};
  Community c = BccSearch(f.graph, q, p, opts, nullptr);
  EXPECT_EQ(VerifyBcc(f.graph, c, q, p), BccViolation::kNone);
}

TEST(OnlineSearchTest, AdjacentQueriesSmallCommunity) {
  // Queries adjacent to each other: the result must still contain both and
  // be a valid BCC.
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.v5, f.u3};  // adjacent cross pair inside the community
  BccParams p{4, 3, 1};
  Community c = OnlineBcc(f.graph, q, p);
  ASSERT_FALSE(c.Empty());
  EXPECT_TRUE(c.Contains(f.v5));
  EXPECT_TRUE(c.Contains(f.u3));
  EXPECT_EQ(VerifyBcc(f.graph, c, q, p), BccViolation::kNone);
}

}  // namespace
}  // namespace bccs
