#include "bcc/query_distance.h"

#include <random>

#include <gtest/gtest.h>

#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MakePath;
using testing::MakeRandomGraph;

TEST(BfsDistancesTest, Path) {
  LabeledGraph g = MakePath(5);
  std::vector<char> alive(5, 1);
  std::vector<std::uint32_t> dist;
  BfsDistances(g, alive, 0, &dist);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsDistancesTest, DeadSource) {
  LabeledGraph g = MakePath(3);
  std::vector<char> alive = {0, 1, 1};
  std::vector<std::uint32_t> dist;
  BfsDistances(g, alive, 0, &dist);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(dist[v], kInfDistance);
}

TEST(BfsDistancesTest, MaskBlocksPaths) {
  LabeledGraph g = MakePath(5);
  std::vector<char> alive = {1, 1, 0, 1, 1};  // cut at vertex 2
  std::vector<std::uint32_t> dist;
  BfsDistances(g, alive, 0, &dist);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kInfDistance);
  EXPECT_EQ(dist[3], kInfDistance);
  EXPECT_EQ(dist[4], kInfDistance);
}

TEST(FastQueryDistanceTest, PaperTable2) {
  Figure3Graph f = MakeFigure3Graph();
  const LabeledGraph& g = f.graph;
  std::vector<char> alive(g.NumVertices(), 1);
  std::vector<std::uint32_t> dl, dr;
  BfsDistances(g, alive, f.ql, &dl);
  BfsDistances(g, alive, f.qr, &dr);

  // Table 2, rows "q_l" and "q_r" before the deletion.
  for (VertexId v : {f.v1, f.v2, f.v3}) EXPECT_EQ(dl[v], 1u);
  for (VertexId v : {f.u2, f.u3, f.u5, f.u6}) EXPECT_EQ(dl[v], 2u);
  for (VertexId v : {f.qr, f.u1, f.u4, f.u7}) EXPECT_EQ(dl[v], 3u);
  EXPECT_EQ(dl[f.u9], 4u);

  for (VertexId v : {f.u1, f.u2, f.u3, f.u9}) EXPECT_EQ(dr[v], 1u);
  for (VertexId v : {f.v1, f.v3, f.u4, f.u5, f.u7}) EXPECT_EQ(dr[v], 2u);
  for (VertexId v : {f.ql, f.v2, f.u6}) EXPECT_EQ(dr[v], 3u);

  // Delete u9 (the unique farthest vertex) and repair with Algorithm 5.
  alive[f.u9] = 0;
  const VertexId removed[] = {f.u9};
  UpdateDistancesAfterDeletion(g, alive, removed, &dl);
  UpdateDistancesAfterDeletion(g, alive, removed, &dr);

  // "after the deletion of u9": q_l row unchanged, q_r row has u4 and u7
  // moving from distance 2 to 3 (the bold entries of Table 2).
  for (VertexId v : {f.v1, f.v2, f.v3}) EXPECT_EQ(dl[v], 1u);
  for (VertexId v : {f.u2, f.u3, f.u5, f.u6}) EXPECT_EQ(dl[v], 2u);
  for (VertexId v : {f.qr, f.u1, f.u4, f.u7}) EXPECT_EQ(dl[v], 3u);
  EXPECT_EQ(dl[f.u9], kInfDistance);

  for (VertexId v : {f.u1, f.u2, f.u3}) EXPECT_EQ(dr[v], 1u);
  for (VertexId v : {f.v1, f.v3, f.u5}) EXPECT_EQ(dr[v], 2u);
  for (VertexId v : {f.ql, f.v2, f.u6, f.u4, f.u7}) EXPECT_EQ(dr[v], 3u);
  EXPECT_EQ(dr[f.u9], kInfDistance);
}

class FastQueryDistancePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastQueryDistancePropertyTest, MatchesFullRecomputation) {
  LabeledGraph g = MakeRandomGraph(60, 0.08, 1, GetParam());
  std::mt19937_64 rng(GetParam() + 1);
  VertexId source = static_cast<VertexId>(rng() % g.NumVertices());

  std::vector<char> alive(g.NumVertices(), 1);
  std::vector<std::uint32_t> incremental;
  BfsDistances(g, alive, source, &incremental);

  // Random deletion batches, never deleting the source.
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (v != source) pool.push_back(v);
  }
  std::shuffle(pool.begin(), pool.end(), rng);

  std::size_t cursor = 0;
  while (cursor < pool.size()) {
    std::size_t batch_size = 1 + rng() % 4;
    std::vector<VertexId> batch;
    for (std::size_t i = 0; i < batch_size && cursor < pool.size(); ++i) {
      batch.push_back(pool[cursor++]);
    }
    for (VertexId v : batch) alive[v] = 0;
    UpdateDistancesAfterDeletion(g, alive, batch, &incremental);

    std::vector<std::uint32_t> fresh;
    BfsDistances(g, alive, source, &fresh);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(incremental[v], fresh[v])
          << "vertex " << v << " after " << cursor << " deletions, seed " << GetParam();
    }
  }
}

TEST_P(FastQueryDistancePropertyTest, DistancesNeverDecrease) {
  LabeledGraph g = MakeRandomGraph(40, 0.12, 1, GetParam() + 333);
  std::mt19937_64 rng(GetParam());
  VertexId source = 0;
  std::vector<char> alive(g.NumVertices(), 1);
  std::vector<std::uint32_t> dist;
  BfsDistances(g, alive, source, &dist);
  for (int step = 0; step < 10; ++step) {
    VertexId victim = static_cast<VertexId>(1 + rng() % (g.NumVertices() - 1));
    if (!alive[victim]) continue;
    auto before = dist;
    alive[victim] = 0;
    const VertexId removed[] = {victim};
    UpdateDistancesAfterDeletion(g, alive, removed, &dist);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (!alive[v]) continue;
      if (before[v] == kInfDistance) {
        EXPECT_EQ(dist[v], kInfDistance);
      } else {
        EXPECT_GE(dist[v], before[v]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastQueryDistancePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace bccs
