#include "bcc/local_search.h"

#include <gtest/gtest.h>

#include "bcc/online_search.h"
#include "bcc/verify.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

TEST(ButterflyCorePathTest, EndpointsAndContiguity) {
  Figure1Graph f = MakeFigure1Graph();
  BcIndex index(f.graph);
  auto path = ButterflyCorePath(f.graph, index, BccQuery{f.ql, f.qr}, 0.5, 0.5);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), f.ql);
  EXPECT_EQ(path.back(), f.qr);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(f.graph.HasEdge(path[i], path[i + 1]));
  }
  // Traversal restricted to the two query labels.
  for (VertexId v : path) {
    Label l = f.graph.LabelOf(v);
    EXPECT_TRUE(l == f.se || l == f.ui);
  }
}

TEST(ButterflyCorePathTest, PrefersHighCoreHighButterflyVertices) {
  // ql and qr are adjacent, so the hop-minimal path is the edge itself; the
  // weighted path must not be longer than a detour (weight-wise).
  Figure1Graph f = MakeFigure1Graph();
  BcIndex index(f.graph);
  auto path = ButterflyCorePath(f.graph, index, BccQuery{f.ql, f.qr}, 0.5, 0.5);
  double w = ButterflyCorePathWeight(f.graph, index, path, 0.5, 0.5);
  // Any alternative path through the periphery must weigh at least as much.
  std::vector<VertexId> detour = {f.ql, f.u3, f.qr};
  EXPECT_LE(w, ButterflyCorePathWeight(f.graph, index, detour, 0.5, 0.5) + 2.0);
}

TEST(ButterflyCorePathTest, NoPathBetweenDisconnectedLabels) {
  // Two components with different labels and no cross edges.
  std::vector<Edge> edges = {{0, 1}, {2, 3}};
  LabeledGraph g = LabeledGraph::FromEdges(4, std::move(edges), {0, 0, 1, 1});
  BcIndex index(g);
  EXPECT_TRUE(ButterflyCorePath(g, index, BccQuery{0, 2}, 0.5, 0.5).empty());
}

TEST(L2pBccTest, PaperFigure1Answer) {
  Figure1Graph f = MakeFigure1Graph();
  BcIndex index(f.graph);
  BccQuery q{f.ql, f.qr};
  BccParams p{4, 3, 1};
  Community c = L2pBcc(f.graph, index, q, p);
  EXPECT_EQ(c.vertices, f.expected_bcc);
  EXPECT_EQ(VerifyBcc(f.graph, c, q, p), BccViolation::kNone);
}

TEST(L2pBccTest, TinyEtaStillFindsViaRetries) {
  Figure1Graph f = MakeFigure1Graph();
  BcIndex index(f.graph);
  L2pOptions opts;
  opts.eta = 2;  // absurdly small; the doubling retries must recover
  Community c = L2pBcc(f.graph, index, BccQuery{f.ql, f.qr}, BccParams{4, 3, 1}, opts);
  EXPECT_FALSE(c.Empty());
  EXPECT_EQ(VerifyBcc(f.graph, c, BccQuery{f.ql, f.qr}, BccParams{4, 3, 1}),
            BccViolation::kNone);
}

class L2pPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(L2pPropertyTest, ValidBccAndCompetitiveQuality) {
  PlantedConfig cfg;
  cfg.num_communities = 8;
  cfg.min_group_size = 10;
  cfg.max_group_size = 18;
  cfg.intra_edge_prob = 0.45;
  cfg.seed = GetParam() + 21;
  PlantedGraph pg = GeneratePlanted(cfg);
  BcIndex index(pg.graph);
  const auto& comm = pg.communities[GetParam() % pg.communities.size()];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BccParams p;  // auto

  SearchStats stats;
  G0Result g0 = FindG0(pg.graph, q, p, &stats);
  Community local = L2pBcc(pg.graph, index, q, p);
  if (!g0.found) {
    // No BCC exists under the globally resolved auto parameters (a dense
    // auto-k core can exclude every butterfly). The local search may still
    // find a valid community under its locally resolved (smaller) k; if it
    // does, it must verify.
    if (!local.Empty()) {
      EXPECT_EQ(VerifyBcc(pg.graph, local, q, BccParams{1, 1, p.b}), BccViolation::kNone);
    }
    return;
  }
  ASSERT_FALSE(local.Empty());
  // The local candidate may resolve smaller auto-k; check validity against
  // the k the local result actually satisfies (>= 1).
  BccParams check{1, 1, p.b};
  EXPECT_EQ(VerifyBcc(pg.graph, local, q, check), BccViolation::kNone);

  // Quality: F1 against ground truth within 25% of the LP-BCC result.
  Community lp = LpBcc(pg.graph, q, p);
  auto truth = comm.AllVertices();
  double f1_local = F1Score(local.vertices, truth).f1;
  double f1_lp = F1Score(lp.vertices, truth).f1;
  EXPECT_GE(f1_local, f1_lp - 0.25) << "local much worse than LP";
}

INSTANTIATE_TEST_SUITE_P(Seeds, L2pPropertyTest, ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace bccs
