#include "butterfly/approx_counting.h"

#include <cmath>

#include <gtest/gtest.h>

#include "butterfly/butterfly_counting.h"
#include "graph/generators.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MaskOf;

struct BipartiteSetup {
  LabeledGraph g;
  std::vector<VertexId> left, right;
  std::vector<char> in_left, in_right;

  BipartiteSetup(std::size_t nl, std::size_t nr, double p, std::uint64_t seed) {
    g = GenerateRandomBipartite(nl, nr, p, seed);
    for (VertexId v = 0; v < nl; ++v) left.push_back(v);
    for (VertexId v = static_cast<VertexId>(nl); v < nl + nr; ++v) right.push_back(v);
    in_left = MaskOf(g, left);
    in_right = MaskOf(g, right);
  }
};

TEST(ApproxButterflyTest, ExactOnCompleteBipartite) {
  // K_{4,4}: every left pair shares 4 common neighbors, so every sample
  // contributes the same value and the estimate is exact.
  BipartiteSetup s(4, 4, 1.0, 1);
  auto exact = CountButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
  ApproxButterflyOptions opts;
  opts.samples = 50;
  double estimate =
      EstimateTotalButterflies(s.g, s.left, s.right, s.in_left, s.in_right, opts);
  EXPECT_DOUBLE_EQ(estimate, static_cast<double>(exact.total));
}

TEST(ApproxButterflyTest, ZeroOnButterflyFree) {
  // A perfect matching has no butterflies; the estimator must return 0.
  std::vector<Edge> edges = {{0, 3}, {1, 4}, {2, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), {0, 0, 0, 1, 1, 1});
  std::vector<VertexId> left = {0, 1, 2}, right = {3, 4, 5};
  double estimate = EstimateTotalButterflies(g, left, right, MaskOf(g, left),
                                             MaskOf(g, right), {});
  EXPECT_DOUBLE_EQ(estimate, 0.0);
}

TEST(ApproxButterflyTest, DegenerateSides) {
  BipartiteSetup s(1, 5, 1.0, 2);
  EXPECT_DOUBLE_EQ(
      EstimateTotalButterflies(s.g, s.left, s.right, s.in_left, s.in_right, {}), 0.0);
}

class ApproxButterflyAccuracyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxButterflyAccuracyTest, TotalWithinTolerance) {
  BipartiteSetup s(40, 40, 0.25, GetParam() + 11);
  auto exact = CountButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
  ASSERT_GT(exact.total, 0u);
  ApproxButterflyOptions opts;
  opts.samples = 20000;
  opts.seed = GetParam();
  double estimate =
      EstimateTotalButterflies(s.g, s.left, s.right, s.in_left, s.in_right, opts);
  double rel_error =
      std::abs(estimate - static_cast<double>(exact.total)) / static_cast<double>(exact.total);
  EXPECT_LT(rel_error, 0.25) << "estimate " << estimate << " exact " << exact.total;
}

TEST_P(ApproxButterflyAccuracyTest, VertexDegreeWithinTolerance) {
  BipartiteSetup s(30, 30, 0.3, GetParam() + 40);
  auto exact = CountButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
  VertexId v = s.left[GetParam() % s.left.size()];
  if (exact.chi[v] == 0) GTEST_SKIP() << "vertex has no butterflies";
  ApproxButterflyOptions opts;
  opts.samples = 20000;
  opts.seed = GetParam() + 5;
  double estimate =
      EstimateVertexButterflies(s.g, v, s.left, s.in_left, s.in_right, opts);
  double rel_error =
      std::abs(estimate - static_cast<double>(exact.chi[v])) /
      static_cast<double>(exact.chi[v]);
  EXPECT_LT(rel_error, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxButterflyAccuracyTest,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(ApproxButterflyTest, RespectsMasks) {
  BipartiteSetup s(10, 10, 1.0, 3);
  // Kill all left vertices but two: the exact total becomes C(10,2) = 45
  // butterflies... with 2 left alive: C(2,2)*C(10,2) = 45.
  for (VertexId v = 2; v < 10; ++v) s.in_left[v] = 0;
  auto exact = CountButterflies(s.g, s.left, s.right, s.in_left, s.in_right);
  ApproxButterflyOptions opts;
  opts.samples = 100;
  double estimate =
      EstimateTotalButterflies(s.g, s.left, s.right, s.in_left, s.in_right, opts);
  EXPECT_DOUBLE_EQ(estimate, static_cast<double>(exact.total));
}

}  // namespace
}  // namespace bccs
