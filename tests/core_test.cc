#include "core/core_decomposition.h"

#include <gtest/gtest.h>

#include "core/core_maintenance.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::AllVertices;
using testing::MakeClique;
using testing::MakeCycle;
using testing::MakePath;
using testing::MakeRandomGraph;
using testing::NaiveCoreness;

TEST(CoreDecompositionTest, Clique) {
  LabeledGraph g = MakeClique(6);
  auto core = CoreDecomposition(g);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(core[v], 5u);
}

TEST(CoreDecompositionTest, Cycle) {
  LabeledGraph g = MakeCycle(8);
  auto core = CoreDecomposition(g);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(core[v], 2u);
}

TEST(CoreDecompositionTest, Path) {
  LabeledGraph g = MakePath(5);
  auto core = CoreDecomposition(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(core[v], 1u);
}

TEST(CoreDecompositionTest, Star) {
  std::vector<Edge> edges;
  for (VertexId i = 1; i < 6; ++i) edges.push_back({0, i});
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), std::vector<Label>(6, 0));
  auto core = CoreDecomposition(g);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(core[v], 1u);
}

TEST(CoreDecompositionTest, CliqueWithTail) {
  // K4 {0..3} with a path 3-4-5 hanging off.
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), std::vector<Label>(6, 0));
  auto core = CoreDecomposition(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

class CoreDecompositionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoreDecompositionPropertyTest, MatchesNaivePeeling) {
  LabeledGraph g = MakeRandomGraph(40, 0.15, 1, GetParam());
  auto members = AllVertices(g);
  auto fast = SubsetCoreness(g, members);
  auto naive = NaiveCoreness(g, members);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(fast[v], naive[v]) << "vertex " << v << " seed " << GetParam();
  }
}

TEST_P(CoreDecompositionPropertyTest, KCoreOfSubsetIsMaximalAndValid) {
  LabeledGraph g = MakeRandomGraph(50, 0.12, 1, GetParam() + 1000);
  auto members = AllVertices(g);
  for (std::uint32_t k = 1; k <= 4; ++k) {
    auto core = KCoreOfSubset(g, members, k);
    auto mask = testing::MaskOf(g, core);
    // Validity: induced min degree >= k.
    for (VertexId v : core) {
      std::uint32_t d = 0;
      for (VertexId w : g.Neighbors(v)) d += mask[w];
      EXPECT_GE(d, k);
    }
    // Agreement with coreness: v in k-core iff coreness >= k.
    auto coreness = SubsetCoreness(g, members);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(mask[v] != 0, coreness[v] >= k) << "v=" << v << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreDecompositionPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(LabelCorenessTest, IgnoresCrossEdges) {
  // Two labeled triangles joined by cross edges: label coreness must be the
  // triangle coreness (2), unaffected by the cross edges.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5},
                             {0, 3}, {1, 4}, {2, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), {0, 0, 0, 1, 1, 1});
  auto core = LabelCoreness(g);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(core[v], 2u);
}

TEST(LabelCorenessTest, PaperFigure1) {
  Figure1Graph f = MakeFigure1Graph();
  auto core = LabelCoreness(f.graph);
  // "the maximum core value of q_l, q_r are 4 and 3 respectively"
  EXPECT_EQ(core[f.ql], 4u);
  EXPECT_EQ(core[f.qr], 3u);
  EXPECT_EQ(core[f.v5], 4u);
  EXPECT_EQ(core[f.u3], 3u);
  // Peripheral vertices peel out at lower core levels.
  EXPECT_LT(core[f.v8], 4u);
  EXPECT_LT(core[f.u5], 3u);
}

TEST(ComponentContainingTest, Basics) {
  // Two disjoint triangles.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), std::vector<Label>(6, 0));
  auto members = AllVertices(g);
  EXPECT_EQ(ComponentContaining(g, members, 0), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(ComponentContaining(g, members, 4), (std::vector<VertexId>{3, 4, 5}));
  // Restricting membership splits components.
  std::vector<VertexId> partial = {0, 2};
  EXPECT_EQ(ComponentContaining(g, partial, 0), (std::vector<VertexId>{0, 2}));
  // Query outside the member set.
  EXPECT_TRUE(ComponentContaining(g, partial, 1).empty());
}

TEST(KCoreMaintainerTest, PeelsAtConstruction) {
  // K4 plus a tail: the 3-core is exactly the K4.
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), std::vector<Label>(6, 0));
  KCoreMaintainer m(g, AllVertices(g), 3);
  EXPECT_EQ(m.NumAlive(), 4u);
  EXPECT_TRUE(m.Contains(0));
  EXPECT_FALSE(m.Contains(4));
}

TEST(KCoreMaintainerTest, RemoveCascades) {
  // K4: removing any vertex of a 3-core K4 collapses everything.
  LabeledGraph g = MakeClique(4);
  KCoreMaintainer m(g, AllVertices(g), 3);
  auto removed = m.Remove(0);
  EXPECT_EQ(removed.size(), 4u);
  EXPECT_EQ(m.NumAlive(), 0u);
  // Removing an already-dead vertex is a no-op.
  EXPECT_TRUE(m.Remove(0).empty());
}

class KCoreMaintainerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KCoreMaintainerPropertyTest, MatchesRecomputationUnderDeletions) {
  LabeledGraph g = MakeRandomGraph(45, 0.15, 1, GetParam() + 77);
  const std::uint32_t k = 3;
  KCoreMaintainer m(g, AllVertices(g), k);
  std::vector<VertexId> survivors = m.AliveVertices();
  std::mt19937_64 rng(GetParam());
  while (m.NumAlive() > 0) {
    // Delete a random alive vertex, then compare against full recomputation.
    std::vector<VertexId> alive = m.AliveVertices();
    VertexId victim = alive[rng() % alive.size()];
    m.Remove(victim);
    std::vector<VertexId> remaining;
    for (VertexId v : alive) {
      if (v != victim) remaining.push_back(v);
    }
    auto expected = KCoreOfSubset(g, remaining, k);
    EXPECT_EQ(m.AliveVertices(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreMaintainerPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 5));

}  // namespace
}  // namespace bccs
