#include "truss/truss_maintenance.h"

#include <random>

#include <gtest/gtest.h>

#include "bcc/query_distance.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::AllVertices;
using testing::MakeClique;
using testing::MakeRandomGraph;

TEST(KTrussMaintainerTest, InitialStateMatchesDecomposition) {
  LabeledGraph g = MakeClique(5);
  auto td = TrussDecomposition::Compute(g);
  const VertexId queries[] = {0};
  auto comp = TrussCommunity(g, td, queries, 5);
  KTrussMaintainer m(g, td, comp, 5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_TRUE(m.VertexAlive(v));
    EXPECT_EQ(m.VertexDegree(v), 4u);
  }
  // Every K5 edge has support 3 inside the 5-truss.
  for (std::uint32_t e = 0; e < td.edges().size(); ++e) {
    EXPECT_TRUE(m.EdgeAlive(e));
    EXPECT_EQ(m.EdgeSupport(e), 3u);
  }
}

TEST(KTrussMaintainerTest, RemovingOneCliqueVertexCollapses) {
  // K5 as a 5-truss: removing any vertex drops all supports below 3.
  LabeledGraph g = MakeClique(5);
  auto td = TrussDecomposition::Compute(g);
  const VertexId queries[] = {0};
  auto comp = TrussCommunity(g, td, queries, 5);
  KTrussMaintainer m(g, td, comp, 5);
  const VertexId batch[] = {4};
  auto died = m.RemoveVertices(batch);
  EXPECT_EQ(died.size(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_FALSE(m.VertexAlive(v));
}

TEST(KTrussMaintainerTest, LowerTrussSurvivesRemoval) {
  // K5 maintained as a 3-truss: removing one vertex leaves K4 (3-truss ok).
  LabeledGraph g = MakeClique(5);
  auto td = TrussDecomposition::Compute(g);
  const VertexId queries[] = {0};
  auto comp = TrussCommunity(g, td, queries, 3);
  KTrussMaintainer m(g, td, comp, 3);
  const VertexId batch[] = {4};
  auto died = m.RemoveVertices(batch);
  EXPECT_EQ(died.size(), 1u);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_TRUE(m.VertexAlive(v));
    EXPECT_EQ(m.VertexDegree(v), 3u);
  }
}

TEST(KTrussMaintainerTest, BatchRemovalCountsTrianglesOnce) {
  // Regression for the batch-cascade bug: removing several vertices at once
  // must fully propagate support losses. In K6 as a 4-truss, removing
  // {4, 5} leaves K4 (support 2 = k-2, survives); removing {3, 4, 5}
  // leaves K3 (support 1 < 2, collapses).
  LabeledGraph g = MakeClique(6);
  auto td = TrussDecomposition::Compute(g);
  const VertexId queries[] = {0};
  {
    KTrussMaintainer m(g, td, TrussCommunity(g, td, queries, 4), 4);
    const VertexId batch[] = {4, 5};
    EXPECT_EQ(m.RemoveVertices(batch).size(), 2u);
    EXPECT_TRUE(m.VertexAlive(0));
  }
  {
    KTrussMaintainer m(g, td, TrussCommunity(g, td, queries, 4), 4);
    const VertexId batch[] = {3, 4, 5};
    EXPECT_EQ(m.RemoveVertices(batch).size(), 6u);
    EXPECT_FALSE(m.VertexAlive(0));
  }
}

TEST(KTrussMaintainerTest, BfsRespectsDeadEdges) {
  // Path of triangles: {0,1,2}, {2,3,4} as a 3-truss.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}};
  LabeledGraph g = LabeledGraph::FromEdges(5, std::move(edges), std::vector<Label>(5, 0));
  auto td = TrussDecomposition::Compute(g);
  const VertexId queries[] = {0};
  auto comp = TrussCommunity(g, td, queries, 3);
  KTrussMaintainer m(g, td, comp, 3);
  std::vector<std::uint32_t> dist;
  m.BfsOverAlive(0, &dist);
  EXPECT_EQ(dist[4], 2u);
  // Removing vertex 3 collapses the second triangle; 4 becomes unreachable.
  const VertexId batch[] = {3};
  m.RemoveVertices(batch);
  m.BfsOverAlive(0, &dist);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[4], kInfDistance);
}

// Reference: recompute the k-truss of the surviving vertex set from scratch
// and compare alive edges/vertices.
class TrussMaintenancePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrussMaintenancePropertyTest, MatchesRecomputationUnderRandomRemovals) {
  LabeledGraph g = MakeRandomGraph(24, 0.35, 1, GetParam() + 17);
  auto td = TrussDecomposition::Compute(g);
  const std::uint32_t k = 3;
  const VertexId queries[] = {0};
  auto comp = TrussCommunity(g, td, queries, k);
  if (comp.empty()) GTEST_SKIP() << "no 3-truss around vertex 0";
  KTrussMaintainer m(g, td, comp, k);

  std::mt19937_64 rng(GetParam());
  std::vector<VertexId> alive = comp;
  while (!alive.empty()) {
    VertexId victim = alive[rng() % alive.size()];
    m.RemoveVertices(std::vector<VertexId>{victim});
    std::erase(alive, victim);

    // Reference: iteratively peel edges with low support on the survivor
    // set, then drop edgeless vertices.
    std::vector<char> vmask(g.NumVertices(), 0);
    for (VertexId v : alive) vmask[v] = 1;
    std::vector<char> emask(td.edges().size(), 0);
    for (std::uint32_t e = 0; e < td.edges().size(); ++e) {
      emask[e] = td.trussness()[e] >= k && vmask[td.edges()[e].u] && vmask[td.edges()[e].v];
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t e = 0; e < td.edges().size(); ++e) {
        if (!emask[e]) continue;
        std::uint32_t s = 0;
        ForEachCommonNeighbor(g, td.edges()[e].u, td.edges()[e].v, [&](VertexId w) {
          std::uint32_t euw = td.EdgeId(td.edges()[e].u, w);
          std::uint32_t evw = td.EdgeId(td.edges()[e].v, w);
          if (euw != kInvalidEdge && evw != kInvalidEdge && emask[euw] && emask[evw]) ++s;
        });
        if (s + 2 < k) {
          emask[e] = 0;
          changed = true;
        }
      }
    }
    std::vector<char> expect_alive(g.NumVertices(), 0);
    for (std::uint32_t e = 0; e < td.edges().size(); ++e) {
      if (emask[e]) {
        expect_alive[td.edges()[e].u] = 1;
        expect_alive[td.edges()[e].v] = 1;
      }
    }
    for (std::uint32_t e = 0; e < td.edges().size(); ++e) {
      ASSERT_EQ(m.EdgeAlive(e), emask[e] != 0) << "edge " << e << " seed " << GetParam();
    }
    for (VertexId v : comp) {
      if (v == victim) continue;
      ASSERT_EQ(m.VertexAlive(v), expect_alive[v] != 0) << "vertex " << v;
    }
    // Keep `alive` in sync with the cascade for the next iteration.
    std::erase_if(alive, [&](VertexId v) { return !m.VertexAlive(v); });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrussMaintenancePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 5));

}  // namespace
}  // namespace bccs
