// Caching layer: the butterfly block cache (byte-budget LRU behind
// BcIndex), the epoch-keyed result cache, and their serving-engine wiring.
// The load-bearing property is DESIGN.md serving contract 6: a cache hit is
// indistinguishable from re-executing the query at its pinned epoch —
// mixed query/update streams must answer bit-identically with the cache on
// and off, including epoch_of. The concurrency stress tests are
// mutex-based throughout and run under the `sanitize` ctest label
// (ASan+UBSan and TSan presets).

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "bcc/bc_index.h"
#include "butterfly/block_cache.h"
#include "common/validate.h"
#include "eval/query_gen.h"
#include "eval/result_cache.h"
#include "eval/serve_engine.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"

namespace bccs {
namespace {

PlantedGraph MakeGraph(std::size_t communities = 5, std::uint64_t seed = 77,
                       std::size_t num_labels = 3) {
  PlantedConfig cfg;
  cfg.num_communities = communities;
  cfg.groups_per_community = 3;  // enough groups for 3-vertex mBCC queries
  cfg.num_labels = num_labels;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  cfg.seed = seed;
  return GeneratePlanted(cfg);
}

std::vector<BccQuery> SampleQueries(const PlantedGraph& pg, std::size_t count) {
  QueryGenConfig qcfg;
  std::vector<GroundTruthQuery> gt = SampleGroundTruthQueries(pg, count, qcfg);
  std::vector<BccQuery> out;
  for (const auto& g : gt) out.push_back(g.query);
  return out;
}

ButterflyCounts MakeCounts(std::size_t chi_size, std::uint64_t total) {
  ButterflyCounts c;
  c.chi.assign(chi_size, total);
  c.total = total;
  return c;
}

// --------------------------------------------------------------------------
// ButterflyBlockCache: LRU eviction under a byte budget, pinning.
// --------------------------------------------------------------------------

// With a budget of ~2 blocks, every insert beyond the budget evicts a
// shard-LRU victim; the byte accounting never exceeds the budget and
// evicted blocks fault back in with correct contents.
TEST(ButterflyBlockCacheTest, EvictsUnderByteBudget) {
  ButterflyBlockCache cache;
  cache.Insert(0, 1, MakeCounts(16, 1), /*pin=*/false);
  const std::size_t one = cache.Stats().bytes;
  ASSERT_GT(one, 0u);
  cache.SetBudget(2 * one + one / 2);

  cache.Insert(0, 2, MakeCounts(16, 2), /*pin=*/false);
  EXPECT_EQ(cache.Stats().evictions, 0u);

  for (Label b = 3; b < 10; ++b) {
    cache.Insert(0, b, MakeCounts(16, b), /*pin=*/false);
    EXPECT_LE(cache.Stats().bytes, cache.budget());
  }
  const BlockCacheStats s = cache.Stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(cache.EntryCount(), 2u);  // budget holds exactly two blocks
  EXPECT_EQ(s.entries, 9u - s.evictions);

  // A victim re-inserts cleanly (the fault-in path after eviction).
  bool refilled = false;
  for (Label b = 1; b < 10; ++b) {
    if (cache.Peek(0, b) != nullptr) continue;
    const auto back = cache.Insert(0, b, MakeCounts(16, b), /*pin=*/false);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->total, b);
    refilled = true;
    break;
  }
  EXPECT_TRUE(refilled);
  EXPECT_LE(cache.Stats().bytes, cache.budget());
}

// Pinned blocks never count against the budget and are never evicted, even
// when the budget cannot hold the unpinned tail.
TEST(ButterflyBlockCacheTest, PinnedBlocksExemptFromBudget) {
  ButterflyBlockCache cache;
  cache.Insert(0, 1, MakeCounts(64, 1), /*pin=*/true);
  cache.Insert(0, 2, MakeCounts(64, 2), /*pin=*/true);
  cache.SetBudget(1);  // smaller than any single block
  EXPECT_EQ(cache.Stats().evictions, 0u);
  EXPECT_EQ(cache.EntryCount(), 2u);

  cache.Insert(1, 2, MakeCounts(64, 3), /*pin=*/false);
  const BlockCacheStats s = cache.Stats();
  EXPECT_EQ(s.pinned_entries, 2u);
  EXPECT_EQ(s.bytes, 0u);  // the unpinned block could not be retained
  EXPECT_NE(cache.Peek(0, 1), nullptr);
  EXPECT_NE(cache.Peek(0, 2), nullptr);
}

// First insert wins; a re-insert may only promote an existing block to
// pinned (snapshot materialization over a lazily faulted block).
TEST(ButterflyBlockCacheTest, FirstInsertWinsAndPinPromotes) {
  ButterflyBlockCache cache;
  const auto first = cache.Insert(0, 1, MakeCounts(8, 1), /*pin=*/false);
  const auto second = cache.Insert(0, 1, MakeCounts(8, 99), /*pin=*/true);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(second->total, 1u);
  EXPECT_EQ(cache.Stats().pinned_entries, 1u);
}

// Lazy fault-ins through BcIndex under a budget keep the byte/entry
// accounting exact (the ValidatePairCacheAccounting contract) and the
// served counts identical to an unbounded index.
TEST(ButterflyBlockCacheTest, BcIndexAccountingValidatesUnderEviction) {
  PlantedGraph pg = MakeGraph(6, 21, /*num_labels=*/6);
  BcIndex ref(pg.graph);
  BcIndex capped(pg.graph);

  capped.PairButterflies(0, 1);
  const std::size_t one = capped.PairCacheStats().bytes;
  capped.SetPairCacheBudget(2 * one + one / 2);

  const auto num_labels = static_cast<Label>(pg.graph.NumLabels());
  for (int round = 0; round < 3; ++round) {
    for (Label a = 0; a + 1 < num_labels; ++a) {
      for (Label b = a + 1; b < num_labels; ++b) {
        const auto got = capped.PairButterflies(a, b);
        const auto want = ref.PairButterflies(a, b);
        ASSERT_EQ(got->total, want->total);
        ASSERT_EQ(got->chi, want->chi);
        const ValidationResult acc = ValidatePairCacheAccounting(capped);
        ASSERT_TRUE(acc.ok) << acc.reason;
      }
    }
  }
  const BlockCacheStats s = capped.PairCacheStats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes, s.budget_bytes);
}

// --------------------------------------------------------------------------
// ResultCache: the epoch-window validity rule.
// --------------------------------------------------------------------------

ResultCacheKey MakeKey(VertexId ql, VertexId qr) {
  ResultCacheKey key;
  key.method = 1;
  key.vertices = {ql, qr};
  key.ks = {0, 0};
  key.b = 1;
  return key;
}

TEST(ResultCacheTest, EpochWindowRule) {
  ResultCache cache(64);
  const ResultCacheKey key = MakeKey(3, 9);
  const std::vector<Label> labels = {0, 1};
  Community community;
  community.vertices = {3, 5, 9};
  SearchStats stats;

  Community got;
  SearchStats got_stats;
  // Cold miss, then insert at epoch 1.
  EXPECT_FALSE(cache.Lookup(key, 1, 0, &got, &got_stats));
  cache.Insert(key, labels, 1, community, stats);

  // Valid at its own epoch and any later epoch while untouched.
  EXPECT_TRUE(cache.Lookup(key, 1, 0, &got, &got_stats));
  EXPECT_EQ(got, community);
  EXPECT_TRUE(cache.Lookup(key, 5, 1, &got, &got_stats));

  // A cross repair of an unrelated pair does not invalidate it...
  const std::vector<std::pair<Label, Label>> other_pair = {{2, 3}};
  cache.NoteRepairs({}, other_pair, 6);
  EXPECT_TRUE(cache.Lookup(key, 6, 0, &got, &got_stats));

  // ...but a repair of the entry's own pair after its compute epoch does.
  const std::vector<std::pair<Label, Label>> own_pair = {{0, 1}};
  cache.NoteRepairs({}, own_pair, 7);
  EXPECT_FALSE(cache.Lookup(key, 7, 0, &got, &got_stats));
  EXPECT_EQ(cache.Stats().stale_drops, 1u);

  // An insert that lost the race with that repair is rejected.
  cache.Insert(key, labels, 6, community, stats);
  EXPECT_EQ(cache.Stats().rejected_inserts, 1u);
  EXPECT_FALSE(cache.Lookup(key, 7, 0, &got, &got_stats));

  // Recomputed at epoch 8 it is valid again — but never for a query still
  // pinned before its compute epoch.
  cache.Insert(key, labels, 8, community, stats);
  EXPECT_FALSE(cache.Lookup(key, 7, 0, &got, &got_stats));
  EXPECT_TRUE(cache.Lookup(key, 8, 0, &got, &got_stats));

  // An intra-label repair of one of the entry's labels invalidates too.
  const std::vector<Label> intra = {1};
  cache.NoteRepairs(intra, {}, 9);
  EXPECT_FALSE(cache.Lookup(key, 9, 0, &got, &got_stats));

  const ResultCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.stale_drops, 2u);
  EXPECT_EQ(s.lane_hits[0] + s.lane_hits[1], s.hits);
}

// Capacity is enforced per shard with LRU eviction.
TEST(ResultCacheTest, EvictsAtCapacity) {
  ResultCache cache(8);  // one entry per shard
  Community community;
  community.vertices = {1};
  SearchStats stats;
  const std::vector<Label> labels = {0};
  for (VertexId v = 0; v < 64; ++v) {
    cache.Insert(MakeKey(v, v + 1), labels, 1, community, stats);
  }
  const ResultCacheStats s = cache.Stats();
  EXPECT_EQ(s.insertions, 64u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.entries, s.capacity);
}

// Concurrent lookups, inserts, and invalidations: exercised for the
// sanitizer presets (TSan race-freedom, ASan/UBSan memory safety). The
// only assertion is that every observed hit carries a community consistent
// with what some insert stored for that key.
TEST(ResultCacheTest, ConcurrentHitMissInvalidate) {
  ResultCache cache(128);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> bad{false};

  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &bad, t] {
      SearchStats stats;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto v = static_cast<VertexId>((t * 7 + i) % 32);
        const ResultCacheKey key = MakeKey(v, v + 1);
        const std::vector<Label> labels = {static_cast<Label>(v % 4)};
        Community community;
        community.vertices = {v};
        Community got;
        SearchStats got_stats;
        if (cache.Lookup(key, /*query_epoch=*/1000, static_cast<std::size_t>(t % 2), &got,
                         &got_stats)) {
          if (got.vertices != community.vertices) bad.store(true);
        } else {
          cache.Insert(key, labels, /*compute_epoch=*/1, community, stats);
        }
      }
    });
  }
  workers.emplace_back([&cache] {
    for (std::uint64_t epoch = 2; epoch < 100; ++epoch) {
      const std::vector<Label> intra = {static_cast<Label>(epoch % 4)};
      cache.NoteRepairs(intra, {}, epoch);
    }
  });
  for (auto& w : workers) w.join();
  EXPECT_FALSE(bad.load());
  const ResultCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * static_cast<std::uint64_t>(kOpsPerThread));
}

// --------------------------------------------------------------------------
// ServeEngine wiring: contract 6 end to end.
// --------------------------------------------------------------------------

std::vector<ServeItem> MixedStream(const PlantedGraph& pg,
                                   std::span<const BccQuery> queries) {
  std::vector<Edge> edges = pg.graph.AllEdges();
  std::vector<ServeItem> items;
  // Three passes over the query pool with an update between passes: pass 2
  // re-asks pass 1's queries (hits or stale recomputes), and the deleted
  // edge comes back before pass 3 (answers really change in between).
  for (std::size_t pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      QueryRequest req;
      req.query = queries[i];
      req.method = QueryMethod::kLpBcc;
      req.lane = i % 3 == 0 ? Lane::kInteractive : Lane::kBulk;
      items.emplace_back(req);
    }
    if (pass + 1 < 3) {
      UpdateRequest update;
      if (pass == 0) {
        update.updates.push_back({EdgeUpdateKind::kDelete, edges[0]});
      } else {
        update.updates.push_back({EdgeUpdateKind::kInsert, edges[0]});
      }
      items.emplace_back(update);
    }
  }
  return items;
}

// The acceptance criterion of the PR: a mixed query/update stream answers
// bit-identically (communities AND epoch_of) with the result cache on and
// off, while the cached run actually serves hits and drops stale entries.
TEST(CacheServeTest, MixedStreamBitIdenticalToUncached) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 8);
  ASSERT_FALSE(queries.empty());
  std::vector<ServeItem> items = MixedStream(pg, queries);

  BatchRunner runner(4);
  ServeEngine uncached(runner, pg.graph);
  BatchResult off = uncached.RunStream(items);

  ServeOptions opts;
  opts.result_cache_entries = 64;
  ServeEngine cached(runner, pg.graph, nullptr, opts);
  BatchResult on = cached.RunStream(items);

  ASSERT_EQ(off.communities.size(), on.communities.size());
  for (std::size_t i = 0; i < off.communities.size(); ++i) {
    EXPECT_EQ(off.communities[i].vertices, on.communities[i].vertices) << "item " << i;
  }
  EXPECT_EQ(off.epoch_of, on.epoch_of);
  EXPECT_FALSE(off.result_cache_enabled);
  EXPECT_TRUE(on.result_cache_enabled);

  const ResultCacheStats s = on.result_cache;
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.misses, 0u);
  // The deleted edge's label pair invalidated at least one stored answer.
  EXPECT_GT(s.stale_drops + s.rejected_inserts, 0u);
}

// An update whose labels are disjoint from a cached entry's labels must NOT
// invalidate it: the re-asked query is a hit, served at the new epoch, with
// the pre-update (== post-update, for this query) answer.
TEST(CacheServeTest, HitsCarryForwardAcrossUnrelatedUpdates) {
  PlantedGraph pg = MakeGraph(6, 31, /*num_labels=*/6);
  std::vector<BccQuery> queries = SampleQueries(pg, 8);
  ASSERT_FALSE(queries.empty());
  const BccQuery q = queries.front();
  const Label la = pg.graph.LabelOf(q.ql);
  const Label lb = pg.graph.LabelOf(q.qr);

  // An existing edge with both endpoint labels outside the query's labels.
  Edge unrelated{kInvalidVertex, kInvalidVertex};
  for (const Edge& e : pg.graph.AllEdges()) {
    const Label eu = pg.graph.LabelOf(e.u);
    const Label ev = pg.graph.LabelOf(e.v);
    if (eu != la && eu != lb && ev != la && ev != lb) {
      unrelated = e;
      break;
    }
  }
  ASSERT_NE(unrelated.u, kInvalidVertex) << "planted graph has no label-disjoint edge";

  QueryRequest req;
  req.query = q;
  req.method = QueryMethod::kLpBcc;
  UpdateRequest update;
  update.updates.push_back({EdgeUpdateKind::kDelete, unrelated});

  std::vector<ServeItem> items;
  items.emplace_back(req);     // epoch 1: miss + insert
  items.emplace_back(update);  // publishes epoch 2
  items.emplace_back(req);     // epoch 2: must be a carried-forward hit

  BatchRunner runner(1);
  ServeOptions opts;
  opts.result_cache_entries = 16;
  ServeEngine engine(runner, pg.graph, nullptr, opts);
  BatchResult result = engine.RunStream(items);

  EXPECT_EQ(result.epoch_of[2], 2u);
  EXPECT_EQ(result.communities[0].vertices, result.communities[2].vertices);
  const ResultCacheStats s = result.result_cache;
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.stale_drops, 0u);
}

// Approx-enabled and deadline-bearing requests bypass the cache entirely
// (per-query seeds and timing-dependent partial answers are not reusable).
TEST(CacheServeTest, ApproxAndDeadlineRequestsNotCached) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 4);
  ASSERT_FALSE(queries.empty());

  BatchRunner runner(1);
  ServeOptions opts;
  opts.result_cache_entries = 16;
  ApproxOptions approx;
  approx.enabled = true;
  approx.samples = 64;
  approx.threshold = 1;  // force the sampled path
  opts.online.approx = approx;
  ServeEngine engine(runner, pg.graph, nullptr, opts);

  std::vector<ServeItem> items;
  for (int rep = 0; rep < 2; ++rep) {
    QueryRequest sampled;
    sampled.query = queries[0];
    sampled.method = QueryMethod::kOnlineBcc;  // approx-enabled → uncacheable
    items.emplace_back(sampled);
    QueryRequest deadline;
    deadline.query = queries[0];
    deadline.method = QueryMethod::kLpBcc;
    deadline.deadline_seconds = 30.0;  // deadline-bearing → uncacheable
    items.emplace_back(deadline);
  }
  BatchResult result = engine.RunStream(items);
  const ResultCacheStats s = result.result_cache;
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.insertions, 0u);
}

// --------------------------------------------------------------------------
// Variance-adaptive approx sampling.
// --------------------------------------------------------------------------

TEST(VarianceAdaptiveTest, EffectiveSampleCountScalesWithVariance) {
  ApproxOptions o;
  o.enabled = true;
  o.adaptive = true;
  o.variance_adaptive = true;
  o.samples = 1024;
  o.min_samples = 64;

  const std::size_t base = EffectiveSampleCount(o, /*alive=*/1024);
  // Neutral history reproduces the size-based schedule.
  EXPECT_EQ(EffectiveSampleCount(o, 1024, 1.0), base);
  // Low variance shrinks (floored), high variance grows (ceilinged).
  EXPECT_EQ(EffectiveSampleCount(o, 1024, 0.0), base / 4);
  EXPECT_EQ(EffectiveSampleCount(o, 1024, 100.0), o.samples);
  // Never below the floor or above the ceiling.
  EXPECT_GE(EffectiveSampleCount(o, 16, 0.0), std::min(o.min_samples, o.samples));
  EXPECT_LE(EffectiveSampleCount(o, 1 << 20, 100.0), o.samples);

  // Without the flag the history is ignored.
  o.variance_adaptive = false;
  EXPECT_EQ(EffectiveSampleCount(o, 1024, 100.0), base);
  // Without `adaptive`, fixed budget regardless.
  o.adaptive = false;
  o.variance_adaptive = true;
  EXPECT_EQ(EffectiveSampleCount(o, 1024, 0.0), o.samples);
}

// The variance feedback is a pure function of the query's own seeded
// estimates: answers stay bit-identical between 1 worker and many.
TEST(VarianceAdaptiveTest, DeterministicAcrossThreadCounts) {
  PlantedGraph pg = MakeGraph(6, 91);
  std::vector<BccQuery> queries = SampleQueries(pg, 12);
  ASSERT_FALSE(queries.empty());

  ApproxOptions approx;
  approx.enabled = true;
  approx.samples = 128;
  approx.min_samples = 16;
  approx.threshold = 32;
  approx.adaptive = true;
  approx.variance_adaptive = true;
  approx.seed = 13;
  SearchOptions opts = OnlineBccOptions();
  opts.approx = approx;

  BccParams params;
  BatchRunner seq(1);
  BatchRunner par(4);
  BatchResult s = seq.RunBccBatch(pg.graph, queries, params, opts);
  BatchResult p = par.RunBccBatch(pg.graph, queries, params, opts);
  ASSERT_EQ(s.communities.size(), p.communities.size());
  for (std::size_t i = 0; i < s.communities.size(); ++i) {
    EXPECT_EQ(s.communities[i].vertices, p.communities[i].vertices) << "query " << i;
  }

  // mBCC threads the per-pair variance history the same way.
  std::vector<MbccGroundTruthQuery> mgt = SampleMbccGroundTruthQueries(pg, 3, 6, 17);
  std::vector<MbccQuery> mqueries;
  for (const auto& g : mgt) mqueries.push_back(g.query);
  ASSERT_FALSE(mqueries.empty());
  MbccParams mparams;
  SearchOptions mopts = LpBccOptions();
  mopts.approx = approx;
  BatchResult ms = seq.RunMbccBatch(pg.graph, mqueries, mparams, mopts);
  BatchResult mp = par.RunMbccBatch(pg.graph, mqueries, mparams, mopts);
  ASSERT_EQ(ms.communities.size(), mp.communities.size());
  for (std::size_t i = 0; i < ms.communities.size(); ++i) {
    EXPECT_EQ(ms.communities[i].vertices, mp.communities[i].vertices) << "query " << i;
  }
}

}  // namespace
}  // namespace bccs
