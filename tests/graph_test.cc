#include "graph/labeled_graph.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "graph/union_find.h"
#include "test_util.h"

namespace bccs {
namespace {

TEST(LabeledGraphTest, EmptyGraph) {
  LabeledGraph g = LabeledGraph::FromEdges(0, {}, {});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumLabels(), 0u);
}

TEST(LabeledGraphTest, SingleEdge) {
  LabeledGraph g = LabeledGraph::FromEdges(2, {{0, 1}}, {0, 1});
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.IsCrossEdge(0, 1));
}

TEST(LabeledGraphTest, DropsSelfLoopsAndDuplicates) {
  LabeledGraph g = LabeledGraph::FromEdges(3, {{0, 1}, {1, 0}, {2, 2}, {0, 1}, {1, 2}},
                                           {0, 0, 0});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_FALSE(g.HasEdge(2, 2));
}

TEST(LabeledGraphTest, NeighborsSorted) {
  LabeledGraph g = LabeledGraph::FromEdges(5, {{3, 0}, {3, 4}, {3, 1}, {3, 2}},
                                           {0, 0, 0, 0, 0});
  auto nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.MaxDegree(), 4u);
}

TEST(LabeledGraphTest, LabelMembership) {
  LabeledGraph g = LabeledGraph::FromEdges(6, {{0, 1}}, {0, 1, 0, 2, 1, 0});
  EXPECT_EQ(g.NumLabels(), 3u);
  auto zeros = g.VerticesWithLabel(0);
  EXPECT_EQ(std::vector<VertexId>(zeros.begin(), zeros.end()),
            (std::vector<VertexId>{0, 2, 5}));
  auto twos = g.VerticesWithLabel(2);
  EXPECT_EQ(std::vector<VertexId>(twos.begin(), twos.end()), (std::vector<VertexId>{3}));
  EXPECT_EQ(g.LabelOf(4), 1u);
}

TEST(LabeledGraphTest, AllEdgesCanonical) {
  LabeledGraph g = LabeledGraph::FromEdges(4, {{2, 1}, {3, 0}, {1, 0}}, {0, 0, 0, 0});
  auto edges = g.AllEdges();
  ASSERT_EQ(edges.size(), 3u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }));
}

TEST(LabeledGraphTest, CliqueDegrees) {
  LabeledGraph g = testing::MakeClique(7);
  EXPECT_EQ(g.NumEdges(), 21u);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.Degree(v), 6u);
}

TEST(LabeledGraphTest, ForEachCommonNeighbor) {
  // Triangle 0-1-2 plus pendant 3 on 0.
  LabeledGraph g = LabeledGraph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}}, {0, 0, 0, 0});
  std::vector<VertexId> common;
  ForEachCommonNeighbor(g, 0, 1, [&](VertexId w) { common.push_back(w); });
  EXPECT_EQ(common, (std::vector<VertexId>{2}));
  common.clear();
  ForEachCommonNeighbor(g, 2, 3, [&](VertexId w) { common.push_back(w); });
  EXPECT_EQ(common, (std::vector<VertexId>{0}));
}

TEST(GraphIoTest, RoundTrip) {
  LabeledGraph g = testing::MakeRandomGraph(30, 0.2, 3, 42);
  std::stringstream ss;
  WriteLabeledGraph(g, ss);
  auto g2 = ReadLabeledGraph(ss);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->NumVertices(), g.NumVertices());
  EXPECT_EQ(g2->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g2->LabelOf(v), g.LabelOf(v));
    auto a = g.Neighbors(v);
    auto b = g2->Neighbors(v);
    EXPECT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()));
  }
}

TEST(GraphIoTest, RejectsMalformed) {
  std::stringstream missing_header("e 0 1\n");
  EXPECT_FALSE(ReadLabeledGraph(missing_header).has_value());
  std::stringstream bad_vertex("v 2\ne 0 5\n");
  EXPECT_FALSE(ReadLabeledGraph(bad_vertex).has_value());
  std::stringstream bad_kind("v 2\nx 0 1\n");
  EXPECT_FALSE(ReadLabeledGraph(bad_kind).has_value());
}

TEST(GraphIoTest, CommentsIgnored) {
  // Labels 3 and 4 on a 2-vertex graph: sparse label ids stay accepted.
  std::stringstream ss("# header comment\nv 2\n  # indented comment\nl 0 3\nl 1 4\ne 0 1\n");
  auto g = ReadLabeledGraph(ss);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_EQ(g->LabelOf(0), 3u);
  EXPECT_EQ(g->LabelOf(1), 4u);
}

TEST(GraphIoTest, ToleratesCrlfAndBlankLines) {
  std::stringstream ss("# made on windows\r\nv 3\r\n\r\n   \t \nl 0 1\r\ne 0 1\r\ne 1 2\r\n");
  auto g = ReadLabeledGraph(ss);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 2u);
  EXPECT_EQ(g->LabelOf(0), 1u);
}

TEST(GraphIoTest, ErrorsCarryLineNumbers) {
  std::string error;
  std::stringstream bad_token("v 4\ne 0 1\ne 2 x\n");
  EXPECT_FALSE(ReadLabeledGraph(bad_token, &error).has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;

  std::stringstream trailing("v 4\ne 0 1 7\n");
  EXPECT_FALSE(ReadLabeledGraph(trailing, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  std::stringstream out_of_range("v 2\n# fine so far\ne 0 5\n");
  EXPECT_FALSE(ReadLabeledGraph(out_of_range, &error).has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;

  std::stringstream before_header("# c\ne 0 1\nv 2\n");
  EXPECT_FALSE(ReadLabeledGraph(before_header, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  std::stringstream duplicate_header("v 2\nv 2\n");
  EXPECT_FALSE(ReadLabeledGraph(duplicate_header, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;

  std::stringstream no_header("# only comments\n\n");
  EXPECT_FALSE(ReadLabeledGraph(no_header, &error).has_value());
  EXPECT_NE(error.find("missing 'v"), std::string::npos) << error;
}

TEST(GraphIoTest, RejectsHugeVertexCountInsteadOfAllocating) {
  std::string error;
  std::stringstream wrapped("v -1\n");  // unsigned extraction wraps to SIZE_MAX
  EXPECT_FALSE(ReadLabeledGraph(wrapped, &error).has_value());
  EXPECT_NE(error.find("vertex count"), std::string::npos) << error;

  std::stringstream sentinel("v 4294967295\n");  // == kInvalidVertex
  EXPECT_FALSE(ReadLabeledGraph(sentinel, &error).has_value());
  EXPECT_NE(error.find("vertex count"), std::string::npos) << error;
}

TEST(GraphIoTest, RejectsHugeLabelInsteadOfAllocating) {
  // A stray huge label used to drive the dense label table allocation.
  std::string error;
  std::stringstream ss("v 2\nl 0 4294967295\n");
  EXPECT_FALSE(ReadLabeledGraph(ss, &error).has_value());
  EXPECT_NE(error.find("label"), std::string::npos) << error;
}

TEST(GraphIoTest, HardErrorInsteadOfTruncation) {
  // A bad line mid-file must fail the whole parse, not silently drop the
  // remaining edges.
  std::string error;
  std::stringstream ss("v 4\ne 0 1\ne 1 oops\ne 2 3\n");
  EXPECT_FALSE(ReadLabeledGraph(ss, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(GraphIoTest, FileRoundTrip) {
  LabeledGraph g = testing::MakeRandomGraph(20, 0.3, 2, 99);
  const std::string path = ::testing::TempDir() + "/bccs_io_roundtrip.txt";
  ASSERT_TRUE(WriteLabeledGraphToFile(g, path));
  auto g2 = ReadLabeledGraphFromFile(path);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->NumVertices(), g.NumVertices());
  EXPECT_EQ(g2->NumEdges(), g.NumEdges());
  EXPECT_FALSE(ReadLabeledGraphFromFile(path + ".does-not-exist").has_value());
}

TEST(UnionFindTest, Basics) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_TRUE(uf.Union(1, 3));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.SetSize(0), 4u);
  EXPECT_EQ(uf.SetSize(4), 1u);
}

TEST(UnionFindTest, LargeChain) {
  constexpr std::uint32_t n = 1000;
  UnionFind uf(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) uf.Union(i, i + 1);
  EXPECT_TRUE(uf.Connected(0, n - 1));
  EXPECT_EQ(uf.SetSize(500), n);
}

}  // namespace
}  // namespace bccs
