#include "truss/truss_decomposition.h"

#include <map>

#include <gtest/gtest.h>

#include "test_util.h"

namespace bccs {
namespace {

using testing::MakeClique;
using testing::MakeCycle;
using testing::MakeRandomGraph;

// Reference truss decomposition: repeatedly peel a minimum-support edge.
std::map<std::pair<VertexId, VertexId>, std::uint32_t> NaiveTrussness(const LabeledGraph& g) {
  auto edges = g.AllEdges();
  std::map<std::pair<VertexId, VertexId>, std::uint32_t> result;
  std::vector<char> alive(edges.size(), 1);
  auto support = [&](std::size_t e) {
    std::uint32_t s = 0;
    ForEachCommonNeighbor(g, edges[e].u, edges[e].v, [&](VertexId w) {
      // The triangle counts only if both partner edges are still alive.
      bool uw = false, vw = false;
      for (std::size_t f = 0; f < edges.size(); ++f) {
        if (!alive[f]) continue;
        VertexId a = edges[f].u, b = edges[f].v;
        if ((a == std::min(edges[e].u, w) && b == std::max(edges[e].u, w))) uw = true;
        if ((a == std::min(edges[e].v, w) && b == std::max(edges[e].v, w))) vw = true;
      }
      if (uw && vw) ++s;
    });
    return s;
  };
  std::uint32_t k = 2;
  std::size_t remaining = edges.size();
  while (remaining > 0) {
    std::size_t best = edges.size();
    std::uint32_t best_sup = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!alive[e]) continue;
      std::uint32_t s = support(e);
      if (best == edges.size() || s < best_sup) {
        best = e;
        best_sup = s;
      }
    }
    k = std::max(k, best_sup + 2);
    result[{edges[best].u, edges[best].v}] = k;
    alive[best] = 0;
    --remaining;
  }
  return result;
}

TEST(TrussDecompositionTest, Clique) {
  // Every edge of K_n has trussness n.
  for (std::size_t n : {3u, 4u, 6u}) {
    LabeledGraph g = MakeClique(n);
    auto td = TrussDecomposition::Compute(g);
    for (std::uint32_t t : td.trussness()) EXPECT_EQ(t, n);
    EXPECT_EQ(td.max_trussness(), n);
  }
}

TEST(TrussDecompositionTest, TriangleFreeIsTwoTruss) {
  LabeledGraph g = MakeCycle(8);
  auto td = TrussDecomposition::Compute(g);
  for (std::uint32_t t : td.trussness()) EXPECT_EQ(t, 2u);
}

TEST(TrussDecompositionTest, TwoTrianglesSharedEdge) {
  // Triangles {0,1,2} and {1,2,3} sharing edge (1,2): all edges 3-truss.
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}};
  LabeledGraph g = LabeledGraph::FromEdges(4, std::move(edges), std::vector<Label>(4, 0));
  auto td = TrussDecomposition::Compute(g);
  for (std::uint32_t t : td.trussness()) EXPECT_EQ(t, 3u);
}

TEST(TrussDecompositionTest, EdgeIdLookup) {
  LabeledGraph g = MakeClique(5);
  auto td = TrussDecomposition::Compute(g);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 0; v < 5; ++v) {
      if (u == v) continue;
      std::uint32_t e = td.EdgeId(u, v);
      ASSERT_NE(e, kInvalidEdge);
      EXPECT_EQ(td.edges()[e].u, std::min(u, v));
      EXPECT_EQ(td.edges()[e].v, std::max(u, v));
    }
  }
  EXPECT_EQ(td.EdgeId(0, 0), kInvalidEdge);
}

class TrussPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrussPropertyTest, MatchesNaivePeeling) {
  LabeledGraph g = MakeRandomGraph(18, 0.3, 1, GetParam());
  auto td = TrussDecomposition::Compute(g);
  auto naive = NaiveTrussness(g);
  for (std::size_t e = 0; e < td.edges().size(); ++e) {
    auto key = std::make_pair(td.edges()[e].u, td.edges()[e].v);
    EXPECT_EQ(td.trussness()[e], naive.at(key))
        << "edge (" << key.first << "," << key.second << ") seed " << GetParam();
  }
}

TEST_P(TrussPropertyTest, KTrussSubgraphHasSupport) {
  // Within the k-truss (edges with trussness >= k), every edge must close
  // at least k-2 triangles using k-truss edges only.
  LabeledGraph g = MakeRandomGraph(25, 0.25, 1, GetParam() + 50);
  auto td = TrussDecomposition::Compute(g);
  for (std::uint32_t k = 3; k <= td.max_trussness(); ++k) {
    for (std::size_t e = 0; e < td.edges().size(); ++e) {
      if (td.trussness()[e] < k) continue;
      std::uint32_t s = 0;
      ForEachCommonNeighbor(g, td.edges()[e].u, td.edges()[e].v, [&](VertexId w) {
        std::uint32_t euw = td.EdgeId(td.edges()[e].u, w);
        std::uint32_t evw = td.EdgeId(td.edges()[e].v, w);
        if (euw != kInvalidEdge && evw != kInvalidEdge && td.trussness()[euw] >= k &&
            td.trussness()[evw] >= k) {
          ++s;
        }
      });
      EXPECT_GE(s + 2, k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrussPropertyTest, ::testing::Range<std::uint64_t>(0, 6));

TEST(TrussCommunityTest, CliqueCommunity) {
  LabeledGraph g = MakeClique(5);
  auto td = TrussDecomposition::Compute(g);
  const VertexId queries[] = {0, 3};
  EXPECT_EQ(MaxTrussConnecting(g, td, queries), 5u);
  auto comm = TrussCommunity(g, td, queries, 5);
  EXPECT_EQ(comm.size(), 5u);
}

TEST(TrussCommunityTest, BridgeLimitsTrussLevel) {
  // Two K4s joined by a single bridge edge: the bridge is 2-truss, so the
  // max truss connecting the two sides is 2.
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) {
      edges.push_back({i, j});
      edges.push_back({static_cast<VertexId>(4 + i), static_cast<VertexId>(4 + j)});
    }
  }
  edges.push_back({3, 4});
  LabeledGraph g = LabeledGraph::FromEdges(8, std::move(edges), std::vector<Label>(8, 0));
  auto td = TrussDecomposition::Compute(g);
  const VertexId cross_queries[] = {0, 7};
  EXPECT_EQ(MaxTrussConnecting(g, td, cross_queries), 2u);
  const VertexId same_side[] = {0, 3};
  EXPECT_EQ(MaxTrussConnecting(g, td, same_side), 4u);
  auto comm = TrussCommunity(g, td, same_side, 4);
  EXPECT_EQ(comm, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(TrussCommunityTest, DisconnectedQueries) {
  // Two disjoint triangles.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), std::vector<Label>(6, 0));
  auto td = TrussDecomposition::Compute(g);
  const VertexId queries[] = {0, 5};
  EXPECT_EQ(MaxTrussConnecting(g, td, queries), 0u);
  EXPECT_TRUE(TrussCommunity(g, td, queries, 2).empty());
}

}  // namespace
}  // namespace bccs
