#include "eval/batch_runner.h"

#include <atomic>

#include <gtest/gtest.h>

#include "bench_common.h"
#include "graph/generators.h"

namespace bccs {
namespace {

using bench::AllMethods;
using bench::Method;
using bench::MethodAggregate;
using bench::Prepare;
using bench::PreparedDataset;

TEST(BatchRunnerTest, GenericRunCoversEveryIndexOnce) {
  BatchRunner runner(4);
  EXPECT_EQ(runner.NumThreads(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  runner.Run(hits.size(), [&](std::size_t i, QueryWorkspace&) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // Back-to-back batches reuse the same pool (regression for straggler
  // claims leaking across generations).
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    runner.Run(31, [&](std::size_t, QueryWorkspace&) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 31);
  }
}

TEST(BatchRunnerTest, BatchEqualsSequentialForAllMethods) {
  DatasetSpec spec;
  spec.name = "batch-test";
  spec.config.num_communities = 5;
  spec.config.min_group_size = 8;
  spec.config.max_group_size = 14;
  spec.config.intra_edge_prob = 0.5;
  spec.config.seed = 77;
  PreparedDataset ds = Prepare(spec, 12, {});
  ASSERT_FALSE(ds.queries.empty());

  BccParams params;  // auto k, b = 1
  BatchRunner runner(3);
  for (Method m : AllMethods()) {
    MethodAggregate seq = bench::RunMethod(ds, m, params);
    BatchResult batch;
    MethodAggregate par = bench::RunMethodBatch(ds, m, params, runner, &batch);

    // Identical communities (and hence identical aggregate quality).
    ASSERT_EQ(batch.communities.size(), ds.queries.size());
    EXPECT_NEAR(par.avg_f1, seq.avg_f1, 1e-12) << bench::Name(m);
    EXPECT_EQ(par.empty_results, seq.empty_results) << bench::Name(m);

    // Re-run sequentially and compare each community verbatim.
    for (std::size_t i = 0; i < ds.queries.size(); ++i) {
      Community c;
      SearchStats stats;
      const BccQuery& q = ds.queries[i].query;
      switch (m) {
        case Method::kPsa: c = ds.psa->Search(q, &stats); break;
        case Method::kCtc: c = ds.ctc->Search(q, &stats); break;
        case Method::kOnlineBcc: c = OnlineBcc(ds.planted.graph, q, params, &stats); break;
        case Method::kLpBcc: c = LpBcc(ds.planted.graph, q, params, &stats); break;
        case Method::kL2pBcc:
          c = L2pBcc(ds.planted.graph, *ds.index, q, params, {}, &stats);
          break;
      }
      EXPECT_EQ(batch.communities[i].vertices, c.vertices)
          << bench::Name(m) << " query " << i;
    }
  }
}

TEST(BatchRunnerTest, MbccBatchEqualsSequential) {
  PlantedConfig cfg;
  cfg.num_communities = 4;
  cfg.groups_per_community = 3;
  cfg.num_labels = 3;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  cfg.seed = 5;
  PlantedGraph pg = GeneratePlanted(cfg);
  std::vector<MbccGroundTruthQuery> gt = SampleMbccGroundTruthQueries(pg, 3, 8, 3);
  ASSERT_FALSE(gt.empty());
  std::vector<MbccQuery> queries;
  for (const auto& g : gt) queries.push_back(g.query);

  BatchRunner runner(3);
  BatchResult batch = runner.RunMbccBatch(pg.graph, queries, MbccParams{}, LpBccOptions());
  ASSERT_EQ(batch.communities.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Community c = MbccSearch(pg.graph, queries[i], MbccParams{}, LpBccOptions());
    EXPECT_EQ(batch.communities[i].vertices, c.vertices) << "query " << i;
  }
}

TEST(BatchRunnerTest, SteadyStateBatchesStayAllocationFree) {
  DatasetSpec spec;
  spec.name = "steady";
  spec.config.num_communities = 4;
  spec.config.min_group_size = 8;
  spec.config.max_group_size = 12;
  spec.config.seed = 123;
  PreparedDataset ds = Prepare(spec, 8, {});
  ASSERT_FALSE(ds.queries.empty());

  std::vector<BccQuery> raw;
  for (const auto& gq : ds.queries) raw.push_back(gq.query);
  // One worker makes the claim distribution (and hence the per-workspace
  // warm-up) deterministic; per-thread behavior is identical by symmetry.
  BatchRunner runner(1);
  runner.RunBccBatch(ds.planted.graph, raw, {}, LpBccOptions());  // warm-up
  const std::uint64_t warm = runner.AggregateWorkspaceStats().bulk_inits;
  BatchResult again = runner.RunBccBatch(ds.planted.graph, raw, {}, LpBccOptions());
  EXPECT_EQ(again.workspace_stats.bulk_inits, warm);
  EXPECT_EQ(runner.AggregateWorkspaceStats().bulk_inits, warm);
}

TEST(BatchRunnerTest, LatencySummaryPercentiles) {
  std::vector<double> seconds = {0.05, 0.01, 0.02, 0.04, 0.03};
  BatchLatency lat = SummarizeLatency(seconds, 0.1);
  EXPECT_NEAR(lat.qps, 50.0, 1e-9);
  EXPECT_NEAR(lat.avg_seconds, 0.03, 1e-12);
  EXPECT_NEAR(lat.p50_seconds, 0.03, 1e-12);
  EXPECT_NEAR(lat.p99_seconds, 0.05, 1e-12);
}

}  // namespace
}  // namespace bccs
