// Streaming serve loop: AdmissionQueue dequeue policy, per-lane in-flight
// caps, and the copy-on-write epoch layer. The load-bearing property is the
// acceptance criterion of the streaming refactor: RunStream with concurrent
// off-thread update preparation answers BIT-IDENTICALLY to a serialized
// replay of the same admission order. Synchronization throughout the loop is
// mutex/condvar based, so the multi-threaded stress tests here run clean
// under TSan and the `sanitize` ctest label exercises them under ASan+UBSan.

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "eval/admission_queue.h"
#include "eval/serve_engine.h"
#include "eval/query_gen.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"

namespace bccs {
namespace {

PlantedGraph MakeGraph(std::size_t communities = 5, std::uint64_t seed = 77) {
  PlantedConfig cfg;
  cfg.num_communities = communities;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  cfg.seed = seed;
  return GeneratePlanted(cfg);
}

std::vector<BccQuery> SampleQueries(const PlantedGraph& pg, std::size_t count) {
  QueryGenConfig qcfg;
  std::vector<GroundTruthQuery> gt = SampleGroundTruthQueries(pg, count, qcfg);
  std::vector<BccQuery> out;
  for (const auto& g : gt) out.push_back(g.query);
  return out;
}

// --------------------------------------------------------------------------
// AdmissionQueue: the dequeue policy replaces BuildLaneOrder.
// --------------------------------------------------------------------------

// A single consumer must see exactly the order BuildLaneOrder would have
// compiled for the same lane sequence: interactive first, bulk aged in
// every (aging_period + 1)-th slot.
TEST(AdmissionQueueTest, SingleConsumerMatchesCompiledLaneOrder) {
  const std::vector<Lane> lanes = {Lane::kBulk,        Lane::kInteractive, Lane::kBulk,
                                   Lane::kInteractive, Lane::kInteractive, Lane::kBulk,
                                   Lane::kInteractive, Lane::kBulk};
  for (std::size_t aging : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    AdmissionQueue queue(aging, {});
    for (Lane lane : lanes) queue.AdmitQuery(lane);
    queue.Close();

    const std::vector<std::uint32_t> want = BuildLaneOrder(lanes, aging);
    std::vector<std::uint32_t> got;
    AdmissionQueue::Ticket t;
    while (queue.Pop(&t)) {
      ASSERT_EQ(t.kind, AdmissionQueue::Ticket::Kind::kQuery);
      got.push_back(static_cast<std::uint32_t>(t.index));
      queue.CompleteQuery(t.lane);
    }
    EXPECT_EQ(got, want) << "aging_period=" << aging;
  }
}

TEST(AdmissionQueueTest, PopDrainsAfterCloseAndReturnsFalse) {
  AdmissionQueue queue(0, {});
  queue.AdmitQuery(Lane::kBulk);
  queue.Close();
  AdmissionQueue::Ticket t;
  ASSERT_TRUE(queue.Pop(&t));
  queue.CompleteQuery(t.lane);
  EXPECT_FALSE(queue.Pop(&t));
  EXPECT_FALSE(queue.Pop(&t));  // idempotent once drained
}

// An update is handed out ahead of older queries (preparation starts as
// early as possible) and gates the queries admitted after it: they are not
// dequeued until PublishUpdate.
TEST(AdmissionQueueTest, UpdateGatesLaterQueriesButNotEarlierOnes) {
  AdmissionQueue queue(0, {});
  queue.AdmitQuery(Lane::kInteractive);  // index 0, epoch slot 0
  queue.AdmitUpdate();                   // index 1, ordinal 0
  queue.AdmitQuery(Lane::kInteractive);  // index 2, epoch slot 1
  queue.Close();

  AdmissionQueue::Ticket t;
  ASSERT_TRUE(queue.Pop(&t));  // the update goes first
  ASSERT_EQ(t.kind, AdmissionQueue::Ticket::Kind::kUpdate);
  EXPECT_EQ(t.index, 1u);
  EXPECT_EQ(t.update_ordinal, 0u);

  // With the update unresolved, only the pre-update query is runnable.
  ASSERT_TRUE(queue.Pop(&t));
  ASSERT_EQ(t.kind, AdmissionQueue::Ticket::Kind::kQuery);
  EXPECT_EQ(t.index, 0u);
  EXPECT_EQ(t.epoch_slot, 0u);
  queue.CompleteQuery(t.lane);

  // The post-update query is blocked until the publish; unblock it from a
  // second thread while this one waits inside Pop.
  std::thread publisher([&] { queue.PublishUpdate(); });
  ASSERT_TRUE(queue.Pop(&t));
  publisher.join();
  ASSERT_EQ(t.kind, AdmissionQueue::Ticket::Kind::kQuery);
  EXPECT_EQ(t.index, 2u);
  EXPECT_EQ(t.epoch_slot, 1u);
  queue.CompleteQuery(t.lane);
  EXPECT_FALSE(queue.Pop(&t));
}

// The bulk in-flight cap diverts dequeues to the interactive lane while
// bulk slots are occupied.
TEST(AdmissionQueueTest, BulkCapDivertsToInteractive) {
  AdmissionCaps caps;
  caps.bulk = 1;
  AdmissionQueue queue(/*aging_period=*/1, caps);
  queue.AdmitQuery(Lane::kBulk);         // 0
  queue.AdmitQuery(Lane::kBulk);         // 1
  queue.AdmitQuery(Lane::kInteractive);  // 2
  queue.Close();

  AdmissionQueue::Ticket a, b, c;
  ASSERT_TRUE(queue.Pop(&a));
  EXPECT_EQ(a.index, 2u);  // interactive first
  // Aging would now hand the slot to bulk; index 0 occupies the only slot.
  ASSERT_TRUE(queue.Pop(&b));
  EXPECT_EQ(b.index, 0u);
  EXPECT_EQ(b.lane, Lane::kBulk);
  // Bulk is at its cap: index 1 must wait for the completion of index 0
  // even though no interactive query remains.
  std::thread completer([&] { queue.CompleteQuery(Lane::kBulk); });
  ASSERT_TRUE(queue.Pop(&c));
  completer.join();
  EXPECT_EQ(c.index, 1u);
  queue.CompleteQuery(Lane::kBulk);
  queue.CompleteQuery(Lane::kInteractive);
  EXPECT_EQ(queue.max_inflight(Lane::kBulk), 1u);
}

// MPMC under contention: every ticket is delivered exactly once, caps are
// never exceeded, and epoch gating holds (a query's slot is never popped
// before its update resolves).
TEST(AdmissionQueueTest, ConcurrentProducersAndConsumersDeliverExactlyOnce) {
  AdmissionCaps caps;
  caps.bulk = 2;
  AdmissionQueue queue(3, caps);
  constexpr std::size_t kItems = 400;

  std::vector<std::atomic<int>> delivered(kItems);
  for (auto& d : delivered) d.store(0);
  std::atomic<std::size_t> bulk_inflight{0};
  std::atomic<bool> cap_violated{false};
  std::atomic<std::size_t> resolved{0};
  std::atomic<bool> gate_violated{false};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      AdmissionQueue::Ticket t;
      while (queue.Pop(&t)) {
        delivered[t.index].fetch_add(1);
        if (t.kind == AdmissionQueue::Ticket::Kind::kUpdate) {
          resolved.fetch_add(1);
          queue.PublishUpdate();
          continue;
        }
        if (t.epoch_slot > resolved.load()) gate_violated.store(true);
        if (t.lane == Lane::kBulk) {
          const std::size_t now = bulk_inflight.fetch_add(1) + 1;
          if (now > caps.bulk) cap_violated.store(true);
        }
        std::this_thread::yield();
        if (t.lane == Lane::kBulk) bulk_inflight.fetch_sub(1);
        queue.CompleteQuery(t.lane);
      }
    });
  }

  std::mt19937_64 rng(11);
  for (std::size_t i = 0; i < kItems; ++i) {
    const auto roll = rng() % 10;
    if (roll == 0) {
      queue.AdmitUpdate();
    } else {
      queue.AdmitQuery(roll % 2 == 0 ? Lane::kInteractive : Lane::kBulk);
    }
  }
  queue.Close();
  for (auto& c : consumers) c.join();

  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(delivered[i].load(), 1) << "ticket " << i;
  }
  EXPECT_FALSE(cap_violated.load());
  EXPECT_FALSE(gate_violated.load());
  EXPECT_LE(queue.max_inflight(Lane::kBulk), caps.bulk);
}

// --------------------------------------------------------------------------
// Streaming engine: bit-identical to a serialized replay.
// --------------------------------------------------------------------------

// Builds a mixed stream over the planted graph: interleaved lanes, several
// valid edge-update batches (deletions of planted edges, later re-inserts),
// and one intentionally invalid batch.
std::vector<ServeItem> MakeMixedStream(const PlantedGraph& pg,
                                       std::span<const BccQuery> queries,
                                       bool include_invalid) {
  std::vector<Edge> edges = pg.graph.AllEdges();
  std::vector<ServeItem> items;
  std::size_t edge_i = 0;
  auto push_update = [&](std::vector<EdgeUpdate> ups) {
    UpdateRequest u;
    u.updates = std::move(ups);
    items.emplace_back(std::move(u));
  };
  for (std::size_t rep = 0; rep < 4; ++rep) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      QueryRequest req;
      req.query = queries[i];
      req.method = i % 3 == 0 ? QueryMethod::kOnlineBcc : QueryMethod::kLpBcc;
      req.lane = i % 2 == 0 ? Lane::kInteractive : Lane::kBulk;
      items.emplace_back(req);
    }
    // One deletion batch per repetition; the last repetition re-inserts
    // everything so later assertions can compare against the base graph.
    if (rep + 1 < 4) {
      const Edge e = edges[edge_i++];
      push_update({{EdgeUpdateKind::kDelete, e}});
    } else {
      std::vector<EdgeUpdate> back;
      for (std::size_t k = 0; k < edge_i; ++k) {
        back.push_back({EdgeUpdateKind::kInsert, edges[k]});
      }
      push_update(std::move(back));
    }
  }
  if (include_invalid) {
    // Self loop: rejected as a whole batch, epoch must stay unchanged.
    push_update({{EdgeUpdateKind::kInsert, {0, 0}}});
    QueryRequest tail;
    tail.query = queries[0];
    tail.lane = Lane::kInteractive;
    items.emplace_back(tail);
  }
  return items;
}

// The serialized reference: one item at a time through a single-worker
// engine — the admission order IS the execution order.
BatchResult SerializedReplay(const PlantedGraph& pg, std::span<const ServeItem> items,
                             const ServeOptions& opts) {
  BatchRunner runner(1);
  ServeEngine engine(runner, pg.graph, nullptr, opts);
  BatchResult merged;
  for (const ServeItem& item : items) {
    BatchResult one = engine.Serve(std::span<const ServeItem>(&item, 1));
    merged.communities.push_back(std::move(one.communities[0]));
    merged.stats.push_back(one.stats[0]);
    merged.epoch_of.push_back(one.epoch_of[0]);
    for (UpdateOutcome& u : one.updates) {
      u.item_index = merged.communities.size() - 1;
      merged.updates.push_back(std::move(u));
    }
  }
  return merged;
}

void ExpectSameAnswers(const BatchResult& got, const BatchResult& want) {
  ASSERT_EQ(got.communities.size(), want.communities.size());
  for (std::size_t i = 0; i < got.communities.size(); ++i) {
    EXPECT_EQ(got.communities[i].vertices, want.communities[i].vertices) << "item " << i;
  }
  ASSERT_EQ(got.epoch_of.size(), want.epoch_of.size());
  for (std::size_t i = 0; i < got.epoch_of.size(); ++i) {
    EXPECT_EQ(got.epoch_of[i], want.epoch_of[i]) << "item " << i;
  }
  ASSERT_EQ(got.updates.size(), want.updates.size());
  for (std::size_t i = 0; i < got.updates.size(); ++i) {
    EXPECT_EQ(got.updates[i].applied, want.updates[i].applied) << "update " << i;
    EXPECT_EQ(got.updates[i].item_index, want.updates[i].item_index) << "update " << i;
    EXPECT_EQ(got.updates[i].epoch, want.updates[i].epoch) << "update " << i;
    EXPECT_EQ(got.updates[i].inserts, want.updates[i].inserts) << "update " << i;
    EXPECT_EQ(got.updates[i].deletes, want.updates[i].deletes) << "update " << i;
  }
}

// THE acceptance property: concurrent workers, off-thread update
// preparation, copy-on-write epoch publishes — and the answers (plus the
// epoch each item observed) are bit-identical to the serialized replay.
TEST(StreamServeTest, ConcurrentStreamMatchesSerializedReplay) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 8);
  ASSERT_GE(queries.size(), 4u);
  const std::vector<ServeItem> items = MakeMixedStream(pg, queries, /*include_invalid=*/true);

  ServeOptions opts;
  const BatchResult want = SerializedReplay(pg, items, opts);

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    BatchRunner runner(threads);
    ServeEngine engine(runner, pg.graph, nullptr, opts);
    BatchResult got = engine.RunStream(items);
    ExpectSameAnswers(got, want);
  }
}

// Same property with per-lane caps active: scheduling changes, answers and
// epochs do not, and the caps are observed.
TEST(StreamServeTest, LaneCapsChangeSchedulingNotAnswers) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 8);
  ASSERT_GE(queries.size(), 4u);
  const std::vector<ServeItem> items =
      MakeMixedStream(pg, queries, /*include_invalid=*/false);

  ServeOptions plain;
  const BatchResult want = SerializedReplay(pg, items, plain);

  ServeOptions capped = plain;
  capped.caps.bulk = 1;
  BatchRunner runner(4);
  ServeEngine engine(runner, pg.graph, nullptr, capped);
  BatchResult got = engine.RunStream(items);
  ExpectSameAnswers(got, want);
  for (const LaneSummary& lane : got.lanes) {
    if (lane.lane == Lane::kBulk) {
      EXPECT_LE(lane.max_inflight, 1u);
    }
  }
}

// Submit-while-draining: the session API admits items while workers are
// already executing earlier ones; results arrive in admission order and
// match the replay.
TEST(StreamServeTest, SessionSubmitWhileDrainingMatchesReplay) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 8);
  ASSERT_GE(queries.size(), 4u);
  const std::vector<ServeItem> items = MakeMixedStream(pg, queries, /*include_invalid=*/true);

  ServeOptions opts;
  const BatchResult want = SerializedReplay(pg, items, opts);

  BatchRunner runner(4);
  ServeEngine engine(runner, pg.graph, nullptr, opts);
  ServeEngine::Stream stream = engine.OpenStream();
  for (const ServeItem& item : items) {
    stream.Submit(item);
    std::this_thread::yield();  // let workers interleave with admission
  }
  EXPECT_EQ(stream.Submitted(), items.size());
  BatchResult got = stream.Finish();
  ExpectSameAnswers(got, want);
}

// Epoch pinning under the indexed (L2P) path: the repaired index published
// by a streamed update answers exactly like a fresh engine on the final
// graph, and pre-update queries saw the pre-update epoch.
TEST(StreamServeTest, IndexedStreamRepairsAndPinsEpochs) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 6);
  ASSERT_GE(queries.size(), 2u);
  BcIndex index(pg.graph);

  std::vector<Edge> edges = pg.graph.AllEdges();
  std::vector<ServeItem> items;
  for (const BccQuery& q : queries) {
    QueryRequest req;
    req.query = q;
    req.method = QueryMethod::kL2pBcc;
    req.lane = Lane::kInteractive;
    items.emplace_back(req);
  }
  UpdateRequest del;
  del.updates.push_back({EdgeUpdateKind::kDelete, edges[0]});
  items.emplace_back(del);
  for (const BccQuery& q : queries) {
    QueryRequest req;
    req.query = q;
    req.method = QueryMethod::kL2pBcc;
    req.lane = Lane::kBulk;
    items.emplace_back(req);
  }

  BatchRunner runner(4);
  ServeEngine engine(runner, pg.graph, &index, {});
  BatchResult got = engine.RunStream(items);
  ASSERT_EQ(got.updates.size(), 1u);
  ASSERT_TRUE(got.updates[0].applied);
  EXPECT_EQ(engine.epoch(), 2u);

  // Pre-update queries ran in epoch 1, post-update ones in epoch 2.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got.epoch_of[i], 1u) << i;
    EXPECT_EQ(got.epoch_of[queries.size() + 1 + i], 2u) << i;
  }

  // Reference answers: fresh engines over the base and the updated graph.
  BatchRunner seq(1);
  {
    ServeEngine base_engine(seq, pg.graph, &index, {});
    std::vector<ServeItem> head(items.begin(),
                                items.begin() + static_cast<std::ptrdiff_t>(queries.size()));
    BatchResult base = base_engine.Serve(head);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got.communities[i].vertices, base.communities[i].vertices) << i;
    }
  }
  {
    const auto delta = BuildGraphDelta(pg.graph, del.updates);
    ASSERT_TRUE(delta.has_value());
    const LabeledGraph updated = ApplyGraphDelta(pg.graph, *delta);
    BcIndex fresh(updated);
    ServeEngine updated_engine(seq, updated, &fresh, {});
    std::vector<ServeItem> tail(items.end() - static_cast<std::ptrdiff_t>(queries.size()),
                                items.end());
    BatchResult fresh_result = updated_engine.Serve(tail);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got.communities[queries.size() + 1 + i].vertices,
                fresh_result.communities[i].vertices)
          << i;
    }
  }
}

// A rejected batch publishes the unchanged epoch; the stream keeps serving.
TEST(StreamServeTest, RejectedUpdatePublishesUnchangedEpoch) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 2);
  ASSERT_FALSE(queries.empty());

  std::vector<ServeItem> items;
  QueryRequest q;
  q.query = queries[0];
  q.lane = Lane::kInteractive;
  items.emplace_back(q);
  UpdateRequest bad;
  bad.updates.push_back({EdgeUpdateKind::kInsert, {3, 3}});  // self loop
  items.emplace_back(bad);
  items.emplace_back(q);

  BatchRunner runner(2);
  ServeEngine engine(runner, pg.graph, nullptr, {});
  BatchResult got = engine.RunStream(items);
  ASSERT_EQ(got.updates.size(), 1u);
  EXPECT_FALSE(got.updates[0].applied);
  EXPECT_FALSE(got.updates[0].error.empty());
  EXPECT_EQ(got.epoch_of[0], 1u);
  EXPECT_EQ(got.epoch_of[2], 1u);  // unchanged for the post-reject query
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(got.communities[0].vertices, got.communities[2].vertices);
}

// Approx sampling through the stream: explicit request ids make the sampled
// schedule a pure function of the admission order, so a 1-worker and a
// 4-worker stream agree bit for bit — including with adaptive sample
// counts, whose per-round budget depends only on the (deterministic)
// candidate size.
TEST(StreamServeTest, AdaptiveApproxStreamsAreBitIdenticalAcrossThreadCounts) {
  PlantedGraph pg = MakeGraph(8, 21);
  std::vector<BccQuery> queries = SampleQueries(pg, 8);
  ASSERT_GE(queries.size(), 4u);

  for (bool adaptive : {false, true}) {
    ApproxOptions approx;
    approx.enabled = true;
    approx.samples = 128;
    approx.threshold = 1;  // force the sampled path on every round
    approx.seed = 9;
    approx.adaptive = adaptive;
    approx.min_samples = 16;
    ServeOptions opts;
    opts.online.approx = approx;

    std::vector<ServeItem> items;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      QueryRequest req;
      req.query = queries[i];
      req.method = QueryMethod::kOnlineBcc;
      req.request_id = i + 1;
      req.lane = i % 2 == 0 ? Lane::kInteractive : Lane::kBulk;
      items.emplace_back(req);
    }

    BatchRunner seq(1);
    ServeEngine seq_engine(seq, pg.graph, nullptr, opts);
    BatchResult a = seq_engine.RunStream(items);

    BatchRunner par(4);
    ServeEngine par_engine(par, pg.graph, nullptr, opts);
    BatchResult b = par_engine.RunStream(items);

    std::size_t checks = 0;
    for (const SearchStats& s : a.stats) checks += s.approx_checks;
    EXPECT_GT(checks, 0u) << "adaptive=" << adaptive;
    ASSERT_EQ(a.communities.size(), b.communities.size());
    for (std::size_t i = 0; i < a.communities.size(); ++i) {
      EXPECT_EQ(a.communities[i].vertices, b.communities[i].vertices)
          << "adaptive=" << adaptive << " item " << i;
    }
  }
}

// EffectiveSampleCount: fixed mode ignores the candidate size; adaptive
// mode scales with it inside [min_samples, samples].
TEST(StreamServeTest, EffectiveSampleCountContract) {
  ApproxOptions o;
  o.samples = 1000;
  o.min_samples = 50;
  EXPECT_EQ(EffectiveSampleCount(o, 10), 1000u);
  EXPECT_EQ(EffectiveSampleCount(o, 1u << 20), 1000u);
  o.adaptive = true;
  EXPECT_EQ(EffectiveSampleCount(o, 10), 50u);       // floor
  EXPECT_EQ(EffectiveSampleCount(o, 400), 100u);     // alive / 4
  EXPECT_EQ(EffectiveSampleCount(o, 1u << 20), 1000u);  // ceiling
  o.min_samples = 4000;  // floor above ceiling: ceiling wins
  EXPECT_EQ(EffectiveSampleCount(o, 10), 1000u);
}

// Move-assignment over an unfinished stream must finish it (join the pump,
// release the engine) rather than destroying a joinable thread — and the
// overwritten engine must accept a new stream afterwards.
TEST(StreamServeTest, MoveAssignFinishesTheTargetStream) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 2);
  ASSERT_FALSE(queries.empty());
  QueryRequest q;
  q.query = queries[0];

  BatchRunner r1(1), r2(1);
  ServeEngine e1(r1, pg.graph), e2(r2, pg.graph);
  ServeEngine::Stream stream = e1.OpenStream();
  stream.Submit(q);
  stream = e2.OpenStream();  // finishes (and discards) e1's stream
  stream.Submit(q);
  BatchResult res = stream.Finish();
  EXPECT_EQ(res.communities.size(), 1u);
  EXPECT_FALSE(res.communities[0].Empty());

  // e1 released its stream slot: it can open (and run) another one.
  BatchResult again = e1.RunStream({});
  EXPECT_TRUE(again.communities.empty());
}

// Back-to-back streams on one engine: state carries over (epochs advance
// monotonically) and the second stream starts from the first's result.
TEST(StreamServeTest, SequentialStreamsShareEpochState) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 2);
  ASSERT_FALSE(queries.empty());
  std::vector<Edge> edges = pg.graph.AllEdges();

  BatchRunner runner(2);
  ServeEngine engine(runner, pg.graph, nullptr, {});

  std::vector<ServeItem> first;
  UpdateRequest del;
  del.updates.push_back({EdgeUpdateKind::kDelete, edges[0]});
  first.emplace_back(del);
  BatchResult r1 = engine.RunStream(first);
  ASSERT_TRUE(r1.updates[0].applied);
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_FALSE(engine.graph().HasEdge(edges[0].u, edges[0].v));

  std::vector<ServeItem> second;
  QueryRequest q;
  q.query = queries[0];
  second.emplace_back(q);
  BatchResult r2 = engine.RunStream(second);
  EXPECT_EQ(r2.epoch_of[0], 2u);
}

}  // namespace
}  // namespace bccs
