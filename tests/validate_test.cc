// Deep-audit subsystem tests (common/validate.h): every validator accepts a
// clean structure and rejects seeded corruptions with a reason naming the
// violated invariant. The corruptions go in through ValidateAccess raw
// construction (the public constructors normalize them away) or by editing
// changelog bytes on disk.

#include "common/validate.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bcc/bc_index.h"
#include "butterfly/butterfly_counting.h"
#include "graph/changelog.h"
#include "graph/graph_delta.h"
#include "test_util.h"

namespace bccs {
namespace {

namespace fs = std::filesystem;
using testing::MakeRandomGraph;

// ---------------------------------------------------------------------------
// Graph audits.
// ---------------------------------------------------------------------------

TEST(ValidateGraphTest, AcceptsCleanGraphs) {
  EXPECT_TRUE(ValidateGraph(LabeledGraph{}).ok);
  EXPECT_TRUE(ValidateGraph(testing::MakeClique(6)).ok);
  const ValidationResult r = ValidateGraph(MakeRandomGraph(60, 0.1, 3, 7));
  EXPECT_TRUE(r.ok) << r.reason;
}

// A small well-formed 3-vertex raw graph the corruption tests perturb:
// edges {0,1} and {1,2}, labels {0, 0, 1}.
struct RawParts {
  std::vector<std::uint64_t> offsets{0, 1, 3, 4};
  std::vector<VertexId> adjacency{1, 0, 2, 1};
  std::vector<Label> labels{0, 0, 1};
  std::vector<std::uint64_t> label_offsets{0, 2, 3};
  std::vector<VertexId> label_members{0, 1, 2};

  LabeledGraph Build() const {
    return ValidateAccess::RawGraph(offsets, adjacency, labels, label_offsets,
                                    label_members);
  }
};

TEST(ValidateGraphTest, AcceptsCleanRawGraph) {
  const ValidationResult r = ValidateGraph(RawParts{}.Build());
  EXPECT_TRUE(r.ok) << r.reason;
}

TEST(ValidateGraphTest, RejectsAsymmetricAdjacency) {
  RawParts parts;
  parts.adjacency[3] = 0;  // vertex 2 now claims neighbor 0; 0 has no edge back
  const ValidationResult r = ValidateGraph(parts.Build());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("missing its reverse"), std::string::npos) << r.reason;
}

TEST(ValidateGraphTest, RejectsUnsortedAdjacency) {
  RawParts parts;
  std::swap(parts.adjacency[1], parts.adjacency[2]);  // vertex 1's list: {2, 0}
  const ValidationResult r = ValidateGraph(parts.Build());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("not strictly ascending"), std::string::npos) << r.reason;
}

TEST(ValidateGraphTest, RejectsSelfLoop) {
  RawParts parts;
  parts.offsets = {0, 1, 2, 3};
  parts.adjacency = {1, 0, 2};  // vertex 2's only neighbor is itself
  const ValidationResult r = ValidateGraph(parts.Build());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("self-loop"), std::string::npos) << r.reason;
}

TEST(ValidateGraphTest, RejectsOffsetAdjacencyMismatch) {
  RawParts parts;
  parts.offsets.back() = 3;  // offsets claim 3 entries, adjacency has 4
  const ValidationResult r = ValidateGraph(parts.Build());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("adjacency has"), std::string::npos) << r.reason;
}

TEST(ValidateGraphTest, RejectsOutOfRangeNeighbor) {
  RawParts parts;
  parts.adjacency[3] = 9;
  const ValidationResult r = ValidateGraph(parts.Build());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("out of range"), std::string::npos) << r.reason;
}

TEST(ValidateGraphTest, RejectsLabelMembershipMismatch) {
  RawParts parts;
  parts.label_offsets = {0, 1, 3};
  parts.label_members = {0, 1, 2};  // vertex 1 (label 0) listed under label 1
  const ValidationResult r = ValidateGraph(parts.Build());
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("carries label"), std::string::npos) << r.reason;
}

// ---------------------------------------------------------------------------
// Index audits.
// ---------------------------------------------------------------------------

TEST(ValidateIndexTest, AcceptsFreshIndex) {
  const LabeledGraph g = MakeRandomGraph(50, 0.12, 3, 11);
  BcIndex index(g);
  index.MaterializeAllPairs();
  const ValidationResult r = ValidateIndex(index);
  EXPECT_TRUE(r.ok) << r.reason;
}

TEST(ValidateIndexTest, AcceptsRepairedIndex) {
  const LabeledGraph g = MakeRandomGraph(40, 0.15, 2, 5);
  BcIndex index(g);
  index.MaterializeAllPairs();
  std::vector<EdgeUpdate> updates;
  for (VertexId v = 0; v < 6; ++v) {
    const Edge e{v, static_cast<VertexId>(v + 20)};
    updates.push_back({g.HasEdge(e.u, e.v) ? EdgeUpdateKind::kDelete
                                           : EdgeUpdateKind::kInsert,
                       e});
  }
  std::string error;
  const auto delta = BuildGraphDelta(g, updates, &error);
  ASSERT_TRUE(delta.has_value()) << error;
  const LabeledGraph updated = ApplyGraphDelta(g, *delta);
  const auto repaired = index.ApplyUpdates(updated, *delta);
  const ValidationResult r = ValidateIndex(*repaired);
  EXPECT_TRUE(r.ok) << r.reason;
}

TEST(ValidateIndexTest, RejectsCorruptCoreness) {
  const LabeledGraph g = MakeRandomGraph(30, 0.2, 2, 3);
  const BcIndex reference(g);
  std::vector<std::uint32_t> coreness, max_core;
  for (VertexId v = 0; v < g.NumVertices(); ++v) coreness.push_back(reference.Coreness(v));
  for (Label l = 0; l < g.NumLabels(); ++l) max_core.push_back(reference.MaxCoreness(l));

  std::vector<std::uint32_t> bad = coreness;
  bad[7] += 1;
  const auto index = ValidateAccess::RawIndex(g, bad, max_core);
  const ValidationResult r = ValidateIndex(*index);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("coreness mismatch at vertex 7"), std::string::npos)
      << r.reason;
}

TEST(ValidateIndexTest, RejectsCorruptMaxCoreness) {
  const LabeledGraph g = MakeRandomGraph(30, 0.2, 2, 3);
  const BcIndex reference(g);
  std::vector<std::uint32_t> coreness, max_core;
  for (VertexId v = 0; v < g.NumVertices(); ++v) coreness.push_back(reference.Coreness(v));
  for (Label l = 0; l < g.NumLabels(); ++l) max_core.push_back(reference.MaxCoreness(l));

  max_core[1] += 3;
  const auto index = ValidateAccess::RawIndex(g, coreness, max_core);
  const ValidationResult r = ValidateIndex(*index);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("max coreness of label 1"), std::string::npos) << r.reason;
}

TEST(ValidateIndexTest, RejectsWrongCorenessArraySize) {
  const LabeledGraph g = MakeRandomGraph(20, 0.2, 2, 9);
  const auto index =
      ValidateAccess::RawIndex(g, std::vector<std::uint32_t>(g.NumVertices() - 1, 0),
                               std::vector<std::uint32_t>(g.NumLabels(), 0));
  const ValidationResult r = ValidateIndex(*index);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("one per vertex"), std::string::npos) << r.reason;
}

TEST(ValidateIndexTest, RejectsCorruptCachedButterflies) {
  const LabeledGraph g = MakeRandomGraph(40, 0.25, 2, 13);
  BcIndex index(g);
  index.MaterializeAllPairs();
  ASSERT_TRUE(ValidateIndex(index).ok);

  ButterflyCounts bogus = *index.PairButterflies(0, 1);
  bogus.total += 5;
  bogus.chi[0] += 5;
  ValidateAccess::SetCachedPair(index, 0, 1, std::move(bogus));
  const ValidationResult r = ValidateIndex(index);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("disagree with an exact recount"), std::string::npos)
      << r.reason;
}

// ---------------------------------------------------------------------------
// Changelog-chain audits (real segments written through the real writer).
// ---------------------------------------------------------------------------

class ValidateChangelogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "validate_changelog_test.snap";
    Cleanup();
  }
  void TearDown() override { Cleanup(); }

  void Cleanup() {
    std::error_code ec;
    fs::remove(path_, ec);
    RemoveChangelogSegments(path_);
  }

  /// Appends `batches` one-update batches with rotation after every record,
  /// so batch i lands sealed in segment i+1 (the last one stays the tail
  /// unless it, too, rotated).
  void WriteSegments(std::size_t batches) {
    ChangelogOptions opts;
    opts.segment_blocks = 1;
    std::string error;
    auto log = Changelog::Open(path_, 0, opts, nullptr, &error);
    ASSERT_NE(log, nullptr) << error;
    MutexLock commit(log->commit_mutex());
    for (std::size_t i = 0; i < batches; ++i) {
      const EdgeUpdate u{EdgeUpdateKind::kInsert,
                         {static_cast<VertexId>(i), static_cast<VertexId>(i + 100)}};
      ASSERT_TRUE(log->Append({&u, 1}, {}, &error)) << error;
    }
  }

  std::string SegPath(std::uint64_t seq) const {
    char buf[16];
    std::snprintf(buf, sizeof(buf), ".log.%06llu", static_cast<unsigned long long>(seq));
    return path_ + buf;
  }

  std::string path_;
};

TEST_F(ValidateChangelogTest, AcceptsCleanChain) {
  WriteSegments(3);
  const ValidationResult r = ValidateChangelogChain(path_, 0);
  EXPECT_TRUE(r.ok) << r.reason;
}

TEST_F(ValidateChangelogTest, AcceptsEmptyChain) {
  EXPECT_TRUE(ValidateChangelogChain(path_, 0).ok);
}

TEST_F(ValidateChangelogTest, RejectsSequenceGap) {
  WriteSegments(3);
  ASSERT_TRUE(fs::remove(SegPath(2)));
  const ValidationResult r = ValidateChangelogChain(path_, 0);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("changelog sequence gap"), std::string::npos) << r.reason;
}

TEST_F(ValidateChangelogTest, RejectsBitFlipInSealedSegment) {
  WriteSegments(3);
  // Flip one byte in the middle of sealed (non-tail) segment 1.
  std::fstream f(SegPath(1), std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  ASSERT_GT(size, 40);
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  const ValidationResult r = ValidateChangelogChain(path_, 0);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("changelog"), std::string::npos) << r.reason;
}

TEST_F(ValidateChangelogTest, RejectsStaleSegmentBelowWatermark) {
  WriteSegments(3);
  // A watermark of 2 says segments 1 and 2 are folded into the base; their
  // files still existing means a fold forgot (or resurrected) its inputs.
  const ValidationResult r = ValidateChangelogChain(path_, 2);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("stale changelog segment"), std::string::npos) << r.reason;
}

TEST_F(ValidateChangelogTest, ToleratesTornTail) {
  WriteSegments(3);
  // Chop bytes off the LAST segment: a legitimate crash artifact recovery
  // truncates away, not corruption.
  const std::string tail = SegPath(3);
  const auto size = fs::file_size(tail);
  fs::resize_file(tail, size - 5);
  const ValidationResult r = ValidateChangelogChain(path_, 0);
  EXPECT_TRUE(r.ok) << r.reason;
}

// ---------------------------------------------------------------------------
// Epoch-history audits.
// ---------------------------------------------------------------------------

EpochHistoryView CleanHistory() {
  // Three slots: slot 0 drained and released, slots 1-2 published with
  // state, one update still admitted for slot 3 (unpublished).
  EpochHistoryView h;
  h.slots = {{0, 0, false}, {2, 1, true}, {3, 0, true}, {0, 2, false}};
  h.published = 3;
  h.release_cursor = 1;
  h.updates_admitted = 3;
  return h;
}

TEST(ValidateEpochHistoryTest, AcceptsCleanHistory) {
  const ValidationResult r = ValidateEpochHistory(CleanHistory());
  EXPECT_TRUE(r.ok) << r.reason;
}

TEST(ValidateEpochHistoryTest, RejectsPinnedReleasedSlot) {
  EpochHistoryView h = CleanHistory();
  h.slots[0].pending = 1;
  const ValidationResult r = ValidateEpochHistory(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("released slot 0"), std::string::npos) << r.reason;
}

TEST(ValidateEpochHistoryTest, RejectsDroppedPublishedState) {
  EpochHistoryView h = CleanHistory();
  h.slots[2].has_state = false;
  const ValidationResult r = ValidateEpochHistory(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("lost its epoch state"), std::string::npos) << r.reason;
}

TEST(ValidateEpochHistoryTest, RejectsNonMonotoneEpochs) {
  EpochHistoryView h = CleanHistory();
  h.slots[2].epoch = 1;  // behind slot 1's epoch 2
  const ValidationResult r = ValidateEpochHistory(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("not monotone"), std::string::npos) << r.reason;
}

TEST(ValidateEpochHistoryTest, RejectsSlotCountMismatch) {
  EpochHistoryView h = CleanHistory();
  h.updates_admitted = 5;
  const ValidationResult r = ValidateEpochHistory(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("one per admitted"), std::string::npos) << r.reason;
}

TEST(ValidateEpochHistoryTest, RejectsStateInUnpublishedSlot) {
  EpochHistoryView h = CleanHistory();
  h.slots[3].has_state = true;
  const ValidationResult r = ValidateEpochHistory(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("unpublished slot 3"), std::string::npos) << r.reason;
}

}  // namespace
}  // namespace bccs
