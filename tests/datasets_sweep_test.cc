// Sanity sweep over every registry dataset: generation succeeds, shapes are
// sane, queries are sampleable, and at least one BCC query is solvable.
// Uses shrunken copies of the registry configs so the sweep stays fast.

#include <gtest/gtest.h>

#include "bcc/online_search.h"
#include "bcc/verify.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"
#include "eval/stats.h"

namespace bccs {
namespace {

// A small replica of a registry spec (1/10 of the communities/background).
PlantedConfig Shrink(PlantedConfig cfg) {
  cfg.num_communities = std::max<std::size_t>(6, cfg.num_communities / 10);
  cfg.background_vertices = cfg.background_vertices / 10;
  return cfg;
}

class StandInSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StandInSweepTest, GeneratesAndSolves) {
  const DatasetSpec& spec = StandInSpecs()[GetParam()];
  PlantedGraph pg = GeneratePlanted(Shrink(spec.config));
  ASSERT_GT(pg.graph.NumVertices(), 0u) << spec.name;
  ASSERT_GE(pg.communities.size(), 6u) << spec.name;

  GraphStats stats = ComputeGraphStats(pg.graph);
  EXPECT_EQ(stats.num_labels, spec.config.num_labels) << spec.name;
  EXPECT_GT(stats.num_cross_edges, 0u) << spec.name;
  EXPECT_GE(stats.k_max, 2u) << spec.name;

  QueryGenConfig qcfg;
  qcfg.seed = 3;
  auto queries = SampleGroundTruthQueries(pg, 4, qcfg);
  ASSERT_FALSE(queries.empty()) << spec.name;
  std::size_t solved = 0;
  for (const auto& gq : queries) {
    Community c = LpBcc(pg.graph, gq.query, BccParams{});
    if (c.Empty()) continue;
    ++solved;
    SearchStats sstats;
    G0Result g0 = FindG0(pg.graph, gq.query, BccParams{}, &sstats);
    ASSERT_TRUE(g0.found) << spec.name;
    EXPECT_EQ(VerifyBcc(pg.graph, c, gq.query, BccParams{g0.k1, g0.k2, 1}),
              BccViolation::kNone)
        << spec.name;
  }
  // The strong-backbone stand-ins must solve every query; the weak youtube
  // regime is allowed misses but not a blanket failure.
  if (spec.config.strong_backbone) {
    EXPECT_EQ(solved, queries.size()) << spec.name;
  } else {
    EXPECT_GT(solved, 0u) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStandIns, StandInSweepTest, ::testing::Range<std::size_t>(0, 7),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return StandInSpecs()[info.param].name;
                         });

class MultiLabelSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiLabelSweepTest, GeneratesMixedGroupCounts) {
  const DatasetSpec& spec = MultiLabelSpecs()[GetParam()];
  PlantedGraph pg = GeneratePlanted(Shrink(spec.config));
  ASSERT_FALSE(pg.communities.empty()) << spec.name;

  // The mixed regime must deliver communities of every arity 2..6.
  std::size_t seen[7] = {};
  for (const auto& comm : pg.communities) {
    ASSERT_GE(comm.groups.size(), 2u);
    ASSERT_LE(comm.groups.size(), 6u);
    ++seen[comm.groups.size()];
    // Labels distinct within a community.
    for (std::size_t i = 0; i < comm.labels.size(); ++i) {
      for (std::size_t j = i + 1; j < comm.labels.size(); ++j) {
        EXPECT_NE(comm.labels[i], comm.labels[j]) << spec.name;
      }
    }
  }
  for (std::size_t m = 2; m <= 6; ++m) {
    EXPECT_GT(seen[m], 0u) << spec.name << " lacks m=" << m << " communities";
  }

  // Every arity is queryable.
  for (std::size_t m = 2; m <= 6; ++m) {
    auto queries = SampleMbccGroundTruthQueries(pg, m, 2, 5);
    ASSERT_FALSE(queries.empty()) << spec.name << " m=" << m;
    for (const auto& gq : queries) {
      EXPECT_EQ(pg.communities[gq.community_index].groups.size(), m)
          << "exact-arity preference violated on " << spec.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMultiLabel, MultiLabelSweepTest,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string name = MultiLabelSpecs()[info.param].name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace bccs
