#include "bcc/candidate.h"

#include <gtest/gtest.h>

#include "core/core_decomposition.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MakeRandomGraph;

// Two labeled triangles with one cross edge.
LabeledGraph TwoTriangles() {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {0, 3}};
  return LabeledGraph::FromEdges(6, std::move(edges), {0, 0, 0, 1, 1, 1});
}

TEST(GroupedCandidateTest, ConstructionDegrees) {
  LabeledGraph g = TwoTriangles();
  GroupedCandidate cand(g, {{0, 1, 2}, {3, 4, 5}}, {2, 2});
  EXPECT_EQ(cand.NumAlive(), 6u);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_TRUE(cand.IsAlive(v));
    // Same-group degree counts only homogeneous neighbors: the cross edge
    // (0,3) must not contribute.
    EXPECT_EQ(cand.GroupDegree(v), 2u);
  }
  EXPECT_EQ(cand.GroupOf(0), 0u);
  EXPECT_EQ(cand.GroupOf(4), 1u);
}

TEST(GroupedCandidateTest, CascadeWithinGroup) {
  LabeledGraph g = TwoTriangles();
  GroupedCandidate cand(g, {{0, 1, 2}, {3, 4, 5}}, {2, 2});
  // Removing one triangle vertex breaks the 2-core of that whole group, but
  // the other group must be untouched.
  const VertexId batch[] = {1};
  auto removed = cand.RemoveAndMaintain(batch);
  EXPECT_EQ(removed.size(), 3u);
  EXPECT_FALSE(cand.IsAlive(0));
  EXPECT_FALSE(cand.IsAlive(2));
  EXPECT_TRUE(cand.IsAlive(3));
  EXPECT_TRUE(cand.IsAlive(4));
  EXPECT_EQ(cand.NumAlive(), 3u);
}

TEST(GroupedCandidateTest, OnRemoveSeesConsistentState) {
  LabeledGraph g = TwoTriangles();
  GroupedCandidate cand(g, {{0, 1, 2}, {3, 4, 5}}, {2, 2});
  std::vector<VertexId> order;
  const VertexId batch[] = {1};
  cand.RemoveAndMaintain(batch, [&](VertexId v) {
    // The vertex being removed is still alive at callback time; the ones
    // removed earlier are already dead.
    EXPECT_TRUE(cand.IsAlive(v));
    for (VertexId prior : order) EXPECT_FALSE(cand.IsAlive(prior));
    order.push_back(v);
  });
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
}

TEST(GroupedCandidateTest, RemovingDeadVertexIsNoop) {
  LabeledGraph g = TwoTriangles();
  GroupedCandidate cand(g, {{0, 1, 2}, {3, 4, 5}}, {2, 2});
  const VertexId batch[] = {1};
  cand.RemoveAndMaintain(batch);
  auto removed = cand.RemoveAndMaintain(batch);
  EXPECT_TRUE(removed.empty());
}

TEST(GroupedCandidateTest, DuplicateBatchEntriesHandled) {
  LabeledGraph g = TwoTriangles();
  GroupedCandidate cand(g, {{0, 1, 2}, {3, 4, 5}}, {0, 0});  // k = 0: no cascade
  const VertexId batch[] = {1, 1, 1};
  auto removed = cand.RemoveAndMaintain(batch);
  EXPECT_EQ(removed.size(), 1u);
  EXPECT_EQ(cand.NumAlive(), 5u);
}

class CandidatePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CandidatePropertyTest, MaintenanceMatchesRecomputation) {
  // Random two-labeled graph; candidate = per-label 2-cores; removals must
  // keep each side identical to a from-scratch k-core of the survivors.
  LabeledGraph g = MakeRandomGraph(40, 0.18, 2, GetParam());
  const std::uint32_t k = 2;
  std::vector<VertexId> left_all(g.VerticesWithLabel(0).begin(), g.VerticesWithLabel(0).end());
  std::vector<VertexId> right_all(g.VerticesWithLabel(1).begin(),
                                  g.VerticesWithLabel(1).end());
  auto left = KCoreOfSubset(g, left_all, k);
  auto right = KCoreOfSubset(g, right_all, k);
  GroupedCandidate cand(g, {left, right}, {k, k});

  std::mt19937_64 rng(GetParam() + 5);
  while (cand.NumAlive() > 0) {
    auto alive = cand.AliveVertices();
    const VertexId batch[] = {alive[rng() % alive.size()]};
    cand.RemoveAndMaintain(batch);

    std::vector<VertexId> left_members, right_members;
    for (VertexId v : alive) {
      if (v == batch[0]) continue;
      (g.LabelOf(v) == 0 ? left_members : right_members).push_back(v);
    }
    auto expect_left = KCoreOfSubset(g, left_members, k);
    auto expect_right = KCoreOfSubset(g, right_members, k);
    std::vector<VertexId> expected = expect_left;
    expected.insert(expected.end(), expect_right.begin(), expect_right.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(cand.AliveVertices(), expected) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CandidatePropertyTest, ::testing::Range<std::uint64_t>(0, 5));

}  // namespace
}  // namespace bccs
