#!/usr/bin/env bash
# End-to-end ctest for bccs_fsck: a clean snapshot + changelog chain passes
# (exit 0), and the three canonical on-disk corruptions are flagged with the
# changelog exit code (6):
#
#   1. a bit-flipped sealed (non-tail) segment — checksum scan
#   2. a sequence gap (a segment file removed from the middle of the chain)
#   3. a stale-watermark layout (a folded segment resurrected after
#      compaction advanced the watermark past it)
#
# Also checks the usage (2) and load-failure (3) exits, and that --validate
# on bccs_build/bccs_update runs the same audits inline.
#
# usage: tests/fsck_e2e_test.sh BIN_DIR
set -euo pipefail

bin="${1:?usage: fsck_e2e_test.sh BIN_DIR}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Expects the command to exit with $1 and its stderr to mention $2.
expect_fsck() {
  local want_code="$1" want_text="$2"; shift 2
  local out code=0
  out="$("$bin/bccs_fsck" "$@" 2>&1)" || code=$?
  [ "$code" -eq "$want_code" ] \
    || fail "bccs_fsck $* exited $code, want $want_code ($out)"
  if [ -n "$want_text" ]; then
    grep -q "$want_text" <<<"$out" \
      || fail "bccs_fsck $* output missing '$want_text': $out"
  fi
}

"$bin/bccs_generate" --communities 6 --group-size 10 --labels 2 --seed 5 \
  --out "$tmp/g.txt" >/dev/null

"$bin/bccs_build" --graph "$tmp/g.txt" --out "$tmp/g.snap" --validate >/dev/null \
  || fail "bccs_build --validate failed"

# Three single-update changelog batches with rotation after every record:
# segments 1 and 2 end up sealed, 3 is the tail.
for i in 1 2 3; do
  echo "+ 0 $((97 + i))" > "$tmp/u.txt"
  "$bin/bccs_update" --snapshot "$tmp/g.snap" --updates "$tmp/u.txt" \
    --changelog --segment-blocks 1 --validate >/dev/null \
    || fail "bccs_update batch $i failed"
done
for i in 1 2 3; do
  [ -f "$tmp/g.snap.log.00000$i" ] || fail "segment $i missing after appends"
done

expect_fsck 0 "clean" --snapshot "$tmp/g.snap"

# Usage and load-failure exits.
expect_fsck 2 "usage"
expect_fsck 3 "" --snapshot "$tmp/absent.snap"

# 1. Bit flip in the middle of sealed segment 1 -> changelog exit.
cp "$tmp/g.snap.log.000001" "$tmp/seg1.bak"
size="$(wc -c < "$tmp/g.snap.log.000001")"
printf '\xff' | dd of="$tmp/g.snap.log.000001" bs=1 seek=$((size / 2)) \
  conv=notrunc status=none
expect_fsck 6 "changelog" --snapshot "$tmp/g.snap"
cp "$tmp/seg1.bak" "$tmp/g.snap.log.000001"
expect_fsck 0 "" --snapshot "$tmp/g.snap"

# 2. Sequence gap: remove segment 2 from the middle of the chain.
cp "$tmp/g.snap.log.000002" "$tmp/seg2.bak"
rm "$tmp/g.snap.log.000002"
expect_fsck 6 "sequence gap" --snapshot "$tmp/g.snap"
cp "$tmp/seg2.bak" "$tmp/g.snap.log.000002"
expect_fsck 0 "" --snapshot "$tmp/g.snap"

# 3. Stale watermark: compact (folds the chain, advances the watermark,
# drops the segments), then resurrect a folded segment from the backup.
echo "+ 1 98" > "$tmp/u.txt"
"$bin/bccs_update" --snapshot "$tmp/g.snap" --updates "$tmp/u.txt" \
  --changelog --compact >/dev/null || fail "compacting update failed"
expect_fsck 0 "" --snapshot "$tmp/g.snap"
cp "$tmp/seg1.bak" "$tmp/g.snap.log.000001"
expect_fsck 6 "stale changelog segment" --snapshot "$tmp/g.snap"
rm "$tmp/g.snap.log.000001"

# --validate on bccs_update catches the same stale layout inline.
cp "$tmp/seg1.bak" "$tmp/g.snap.log.000001"
echo "+ 2 97" > "$tmp/u.txt"
if "$bin/bccs_update" --snapshot "$tmp/g.snap" --updates "$tmp/u.txt" \
     --changelog --validate >/dev/null 2>"$tmp/err.txt"; then
  # Recovery legitimately deletes stale segments at open, so a zero exit is
  # fine as long as the audit then passes on the cleaned layout.
  expect_fsck 0 "" --snapshot "$tmp/g.snap"
else
  grep -q "changelog" "$tmp/err.txt" || fail "unexpected bccs_update failure: $(cat "$tmp/err.txt")"
fi

echo "PASS: fsck end-to-end"
