#include "bcc/exact_search.h"

#include <gtest/gtest.h>

#include "bcc/online_search.h"
#include "bcc/verify.h"
#include "graph/generators.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

TEST(ExactSearchTest, Figure1Optimal) {
  Figure1Graph f = MakeFigure1Graph();
  BccQuery q{f.ql, f.qr};
  BccParams p{4, 3, 1};
  auto result = ExactMinDiameterBcc(f.graph, q, p);
  ASSERT_TRUE(result.has_value());
  // On the Figure 1 instance the only BCC is the full Figure 2 answer.
  EXPECT_EQ(result->community.vertices, f.expected_bcc);
  EXPECT_EQ(VerifyBcc(f.graph, result->community, q, p), BccViolation::kNone);
  EXPECT_GT(result->subsets_checked, 0u);
}

TEST(ExactSearchTest, NoBccReturnsNullopt) {
  Figure1Graph f = MakeFigure1Graph();
  EXPECT_FALSE(ExactMinDiameterBcc(f.graph, BccQuery{f.ql, f.qr}, BccParams{4, 3, 9})
                   .has_value());
}

TEST(ExactSearchTest, UniverseTooLargeReturnsNullopt) {
  Figure1Graph f = MakeFigure1Graph();
  EXPECT_FALSE(
      ExactMinDiameterBcc(f.graph, BccQuery{f.ql, f.qr}, BccParams{4, 3, 1}, 5).has_value());
}

class ExactApproximationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactApproximationTest, GreedyWithinTwiceOptimal) {
  // Theorem 3: the greedy answer's diameter is at most twice the optimum.
  PlantedConfig cfg;
  cfg.num_communities = 1;
  cfg.min_group_size = 5;
  cfg.max_group_size = 7;
  cfg.intra_edge_prob = 0.55;
  cfg.cross_pair_prob = 0.2;
  cfg.noise_cross_fraction = 0;
  cfg.noise_same_fraction = 0;
  cfg.seed = GetParam() * 13 + 1;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BccParams p{2, 2, 1};
  auto exact = ExactMinDiameterBcc(pg.graph, q, p, 16);
  if (!exact.has_value()) GTEST_SKIP() << "no exact answer (too large or no BCC)";

  for (const SearchOptions& opts : {OnlineBccOptions(), LpBccOptions()}) {
    Community greedy = BccSearch(pg.graph, q, p, opts, nullptr);
    ASSERT_FALSE(greedy.Empty());
    EXPECT_LE(CommunityDiameter(pg.graph, greedy), 2 * exact->diameter);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactApproximationTest, ::testing::Range<std::uint64_t>(0, 8));

TEST(ExactSearchTest, TieBreaksTowardSmallerCommunity) {
  // Two valid BCCs with equal diameter: a triangle pair and the same plus an
  // extra pendant-ish member; the smaller must win.
  // Left triangle {0,1,2}, right triangle {3,4,5}, full biclique between
  // {0,1} x {3,4}; vertex 2 and 5 complete the triangles.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5},
                             {0, 3}, {0, 4}, {1, 3}, {1, 4}};
  LabeledGraph g = LabeledGraph::FromEdges(6, std::move(edges), {0, 0, 0, 1, 1, 1});
  auto result = ExactMinDiameterBcc(g, BccQuery{0, 3}, BccParams{2, 2, 1});
  ASSERT_TRUE(result.has_value());
  // The triangles need all six vertices to satisfy the 2-cores, so the
  // optimum is the whole graph; its diameter is 3 (vertex 2 to vertex 5).
  EXPECT_EQ(VerifyBcc(g, result->community, BccQuery{0, 3}, BccParams{2, 2, 1}),
            BccViolation::kNone);
  EXPECT_EQ(result->community.Size(), 6u);
  EXPECT_EQ(result->diameter, 3u);
}

}  // namespace
}  // namespace bccs
