#include "bcc/bc_index.h"

#include <gtest/gtest.h>

#include "bcc/local_search.h"
#include "bcc/verify.h"
#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "graph/paper_graphs.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MaskOf;

TEST(BcIndexTest, CorenessMatchesLabelCoreness) {
  Figure1Graph f = MakeFigure1Graph();
  BcIndex index(f.graph);
  auto expected = LabelCoreness(f.graph);
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    EXPECT_EQ(index.Coreness(v), expected[v]);
  }
  EXPECT_EQ(index.MaxCoreness(f.se), 4u);
  EXPECT_EQ(index.MaxCoreness(f.ui), 3u);
}

TEST(BcIndexTest, PairButterfliesMatchDirectCount) {
  Figure1Graph f = MakeFigure1Graph();
  BcIndex index(f.graph);
  const auto pair_pin = index.PairButterflies(f.se, f.ui);
  const ButterflyCounts& pair = *pair_pin;
  auto se = f.graph.VerticesWithLabel(f.se);
  auto ui = f.graph.VerticesWithLabel(f.ui);
  std::vector<VertexId> left(se.begin(), se.end()), right(ui.begin(), ui.end());
  auto direct = CountButterflies(f.graph, left, right, MaskOf(f.graph, left),
                                 MaskOf(f.graph, right));
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    EXPECT_EQ(pair.chi[v], direct.chi[v]);
  }
  EXPECT_EQ(pair.total, direct.total);
}

TEST(BcIndexTest, PairOrderInsensitiveAndCached) {
  Figure1Graph f = MakeFigure1Graph();
  BcIndex index(f.graph);
  const auto a = index.PairButterflies(f.se, f.ui);
  const auto b = index.PairButterflies(f.ui, f.se);
  EXPECT_EQ(a.get(), b.get()) << "cache must canonicalize the label pair";
}

TEST(BcIndexTest, MultiLabelPairsIndependent) {
  PlantedConfig cfg;
  cfg.groups_per_community = 3;
  cfg.num_labels = 4;
  cfg.num_communities = 4;
  cfg.seed = 9;
  PlantedGraph pg = GeneratePlanted(cfg);
  BcIndex index(pg.graph);
  // Different label pairs produce different count objects; totals are
  // non-negative and consistent with a direct recount.
  const auto p01 = index.PairButterflies(0, 1);
  const auto p02 = index.PairButterflies(0, 2);
  EXPECT_NE(p01.get(), p02.get());
}

TEST(L2pMbccTest, MatchesGlobalMbccOnChain) {
  // The chain fixture from mbcc_test: the local variant must find the same
  // (unique) community.
  std::vector<Edge> edges;
  std::vector<Label> labels(12);
  for (VertexId base : {0u, 4u, 8u}) {
    for (VertexId i = 0; i < 4; ++i) {
      for (VertexId j = i + 1; j < 4; ++j) edges.push_back({base + i, base + j});
      labels[base + i] = base / 4;
    }
  }
  for (VertexId a : {0u, 1u}) {
    for (VertexId b : {4u, 5u}) edges.push_back({a, b});
  }
  for (VertexId a : {6u, 7u}) {
    for (VertexId b : {8u, 9u}) edges.push_back({a, b});
  }
  LabeledGraph g = LabeledGraph::FromEdges(12, std::move(edges), std::move(labels));
  BcIndex index(g);
  MbccQuery q{{0, 4, 8}};
  MbccParams p;
  p.k = {3, 3, 3};
  p.b = 1;
  Community global = MbccSearch(g, q, p, LpBccOptions());
  Community local = L2pMbcc(g, index, q, p);
  EXPECT_EQ(global.vertices, local.vertices);
}

TEST(L2pMbccTest, TinyEtaRecoversViaRetries) {
  PlantedConfig cfg;
  cfg.num_communities = 5;
  cfg.groups_per_community = 3;
  cfg.num_labels = 5;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  cfg.intra_edge_prob = 0.5;
  cfg.cross_pair_prob = 0.15;
  cfg.seed = 77;
  PlantedGraph pg = GeneratePlanted(cfg);
  BcIndex index(pg.graph);
  const auto& comm = pg.communities[0];
  MbccQuery q{{comm.groups[0][0], comm.groups[1][0], comm.groups[2][0]}};
  MbccParams p;
  p.k.assign(3, 2);
  Community global = MbccSearch(pg.graph, q, p, LpBccOptions());
  if (global.Empty()) GTEST_SKIP() << "no mBCC for this seed";

  L2pOptions opts;
  opts.eta = 4;
  Community local = L2pMbcc(pg.graph, index, q, p, opts);
  ASSERT_FALSE(local.Empty());
  EXPECT_EQ(VerifyMbcc(pg.graph, local, q.vertices, p.k, p.b), MbccViolation::kNone);
}

TEST(L2pMbccTest, RejectsBadQueries) {
  Figure1Graph f = MakeFigure1Graph();
  BcIndex index(f.graph);
  MbccParams p;
  EXPECT_TRUE(L2pMbcc(f.graph, index, MbccQuery{{f.ql}}, p).Empty());
  EXPECT_TRUE(L2pMbcc(f.graph, index, MbccQuery{{f.ql, f.v1}}, p).Empty());
}

}  // namespace
}  // namespace bccs
