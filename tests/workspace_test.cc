#include "bcc/workspace.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "bcc/query_distance.h"
#include "butterfly/butterfly_counting.h"
#include "graph/generators.h"
#include "test_util.h"

namespace bccs {
namespace {

using testing::MakePath;
using testing::MakeRandomGraph;

std::vector<std::uint32_t> Materialize(const DistanceMap& dm, std::size_t n) {
  std::vector<std::uint32_t> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = dm.Get(v);
  return out;
}

TEST(ScratchPoolTest, ReusesBuffersWithoutBulkInits) {
  ScratchPool<char> pool(0);
  auto a = pool.Acquire(100);
  EXPECT_EQ(pool.bulk_inits(), 1u);
  a[7] = 1;
  std::vector<VertexId> touched = {7};
  pool.Release(std::move(a), touched);
  auto b = pool.Acquire(100);
  EXPECT_EQ(pool.bulk_inits(), 1u);  // warm reuse: no refill
  EXPECT_EQ(b[7], 0);                // restored to the default
  pool.ReleaseClean(std::move(b));
  // Growth forces one refill.
  auto c = pool.Acquire(200);
  EXPECT_EQ(pool.bulk_inits(), 2u);
  pool.ReleaseClean(std::move(c));
}

TEST(DistanceMapTest, MatchesLegacyBfs) {
  LabeledGraph g = MakePath(6);
  std::vector<char> alive(6, 1);
  alive[4] = 0;
  std::vector<std::uint32_t> legacy;
  BfsDistances(g, alive, 1, &legacy);
  DistanceMap dm;
  BfsDistances(g, alive, 1, &dm);
  EXPECT_EQ(Materialize(dm, 6), legacy);
  // Bucket sanity: level sets match the distances.
  for (std::uint32_t d = 0; d <= dm.max_level(); ++d) {
    for (VertexId v : dm.bucket(d)) EXPECT_EQ(dm.Get(v), d);
  }
}

TEST(DistanceMapTest, RandomizedIncrementalEqualsFreshBfs) {
  // The issue's equivalence requirement: after every deletion batch, the
  // bucketed incremental repair must equal both the legacy repair and a
  // fresh BFS over the surviving subgraph.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    LabeledGraph g = MakeRandomGraph(60, 0.08, 2, seed);
    const std::size_t n = g.NumVertices();
    std::mt19937_64 rng(seed * 97 + 13);
    std::vector<char> alive(n, 1);
    VertexId source = static_cast<VertexId>(rng() % n);

    std::vector<std::uint32_t> legacy;
    BfsDistances(g, alive, source, &legacy);
    DistanceMap dm;
    BfsDistances(g, alive, source, &dm);
    ASSERT_EQ(Materialize(dm, n), legacy);

    std::vector<VertexId> changed;
    for (int round = 0; round < 12; ++round) {
      // Random non-source deletion batch of 1-4 alive vertices.
      std::vector<VertexId> batch;
      for (int t = 0; t < 8 && batch.size() < 4; ++t) {
        VertexId v = static_cast<VertexId>(rng() % n);
        if (v == source || !alive[v]) continue;
        if (std::find(batch.begin(), batch.end(), v) == batch.end()) batch.push_back(v);
      }
      if (batch.empty()) break;
      for (VertexId v : batch) alive[v] = 0;

      UpdateDistancesAfterDeletion(g, alive, batch, &legacy);
      UpdateDistancesAfterDeletion(g, alive, batch, &dm, &changed);
      ASSERT_EQ(Materialize(dm, n), legacy) << "seed " << seed << " round " << round;

      std::vector<std::uint32_t> fresh;
      BfsDistances(g, alive, source, &fresh);
      ASSERT_EQ(Materialize(dm, n), fresh) << "seed " << seed << " round " << round;

      // The changed list must cover every vertex whose value differs from
      // the previous round (the engine relies on this for queue updates).
      // It may conservatively include vertices repaired back to the same
      // value; both are fine — verified implicitly by the engine tests.
      for (VertexId v : changed) {
        EXPECT_TRUE(alive[v]);
      }
    }
  }
}

TEST(PeelQueueTest, PopsFarthestAndKeepsQueries) {
  PeelQueue q;
  q.Reset(10);
  std::vector<char> alive(10, 1);
  q.Update(0, 1);  // the "query"
  q.Update(1, 3);
  q.Update(2, 3);
  q.Update(3, 2);
  q.Update(4, kInfDistance);

  auto is_query = [](VertexId v) { return v == 0; };
  std::vector<VertexId> batch;
  std::uint32_t level = 0;

  ASSERT_TRUE(q.PopFarthest(alive, is_query, &batch, &level));
  EXPECT_EQ(level, kInfDistance);
  EXPECT_EQ(batch, (std::vector<VertexId>{4}));
  alive[4] = 0;

  ASSERT_TRUE(q.PopFarthest(alive, is_query, &batch, &level));
  EXPECT_EQ(level, 3u);
  std::sort(batch.begin(), batch.end());
  EXPECT_EQ(batch, (std::vector<VertexId>{1, 2}));
  alive[1] = alive[2] = 0;

  // Distance growth: vertex 3 moves from 2 to 5 and must pop at 5.
  q.Update(3, 5);
  ASSERT_TRUE(q.PopFarthest(alive, is_query, &batch, &level));
  EXPECT_EQ(level, 5u);
  EXPECT_EQ(batch, (std::vector<VertexId>{3}));
  alive[3] = 0;

  // Only the query remains: level reported, batch empty, still queued.
  ASSERT_TRUE(q.PopFarthest(alive, is_query, &batch, &level));
  EXPECT_EQ(level, 1u);
  EXPECT_TRUE(batch.empty());
  ASSERT_TRUE(q.PopFarthest(alive, is_query, &batch, &level));
  EXPECT_EQ(level, 1u);

  alive[0] = 0;
  EXPECT_FALSE(q.PopFarthest(alive, is_query, &batch, &level));
}

TEST(DistanceMapTest, EpochWrapDoesNotResurrectStaleEntries) {
  DistanceMap dm;
  dm.Reset(8);  // epoch 1
  dm.Set(5, 3);
  dm.SetUnreachable(6);
  ASSERT_EQ(dm.Get(5), 3u);

  // Drive the uint32 epoch counter to its maximum and wrap it. Without the
  // wrap re-init, vertex 5's stamp (from the early epoch 1) would collide
  // with the post-wrap epoch and its stale distance would read as fresh.
  dm.ForceEpochWrapForTest();
  dm.Set(2, 7);  // stamped at the maximum epoch value
  const std::uint64_t inits_before = dm.bulk_inits();
  dm.Reset(8);  // wraps: must bulk re-init the stamps
  EXPECT_EQ(dm.bulk_inits(), inits_before + 1);
  EXPECT_EQ(dm.Get(2), kInfDistance);
  EXPECT_EQ(dm.Get(5), kInfDistance);
  EXPECT_EQ(dm.Get(6), kInfDistance);

  // The wrapped epoch works like any other.
  dm.Set(5, 1);
  EXPECT_EQ(dm.Get(5), 1u);
  EXPECT_EQ(dm.Get(2), kInfDistance);
  dm.Reset(8);
  EXPECT_EQ(dm.Get(5), kInfDistance);
}

TEST(PeelQueueTest, EpochWrapDoesNotResurrectStaleEntries) {
  PeelQueue q;
  std::vector<char> alive(6, 1);
  auto no_query = [](VertexId) { return false; };
  std::vector<VertexId> batch;
  std::uint32_t level = 0;

  q.Reset(6);
  q.Update(3, 4);
  q.Update(1, kInfDistance);

  q.ForceEpochWrapForTest();
  q.Update(2, 9);
  const std::uint64_t inits_before = q.bulk_inits();
  q.Reset(6);  // wraps
  EXPECT_EQ(q.bulk_inits(), inits_before + 1);
  // Nothing queued this epoch: stale pre-wrap entries must not pop.
  EXPECT_FALSE(q.PopFarthest(alive, no_query, &batch, &level));

  // Fresh updates after the wrap behave normally.
  q.Update(4, 2);
  q.Update(5, 7);
  ASSERT_TRUE(q.PopFarthest(alive, no_query, &batch, &level));
  EXPECT_EQ(level, 7u);
  EXPECT_EQ(batch, (std::vector<VertexId>{5}));
}

TEST(PeelQueueTest, RequeueAfterPartialDeletion) {
  PeelQueue q;
  q.Reset(4);
  std::vector<char> alive(4, 1);
  for (VertexId v = 0; v < 4; ++v) q.Update(v, 2);
  auto no_query = [](VertexId) { return false; };
  std::vector<VertexId> batch;
  std::uint32_t level = 0;
  ASSERT_TRUE(q.PopFarthest(alive, no_query, &batch, &level));
  ASSERT_EQ(batch.size(), 4u);
  // Single-delete style: keep batch[0], requeue the rest.
  for (std::size_t i = 1; i < batch.size(); ++i) q.Requeue(batch[i]);
  alive[batch[0]] = 0;
  ASSERT_TRUE(q.PopFarthest(alive, no_query, &batch, &level));
  EXPECT_EQ(level, 2u);
  EXPECT_EQ(batch.size(), 3u);
}

TEST(ButterflyWorkspaceTest, MatchesBruteForceRandomized) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    LabeledGraph g = MakeRandomGraph(40, 0.15, 2, seed + 100);
    const std::size_t n = g.NumVertices();
    std::mt19937_64 rng(seed);
    std::vector<VertexId> left, right;
    std::vector<char> in_left(n, 0), in_right(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      if (g.LabelOf(v) == 0) {
        left.push_back(v);
        in_left[v] = rng() % 4 != 0;  // some dead members
      } else {
        right.push_back(v);
        in_right[v] = rng() % 4 != 0;
      }
    }

    ButterflyCounts brute = CountButterfliesBruteForce(g, left, right, in_left, in_right);

    QueryWorkspace ws;
    ButterflyCounts fast;
    fast.chi = ws.U64ZeroPool().Acquire(n);
    CountButterfliesInto(g, left, right, in_left, in_right, &ws, &fast);
    // Recount over the same buffer (the steady-state path) must stay exact.
    CountButterfliesInto(g, left, right, in_left, in_right, &ws, &fast);

    EXPECT_EQ(fast.total, brute.total) << "seed " << seed;
    EXPECT_EQ(fast.max_left, brute.max_left);
    EXPECT_EQ(fast.max_right, brute.max_right);
    for (VertexId v = 0; v < n; ++v) {
      if ((in_left[v] | in_right[v]) != 0) {
        EXPECT_EQ(fast.chi[v], brute.chi[v]) << "vertex " << v;
      }
    }
  }
}

TEST(ButterflyWorkspaceTest, ArgmaxValidForZeroChiSides) {
  // A 4-cycle path of cross edges with no butterfly: chi == 0 everywhere,
  // yet both sides are non-empty, so both argmaxes must be valid vertices.
  LabeledGraph g = LabeledGraph::FromEdges(
      4, {{0, 2}, {1, 3}}, {0, 0, 1, 1});
  std::vector<VertexId> left = {0, 1}, right = {2, 3};
  std::vector<char> in_left = {1, 1, 0, 0}, in_right = {0, 0, 1, 1};
  ButterflyCounts fast = CountButterflies(g, left, right, in_left, in_right);
  EXPECT_EQ(fast.max_left, 0u);
  EXPECT_NE(fast.argmax_left, kInvalidVertex);
  EXPECT_NE(fast.argmax_right, kInvalidVertex);
  ButterflyCounts brute = CountButterfliesBruteForce(g, left, right, in_left, in_right);
  EXPECT_NE(brute.argmax_left, kInvalidVertex);
  EXPECT_NE(brute.argmax_right, kInvalidVertex);
  EXPECT_EQ(fast.argmax_left, brute.argmax_left);
  EXPECT_EQ(fast.argmax_right, brute.argmax_right);
}

TEST(WorkspaceSearchTest, WorkspaceResultsEqualLegacyAcrossOptionGrid) {
  PlantedConfig cfg;
  cfg.num_communities = 5;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    cfg.seed = seed + 300;
    PlantedGraph pg = GeneratePlanted(cfg);
    const auto& comm = pg.communities[seed % pg.communities.size()];
    BccQuery q{comm.groups[0][0], comm.groups[1][0]};
    BccParams p{2, 2, 1};
    QueryWorkspace ws;
    for (bool bulk : {true, false}) {
      for (bool fast : {true, false}) {
        for (bool leader : {true, false}) {
          SearchOptions opts;
          opts.bulk_delete = bulk;
          opts.fast_query_distance = fast;
          opts.use_leader_pair = leader;
          Community legacy = BccSearch(pg.graph, q, p, opts, nullptr);
          Community warm = BccSearch(pg.graph, q, p, opts, nullptr, &ws);
          EXPECT_EQ(legacy.vertices, warm.vertices)
              << "seed=" << seed << " bulk=" << bulk << " fast=" << fast
              << " leader=" << leader;
        }
      }
    }
  }
}

TEST(WorkspaceSearchTest, SteadyStateLpBccPerformsNoBulkInits) {
  PlantedConfig cfg;
  cfg.num_communities = 6;
  cfg.min_group_size = 10;
  cfg.max_group_size = 16;
  cfg.seed = 9;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BccQuery q2{comm.groups[0][1], comm.groups[1][1]};

  QueryWorkspace ws;
  Community first = LpBcc(pg.graph, q, BccParams{}, nullptr, &ws);   // warm-up
  Community alt = LpBcc(pg.graph, q2, BccParams{}, nullptr, &ws);    // different shape
  const std::uint64_t warm = ws.Stats().bulk_inits;
  ASSERT_GT(warm, 0u);

  for (int i = 0; i < 5; ++i) {
    Community again = LpBcc(pg.graph, q, BccParams{}, nullptr, &ws);
    EXPECT_EQ(again.vertices, first.vertices);
    Community again2 = LpBcc(pg.graph, q2, BccParams{}, nullptr, &ws);
    EXPECT_EQ(again2.vertices, alt.vertices);
  }
  // Zero O(n)-sized allocations/fills after warm-up: the tentpole contract.
  EXPECT_EQ(ws.Stats().bulk_inits, warm);
}

TEST(WorkspaceSearchTest, SteadyStateOnlineAndMbccPerformNoBulkInits) {
  PlantedConfig cfg;
  cfg.num_communities = 4;
  cfg.groups_per_community = 3;
  cfg.num_labels = 3;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  cfg.seed = 21;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[0];
  ASSERT_GE(comm.groups.size(), 3u);
  MbccQuery mq{{comm.groups[0][0], comm.groups[1][0], comm.groups[2][0]}};
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};

  QueryWorkspace ws;
  Community online = OnlineBcc(pg.graph, q, BccParams{}, nullptr, &ws);
  Community mbcc = MbccSearch(pg.graph, mq, MbccParams{}, LpBccOptions(), nullptr, nullptr, &ws);
  const std::uint64_t warm = ws.Stats().bulk_inits;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(OnlineBcc(pg.graph, q, BccParams{}, nullptr, &ws).vertices, online.vertices);
    EXPECT_EQ(
        MbccSearch(pg.graph, mq, MbccParams{}, LpBccOptions(), nullptr, nullptr, &ws).vertices,
        mbcc.vertices);
  }
  EXPECT_EQ(ws.Stats().bulk_inits, warm);
}

TEST(WorkspaceSearchTest, SteadyStateL2pPerformsNoBulkInits) {
  PlantedConfig cfg;
  cfg.num_communities = 6;
  cfg.min_group_size = 10;
  cfg.max_group_size = 16;
  cfg.seed = 33;
  PlantedGraph pg = GeneratePlanted(cfg);
  const auto& comm = pg.communities[1];
  BccQuery q{comm.groups[0][0], comm.groups[1][0]};
  BcIndex index(pg.graph);

  QueryWorkspace ws;
  Community legacy = L2pBcc(pg.graph, index, q, BccParams{});
  Community first = L2pBcc(pg.graph, index, q, BccParams{}, {}, nullptr, &ws);
  EXPECT_EQ(first.vertices, legacy.vertices);
  const std::uint64_t warm = ws.Stats().bulk_inits;
  for (int i = 0; i < 3; ++i) {
    Community again = L2pBcc(pg.graph, index, q, BccParams{}, {}, nullptr, &ws);
    EXPECT_EQ(again.vertices, first.vertices);
  }
  EXPECT_EQ(ws.Stats().bulk_inits, warm);
}

TEST(WorkspaceSearchTest, MbccWorkspaceEqualsLegacy) {
  PlantedConfig cfg;
  cfg.num_communities = 4;
  cfg.groups_per_community = 3;
  cfg.num_labels = 3;
  cfg.mixed_group_counts = true;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    cfg.seed = seed + 50;
    PlantedGraph pg = GeneratePlanted(cfg);
    const PlantedCommunity* comm3 = nullptr;
    for (const auto& c : pg.communities) {
      if (c.groups.size() >= 3) {
        comm3 = &c;
        break;
      }
    }
    ASSERT_NE(comm3, nullptr);
    MbccQuery mq{{comm3->groups[0][0], comm3->groups[1][0], comm3->groups[2][0]}};
    QueryWorkspace ws;
    for (const SearchOptions& opts : {OnlineBccOptions(), LpBccOptions()}) {
      Community legacy = MbccSearch(pg.graph, mq, MbccParams{}, opts);
      Community warm = MbccSearch(pg.graph, mq, MbccParams{}, opts, nullptr, nullptr, &ws);
      EXPECT_EQ(legacy.vertices, warm.vertices) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace bccs
