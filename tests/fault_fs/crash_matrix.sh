#!/usr/bin/env bash
# Fault-injection recovery matrix: kill bccs_update at EVERY durability
# write/fsync/rename/unlink it performs and prove the crash-safety contract:
#
#   - recovery always succeeds (no wedged snapshot, ever);
#   - the recovered state is a clean prefix of the update history: either
#     the state before the crashed batch or after it, never a hybrid;
#   - an ACKED batch (its fsync'd "acked" line reached the ack file, which
#     bccs_update writes only after Append returned under
#     --fsync every-append) is NEVER lost — zero acked loss;
#   - recovered query answers are bit-identical to a clean run's answers
#     for the same state;
#   - a crashed compaction fold never wedges the pipeline: a follow-up
#     clean run (append + forced fold) always succeeds, folds every
#     segment, and passes its reload verification.
#
# Matrix A enumerates crash points inside changelog appends (one rotated
# segment per record). Matrix B enumerates crash points across an
# append + forced compaction fold (snapshot tmp write, tmp fsync, rename,
# stale-segment unlink). Crash points are discovered by a probe run that
# counts the matched operations (see tests/fault_fs/fault_fs.cc).
#
# usage: crash_matrix.sh BIN_DIR FAULT_LIB [quick]
#   quick: matrix A runs one step and matrix B caps at 6 points — the
#   cheap variant tools/e2e_snapshot_test.sh tacks onto its run. Setting
#   CRASH_QUICK=1 in the environment has the same effect, which is how CI
#   trims the crash-labeled ctest without reconfiguring.
set -u

bin="${1:?usage: crash_matrix.sh BIN_DIR FAULT_LIB [quick]}"
lib="${2:?usage: crash_matrix.sh BIN_DIR FAULT_LIB [quick]}"
quick="${3:-${CRASH_QUICK:+quick}}"
[ -f "$lib" ] || { echo "FAIL: fault library $lib not found" >&2; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cd "$tmp"

fail() { echo "FAIL: $*" >&2; exit 1; }

UPDATE_FLAGS=(--changelog --fsync every-append --segment-blocks 1)

"$bin/bccs_generate" --communities 4 --group-size 8 --labels 2 --seed 7 \
  --out g.txt >/dev/null || fail "bccs_generate"
q1="$(awk '$1=="l" && $3==0 {print $2; exit}' g.txt)"
q2="$(awk '$1=="l" && $3==1 {print $2; exit}' g.txt)"
[ -n "$q1" ] && [ -n "$q2" ] || fail "could not pick query vertices"

# Update history: five single-edge deletions of distinct existing edges.
# Each applied batch lowers the edge count by exactly one, so the edge
# count alone identifies which prefix of the history a recovered snapshot
# contains.
awk '$1=="e" {print "- " $2 " " $3}' g.txt | head -5 > dels.txt
[ "$(wc -l < dels.txt)" -eq 5 ] || fail "graph has fewer than 5 edges"
for i in 1 2 3 4 5; do sed -n "${i}p" dels.txt > "u$i.txt"; done

mkdir ref0
"$bin/bccs_build" --graph g.txt --out ref0/w.snap >/dev/null || fail "bccs_build"

edges_of() { # $1: snapshot path -> recovered edge count on stdout, "" on failure
  "$bin/bccs_update" --snapshot "$1" --recover-only 2>/dev/null \
    | sed -n 's/^snapshot: [0-9]* vertices, \([0-9]*\) edges.*/\1/p'
}

answers_of() { # $1: snapshot path -> deterministic query lines (no timings)
  "$bin/bccs_query" --index-file "$1" --ql "$q1" --qr "$q2" --method l2p \
    | grep -E '^(community|no community)'
}

# Clean reference chain: ref_j holds the snapshot with batches u1..uj
# applied (and their live changelog segments). Its edge count and query
# answers are the ground truth a recovered state must match bit-for-bit.
declare -a edges answers
for j in 0 1 2 3 4 5; do
  if [ "$j" -gt 0 ]; then
    cp -r "ref$((j - 1))" "ref$j"
    "$bin/bccs_update" --snapshot "ref$j/w.snap" --updates "u$j.txt" \
      "${UPDATE_FLAGS[@]}" >/dev/null || fail "clean update $j"
  fi
  edges[$j]="$(edges_of "ref$j/w.snap")"
  [ -n "${edges[$j]}" ] || fail "no edge count for ref$j"
  answers[$j]="$(answers_of "ref$j/w.snap")"
done
for j in 1 2 3 4 5; do
  [ "${edges[$j]}" -eq "$(( edges[j - 1] - 1 ))" ] \
    || fail "reference edge counts are not strictly decreasing"
done

state_of_edges() { # $1: edge count -> history prefix length j, or -1
  local e="$1" j
  for j in 0 1 2 3 4 5; do
    if [ "${edges[$j]}" -eq "$e" ]; then echo "$j"; return; fi
  done
  echo "-1"
}

# Verifies a crashed work dir recovers to a clean prefix. Sets the global
# `recovered_j` to the prefix length it landed on.
recovered_j=-1
check_recovery() { # $1: step i (u_i was in flight), $2: acked 0/1, $3: label
  local i="$1" acked="$2" label="$3" e j ans
  e="$(edges_of work/w.snap)"
  [ -n "$e" ] || fail "$label: recovery failed"
  j="$(state_of_edges "$e")"
  [ "$j" -ge 0 ] || fail "$label: recovered to an unknown state ($e edges)"
  [ "$j" -eq "$((i - 1))" ] || [ "$j" -eq "$i" ] \
    || fail "$label: recovered to state $j, expected $((i - 1)) or $i"
  if [ "$acked" -eq 1 ] && [ "$j" -ne "$i" ]; then
    fail "$label: ACKED batch lost (recovered to state $j)"
  fi
  ans="$(answers_of work/w.snap)"
  [ "$ans" = "${answers[$j]}" ] \
    || fail "$label: recovered answers differ from the clean state-$j answers"
  recovered_j="$j"
}

crashed_update() { # $1: crash point, remaining: bccs_update args -> exit code
  local c="$1"
  shift
  LD_PRELOAD="$lib" FAULT_FS_MATCH=w.snap FAULT_FS_CRASH_AT="$c" \
    "$bin/bccs_update" "$@" >/dev/null 2>&1
  echo "$?"
}

probe_points() { # remaining: bccs_update args -> matched op count
  rm -f count.txt
  LD_PRELOAD="$lib" FAULT_FS_MATCH=w.snap FAULT_FS_COUNT_FILE="$tmp/count.txt" \
    "$bin/bccs_update" "$@" >/dev/null || fail "probe run failed"
  [ -s count.txt ] || fail "probe wrote no op count (is the interposer loaded?)"
  cat count.txt
}

acked_in() { # $1: work dir -> 1 if the run's ack line landed
  if [ -f "$1/acks.txt" ] && grep -q '^acked' "$1/acks.txt"; then
    echo 1
  else
    echo 0
  fi
}

# --- Matrix A: crash at every durability op inside a changelog append -----
a_steps="1 2 3"
[ "$quick" = "quick" ] && a_steps="1"
a_points=0
for i in $a_steps; do
  rm -rf probe && cp -r "ref$((i - 1))" probe
  n="$(probe_points --snapshot probe/w.snap --updates "u$i.txt" \
    "${UPDATE_FLAGS[@]}" --ack-file probe/acks.txt)"
  [ "$n" -ge 2 ] || fail "append probe $i exposed only $n crash points"
  for c in $(seq 1 "$n"); do
    rm -rf work && cp -r "ref$((i - 1))" work
    ec="$(crashed_update "$c" --snapshot work/w.snap --updates "u$i.txt" \
      "${UPDATE_FLAGS[@]}" --ack-file work/acks.txt)"
    acked="$(acked_in work)"
    case "$ec" in
      86) check_recovery "$i" "$acked" "append step $i, crash point $c" ;;
      0)  # deterministic op sequence: only the last point survives to exit
          check_recovery "$i" "$acked" "append step $i, uncrashed point $c"
          [ "$recovered_j" -eq "$i" ] \
            || fail "append step $i: uncrashed run did not complete" ;;
      *)  fail "append step $i, crash point $c: unexpected exit $ec" ;;
    esac
    a_points=$((a_points + 1))
  done
done

# --- Matrix B: crash at every durability op across append + forced fold ---
# Start from ref3 (three sealed single-record segments), append u4 and force
# a compaction fold: the op stream covers the tmp snapshot write, its fsync,
# the rename over the base, and the stale-segment unlinks.
rm -rf probe && cp -r ref3 probe
nb="$(probe_points --snapshot probe/w.snap --updates u4.txt \
  "${UPDATE_FLAGS[@]}" --compact --ack-file probe/acks.txt)"
[ "$nb" -ge 8 ] || fail "fold probe exposed only $nb crash points"
ls probe/w.snap.log.* >/dev/null 2>&1 \
  && fail "fold probe left changelog segments behind"
b_last="$nb"
[ "$quick" = "quick" ] && [ "$b_last" -gt 6 ] && b_last=6
b_points=0
for c in $(seq 1 "$b_last"); do
  rm -rf work && cp -r ref3 work
  ec="$(crashed_update "$c" --snapshot work/w.snap --updates u4.txt \
    "${UPDATE_FLAGS[@]}" --compact --ack-file work/acks.txt)"
  acked="$(acked_in work)"
  case "$ec" in
    86) check_recovery 4 "$acked" "fold crash point $c" ;;
    0)  check_recovery 4 "$acked" "fold uncrashed point $c"
        [ "$recovered_j" -eq 4 ] || fail "fold: uncrashed run did not complete" ;;
    *)  fail "fold crash point $c: unexpected exit $ec" ;;
  esac
  # The crashed fold may have left a tmp file or stale segments; a clean
  # follow-up append + forced fold must absorb them, fold everything, and
  # pass its own reload verification (bccs_update verifies by default).
  pre="$recovered_j"
  rm -f work/acks.txt
  "$bin/bccs_update" --snapshot work/w.snap --updates u5.txt \
    "${UPDATE_FLAGS[@]}" --compact --ack-file work/acks.txt >/dev/null \
    || fail "fold crash point $c: clean follow-up run failed"
  ls work/w.snap.log.* >/dev/null 2>&1 \
    && fail "fold crash point $c: segments left after a clean forced fold"
  e="$(edges_of work/w.snap)"
  [ "$e" = "$(( edges[pre] - 1 ))" ] \
    || fail "fold crash point $c: follow-up fold landed on $e edges"
  b_points=$((b_points + 1))
done

echo "crash matrix: $a_points append points + $b_points fold points, all recovered with zero acked loss"
