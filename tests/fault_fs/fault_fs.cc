// LD_PRELOAD write-interposer for crash-point enumeration.
//
// The durability code (changelog appends, snapshot saves, compaction folds)
// does all of its writing through raw POSIX fds, so every byte that reaches
// a durable file passes through the symbols interposed here. The harness
// (crash_matrix.sh) uses two modes:
//
//   probe:  FAULT_FS_MATCH=<substr> FAULT_FS_COUNT_FILE=<file>
//           Runs the workload to completion, counting every durability
//           operation (write/pwrite/fsync/fdatasync/rename/unlink) that
//           touches a file whose path contains the substring. The total is
//           written to the count file at process exit — that is the number
//           of crash points the workload exposes.
//
//   crash:  FAULT_FS_MATCH=<substr> FAULT_FS_CRASH_AT=<n>
//           At the n-th (1-based) matched operation the process dies with
//           _exit(86). A write/pwrite crash point first writes HALF of the
//           requested bytes — a torn write, the worst case a real crash can
//           leave behind. fsync/rename/unlink crash points die before the
//           operation takes effect, modelling a crash while it was pending.
//
// Files whose paths do not contain FAULT_FS_MATCH (ack files, count files,
// stdout) are never crash points, so the harness can keep ground truth
// outside the blast radius.
//
// Built only on UNIX (dlsym(RTLD_NEXT)); see tests/fault_fs/CMake wiring.

#include <dlfcn.h>
#include <fcntl.h>

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <sys/types.h>
#include <unistd.h>

namespace {

using OpenFn = int (*)(const char*, int, ...);
using OpenAtFn = int (*)(int, const char*, int, ...);
using CloseFn = int (*)(int);
using WriteFn = ssize_t (*)(int, const void*, size_t);
using PWriteFn = ssize_t (*)(int, const void*, size_t, off_t);
using FsyncFn = int (*)(int);
using RenameFn = int (*)(const char*, const char*);
using UnlinkFn = int (*)(const char*);

template <typename Fn>
Fn Resolve(const char* name) {
  return reinterpret_cast<Fn>(dlsym(RTLD_NEXT, name));
}

const char* g_match = nullptr;       // substring filter; unset => inactive
long g_crash_at = 0;                 // 1-based op index to die at; 0 => never
const char* g_count_file = nullptr;  // probe mode: write the op total here
std::atomic<long> g_ops{0};

constexpr int kMaxFd = 65536;
bool g_tracked[kMaxFd];  // fd -> path matched the filter at open time

__attribute__((constructor)) void Init() {
  g_match = std::getenv("FAULT_FS_MATCH");
  const char* at = std::getenv("FAULT_FS_CRASH_AT");
  g_crash_at = at != nullptr ? std::atol(at) : 0;
  g_count_file = std::getenv("FAULT_FS_COUNT_FILE");
}

__attribute__((destructor)) void Fini() {
  if (g_count_file == nullptr) return;
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%ld\n", g_ops.load());
  static OpenFn real_open = Resolve<OpenFn>("open");
  static WriteFn real_write = Resolve<WriteFn>("write");
  static CloseFn real_close = Resolve<CloseFn>("close");
  const int fd = real_open(g_count_file, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    real_write(fd, buf, static_cast<size_t>(n));
    real_close(fd);
  }
}

bool Matches(const char* path) {
  return g_match != nullptr && path != nullptr && std::strstr(path, g_match) != nullptr;
}

void Track(int fd, const char* path) {
  if (fd >= 0 && fd < kMaxFd) g_tracked[fd] = Matches(path);
}

bool Tracked(int fd) { return fd >= 0 && fd < kMaxFd && g_tracked[fd]; }

// Counts one matched durability op; true when it is the crash point.
bool Hit() {
  const long n = g_ops.fetch_add(1, std::memory_order_relaxed) + 1;
  return g_crash_at > 0 && n == g_crash_at;
}

}  // namespace

extern "C" {

int open(const char* path, int flags, ...) {
  va_list ap;
  va_start(ap, flags);
  const mode_t mode = va_arg(ap, mode_t);
  va_end(ap);
  static OpenFn real = Resolve<OpenFn>("open");
  const int fd = real(path, flags, mode);
  Track(fd, path);
  return fd;
}

int open64(const char* path, int flags, ...) {
  va_list ap;
  va_start(ap, flags);
  const mode_t mode = va_arg(ap, mode_t);
  va_end(ap);
  static OpenFn real = Resolve<OpenFn>("open64");
  const int fd = real(path, flags, mode);
  Track(fd, path);
  return fd;
}

int openat(int dirfd, const char* path, int flags, ...) {
  va_list ap;
  va_start(ap, flags);
  const mode_t mode = va_arg(ap, mode_t);
  va_end(ap);
  static OpenAtFn real = Resolve<OpenAtFn>("openat");
  const int fd = real(dirfd, path, flags, mode);
  Track(fd, path);
  return fd;
}

int openat64(int dirfd, const char* path, int flags, ...) {
  va_list ap;
  va_start(ap, flags);
  const mode_t mode = va_arg(ap, mode_t);
  va_end(ap);
  static OpenAtFn real = Resolve<OpenAtFn>("openat64");
  const int fd = real(dirfd, path, flags, mode);
  Track(fd, path);
  return fd;
}

int creat(const char* path, mode_t mode) {
  static OpenFn real = Resolve<OpenFn>("open");
  const int fd = real(path, O_WRONLY | O_CREAT | O_TRUNC, mode);
  Track(fd, path);
  return fd;
}

int close(int fd) {
  static CloseFn real = Resolve<CloseFn>("close");
  if (fd >= 0 && fd < kMaxFd) g_tracked[fd] = false;
  return real(fd);
}

ssize_t write(int fd, const void* buf, size_t count) {
  static WriteFn real = Resolve<WriteFn>("write");
  if (Tracked(fd) && Hit()) {
    real(fd, buf, count / 2);  // torn write: half the bytes reach the file
    _exit(86);
  }
  return real(fd, buf, count);
}

ssize_t pwrite(int fd, const void* buf, size_t count, off_t offset) {
  static PWriteFn real = Resolve<PWriteFn>("pwrite");
  if (Tracked(fd) && Hit()) {
    real(fd, buf, count / 2, offset);
    _exit(86);
  }
  return real(fd, buf, count, offset);
}

ssize_t pwrite64(int fd, const void* buf, size_t count, off_t offset) {
  static PWriteFn real = Resolve<PWriteFn>("pwrite64");
  if (Tracked(fd) && Hit()) {
    real(fd, buf, count / 2, offset);
    _exit(86);
  }
  return real(fd, buf, count, offset);
}

int fsync(int fd) {
  static FsyncFn real = Resolve<FsyncFn>("fsync");
  if (Tracked(fd) && Hit()) _exit(86);
  return real(fd);
}

int fdatasync(int fd) {
  static FsyncFn real = Resolve<FsyncFn>("fdatasync");
  if (Tracked(fd) && Hit()) _exit(86);
  return real(fd);
}

int rename(const char* old_path, const char* new_path) {
  static RenameFn real = Resolve<RenameFn>("rename");
  if ((Matches(old_path) || Matches(new_path)) && Hit()) _exit(86);
  return real(old_path, new_path);
}

int unlink(const char* path) {
  static UnlinkFn real = Resolve<UnlinkFn>("unlink");
  if (Matches(path) && Hit()) _exit(86);
  return real(path);
}

}  // extern "C"
