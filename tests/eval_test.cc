#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "bcc/query_distance.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"
#include "eval/stats.h"
#include "eval/timer.h"
#include "test_util.h"

namespace bccs {
namespace {

TEST(MetricsTest, PerfectMatch) {
  std::vector<VertexId> a = {1, 2, 3};
  F1Result r = F1Score(a, a);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
}

TEST(MetricsTest, Disjoint) {
  std::vector<VertexId> a = {1, 2}, b = {3, 4};
  F1Result r = F1Score(a, b);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(MetricsTest, PartialOverlap) {
  std::vector<VertexId> found = {1, 2, 3, 4};   // 2 correct of 4
  std::vector<VertexId> truth = {3, 4, 5, 6, 7, 8};  // 2 found of 6
  F1Result r = F1Score(found, truth);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_NEAR(r.recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.f1, 0.4, 1e-12);
}

TEST(MetricsTest, DuplicatesIgnored) {
  std::vector<VertexId> found = {1, 1, 2, 2};
  std::vector<VertexId> truth = {1, 2};
  EXPECT_DOUBLE_EQ(F1Score(found, truth).f1, 1.0);
}

TEST(MetricsTest, EmptySets) {
  std::vector<VertexId> empty, some = {1};
  EXPECT_DOUBLE_EQ(F1Score(empty, some).f1, 0.0);
  EXPECT_DOUBLE_EQ(F1Score(some, empty).f1, 0.0);
}

TEST(QueryGenTest, RespectsDegreeRankAndDistance) {
  PlantedConfig cfg;
  cfg.num_communities = 10;
  cfg.seed = 5;
  PlantedGraph pg = GeneratePlanted(cfg);
  const LabeledGraph& g = pg.graph;

  QueryGenConfig qcfg;
  qcfg.degree_rank = 0.5;
  qcfg.inter_distance = 2;
  qcfg.seed = 9;
  auto queries = SampleQueries(g, 10, qcfg);
  ASSERT_FALSE(queries.empty());

  // Degree threshold at rank 0.5.
  std::vector<std::size_t> degrees;
  for (VertexId v = 0; v < g.NumVertices(); ++v) degrees.push_back(g.Degree(v));
  std::sort(degrees.begin(), degrees.end());
  std::size_t threshold = degrees[degrees.size() / 2];

  std::vector<char> everything(g.NumVertices(), 1);
  std::vector<std::uint32_t> dist;
  for (const BccQuery& q : queries) {
    EXPECT_NE(g.LabelOf(q.ql), g.LabelOf(q.qr));
    EXPECT_GE(g.Degree(q.ql) + 1, threshold);  // allow boundary ties
    EXPECT_GE(g.Degree(q.qr) + 1, threshold);
    BfsDistances(g, everything, q.ql, &dist);
    EXPECT_EQ(dist[q.qr], 2u);
  }
}

TEST(QueryGenTest, GroundTruthQueriesComeFromCommunities) {
  PlantedConfig cfg;
  cfg.num_communities = 8;
  cfg.seed = 17;
  PlantedGraph pg = GeneratePlanted(cfg);
  QueryGenConfig qcfg;
  qcfg.seed = 3;
  auto queries = SampleGroundTruthQueries(pg, 12, qcfg);
  ASSERT_FALSE(queries.empty());
  for (const auto& gq : queries) {
    const auto& comm = pg.communities[gq.community_index];
    EXPECT_TRUE(std::find(comm.groups[0].begin(), comm.groups[0].end(), gq.query.ql) !=
                comm.groups[0].end());
    EXPECT_TRUE(std::find(comm.groups[1].begin(), comm.groups[1].end(), gq.query.qr) !=
                comm.groups[1].end());
  }
}

TEST(QueryGenTest, MbccQueriesHaveDistinctLabels) {
  PlantedConfig cfg;
  cfg.num_communities = 5;
  cfg.groups_per_community = 4;
  cfg.num_labels = 6;
  cfg.seed = 23;
  PlantedGraph pg = GeneratePlanted(cfg);
  auto queries = SampleMbccGroundTruthQueries(pg, 3, 8, 7);
  ASSERT_FALSE(queries.empty());
  for (const auto& gq : queries) {
    ASSERT_EQ(gq.query.vertices.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = i + 1; j < 3; ++j) {
        EXPECT_NE(pg.graph.LabelOf(gq.query.vertices[i]),
                  pg.graph.LabelOf(gq.query.vertices[j]));
      }
    }
  }
}

TEST(StatsTest, KnownGraphs) {
  LabeledGraph clique = testing::MakeClique(6);
  GraphStats s = ComputeGraphStats(clique);
  EXPECT_EQ(s.num_vertices, 6u);
  EXPECT_EQ(s.num_edges, 15u);
  EXPECT_EQ(s.k_max, 5u);
  EXPECT_EQ(s.d_max, 5u);
  EXPECT_EQ(s.diameter_lb, 1u);
  EXPECT_EQ(s.num_cross_edges, 0u);

  LabeledGraph path = testing::MakePath(6);
  s = ComputeGraphStats(path);
  EXPECT_EQ(s.k_max, 1u);
  EXPECT_EQ(s.diameter_lb, 5u);
}

TEST(StatsTest, CrossEdgeCount) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}};
  LabeledGraph g = LabeledGraph::FromEdges(3, std::move(edges), {0, 0, 1});
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_cross_edges, 2u);
}

TEST(DatasetsTest, RegistryIsComplete) {
  EXPECT_EQ(StandInSpecs().size(), 7u);
  EXPECT_EQ(MultiLabelSpecs().size(), 5u);
  EXPECT_NE(FindSpec("baidu1"), nullptr);
  EXPECT_NE(FindSpec("orkut-m"), nullptr);
  EXPECT_EQ(FindSpec("no-such-dataset"), nullptr);
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  const DatasetSpec* spec = FindSpec("baidu1");
  ASSERT_NE(spec, nullptr);
  PlantedGraph a = MakeDataset(*spec);
  PlantedGraph b = MakeDataset(*spec);
  EXPECT_EQ(a.graph.NumVertices(), b.graph.NumVertices());
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  EXPECT_EQ(a.communities.size(), b.communities.size());
}

TEST(DatasetsTest, CaseStudiesWellFormed) {
  for (const CaseStudy& cs :
       {MakeFlightCase(), MakeTradeCase(), MakePotterCase(), MakeDblpCase()}) {
    EXPECT_GT(cs.graph.NumVertices(), 0u) << cs.name;
    EXPECT_EQ(cs.vertex_names.size(), cs.graph.NumVertices()) << cs.name;
    EXPECT_GE(cs.queries.size(), 2u) << cs.name;
    // Query labels must be pairwise distinct.
    for (std::size_t i = 0; i < cs.queries.size(); ++i) {
      for (std::size_t j = i + 1; j < cs.queries.size(); ++j) {
        EXPECT_NE(cs.graph.LabelOf(cs.queries[i]), cs.graph.LabelOf(cs.queries[j]))
            << cs.name;
      }
    }
  }
}

TEST(DatasetsTest, PotterCaseShape) {
  CaseStudy cs = MakePotterCase();
  EXPECT_EQ(cs.graph.NumLabels(), 2u);
  EXPECT_EQ(cs.vertex_names[cs.queries[0]], "Ron Weasley");
  EXPECT_EQ(cs.vertex_names[cs.queries[1]], "Draco Malfoy");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double a = t.Seconds();
  double b = t.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  double acc = 0;
  { ScopedAccumulator s(&acc); }
  EXPECT_GE(acc, 0.0);
}

}  // namespace
}  // namespace bccs
