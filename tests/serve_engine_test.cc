#include "eval/serve_engine.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "bcc/find_g0.h"
#include "bcc/verify.h"
#include "eval/query_gen.h"
#include "graph/generators.h"

namespace bccs {
namespace {

PlantedGraph MakeGraph(std::size_t communities = 5, std::uint64_t seed = 77) {
  PlantedConfig cfg;
  cfg.num_communities = communities;
  cfg.min_group_size = 8;
  cfg.max_group_size = 14;
  cfg.intra_edge_prob = 0.5;
  cfg.seed = seed;
  return GeneratePlanted(cfg);
}

std::vector<BccQuery> SampleQueries(const PlantedGraph& pg, std::size_t count) {
  QueryGenConfig qcfg;
  std::vector<GroundTruthQuery> gt = SampleGroundTruthQueries(pg, count, qcfg);
  std::vector<BccQuery> out;
  for (const auto& g : gt) out.push_back(g.query);
  return out;
}

// Resolves auto core parameters the way the search does, then verifies.
BccViolation VerifyResolved(const LabeledGraph& g, const Community& c, const BccQuery& q,
                            BccParams p) {
  SearchStats tmp;
  G0Result g0 = FindG0(g, q, p, &tmp);
  p.k1 = g0.k1;
  p.k2 = g0.k2;
  return VerifyBcc(g, c, q, p);
}

// --------------------------------------------------------------------------
// Scheduler: lane order compilation and ordered claiming.
// --------------------------------------------------------------------------

TEST(LaneOrderTest, InteractiveDrainsFirstWithoutAging) {
  std::vector<Lane> lanes = {Lane::kBulk, Lane::kInteractive, Lane::kBulk,
                             Lane::kInteractive};
  EXPECT_EQ(BuildLaneOrder(lanes, 0), (std::vector<std::uint32_t>{1, 3, 0, 2}));
}

TEST(LaneOrderTest, AgingGivesEveryNthSlotToBulk) {
  // 6 interactive (0..5), 3 bulk (6..8), one bulk claim after every 2
  // interactive claims.
  std::vector<Lane> lanes(9, Lane::kInteractive);
  lanes[6] = lanes[7] = lanes[8] = Lane::kBulk;
  EXPECT_EQ(BuildLaneOrder(lanes, 2),
            (std::vector<std::uint32_t>{0, 1, 6, 2, 3, 7, 4, 5, 8}));
  // Aging disabled: bulk strictly after interactive.
  EXPECT_EQ(BuildLaneOrder(lanes, 0),
            (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(LaneOrderTest, BulkOnlyAndInteractiveOnly) {
  std::vector<Lane> bulk(4, Lane::kBulk);
  EXPECT_EQ(BuildLaneOrder(bulk, 2), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  std::vector<Lane> inter(3, Lane::kInteractive);
  EXPECT_EQ(BuildLaneOrder(inter, 2), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_TRUE(BuildLaneOrder({}, 2).empty());
}

TEST(BatchRunnerOrderedTest, SingleWorkerExecutesInScheduleOrder) {
  BatchRunner runner(1);
  std::vector<std::uint32_t> order = {3, 1, 2, 0, 4};
  std::vector<std::size_t> executed;
  std::mutex mu;
  runner.RunOrdered(order, [&](std::size_t i, QueryWorkspace&) {
    std::lock_guard<std::mutex> lock(mu);
    executed.push_back(i);
  });
  EXPECT_EQ(executed, (std::vector<std::size_t>{3, 1, 2, 0, 4}));
}

TEST(BatchRunnerOrderedTest, MultiWorkerCoversEveryIndexOnce) {
  BatchRunner runner(3);
  std::vector<std::uint32_t> order(101);
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(order.size() - 1 - i);
  }
  std::vector<int> hits(order.size(), 0);
  std::mutex mu;
  runner.RunOrdered(order, [&](std::size_t i, QueryWorkspace&) {
    std::lock_guard<std::mutex> lock(mu);
    ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

// --------------------------------------------------------------------------
// ServeEngine: interactive ahead of bulk under a saturated pool.
// --------------------------------------------------------------------------

TEST(ServeEngineTest, InteractiveCompletesBeforeBulkOnSaturatedPool) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 8);
  ASSERT_GE(queries.size(), 4u);

  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kLpBcc;
    // Interleaved arrival: odd indices interactive, even bulk.
    requests[i].lane = (i % 2 == 1) ? Lane::kInteractive : Lane::kBulk;
  }

  BatchRunner runner(1);  // saturated: one worker serializes the claims
  ServeOptions opts;
  opts.aging_period = 0;  // strict priority for this test
  ServeEngine engine(runner, pg.graph, nullptr, opts);
  BatchResult result = engine.Serve(requests);

  ASSERT_EQ(result.sojourn_seconds.size(), requests.size());
  double max_interactive = 0, min_bulk = 1e300;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].lane == Lane::kInteractive) {
      max_interactive = std::max(max_interactive, result.sojourn_seconds[i]);
    } else {
      min_bulk = std::min(min_bulk, result.sojourn_seconds[i]);
    }
  }
  // Completion timestamps are monotone in claim order, so with strict
  // priority every interactive query finishes before any bulk one starts.
  EXPECT_LE(max_interactive, min_bulk);

  ASSERT_EQ(result.lanes.size(), 2u);
  EXPECT_EQ(result.lanes[0].lane, Lane::kInteractive);
  EXPECT_EQ(result.lanes[1].lane, Lane::kBulk);
  EXPECT_EQ(result.lanes[0].queries + result.lanes[1].queries, requests.size());
  EXPECT_LE(result.lanes[0].latency.p99_seconds, result.lanes[1].latency.p99_seconds);

  // The planner dispatched onto the real algorithm: answers match the
  // sequential reference.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Community c = LpBcc(pg.graph, queries[i], {});
    EXPECT_EQ(result.communities[i].vertices, c.vertices) << i;
  }
}

TEST(ServeEngineTest, AgingPreventsBulkStarvation) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 8);
  ASSERT_EQ(queries.size(), 8u);

  // 7 interactive + 1 bulk at the back; aging_period = 1 claims the bulk
  // query in the second slot even though interactive queries remain.
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kLpBcc;
    requests[i].lane = i + 1 == queries.size() ? Lane::kBulk : Lane::kInteractive;
  }

  BatchRunner runner(1);
  ServeOptions opts;
  opts.aging_period = 1;
  ServeEngine engine(runner, pg.graph, nullptr, opts);
  BatchResult result = engine.Serve(requests);

  // The bulk query completed ahead of the interactive tail: its sojourn is
  // below the interactive maximum (it ran second of eight).
  const double bulk_sojourn = result.sojourn_seconds.back();
  double max_interactive = 0;
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    max_interactive = std::max(max_interactive, result.sojourn_seconds[i]);
  }
  EXPECT_LT(bulk_sojourn, max_interactive);
}

// --------------------------------------------------------------------------
// Deadlines: expiry flags timed_out and never yields an invalid community.
// --------------------------------------------------------------------------

TEST(ServeEngineTest, ExpiredDeadlineReturnsValidOrEmptyForEveryMethod) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 4);
  ASSERT_FALSE(queries.empty());
  BcIndex index(pg.graph);

  BatchRunner runner(2);
  ServeEngine engine(runner, pg.graph, &index);

  for (QueryMethod m : {QueryMethod::kOnlineBcc, QueryMethod::kLpBcc, QueryMethod::kL2pBcc}) {
    std::vector<QueryRequest> requests(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      requests[i].query = queries[i];
      requests[i].method = m;
      requests[i].deadline_seconds = 1e-9;  // expired by the first round check
    }
    BatchResult result = engine.Serve(requests);
    EXPECT_EQ(result.timed_out, queries.size()) << Name(m);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(result.stats[i].timed_out) << Name(m) << " " << i;
      if (!result.communities[i].Empty()) {
        EXPECT_EQ(VerifyResolved(pg.graph, result.communities[i], queries[i], {}),
                  BccViolation::kNone)
            << Name(m) << " " << i;
      }
    }
  }
}

TEST(ServeEngineTest, MidSearchDeadlinesNeverYieldInvalidCommunities) {
  PlantedGraph pg = MakeGraph(6, 19);
  std::vector<BccQuery> queries = SampleQueries(pg, 6);
  ASSERT_FALSE(queries.empty());

  BatchRunner runner(1);
  ServeEngine engine(runner, pg.graph);
  // Sweep deadlines from "instantly expired" to "comfortably enough";
  // whatever mix of timed-out and completed queries results, every
  // non-empty answer must be a valid BCC.
  for (double deadline : {1e-9, 1e-7, 1e-6, 5e-6, 2e-5, 1e-3}) {
    std::vector<QueryRequest> requests(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      requests[i].query = queries[i];
      requests[i].method = QueryMethod::kOnlineBcc;
      requests[i].deadline_seconds = deadline;
    }
    BatchResult result = engine.Serve(requests);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (result.communities[i].Empty()) continue;
      EXPECT_EQ(VerifyResolved(pg.graph, result.communities[i], queries[i], {}),
                BccViolation::kNone)
          << "deadline " << deadline << " query " << i;
    }
  }
}

TEST(ServeEngineTest, GenerousDeadlineMatchesNoDeadline) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 4);
  BatchRunner runner(2);
  ServeEngine engine(runner, pg.graph);

  std::vector<QueryRequest> plain(queries.size()), bounded(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    plain[i].query = queries[i];
    plain[i].method = QueryMethod::kLpBcc;
    bounded[i] = plain[i];
    bounded[i].deadline_seconds = 60.0;
  }
  BatchResult a = engine.Serve(plain);
  BatchResult b = engine.Serve(bounded);
  EXPECT_EQ(b.timed_out, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(a.communities[i].vertices, b.communities[i].vertices) << i;
    EXPECT_FALSE(b.stats[i].timed_out) << i;
  }
}

TEST(ServeEngineTest, MbccDeadlineExpiryIsFlaggedAndValid) {
  PlantedConfig cfg;
  cfg.num_communities = 4;
  cfg.groups_per_community = 3;
  cfg.num_labels = 3;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  cfg.seed = 5;
  PlantedGraph pg = GeneratePlanted(cfg);
  std::vector<MbccGroundTruthQuery> gt = SampleMbccGroundTruthQueries(pg, 3, 4, 3);
  ASSERT_FALSE(gt.empty());

  BatchRunner runner(1);
  ServeEngine engine(runner, pg.graph);
  std::vector<QueryRequest> requests(gt.size());
  for (std::size_t i = 0; i < gt.size(); ++i) {
    requests[i].query = gt[i].query;
    requests[i].method = QueryMethod::kMbcc;
    requests[i].deadline_seconds = 1e-9;
  }
  BatchResult result = engine.Serve(requests);
  EXPECT_EQ(result.timed_out, gt.size());
  for (std::size_t i = 0; i < gt.size(); ++i) {
    EXPECT_TRUE(result.stats[i].timed_out) << i;
    EXPECT_TRUE(result.communities[i].Empty()) << i;
  }
}

// --------------------------------------------------------------------------
// Approximate fast path: determinism across thread counts, never
// approximate-only answers.
// --------------------------------------------------------------------------

ApproxOptions ForcedApprox(std::size_t samples = 64) {
  ApproxOptions a;
  a.enabled = true;
  a.samples = samples;
  a.threshold = 1;  // every round of every query takes the sampled check
  a.seed = 42;
  return a;
}

TEST(ServeEngineTest, ApproxBatchesAreBitIdenticalAcrossThreadCounts) {
  PlantedGraph pg = MakeGraph(6, 23);
  std::vector<BccQuery> queries = SampleQueries(pg, 10);
  ASSERT_FALSE(queries.empty());

  ServeOptions opts;
  opts.online.approx = ForcedApprox();
  opts.lp.approx = ForcedApprox();

  auto serve = [&](std::size_t threads, QueryMethod m) {
    BatchRunner runner(threads);
    ServeEngine engine(runner, pg.graph, nullptr, opts);
    std::vector<QueryRequest> requests(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      requests[i].query = queries[i];
      requests[i].method = m;
      requests[i].lane = i % 2 == 0 ? Lane::kInteractive : Lane::kBulk;
    }
    return engine.Serve(requests);
  };

  for (QueryMethod m : {QueryMethod::kOnlineBcc, QueryMethod::kLpBcc}) {
    BatchResult one = serve(1, m);
    BatchResult eight = serve(8, m);
    std::size_t approx_checks = 0;
    for (const SearchStats& s : one.stats) approx_checks += s.approx_checks;
    EXPECT_GT(approx_checks, 0u) << Name(m) << ": approx path never taken";
    ASSERT_EQ(one.communities.size(), eight.communities.size());
    for (std::size_t i = 0; i < one.communities.size(); ++i) {
      EXPECT_EQ(one.communities[i].vertices, eight.communities[i].vertices)
          << Name(m) << " query " << i;
    }
  }
}

TEST(ServeEngineTest, ApproxAnswersAreExactlyVerified) {
  PlantedGraph pg = MakeGraph(6, 29);
  std::vector<BccQuery> queries = SampleQueries(pg, 10);
  ASSERT_FALSE(queries.empty());

  // Deliberately terrible estimates (one sample): the exact final re-check
  // must still keep every returned community a valid BCC.
  ServeOptions opts;
  opts.online.approx = ForcedApprox(1);
  BatchRunner runner(2);
  ServeEngine engine(runner, pg.graph, nullptr, opts);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kOnlineBcc;
  }
  BatchResult result = engine.Serve(requests);
  std::size_t non_empty = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (result.communities[i].Empty()) continue;
    ++non_empty;
    EXPECT_EQ(VerifyResolved(pg.graph, result.communities[i], queries[i], {}),
              BccViolation::kNone)
        << i;
  }
  EXPECT_GT(non_empty, 0u);
}

TEST(ServeEngineTest, ApproxMbccDeterministicAndVerified) {
  PlantedConfig cfg;
  cfg.num_communities = 4;
  cfg.groups_per_community = 3;
  cfg.num_labels = 3;
  cfg.min_group_size = 8;
  cfg.max_group_size = 12;
  cfg.seed = 11;
  PlantedGraph pg = GeneratePlanted(cfg);
  std::vector<MbccGroundTruthQuery> gt = SampleMbccGroundTruthQueries(pg, 3, 6, 9);
  ASSERT_FALSE(gt.empty());

  ServeOptions opts;
  // Online-style options recount every round, so the sampled check fires on
  // every round above the (tiny) threshold.
  opts.mbcc = OnlineBccOptions();
  opts.mbcc.approx = ForcedApprox();

  auto serve = [&](std::size_t threads) {
    BatchRunner runner(threads);
    ServeEngine engine(runner, pg.graph, nullptr, opts);
    std::vector<QueryRequest> requests(gt.size());
    for (std::size_t i = 0; i < gt.size(); ++i) {
      requests[i].query = gt[i].query;
      requests[i].method = QueryMethod::kMbcc;
    }
    return engine.Serve(requests);
  };
  BatchResult one = serve(1);
  BatchResult four = serve(4);
  std::size_t approx_checks = 0;
  for (const SearchStats& s : one.stats) approx_checks += s.approx_checks;
  EXPECT_GT(approx_checks, 0u);
  for (std::size_t i = 0; i < gt.size(); ++i) {
    EXPECT_EQ(one.communities[i].vertices, four.communities[i].vertices) << i;
    if (one.communities[i].Empty()) continue;
    MbccParams p;
    std::vector<std::uint32_t> ks = ResolveMbccCores(pg.graph, gt[i].query, p);
    EXPECT_EQ(VerifyMbcc(pg.graph, one.communities[i], gt[i].query.vertices, ks, p.b),
              MbccViolation::kNone)
        << i;
  }
}

TEST(ServeEngineTest, ApproxDisabledMatchesExactPath) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 6);
  BatchRunner runner(2);
  ServeEngine plain(runner, pg.graph);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kOnlineBcc;
  }
  BatchResult result = plain.Serve(requests);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SearchStats stats;
    Community c = OnlineBcc(pg.graph, queries[i], {}, &stats);
    EXPECT_EQ(result.communities[i].vertices, c.vertices) << i;
    EXPECT_EQ(result.stats[i].approx_checks, 0u) << i;
  }
}

// --------------------------------------------------------------------------
// Planning edge cases and shims.
// --------------------------------------------------------------------------

TEST(ServeEngineTest, VariantMethodMismatchYieldsEmptyAnswer) {
  PlantedGraph pg = MakeGraph();
  BatchRunner runner(1);
  ServeEngine engine(runner, pg.graph);
  std::vector<QueryRequest> requests(2);
  requests[0].query = MbccQuery{{0, 1}};  // mBCC payload on a two-label method
  requests[0].method = QueryMethod::kLpBcc;
  requests[1].query = BccQuery{0, 1};  // two-label payload on the mBCC method
  requests[1].method = QueryMethod::kMbcc;
  BatchResult result = engine.Serve(requests);
  EXPECT_TRUE(result.communities[0].Empty());
  EXPECT_TRUE(result.communities[1].Empty());
}

TEST(ServeEngineTest, L2pWithoutIndexDegradesToLp) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 4);
  BatchRunner runner(1);
  ServeEngine engine(runner, pg.graph, nullptr);  // no index
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kL2pBcc;
  }
  BatchResult result = engine.Serve(requests);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Community c = LpBcc(pg.graph, queries[i], {});
    EXPECT_EQ(result.communities[i].vertices, c.vertices) << i;
  }
}

TEST(ServeEngineTest, ShimsRouteThroughTheEngine) {
  PlantedGraph pg = MakeGraph();
  std::vector<BccQuery> queries = SampleQueries(pg, 5);
  BcIndex index(pg.graph);
  BatchRunner runner(2);

  BatchResult shim = runner.RunL2pBatch(pg.graph, index, queries, {}, {});
  ServeEngine engine(runner, pg.graph, &index);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kL2pBcc;
  }
  BatchResult direct = engine.Serve(requests);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(shim.communities[i].vertices, direct.communities[i].vertices) << i;
  }
}

TEST(SummarizeLatencyTest, ZeroWallClockFallsBackToSummedSeconds) {
  std::vector<double> seconds = {0.01, 0.01, 0.02};
  BatchLatency lat = SummarizeLatency(seconds, 0.0);
  // qps falls back to count / sum(seconds) instead of silently reporting 0.
  EXPECT_NEAR(lat.qps, 3.0 / 0.04, 1e-9);
  EXPECT_NEAR(lat.avg_seconds, 0.04 / 3.0, 1e-12);
}

}  // namespace
}  // namespace bccs
