// Quickstart: build a small labeled graph, run a BCC search, inspect the
// result. This is the paper's Figure 1 example end to end.

#include <cstdio>

#include "bcc/online_search.h"
#include "bcc/verify.h"
#include "graph/labeled_graph.h"
#include "graph/paper_graphs.h"

int main() {
  // A labeled graph: vertices carry labels (here: SE / UI / PM roles), edges
  // are collaborations. MakeFigure1Graph() builds the paper's running
  // example; your own graph comes from LabeledGraph::FromEdges or
  // ReadLabeledGraphFromFile.
  bccs::Figure1Graph fig = bccs::MakeFigure1Graph();
  const bccs::LabeledGraph& g = fig.graph;
  std::printf("graph: %zu vertices, %zu edges, %zu labels\n", g.NumVertices(), g.NumEdges(),
              g.NumLabels());

  // Query: one SE employee and one UI employee who collaborate.
  bccs::BccQuery query{fig.ql, fig.qr};

  // Parameters: left core k1, right core k2, butterfly threshold b.
  // k = 0 means "auto": use each query vertex's coreness in its own group.
  bccs::BccParams params{4, 3, 1};

  // LP-BCC = the greedy 2-approximation with the fast query-distance and
  // leader-pair accelerations.
  bccs::SearchStats stats;
  bccs::Community community = bccs::LpBcc(g, query, params, &stats);

  std::printf("community of %zu members:", community.Size());
  for (bccs::VertexId v : community.vertices) std::printf(" %u", v);
  std::printf("\nsearch took %.6fs over %zu peeling rounds\n", stats.total_seconds,
              stats.rounds);

  // Communities can be verified against the model definition.
  auto verdict = bccs::VerifyBcc(g, community, query, params);
  std::printf("verification: %s\n", bccs::ToString(verdict));
  return verdict == bccs::BccViolation::kNone ? 0 : 1;
}
