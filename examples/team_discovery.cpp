// Professional team discovery (the paper's Section 1 motivation): find the
// cross-department project team around two employees in an IT professional
// network, and contrast with the label-blind CTC baseline.

#include <cstdio>

#include "baselines/ctc.h"
#include "bcc/online_search.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/generators.h"

int main() {
  // A Baidu-like professional network: departments as labels, joint-project
  // community pairs as ground truth.
  bccs::PlantedConfig cfg;
  cfg.num_communities = 20;
  cfg.min_group_size = 12;
  cfg.max_group_size = 20;
  cfg.intra_edge_prob = 0.4;
  cfg.num_labels = 12;
  cfg.background_vertices = 400;
  cfg.seed = 20210520;
  bccs::PlantedGraph pg = bccs::GeneratePlanted(cfg);
  std::printf("professional network: %zu employees, %zu communication edges, %zu departments\n",
              pg.graph.NumVertices(), pg.graph.NumEdges(), pg.graph.NumLabels());

  // Pick two employees from a known joint project.
  bccs::QueryGenConfig qcfg;
  qcfg.seed = 5;
  auto queries = bccs::SampleGroundTruthQueries(pg, 1, qcfg);
  if (queries.empty()) {
    std::printf("no query available\n");
    return 1;
  }
  bccs::BccQuery q = queries[0].query;
  auto truth = pg.communities[queries[0].community_index].AllVertices();
  std::printf("query: employee %u (dept %u) x employee %u (dept %u)\n", q.ql,
              pg.graph.LabelOf(q.ql), q.qr, pg.graph.LabelOf(q.qr));
  std::printf("ground-truth project team: %zu members\n", truth.size());

  bccs::Community team = bccs::LpBcc(pg.graph, q, bccs::BccParams{});
  auto f1 = bccs::F1Score(team.vertices, truth);
  std::printf("\nLP-BCC team: %zu members, F1 = %.3f (precision %.3f, recall %.3f)\n",
              team.Size(), f1.f1, f1.precision, f1.recall);

  bccs::CtcSearcher ctc(pg.graph);
  bccs::Community ctc_team = ctc.Search(q);
  auto f1_ctc = bccs::F1Score(ctc_team.vertices, truth);
  std::printf("CTC team:    %zu members, F1 = %.3f (precision %.3f, recall %.3f)\n",
              ctc_team.Size(), f1_ctc.f1, f1_ctc.precision, f1_ctc.recall);

  std::printf("\nThe BCC model recovers both departments' sub-teams; the label-blind\n"
              "truss community mixes departments and misses members.\n");
  return 0;
}
