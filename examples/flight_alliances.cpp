// Flight alliances (the paper's Exp-6 scenario): find the cross-country
// flight community connecting two allied countries' hub cities.

#include <cstdio>

#include "bcc/local_search.h"
#include "bcc/online_search.h"
#include "eval/datasets.h"

int main() {
  bccs::CaseStudy cs = bccs::MakeFlightCase();
  std::printf("flight network: %zu cities, %zu routes, %zu countries\n",
              cs.graph.NumVertices(), cs.graph.NumEdges(), cs.graph.NumLabels());

  bccs::BccQuery q{cs.queries[0], cs.queries[1]};
  std::printf("query: %s x %s (b = %llu)\n\n", cs.vertex_names[q.ql].c_str(),
              cs.vertex_names[q.qr].c_str(),
              static_cast<unsigned long long>(cs.params.b));

  // L2P-BCC with the butterfly-core index: the fast path for repeated
  // interactive queries.
  bccs::BcIndex index(cs.graph);
  bccs::SearchStats stats;
  bccs::Community community = bccs::L2pBcc(cs.graph, index, q, cs.params, {}, &stats);

  std::printf("cross-country flight community (%zu cities):\n", community.Size());
  for (bccs::VertexId v : community.vertices) {
    std::printf("  %-22s (%s)\n", cs.vertex_names[v].c_str(),
                cs.label_names[cs.graph.LabelOf(v)].c_str());
  }
  std::printf("\nfound in %.6fs; the hubs of both countries act as the leader pair\n"
              "bridging the domestic route cores.\n",
              stats.total_seconds);
  return community.Empty() ? 1 : 0;
}
