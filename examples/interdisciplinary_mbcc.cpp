// Interdisciplinary collaboration search (the paper's Section 7 + Exp-11):
// multi-labeled BCC search over a research collaboration network with one
// query author per field.

#include <cstdio>

#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/verify.h"
#include "eval/datasets.h"

int main() {
  bccs::CaseStudy cs = bccs::MakeDblpCase();
  std::printf("collaboration network: %zu authors, %zu co-authorships, %zu fields\n",
              cs.graph.NumVertices(), cs.graph.NumEdges(), cs.graph.NumLabels());

  bccs::MbccQuery q{{cs.queries[0], cs.queries[1], cs.queries[2]}};
  std::printf("query team seeds:\n");
  for (bccs::VertexId v : q.vertices) {
    std::printf("  %s (%s)\n", cs.vertex_names[v].c_str(),
                cs.label_names[cs.graph.LabelOf(v)].c_str());
  }

  bccs::MbccParams params;
  params.k = {cs.params.k1, cs.params.k1, cs.params.k1};  // the paper's k_i = 3
  params.b = cs.params.b;
  bccs::Community group = bccs::MbccSearch(cs.graph, q, params, bccs::LpBccOptions());

  if (group.Empty()) {
    std::printf("no 3-labeled mBCC exists for this seed set\n");
    return 1;
  }
  std::printf("\ninterdisciplinary research group: %zu authors\n", group.Size());
  for (bccs::Label l = 0; l < cs.graph.NumLabels(); ++l) {
    std::size_t count = 0;
    for (bccs::VertexId v : group.vertices) {
      if (cs.graph.LabelOf(v) == l) ++count;
    }
    if (count > 0) std::printf("  %-20s %zu members\n", cs.label_names[l].c_str(), count);
  }

  auto ks = bccs::ResolveMbccCores(cs.graph, q, params);
  auto verdict = bccs::VerifyMbcc(cs.graph, group, q.vertices, ks, params.b);
  std::printf("verification: %s\n", bccs::ToString(verdict));
  std::printf("\nEach field group is a k-core; cross-group connectivity holds through\n"
              "butterfly-linked label pairs (Definition 7).\n");
  return verdict == bccs::MbccViolation::kNone ? 0 : 1;
}
