// bccs_generate: write one of the benchmark stand-in datasets (or a custom
// planted graph) to a graph file, with the ground-truth communities on
// stdout.
//
//   bccs_generate --dataset dblp --out dblp.txt [--truth truth.txt]
//   bccs_generate --communities 50 --group-size 16 --labels 2 --seed 7
//                 --out custom.txt

#include <cstdio>
#include <fstream>

#include "eval/datasets.h"
#include "graph/graph_io.h"
#include "tools/arg_parser.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bccs_generate (--dataset NAME | --communities N [--group-size N]\n"
               "                      [--labels N] [--groups N] [--seed N]) --out FILE\n"
               "                     [--truth FILE]\n"
               "datasets:");
  for (const auto& spec : bccs::StandInSpecs()) std::fprintf(stderr, " %s", spec.name.c_str());
  for (const auto& spec : bccs::MultiLabelSpecs()) {
    std::fprintf(stderr, " %s", spec.name.c_str());
  }
  std::fprintf(stderr, "\n");
}

bool WriteTruth(const bccs::PlantedGraph& pg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# one line per ground-truth community: space-separated vertex ids\n";
  for (const auto& comm : pg.communities) {
    bool first = true;
    for (bccs::VertexId v : comm.AllVertices()) {
      if (!first) out << ' ';
      out << v;
      first = false;
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bccs::ArgParser args = bccs::ArgParser::Parse(argc, argv);
  auto unknown = args.UnknownFlags({"dataset", "communities", "group-size", "labels",
                                    "groups", "seed", "out", "truth", "help"});
  if (!unknown.empty() || args.Has("help")) {
    for (const auto& u : unknown) std::fprintf(stderr, "unknown flag: --%s\n", u.c_str());
    PrintUsage();
    return args.Has("help") ? 0 : 2;
  }
  auto out_path = args.GetString("out");
  if (!out_path) {
    PrintUsage();
    return 2;
  }

  bccs::PlantedGraph pg;
  if (auto name = args.GetString("dataset")) {
    const bccs::DatasetSpec* spec = bccs::FindSpec(*name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown dataset '%s'\n", name->c_str());
      PrintUsage();
      return 2;
    }
    pg = bccs::MakeDataset(*spec);
  } else {
    bccs::PlantedConfig cfg;
    cfg.num_communities = static_cast<std::size_t>(args.GetIntOr("communities", 20));
    auto group_size = static_cast<std::size_t>(args.GetIntOr("group-size", 16));
    cfg.min_group_size = group_size > 4 ? group_size - 4 : 4;
    cfg.max_group_size = group_size + 4;
    cfg.num_labels = static_cast<std::size_t>(args.GetIntOr("labels", 2));
    cfg.groups_per_community = static_cast<std::size_t>(args.GetIntOr("groups", 2));
    cfg.seed = static_cast<std::uint64_t>(args.GetIntOr("seed", 1));
    pg = bccs::GeneratePlanted(cfg);
  }

  if (!bccs::WriteLabeledGraphToFile(pg.graph, *out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path->c_str());
    return 1;
  }
  std::printf("wrote %s: %zu vertices, %zu edges, %zu labels, %zu communities\n",
              out_path->c_str(), pg.graph.NumVertices(), pg.graph.NumEdges(),
              pg.graph.NumLabels(), pg.communities.size());

  if (auto truth_path = args.GetString("truth")) {
    if (!WriteTruth(pg, *truth_path)) {
      std::fprintf(stderr, "cannot write %s\n", truth_path->c_str());
      return 1;
    }
    std::printf("wrote %s\n", truth_path->c_str());
  }
  return 0;
}
