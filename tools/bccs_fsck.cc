// bccs_fsck: offline format and invariant checker for a persisted snapshot
// and its rotated changelog.
//
//   bccs_fsck --snapshot g.snap [--sample-pairs N] [--quiet]
//
// Read-only: nothing is repaired, truncated, or deleted — point it at live
// data freely. Four sections run in order and the tool reports each:
//
//   load       the snapshot payload checksum scan plus the changelog
//              replay (LoadSnapshot with verify_checksum on)
//   graph      CSR well-formedness of the replayed graph
//              (common/validate.h ValidateGraph)
//   index      BcIndex consistency against the graph — exact coreness
//              recomputation, butterfly recounts on --sample-pairs cached
//              pairs (default 4, 0 = skip recounts)
//   changelog  chain invariants of the on-disk segments against the
//              snapshot's watermark (ValidateChangelogChain)
//
// Exit codes, distinct per failing section so scripts can triage:
//   0  clean
//   2  usage error
//   3  snapshot load / checksum failure
//   4  graph invariant violation
//   5  index invariant violation
//   6  changelog chain violation

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/validate.h"
#include "eval/timer.h"
#include "graph/changelog.h"
#include "graph/snapshot.h"
#include "tools/arg_parser.h"

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitLoad = 3;
constexpr int kExitGraph = 4;
constexpr int kExitIndex = 5;
constexpr int kExitChangelog = 6;

void PrintUsage() {
  std::fprintf(stderr, "usage: bccs_fsck --snapshot FILE [--sample-pairs N] [--quiet]\n");
}

struct Reporter {
  bool quiet = false;

  void Section(const char* name, const char* detail, double seconds) const {
    if (quiet) return;
    std::printf("%-9s ok: %s (%.4fs)\n", name, detail, seconds);
  }
  int Fail(const char* name, const std::string& reason, int code) const {
    std::fprintf(stderr, "%-9s FAILED: %s\n", name, reason.c_str());
    return code;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bccs::ArgParser args = bccs::ArgParser::Parse(argc, argv);
  auto unknown = args.UnknownFlags({"snapshot", "sample-pairs", "quiet", "help"});
  if (!unknown.empty() || args.Has("help")) {
    for (const auto& u : unknown) std::fprintf(stderr, "unknown flag: --%s\n", u.c_str());
    PrintUsage();
    return args.Has("help") ? 0 : kExitUsage;
  }
  auto snapshot_path = args.GetString("snapshot");
  if (!snapshot_path) {
    PrintUsage();
    return kExitUsage;
  }
  bool flags_valid = true;
  const std::size_t sample_pairs = static_cast<std::size_t>(
      args.GetNonNegativeIntOr("sample-pairs", 4, &flags_valid));
  if (!flags_valid) {
    std::fprintf(stderr, "--sample-pairs must be a non-negative integer\n");
    return kExitUsage;
  }
  Reporter report{args.Has("quiet")};

  // Section 1: load. verify_checksum walks the whole payload; the load also
  // replays the delta chain and the changelog segments, so a corrupt sealed
  // segment or a sequence gap already fails here (reported as the changelog
  // section, which is what actually broke).
  bccs::Timer load_timer;
  std::string error;
  bccs::SnapshotLoadOptions load_opts;
  load_opts.verify_checksum = true;
  auto bundle = bccs::LoadSnapshot(*snapshot_path, &error, load_opts);
  if (!bundle) {
    if (error.find("changelog") != std::string::npos) {
      return report.Fail("changelog", error, kExitChangelog);
    }
    return report.Fail("load", error, kExitLoad);
  }
  char detail[256];
  std::snprintf(detail, sizeof(detail),
                "%zu vertices, %zu edges, %zu labels, %zu replayed updates, watermark %llu",
                bundle->graph->NumVertices(), bundle->graph->NumEdges(),
                bundle->graph->NumLabels(), bundle->replayed_updates,
                static_cast<unsigned long long>(bundle->base_changelog_seq));
  report.Section("load", detail, load_timer.Seconds());

  // Section 2: graph invariants.
  bccs::Timer graph_timer;
  if (bccs::ValidationResult r = bccs::ValidateGraph(*bundle->graph); !r.ok) {
    return report.Fail("graph", r.reason, kExitGraph);
  }
  report.Section("graph", "CSR well-formed, adjacency symmetric, labels partition",
                 graph_timer.Seconds());

  // Section 3: index invariants.
  bccs::Timer index_timer;
  if (bccs::ValidationResult r = bccs::ValidateIndex(*bundle->index, sample_pairs);
      !r.ok) {
    return report.Fail("index", r.reason, kExitIndex);
  }
  std::snprintf(detail, sizeof(detail),
                "coreness exact, %zu cached pairs (%zu recounted)",
                bundle->index->CachedPairCount(),
                std::min(sample_pairs, bundle->index->CachedPairCount()));
  report.Section("index", detail, index_timer.Seconds());

  // Section 4: changelog chain against the header watermark.
  bccs::Timer chain_timer;
  if (bccs::ValidationResult r =
          bccs::ValidateChangelogChain(*snapshot_path, bundle->base_changelog_seq);
      !r.ok) {
    return report.Fail("changelog", r.reason, kExitChangelog);
  }
  std::snprintf(detail, sizeof(detail), "%zu live segments, %zu replayed changelog updates",
                bundle->changelog_segments, bundle->changelog_updates);
  report.Section("changelog", detail, chain_timer.Seconds());

  if (!report.quiet) std::printf("clean: %s\n", snapshot_path->c_str());
  return 0;
}
