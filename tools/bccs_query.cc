// bccs_query: run a butterfly-core community search on a graph file.
//
//   bccs_query --graph g.txt --ql 3 --qr 17 [--k1 0] [--k2 0] [--b 1]
//              [--method online|lp|l2p] [--verify]
//   bccs_query --graph g.txt --queries 3,17,42 --b 1      (multi-label mBCC)
//
// Every query — single, mBCC, or batch — enters through the unified
// ServeEngine (eval/serve_engine.h): requests carry a method, a priority
// lane, an optional deadline, and the approximate-counting knob.
//
// Serving flags:
//   --lane interactive|bulk   priority lane (default: interactive for
//                             single queries, bulk for batches). Interactive
//                             drains ahead of bulk with anti-starvation
//                             aging.
//   --deadline-ms N           per-query deadline; an expired query returns
//                             its best valid partial answer flagged timed_out.
//   --approx-samples N        enable the sampled butterfly validity check
//                             with N sampled pairs per estimate (exact
//                             re-check on the final answer; answers are
//                             deterministic in the seed and thread count).
//   --approx-threshold N      candidate size above which sampling kicks in
//                             (default 4096).
//   --approx-adaptive         scale each estimate's sample count with the
//                             alive candidate size (--approx-samples becomes
//                             the ceiling); answers stay deterministic in
//                             the seed and thread count.
//   --no-incremental-butterflies
//                             disable the incremental per-round butterfly
//                             maintenance (PeelButterflyCounter) and recount
//                             from scratch each round. Answers are
//                             bit-identical either way; this is a
//                             benchmarking / escape-hatch switch.
//
// Index snapshots (see tools/bccs_build and graph/snapshot.h):
//   bccs_query --index-file g.snap ...
//     serves straight from the snapshot (mmap cold start; --graph not
//     needed); a snapshot with an appended delta log (tools/bccs_update) is
//     replayed on load. With both --graph and --index-file, the snapshot is
//     loaded when valid AND its effective source stamp matches the graph
//     file's current size/mtime; otherwise (corrupt, stale, absent) the
//     index is rebuilt from the graph and saved to the snapshot path
//     (BcIndex::BuildOrLoad).
//
// Dynamic graphs:
//   bccs_query ... --updates-file u.txt
//     applies an edge-update batch ("+ u v" / "- u v" lines, see
//     graph/graph_delta.h) through the serving engine's update path before
//     any query runs: the batch is validated, the graph rebuilt, the index
//     incrementally repaired (BcIndex::ApplyUpdates), and every query below
//     observes the post-update epoch.
//
// Batch mode (parallel engine with per-thread workspaces):
//   bccs_query --graph g.txt --batch-file queries.txt [--threads 8]
//              [--method online|lp|l2p] [--b 1] [--repeat N]
//     queries.txt: one "ql qr [interactive|bulk]" per line ('#' comments
//     allowed); the optional lane column overrides --lane; --repeat tiles
//     the batch N times.
//   bccs_query --graph g.txt --ql 3 --qr 17 --repeat 1000 [--threads 8]
//     repeats one query to measure steady-state QPS / latency.
//   The BcIndex for --method l2p is built (or snapshot-loaded) exactly once,
//   before the batch starts, so repeats measure query cost only.
//
// k = 0 means auto (query coreness). Prints the community and search stats.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "bcc/verify.h"
#include "eval/serve_engine.h"
#include "eval/timer.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "tools/arg_parser.h"

namespace {

std::vector<bccs::VertexId> ParseIdList(const std::string& csv) {
  std::vector<bccs::VertexId> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) {
      out.push_back(static_cast<bccs::VertexId>(std::stoul(csv.substr(start, comma - start))));
    }
    start = comma + 1;
  }
  return out;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bccs_query (--graph FILE | --index-file FILE | both)\n"
               "                  (--ql ID --qr ID | --queries ID,ID[,ID...])\n"
               "                  [--k1 N] [--k2 N] [--b N] [--method online|lp|l2p]\n"
               "                  [--lane interactive|bulk] [--deadline-ms N]\n"
               "                  [--approx-samples N] [--approx-threshold N]\n"
               "                  [--approx-adaptive] [--updates-file FILE] [--verify]\n"
               "                  [--result-cache N] [--cache-bytes N]\n"
               "                  [--no-incremental-butterflies]\n"
               "       bccs_query ... --batch-file FILE [--threads N] [--repeat N]\n"
               "       bccs_query ... --ql ID --qr ID --repeat N [--threads N]\n");
}

bool ParseLane(const std::string& s, bccs::Lane* lane) {
  if (s == "interactive" || s == "i") {
    *lane = bccs::Lane::kInteractive;
    return true;
  }
  if (s == "bulk" || s == "b") {
    *lane = bccs::Lane::kBulk;
    return true;
  }
  return false;
}

struct BatchLine {
  bccs::BccQuery query;
  bool has_lane = false;
  bccs::Lane lane = bccs::Lane::kBulk;
};

std::vector<BatchLine> ReadBatchFile(const std::string& path, std::size_t num_vertices,
                                     bool* opened) {
  std::vector<BatchLine> out;
  std::ifstream in(path);
  *opened = in.good();
  if (!*opened) return out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t ql = 0, qr = 0;
    if (!(ls >> ql >> qr)) {
      bool blank = line.find_first_not_of(" \t\r") == std::string::npos;
      if (!blank) {
        std::fprintf(stderr, "%s:%zu: expected two vertex ids, skipped\n", path.c_str(),
                     line_no);
      }
      continue;
    }
    if (ql >= num_vertices || qr >= num_vertices) {
      std::fprintf(stderr, "%s:%zu: vertex id out of range (graph has %zu vertices), skipped\n",
                   path.c_str(), line_no, num_vertices);
      continue;
    }
    BatchLine bl;
    bl.query = {static_cast<bccs::VertexId>(ql), static_cast<bccs::VertexId>(qr)};
    std::string lane_token;
    if (ls >> lane_token) {
      if (!ParseLane(lane_token, &bl.lane)) {
        std::fprintf(stderr, "%s:%zu: unknown lane '%s' (interactive|bulk), skipped\n",
                     path.c_str(), line_no, lane_token.c_str());
        continue;
      }
      bl.has_lane = true;
    }
    out.push_back(bl);
  }
  return out;
}

/// Serving knobs shared by every mode, resolved once from the flags.
struct ServeConfig {
  bccs::QueryMethod method = bccs::QueryMethod::kLpBcc;
  bccs::Lane lane = bccs::Lane::kBulk;
  double deadline_seconds = 0;
  bccs::ApproxOptions approx;
  bool incremental_butterflies = true;
  std::size_t result_cache_entries = 0;
  std::size_t pair_cache_bytes = 0;
};

bccs::ServeOptions MakeServeOptions(const ServeConfig& cfg) {
  bccs::ServeOptions so;
  so.online.approx = cfg.approx;
  so.lp.approx = cfg.approx;
  so.mbcc.approx = cfg.approx;
  so.l2p.search.approx = cfg.approx;
  so.online.incremental_butterflies = cfg.incremental_butterflies;
  so.lp.incremental_butterflies = cfg.incremental_butterflies;
  so.mbcc.incremental_butterflies = cfg.incremental_butterflies;
  so.l2p.search.incremental_butterflies = cfg.incremental_butterflies;
  so.result_cache_entries = cfg.result_cache_entries;
  so.pair_cache_bytes = cfg.pair_cache_bytes;
  return so;
}

/// Per-phase time breakdown of a batch (or single query): where the search
/// spent its wall time, summed across queries.
void PrintPhaseBreakdown(const std::vector<bccs::SearchStats>& stats) {
  bccs::SearchStats sum;
  for (const auto& s : stats) sum += s;
  std::printf("phases: find_g0=%.4fs query_distance=%.4fs butterfly=%.4fs delta=%.4fs "
              "leader=%.4fs\n",
              sum.find_g0_seconds, sum.query_distance_seconds, sum.butterfly_seconds,
              sum.butterfly_delta_seconds, sum.leader_update_seconds);
  std::printf("counting: calls=%zu delta_rounds=%zu delta_fallbacks=%zu "
              "leader_rebuilds=%zu approx_checks=%zu\n",
              sum.butterfly_counting_calls, sum.delta_rounds, sum.delta_fallbacks,
              sum.leader_rebuilds, sum.approx_checks);
}

void PrintLaneSummaries(const bccs::BatchResult& result) {
  for (const bccs::LaneSummary& lane : result.lanes) {
    std::printf("lane %-11s %zu queries  sojourn p50=%.6fs p90=%.6fs p99=%.6fs\n",
                bccs::Name(lane.lane), lane.queries, lane.latency.p50_seconds,
                lane.latency.p90_seconds, lane.latency.p99_seconds);
  }
}

/// `index` must already be built/loaded for method "l2p" (never inside the
/// timed batch), so repeated batches measure query cost only.
int RunBatch(const bccs::LabeledGraph& graph, const bccs::BcIndex* index,
             const std::vector<BatchLine>& lines, const bccs::BccParams& params,
             const ServeConfig& cfg, std::size_t threads) {
  std::vector<bccs::QueryRequest> requests(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    requests[i].query = lines[i].query;
    requests[i].method = cfg.method;
    requests[i].lane = lines[i].has_lane ? lines[i].lane : cfg.lane;
    requests[i].deadline_seconds = cfg.deadline_seconds;
    requests[i].params = params;
  }
  bccs::BatchRunner runner(threads);
  bccs::ServeEngine engine(runner, graph, index, MakeServeOptions(cfg));
  bccs::BatchResult result = engine.Serve(requests);

  std::size_t non_empty = 0;
  for (const auto& c : result.communities) non_empty += c.Empty() ? 0 : 1;
  std::printf("batch: %zu queries, %zu threads, %zu non-empty, %zu timed out\n",
              requests.size(), result.threads_used, non_empty, result.timed_out);
  std::printf("wall=%.4fs qps=%.1f avg=%.6fs p50=%.6fs p90=%.6fs p99=%.6fs\n",
              result.latency.wall_seconds, result.latency.qps, result.latency.avg_seconds,
              result.latency.p50_seconds, result.latency.p90_seconds,
              result.latency.p99_seconds);
  PrintLaneSummaries(result);
  PrintPhaseBreakdown(result.stats);
  std::printf("workspace: bulk_inits=%llu buffer_acquires=%llu\n",
              static_cast<unsigned long long>(result.workspace_stats.bulk_inits),
              static_cast<unsigned long long>(result.workspace_stats.buffer_acquires));
  for (std::size_t i = 0; i < requests.size() && i < 10; ++i) {
    std::printf("  [%zu] (%u, %u) -> %zu members\n", i, lines[i].query.ql, lines[i].query.qr,
                result.communities[i].Size());
  }
  if (requests.size() > 10) std::printf("  ... (%zu more)\n", requests.size() - 10);
  return 0;
}

/// Single-request serve (the --ql/--qr and --queries paths): one request,
/// one worker — still the ServeEngine dispatch path.
bccs::BatchResult ServeOne(const bccs::LabeledGraph& graph, const bccs::BcIndex* index,
                           bccs::QueryRequest request, const ServeConfig& cfg) {
  bccs::BatchRunner runner(1);
  bccs::ServeEngine engine(runner, graph, index, MakeServeOptions(cfg));
  std::vector<bccs::QueryRequest> requests{std::move(request)};
  return engine.Serve(requests);
}

}  // namespace

int main(int argc, char** argv) {
  bccs::ArgParser args = bccs::ArgParser::Parse(argc, argv);
  auto unknown = args.UnknownFlags({"graph", "index-file", "ql", "qr", "queries", "k1", "k2",
                                    "b", "method", "verify", "help", "batch-file", "threads",
                                    "repeat", "lane", "deadline-ms", "approx-samples",
                                    "approx-threshold", "approx-adaptive", "updates-file",
                                    "result-cache", "cache-bytes",
                                    "no-incremental-butterflies"});
  if (!unknown.empty() || args.Has("help")) {
    for (const auto& u : unknown) std::fprintf(stderr, "unknown flag: --%s\n", u.c_str());
    PrintUsage();
    return args.Has("help") ? 0 : 2;
  }

  // Validate the serving flags before any graph is loaded.
  const std::string method_name = args.GetStringOr("method", "lp");
  ServeConfig cfg;
  if (method_name == "online") {
    cfg.method = bccs::QueryMethod::kOnlineBcc;
  } else if (method_name == "lp") {
    cfg.method = bccs::QueryMethod::kLpBcc;
  } else if (method_name == "l2p") {
    cfg.method = bccs::QueryMethod::kL2pBcc;
  } else {
    std::fprintf(stderr, "unknown method '%s' (valid methods: online, lp, l2p)\n",
                 method_name.c_str());
    PrintUsage();
    return 2;
  }
  const bool batch_mode = args.Has("batch-file") || args.Has("repeat");
  cfg.lane = batch_mode ? bccs::Lane::kBulk : bccs::Lane::kInteractive;
  if (args.Has("lane") && !ParseLane(args.GetStringOr("lane", ""), &cfg.lane)) {
    std::fprintf(stderr, "invalid --lane '%s' (valid lanes: interactive, bulk)\n",
                 args.GetStringOr("lane", "").c_str());
    return 2;
  }
  bool flags_valid = true;
  const std::int64_t deadline_ms = args.GetPositiveIntOr("deadline-ms", 0, &flags_valid);
  const std::int64_t approx_samples = args.GetPositiveIntOr("approx-samples", 0, &flags_valid);
  const std::int64_t approx_threshold =
      args.GetPositiveIntOr("approx-threshold", 4096, &flags_valid);
  if (!flags_valid) {
    std::fprintf(stderr,
                 "--deadline-ms, --approx-samples and --approx-threshold must be "
                 "positive integers\n");
    return 2;
  }
  // The count/parameter flags share one strict numeric contract: a value
  // that is not a clean integer in range is an invocation error, never a
  // silent fallback.
  bool counts_valid = true;
  const std::int64_t threads_raw = args.GetNonNegativeIntOr("threads", 0, &counts_valid);
  const std::int64_t k1_arg = args.GetNonNegativeIntOr("k1", 0, &counts_valid);
  const std::int64_t k2_arg = args.GetNonNegativeIntOr("k2", 0, &counts_valid);
  const std::int64_t b_arg = args.GetPositiveIntOr("b", 1, &counts_valid);
  const std::int64_t result_cache =
      args.GetNonNegativeIntOr("result-cache", 0, &counts_valid);
  const std::int64_t cache_bytes = args.GetNonNegativeIntOr("cache-bytes", 0, &counts_valid);
  if (!counts_valid) {
    std::fprintf(stderr,
                 "--threads, --k1, --k2, --result-cache and --cache-bytes must be "
                 "integers >= 0; --b must be an integer > 0\n");
    PrintUsage();
    return 2;
  }
  cfg.result_cache_entries = static_cast<std::size_t>(result_cache);
  cfg.pair_cache_bytes = static_cast<std::size_t>(cache_bytes);
  bool threads_clamped = false;
  const std::size_t threads = bccs::ArgParser::ClampThreadCount(threads_raw, &threads_clamped);
  if (threads_clamped) {
    std::fprintf(stderr, "note: --threads %lld clamped to hardware concurrency (%zu)\n",
                 static_cast<long long>(threads_raw), threads);
  }
  cfg.deadline_seconds = static_cast<double>(deadline_ms) / 1000.0;
  if (approx_samples > 0) {
    cfg.approx.enabled = true;
    cfg.approx.samples = static_cast<std::size_t>(approx_samples);
    cfg.approx.threshold = static_cast<std::size_t>(approx_threshold);
    cfg.approx.adaptive = args.Has("approx-adaptive");
  } else if (args.Has("approx-threshold") || args.Has("approx-adaptive")) {
    std::fprintf(stderr,
                 "warning: --approx-threshold/--approx-adaptive have no effect without "
                 "--approx-samples; approximate counting stays disabled\n");
  }
  cfg.incremental_butterflies = !args.Has("no-incremental-butterflies");

  auto graph_path = args.GetString("graph");
  auto index_path = args.GetString("index-file");
  if (!graph_path && !index_path) {
    PrintUsage();
    return 2;
  }

  // Resolve the graph (and, when snapshots are involved, the index) exactly
  // once, before any query or repeat loop runs.
  std::shared_ptr<const bccs::LabeledGraph> graph;
  bccs::SnapshotBundle bundle;
  if (index_path) {
    // Warm path first: a valid snapshot serves on its own, so the text
    // graph (potentially huge) is parsed only when the load fails and a
    // rebuild fallback is actually needed. When --graph is also given, its
    // stat() identity is checked against the snapshot's stamp, so a stale
    // snapshot is rejected (and rebuilt below) instead of silently winning.
    bccs::Timer load_timer;
    std::string load_error;
    bccs::SnapshotLoadOptions load_opts;
    bccs::SourceGraphInfo source;
    if (graph_path) {
      source = bccs::StatSourceGraph(*graph_path);
      load_opts.expected_source = source;
    }
    if (auto loaded = bccs::LoadSnapshot(*index_path, &load_error, load_opts)) {
      bundle = std::move(*loaded);
    } else if (!graph_path) {
      std::fprintf(stderr, "cannot load snapshot %s: %s\n", index_path->c_str(),
                   load_error.c_str());
      return 1;
    } else {
      std::string io_error;
      auto text_graph = bccs::ReadLabeledGraphFromFile(*graph_path, &io_error);
      if (!text_graph) {
        std::fprintf(stderr, "snapshot %s failed (%s) and cannot read graph %s: %s\n",
                     index_path->c_str(), load_error.c_str(), graph_path->c_str(),
                     io_error.c_str());
        return 1;
      }
      if (cfg.method == bccs::QueryMethod::kL2pBcc) {
        // The load above already failed; build and save without re-reading
        // the snapshot file.
        std::fprintf(stderr, "note: snapshot %s: %s; rebuilding\n", index_path->c_str(),
                     load_error.c_str());
        bundle = bccs::BuildSnapshotBundle(*text_graph, *index_path, &io_error, source);
        if (!io_error.empty()) {
          std::fprintf(stderr, "note: snapshot %s: %s\n", index_path->c_str(),
                       io_error.c_str());
        }
      } else {
        // lp/online/mBCC never touch the index: don't pay the all-pairs
        // butterfly build + snapshot write for them.
        std::fprintf(stderr, "note: snapshot %s: %s; serving from the text graph\n",
                     index_path->c_str(), load_error.c_str());
        bundle.graph = std::make_shared<const bccs::LabeledGraph>(std::move(*text_graph));
      }
    }
    graph = bundle.graph;
    if (bundle.index != nullptr) {
      std::printf("index: %s %s in %.6fs (%zu bytes, %zu cached pairs, "
                  "%zu replayed updates)\n",
                  bundle.loaded_from_snapshot ? "loaded from" : "built and saved to",
                  index_path->c_str(), load_timer.Seconds(), bundle.snapshot_bytes,
                  bundle.index->CachedPairCount(), bundle.replayed_updates);
    }
  } else {
    std::string io_error;
    auto text_graph = bccs::ReadLabeledGraphFromFile(*graph_path, &io_error);
    if (!text_graph) {
      std::fprintf(stderr, "cannot read graph from %s: %s\n", graph_path->c_str(),
                   io_error.c_str());
      return 1;
    }
    graph = std::make_shared<const bccs::LabeledGraph>(std::move(*text_graph));
  }
  std::printf("graph: %zu vertices, %zu edges, %zu labels\n", graph->NumVertices(),
              graph->NumEdges(), graph->NumLabels());

  // --updates-file: one UpdateRequest through the serving engine's update
  // path before any query runs, so everything below — single queries,
  // batches, repeats — observes the post-update epoch.
  std::shared_ptr<const bccs::BcIndex> updated_index;
  if (auto updates_path = args.GetString("updates-file")) {
    std::string up_error;
    auto updates = bccs::ReadEdgeUpdatesFromFile(*updates_path, &up_error);
    if (!updates) {
      std::fprintf(stderr, "cannot read updates from %s: %s\n", updates_path->c_str(),
                   up_error.c_str());
      return 1;
    }
    const std::size_t raw_count = updates->size();
    bccs::BatchRunner update_runner(1);
    bccs::ServeEngine update_engine(update_runner, *graph, bundle.index.get());
    bccs::UpdateRequest update_request;
    update_request.updates = std::move(*updates);
    std::vector<bccs::ServeItem> items;
    items.emplace_back(std::move(update_request));
    const bccs::BatchResult update_result = update_engine.Serve(items);
    const bccs::UpdateOutcome& outcome = update_result.updates[0];
    if (!outcome.applied) {
      std::fprintf(stderr, "cannot apply %s: %s\n", updates_path->c_str(),
                   outcome.error.c_str());
      return 1;
    }
    graph = update_engine.graph_ptr();
    if (bundle.index != nullptr) updated_index = update_engine.index_ptr();
    std::printf("updates: %zu applied (%zu inserts, %zu deletes net) in %.4fs; "
                "now %zu edges, serving epoch %llu\n",
                raw_count, outcome.inserts, outcome.deletes, outcome.seconds,
                graph->NumEdges(), static_cast<unsigned long long>(outcome.epoch));
  }

  const auto b = static_cast<std::uint64_t>(b_arg);

  // The l2p index is shared by every mode below; build it now (once) if the
  // snapshot machinery (or the update replay) did not already provide one.
  std::unique_ptr<bccs::BcIndex> local_index;
  const bccs::BcIndex* index =
      updated_index != nullptr ? updated_index.get() : bundle.index.get();
  if (cfg.method == bccs::QueryMethod::kL2pBcc && index == nullptr) {
    local_index = std::make_unique<bccs::BcIndex>(*graph);
    index = local_index.get();
  }

  // Batch modes run through the parallel engine and return early.
  const std::int64_t repeat_arg = args.GetIntOr("repeat", 0);
  if (args.Has("repeat") && repeat_arg <= 0) {
    std::fprintf(stderr, "--repeat must be an integer > 0\n");
    return 2;
  }
  const auto repeat = args.Has("repeat") ? static_cast<std::size_t>(repeat_arg) : 1;
  bccs::BccParams batch_params{static_cast<std::uint32_t>(k1_arg),
                               static_cast<std::uint32_t>(k2_arg), b};
  if (batch_mode && args.Has("verify")) {
    std::fprintf(stderr, "warning: --verify is not supported in batch mode and is ignored\n");
  }
  if (args.Has("batch-file")) {
    const std::string batch_path = args.GetStringOr("batch-file", "");
    bool opened = false;
    auto batch = ReadBatchFile(batch_path, graph->NumVertices(), &opened);
    if (!opened) {
      std::fprintf(stderr, "cannot read batch file %s\n", batch_path.c_str());
      return 2;
    }
    if (batch.empty()) {
      std::fprintf(stderr, "no queries in batch file\n");
      return 2;
    }
    if (repeat > 1) {  // tile the batch; the index above is NOT rebuilt per repeat
      const std::size_t base = batch.size();
      batch.reserve(base * repeat);
      for (std::size_t r = 1; r < repeat; ++r) {
        for (std::size_t i = 0; i < base; ++i) batch.push_back(batch[i]);
      }
    }
    return RunBatch(*graph, index, batch, batch_params, cfg, threads);
  }
  if (args.Has("repeat")) {
    auto ql = args.GetInt("ql");
    auto qr = args.GetInt("qr");
    if (!ql || !qr) {
      PrintUsage();
      return 2;
    }
    if (*ql < 0 || *qr < 0 ||
        static_cast<std::uint64_t>(*ql) >= graph->NumVertices() ||
        static_cast<std::uint64_t>(*qr) >= graph->NumVertices()) {
      std::fprintf(stderr, "query ids out of range (graph has %zu vertices)\n",
                   graph->NumVertices());
      return 2;
    }
    BatchLine bl;
    bl.query = {static_cast<bccs::VertexId>(*ql), static_cast<bccs::VertexId>(*qr)};
    std::vector<BatchLine> batch(repeat, bl);
    return RunBatch(*graph, index, batch, batch_params, cfg, threads);
  }

  bccs::BatchResult result;
  std::vector<bccs::VertexId> queries;

  if (args.Has("queries")) {
    queries = ParseIdList(args.GetStringOr("queries", ""));
    if (queries.size() < 2) {
      std::fprintf(stderr, "--queries needs at least two ids\n");
      return 2;
    }
    for (bccs::VertexId v : queries) {
      if (v >= graph->NumVertices()) {
        std::fprintf(stderr, "query ids out of range (graph has %zu vertices)\n",
                     graph->NumVertices());
        return 2;
      }
    }
    bccs::QueryRequest request;
    request.query = bccs::MbccQuery{queries};
    request.method = bccs::QueryMethod::kMbcc;
    request.lane = cfg.lane;
    request.deadline_seconds = cfg.deadline_seconds;
    request.mbcc_params.b = b;
    result = ServeOne(*graph, index, std::move(request), cfg);
  } else {
    auto ql = args.GetInt("ql");
    auto qr = args.GetInt("qr");
    if (!ql || !qr) {
      PrintUsage();
      return 2;
    }
    bccs::BccQuery q{static_cast<bccs::VertexId>(*ql), static_cast<bccs::VertexId>(*qr)};
    if (q.ql >= graph->NumVertices() || q.qr >= graph->NumVertices()) {
      std::fprintf(stderr, "query ids out of range (graph has %zu vertices)\n",
                   graph->NumVertices());
      return 2;
    }
    queries = {q.ql, q.qr};
    bccs::QueryRequest request;
    request.query = q;
    request.method = cfg.method;
    request.lane = cfg.lane;
    request.deadline_seconds = cfg.deadline_seconds;
    request.params = {static_cast<std::uint32_t>(k1_arg),
                      static_cast<std::uint32_t>(k2_arg), b};
    result = ServeOne(*graph, index, std::move(request), cfg);
  }

  const bccs::Community& community = result.communities[0];
  const bccs::SearchStats& stats = result.stats[0];
  if (stats.timed_out) {
    std::printf("deadline expired: returning best valid partial answer\n");
  }
  if (community.Empty()) {
    std::printf("no community found\n");
    return 1;
  }
  std::printf("community (%zu members):", community.Size());
  for (bccs::VertexId v : community.vertices) std::printf(" %u", v);
  std::printf("\nrounds=%zu butterfly_counting_calls=%zu approx_checks=%zu time=%.6fs\n",
              stats.rounds, stats.butterfly_counting_calls, stats.approx_checks,
              stats.total_seconds);
  PrintPhaseBreakdown(result.stats);

  if (args.Has("verify") && queries.size() == 2) {
    bccs::BccParams p{static_cast<std::uint32_t>(k1_arg),
                      static_cast<std::uint32_t>(k2_arg), b};
    // Resolve auto parameters the way the search did.
    bccs::SearchStats tmp;
    bccs::G0Result g0 =
        bccs::FindG0(*graph, bccs::BccQuery{queries[0], queries[1]}, p, &tmp);
    p.k1 = g0.k1;
    p.k2 = g0.k2;
    auto verdict =
        bccs::VerifyBcc(*graph, community, bccs::BccQuery{queries[0], queries[1]}, p);
    std::printf("verification: %s\n", bccs::ToString(verdict));
  }
  return 0;
}
