// bccs_query: run a butterfly-core community search on a graph file.
//
//   bccs_query --graph g.txt --ql 3 --qr 17 [--k1 0] [--k2 0] [--b 1]
//              [--method online|lp|l2p] [--verify]
//   bccs_query --graph g.txt --queries 3,17,42 --b 1      (multi-label mBCC)
//
// k = 0 means auto (query coreness). Prints the community and search stats.

#include <cstdio>
#include <string>
#include <vector>

#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "bcc/verify.h"
#include "graph/graph_io.h"
#include "tools/arg_parser.h"

namespace {

std::vector<bccs::VertexId> ParseIdList(const std::string& csv) {
  std::vector<bccs::VertexId> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) {
      out.push_back(static_cast<bccs::VertexId>(std::stoul(csv.substr(start, comma - start))));
    }
    start = comma + 1;
  }
  return out;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bccs_query --graph FILE (--ql ID --qr ID | --queries ID,ID[,ID...])\n"
               "                  [--k1 N] [--k2 N] [--b N] [--method online|lp|l2p]\n"
               "                  [--verify]\n");
}

}  // namespace

int main(int argc, char** argv) {
  bccs::ArgParser args = bccs::ArgParser::Parse(argc, argv);
  auto unknown = args.UnknownFlags(
      {"graph", "ql", "qr", "queries", "k1", "k2", "b", "method", "verify", "help"});
  if (!unknown.empty() || args.Has("help")) {
    for (const auto& u : unknown) std::fprintf(stderr, "unknown flag: --%s\n", u.c_str());
    PrintUsage();
    return args.Has("help") ? 0 : 2;
  }

  auto graph_path = args.GetString("graph");
  if (!graph_path) {
    PrintUsage();
    return 2;
  }
  auto graph = bccs::ReadLabeledGraphFromFile(*graph_path);
  if (!graph) {
    std::fprintf(stderr, "cannot read graph from %s\n", graph_path->c_str());
    return 1;
  }
  std::printf("graph: %zu vertices, %zu edges, %zu labels\n", graph->NumVertices(),
              graph->NumEdges(), graph->NumLabels());

  const auto b = static_cast<std::uint64_t>(args.GetIntOr("b", 1));
  const std::string method = args.GetStringOr("method", "lp");

  bccs::Community community;
  bccs::SearchStats stats;
  std::vector<bccs::VertexId> queries;

  if (args.Has("queries")) {
    queries = ParseIdList(args.GetStringOr("queries", ""));
    if (queries.size() < 2) {
      std::fprintf(stderr, "--queries needs at least two ids\n");
      return 2;
    }
    bccs::MbccQuery q{queries};
    bccs::MbccParams p;
    p.b = b;
    community = bccs::MbccSearch(*graph, q, p, bccs::LpBccOptions(), &stats);
  } else {
    auto ql = args.GetInt("ql");
    auto qr = args.GetInt("qr");
    if (!ql || !qr) {
      PrintUsage();
      return 2;
    }
    bccs::BccQuery q{static_cast<bccs::VertexId>(*ql), static_cast<bccs::VertexId>(*qr)};
    queries = {q.ql, q.qr};
    bccs::BccParams p{static_cast<std::uint32_t>(args.GetIntOr("k1", 0)),
                      static_cast<std::uint32_t>(args.GetIntOr("k2", 0)), b};
    if (method == "online") {
      community = bccs::OnlineBcc(*graph, q, p, &stats);
    } else if (method == "l2p") {
      bccs::BcIndex index(*graph);
      community = bccs::L2pBcc(*graph, index, q, p, {}, &stats);
    } else if (method == "lp") {
      community = bccs::LpBcc(*graph, q, p, &stats);
    } else {
      std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
      return 2;
    }
  }

  if (community.Empty()) {
    std::printf("no community found\n");
    return 1;
  }
  std::printf("community (%zu members):", community.Size());
  for (bccs::VertexId v : community.vertices) std::printf(" %u", v);
  std::printf("\nrounds=%zu butterfly_counting_calls=%zu time=%.6fs\n", stats.rounds,
              stats.butterfly_counting_calls, stats.total_seconds);

  if (args.Has("verify") && queries.size() == 2) {
    bccs::BccParams p{static_cast<std::uint32_t>(args.GetIntOr("k1", 0)),
                      static_cast<std::uint32_t>(args.GetIntOr("k2", 0)), b};
    // Resolve auto parameters the way the search did.
    bccs::SearchStats tmp;
    bccs::G0Result g0 =
        bccs::FindG0(*graph, bccs::BccQuery{queries[0], queries[1]}, p, &tmp);
    p.k1 = g0.k1;
    p.k2 = g0.k2;
    auto verdict =
        bccs::VerifyBcc(*graph, community, bccs::BccQuery{queries[0], queries[1]}, p);
    std::printf("verification: %s\n", bccs::ToString(verdict));
  }
  return 0;
}
