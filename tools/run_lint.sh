#!/usr/bin/env bash
# Static-analysis driver: clang-tidy over the first-party tree (using the
# compile_commands.json the `dev` preset exports) plus a clang-format dry
# run. Degrades gracefully — a missing tool is reported and skipped with
# exit 0 so the script is safe to call from environments that only carry
# gcc; CI installs both and runs this with LINT_STRICT=1, which instead
# fails when a tool is absent.
#
# usage: tools/run_lint.sh [paths...]      (default: src tools bench tests)
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-dev}"
strict="${LINT_STRICT:-0}"
status=0

cd "$repo_root"
if [ "$#" -gt 0 ]; then
  paths=("$@")
else
  paths=(src tools bench tests)
fi
mapfile -t sources < <(find "${paths[@]}" -name '*.cc' ! -path 'tests/fault_fs/*' | sort)
mapfile -t headers < <(find "${paths[@]}" -name '*.h' | sort)

missing() {
  if [ "$strict" = "1" ]; then
    echo "lint: $1 not found (strict mode)" >&2
    exit 1
  fi
  echo "lint: $1 not found; skipping (install it or use the CI lint job)"
}

if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "lint: $build_dir/compile_commands.json missing; run: cmake --preset dev" >&2
    exit 1
  fi
  echo "lint: clang-tidy over ${#sources[@]} files"
  clang-tidy -p "$build_dir" --quiet "${sources[@]}" || status=1
else
  missing clang-tidy
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "lint: clang-format check over $(( ${#sources[@]} + ${#headers[@]} )) files"
  clang-format --dry-run -Werror "${sources[@]}" "${headers[@]}" || status=1
else
  missing clang-format
fi

exit "$status"
