#!/usr/bin/env bash
# End-to-end ctest: generate a tiny graph, persist a BcIndex snapshot with
# bccs_build, and check that bccs_query serves identical answers from the
# text graph and from the snapshot (single-query and batch paths), that a
# corrupted snapshot is rejected, and that the serving-engine flags
# (--lane, --deadline-ms, --approx-samples) validate and behave: mixed-lane
# batches report per-lane percentiles, approx batches are deterministic
# across thread counts, and bad flag values are rejected.
#
# Registered under the ctest labels "e2e" and "sanitize" — the latter is the
# suite exercised in the ASan+UBSan preset (cmake --preset asan-ubsan).
#
# usage: tools/e2e_snapshot_test.sh BIN_DIR
set -euo pipefail

bin="${1:?usage: e2e_snapshot_test.sh BIN_DIR}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

"$bin/bccs_generate" --communities 4 --group-size 10 --labels 2 --seed 3 \
  --out "$tmp/g.txt" >/dev/null

"$bin/bccs_build" --graph "$tmp/g.txt" --out "$tmp/g.snap" >/dev/null \
  || fail "bccs_build failed"
[ -s "$tmp/g.snap" ] || fail "snapshot file missing or empty"

# Two query vertices of different labels (the first of each label group).
q1="$(awk '$1=="l" && $3==0 {print $2; exit}' "$tmp/g.txt")"
q2="$(awk '$1=="l" && $3==1 {print $2; exit}' "$tmp/g.txt")"
[ -n "$q1" ] && [ -n "$q2" ] || fail "could not pick query vertices"

run_query() { # $1: --graph/--index-file source args...
  "$bin/bccs_query" "$@" --ql "$q1" --qr "$q2" --method l2p \
    | grep -E '^(community|no community)' || true
}

from_graph="$(run_query --graph "$tmp/g.txt")"
from_snap="$(run_query --index-file "$tmp/g.snap")"
[ -n "$from_graph" ] || fail "no query output from the text-graph path"
[ "$from_graph" = "$from_snap" ] \
  || fail "snapshot answers differ: '$from_graph' vs '$from_snap'"

# Batch path: the snapshot-backed index is shared across worker threads.
printf '%s %s\n%s %s\n' "$q1" "$q2" "$q2" "$q1" > "$tmp/batch.txt"
batch_graph="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/batch.txt" \
  --method l2p --threads 2 --repeat 3 | grep -E '^  \[')"
batch_snap="$("$bin/bccs_query" --index-file "$tmp/g.snap" --batch-file "$tmp/batch.txt" \
  --method l2p --threads 2 --repeat 3 | grep -E '^  \[')"
[ -n "$batch_graph" ] || fail "no batch output"
[ "$batch_graph" = "$batch_snap" ] || fail "batch answers differ"

# --repeat 0 must be rejected like negative values, not run a zero-query batch.
if "$bin/bccs_query" --graph "$tmp/g.txt" --ql "$q1" --qr "$q2" --repeat 0 \
    >/dev/null 2>&1; then
  fail "--repeat 0 was accepted"
fi

# A snapshot must not silently serve a graph that changed on disk: editing
# the graph invalidates the source stamp, forcing a rebuild that restamps
# the snapshot.
printf '# edited after snapshot\n' >> "$tmp/g.txt"
"$bin/bccs_query" --graph "$tmp/g.txt" --index-file "$tmp/g.snap" \
  --ql "$q1" --qr "$q2" --method l2p >/dev/null 2>"$tmp/stale.err" \
  || fail "query with a stale snapshot failed"
grep -q "stale" "$tmp/stale.err" || fail "stale snapshot was not detected"
"$bin/bccs_query" --graph "$tmp/g.txt" --index-file "$tmp/g.snap" \
  --ql "$q1" --qr "$q2" --method l2p >/dev/null 2>"$tmp/restamp.err" \
  || fail "query with the restamped snapshot failed"
if grep -q "stale" "$tmp/restamp.err"; then
  fail "restamped snapshot still reported stale"
fi

# A corrupted snapshot must be rejected, not served.
cp "$tmp/g.snap" "$tmp/bad.snap"
printf '\x5a' | dd of="$tmp/bad.snap" bs=1 seek=100 conv=notrunc 2>/dev/null
if "$bin/bccs_query" --index-file "$tmp/bad.snap" --ql "$q1" --qr "$q2" \
    --method l2p >/dev/null 2>&1; then
  fail "corrupted snapshot was accepted"
fi

# --- Serving engine flags ---------------------------------------------------

# Unknown methods are rejected upfront with the list of valid ones.
if "$bin/bccs_query" --graph "$tmp/g.txt" --ql "$q1" --qr "$q2" \
    --method bogus >/dev/null 2>"$tmp/method.err"; then
  fail "unknown method was accepted"
fi
grep -q "valid methods" "$tmp/method.err" || fail "usage did not list valid methods"

# --deadline-ms / --approx-samples must be positive integers.
for bad in "--deadline-ms 0" "--deadline-ms -3" "--deadline-ms abc" \
           "--approx-samples 0" "--approx-samples xyz"; do
  # shellcheck disable=SC2086
  if "$bin/bccs_query" --graph "$tmp/g.txt" --ql "$q1" --qr "$q2" $bad \
      >/dev/null 2>&1; then
    fail "invalid flag value accepted: $bad"
  fi
done
if "$bin/bccs_query" --graph "$tmp/g.txt" --ql "$q1" --qr "$q2" \
    --lane sideways >/dev/null 2>&1; then
  fail "invalid lane was accepted"
fi

# Mixed-lane batch (per-line lane column) reports per-lane percentiles and
# serves every query within a generous deadline.
printf '%s %s interactive\n%s %s bulk\n%s %s\n' \
  "$q1" "$q2" "$q2" "$q1" "$q1" "$q2" > "$tmp/lanes.txt"
lanes_out="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 2 --deadline-ms 10000 --lane bulk)"
echo "$lanes_out" | grep -q "lane interactive" || fail "no interactive lane summary"
echo "$lanes_out" | grep -q "lane bulk" || fail "no bulk lane summary"
echo "$lanes_out" | grep -q "0 timed out" || fail "generous deadline timed out"

# Approx batches: same seed => identical answers across thread counts.
approx_1="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 1 --approx-samples 64 --approx-threshold 1 | grep -E '^  \[')"
approx_2="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 2 --approx-samples 64 --approx-threshold 1 | grep -E '^  \[')"
[ -n "$approx_1" ] || fail "no approx batch output"
[ "$approx_1" = "$approx_2" ] || fail "approx answers differ across thread counts"

echo "e2e snapshot test passed"
