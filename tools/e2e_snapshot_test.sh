#!/usr/bin/env bash
# End-to-end ctest: generate a tiny graph, persist a BcIndex snapshot with
# bccs_build, and check that bccs_query serves identical answers from the
# text graph and from the snapshot (single-query and batch paths), that a
# corrupted snapshot is rejected, that the serving-engine flags
# (--lane, --deadline-ms, --approx-samples) validate and behave (mixed-lane
# batches report per-lane percentiles, approx batches are deterministic
# across thread counts, bad flag values are rejected, and
# --no-incremental-butterflies answers bit-identically to the default
# incremental-counter runs across methods and thread counts), and that the
# dynamic
# update flow works: bccs_update appends a delta log that bccs_query
# replays (build -> update -> query-from-replayed-snapshot ==
# query-from-updated-text-graph), --updates-file applies a batch in-process,
# and invalid update batches are rejected. The bccs_serve socket front-end
# (--listen) is driven over a real loopback connection: pipelined
# query/update/query with request ids answer with per-connection epoch
# views matching bccs_query on the equivalent graphs, a reconnect resending
# an applied update id gets the kept ack replayed instead of re-applying,
# and SIGTERM drains admitted items, flushes response tails, and exits 0.
#
# Registered under the ctest labels "e2e" and "sanitize" — the latter is the
# suite exercised in the ASan+UBSan preset (cmake --preset asan-ubsan).
#
# When a fault-injection library is passed as the second argument (built as
# tests/fault_fs in non-sanitized configurations), the script finishes with
# the quick crash matrix — kill-at-every-durability-write recovery checks
# (the full matrix is the ctest labeled "crash").
#
# usage: tools/e2e_snapshot_test.sh BIN_DIR [FAULT_LIB]
set -euo pipefail

bin="${1:?usage: e2e_snapshot_test.sh BIN_DIR [FAULT_LIB]}"
fault_lib="${2:-}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

"$bin/bccs_generate" --communities 4 --group-size 10 --labels 2 --seed 3 \
  --out "$tmp/g.txt" >/dev/null

"$bin/bccs_build" --graph "$tmp/g.txt" --out "$tmp/g.snap" >/dev/null \
  || fail "bccs_build failed"
[ -s "$tmp/g.snap" ] || fail "snapshot file missing or empty"

# Two query vertices of different labels (the first of each label group).
q1="$(awk '$1=="l" && $3==0 {print $2; exit}' "$tmp/g.txt")"
q2="$(awk '$1=="l" && $3==1 {print $2; exit}' "$tmp/g.txt")"
[ -n "$q1" ] && [ -n "$q2" ] || fail "could not pick query vertices"

run_query() { # $1: --graph/--index-file source args...
  "$bin/bccs_query" "$@" --ql "$q1" --qr "$q2" --method l2p \
    | grep -E '^(community|no community)' || true
}

from_graph="$(run_query --graph "$tmp/g.txt")"
from_snap="$(run_query --index-file "$tmp/g.snap")"
[ -n "$from_graph" ] || fail "no query output from the text-graph path"
[ "$from_graph" = "$from_snap" ] \
  || fail "snapshot answers differ: '$from_graph' vs '$from_snap'"

# Batch path: the snapshot-backed index is shared across worker threads.
printf '%s %s\n%s %s\n' "$q1" "$q2" "$q2" "$q1" > "$tmp/batch.txt"
batch_graph="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/batch.txt" \
  --method l2p --threads 2 --repeat 3 | grep -E '^  \[')"
batch_snap="$("$bin/bccs_query" --index-file "$tmp/g.snap" --batch-file "$tmp/batch.txt" \
  --method l2p --threads 2 --repeat 3 | grep -E '^  \[')"
[ -n "$batch_graph" ] || fail "no batch output"
[ "$batch_graph" = "$batch_snap" ] || fail "batch answers differ"

# --repeat 0 must be rejected like negative values, not run a zero-query batch.
if "$bin/bccs_query" --graph "$tmp/g.txt" --ql "$q1" --qr "$q2" --repeat 0 \
    >/dev/null 2>&1; then
  fail "--repeat 0 was accepted"
fi

# A snapshot must not silently serve a graph that changed on disk: editing
# the graph invalidates the source stamp, forcing a rebuild that restamps
# the snapshot.
printf '# edited after snapshot\n' >> "$tmp/g.txt"
"$bin/bccs_query" --graph "$tmp/g.txt" --index-file "$tmp/g.snap" \
  --ql "$q1" --qr "$q2" --method l2p >/dev/null 2>"$tmp/stale.err" \
  || fail "query with a stale snapshot failed"
grep -q "stale" "$tmp/stale.err" || fail "stale snapshot was not detected"
"$bin/bccs_query" --graph "$tmp/g.txt" --index-file "$tmp/g.snap" \
  --ql "$q1" --qr "$q2" --method l2p >/dev/null 2>"$tmp/restamp.err" \
  || fail "query with the restamped snapshot failed"
if grep -q "stale" "$tmp/restamp.err"; then
  fail "restamped snapshot still reported stale"
fi

# A corrupted snapshot must be rejected, not served.
cp "$tmp/g.snap" "$tmp/bad.snap"
printf '\x5a' | dd of="$tmp/bad.snap" bs=1 seek=100 conv=notrunc 2>/dev/null
if "$bin/bccs_query" --index-file "$tmp/bad.snap" --ql "$q1" --qr "$q2" \
    --method l2p >/dev/null 2>&1; then
  fail "corrupted snapshot was accepted"
fi

# --- Serving engine flags ---------------------------------------------------

# Unknown methods are rejected upfront with the list of valid ones.
if "$bin/bccs_query" --graph "$tmp/g.txt" --ql "$q1" --qr "$q2" \
    --method bogus >/dev/null 2>"$tmp/method.err"; then
  fail "unknown method was accepted"
fi
grep -q "valid methods" "$tmp/method.err" || fail "usage did not list valid methods"

# --deadline-ms / --approx-samples must be positive integers; the count and
# parameter flags (--threads, --k1/--k2, --b, --result-cache, --cache-bytes)
# share the same strict numeric contract instead of silently falling back on
# garbage.
for bad in "--deadline-ms 0" "--deadline-ms -3" "--deadline-ms abc" \
           "--approx-samples 0" "--approx-samples xyz" \
           "--threads -1" "--threads abc" "--threads 1.5" \
           "--k1 -2" "--k2 xyz" "--b 0" "--b -1" "--b abc" \
           "--result-cache -1" "--result-cache abc" "--result-cache 1.5" \
           "--cache-bytes -5" "--cache-bytes xyz" "--cache-bytes 2.5"; do
  # shellcheck disable=SC2086
  if "$bin/bccs_query" --graph "$tmp/g.txt" --ql "$q1" --qr "$q2" $bad \
      >/dev/null 2>&1; then
    fail "invalid flag value accepted: $bad"
  fi
done

# A typo'd huge --threads is clamped to the hardware, not spawned.
"$bin/bccs_query" --graph "$tmp/g.txt" --ql "$q1" --qr "$q2" --repeat 2 \
  --threads 99999 >/dev/null 2>"$tmp/clamp.err" || fail "clamped thread count failed"
grep -q "clamped to hardware concurrency" "$tmp/clamp.err" \
  || fail "huge --threads was not clamped"
if "$bin/bccs_query" --graph "$tmp/g.txt" --ql "$q1" --qr "$q2" \
    --lane sideways >/dev/null 2>&1; then
  fail "invalid lane was accepted"
fi

# Mixed-lane batch (per-line lane column) reports per-lane percentiles and
# serves every query within a generous deadline.
printf '%s %s interactive\n%s %s bulk\n%s %s\n' \
  "$q1" "$q2" "$q2" "$q1" "$q1" "$q2" > "$tmp/lanes.txt"
lanes_out="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 2 --deadline-ms 10000 --lane bulk)"
echo "$lanes_out" | grep -q "lane interactive" || fail "no interactive lane summary"
echo "$lanes_out" | grep -q "lane bulk" || fail "no bulk lane summary"
echo "$lanes_out" | grep -q "0 timed out" || fail "generous deadline timed out"

# Approx batches: same seed => identical answers across thread counts.
approx_1="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 1 --approx-samples 64 --approx-threshold 1 | grep -E '^  \[')"
approx_2="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 2 --approx-samples 64 --approx-threshold 1 | grep -E '^  \[')"
[ -n "$approx_1" ] || fail "no approx batch output"
[ "$approx_1" = "$approx_2" ] || fail "approx answers differ across thread counts"

# Adaptive sampling keeps the same determinism guarantee: the per-round
# sample count is a pure function of the candidate size.
adaptive_1="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 1 --approx-samples 64 --approx-threshold 1 --approx-adaptive \
  | grep -E '^  \[')"
adaptive_2="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 2 --approx-samples 64 --approx-threshold 1 --approx-adaptive \
  | grep -E '^  \[')"
[ -n "$adaptive_1" ] || fail "no adaptive approx batch output"
[ "$adaptive_1" = "$adaptive_2" ] || fail "adaptive approx answers differ across threads"

# --- Incremental butterfly maintenance: --no-incremental-butterflies --------

# Flag matrix: for each method and thread count the answers with the
# incremental counter (the default) must equal the per-round-recount run.
for m in lp online; do
  for t in 1 2; do
    inc="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
      --threads "$t" --method "$m" | grep -E '^  \[')"
    rec="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
      --threads "$t" --method "$m" --no-incremental-butterflies \
      | grep -E '^  \[')"
    [ -n "$inc" ] || fail "no batch output (method $m, threads $t)"
    [ "$inc" = "$rec" ] \
      || fail "--no-incremental-butterflies changed answers (method $m, threads $t)"
  done
done

# Approx rounds mark the counter stale mid-query (forced fallback recounts);
# the answers still must not depend on the flag.
approx_inc="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 2 --approx-samples 64 --approx-threshold 1 | grep -E '^  \[')"
approx_rec="$("$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" \
  --threads 2 --approx-samples 64 --approx-threshold 1 \
  --no-incremental-butterflies | grep -E '^  \[')"
[ "$approx_inc" = "$approx_rec" ] \
  || fail "--no-incremental-butterflies changed answers under approx rounds"

# The batch summary carries the per-phase breakdown including the delta
# counter's time and round counters.
"$bin/bccs_query" --graph "$tmp/g.txt" --batch-file "$tmp/lanes.txt" --threads 1 \
  | grep -q '^phases: .*delta=' || fail "no per-phase breakdown in batch output"

# --- Dynamic graphs: delta log + --updates-file -----------------------------

# Delete one existing edge through bccs_update: the delta block is appended
# to the snapshot (no payload rewrite) and the updated graph written as text.
eu="$(awk '$1=="e" {print $2; exit}' "$tmp/g.txt")"
ev="$(awk '$1=="e" {print $3; exit}' "$tmp/g.txt")"
[ -n "$eu" ] && [ -n "$ev" ] || fail "could not pick an edge to delete"
printf -- '- %s %s\n' "$eu" "$ev" > "$tmp/updates.txt"
"$bin/bccs_update" --snapshot "$tmp/g.snap" --updates "$tmp/updates.txt" \
  --write-graph "$tmp/g2.txt" >/dev/null || fail "bccs_update failed"

# build -> update -> query-from-replayed-snapshot: the replayed snapshot
# must answer exactly like the updated text graph.
upd_snap="$(run_query --index-file "$tmp/g.snap")"
upd_graph="$(run_query --graph "$tmp/g2.txt")"
[ -n "$upd_graph" ] || fail "no output from the updated text graph"
[ "$upd_snap" = "$upd_graph" ] \
  || fail "replayed snapshot answers differ: '$upd_snap' vs '$upd_graph'"

# The delta block re-stamped the snapshot with g2.txt's identity, so the
# combined path accepts it without a rebuild.
"$bin/bccs_query" --graph "$tmp/g2.txt" --index-file "$tmp/g.snap" \
  --ql "$q1" --qr "$q2" --method l2p >/dev/null 2>"$tmp/upd_stamp.err" \
  || fail "query with the re-stamped updated snapshot failed"
if grep -qE "stale|rebuild" "$tmp/upd_stamp.err"; then
  fail "re-stamped updated snapshot was not accepted"
fi

# --updates-file: applying the batch in-process over the original graph
# must answer exactly like the updated text graph.
upd_flag="$("$bin/bccs_query" --graph "$tmp/g.txt" --updates-file "$tmp/updates.txt" \
  --ql "$q1" --qr "$q2" --method lp | grep -E '^(community|no community)')" || true
upd_graph_lp="$("$bin/bccs_query" --graph "$tmp/g2.txt" --ql "$q1" --qr "$q2" \
  --method lp | grep -E '^(community|no community)')" || true
[ -n "$upd_flag" ] || fail "no output from --updates-file"
[ "$upd_flag" = "$upd_graph_lp" ] \
  || fail "--updates-file answers differ: '$upd_flag' vs '$upd_graph_lp'"

# Re-inserting the deleted edge chains a second delta block; the replayed
# state is back to the original graph and answers match the very first run.
printf -- '+ %s %s\n' "$eu" "$ev" > "$tmp/updates2.txt"
"$bin/bccs_update" --snapshot "$tmp/g.snap" --updates "$tmp/updates2.txt" \
  >/dev/null || fail "second bccs_update failed"
roundtrip="$(run_query --index-file "$tmp/g.snap")"
[ "$roundtrip" = "$from_graph" ] \
  || fail "delete+insert round trip changed answers: '$roundtrip' vs '$from_graph'"

# Invalid update batches are rejected with the offending update named.
printf -- '- 0 0\n' > "$tmp/bad_updates.txt"
if "$bin/bccs_update" --snapshot "$tmp/g.snap" --updates "$tmp/bad_updates.txt" \
    >/dev/null 2>"$tmp/bad_upd.err"; then
  fail "invalid update batch was accepted by bccs_update"
fi
grep -q "update #0" "$tmp/bad_upd.err" || fail "invalid update not named"
if "$bin/bccs_query" --graph "$tmp/g.txt" --updates-file "$tmp/bad_updates.txt" \
    --ql "$q1" --qr "$q2" >/dev/null 2>&1; then
  fail "invalid update batch was accepted by bccs_query"
fi

# --compact collapses the delta log into a rewritten payload; answers hold.
"$bin/bccs_update" --snapshot "$tmp/g.snap" --updates "$tmp/updates.txt" \
  --compact >/dev/null || fail "bccs_update --compact failed"
compacted="$(run_query --index-file "$tmp/g.snap")"
[ "$compacted" = "$upd_graph" ] \
  || fail "compacted snapshot answers differ: '$compacted' vs '$upd_graph'"

# --- Background compaction: --auto-compact ----------------------------------

# A fresh snapshot of the updated graph; two appends with --auto-compact 1:
# the first leaves one block, the second (now over the threshold) folds the
# log automatically via the same tmp+rename rewrite as --compact.
"$bin/bccs_build" --graph "$tmp/g2.txt" --out "$tmp/g3.snap" >/dev/null \
  || fail "bccs_build for auto-compact failed"
e2u="$(awk '$1=="e" {print $2}' "$tmp/g2.txt" | sed -n 2p)"
e2v="$(awk '$1=="e" {print $3}' "$tmp/g2.txt" | sed -n 2p)"
[ -n "$e2u" ] && [ -n "$e2v" ] || fail "could not pick a second edge"
printf -- '- %s %s\n' "$e2u" "$e2v" > "$tmp/ac1.txt"
printf -- '+ %s %s\n' "$e2u" "$e2v" > "$tmp/ac2.txt"

if "$bin/bccs_update" --snapshot "$tmp/g3.snap" --updates "$tmp/ac1.txt" \
    --auto-compact 0 >/dev/null 2>&1; then
  fail "--auto-compact 0 was accepted"
fi
if "$bin/bccs_update" --snapshot "$tmp/g3.snap" --updates "$tmp/ac1.txt" \
    --compact --auto-compact 2 >/dev/null 2>&1; then
  fail "--compact with --auto-compact was accepted"
fi

ac1_out="$("$bin/bccs_update" --snapshot "$tmp/g3.snap" --updates "$tmp/ac1.txt" \
  --auto-compact 1)" || fail "first --auto-compact update failed"
echo "$ac1_out" | grep -q "compacted" && fail "auto-compact fired below the threshold"
ac2_out="$("$bin/bccs_update" --snapshot "$tmp/g3.snap" --updates "$tmp/ac2.txt" \
  --auto-compact 1)" || fail "second --auto-compact update failed"
echo "$ac2_out" | grep -q "compacted snapshot (auto)" \
  || fail "auto-compact did not fire above the threshold"
# The folded snapshot has an empty log chain and serves the delete+insert
# round trip (== g2) correctly.
ac3_out="$("$bin/bccs_update" --snapshot "$tmp/g3.snap" --updates "$tmp/ac1.txt" \
  --auto-compact 8)" || fail "post-compaction update failed"
echo "$ac3_out" | grep -q "0 delta blocks" \
  || fail "auto-compacted snapshot still reports delta blocks"

# --- Streaming serve loop: bccs_serve ---------------------------------------

# A mixed stream over the original graph: the pre-update query runs in
# epoch 1, the update publishes epoch 2 (prepared off-thread against a
# pinned copy-on-write epoch), and the post-update queries observe it.
printf 'q %s %s interactive\nu - %s %s\nq %s %s bulk\nq %s %s\n' \
  "$q1" "$q2" "$eu" "$ev" "$q1" "$q2" "$q2" "$q1" > "$tmp/stream.txt"
serve_out="$("$bin/bccs_serve" --graph "$tmp/g.txt" --stream "$tmp/stream.txt" \
  --threads 2 --bulk-cap 1)" || fail "bccs_serve failed"
echo "$serve_out" | grep -q '^\[0\] epoch=1 query' || fail "pre-update query not in epoch 1"
echo "$serve_out" | grep -q '^\[1\] epoch=2 update -' || fail "update did not publish epoch 2"
echo "$serve_out" | grep -q '^\[2\] epoch=2 query' || fail "post-update query not in epoch 2"
echo "$serve_out" | grep -q 'final epoch 2' || fail "final epoch wrong"
echo "$serve_out" | grep -q 'lane interactive' || fail "no interactive lane summary"

# The post-update answer equals serving the updated text graph directly.
serve_members="$(echo "$serve_out" | sed -n 's/^\[2\].*-> \([0-9]*\) members.*/\1/p')"
graph_members="$("$bin/bccs_query" --graph "$tmp/g2.txt" --ql "$q1" --qr "$q2" \
  --method lp | sed -n 's/^community (\([0-9]*\) members.*/\1/p')"
[ -n "$serve_members" ] || fail "no member count in bccs_serve output"
[ "$serve_members" = "$graph_members" ] \
  || fail "streamed post-update answer differs: $serve_members vs $graph_members"

# Malformed stream lines and invalid numeric flags are rejected upfront.
printf 'x nonsense\n' > "$tmp/bad_stream.txt"
if "$bin/bccs_serve" --graph "$tmp/g.txt" --stream "$tmp/bad_stream.txt" \
    >/dev/null 2>&1; then
  fail "malformed stream line was accepted"
fi
if "$bin/bccs_serve" --graph "$tmp/g.txt" --stream "$tmp/stream.txt" \
    --bulk-cap -1 >/dev/null 2>&1; then
  fail "negative --bulk-cap was accepted"
fi
for bad in "--result-cache -1" "--result-cache abc" "--cache-bytes -5" \
           "--cache-bytes 1.5"; do
  # shellcheck disable=SC2086
  if "$bin/bccs_serve" --graph "$tmp/g.txt" --stream "$tmp/stream.txt" $bad \
      >/dev/null 2>&1; then
    fail "invalid cache flag value accepted by bccs_serve: $bad"
  fi
done

# A cached serve run answers identically to the uncached one above and
# reports its hit/miss counters in the shutdown summary.
cached_out="$("$bin/bccs_serve" --graph "$tmp/g.txt" --stream "$tmp/stream.txt" \
  --result-cache 64 --method lp)" || fail "cached bccs_serve failed"
cached_members="$(printf '%s\n' "$cached_out" \
  | sed -n 's/^\[2\].*-> \([0-9]*\) members.*/\1/p')"
[ "$cached_members" = "$serve_members" ] \
  || fail "cached streamed answer differs: $cached_members vs $serve_members"
printf '%s\n' "$cached_out" | grep -q "^cache: result " \
  || fail "cached bccs_serve printed no cache summary"

# bccs_serve takes the flag matrix too: a per-round-recount serve run must
# stream the same answers as the default incremental run above.
norec_out="$("$bin/bccs_serve" --graph "$tmp/g.txt" --stream "$tmp/stream.txt" \
  --no-incremental-butterflies)" || fail "bccs_serve --no-incremental-butterflies failed"
norec_members="$(printf '%s\n' "$norec_out" \
  | sed -n 's/^\[2\].*-> \([0-9]*\) members.*/\1/p')"
[ "$norec_members" = "$serve_members" ] \
  || fail "--no-incremental-butterflies changed streamed answers: $norec_members vs $serve_members"

# --- Socket front-end: bccs_serve --listen -----------------------------------

# Bad-flag matrix: server flags validate strictly and in combination.
for bad_args in "--listen abc" "--listen -1" "--listen 65536" \
                "--listen 0 --max-connections 0" \
                "--listen 0 --max-connections -2" \
                "--listen 0 --max-connections abc" \
                "--max-connections 4" \
                "--listen 0 --stream $tmp/stream.txt"; do
  # shellcheck disable=SC2086
  if "$bin/bccs_serve" --graph "$tmp/g.txt" $bad_args >/dev/null 2>&1; then
    fail "invalid --listen flag combination accepted: $bad_args"
  fi
done

# Live server on an ephemeral port, driven by a scripted bash /dev/tcp
# client: pipelined query/update/query with request ids, answers matching
# bccs_query on the equivalent graphs, then idempotent-retry and SIGTERM
# drain checks.
"$bin/bccs_serve" --graph "$tmp/g.txt" --listen 0 --threads 2 \
  > "$tmp/serve_net.log" 2>&1 &
net_pid=$!
net_port=""
for _ in $(seq 1 100); do
  net_port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$tmp/serve_net.log")"
  [ -n "$net_port" ] && break
  sleep 0.1
done
[ -n "$net_port" ] || { kill "$net_pid" 2>/dev/null; fail "server printed no port"; }

exec 9<>"/dev/tcp/127.0.0.1/$net_port" || fail "cannot connect to $net_port"
printf 'ping\nq %s %s interactive id=1\nu - %s %s id=2\nq %s %s id=3\nquit\n' \
  "$q1" "$q2" "$eu" "$ev" "$q1" "$q2" >&9
net_resp="$(timeout 60 cat <&9)" || fail "no response from the socket server"
exec 9<&- 9>&- || true
echo "$net_resp" | grep -q '^pong$' || fail "no pong: $net_resp"
echo "$net_resp" | grep -q '^ok 1 q epoch=1 ' || fail "pre-update query wrong: $net_resp"
echo "$net_resp" | grep -q '^ok 2 u epoch=2 +0 -1$' || fail "update ack wrong: $net_resp"
echo "$net_resp" | grep -q '^ok 3 q epoch=2 ' || fail "post-update query wrong: $net_resp"
# The post-update community size equals querying the updated text graph.
net_members="$(echo "$net_resp" | sed -n 's/^ok 3 q epoch=2 n=\([0-9]*\) .*/\1/p')"
[ "$net_members" = "$graph_members" ] \
  || fail "socket answer differs from bccs_query: $net_members vs $graph_members"

# Idempotent retry: a reconnect resending the applied update's id replays
# the kept ack bit-identically — it must NOT re-apply (a re-executed delete
# of the now-missing edge would answer "rej").
exec 9<>"/dev/tcp/127.0.0.1/$net_port" || fail "cannot reconnect"
printf 'u - %s %s id=2\nquit\n' "$eu" "$ev" >&9
retry_resp="$(timeout 60 cat <&9)" || fail "no response to the retried update"
exec 9<&- 9>&- || true
echo "$retry_resp" | grep -q '^ok 2 u epoch=2 +0 -1$' \
  || fail "retried update id was not replayed: $retry_resp"

# SIGTERM: drain admitted items, flush tails, exit 0 with the summaries.
kill -TERM "$net_pid"
net_rc=0
wait "$net_pid" || net_rc=$?
[ "$net_rc" -eq 0 ] || fail "--listen SIGTERM exit code $net_rc"
grep -q 'signal 15: drained' "$tmp/serve_net.log" || fail "no drain line in server log"
grep -q '^net: 2 connections accepted' "$tmp/serve_net.log" \
  || fail "no net summary in server log"
grep -q 'replayed' "$tmp/serve_net.log" || fail "no retry summary in server log"
grep -q '^served 3 items (1 updates, 1 applied)' "$tmp/serve_net.log" \
  || fail "wrong served summary: $(grep '^served' "$tmp/serve_net.log")"
grep -q 'final epoch 2' "$tmp/serve_net.log" \
  || fail "retry double-applied: $(grep '^served' "$tmp/serve_net.log")"

# --- Crash-safe durability: changelog append, restart replay, fault matrix --

# A durable serve run appends its applied update to a rotated changelog
# segment; a restart replays it and answers from the recovered state.
"$bin/bccs_build" --graph "$tmp/g.txt" --out "$tmp/g4.snap" >/dev/null \
  || fail "bccs_build for durability failed"
printf 'u - %s %s\nq %s %s\n' "$eu" "$ev" "$q1" "$q2" > "$tmp/dstream.txt"
dur_out="$("$bin/bccs_serve" --index-file "$tmp/g4.snap" --stream "$tmp/dstream.txt" \
  --fsync every-append --segment-blocks 1 --threads 2)" \
  || fail "durable bccs_serve failed"
echo "$dur_out" | grep -q 'durable: 1 updates appended' \
  || fail "durable serve summary missing"
ls "$tmp"/g4.snap.log.* >/dev/null 2>&1 || fail "no changelog segment written"

printf 'q %s %s\n' "$q1" "$q2" > "$tmp/dstream2.txt"
re_out="$("$bin/bccs_serve" --index-file "$tmp/g4.snap" --stream "$tmp/dstream2.txt" \
  --threads 1)" || fail "restart bccs_serve failed"
echo "$re_out" | grep -q 'recovery: 1 updates replayed' \
  || fail "restart did not replay the changelog"
re_members="$(echo "$re_out" | sed -n 's/^\[0\].*-> \([0-9]*\) members.*/\1/p')"
[ "$re_members" = "$graph_members" ] \
  || fail "recovered answer differs: $re_members vs $graph_members"

# Durability flags demand a writable snapshot to append to.
if "$bin/bccs_serve" --graph "$tmp/g.txt" --stream "$tmp/dstream2.txt" \
    --fsync every-append >/dev/null 2>&1; then
  fail "--fsync without --index-file was accepted"
fi

# Quick fault-injection matrix: kill bccs_update at durability write points
# and check zero acked loss + clean-prefix recovery. Skipped in sanitized
# builds (no interposer library); `ctest -L crash` runs the full matrix.
if [ -n "$fault_lib" ] && [ -f "$fault_lib" ]; then
  script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
  "$script_dir/../tests/fault_fs/crash_matrix.sh" "$bin" "$fault_lib" quick \
    >/dev/null || fail "quick crash matrix failed"
fi

echo "e2e snapshot test passed"
