// bccs_update: apply an edge-update batch to a persisted snapshot.
//
//   bccs_update --snapshot g.snap --updates u.txt [--graph g.txt]
//               [--compact] [--auto-compact N] [--write-graph out.txt]
//               [--no-verify]
//
// Loads the snapshot (replaying any delta log already appended), validates
// the update batch against that state, and persists the batch:
//
//   default          appends one delta block to the snapshot file — the
//                    base payload is not rewritten; the next load replays
//                    the log through the dynamic-graph layer
//                    (graph/graph_delta.h, BcIndex::ApplyUpdates).
//   --compact        rewrites the whole snapshot from the updated in-memory
//                    state instead, collapsing the delta log.
//   --auto-compact N background compaction policy: append as usual, but
//                    once the log chain exceeds N blocks fold it into the
//                    base payload (the same tmp+rename rewrite as
//                    --compact), so replay cost stays bounded without an
//                    operator-driven compaction step.
//
// Re-stamping: --graph names the text graph file that reflects the
// POST-update graph; its size/mtime is stamped so bccs_query --graph
// accepts the snapshot as fresh. --write-graph FILE writes the updated
// graph there as text (and stamps it when --graph is absent). Without
// either, the snapshot is stamped "unknown source" (staleness checking
// disabled).
//
// Unless --no-verify is given, the tool re-loads the snapshot and checks
// the replayed state against the in-memory updated index.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bcc/bc_index.h"
#include "eval/timer.h"
#include "graph/graph_delta.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "tools/arg_parser.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bccs_update --snapshot FILE --updates FILE [--graph FILE]\n"
               "                   [--compact] [--auto-compact N] [--write-graph FILE]\n"
               "                   [--no-verify]\n");
}

bool VerifyReload(const bccs::LabeledGraph& updated, const bccs::BcIndex& repaired,
                  const std::string& path) {
  std::string error;
  auto reloaded = bccs::LoadSnapshot(path, &error);
  if (!reloaded) {
    std::fprintf(stderr, "verify: reload failed: %s\n", error.c_str());
    return false;
  }
  const bccs::LabeledGraph& rg = *reloaded->graph;
  if (rg.NumVertices() != updated.NumVertices() || rg.NumEdges() != updated.NumEdges() ||
      rg.NumLabels() != updated.NumLabels()) {
    std::fprintf(stderr, "verify: graph shape mismatch after reload\n");
    return false;
  }
  for (bccs::VertexId v = 0; v < updated.NumVertices(); ++v) {
    if (rg.LabelOf(v) != updated.LabelOf(v) ||
        reloaded->index->Coreness(v) != repaired.Coreness(v)) {
      std::fprintf(stderr, "verify: vertex %u disagrees after reload\n", v);
      return false;
    }
    const auto a = updated.Neighbors(v);
    const auto b = rg.Neighbors(v);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
      std::fprintf(stderr, "verify: adjacency of vertex %u disagrees after reload\n", v);
      return false;
    }
  }
  if (reloaded->index->CachedPairCount() != repaired.CachedPairCount()) {
    std::fprintf(stderr, "verify: cached pair count mismatch after reload\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bccs::ArgParser args = bccs::ArgParser::Parse(argc, argv);
  auto unknown = args.UnknownFlags({"snapshot", "updates", "graph", "compact", "auto-compact",
                                    "write-graph", "no-verify", "help"});
  if (!unknown.empty() || args.Has("help")) {
    for (const auto& u : unknown) std::fprintf(stderr, "unknown flag: --%s\n", u.c_str());
    PrintUsage();
    return args.Has("help") ? 0 : 2;
  }
  auto snapshot_path = args.GetString("snapshot");
  auto updates_path = args.GetString("updates");
  if (!snapshot_path || !updates_path) {
    PrintUsage();
    return 2;
  }
  bool flags_valid = true;
  const std::int64_t auto_compact = args.GetPositiveIntOr("auto-compact", 0, &flags_valid);
  if (!flags_valid) {
    std::fprintf(stderr, "--auto-compact must be a positive integer (block count)\n");
    PrintUsage();
    return 2;
  }
  if (args.Has("compact") && args.Has("auto-compact")) {
    std::fprintf(stderr, "--compact and --auto-compact are mutually exclusive\n");
    PrintUsage();
    return 2;
  }

  bccs::Timer load_timer;
  std::string error;
  auto bundle = bccs::LoadSnapshot(*snapshot_path, &error);
  if (!bundle) {
    std::fprintf(stderr, "cannot load snapshot %s: %s\n", snapshot_path->c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("snapshot: %zu vertices, %zu edges, %zu cached pairs, %zu replayed updates "
              "in %zu delta blocks (loaded in %.4fs)\n",
              bundle->graph->NumVertices(), bundle->graph->NumEdges(),
              bundle->index->CachedPairCount(), bundle->replayed_updates,
              bundle->delta_blocks, load_timer.Seconds());

  auto updates = bccs::ReadEdgeUpdatesFromFile(*updates_path, &error);
  if (!updates) {
    std::fprintf(stderr, "cannot read updates from %s: %s\n", updates_path->c_str(),
                 error.c_str());
    return 1;
  }
  const auto delta = bccs::BuildGraphDelta(*bundle->graph, *updates, &error);
  if (!delta) {
    std::fprintf(stderr, "invalid update batch: %s\n", error.c_str());
    return 1;
  }

  // Apply in memory: needed for --compact / --write-graph / verify, and it
  // reports what the incremental repair did.
  bccs::Timer apply_timer;
  const bccs::LabeledGraph updated = bccs::ApplyGraphDelta(*bundle->graph, *delta);
  bccs::UpdateRepairStats repair;
  const auto repaired = bundle->index->ApplyUpdates(updated, *delta, {}, &repair);
  std::printf("updates: %zu (%zu inserts, %zu deletes net) applied in %.4fs\n",
              updates->size(), delta->inserts.size(), delta->deletes.size(),
              apply_timer.Seconds());
  std::printf("repair: labels %zu incremental / %zu rebuilt (%zu passes), "
              "pairs %zu incremental / %zu recounted (%zu cross edges)\n",
              repair.labels_incremental, repair.labels_rebuilt, repair.core_passes,
              repair.pairs_incremental, repair.pairs_recounted, repair.cross_edges_applied);

  // The re-stamp source: the text graph reflecting the post-update state.
  auto write_graph = args.GetString("write-graph");
  if (write_graph) {
    if (!bccs::WriteLabeledGraphToFile(updated, *write_graph)) {
      std::fprintf(stderr, "cannot write updated graph to %s\n", write_graph->c_str());
      return 1;
    }
    std::printf("wrote updated graph to %s\n", write_graph->c_str());
  }
  bccs::SourceGraphInfo source;  // unknown unless a post-update graph file exists
  if (auto graph_path = args.GetString("graph")) {
    source = bccs::StatSourceGraph(*graph_path);
  } else if (write_graph) {
    source = bccs::StatSourceGraph(*write_graph);
  }

  // Write-then-rename: the loaded bundle's arrays may be zero-copy views
  // over the snapshot file itself (mmap), so rewriting it in place would
  // overwrite the data being serialized. The rename also keeps a reader
  // that races the compaction on a consistent file.
  auto compact_now = [&](const char* why) -> bool {
    bccs::Timer save_timer;
    const std::string tmp_path = *snapshot_path + ".compact.tmp";
    if (!bccs::SaveSnapshot(*repaired, tmp_path, &error, source)) {
      std::fprintf(stderr, "cannot rewrite snapshot: %s\n", error.c_str());
      return false;
    }
    if (std::rename(tmp_path.c_str(), snapshot_path->c_str()) != 0) {
      std::fprintf(stderr, "cannot replace %s with the compacted snapshot\n",
                   snapshot_path->c_str());
      std::remove(tmp_path.c_str());
      return false;
    }
    std::printf("compacted snapshot (%s) rewritten to %s in %.4fs\n", why,
                snapshot_path->c_str(), save_timer.Seconds());
    return true;
  };

  if (args.Has("compact")) {
    if (!compact_now("requested")) return 1;
  } else {
    bccs::Timer append_timer;
    if (!bccs::AppendDeltaBlock(*snapshot_path, *updates, source, &error)) {
      std::fprintf(stderr, "cannot append delta block: %s\n", error.c_str());
      return 1;
    }
    std::printf("delta block (%zu updates) appended to %s in %.4fs\n", updates->size(),
                snapshot_path->c_str(), append_timer.Seconds());
    // Background compaction policy: once the log chain exceeds the
    // threshold, fold it into the base payload — the repaired in-memory
    // state is exactly the replayed state the next loader would build.
    const std::size_t blocks_now = bundle->delta_blocks + 1;
    if (auto_compact > 0 && blocks_now > static_cast<std::size_t>(auto_compact)) {
      std::printf("delta log at %zu blocks exceeds --auto-compact %lld\n", blocks_now,
                  static_cast<long long>(auto_compact));
      if (!compact_now("auto")) return 1;
    }
  }

  if (!args.Has("no-verify")) {
    bccs::Timer verify_timer;
    if (!VerifyReload(updated, *repaired, *snapshot_path)) return 1;
    std::printf("verify: snapshot reload matches the updated index (%.4fs)\n",
                verify_timer.Seconds());
  }
  return 0;
}
