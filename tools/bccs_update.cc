// bccs_update: apply an edge-update batch to a persisted snapshot.
//
//   bccs_update --snapshot g.snap --updates u.txt [--graph g.txt]
//               [--compact] [--auto-compact N] [--write-graph out.txt]
//               [--no-verify]
//               [--changelog] [--fsync none|on-rotation|every-append]
//               [--segment-blocks N] [--compact-threshold N]
//               [--recover-only] [--ack-file FILE] [--validate]
//
// Loads the snapshot — recovering it first: a leftover compaction temp file
// is removed, a torn in-file delta tail is truncated to the last complete
// block, stale (already-folded) changelog segments are deleted, and a torn
// changelog tail is truncated to the last complete record — replays the
// delta log AND the rotated changelog segments, validates the update batch
// against that state, and persists the batch:
//
//   default          appends one delta block to the snapshot file — the
//                    base payload is not rewritten; the next load replays
//                    the log through the dynamic-graph layer
//                    (graph/graph_delta.h, BcIndex::ApplyUpdates).
//   --changelog      appends one record to the rotated changelog next to
//                    the snapshot (graph/changelog.h) instead: crash-safe
//                    per --fsync, rotated into sealed segments every
//                    --segment-blocks records. A zero exit IS the durable
//                    acknowledgment (durable per the policy). This mode is
//                    also selected automatically once segments exist —
//                    mixing in-file appends after segments would replay
//                    out of order.
//   --compact        folds everything into a new base payload via fsync'd
//                    tmp + rename + directory fsync (in changelog mode:
//                    seal + fold + drop segments, advancing the watermark;
//                    idempotent across crashes).
//   --auto-compact N legacy-chain compaction policy: append as usual, but
//                    once the in-file chain exceeds N blocks fold it.
//                    (Changelog mode: use --compact-threshold instead.)
//   --compact-threshold N
//                    changelog compaction policy: fold once N sealed
//                    segments have accumulated.
//
// --recover-only performs the recovery + replay and exits without reading
// updates (what bccs_serve does at startup, as a standalone step). After a
// durable changelog append, --ack-file FILE appends one fsync'd
// "acked <count>" line there — the fault-injection harness reads it back
// to know how many updates were acknowledged before a crash.
//
// Re-stamping: --graph names the text graph file that reflects the
// POST-update graph; its size/mtime is stamped so bccs_query --graph
// accepts the snapshot as fresh. --write-graph FILE writes the updated
// graph there as text (and stamps it when --graph is absent). Without
// either, the snapshot is stamped "unknown source" (staleness checking
// disabled).
//
// Unless --no-verify is given, the tool re-loads the snapshot and checks
// the replayed state against the in-memory updated index. --validate runs
// the deep structural audits (common/validate.h) on the updated graph and
// index, plus the changelog-chain audit, before exiting.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bcc/bc_index.h"
#include "common/validate.h"
#include "eval/timer.h"
#include "graph/changelog.h"
#include "graph/compactor.h"
#include "graph/graph_delta.h"
#include "graph/graph_io.h"
#include "graph/posix_io.h"
#include "graph/snapshot.h"
#include "tools/arg_parser.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bccs_update --snapshot FILE --updates FILE [--graph FILE]\n"
               "                   [--compact] [--auto-compact N] [--write-graph FILE]\n"
               "                   [--no-verify] [--changelog]\n"
               "                   [--fsync none|on-rotation|every-append]\n"
               "                   [--segment-blocks N] [--compact-threshold N]\n"
               "                   [--recover-only] [--ack-file FILE] [--validate]\n");
}

bool VerifyReload(const bccs::LabeledGraph& updated, const bccs::BcIndex& repaired,
                  const std::string& path) {
  std::string error;
  auto reloaded = bccs::LoadSnapshot(path, &error);
  if (!reloaded) {
    std::fprintf(stderr, "verify: reload failed: %s\n", error.c_str());
    return false;
  }
  const bccs::LabeledGraph& rg = *reloaded->graph;
  if (rg.NumVertices() != updated.NumVertices() || rg.NumEdges() != updated.NumEdges() ||
      rg.NumLabels() != updated.NumLabels()) {
    std::fprintf(stderr, "verify: graph shape mismatch after reload\n");
    return false;
  }
  for (bccs::VertexId v = 0; v < updated.NumVertices(); ++v) {
    if (rg.LabelOf(v) != updated.LabelOf(v) ||
        reloaded->index->Coreness(v) != repaired.Coreness(v)) {
      std::fprintf(stderr, "verify: vertex %u disagrees after reload\n", v);
      return false;
    }
    const auto a = updated.Neighbors(v);
    const auto b = rg.Neighbors(v);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
      std::fprintf(stderr, "verify: adjacency of vertex %u disagrees after reload\n", v);
      return false;
    }
  }
  if (reloaded->index->CachedPairCount() != repaired.CachedPairCount()) {
    std::fprintf(stderr, "verify: cached pair count mismatch after reload\n");
    return false;
  }
  return true;
}

/// Appends one fsync'd "acked <count>" line — the harness's ground truth
/// for how many updates were acknowledged durable before a crash.
bool AppendAckLine(const std::string& path, std::size_t count) {
  char line[64];
  const int len = std::snprintf(line, sizeof(line), "acked %zu\n", count);
  if (len <= 0) return false;
#if BCCS_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  bool ok = bccs::internal::FullWrite(fd, line, static_cast<std::size_t>(len));
  if (::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  return ok;
#else
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(line, 1, static_cast<std::size_t>(len), f) ==
                  static_cast<std::size_t>(len);
  return ok && std::fclose(f) == 0;
#endif
}

void PrintRecovery(const bccs::SnapshotBundle& bundle, const bccs::ChangelogStatus& st,
                   double seconds) {
  std::printf("snapshot: %zu vertices, %zu edges, %zu cached pairs, %zu replayed updates "
              "(%zu delta blocks + %zu changelog records) in %.4fs\n",
              bundle.graph->NumVertices(), bundle.graph->NumEdges(),
              bundle.index->CachedPairCount(), bundle.replayed_updates,
              bundle.delta_blocks, st.records, seconds);
  if (st.segments > 0 || st.stale_segments_removed > 0 || st.truncated_bytes > 0 ||
      bundle.delta_log_torn_bytes > 0) {
    std::printf("recovery: %zu live segments (%zu sealed, watermark %llu), "
                "%zu stale removed, %llu torn changelog bytes truncated%s, "
                "%llu torn delta-tail bytes truncated\n",
                st.segments, st.sealed_segments,
                static_cast<unsigned long long>(bundle.base_changelog_seq),
                st.stale_segments_removed,
                static_cast<unsigned long long>(st.truncated_bytes),
                st.dropped_tail_segment ? " (tail segment dropped)" : "",
                static_cast<unsigned long long>(bundle.delta_log_torn_bytes));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bccs::ArgParser args = bccs::ArgParser::Parse(argc, argv);
  auto unknown = args.UnknownFlags({"snapshot", "updates", "graph", "compact", "auto-compact",
                                    "write-graph", "no-verify", "changelog", "fsync",
                                    "segment-blocks", "compact-threshold", "recover-only",
                                    "ack-file", "validate", "help"});
  if (!unknown.empty() || args.Has("help")) {
    for (const auto& u : unknown) std::fprintf(stderr, "unknown flag: --%s\n", u.c_str());
    PrintUsage();
    return args.Has("help") ? 0 : 2;
  }
  auto snapshot_path = args.GetString("snapshot");
  auto updates_path = args.GetString("updates");
  if (!snapshot_path || (!updates_path && !args.Has("recover-only"))) {
    PrintUsage();
    return 2;
  }
  bool flags_valid = true;
  const std::int64_t auto_compact = args.GetPositiveIntOr("auto-compact", 0, &flags_valid);
  if (!flags_valid) {
    std::fprintf(stderr, "--auto-compact must be a positive integer (block count)\n");
    PrintUsage();
    return 2;
  }
  if (args.Has("compact") && args.Has("auto-compact")) {
    std::fprintf(stderr, "--compact and --auto-compact are mutually exclusive\n");
    PrintUsage();
    return 2;
  }

  bccs::ChangelogOptions copts;
  if (auto fsync_text = args.GetString("fsync")) {
    if (!bccs::ParseFsyncPolicy(*fsync_text, &copts.fsync)) {
      std::fprintf(stderr, "--fsync must be none, on-rotation, or every-append\n");
      return 2;
    }
  }
  const std::int64_t segment_blocks =
      args.GetPositiveIntOr("segment-blocks", 0, &flags_valid);
  const std::int64_t compact_threshold =
      args.GetPositiveIntOr("compact-threshold", 0, &flags_valid);
  if (!flags_valid) {
    std::fprintf(stderr,
                 "--segment-blocks and --compact-threshold must be positive integers\n");
    return 2;
  }
  if (segment_blocks > 0) copts.segment_blocks = static_cast<std::size_t>(segment_blocks);

  bccs::Timer load_timer;
  std::string error;
  auto recovered = bccs::OpenSnapshotWithChangelog(*snapshot_path, copts, {}, &error);
  if (!recovered) {
    std::fprintf(stderr, "cannot load snapshot %s: %s\n", snapshot_path->c_str(),
                 error.c_str());
    return 1;
  }
  bccs::SnapshotBundle& bundle = recovered->bundle;
  PrintRecovery(bundle, recovered->status, load_timer.Seconds());

  // Once segments exist the changelog is the only valid append path: an
  // in-file delta block would replay BEFORE the segments on the next load,
  // reordering history.
  const bool changelog_mode = args.Has("changelog") || args.Has("fsync") ||
                              args.Has("segment-blocks") ||
                              args.Has("compact-threshold") ||
                              recovered->status.segments > 0 ||
                              recovered->log->base_seq() > 0;
  if (changelog_mode && args.Has("auto-compact")) {
    std::fprintf(stderr, "--auto-compact is the legacy-chain policy; use "
                         "--compact-threshold with the changelog\n");
    return 2;
  }

  if (args.Has("recover-only")) {
    std::printf("recover-only: snapshot is consistent (mode: %s, fsync %s)\n",
                changelog_mode ? "changelog" : "delta-chain", Name(copts.fsync));
    return 0;
  }

  auto updates = bccs::ReadEdgeUpdatesFromFile(*updates_path, &error);
  if (!updates) {
    std::fprintf(stderr, "cannot read updates from %s: %s\n", updates_path->c_str(),
                 error.c_str());
    return 1;
  }
  const auto delta = bccs::BuildGraphDelta(*bundle.graph, *updates, &error);
  if (!delta) {
    std::fprintf(stderr, "invalid update batch: %s\n", error.c_str());
    return 1;
  }

  // Apply in memory: needed for --compact / --write-graph / verify, and it
  // reports what the incremental repair did.
  bccs::Timer apply_timer;
  auto updated = std::make_shared<const bccs::LabeledGraph>(
      bccs::ApplyGraphDelta(*bundle.graph, *delta));
  bccs::UpdateRepairStats repair;
  std::shared_ptr<const bccs::BcIndex> repaired =
      bundle.index->ApplyUpdates(*updated, *delta, {}, &repair);
  std::printf("updates: %zu (%zu inserts, %zu deletes net) applied in %.4fs\n",
              updates->size(), delta->inserts.size(), delta->deletes.size(),
              apply_timer.Seconds());
  std::printf("repair: labels %zu incremental / %zu rebuilt (%zu passes), "
              "pairs %zu incremental / %zu recounted (%zu cross edges)\n",
              repair.labels_incremental, repair.labels_rebuilt, repair.core_passes,
              repair.pairs_incremental, repair.pairs_recounted, repair.cross_edges_applied);

  // The re-stamp source: the text graph reflecting the post-update state.
  auto write_graph = args.GetString("write-graph");
  if (write_graph) {
    if (!bccs::WriteLabeledGraphToFile(*updated, *write_graph)) {
      std::fprintf(stderr, "cannot write updated graph to %s\n", write_graph->c_str());
      return 1;
    }
    std::printf("wrote updated graph to %s\n", write_graph->c_str());
  }
  bccs::SourceGraphInfo source;  // unknown unless a post-update graph file exists
  if (auto graph_path = args.GetString("graph")) {
    source = bccs::StatSourceGraph(*graph_path);
  } else if (write_graph) {
    source = bccs::StatSourceGraph(*write_graph);
  }

  if (changelog_mode) {
    // The durable append: Changelog::Append returning true IS the
    // acknowledgment, durable per --fsync.
    bccs::Timer append_timer;
    std::uint64_t appended_seq = 0;
    {
      // The tool is single-threaded, but Append requires the commit lock.
      bccs::MutexLock commit(recovered->log->commit_mutex());
      if (!recovered->log->Append(*updates, source, &error)) {
        std::fprintf(stderr, "cannot append to changelog: %s\n", error.c_str());
        return 1;
      }
      appended_seq = recovered->log->last_seq();
    }
    std::printf("changelog: %zu updates acknowledged (policy %s) into segment %llu "
                "in %.4fs\n",
                updates->size(), Name(copts.fsync),
                static_cast<unsigned long long>(appended_seq), append_timer.Seconds());
    if (auto ack_file = args.GetString("ack-file")) {
      if (!AppendAckLine(*ack_file, updates->size())) {
        std::fprintf(stderr, "cannot record ack in %s\n", ack_file->c_str());
        return 1;
      }
    }

    if (args.Has("compact") || compact_threshold > 0) {
      bccs::CompactorOptions copt;
      if (compact_threshold > 0) {
        copt.threshold_segments = static_cast<std::size_t>(compact_threshold);
      }
      bccs::Compactor::State cstate{updated, repaired, source};
      bccs::Compactor compactor(*recovered->log, [&cstate] { return cstate; }, copt);
      bccs::Timer fold_timer;
      bool folded = false;
      if (!compactor.RunOnce(args.Has("compact"), &error, &folded)) {
        std::fprintf(stderr, "compaction failed: %s\n", error.c_str());
        return 1;
      }
      if (folded) {
        std::uint64_t folded_seq = 0;
        {
          bccs::MutexLock commit(recovered->log->commit_mutex());
          folded_seq = recovered->log->sealed_seq();
        }
        std::printf("compacted: folded segments through %llu into %s in %.4fs\n",
                    static_cast<unsigned long long>(folded_seq), snapshot_path->c_str(),
                    fold_timer.Seconds());
      }
    }
  } else if (args.Has("compact")) {
    // Write-then-rename: the loaded bundle's arrays may be zero-copy views
    // over the snapshot file itself (mmap), so rewriting it in place would
    // overwrite the data being serialized. fsync file + rename + fsync dir
    // makes the publication atomic AND durable — without the syncs a crash
    // shortly after could surface a zero-length or half-written base.
    bccs::Timer save_timer;
    const std::string tmp_path = bccs::CompactionTempPath(*snapshot_path);
    if (!bccs::SaveSnapshot(*repaired, tmp_path, &error, source)) {
      std::fprintf(stderr, "cannot rewrite snapshot: %s\n", error.c_str());
      return 1;
    }
    if (!bccs::FsyncFile(tmp_path, &error)) {
      std::fprintf(stderr, "cannot fsync compacted snapshot: %s\n", error.c_str());
      std::remove(tmp_path.c_str());
      return 1;
    }
    if (std::rename(tmp_path.c_str(), snapshot_path->c_str()) != 0) {
      std::fprintf(stderr, "cannot replace %s with the compacted snapshot\n",
                   snapshot_path->c_str());
      std::remove(tmp_path.c_str());
      return 1;
    }
    if (!bccs::FsyncParentDir(*snapshot_path, &error)) {
      std::fprintf(stderr, "cannot fsync snapshot directory: %s\n", error.c_str());
      return 1;
    }
    std::printf("compacted snapshot rewritten to %s in %.4fs\n", snapshot_path->c_str(),
                save_timer.Seconds());
  } else {
    bccs::Timer append_timer;
    if (!bccs::AppendDeltaBlock(*snapshot_path, *updates, source, &error)) {
      std::fprintf(stderr, "cannot append delta block: %s\n", error.c_str());
      return 1;
    }
    std::printf("delta block (%zu updates) appended to %s in %.4fs\n", updates->size(),
                snapshot_path->c_str(), append_timer.Seconds());
    // Legacy-chain compaction policy: once the log chain exceeds the
    // threshold, fold it into the base payload — the repaired in-memory
    // state is exactly the replayed state the next loader would build.
    const std::size_t blocks_now = bundle.delta_blocks + 1;
    if (auto_compact > 0 && blocks_now > static_cast<std::size_t>(auto_compact)) {
      std::printf("delta log at %zu blocks exceeds --auto-compact %lld\n", blocks_now,
                  static_cast<long long>(auto_compact));
      bccs::Timer save_timer;
      const std::string tmp_path = bccs::CompactionTempPath(*snapshot_path);
      if (!bccs::SaveSnapshot(*repaired, tmp_path, &error, source) ||
          !bccs::FsyncFile(tmp_path, &error)) {
        std::fprintf(stderr, "cannot rewrite snapshot: %s\n", error.c_str());
        std::remove(tmp_path.c_str());
        return 1;
      }
      if (std::rename(tmp_path.c_str(), snapshot_path->c_str()) != 0) {
        std::fprintf(stderr, "cannot replace %s with the compacted snapshot\n",
                     snapshot_path->c_str());
        std::remove(tmp_path.c_str());
        return 1;
      }
      if (!bccs::FsyncParentDir(*snapshot_path, &error)) {
        std::fprintf(stderr, "cannot fsync snapshot directory: %s\n", error.c_str());
        return 1;
      }
      std::printf("compacted snapshot (auto) rewritten to %s in %.4fs\n",
                  snapshot_path->c_str(), save_timer.Seconds());
    }
  }

  if (!args.Has("no-verify")) {
    bccs::Timer verify_timer;
    if (!VerifyReload(*updated, *repaired, *snapshot_path)) return 1;
    std::printf("verify: snapshot reload matches the updated index (%.4fs)\n",
                verify_timer.Seconds());
  }

  if (args.Has("validate")) {
    bccs::Timer validate_timer;
    if (bccs::ValidationResult r = bccs::ValidateGraph(*updated); !r.ok) {
      std::fprintf(stderr, "validate: graph audit failed: %s\n", r.reason.c_str());
      return 1;
    }
    if (bccs::ValidationResult r = bccs::ValidateIndex(*repaired); !r.ok) {
      std::fprintf(stderr, "validate: index audit failed: %s\n", r.reason.c_str());
      return 1;
    }
    // The chain audit re-reads the watermark from the (possibly compacted)
    // snapshot header rather than trusting this process's view.
    std::uint64_t watermark = 0;
    std::string peek_error;
    if (auto peeked = bccs::LoadSnapshot(*snapshot_path, &peek_error)) {
      watermark = peeked->base_changelog_seq;
    } else {
      std::fprintf(stderr, "validate: cannot reload snapshot: %s\n", peek_error.c_str());
      return 1;
    }
    if (bccs::ValidationResult r = bccs::ValidateChangelogChain(*snapshot_path, watermark);
        !r.ok) {
      std::fprintf(stderr, "validate: changelog audit failed: %s\n", r.reason.c_str());
      return 1;
    }
    std::printf("validate: graph, index, and changelog audits passed (%.4fs)\n",
                validate_timer.Seconds());
  }
  return 0;
}
