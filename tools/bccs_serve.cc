// bccs_serve: streaming front-end over a mixed query/update stream — from a
// finite pipe/file, or as a TCP server (--listen).
//
//   bccs_serve (--graph g.txt | --index-file g.snap | both)
//              [--stream FILE | -]      mixed stream (default: stdin)
//              [--listen PORT]          TCP server mode (0 = ephemeral port)
//              [--max-connections N]    connection cap in --listen mode
//              [--threads N] [--bulk-cap K] [--interactive-cap K]
//              [--aging N] [--method online|lp|l2p] [--k1 N] [--k2 N] [--b N]
//              [--deadline-ms N] [--approx-samples N] [--approx-threshold N]
//              [--approx-adaptive] [--quiet]
//              [--fsync none|on-rotation|every-append] [--segment-blocks N]
//              [--compact-threshold N]
//
// This is the ServeEngine streaming loop end to end: each line is parsed
// and admitted into the engine's AdmissionQueue while the worker pool is
// already draining earlier items — a producer on a pipe is *served* while
// it is still writing — with updates prepared off-thread against a pinned
// copy-on-write epoch and published with a single swap; queries admitted
// after an update observe the post-update epoch (DESIGN.md, serving
// contract 3). --bulk-cap K keeps at most K bulk queries in flight so
// interactive tail latency stays bounded under a saturating bulk backlog.
//
// Reporting is batch-style: per-item results are printed in admission
// order after the stream ends (EOF) and the pool drains, and memory is
// proportional to the stream length — so feed this tool finite streams. A
// socket front-end replying per item as it completes is the intended next
// layer on Stream::Submit (see ROADMAP.md), not this CLI.
//
// Stream format, one item per line ('#' comments and blank lines allowed):
//   q <ql> <qr> [interactive|bulk]   two-label query (lane default: bulk)
//   u <+|-> <a> <b>                  one-edge update batch (insert/delete)
//
// Output: one line per item, in admission order, tagged with the epoch the
// item executed in:
//   [i] epoch=E query (ql, qr) -> N members  (T s)
//   [i] epoch=E update +(a, b) applied       (T s)
// followed by the per-lane sojourn summaries and totals.
//
// Durability (requires --index-file): with any of --fsync /
// --segment-blocks / --compact-threshold — or when changelog segments
// already exist next to the snapshot — the engine serves DURABLY: startup
// recovers the snapshot (truncating torn tails, deleting stale segments)
// and replays the changelog, and every applied update is appended to the
// rotated changelog before its epoch publishes, so "applied" in the output
// means durable per the --fsync policy (graph/changelog.h). A nonzero
// --compact-threshold starts the background compactor, folding that many
// sealed segments into a fresh base so recovery time stays bounded.
//
// SIGINT/SIGTERM stop admission: the loop stops reading the stream, the
// already-admitted items drain, and the normal summary is printed — a
// durable serve killed softly loses nothing, and killed hard (the fault
// harness's mode) loses at most unacknowledged updates.
//
// --listen PORT turns the same streaming loop into a concurrent TCP server
// (src/net/server.h): the newline protocol of ARCHITECTURE.md's "Wire
// protocol" section over any number of connections, each response streamed
// back on its originating connection the moment the item completes, with
// id= request deduplication for idempotent retries. PORT 0 binds an
// ephemeral port; the actual port is printed on the "listening on" line.
// SIGINT/SIGTERM drain admitted items, flush response tails, print the
// summary, and exit 0. Incompatible with --stream (one front-end at a
// time).

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <istream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "eval/serve_engine.h"
#include "eval/timer.h"
#include "graph/changelog.h"
#include "graph/compactor.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "net/server.h"
#include "tools/arg_parser.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bccs_serve (--graph FILE | --index-file FILE | both)\n"
               "                  [--stream FILE|-] [--threads N] [--bulk-cap K]\n"
               "                  [--interactive-cap K] [--aging N]\n"
               "                  [--method online|lp|l2p] [--k1 N] [--k2 N] [--b N]\n"
               "                  [--deadline-ms N] [--approx-samples N]\n"
               "                  [--approx-threshold N] [--approx-adaptive] [--quiet]\n"
               "                  [--no-incremental-butterflies]\n"
               "                  [--fsync none|on-rotation|every-append]\n"
               "                  [--segment-blocks N] [--compact-threshold N]\n"
               "                  [--result-cache N] [--cache-bytes N]\n"
               "                  [--listen PORT] [--max-connections N]\n");
}

volatile std::sig_atomic_t g_stop_signal = 0;
/// The running TCP server, when in --listen mode, for the signal handler.
std::atomic<bccs::NetServer*> g_server{nullptr};

void HandleStopSignal(int sig) {
  g_stop_signal = sig;
  // RequestShutdown is async-signal-safe (atomic store + self-pipe write),
  // as is this lock-free pointer load.
  bccs::NetServer* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestShutdown();
}

/// SIGINT/SIGTERM → stop admission and drain. Installed WITHOUT SA_RESTART
/// where sigaction exists, so a blocking stdin read returns early instead
/// of riding out a slow producer.
void InstallStopHandlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa = {};
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt the getline read
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
#endif
}

bool ParseLane(const std::string& s, bccs::Lane* lane) {
  if (s == "interactive" || s == "i") {
    *lane = bccs::Lane::kInteractive;
    return true;
  }
  if (s == "bulk" || s == "b") {
    *lane = bccs::Lane::kBulk;
    return true;
  }
  return false;
}

struct StreamLine {
  bccs::ServeItem item;
  std::string text;  // echoed back next to the result
};

enum class LineStatus { kItem, kBlank, kError };

/// Parses ONE stream line (so the main loop can Submit each item as it
/// arrives instead of slurping the input to EOF — a live producer on a
/// pipe is served while it is still writing). Malformed lines are a hard
/// error with the line number: a serving stream with a typo'd update must
/// not half-apply.
LineStatus ParseStreamLine(std::string line, std::size_t line_no, std::size_t num_vertices,
                           const bccs::QueryRequest& proto, StreamLine* out) {
  std::size_t hash = line.find('#');
  if (hash != std::string::npos) line.resize(hash);
  std::istringstream ls(line);
  std::string kind;
  if (!(ls >> kind)) return LineStatus::kBlank;
  if (kind == "q") {
    std::uint64_t ql = 0, qr = 0;
    if (!(ls >> ql >> qr) || ql >= num_vertices || qr >= num_vertices) {
      std::fprintf(stderr, "stream:%zu: expected 'q <ql> <qr> [lane]' with ids below %zu\n",
                   line_no, num_vertices);
      return LineStatus::kError;
    }
    bccs::QueryRequest req = proto;
    req.query = bccs::BccQuery{static_cast<bccs::VertexId>(ql),
                               static_cast<bccs::VertexId>(qr)};
    std::string lane_token;
    if (ls >> lane_token && !ParseLane(lane_token, &req.lane)) {
      std::fprintf(stderr, "stream:%zu: unknown lane '%s' (interactive|bulk)\n", line_no,
                   lane_token.c_str());
      return LineStatus::kError;
    }
    out->text = "query (" + std::to_string(ql) + ", " + std::to_string(qr) + ")";
    out->item = std::move(req);
    return LineStatus::kItem;
  }
  if (kind == "u") {
    std::string sign;
    std::uint64_t a = 0, b = 0;
    if (!(ls >> sign >> a >> b) || (sign != "+" && sign != "-") || a >= num_vertices ||
        b >= num_vertices) {
      std::fprintf(stderr, "stream:%zu: expected 'u <+|-> <a> <b>' with ids below %zu\n",
                   line_no, num_vertices);
      return LineStatus::kError;
    }
    bccs::UpdateRequest req;
    bccs::EdgeUpdate u;
    u.kind = sign == "+" ? bccs::EdgeUpdateKind::kInsert : bccs::EdgeUpdateKind::kDelete;
    u.edge = {static_cast<bccs::VertexId>(std::min(a, b)),
              static_cast<bccs::VertexId>(std::max(a, b))};
    req.updates.push_back(u);
    out->text = "update " + sign + "(" + std::to_string(a) + ", " + std::to_string(b) + ")";
    out->item = std::move(req);
    return LineStatus::kItem;
  }
  std::fprintf(stderr, "stream:%zu: unknown item kind '%s' (q|u)\n", line_no, kind.c_str());
  return LineStatus::kError;
}

}  // namespace

int main(int argc, char** argv) {
  bccs::ArgParser args = bccs::ArgParser::Parse(argc, argv);
  auto unknown = args.UnknownFlags({"graph", "index-file", "stream", "threads", "bulk-cap",
                                    "interactive-cap", "aging", "method", "k1", "k2", "b",
                                    "deadline-ms", "approx-samples", "approx-threshold",
                                    "approx-adaptive", "quiet", "fsync", "segment-blocks",
                                    "compact-threshold", "result-cache", "cache-bytes",
                                    "listen", "max-connections", "help",
                                    "no-incremental-butterflies"});
  if (!unknown.empty() || args.Has("help")) {
    for (const auto& u : unknown) std::fprintf(stderr, "unknown flag: --%s\n", u.c_str());
    PrintUsage();
    return args.Has("help") ? 0 : 2;
  }

  // Strict numeric-flag validation, shared contract with bccs_query.
  bool counts_valid = true;
  const std::int64_t threads_raw = args.GetNonNegativeIntOr("threads", 0, &counts_valid);
  const std::int64_t bulk_cap = args.GetNonNegativeIntOr("bulk-cap", 0, &counts_valid);
  const std::int64_t interactive_cap =
      args.GetNonNegativeIntOr("interactive-cap", 0, &counts_valid);
  const std::int64_t aging = args.GetNonNegativeIntOr("aging", 8, &counts_valid);
  const std::int64_t k1 = args.GetNonNegativeIntOr("k1", 0, &counts_valid);
  const std::int64_t k2 = args.GetNonNegativeIntOr("k2", 0, &counts_valid);
  const std::int64_t b = args.GetPositiveIntOr("b", 1, &counts_valid);
  const std::int64_t deadline_ms = args.GetPositiveIntOr("deadline-ms", 0, &counts_valid);
  const std::int64_t approx_samples =
      args.GetPositiveIntOr("approx-samples", 0, &counts_valid);
  const std::int64_t approx_threshold =
      args.GetPositiveIntOr("approx-threshold", 4096, &counts_valid);
  const std::int64_t segment_blocks =
      args.GetPositiveIntOr("segment-blocks", 0, &counts_valid);
  const std::int64_t compact_threshold =
      args.GetPositiveIntOr("compact-threshold", 0, &counts_valid);
  const std::int64_t result_cache =
      args.GetNonNegativeIntOr("result-cache", 0, &counts_valid);
  const std::int64_t cache_bytes = args.GetNonNegativeIntOr("cache-bytes", 0, &counts_valid);
  const bool listen_mode = args.Has("listen");
  const std::int64_t listen_port = args.GetNonNegativeIntOr("listen", 0, &counts_valid);
  const std::int64_t max_connections =
      args.GetPositiveIntOr("max-connections", 256, &counts_valid);
  if (!counts_valid) {
    std::fprintf(stderr, "invalid numeric flag value\n");
    PrintUsage();
    return 2;
  }
  if (listen_port > 65535) {
    std::fprintf(stderr, "--listen port must be 0 (ephemeral) to 65535\n");
    return 2;
  }
  if (args.Has("max-connections") && !listen_mode) {
    std::fprintf(stderr, "--max-connections requires --listen\n");
    return 2;
  }
  if (listen_mode && args.Has("stream")) {
    std::fprintf(stderr, "--listen and --stream are mutually exclusive\n");
    return 2;
  }
  bccs::ChangelogOptions copts;
  if (auto fsync_text = args.GetString("fsync")) {
    if (!bccs::ParseFsyncPolicy(*fsync_text, &copts.fsync)) {
      std::fprintf(stderr, "--fsync must be none, on-rotation, or every-append\n");
      return 2;
    }
  }
  if (segment_blocks > 0) copts.segment_blocks = static_cast<std::size_t>(segment_blocks);
  const bool durability_flags = args.Has("fsync") || args.Has("segment-blocks") ||
                                args.Has("compact-threshold");
  bool threads_clamped = false;
  const std::size_t threads = bccs::ArgParser::ClampThreadCount(threads_raw, &threads_clamped);
  if (threads_clamped) {
    std::fprintf(stderr, "note: --threads %lld clamped to hardware concurrency (%zu)\n",
                 static_cast<long long>(threads_raw), threads);
  }

  const std::string method_name = args.GetStringOr("method", "lp");
  bccs::QueryMethod method;
  if (method_name == "online") {
    method = bccs::QueryMethod::kOnlineBcc;
  } else if (method_name == "lp") {
    method = bccs::QueryMethod::kLpBcc;
  } else if (method_name == "l2p") {
    method = bccs::QueryMethod::kL2pBcc;
  } else {
    std::fprintf(stderr, "unknown method '%s' (valid methods: online, lp, l2p)\n",
                 method_name.c_str());
    return 2;
  }

  auto graph_path = args.GetString("graph");
  auto index_path = args.GetString("index-file");
  if (!graph_path && !index_path) {
    PrintUsage();
    return 2;
  }
  if (durability_flags && !index_path) {
    std::fprintf(stderr, "durability (--fsync/--segment-blocks/--compact-threshold) "
                         "requires --index-file (the changelog lives next to it)\n");
    return 2;
  }

  // Resolve the serving state: snapshot when given (shared ownership fits
  // the engine's epoch layer), else the text graph.
  std::shared_ptr<const bccs::LabeledGraph> graph;
  std::shared_ptr<const bccs::BcIndex> index;
  std::unique_ptr<bccs::Changelog> changelog;  // durable mode; outlives the engine
  bccs::SourceGraphInfo stamp;
  if (index_path) {
    std::string error;
    bccs::SnapshotLoadOptions load_opts;
    if (graph_path) load_opts.expected_source = bccs::StatSourceGraph(*graph_path);
    stamp = load_opts.expected_source;
    // Recovery-grade open even when durability is off: it removes a
    // leftover compaction temp file and repairs torn tails, and tells us
    // whether segments exist (which forces durable mode — serving on top
    // of a replayed changelog without appending to it would un-persist
    // every further ack on the next restart).
    auto recovered = bccs::OpenSnapshotWithChangelog(*index_path, copts, load_opts, &error);
    if (!recovered) {
      std::fprintf(stderr, "cannot load snapshot %s: %s\n", index_path->c_str(),
                   error.c_str());
      return 1;
    }
    const bccs::SnapshotBundle& bundle = recovered->bundle;
    const bccs::ChangelogStatus& st = recovered->status;
    if (bundle.replayed_updates > 0 || st.segments > 0 || st.stale_segments_removed > 0 ||
        st.truncated_bytes > 0 || bundle.delta_log_torn_bytes > 0) {
      std::printf("recovery: %zu updates replayed (%zu delta blocks + %zu changelog "
                  "records in %zu segments), %zu stale segments removed, %llu torn "
                  "changelog bytes truncated%s, %llu torn delta-tail bytes truncated\n",
                  bundle.replayed_updates, bundle.delta_blocks, st.records, st.segments,
                  st.stale_segments_removed,
                  static_cast<unsigned long long>(st.truncated_bytes),
                  st.dropped_tail_segment ? " (tail segment dropped)" : "",
                  static_cast<unsigned long long>(bundle.delta_log_torn_bytes));
    }
    graph = bundle.graph;
    index = std::shared_ptr<const bccs::BcIndex>(std::move(recovered->bundle.index));
    if (durability_flags || st.segments > 0 || recovered->log->base_seq() > 0) {
      changelog = std::move(recovered->log);
    }
  } else {
    std::string error;
    auto g = bccs::ReadLabeledGraphFromFile(*graph_path, &error);
    if (!g) {
      std::fprintf(stderr, "cannot read graph from %s: %s\n", graph_path->c_str(),
                   error.c_str());
      return 1;
    }
    graph = std::make_shared<const bccs::LabeledGraph>(std::move(*g));
  }
  if (method == bccs::QueryMethod::kL2pBcc && index == nullptr) {
    auto built = std::make_shared<bccs::BcIndex>(*graph);
    index = built;
  }

  // The per-item prototype every 'q' line starts from.
  bccs::QueryRequest proto;
  proto.method = method;
  proto.deadline_seconds = static_cast<double>(deadline_ms) / 1000.0;
  proto.params = {static_cast<std::uint32_t>(k1), static_cast<std::uint32_t>(k2),
                  static_cast<std::uint64_t>(b)};

  bccs::ServeOptions so;
  so.aging_period = static_cast<std::size_t>(aging);
  so.caps.bulk = static_cast<std::size_t>(bulk_cap);
  so.caps.interactive = static_cast<std::size_t>(interactive_cap);
  so.result_cache_entries = static_cast<std::size_t>(result_cache);
  so.pair_cache_bytes = static_cast<std::size_t>(cache_bytes);
  if (approx_samples > 0) {
    bccs::ApproxOptions approx;
    approx.enabled = true;
    approx.samples = static_cast<std::size_t>(approx_samples);
    approx.threshold = static_cast<std::size_t>(approx_threshold);
    approx.adaptive = args.Has("approx-adaptive");
    so.online.approx = approx;
    so.lp.approx = approx;
    so.mbcc.approx = approx;
    so.l2p.search.approx = approx;
  }
  if (args.Has("no-incremental-butterflies")) {
    so.online.incremental_butterflies = false;
    so.lp.incremental_butterflies = false;
    so.mbcc.incremental_butterflies = false;
    so.l2p.search.incremental_butterflies = false;
  }

  const std::string stream_arg = args.GetStringOr("stream", "-");
  std::ifstream stream_file;
  std::istream* stream_in = &std::cin;
  if (stream_arg != "-") {
    stream_file.open(stream_arg);
    if (!stream_file.good()) {
      std::fprintf(stderr, "cannot read stream from %s\n", stream_arg.c_str());
      return 2;
    }
    stream_in = &stream_file;
  }
  std::printf("graph: %zu vertices, %zu edges, %zu labels%s\n", graph->NumVertices(),
              graph->NumEdges(), graph->NumLabels(), index != nullptr ? " (indexed)" : "");

  bccs::BatchRunner runner(threads);
  bccs::ServeEngine engine(runner, graph, index, so);
  std::unique_ptr<bccs::Compactor> compactor;
  if (changelog != nullptr) {
    engine.AttachDurability(changelog.get(), stamp);
    std::printf("durability: changelog at %s.log.NNNNNN, fsync %s, rotate every %zu "
                "records, compact threshold %lld\n",
                index_path->c_str(), Name(copts.fsync), copts.segment_blocks,
                static_cast<long long>(compact_threshold));
    if (compact_threshold > 0) {
      bccs::CompactorOptions fold_opts;
      fold_opts.threshold_segments = static_cast<std::size_t>(compact_threshold);
      // The capture runs under the changelog's commit lock (Compactor's
      // contract); the engine publishes epochs under the same lock, so the
      // captured pair is exactly the appended history.
      compactor = std::make_unique<bccs::Compactor>(
          *changelog,
          [&engine, stamp] {
            return bccs::Compactor::State{engine.graph_ptr(), engine.index_ptr(), stamp};
          },
          fold_opts);
      compactor->Start();
    }
  }

  InstallStopHandlers();
  std::vector<StreamLine> lines;
  bool parse_ok = true;
  bccs::BatchResult result;
  std::size_t served_count = 0;
  if (listen_mode) {
    // TCP server mode: the socket front-end drives the same stream — each
    // connection is one producer into Stream::Submit, each completed item
    // streams its response back on its originating connection. SIGINT /
    // SIGTERM request a graceful shutdown through the handler above.
    bccs::NetServerOptions nopts;
    nopts.port = static_cast<int>(listen_port);
    nopts.max_connections = static_cast<std::size_t>(max_connections);
    nopts.query_proto = proto;
    bccs::NetServer server(engine, nopts);
    std::string net_error;
    if (!server.Start(&net_error)) {
      std::fprintf(stderr, "cannot listen on %s:%lld: %s\n", nopts.bind_address.c_str(),
                   static_cast<long long>(listen_port), net_error.c_str());
      return 1;
    }
    g_server.store(&server, std::memory_order_release);
    if (g_stop_signal != 0) server.RequestShutdown();  // a signal raced Start
    // Scripted clients (tools/e2e_snapshot_test.sh) discover an ephemeral
    // port from this line; flush so it crosses a pipe before the loop runs.
    std::printf("listening on %s:%d (max %zu connections)\n", nopts.bind_address.c_str(),
                server.port(), nopts.max_connections);
    std::fflush(stdout);
    result = server.Run();
    g_server.store(nullptr, std::memory_order_release);
    served_count = result.epoch_of.size();
    if (g_stop_signal != 0) {
      std::printf("signal %d: drained %zu admitted items and flushed tails\n",
                  static_cast<int>(g_stop_signal), served_count);
    }
    const bccs::NetServerStats& net = server.stats();
    std::printf("net: %llu connections accepted (%llu over capacity), %llu requests, "
                "%llu protocol errors, %llu overlong closes, %llu torn disconnects, "
                "%llu outbox overflows\n",
                static_cast<unsigned long long>(net.accepted),
                static_cast<unsigned long long>(net.rejected_over_capacity),
                static_cast<unsigned long long>(net.requests_submitted),
                static_cast<unsigned long long>(net.protocol_errors),
                static_cast<unsigned long long>(net.overlong_closes),
                static_cast<unsigned long long>(net.torn_disconnects),
                static_cast<unsigned long long>(net.overflow_closes));
    std::printf("retries: %llu ids started, %llu attached, %llu replayed, %llu evicted\n",
                static_cast<unsigned long long>(net.keeper.started),
                static_cast<unsigned long long>(net.keeper.attached),
                static_cast<unsigned long long>(net.keeper.replayed),
                static_cast<unsigned long long>(net.keeper.evictions));
  } else {
    // Stream serving proper: each line is parsed and admitted as it arrives
    // while the pool drains earlier items — a live producer on a pipe is
    // served before it closes its end, exactly what the socket front-end
    // does per connection. A malformed line stops admission; what was
    // already admitted drains and the tool exits nonzero. SIGINT/SIGTERM
    // also stop admission, but drain and exit cleanly.
    bccs::ServeEngine::Stream stream = engine.OpenStream();
    {
      std::string line;
      std::size_t line_no = 0;
      while (g_stop_signal == 0 && std::getline(*stream_in, line)) {
        ++line_no;
        StreamLine sl;
        const LineStatus status =
            ParseStreamLine(std::move(line), line_no, graph->NumVertices(), proto, &sl);
        if (status == LineStatus::kBlank) continue;
        if (status == LineStatus::kError) {
          parse_ok = false;
          break;
        }
        stream.Submit(sl.item);
        lines.push_back(std::move(sl));
      }
    }
    if (g_stop_signal != 0) {
      std::printf("signal %d: admission stopped, draining %zu admitted items\n",
                  static_cast<int>(g_stop_signal), lines.size());
    }
    result = stream.Finish();
    served_count = lines.size();
  }
  if (compactor != nullptr) {
    // One last threshold check on this thread: a short-lived stream can end
    // before the background poll ever fires.
    compactor->Stop();
    std::string fold_err;
    if (!compactor->RunOnce(/*force=*/false, &fold_err)) {
      std::fprintf(stderr, "compaction: %s\n", fold_err.c_str());
    }
  }
  if (!parse_ok && lines.empty()) return 2;

  if (!args.Has("quiet")) {
    std::size_t next_update = 0;  // result.updates is in admission order
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (std::holds_alternative<bccs::QueryRequest>(lines[i].item)) {
        std::printf("[%zu] epoch=%llu %s -> %zu members%s  (%.6f s)\n", i,
                    static_cast<unsigned long long>(result.epoch_of[i]),
                    lines[i].text.c_str(), result.communities[i].Size(),
                    result.stats[i].timed_out ? " (timed out)" : "", result.seconds[i]);
      } else {
        const bccs::UpdateOutcome* outcome =
            next_update < result.updates.size() ? &result.updates[next_update++] : nullptr;
        if (outcome == nullptr || outcome->item_index != i) continue;
        std::printf("[%zu] epoch=%llu %s %s%s%s  (%.6f s)\n", i,
                    static_cast<unsigned long long>(result.epoch_of[i]),
                    lines[i].text.c_str(), outcome->applied ? "applied" : "rejected: ",
                    outcome->applied ? "" : outcome->error.c_str(),
                    outcome->applied ? "" : " (epoch unchanged)", result.seconds[i]);
      }
    }
  }

  std::size_t applied = 0;
  for (const auto& u : result.updates) applied += u.applied ? 1 : 0;
  std::printf("served %zu items (%zu updates, %zu applied) on %zu workers in %.4fs; "
              "final epoch %llu; %zu timed out\n",
              served_count, result.updates.size(), applied, result.threads_used,
              result.latency.wall_seconds, static_cast<unsigned long long>(engine.epoch()),
              result.timed_out);
  for (const bccs::LaneSummary& lane : result.lanes) {
    std::printf("lane %-11s %zu queries  max_inflight=%zu  sojourn p50=%.6fs p90=%.6fs "
                "p99=%.6fs\n",
                bccs::Name(lane.lane), lane.queries, lane.max_inflight,
                lane.latency.p50_seconds, lane.latency.p90_seconds,
                lane.latency.p99_seconds);
  }
  {
    bccs::SearchStats sum;
    for (const auto& s : result.stats) sum += s;
    std::printf("phases: find_g0=%.4fs query_distance=%.4fs butterfly=%.4fs delta=%.4fs "
                "leader=%.4fs  (counting calls=%zu delta_rounds=%zu delta_fallbacks=%zu)\n",
                sum.find_g0_seconds, sum.query_distance_seconds, sum.butterfly_seconds,
                sum.butterfly_delta_seconds, sum.leader_update_seconds,
                sum.butterfly_counting_calls, sum.delta_rounds, sum.delta_fallbacks);
  }
  if (result.result_cache_enabled || cache_bytes > 0) {
    const bccs::ResultCacheStats& rc = result.result_cache;
    const bccs::BlockCacheStats& pc = result.pair_cache;
    const std::uint64_t rc_total = rc.hits + rc.misses;
    std::printf("cache: result %llu/%llu hits (%.1f%%), %zu entries, %llu evictions, "
                "%llu stale; pairs %llu/%llu hits, %llu evictions, %zu bytes "
                "(budget %zu)\n",
                static_cast<unsigned long long>(rc.hits),
                static_cast<unsigned long long>(rc_total),
                rc_total > 0 ? 100.0 * static_cast<double>(rc.hits) /
                                   static_cast<double>(rc_total)
                             : 0.0,
                rc.entries, static_cast<unsigned long long>(rc.evictions),
                static_cast<unsigned long long>(rc.stale_drops),
                static_cast<unsigned long long>(pc.hits),
                static_cast<unsigned long long>(pc.hits + pc.misses),
                static_cast<unsigned long long>(pc.evictions), pc.bytes, pc.budget_bytes);
  }
  if (changelog != nullptr) {
    std::size_t updates_appended = 0, sealed_segments = 0;
    std::uint64_t last_seq = 0;
    {
      // The stream is finished and the compactor stopped; the lock is
      // uncontended but required by the counters' contract.
      bccs::MutexLock commit(changelog->commit_mutex());
      updates_appended = changelog->updates_appended();
      last_seq = changelog->last_seq();
      sealed_segments = changelog->sealed_segments();
    }
    std::printf("durable: %zu updates appended (last seq %llu, %zu sealed segments), "
                "%zu compaction folds\n",
                updates_appended, static_cast<unsigned long long>(last_seq),
                sealed_segments,
                compactor != nullptr ? compactor->folds() : std::size_t{0});
  }
  return parse_ok ? 0 : 2;
}
