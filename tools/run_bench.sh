#!/usr/bin/env bash
# Builds the tree (if needed) and runs the perf-trajectory smoke benchmark,
# leaving BENCH_PR6.json next to this script's repo root. The JSON carries
# the batch-query QPS rows, the snapshot cold-start block, the two-lane
# serving block (per-lane sojourn p50/p99 for a mixed interactive/bulk
# batch), the streaming block (interactive p95 under a saturating mixed
# stream with and without the bulk in-flight cap, and the update's
# admission->publish latency for the streaming loop vs the PR 4 barrier
# emulation), the approx block (sampled-vs-exact wall time on the large
# generated graph, with determinism and exact-validity checks), the updates
# block (incremental BcIndex::ApplyUpdates vs full rebuild seconds per
# edge-update batch, with a bit-identical check), and the recovery block
# (bare base load vs rotated-changelog replay vs the post-compaction load,
# with an identical-answers check). Future PRs append their own
# BENCH_PR<N>.json and compare.
#
# usage: tools/run_bench.sh [extra perf_smoke args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target perf_smoke -j >/dev/null

"$build_dir/perf_smoke" --out "$repo_root/BENCH_PR6.json" "$@"
