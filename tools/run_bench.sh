#!/usr/bin/env bash
# Builds the tree (if needed) and runs the perf-trajectory smoke benchmark,
# leaving BENCH_PR10.json next to this script's repo root. The JSON carries
# the batch-query QPS rows, the snapshot cold-start block, the two-lane
# serving block (per-lane sojourn p50/p99 plus the warm serving wall time),
# the streaming block, the approx block, the caching block (Zipf trace
# replay through the result cache plus block-cache eviction pressure; this
# script fails if a cached answer ever differs from re-execution), the
# network block (the socket front-end over 100+ loopback connections —
# sustained QPS and client-observed interactive p95 vs the in-process
# baseline; this script fails if any wire response differs byte-for-byte
# from the in-process answer), the updates block, the recovery block, and
# the peeling block (the incremental butterfly counter vs per-round
# recounts; this script fails if the answers are not bit-identical) —
# see BENCH_PR9.json for the lineage — plus a check_overhead block: the serving block is re-run from a
# second build configured with -DBCCS_STRIP_CHECKS=ON (BCCS_CHECK compiled
# out) and the two warm wall times are compared, best of $RUNS runs each,
# to price the always-on invariant checks. Future PRs append their own
# BENCH_PR<N>.json and compare.
#
# usage: tools/run_bench.sh [extra perf_smoke args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
strip_dir="${STRIP_BUILD_DIR:-$repo_root/build-nocheck}"
out="$repo_root/BENCH_PR10.json"
runs="${RUNS:-3}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" --target perf_smoke -j >/dev/null

"$build_dir/perf_smoke" --out "$out" "$@"

# Price the always-on BCCS_CHECKs: same serving workload, one binary with
# checks compiled in (the shipping configuration) and one with them stripped.
cmake -B "$strip_dir" -S "$repo_root" -DBCCS_STRIP_CHECKS=ON >/dev/null
cmake --build "$strip_dir" --target perf_smoke -j >/dev/null

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for i in $(seq "$runs"); do
  "$build_dir/perf_smoke" --serving-only --queries 192 --out "$tmp/on.$i.json" >/dev/null
  "$strip_dir/perf_smoke" --serving-only --queries 192 --out "$tmp/off.$i.json" >/dev/null
done

python3 - "$out" "$tmp" "$runs" <<'EOF'
import json, sys

out_path, tmp, runs = sys.argv[1], sys.argv[2], int(sys.argv[3])

def best_wall(prefix):
    walls = []
    for i in range(1, runs + 1):
        with open(f"{tmp}/{prefix}.{i}.json") as f:
            walls.append(json.load(f)["serving"]["wall_seconds"])
    return min(walls)

on, off = best_wall("on"), best_wall("off")
overhead = (on - off) / off * 100.0 if off > 0 else 0.0

with open(out_path) as f:
    bench = json.load(f)

# Hard gate: a result-cache hit must be indistinguishable from re-executing
# the query at its epoch. perf_smoke already fails on this, but the bench
# script enforces it too so a future refactor of the exit-code chain cannot
# silently drop the guarantee.
caching = bench["caching"]
if not caching["identical_to_uncached"]:
    sys.exit("caching: cached answers differ from uncached replay")
if not caching["block_cache"]["identical_to_unbounded"]:
    sys.exit("caching: budget-capped block cache served wrong counts")

# Same for the socket front-end: a response crossing the wire must be the
# byte-exact answer the engine computed in-process.
if not bench["network"]["identical_to_in_process"]:
    sys.exit("network: wire responses differ from in-process answers")

# And for the incremental peel counter: maintained chi must yield exactly
# the communities a per-round recount yields, and it must actually replace
# recounts (fewer full counting calls than the flag-off run).
peeling = bench["peeling"]
if not peeling["identical_to_recount"]:
    sys.exit("peeling: incremental-counter answers differ from recount")
if peeling["incremental_counting_calls"] >= peeling["recount_counting_calls"]:
    sys.exit("peeling: incremental counter did not reduce counting calls")

bench["check_overhead"] = {
    "serving_wall_seconds_checks_on": on,
    "serving_wall_seconds_checks_off": off,
    "overhead_percent": round(overhead, 3),
    "runs_per_config": runs,
    "under_one_percent": overhead < 1.0,
}
with open(out_path, "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
print(f"check_overhead: on={on:.4f}s off={off:.4f}s -> {overhead:+.3f}% "
      f"(best of {runs})")
EOF
