// bccs_build: build the BcIndex for a graph file and persist graph + index
// as a binary snapshot that bccs_query / BatchRunner map back in at serving
// time (see graph/snapshot.h for the format).
//
//   bccs_build --graph g.txt --out g.snap [--pairs all|none] [--no-verify]
//              [--validate]
//
// --pairs all (default) materializes the butterfly counts of every
// cross-label pair before saving, so a loaded index never computes
// butterflies at query time; --pairs none saves only the coreness arrays
// (pairs fault in lazily after load). Unless --no-verify is given, the tool
// re-loads the snapshot and checks it against the in-memory index.
// --validate runs the deep structural audits (common/validate.h) on the
// graph and the built index before saving.

#include <cstdio>
#include <string>

#include "common/validate.h"
#include "eval/timer.h"
#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "tools/arg_parser.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bccs_build --graph FILE --out FILE [--pairs all|none] [--no-verify] "
               "[--validate]\n");
}

bool VerifySnapshot(const bccs::BcIndex& built, const std::string& path) {
  std::string error;
  auto loaded = bccs::LoadSnapshot(path, &error);
  if (!loaded) {
    std::fprintf(stderr, "verify: reload failed: %s\n", error.c_str());
    return false;
  }
  const bccs::LabeledGraph& g = built.graph();
  const bccs::LabeledGraph& lg = *loaded->graph;
  if (lg.NumVertices() != g.NumVertices() || lg.NumEdges() != g.NumEdges() ||
      lg.NumLabels() != g.NumLabels()) {
    std::fprintf(stderr, "verify: graph shape mismatch after reload\n");
    return false;
  }
  for (bccs::VertexId v = 0; v < g.NumVertices(); ++v) {
    if (lg.LabelOf(v) != g.LabelOf(v) ||
        loaded->index->Coreness(v) != built.Coreness(v)) {
      std::fprintf(stderr, "verify: vertex %u disagrees after reload\n", v);
      return false;
    }
  }
  if (loaded->index->CachedPairCount() != built.CachedPairCount()) {
    std::fprintf(stderr, "verify: cached pair count mismatch after reload\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bccs::ArgParser args = bccs::ArgParser::Parse(argc, argv);
  auto unknown =
      args.UnknownFlags({"graph", "out", "pairs", "no-verify", "validate", "help"});
  if (!unknown.empty() || args.Has("help")) {
    for (const auto& u : unknown) std::fprintf(stderr, "unknown flag: --%s\n", u.c_str());
    PrintUsage();
    return args.Has("help") ? 0 : 2;
  }
  auto graph_path = args.GetString("graph");
  auto out_path = args.GetString("out");
  const std::string pairs = args.GetStringOr("pairs", "all");
  if (!graph_path || !out_path || (pairs != "all" && pairs != "none")) {
    PrintUsage();
    return 2;
  }

  // Stamp the source graph's identity so a later load given the graph path
  // can detect that the graph changed underneath the snapshot. Statted
  // before the read: if the file is edited during the (long) build, the
  // stale stamp forces a rebuild instead of silently matching content the
  // index was not built from.
  const bccs::SourceGraphInfo source = bccs::StatSourceGraph(*graph_path);

  std::string io_error;
  bccs::Timer read_timer;
  auto graph = bccs::ReadLabeledGraphFromFile(*graph_path, &io_error);
  if (!graph) {
    std::fprintf(stderr, "cannot read graph from %s: %s\n", graph_path->c_str(),
                 io_error.c_str());
    return 1;
  }
  std::printf("graph: %zu vertices, %zu edges, %zu labels (read in %.4fs)\n",
              graph->NumVertices(), graph->NumEdges(), graph->NumLabels(),
              read_timer.Seconds());

  bccs::Timer build_timer;
  bccs::BcIndex index(*graph);
  if (pairs == "all") index.MaterializeAllPairs();
  const double build_seconds = build_timer.Seconds();

  if (args.Has("validate")) {
    bccs::Timer validate_timer;
    if (bccs::ValidationResult r = bccs::ValidateGraph(*graph); !r.ok) {
      std::fprintf(stderr, "validate: graph audit failed: %s\n", r.reason.c_str());
      return 1;
    }
    if (bccs::ValidationResult r = bccs::ValidateIndex(index); !r.ok) {
      std::fprintf(stderr, "validate: index audit failed: %s\n", r.reason.c_str());
      return 1;
    }
    std::printf("validate: graph and index audits passed (%.4fs)\n",
                validate_timer.Seconds());
  }

  bccs::Timer save_timer;
  std::string save_error;
  if (!bccs::SaveSnapshot(index, *out_path, &save_error, source)) {
    std::fprintf(stderr, "cannot save snapshot: %s\n", save_error.c_str());
    return 1;
  }
  std::printf("index: built in %.4fs (%zu pairs), saved to %s in %.4fs\n", build_seconds,
              index.CachedPairCount(), out_path->c_str(), save_timer.Seconds());

  if (!args.Has("no-verify")) {
    bccs::Timer verify_timer;
    if (!VerifySnapshot(index, *out_path)) return 1;
    std::printf("verify: snapshot reload matches the built index (%.4fs)\n",
                verify_timer.Seconds());
  }
  return 0;
}
