#ifndef BCCS_COMMON_THREAD_ANNOTATIONS_H_
#define BCCS_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis annotations (-Wthread-safety): lock
/// discipline as machine-checked contracts instead of comments. A field
/// GUARDED_BY(mu) may only be touched while `mu` is held; a function
/// REQUIRES(mu) may only be called with `mu` held; ACQUIRE/RELEASE mark the
/// functions that take and drop a capability. The `dev` CMake preset builds
/// with -Wthread-safety -Werror under Clang, so a violated contract is a
/// compile error, not a TSan lottery ticket.
///
/// The analysis only tracks locks that flow through annotated types — a bare
/// std::mutex is invisible to it — so the annotated wrappers in
/// common/mutex.h (bccs::Mutex / bccs::MutexLock / bccs::CondVar) are the
/// companion half of this header: every lock in the serving, durability, and
/// index layers goes through them.
///
/// On compilers without the attribute (GCC, MSVC) every macro expands to
/// nothing: the annotations document the contracts and cost nothing. This is
/// the "gate missing deps" posture — the repo builds everywhere, and any
/// Clang checkout gets the full static analysis for free.

#if defined(__clang__) && (!defined(SWIG))
#define BCCS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define BCCS_THREAD_ANNOTATION_(x)  // no-op on non-Clang compilers
#endif

/// Marks a class as a lockable capability (mutexes). The string names the
/// capability kind in diagnostics.
#define CAPABILITY(x) BCCS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (lock guards).
#define SCOPED_CAPABILITY BCCS_THREAD_ANNOTATION_(scoped_lockable)

/// Data members: may only be read or written while holding `x`.
#define GUARDED_BY(x) BCCS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer members: the *pointee* may only be touched while holding `x`.
#define PT_GUARDED_BY(x) BCCS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Functions: caller must hold the capability (exclusively / shared).
#define REQUIRES(...) BCCS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  BCCS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire / release the capability (must not hold it on entry /
/// must hold it on entry, respectively).
#define ACQUIRE(...) BCCS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  BCCS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) BCCS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  BCCS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Functions: caller must NOT hold the capability (the function acquires it
/// itself; calling with it held would self-deadlock).
#define EXCLUDES(...) BCCS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (deadlock detection).
#define ACQUIRED_BEFORE(...) BCCS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) BCCS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Functions returning a reference to a capability (e.g. accessors handing
/// out the mutex that guards them).
#define RETURN_CAPABILITY(x) BCCS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for functions the analysis cannot model. Use sparingly and
/// say why at the call site.
#define NO_THREAD_SAFETY_ANALYSIS BCCS_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Try-lock functions: `b` is the success value.
#define TRY_ACQUIRE(b, ...) \
  BCCS_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Runtime assertion that the capability is held (fact injection after e.g.
/// a condition-variable wait through an opaque API).
#define ASSERT_CAPABILITY(x) BCCS_THREAD_ANNOTATION_(assert_capability(x))

#endif  // BCCS_COMMON_THREAD_ANNOTATIONS_H_
