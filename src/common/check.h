#ifndef BCCS_COMMON_CHECK_H_
#define BCCS_COMMON_CHECK_H_

#include <sstream>

/// Invariant checks for the hot structures: message + abort, never silent.
///
///   BCCS_CHECK(cond)            always on, in every build type. For cheap
///                               structural invariants whose violation means
///                               memory is already (or about to be) wrong —
///                               continuing would corrupt served answers or
///                               durable state. Costs one predictable branch;
///                               the perf_smoke check_overhead block holds it
///                               under 1% on the serving path.
///   BCCS_CHECK_EQ/NE/LT/LE/GT/GE(a, b)
///                               comparison forms that print both values.
///   BCCS_DCHECK / BCCS_DCHECK_* debug/validate builds only (see
///                               BCCS_DCHECK_IS_ON below). For per-element
///                               checks inside hot loops, where an always-on
///                               branch would be measurable.
///
/// Every form streams an optional context message:
///
///   BCCS_CHECK_LT(v, n) << "vertex out of range in " << where;
///
/// On failure the expression, file:line, values (comparison forms), and the
/// streamed message are printed to stderr and the process aborts — a failed
/// check is a bug in this code, not a recoverable input error (input
/// validation returns errors through the validate.h / graph_io paths).
///
/// Contract vs BCCS_DCHECK (DESIGN.md, contract 5): code may NOT rely on a
/// BCCS_DCHECK for safety — release builds skip it entirely — while a
/// passed BCCS_CHECK is a real guarantee downstream code may assume.

// BCCS_DCHECK is live when NDEBUG is off (Debug builds) or when the build
// forces it (the `dev` preset sets BCCS_FORCE_DCHECK so the -Werror static
// analysis build also exercises the debug checks at near-release speed).
#if !defined(NDEBUG) || defined(BCCS_FORCE_DCHECK)
#define BCCS_DCHECK_IS_ON 1
#else
#define BCCS_DCHECK_IS_ON 0
#endif

namespace bccs {
namespace check_internal {

/// Collects the failure message; the destructor prints and aborts. Lives
/// only inside a failing check's full-expression.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Formats "a vs b" for the comparison forms. Out-of-line so the cold
/// failure path adds no code to the caller beyond one call.
template <typename A, typename B>
std::string FormatComparison(const A& a, const B& b) {
  std::ostringstream os;
  os << " (" << a << " vs " << b << ")";
  return os.str();
}

}  // namespace check_internal
}  // namespace bccs

// BCCS_STRIP_CHECKS_FOR_BENCH exists ONLY for the check-overhead benchmark
// (tools/run_bench.sh builds a second perf_smoke with it to measure what the
// always-on checks cost). It must never be set for a served binary: the
// safety argument in DESIGN.md contract 5 assumes BCCS_CHECK is live.
#if defined(BCCS_STRIP_CHECKS_FOR_BENCH)

#define BCCS_CHECK(condition) \
  while (false) ::bccs::check_internal::CheckFailure(__FILE__, __LINE__, "").stream()
#define BCCS_CHECK_OP_(op, a, b) BCCS_CHECK((a)op(b))

#else  // !BCCS_STRIP_CHECKS_FOR_BENCH

// The for-loop trick: the condition is evaluated once; on failure the loop
// "body" — an expression statement the caller may extend with << — runs with
// a CheckFailure whose destructor aborts (so the loop never iterates). A
// plain statement form keeps it dangling-else safe.
#define BCCS_CHECK(condition)                                          \
  for (bool bccs_check_ok_ = static_cast<bool>(condition); !bccs_check_ok_; \
       bccs_check_ok_ = true)                                          \
  ::bccs::check_internal::CheckFailure(__FILE__, __LINE__, #condition).stream()

#define BCCS_CHECK_OP_(op, a, b)                                              \
  for (bool bccs_check_ok_ = static_cast<bool>((a)op(b)); !bccs_check_ok_;    \
       bccs_check_ok_ = true)                                                 \
  ::bccs::check_internal::CheckFailure(__FILE__, __LINE__, #a " " #op " " #b) \
          .stream()                                                           \
      << ::bccs::check_internal::FormatComparison((a), (b))

#endif  // BCCS_STRIP_CHECKS_FOR_BENCH

#define BCCS_CHECK_EQ(a, b) BCCS_CHECK_OP_(==, a, b)
#define BCCS_CHECK_NE(a, b) BCCS_CHECK_OP_(!=, a, b)
#define BCCS_CHECK_LT(a, b) BCCS_CHECK_OP_(<, a, b)
#define BCCS_CHECK_LE(a, b) BCCS_CHECK_OP_(<=, a, b)
#define BCCS_CHECK_GT(a, b) BCCS_CHECK_OP_(>, a, b)
#define BCCS_CHECK_GE(a, b) BCCS_CHECK_OP_(>=, a, b)

#if BCCS_DCHECK_IS_ON
#define BCCS_DCHECK(condition) BCCS_CHECK(condition)
#define BCCS_DCHECK_EQ(a, b) BCCS_CHECK_EQ(a, b)
#define BCCS_DCHECK_NE(a, b) BCCS_CHECK_NE(a, b)
#define BCCS_DCHECK_LT(a, b) BCCS_CHECK_LT(a, b)
#define BCCS_DCHECK_LE(a, b) BCCS_CHECK_LE(a, b)
#define BCCS_DCHECK_GT(a, b) BCCS_CHECK_GT(a, b)
#define BCCS_DCHECK_GE(a, b) BCCS_CHECK_GE(a, b)
#else
// Compiled out: the condition is type-checked but never evaluated (no side
// effects, no branch). `while (false)` keeps the trailing << legal.
#define BCCS_DCHECK(condition) \
  while (false) BCCS_CHECK(condition)
#define BCCS_DCHECK_EQ(a, b) \
  while (false) BCCS_CHECK_EQ(a, b)
#define BCCS_DCHECK_NE(a, b) \
  while (false) BCCS_CHECK_NE(a, b)
#define BCCS_DCHECK_LT(a, b) \
  while (false) BCCS_CHECK_LT(a, b)
#define BCCS_DCHECK_LE(a, b) \
  while (false) BCCS_CHECK_LE(a, b)
#define BCCS_DCHECK_GT(a, b) \
  while (false) BCCS_CHECK_GT(a, b)
#define BCCS_DCHECK_GE(a, b) \
  while (false) BCCS_CHECK_GE(a, b)
#endif  // BCCS_DCHECK_IS_ON

#endif  // BCCS_COMMON_CHECK_H_
