#include "common/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace bccs {
namespace check_internal {

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << file << ":" << line << ": Check failed: " << condition;
}

CheckFailure::~CheckFailure() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace bccs
