#ifndef BCCS_COMMON_MUTEX_H_
#define BCCS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace bccs {

/// std::mutex wrapped as an annotated capability. Clang's thread-safety
/// analysis only tracks locks taken through annotated functions, so every
/// mutex in the concurrent layers (changelog commit lock, epoch head,
/// admission queue, worker pool, pair cache) is a bccs::Mutex: a lock taken
/// through any other path is a compile error under -Wthread-safety, not a
/// latent race.
///
/// The lowercase lock()/unlock() spelling keeps the type BasicLockable, so
/// CondVar (std::condition_variable_any underneath) waits on it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard over Mutex — the annotated std::lock_guard. Scope-bound only;
/// there is deliberately no unlock()/release() escape: a region that needs
/// finer control should restructure, not juggle the guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait/WaitFor take the *mutex*
/// (which the caller must hold), not a guard object, so the REQUIRES
/// contract is visible to the analysis: the wait atomically releases and
/// reacquires `mu`, leaving the caller's lockset unchanged across the call.
///
/// Deliberately no predicate overloads: a predicate lambda is analyzed as
/// its own function and would read guarded state without a visible lockset.
/// Callers write the explicit loop — `while (!cond) cv.Wait(mu);` — inside
/// the function that holds the lock, which the analysis checks end to end.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Waits at most `dur` (or a spurious wakeup / notify, whichever first).
  /// Callers re-check their condition in the surrounding loop.
  template <typename Rep, typename Period>
  void WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& dur) REQUIRES(mu) {
    cv_.wait_for(mu, dur);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace bccs

#endif  // BCCS_COMMON_MUTEX_H_
