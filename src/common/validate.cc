#include "common/validate.h"

#include <algorithm>
#include <utility>

#include "bcc/bc_index.h"
#include "butterfly/butterfly_counting.h"
#include "core/core_decomposition.h"
#include "graph/changelog.h"

namespace bccs {

namespace {

std::string VertexStr(VertexId v) { return std::to_string(v); }

}  // namespace

ValidationResult ValidateGraph(const LabeledGraph& g) {
  const std::size_t n = g.NumVertices();
  const auto offsets = ValidateAccess::Offsets(g);
  const auto adjacency = ValidateAccess::Adjacency(g);
  const auto labels = ValidateAccess::Labels(g);
  const auto label_offsets = ValidateAccess::LabelOffsets(g);
  const auto label_members = ValidateAccess::LabelMembers(g);

  if (labels.size() != n) {
    return ValidationResult::Fail("label array has " + std::to_string(labels.size()) +
                                  " entries, want one per vertex (" + std::to_string(n) +
                                  ")");
  }
  if (n == 0) {
    if (!adjacency.empty()) {
      return ValidationResult::Fail("empty graph carries adjacency entries");
    }
    return ValidationResult::Ok();
  }
  if (offsets.size() != n + 1) {
    return ValidationResult::Fail("offset array has " + std::to_string(offsets.size()) +
                                  " entries, want NumVertices+1 = " +
                                  std::to_string(n + 1));
  }
  if (offsets[0] != 0) {
    return ValidationResult::Fail("offset array does not start at 0");
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      return ValidationResult::Fail("adjacency offsets not monotone at vertex " +
                                    VertexStr(static_cast<VertexId>(v)));
    }
  }
  if (offsets[n] != adjacency.size()) {
    return ValidationResult::Fail(
        "offset array ends at " + std::to_string(offsets[n]) + " but adjacency has " +
        std::to_string(adjacency.size()) + " entries");
  }

  // Local well-formedness of every adjacency list first (range, self-loops,
  // ordering); only once all lists are known sorted is the binary-search
  // symmetry pass valid.
  std::size_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.Neighbors(v);
    max_degree = std::max(max_degree, nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (u >= n) {
        return ValidationResult::Fail("neighbor " + VertexStr(u) + " of vertex " +
                                      VertexStr(v) + " out of range");
      }
      if (u == v) {
        return ValidationResult::Fail("self-loop on vertex " + VertexStr(v));
      }
      if (i > 0 && nbrs[i - 1] >= u) {
        return ValidationResult::Fail("adjacency of vertex " + VertexStr(v) +
                                      " not strictly ascending");
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : g.Neighbors(v)) {
      const auto back = g.Neighbors(u);
      if (!std::binary_search(back.begin(), back.end(), v)) {
        return ValidationResult::Fail("edge (" + VertexStr(v) + ", " + VertexStr(u) +
                                      ") missing its reverse direction");
      }
    }
  }
  if (max_degree != g.MaxDegree()) {
    return ValidationResult::Fail("stored max degree " + std::to_string(g.MaxDegree()) +
                                  " but computed " + std::to_string(max_degree));
  }

  const std::size_t num_labels = g.NumLabels();
  for (VertexId v = 0; v < n; ++v) {
    if (labels[v] >= num_labels) {
      return ValidationResult::Fail("label " + std::to_string(labels[v]) + " of vertex " +
                                    VertexStr(v) + " out of range");
    }
  }
  if (label_offsets.size() != num_labels + 1) {
    return ValidationResult::Fail("label offset array has " +
                                  std::to_string(label_offsets.size()) +
                                  " entries, want NumLabels+1");
  }
  if (label_offsets[0] != 0) {
    return ValidationResult::Fail("label offset array does not start at 0");
  }
  for (std::size_t l = 0; l < num_labels; ++l) {
    if (label_offsets[l + 1] < label_offsets[l]) {
      return ValidationResult::Fail("label offsets not monotone at label " +
                                    std::to_string(l));
    }
  }
  if (label_offsets[num_labels] != label_members.size()) {
    return ValidationResult::Fail("label offsets end at " +
                                  std::to_string(label_offsets[num_labels]) +
                                  " but label membership has " +
                                  std::to_string(label_members.size()) + " entries");
  }
  if (label_members.size() != n) {
    return ValidationResult::Fail("label membership covers " +
                                  std::to_string(label_members.size()) +
                                  " vertices, want every vertex once (" +
                                  std::to_string(n) + ")");
  }
  for (Label l = 0; l < num_labels; ++l) {
    const auto members = g.VerticesWithLabel(l);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const VertexId v = members[i];
      if (v >= n) {
        return ValidationResult::Fail("label " + std::to_string(l) + " member " +
                                      VertexStr(v) + " out of range");
      }
      if (i > 0 && members[i - 1] >= v) {
        return ValidationResult::Fail("members of label " + std::to_string(l) +
                                      " not strictly ascending");
      }
      if (labels[v] != l) {
        return ValidationResult::Fail("vertex " + VertexStr(v) + " listed under label " +
                                      std::to_string(l) + " but carries label " +
                                      std::to_string(labels[v]));
      }
    }
  }
  // Strictly-ascending per-label lists whose members all carry the listed
  // label, totalling NumVertices entries, necessarily cover every vertex
  // exactly once — no separate coverage pass needed.
  return ValidationResult::Ok();
}

std::size_t ValidateAccess::CorenessSize(const BcIndex& index) {
  return index.label_coreness_.size();
}

std::size_t ValidateAccess::MaxCoreSize(const BcIndex& index) {
  return index.max_core_per_label_.size();
}

LabeledGraph ValidateAccess::RawGraph(std::vector<std::uint64_t> offsets,
                                      std::vector<VertexId> adjacency,
                                      std::vector<Label> labels,
                                      std::vector<std::uint64_t> label_offsets,
                                      std::vector<VertexId> label_members) {
  LabeledGraph g;
  std::size_t max_degree = 0;
  if (!offsets.empty()) {
    for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
      if (offsets[v + 1] >= offsets[v]) {
        max_degree = std::max<std::size_t>(max_degree, offsets[v + 1] - offsets[v]);
      }
    }
  }
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.labels_ = std::move(labels);
  g.label_offsets_ = std::move(label_offsets);
  g.label_members_ = std::move(label_members);
  g.max_degree_ = max_degree;
  return g;
}

std::unique_ptr<BcIndex> ValidateAccess::RawIndex(
    const LabeledGraph& g, std::vector<std::uint32_t> label_coreness,
    std::vector<std::uint32_t> max_core_per_label) {
  std::unique_ptr<BcIndex> index(new BcIndex());
  index->g_ = &g;
  index->label_coreness_ = std::move(label_coreness);
  index->max_core_per_label_ = std::move(max_core_per_label);
  return index;
}

void ValidateAccess::SetCachedPair(BcIndex& index, Label a, Label b,
                                   ButterflyCounts counts) {
  if (a > b) std::swap(a, b);
  index.pair_cache_.Erase(a, b);
  index.pair_cache_.Insert(a, b, std::move(counts), /*pin=*/false);
}

ValidationResult ValidateIndex(const BcIndex& index, std::size_t sample_pairs) {
  const LabeledGraph& g = index.graph();
  const std::size_t n = g.NumVertices();
  if (ValidateAccess::CorenessSize(index) != n) {
    return ValidationResult::Fail(
        "coreness array has " + std::to_string(ValidateAccess::CorenessSize(index)) +
        " entries, want one per vertex (" + std::to_string(n) + ")");
  }
  if (ValidateAccess::MaxCoreSize(index) != g.NumLabels()) {
    return ValidationResult::Fail(
        "per-label max-coreness array has " +
        std::to_string(ValidateAccess::MaxCoreSize(index)) + " entries, want one per label (" +
        std::to_string(g.NumLabels()) + ")");
  }

  // Coreness is cheap to recompute exactly (O(V + E) bucket peeling), so the
  // audit compares every vertex rather than sampling.
  const std::vector<std::uint32_t> want = LabelCoreness(g);
  for (VertexId v = 0; v < n; ++v) {
    if (index.Coreness(v) != want[v]) {
      return ValidationResult::Fail("coreness mismatch at vertex " + VertexStr(v) +
                                    ": stored " + std::to_string(index.Coreness(v)) +
                                    ", recomputed " + std::to_string(want[v]));
    }
  }
  std::vector<std::uint32_t> want_max(g.NumLabels(), 0);
  for (VertexId v = 0; v < n; ++v) {
    want_max[g.LabelOf(v)] = std::max(want_max[g.LabelOf(v)], want[v]);
  }
  for (Label l = 0; l < g.NumLabels(); ++l) {
    if (index.MaxCoreness(l) != want_max[l]) {
      return ValidationResult::Fail("max coreness of label " + std::to_string(l) +
                                    ": stored " + std::to_string(index.MaxCoreness(l)) +
                                    ", recomputed " + std::to_string(want_max[l]));
    }
  }

  // Pair cache: accounting counters, shape of every entry, exact recount on
  // a deterministic sample (butterfly recounts are the expensive part).
  if (ValidationResult acc = ValidatePairCacheAccounting(index); !acc.ok) return acc;
  struct CachedPair {
    Label a = 0, b = 0;
  };
  std::vector<CachedPair> keys;
  ValidationResult key_check = ValidationResult::Ok();
  index.ForEachCachedPair([&](Label a, Label b, const ButterflyCounts& counts) {
    if (!key_check.ok) return;
    if (a >= b || b >= g.NumLabels()) {
      key_check = ValidationResult::Fail("cached pair key (" + std::to_string(a) + ", " +
                                         std::to_string(b) + ") not canonical/in range");
      return;
    }
    if (counts.chi.size() != n) {
      key_check = ValidationResult::Fail(
          "cached butterfly degrees for pair (" + std::to_string(a) + ", " +
          std::to_string(b) + ") have " + std::to_string(counts.chi.size()) +
          " entries, want one per vertex");
      return;
    }
    keys.push_back({a, b});
  });
  if (!key_check.ok) return key_check;

  if (sample_pairs == 0 || keys.empty()) return ValidationResult::Ok();
  const std::size_t stride = std::max<std::size_t>(1, keys.size() / sample_pairs);
  for (std::size_t i = 0; i < keys.size() && i / stride < sample_pairs; i += stride) {
    const Label a = keys[i].a, b = keys[i].b;
    const auto left = g.VerticesWithLabel(a);
    const auto right = g.VerticesWithLabel(b);
    std::vector<char> in_left(n, 0), in_right(n, 0);
    for (VertexId v : left) in_left[v] = 1;
    for (VertexId v : right) in_right[v] = 1;
    const ButterflyCounts want_counts = CountButterflies(
        g, {left.begin(), left.end()}, {right.begin(), right.end()}, in_left, in_right);
    const auto got_pin = index.PairButterflies(a, b);
    const ButterflyCounts& got = *got_pin;
    if (got.total != want_counts.total || got.chi != want_counts.chi) {
      return ValidationResult::Fail("cached butterfly counts for pair (" +
                                    std::to_string(a) + ", " + std::to_string(b) +
                                    ") disagree with an exact recount");
    }
  }
  return ValidationResult::Ok();
}

ValidationResult ValidatePairCacheAccounting(const BcIndex& index) {
  const BlockCacheStats stats = index.PairCacheStats();
  std::size_t bytes = 0, pinned_bytes = 0, entries = 0, pinned_entries = 0;
  for (const auto& entry : index.CachedPairEntries()) {
    const std::size_t entry_bytes = ButterflyBlockCache::BytesOf(*entry.counts);
    ++entries;
    if (entry.pinned) {
      ++pinned_entries;
      pinned_bytes += entry_bytes;
    } else {
      bytes += entry_bytes;
    }
  }
  if (stats.entries != entries || stats.pinned_entries != pinned_entries) {
    return ValidationResult::Fail(
        "pair cache entry counters disagree with residents: stats say " +
        std::to_string(stats.entries) + " (" + std::to_string(stats.pinned_entries) +
        " pinned), recount says " + std::to_string(entries) + " (" +
        std::to_string(pinned_entries) + " pinned)");
  }
  if (stats.bytes != bytes || stats.pinned_bytes != pinned_bytes) {
    return ValidationResult::Fail(
        "pair cache byte counters disagree with residents: stats say " +
        std::to_string(stats.bytes) + " budgeted / " + std::to_string(stats.pinned_bytes) +
        " pinned, recount says " + std::to_string(bytes) + " / " +
        std::to_string(pinned_bytes));
  }
  if (stats.budget_bytes > 0 && stats.bytes > stats.budget_bytes) {
    return ValidationResult::Fail("pair cache over budget: " + std::to_string(stats.bytes) +
                                  " budgeted bytes resident, budget " +
                                  std::to_string(stats.budget_bytes));
  }
  return ValidationResult::Ok();
}

ValidationResult ValidateChangelogChain(const std::string& snapshot_path,
                                        std::uint64_t base_seq) {
  ChangelogReplay replay;
  std::string error;
  if (!ScanChangelog(snapshot_path, base_seq, &replay, &error)) {
    return ValidationResult::Fail(error);
  }
  if (!replay.stale_details.empty()) {
    const auto& s = replay.stale_details.front();
    return ValidationResult::Fail(
        "stale changelog segment at or below watermark " + std::to_string(base_seq) +
        ": " + s.path + " (seq " + std::to_string(s.seq) +
        ") — folded segments must be dropped, not resurrected");
  }
  for (std::size_t i = 0; i < replay.segment_details.size(); ++i) {
    const auto& seg = replay.segment_details[i];
    const bool is_tail = i + 1 == replay.segment_details.size();
    if (!is_tail && !seg.sealed) {
      return ValidationResult::Fail("unsealed non-tail changelog segment " + seg.path +
                                    " (seq " + std::to_string(seg.seq) + ")");
    }
    if (!is_tail && seg.torn) {
      return ValidationResult::Fail("torn non-tail changelog segment " + seg.path);
    }
  }
  return ValidationResult::Ok();
}

ValidationResult ValidateEpochHistory(const EpochHistoryView& h) {
  if (h.published == 0) {
    return ValidationResult::Fail("no published epoch slot (slot 0 is published at open)");
  }
  if (h.slots.size() != h.updates_admitted + 1) {
    return ValidationResult::Fail(
        "history has " + std::to_string(h.slots.size()) + " slots, want one per admitted "
        "update plus the base slot (" + std::to_string(h.updates_admitted + 1) + ")");
  }
  if (h.published > h.slots.size()) {
    return ValidationResult::Fail("published count " + std::to_string(h.published) +
                                  " exceeds slot count " + std::to_string(h.slots.size()));
  }
  if (h.release_cursor >= h.published) {
    return ValidationResult::Fail("release cursor " + std::to_string(h.release_cursor) +
                                  " at or past the published head " +
                                  std::to_string(h.published));
  }
  for (std::size_t i = 0; i < h.release_cursor; ++i) {
    if (h.slots[i].pending != 0) {
      return ValidationResult::Fail("released slot " + std::to_string(i) + " still has " +
                                    std::to_string(h.slots[i].pending) +
                                    " pinned queries");
    }
    if (h.slots[i].has_state) {
      return ValidationResult::Fail("released slot " + std::to_string(i) +
                                    " still holds epoch state");
    }
  }
  std::uint64_t prev_epoch = 0;
  for (std::size_t i = h.release_cursor; i < h.published; ++i) {
    if (!h.slots[i].has_state) {
      return ValidationResult::Fail("published slot " + std::to_string(i) +
                                    " lost its epoch state before draining");
    }
    if (h.slots[i].epoch < prev_epoch) {
      return ValidationResult::Fail("epoch numbers not monotone at slot " +
                                    std::to_string(i) + ": " +
                                    std::to_string(h.slots[i].epoch) + " after " +
                                    std::to_string(prev_epoch));
    }
    prev_epoch = h.slots[i].epoch;
  }
  for (std::size_t i = h.published; i < h.slots.size(); ++i) {
    if (h.slots[i].has_state) {
      return ValidationResult::Fail("unpublished slot " + std::to_string(i) +
                                    " already holds epoch state");
    }
  }
  return ValidationResult::Ok();
}

}  // namespace bccs
