#ifndef BCCS_COMMON_VALIDATE_H_
#define BCCS_COMMON_VALIDATE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/labeled_graph.h"

namespace bccs {

class BcIndex;
struct ButterflyCounts;

/// Outcome of a deep structural audit. `reason` names the first violated
/// invariant (empty when ok) — validators stop at the first failure so the
/// reason always points at one concrete defect.
struct ValidationResult {
  bool ok = true;
  std::string reason;

  static ValidationResult Ok() { return {}; }
  static ValidationResult Fail(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const { return ok; }
};

/// CSR well-formedness of a LabeledGraph: offset-array shape and
/// monotonicity, strictly-ascending in-range adjacency lists with no
/// self-loops, symmetric adjacency (every (u,v) has its (v,u)), in-range
/// labels, and a label-membership CSR that partitions the vertex set with
/// each vertex under its own label. O(V + E log d). This is the contract
/// every kernel (linear-merge intersections, bucket peeling) assumes; a
/// graph that fails it can crash or silently mis-answer.
ValidationResult ValidateGraph(const LabeledGraph& g);

/// BcIndex consistency against its graph: array shapes, stored label
/// coreness equal to an exact recomputation (LabelCoreness), per-label
/// maxima, canonical in-range pair-cache keys, and — for up to
/// `sample_pairs` cached pairs, spread deterministically over the cache —
/// cached butterfly counts equal to an exact recount. 0 samples skips the
/// recount (shape and coreness checks still run).
ValidationResult ValidateIndex(const BcIndex& index, std::size_t sample_pairs = 4);

/// Pair block-cache accounting consistency: the cache's byte and entry
/// counters must equal a recomputation over the resident entries (split by
/// pinned/unpinned), and when a byte budget is set the budgeted bytes must
/// be within it. O(entries). Call on a quiesced index — a concurrently
/// mutating cache can legitimately disagree between the two reads.
ValidationResult ValidatePairCacheAccounting(const BcIndex& index);

/// Changelog-chain invariants for the segments next to `snapshot_path`
/// with base watermark `base_seq`: the scan itself must succeed (checksums,
/// contiguous sequence numbers, torn records only at the tail), every
/// non-tail live segment must be sealed, and no segment at or below the
/// watermark may exist (recovery deletes them; one on disk means a fold
/// published a watermark without dropping its inputs, or a stale file was
/// resurrected). Read-only.
ValidationResult ValidateChangelogChain(const std::string& snapshot_path,
                                        std::uint64_t base_seq);

/// A copy of the serve engine's epoch-history bookkeeping, snapshotted
/// under the stream lock (the engine builds this; tests build it by hand).
struct EpochHistoryView {
  struct Slot {
    std::uint64_t epoch = 0;  // meaningful when has_state
    std::size_t pending = 0;  // queries pinned to the slot
    bool has_state = false;   // slot still holds a (graph, index) pair
  };
  std::vector<Slot> slots;
  std::size_t published = 0;       // leading slots with published state
  std::size_t release_cursor = 0;  // first slot that may still hold state
  std::size_t updates_admitted = 0;
};

/// Epoch-history invariants: one slot per admitted update plus the base
/// slot, a released prefix that is fully drained and empty, a published
/// window that still holds state with monotone epochs, and no state in
/// slots not yet published.
ValidationResult ValidateEpochHistory(const EpochHistoryView& h);

/// Raw-array access and construction seams for the validators and their
/// tests. The audits must read fields the public API hides (and the tests
/// must build deliberately malformed structures the public constructors
/// refuse to produce), so this class is friended by LabeledGraph and
/// BcIndex. Not for use outside validation code.
class ValidateAccess {
 public:
  static std::span<const std::uint64_t> Offsets(const LabeledGraph& g) {
    return g.offsets_.span();
  }
  static std::span<const VertexId> Adjacency(const LabeledGraph& g) {
    return g.adjacency_.span();
  }
  static std::span<const Label> Labels(const LabeledGraph& g) { return g.labels_.span(); }
  static std::span<const std::uint64_t> LabelOffsets(const LabeledGraph& g) {
    return g.label_offsets_.span();
  }
  static std::span<const VertexId> LabelMembers(const LabeledGraph& g) {
    return g.label_members_.span();
  }

  static std::size_t CorenessSize(const BcIndex& index);
  static std::size_t MaxCoreSize(const BcIndex& index);

  /// Builds a graph from raw CSR arrays with no normalization — the test
  /// seam for seeding corruptions FromEdges would repair.
  static LabeledGraph RawGraph(std::vector<std::uint64_t> offsets,
                               std::vector<VertexId> adjacency, std::vector<Label> labels,
                               std::vector<std::uint64_t> label_offsets,
                               std::vector<VertexId> label_members);

  /// Builds an index over `g` with the given arrays, bypassing the real
  /// construction — the test seam for seeding coreness corruptions. `g`
  /// must outlive the result. (A pointer because the index owns a mutex
  /// and cannot move.)
  static std::unique_ptr<BcIndex> RawIndex(const LabeledGraph& g,
                                           std::vector<std::uint32_t> label_coreness,
                                           std::vector<std::uint32_t> max_core_per_label);

  /// Overwrites (or inserts) one cached pair entry — the test seam for
  /// seeding butterfly-count corruptions.
  static void SetCachedPair(BcIndex& index, Label a, Label b, ButterflyCounts counts);
};

}  // namespace bccs

#endif  // BCCS_COMMON_VALIDATE_H_
