#ifndef BCCS_TRUSS_TRUSS_MAINTENANCE_H_
#define BCCS_TRUSS_TRUSS_MAINTENANCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/labeled_graph.h"
#include "truss/truss_decomposition.h"

namespace bccs {

/// Maintains a k-truss subgraph under vertex deletions.
///
/// Initialized from the connected k-truss component found by TrussCommunity
/// (edges of trussness >= k among the component's vertices), it supports
/// batched vertex removal with the edge-support cascade: every destroyed
/// triangle decrements its surviving partner edges, and edges whose support
/// falls below k-2 are removed too; vertices die with their last edge.
/// Substrate of the CTC baseline's greedy peeling phase.
class KTrussMaintainer {
 public:
  /// `component` must be (a subset of) the vertices of a connected k-truss
  /// of `g` per `td` (e.g. the output of TrussCommunity).
  KTrussMaintainer(const LabeledGraph& g, const TrussDecomposition& td,
                   std::span<const VertexId> component, std::uint32_t k);

  std::uint32_t k() const { return k_; }
  bool VertexAlive(VertexId v) const { return valive_[v] != 0; }
  bool EdgeAlive(std::uint32_t edge_id) const { return ealive_[edge_id] != 0; }
  std::uint32_t EdgeSupport(std::uint32_t edge_id) const { return esup_[edge_id]; }
  std::uint32_t VertexDegree(VertexId v) const { return vdeg_[v]; }
  const std::vector<char>& vertex_alive() const { return valive_; }
  const std::vector<char>& edge_alive() const { return ealive_; }

  /// Removes the batch (each vertex's incident alive edges) and cascades.
  /// Returns every vertex that died, in death order (batch first).
  std::vector<VertexId> RemoveVertices(std::span<const VertexId> batch);

  /// Removes one alive edge {u, v} (an edge-level update, the dynamic-graph
  /// delta case) and cascades the support drops; vertices die with their
  /// last edge. The surviving edge set is exactly the k-truss edge set of
  /// the maintained subgraph minus the edge. Returns the vertices that
  /// died; no-op (empty) when the edge is absent or already dead.
  std::vector<VertexId> RemoveEdge(VertexId u, VertexId v);

  /// BFS distances from `source` over alive vertices and alive edges.
  void BfsOverAlive(VertexId source, std::vector<std::uint32_t>* dist) const;

 private:
  void CascadeEdges(std::vector<std::uint32_t> equeue, std::vector<VertexId>* died);

  const LabeledGraph* g_;
  const TrussDecomposition* td_;
  std::uint32_t k_;
  std::vector<char> valive_;
  std::vector<char> ealive_;
  std::vector<char> equeued_;
  std::vector<std::uint32_t> esup_;
  std::vector<std::uint32_t> vdeg_;
};

}  // namespace bccs

#endif  // BCCS_TRUSS_TRUSS_MAINTENANCE_H_
