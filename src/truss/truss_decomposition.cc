#include "truss/truss_decomposition.h"

#include <algorithm>

namespace bccs {

std::uint32_t TrussDecomposition::EdgeId(VertexId u, VertexId v) const {
  if (u > v) std::swap(u, v);
  auto begin = edges_.begin() + static_cast<std::ptrdiff_t>(first_edge_[u]);
  auto end = edges_.begin() + static_cast<std::ptrdiff_t>(first_edge_[u + 1]);
  auto it = std::lower_bound(begin, end, v,
                             [](const Edge& e, VertexId target) { return e.v < target; });
  if (it == end || it->v != v) return kInvalidEdge;
  return static_cast<std::uint32_t>(it - edges_.begin());
}

TrussDecomposition TrussDecomposition::Compute(const LabeledGraph& g) {
  TrussDecomposition td;
  td.edges_ = g.AllEdges();
  const std::size_t m = td.edges_.size();
  td.trussness_.assign(m, 2);

  // first_edge_[u] = first edge id whose smaller endpoint is u.
  td.first_edge_.assign(g.NumVertices() + 1, 0);
  for (const Edge& e : td.edges_) ++td.first_edge_[e.u + 1];
  for (std::size_t v = 0; v < g.NumVertices(); ++v) td.first_edge_[v + 1] += td.first_edge_[v];
  if (m == 0) return td;

  // Initial support = number of triangles per edge.
  std::vector<std::uint32_t> sup(m, 0);
  std::uint32_t max_sup = 0;
  for (std::uint32_t e = 0; e < m; ++e) {
    std::uint32_t s = 0;
    ForEachCommonNeighbor(g, td.edges_[e].u, td.edges_[e].v, [&](VertexId) { ++s; });
    sup[e] = s;
    max_sup = std::max(max_sup, s);
  }

  // Bucket queue over support values.
  std::vector<std::uint32_t> bin(max_sup + 2, 0);
  for (std::uint32_t e = 0; e < m; ++e) ++bin[sup[e]];
  std::uint32_t start = 0;
  for (std::uint32_t s = 0; s <= max_sup; ++s) {
    std::uint32_t count = bin[s];
    bin[s] = start;
    start += count;
  }
  std::vector<std::uint32_t> sorted(m), pos(m);
  {
    std::vector<std::uint32_t> cursor(bin.begin(), bin.end());
    for (std::uint32_t e = 0; e < m; ++e) {
      pos[e] = cursor[sup[e]];
      sorted[pos[e]] = e;
      ++cursor[sup[e]];
    }
  }

  std::vector<char> removed(m, 0);
  auto lower_support = [&](std::uint32_t e, std::uint32_t floor_sup) {
    if (sup[e] <= floor_sup) return;
    // Move e to the front of its bucket, then shift one bucket down.
    std::uint32_t s = sup[e];
    std::uint32_t pe = pos[e];
    std::uint32_t pfront = bin[s];
    std::uint32_t front = sorted[pfront];
    if (e != front) {
      std::swap(sorted[pe], sorted[pfront]);
      pos[e] = pfront;
      pos[front] = pe;
    }
    ++bin[s];
    --sup[e];
  };

  for (std::uint32_t i = 0; i < m; ++i) {
    std::uint32_t e = sorted[i];
    std::uint32_t s = sup[e];
    td.trussness_[e] = s + 2;
    td.max_trussness_ = std::max(td.max_trussness_, td.trussness_[e]);
    removed[e] = 1;
    VertexId u = td.edges_[e].u, v = td.edges_[e].v;
    ForEachCommonNeighbor(g, u, v, [&](VertexId w) {
      std::uint32_t euw = td.EdgeId(u, w);
      std::uint32_t evw = td.EdgeId(v, w);
      if (euw == kInvalidEdge || evw == kInvalidEdge) return;
      if (removed[euw] || removed[evw]) return;
      lower_support(euw, s);
      lower_support(evw, s);
    });
  }
  return td;
}

std::uint32_t MaxTrussConnecting(const LabeledGraph& g, const TrussDecomposition& td,
                                 std::span<const VertexId> queries) {
  std::uint32_t lo = 2, hi = td.max_trussness();
  if (TrussCommunity(g, td, queries, lo).empty()) return 0;
  // Largest k with a nonempty connected k-truss community (monotone in k).
  while (lo < hi) {
    std::uint32_t mid = lo + (hi - lo + 1) / 2;
    if (!TrussCommunity(g, td, queries, mid).empty()) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::vector<VertexId> TrussCommunity(const LabeledGraph& g, const TrussDecomposition& td,
                                     std::span<const VertexId> queries, std::uint32_t k) {
  if (queries.empty()) return {};
  VertexId source = queries[0];
  std::vector<char> visited(g.NumVertices(), 0);
  std::vector<VertexId> stack = {source};
  visited[source] = 1;
  std::vector<VertexId> component = {source};
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : g.Neighbors(v)) {
      if (visited[w]) continue;
      std::uint32_t e = td.EdgeId(v, w);
      if (e == kInvalidEdge || td.trussness()[e] < k) continue;
      visited[w] = 1;
      component.push_back(w);
      stack.push_back(w);
    }
  }
  for (VertexId q : queries) {
    if (!visited[q]) return {};
  }
  // A vertex belongs to the k-truss only if it has an incident edge of
  // trussness >= k; isolated BFS sources cannot occur beyond the degenerate
  // single-query case, which we keep (matching "community contains Q").
  std::sort(component.begin(), component.end());
  return component;
}

}  // namespace bccs
