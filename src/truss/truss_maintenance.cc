#include "truss/truss_maintenance.h"

#include "bcc/query_distance.h"

namespace bccs {

KTrussMaintainer::KTrussMaintainer(const LabeledGraph& g, const TrussDecomposition& td,
                                   std::span<const VertexId> component, std::uint32_t k)
    : g_(&g),
      td_(&td),
      k_(k),
      valive_(g.NumVertices(), 0),
      ealive_(td.edges().size(), 0),
      equeued_(td.edges().size(), 0),
      esup_(td.edges().size(), 0),
      vdeg_(g.NumVertices(), 0) {
  for (VertexId v : component) valive_[v] = 1;
  const auto& edges = td.edges();
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    if (td.trussness()[e] >= k && valive_[edges[e].u] && valive_[edges[e].v]) {
      ealive_[e] = 1;
      ++vdeg_[edges[e].u];
      ++vdeg_[edges[e].v];
    }
  }
  // Supports within the alive subgraph.
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    if (!ealive_[e]) continue;
    std::uint32_t s = 0;
    ForEachCommonNeighbor(g, edges[e].u, edges[e].v, [&](VertexId w) {
      std::uint32_t euw = td.EdgeId(edges[e].u, w);
      std::uint32_t evw = td.EdgeId(edges[e].v, w);
      if (euw != kInvalidEdge && evw != kInvalidEdge && ealive_[euw] && ealive_[evw]) ++s;
    });
    esup_[e] = s;
  }
}

void KTrussMaintainer::CascadeEdges(std::vector<std::uint32_t> equeue,
                                    std::vector<VertexId>* died) {
  const auto& edges = td_->edges();
  std::size_t head = 0;
  while (head < equeue.size()) {
    std::uint32_t e = equeue[head++];
    ealive_[e] = 0;  // dead only when processed: each triangle counted once
    VertexId u = edges[e].u, v = edges[e].v;
    ForEachCommonNeighbor(*g_, u, v, [&](VertexId w) {
      std::uint32_t euw = td_->EdgeId(u, w);
      std::uint32_t evw = td_->EdgeId(v, w);
      if (euw == kInvalidEdge || evw == kInvalidEdge) return;
      if (!ealive_[euw] || !ealive_[evw]) return;
      for (std::uint32_t f : {euw, evw}) {
        if (equeued_[f]) continue;
        if (--esup_[f] + 2 < k_) {
          equeued_[f] = 1;
          equeue.push_back(f);
        }
      }
    });
    for (VertexId x : {u, v}) {
      if (valive_[x] && --vdeg_[x] == 0) {
        valive_[x] = 0;
        died->push_back(x);
      }
    }
  }
}

std::vector<VertexId> KTrussMaintainer::RemoveVertices(std::span<const VertexId> batch) {
  std::vector<VertexId> died;
  std::vector<std::uint32_t> equeue;
  for (VertexId v : batch) {
    if (!valive_[v]) continue;
    valive_[v] = 0;
    died.push_back(v);
    for (VertexId w : g_->Neighbors(v)) {
      std::uint32_t e = td_->EdgeId(v, w);
      if (e != kInvalidEdge && ealive_[e] && !equeued_[e]) {
        equeued_[e] = 1;
        equeue.push_back(e);
      }
    }
  }
  CascadeEdges(std::move(equeue), &died);
  return died;
}

std::vector<VertexId> KTrussMaintainer::RemoveEdge(VertexId u, VertexId v) {
  std::vector<VertexId> died;
  const std::uint32_t e = td_->EdgeId(u, v);
  if (e == kInvalidEdge || !ealive_[e] || equeued_[e]) return died;
  equeued_[e] = 1;
  CascadeEdges({e}, &died);
  return died;
}

void KTrussMaintainer::BfsOverAlive(VertexId source, std::vector<std::uint32_t>* dist) const {
  dist->assign(g_->NumVertices(), kInfDistance);
  if (!valive_[source]) return;
  std::vector<VertexId> frontier = {source};
  (*dist)[source] = 0;
  std::uint32_t level = 0;
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    next.clear();
    ++level;
    for (VertexId v : frontier) {
      for (VertexId w : g_->Neighbors(v)) {
        if (!valive_[w] || (*dist)[w] != kInfDistance) continue;
        std::uint32_t e = td_->EdgeId(v, w);
        if (e == kInvalidEdge || !ealive_[e]) continue;
        (*dist)[w] = level;
        next.push_back(w);
      }
    }
    frontier.swap(next);
  }
}

}  // namespace bccs
