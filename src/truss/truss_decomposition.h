#ifndef BCCS_TRUSS_TRUSS_DECOMPOSITION_H_
#define BCCS_TRUSS_TRUSS_DECOMPOSITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/labeled_graph.h"

namespace bccs {

/// Sentinel for "no such edge".
inline constexpr std::uint32_t kInvalidEdge = static_cast<std::uint32_t>(-1);

/// Edge trussness of a graph: the trussness of edge e is the largest k such
/// that e belongs to a k-truss (a subgraph where every edge is contained in
/// at least k-2 triangles). Substrate for the CTC baseline (Huang et al.,
/// PVLDB 2015).
class TrussDecomposition {
 public:
  /// Computes support via sorted-adjacency intersection and peels edges in
  /// increasing support order (bucket queue).
  static TrussDecomposition Compute(const LabeledGraph& g);

  /// Canonical edges (u < v), sorted lexicographically; ids index this list.
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<std::uint32_t>& trussness() const { return trussness_; }
  std::uint32_t max_trussness() const { return max_trussness_; }

  /// Edge id of {u, v}, or kInvalidEdge. O(log deg).
  std::uint32_t EdgeId(VertexId u, VertexId v) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> trussness_;
  std::vector<std::size_t> first_edge_;  // first edge id with .u == v
  std::uint32_t max_trussness_ = 2;
};

/// The largest k such that all of `queries` lie in the same connected
/// component of the k-truss of `g`. Returns 0 when the queries are not even
/// 2-truss-connected.
std::uint32_t MaxTrussConnecting(const LabeledGraph& g, const TrussDecomposition& td,
                                 std::span<const VertexId> queries);

/// Vertices of the connected k-truss component containing all of `queries`
/// (connectivity via edges of trussness >= k). Empty if none. Sorted.
std::vector<VertexId> TrussCommunity(const LabeledGraph& g, const TrussDecomposition& td,
                                     std::span<const VertexId> queries, std::uint32_t k);

}  // namespace bccs

#endif  // BCCS_TRUSS_TRUSS_DECOMPOSITION_H_
