#include "tools/arg_parser.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace bccs {

std::size_t ArgParser::ClampThreadCount(std::int64_t requested, bool* clamped) {
  if (clamped != nullptr) *clamped = false;
  if (requested <= 0) return 0;  // auto
  const auto hw = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  // Moderate oversubscription is a legitimate ask (determinism checks run
  // 2 workers on 1 core); only a count past 4x the machine — a typo or a
  // copy-paste from bigger hardware — is clamped down.
  if (requested > 4 * hw) {
    if (clamped != nullptr) *clamped = true;
    return static_cast<std::size_t>(hw);
  }
  return static_cast<std::size_t>(requested);
}

ArgParser ArgParser::Parse(const std::vector<std::string>& args) {
  ArgParser out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      out.flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      out.flags_[body] = args[i + 1];
      ++i;
    } else {
      out.flags_[body] = "";
    }
  }
  return out;
}

ArgParser ArgParser::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

std::optional<std::string> ArgParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> ArgParser::GetInt(const std::string& name) const {
  auto s = GetString(name);
  if (!s || s->empty()) return std::nullopt;
  char* end = nullptr;
  std::int64_t value = std::strtoll(s->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return value;
}

std::optional<double> ArgParser::GetDouble(const std::string& name) const {
  auto s = GetString(name);
  if (!s || s->empty()) return std::nullopt;
  char* end = nullptr;
  double value = std::strtod(s->c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return value;
}

std::string ArgParser::GetStringOr(const std::string& name, const std::string& fallback) const {
  return GetString(name).value_or(fallback);
}

std::int64_t ArgParser::GetIntOr(const std::string& name, std::int64_t fallback) const {
  return GetInt(name).value_or(fallback);
}

double ArgParser::GetDoubleOr(const std::string& name, double fallback) const {
  return GetDouble(name).value_or(fallback);
}

std::int64_t ArgParser::GetPositiveIntOr(const std::string& name, std::int64_t fallback,
                                         bool* valid) const {
  if (!Has(name)) return fallback;
  auto value = GetInt(name);
  if (!value || *value <= 0) {
    if (valid != nullptr) *valid = false;
    return fallback;
  }
  return *value;
}

std::int64_t ArgParser::GetNonNegativeIntOr(const std::string& name, std::int64_t fallback,
                                            bool* valid) const {
  if (!Has(name)) return fallback;
  auto value = GetInt(name);
  if (!value || *value < 0) {
    if (valid != nullptr) *valid = false;
    return fallback;
  }
  return *value;
}

std::vector<std::string> ArgParser::UnknownFlags(const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const auto& k : known) found |= (k == name);
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace bccs
