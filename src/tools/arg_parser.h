#ifndef BCCS_TOOLS_ARG_PARSER_H_
#define BCCS_TOOLS_ARG_PARSER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bccs {

/// Minimal command-line flag parser for the bccs tools: flags look like
/// --name=value or --name value; bare --name is a boolean true. Anything not
/// starting with "--" is a positional argument.
class ArgParser {
 public:
  /// Parses argv (excluding argv[0]). Returns std::nullopt on malformed
  /// input (e.g. a trailing --flag expecting a value... bare flags are
  /// valid, so parsing itself never fails on that; reserved for future
  /// validation) -- currently always succeeds.
  static ArgParser Parse(int argc, const char* const* argv);
  static ArgParser Parse(const std::vector<std::string>& args);

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::optional<std::string> GetString(const std::string& name) const;
  std::optional<std::int64_t> GetInt(const std::string& name) const;
  std::optional<double> GetDouble(const std::string& name) const;

  std::string GetStringOr(const std::string& name, const std::string& fallback) const;
  std::int64_t GetIntOr(const std::string& name, std::int64_t fallback) const;
  double GetDoubleOr(const std::string& name, double fallback) const;

  /// Strict positive-integer flag: returns `fallback` when the flag is
  /// absent, its value when present and a valid integer > 0, and otherwise
  /// clears *valid (non-numeric, zero, negative, or missing value) so the
  /// tool can reject the invocation with a usage message.
  std::int64_t GetPositiveIntOr(const std::string& name, std::int64_t fallback,
                                bool* valid) const;

  /// Strict non-negative-integer flag: like GetPositiveIntOr but 0 is a
  /// valid value (e.g. --threads 0 = auto, --k1 0 = auto). Clears *valid on
  /// a negative, non-numeric, or missing value.
  std::int64_t GetNonNegativeIntOr(const std::string& name, std::int64_t fallback,
                                   bool* valid) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Resolves a validated --threads value: 0 stays 0 (auto = hardware
  /// concurrency), and counts above 4x the machine's hardware concurrency
  /// are clamped down to it — a typo'd huge count must not spawn thousands
  /// of threads, while moderate oversubscription (thread-determinism
  /// checks) stays allowed. Sets *clamped when clamping happened so the
  /// tool can warn.
  static std::size_t ClampThreadCount(std::int64_t requested, bool* clamped = nullptr);

  /// Flags that were provided but are not in `known`; used for error
  /// reporting.
  std::vector<std::string> UnknownFlags(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;  // bare flags map to ""
  std::vector<std::string> positional_;
};

}  // namespace bccs

#endif  // BCCS_TOOLS_ARG_PARSER_H_
