#ifndef BCCS_BASELINES_PSA_H_
#define BCCS_BASELINES_PSA_H_

#include <span>
#include <vector>

#include "bcc/bcc_types.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// Reimplementation of the progressive minimum k-core search baseline (Li,
/// Zhang, Zhang, Qin, Zhang, Lin: "Efficient progressive minimum k-core
/// search", PVLDB 2019) used by the paper as the PSA comparator.
///
/// Label-blind: with k = min coreness over the query vertices, progressively
/// expands distance balls around the queries until the candidate contains a
/// connected k-core with all queries, then greedily shrinks it by peeling
/// the farthest vertices while the k-core and query connectivity survive,
/// returning the last (smallest) valid state. This is the documented
/// expand-then-shrink skeleton of the original paper without its additional
/// pruning machinery (DESIGN.md deviation 2).
class PsaSearcher {
 public:
  explicit PsaSearcher(const LabeledGraph& g);

  Community Search(std::span<const VertexId> queries, SearchStats* stats = nullptr) const;

  Community Search(const BccQuery& q, SearchStats* stats = nullptr) const {
    const VertexId qs[] = {q.ql, q.qr};
    return Search(qs, stats);
  }

  std::uint32_t CorenessOf(VertexId v) const { return coreness_[v]; }

 private:
  const LabeledGraph* g_;
  std::vector<std::uint32_t> coreness_;
};

}  // namespace bccs

#endif  // BCCS_BASELINES_PSA_H_
