#ifndef BCCS_BASELINES_CTC_H_
#define BCCS_BASELINES_CTC_H_

#include <span>

#include "bcc/bcc_types.h"
#include "graph/labeled_graph.h"
#include "truss/truss_decomposition.h"

namespace bccs {

/// Reimplementation of the Closest Truss Community baseline (Huang,
/// Lakshmanan, Yu, Cheng: "Approximate closest community search in
/// networks", PVLDB 2015) used by the paper as the CTC comparator.
///
/// Label-blind: finds the connected k-truss with the maximum k containing
/// all query vertices, then greedily peels the farthest vertices while
/// maintaining the k-truss (edge-support cascade), and returns the
/// intermediate community with the minimum query distance.
///
/// The truss decomposition is computed once at construction and shared
/// across queries (the paper measures per-query search time only).
class CtcSearcher {
 public:
  explicit CtcSearcher(const LabeledGraph& g)
      : g_(&g), td_(TrussDecomposition::Compute(g)) {}

  /// Searches the closest truss community for a query vertex set.
  Community Search(std::span<const VertexId> queries, SearchStats* stats = nullptr) const;

  Community Search(const BccQuery& q, SearchStats* stats = nullptr) const {
    const VertexId qs[] = {q.ql, q.qr};
    return Search(qs, stats);
  }

  const TrussDecomposition& decomposition() const { return td_; }

 private:
  const LabeledGraph* g_;
  TrussDecomposition td_;
};

}  // namespace bccs

#endif  // BCCS_BASELINES_CTC_H_
