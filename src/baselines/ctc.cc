#include "baselines/ctc.h"

#include <algorithm>

#include "bcc/query_distance.h"
#include "eval/timer.h"
#include "truss/truss_maintenance.h"

namespace bccs {

Community CtcSearcher::Search(std::span<const VertexId> queries, SearchStats* stats) const {
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Timer total;
  Community out;
  if (queries.empty()) return out;

  const LabeledGraph& g = *g_;
  std::uint32_t k = MaxTrussConnecting(g, td_, queries);
  if (k < 2) {
    stats->total_seconds += total.Seconds();
    return out;
  }
  std::vector<VertexId> comp = TrussCommunity(g, td_, queries, k);
  stats->g0_size += comp.size();

  KTrussMaintainer maintainer(g, td_, comp, k);
  constexpr std::uint32_t kNeverRemoved = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> removal_round(g.NumVertices(), kNeverRemoved);
  std::vector<std::uint32_t> round_qd;
  std::vector<std::vector<std::uint32_t>> dist(queries.size());

  auto recompute_dist = [&]() {
    ScopedAccumulator t(&stats->query_distance_seconds);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      maintainer.BfsOverAlive(queries[i], &dist[i]);
    }
  };
  recompute_dist();

  std::vector<VertexId> batch;
  while (true) {
    // Farthest alive vertices by query distance.
    std::uint32_t qd = 0;
    bool any = false;
    batch.clear();
    for (VertexId v : comp) {
      if (!maintainer.VertexAlive(v)) continue;
      any = true;
      std::uint32_t d = 0;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (dist[i][v] == kInfDistance) {
          d = kInfDistance;
          break;
        }
        d = std::max(d, dist[i][v]);
      }
      if (d > qd) {
        qd = d;
        batch.clear();
      }
      if (d == qd) batch.push_back(v);
    }
    if (!any) break;
    round_qd.push_back(qd);
    ++stats->rounds;

    std::erase_if(batch, [&](VertexId v) {
      return std::find(queries.begin(), queries.end(), v) != queries.end();
    });
    if (batch.empty()) break;

    const auto round_idx = static_cast<std::uint32_t>(round_qd.size() - 1);
    for (VertexId v : maintainer.RemoveVertices(batch)) {
      removal_round[v] = round_idx;
      ++stats->vertices_removed;
    }

    bool query_dead = false;
    for (VertexId q : queries) query_dead |= !maintainer.VertexAlive(q);
    if (query_dead) break;
    recompute_dist();
    bool connected = true;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      connected &= dist[0][queries[i]] != kInfDistance;
    }
    if (!connected) break;
  }

  if (round_qd.empty()) {
    stats->total_seconds += total.Seconds();
    return out;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < round_qd.size(); ++i) {
    if (round_qd[i] <= round_qd[best]) best = i;
  }
  for (VertexId v : comp) {
    if (removal_round[v] >= best) out.vertices.push_back(v);
  }
  std::sort(out.vertices.begin(), out.vertices.end());
  stats->total_seconds += total.Seconds();
  return out;
}

}  // namespace bccs
