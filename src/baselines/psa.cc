#include "baselines/psa.h"

#include <algorithm>

#include "bcc/query_distance.h"
#include "core/core_decomposition.h"
#include "core/core_maintenance.h"
#include "eval/timer.h"

namespace bccs {

PsaSearcher::PsaSearcher(const LabeledGraph& g) : g_(&g), coreness_(CoreDecomposition(g)) {}

Community PsaSearcher::Search(std::span<const VertexId> queries, SearchStats* stats) const {
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Timer total;
  Community out;
  if (queries.empty()) return out;

  const LabeledGraph& g = *g_;
  std::uint32_t k = kInfDistance;
  for (VertexId q : queries) k = std::min(k, coreness_[q]);
  if (k == 0 || k == kInfDistance) {
    stats->total_seconds += total.Seconds();
    return out;
  }

  // Whole-graph distance balls around the queries.
  std::vector<char> everything(g.NumVertices(), 1);
  std::vector<std::vector<std::uint32_t>> ball(queries.size());
  {
    ScopedAccumulator t(&stats->query_distance_seconds);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      BfsDistances(g, everything, queries[i], &ball[i]);
    }
  }

  // Progressive expansion: grow the radius until some candidate ball holds a
  // connected k-core with all queries.
  std::vector<VertexId> comp;
  for (std::uint32_t radius = 1;; radius *= 2) {
    std::vector<VertexId> candidate;
    bool covers_all = true;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      std::uint32_t dmin = kInfDistance;
      for (std::size_t i = 0; i < queries.size(); ++i) dmin = std::min(dmin, ball[i][v]);
      if (dmin <= radius) {
        candidate.push_back(v);
      } else if (dmin != kInfDistance) {
        covers_all = false;
      }
    }
    std::vector<VertexId> core = KCoreOfSubset(g, candidate, k);
    comp = ComponentContaining(g, core, queries[0]);
    bool ok = !comp.empty();
    for (VertexId q : queries) {
      ok = ok && std::binary_search(comp.begin(), comp.end(), q);
    }
    if (ok) break;
    comp.clear();
    if (covers_all) break;  // the ball already holds every reachable vertex
  }
  if (comp.empty()) {
    stats->total_seconds += total.Seconds();
    return out;
  }
  stats->g0_size += comp.size();

  // Shrink: peel farthest vertices while the connected k-core with all
  // queries survives; the last valid state is the (locally) minimum one.
  KCoreMaintainer maintainer(g, comp, k);
  constexpr std::uint32_t kNeverRemoved = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> removal_round(g.NumVertices(), kNeverRemoved);
  std::vector<std::vector<std::uint32_t>> dist(queries.size());
  auto recompute_dist = [&]() {
    ScopedAccumulator t(&stats->query_distance_seconds);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      BfsDistances(g, maintainer.alive(), queries[i], &dist[i]);
    }
  };
  recompute_dist();

  std::uint32_t rounds = 0;
  std::vector<VertexId> batch;
  while (true) {
    std::uint32_t qd = 0;
    bool any = false;
    batch.clear();
    for (VertexId v : comp) {
      if (!maintainer.Contains(v)) continue;
      any = true;
      std::uint32_t d = 0;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (dist[i][v] == kInfDistance) {
          d = kInfDistance;
          break;
        }
        d = std::max(d, dist[i][v]);
      }
      if (d > qd) {
        qd = d;
        batch.clear();
      }
      if (d == qd) batch.push_back(v);
    }
    if (!any) break;
    ++rounds;
    ++stats->rounds;

    std::erase_if(batch, [&](VertexId v) {
      return std::find(queries.begin(), queries.end(), v) != queries.end();
    });
    if (batch.empty()) break;

    for (VertexId v : batch) {
      for (VertexId r : maintainer.Remove(v)) {
        removal_round[r] = rounds - 1;
        ++stats->vertices_removed;
      }
    }
    bool query_dead = false;
    for (VertexId q : queries) query_dead |= !maintainer.Contains(q);
    if (query_dead) break;
    recompute_dist();
    bool connected = true;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      connected &= dist[0][queries[i]] != kInfDistance;
    }
    if (!connected) break;
  }

  if (rounds == 0) {
    stats->total_seconds += total.Seconds();
    return out;
  }
  // Last recorded round = smallest valid candidate.
  std::uint32_t best = rounds - 1;
  for (VertexId v : comp) {
    if (removal_round[v] >= best) out.vertices.push_back(v);
  }
  std::sort(out.vertices.begin(), out.vertices.end());
  stats->total_seconds += total.Seconds();
  return out;
}

}  // namespace bccs
