#include "graph/labeled_graph.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bccs {

LabeledGraph LabeledGraph::FromEdges(std::size_t num_vertices, std::vector<Edge> edges,
                                     std::vector<Label> labels) {
  assert(labels.size() == num_vertices);

  // Canonicalize, drop self-loops, dedupe.
  std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  for (Edge& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
    assert(e.v < num_vertices);
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  LabeledGraph g;
  g.labels_ = std::move(labels);
  g.offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 0; i < num_vertices; ++i) g.offsets_[i + 1] += g.offsets_[i];

  g.adjacency_.resize(2 * edges.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
    g.max_degree_ = std::max(g.max_degree_, g.offsets_[v + 1] - g.offsets_[v]);
  }

  Label max_label = 0;
  for (Label l : g.labels_) max_label = std::max(max_label, l);
  g.label_members_.resize(num_vertices == 0 ? 0 : max_label + 1);
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.label_members_[g.labels_[v]].push_back(v);
  }
  return g;
}

bool LabeledGraph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> LabeledGraph::AllEdges() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : Neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;
}

}  // namespace bccs
