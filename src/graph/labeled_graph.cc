#include "graph/labeled_graph.h"

#include "common/check.h"

#include <algorithm>
#include <utility>

namespace bccs {

LabeledGraph LabeledGraph::FromEdges(std::size_t num_vertices, std::vector<Edge> edges,
                                     std::vector<Label> labels) {
  BCCS_CHECK_EQ(labels.size(), num_vertices);

  // Canonicalize, drop self-loops, dedupe.
  std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  for (Edge& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
    BCCS_CHECK_LT(e.v, num_vertices) << "edge endpoint out of range";
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<std::uint64_t> offsets(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 0; i < num_vertices; ++i) offsets[i + 1] += offsets[i];

  std::vector<VertexId> adjacency(2 * edges.size());
  std::size_t max_degree = 0;
  {
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges) {
      adjacency[cursor[e.u]++] = e.v;
      adjacency[cursor[e.v]++] = e.u;
    }
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
    max_degree = std::max<std::size_t>(max_degree, offsets[v + 1] - offsets[v]);
  }

  Label max_label = 0;
  for (Label l : labels) max_label = std::max(max_label, l);
  const std::size_t num_labels = num_vertices == 0 ? 0 : max_label + 1;
  // Per-label member lists in CSR form; iterating vertices ascending keeps
  // each label group sorted.
  std::vector<std::uint64_t> label_offsets(num_labels + 1, 0);
  for (Label l : labels) ++label_offsets[l + 1];
  for (std::size_t i = 0; i < num_labels; ++i) label_offsets[i + 1] += label_offsets[i];
  std::vector<VertexId> label_members(num_vertices);
  {
    std::vector<std::uint64_t> cursor(label_offsets.begin(), label_offsets.end() - 1);
    for (VertexId v = 0; v < num_vertices; ++v) label_members[cursor[labels[v]]++] = v;
  }

  LabeledGraph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.labels_ = std::move(labels);
  g.label_offsets_ = std::move(label_offsets);
  g.label_members_ = std::move(label_members);
  g.max_degree_ = max_degree;
  return g;
}

bool LabeledGraph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> LabeledGraph::AllEdges() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : Neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;
}

}  // namespace bccs
