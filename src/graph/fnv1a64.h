#ifndef BCCS_GRAPH_FNV1A64_H_
#define BCCS_GRAPH_FNV1A64_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace bccs {

/// Streaming FNV-1a folding 8 input bytes per multiply (a word-wise variant
/// of the classic byte-wise loop — ~8x faster, which keeps checksum
/// verification a small fraction of snapshot load time). The internal
/// 8-byte carry buffer makes the digest independent of how the input is
/// chunked across Update() calls, so a writer hashing per-section and a
/// loader hashing the whole payload in one call agree. Shared by the
/// snapshot payload/delta-block checksums (graph/snapshot.cc) and the
/// changelog record/segment checksums (graph/changelog.cc).
class Fnv1a64 {
 public:
  void Update(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    while (len > 0) {
      if (pending_len_ == 0 && len >= 8) {
        do {
          std::uint64_t word;
          std::memcpy(&word, p, 8);
          hash_ = (hash_ ^ word) * kPrime;
          p += 8;
          len -= 8;
        } while (len >= 8);
        continue;
      }
      pending_[pending_len_++] = *p++;
      --len;
      if (pending_len_ == 8) {
        std::uint64_t word;
        std::memcpy(&word, pending_, 8);
        hash_ = (hash_ ^ word) * kPrime;
        pending_len_ = 0;
      }
    }
  }

  std::uint64_t Digest() const {
    std::uint64_t h = hash_;
    for (std::size_t i = 0; i < pending_len_; ++i) h = (h ^ pending_[i]) * kPrime;
    return h;
  }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash_ = 14695981039346656037ull;
  unsigned char pending_[8] = {};
  std::size_t pending_len_ = 0;
};

}  // namespace bccs

#endif  // BCCS_GRAPH_FNV1A64_H_
