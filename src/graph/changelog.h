#ifndef BCCS_GRAPH_CHANGELOG_H_
#define BCCS_GRAPH_CHANGELOG_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "graph/fnv1a64.h"
#include "graph/graph_delta.h"
#include "graph/snapshot.h"

namespace bccs {

/// The rotated changelog: crash-safe durability for edge updates, layered
/// next to a snapshot instead of inside it.
///
/// A snapshot at `<path>` may be accompanied by segment files named
/// `<path>.log.NNNNNN` (six-digit decimal sequence number, ascending,
/// gap-free, starting at base_changelog_seq + 1 where base_changelog_seq is
/// the watermark stamped in the snapshot header — segments at or below it
/// are already folded into the base payload and are ignored/deleted on
/// sight, which is what makes compaction idempotent across crashes).
///
/// Segment layout (all fields little-endian, written on the host):
///
///   [32-byte segment header]  magic "BCCSLOG1", format version, sequence
///                             number, FNV-1a64 checksum of the preceding
///                             24 header bytes
///   [record]*                 each: a 48-byte record header — magic
///                             "BCCSREC1", kind (0 = update batch, 1 =
///                             seal), entry count, the source-graph stamp
///                             the snapshot REPRESENTS once the record is
///                             replayed, body checksum, header checksum —
///                             followed by count 16-byte entries {kind
///                             (0 insert / 1 delete), u, v, reserved}
///
/// A *seal* record (kind 1, zero entries) marks the segment complete; its
/// body checksum covers every byte of the segment before the seal, so a
/// sealed segment is verifiable end to end. The writer seals and rotates
/// once a segment exceeds the block-count or byte thresholds; the
/// background compactor (graph/compactor.h) folds sealed segments into a
/// new base snapshot and advances the watermark.
///
/// Recovery discipline (ARIES-style, prefix-consistent): only the unsealed
/// tail can legitimately be torn by a crash, so recovery scans segments in
/// sequence order, verifies every record, and on the FIRST invalid record
/// of the LAST segment truncates the file there and stops — acknowledged
/// records before the tear replay exactly; the torn bytes were never
/// acknowledged under any policy that fsyncs. An invalid record in a
/// NON-tail segment (or a sequence gap) is real corruption of data that
/// may have been acknowledged durable, and is a hard error rather than a
/// silent drop.
///
/// Durability policy — what an acknowledged Append() means (see DESIGN.md,
/// durability contract):
///
///   kNone         buffered write() only; a crash may lose any suffix of
///                 acknowledged records (power-loss durability is the OS's
///                 writeback schedule). Process-crash-safe, not
///                 power-loss-safe.
///   kOnRotation   fdatasync at seal time: records in sealed segments
///                 survive power loss; the unsealed tail may lose a suffix.
///   kEveryAppend  fdatasync before every acknowledgment: an acknowledged
///                 record survives power loss.
///
/// Thread safety: the class does NOT lock internally. Callers serialize
/// Append/SealTail/DropSegmentsThrough through commit_mutex() — the serve
/// engine holds it across append + epoch publish so the compactor can
/// capture a (state, sealed-seq) pair that agree. The contract is
/// machine-checked: every mutator and counter is REQUIRES(commit_mutex_),
/// so a call without the lock is a compile error under -Wthread-safety.

enum class FsyncPolicy : std::uint8_t { kNone, kOnRotation, kEveryAppend };

const char* Name(FsyncPolicy p);
/// Parses "none" | "on-rotation" | "every-append" (the --fsync values).
bool ParseFsyncPolicy(const std::string& text, FsyncPolicy* out);

struct ChangelogOptions {
  FsyncPolicy fsync = FsyncPolicy::kOnRotation;
  /// Seal + rotate after this many update records (--segment-blocks).
  std::size_t segment_blocks = 64;
  /// ... or once the segment file exceeds this many bytes.
  std::size_t segment_bytes = 4u << 20;
};

/// What recovery found and did, plus live counters (bccs_update/bccs_serve
/// print this as the recovery report).
struct ChangelogStatus {
  /// Live (seq > watermark) segments present after recovery.
  std::size_t segments = 0;
  std::size_t sealed_segments = 0;
  /// Records / updates replayable from the live segments.
  std::size_t records = 0;
  std::size_t updates = 0;
  /// Stale segments (seq <= watermark, already folded) deleted at open.
  std::size_t stale_segments_removed = 0;
  /// Bytes cut off the tail segment (torn by a crash mid-append).
  std::uint64_t truncated_bytes = 0;
  /// A whole tail segment file dropped (torn before its header was
  /// durable).
  bool dropped_tail_segment = false;
};

/// Read-only scan result: what LoadSnapshot replays on top of the base
/// payload. Mirrors recovery exactly but never mutates the files.
struct ChangelogReplay {
  std::vector<EdgeUpdate> updates;
  /// Stamp of the last replayed update record; meaningful when has_stamp.
  SourceGraphInfo effective;
  bool has_stamp = false;
  std::size_t segments = 0;
  std::size_t sealed_segments = 0;
  std::size_t records = 0;
  std::size_t stale_segments = 0;
  std::uint64_t torn_tail_bytes = 0;

  /// Per-segment detail for auditors (common/validate.h, bccs_fsck).
  struct SegmentInfo {
    std::uint64_t seq = 0;
    std::string path;
    bool sealed = false;
    std::size_t records = 0;  // update records (seal excluded)
    bool torn = false;        // tail tear (tolerated on the last segment)
  };
  /// Live segments in ascending sequence order (a dropped torn tail file is
  /// still listed, with torn=true and zero records).
  std::vector<SegmentInfo> segment_details;
  /// Segments at or below the watermark (already folded; recovery deletes
  /// them on sight, so their presence in a read-only scan is suspicious).
  std::vector<SegmentInfo> stale_details;
};

/// Scans the changelog next to `snapshot_path` without mutating anything:
/// stale segments (seq <= base_seq) are skipped, a torn tail is tolerated
/// (its bytes reported, not replayed). Returns false on hard corruption
/// (sealed-segment checksum failure, sequence gap). No segments at all is
/// success with an empty replay.
bool ScanChangelog(const std::string& snapshot_path, std::uint64_t base_seq,
                   ChangelogReplay* out, std::string* error);

/// Deletes every `<snapshot_path>.log.NNNNNN` segment — used when the base
/// is rebuilt from scratch (the text graph is authoritative, leftover
/// segments would replay stale updates onto the fresh payload). Returns
/// false if the directory could not be listed or a segment could not be
/// removed — leftover segments on a fresh base are a replay hazard, so
/// callers must not treat the cleanup as best-effort.
bool RemoveChangelogSegments(const std::string& snapshot_path,
                             std::string* error = nullptr);

/// fsync a file / the parent directory of `path` (directory sync is what
/// makes a create/rename/unlink durable). No-ops returning true on
/// platforms without POSIX fds.
bool FsyncFile(const std::string& path, std::string* error = nullptr);
bool FsyncParentDir(const std::string& path, std::string* error = nullptr);

class Changelog {
 public:
  /// Opens (creating nothing yet — segments appear on first Append) the
  /// changelog next to `snapshot_path`, REPAIRING the tail: stale segments
  /// are unlinked, the torn tail truncated (or the whole torn tail file
  /// dropped), and the tail segment reopened for appending. `base_seq` is
  /// the snapshot's base_changelog_seq watermark. Returns nullptr + error
  /// on hard corruption. `status` (optional) receives the recovery report.
  ///
  /// The caller replays the recovered updates via LoadSnapshot (which
  /// performs the identical scan read-only); Open itself does not touch
  /// the snapshot payload.
  static std::unique_ptr<Changelog> Open(const std::string& snapshot_path,
                                         std::uint64_t base_seq,
                                         const ChangelogOptions& opts,
                                         ChangelogStatus* status = nullptr,
                                         std::string* error = nullptr);
  ~Changelog();

  Changelog(const Changelog&) = delete;
  Changelog& operator=(const Changelog&) = delete;

  /// Appends one update record stamped with `stamp`, making it durable per
  /// the fsync policy before returning — a true return IS the durable
  /// acknowledgment. Rotates (seal + new segment on next append) past the
  /// thresholds. On failure the partial record is truncated away (and the
  /// truncation synced) so the segment stays replayable and the next
  /// append continues at the rolled-back offset; if even the rollback
  /// fails the log is marked broken and every later Append fails fast.
  /// Residual caveat, conventional for WALs: if the truncation's own sync
  /// fails and the process then crashes, a fully-written record whose
  /// batch was REJECTED to the caller may still replay.
  bool Append(std::span<const EdgeUpdate> updates, const SourceGraphInfo& stamp,
              std::string* error = nullptr) REQUIRES(commit_mutex_);

  /// Seals the tail segment if it has any records (so every appended
  /// update sits in a sealed segment and can be folded). No-op otherwise.
  bool SealTail(std::string* error = nullptr) REQUIRES(commit_mutex_);

  /// Unlinks sealed segments with seq <= through_seq (after a fold
  /// published a base with that watermark) and syncs the directory.
  bool DropSegmentsThrough(std::uint64_t through_seq, std::string* error = nullptr)
      REQUIRES(commit_mutex_);

  /// Highest segment sequence number on disk (0 = none yet beyond the
  /// base watermark).
  std::uint64_t last_seq() const REQUIRES(commit_mutex_) { return last_seq_; }
  /// Highest sealed sequence number (everything at or below is foldable).
  std::uint64_t sealed_seq() const REQUIRES(commit_mutex_) { return sealed_seq_; }
  /// Sealed segments not yet dropped by compaction.
  std::size_t sealed_segments() const REQUIRES(commit_mutex_);
  /// Update records appended through this handle (not counting recovery).
  std::size_t updates_appended() const REQUIRES(commit_mutex_) {
    return updates_appended_;
  }
  std::uint64_t base_seq() const { return base_seq_; }
  const ChangelogOptions& options() const { return opts_; }
  const std::string& snapshot_path() const { return snapshot_path_; }

  /// The commit lock: callers hold it across Append + state publish (and
  /// the compactor across SealTail + state capture) so the log and the
  /// published serving state never disagree.
  Mutex& commit_mutex() RETURN_CAPABILITY(commit_mutex_) { return commit_mutex_; }

 private:
  Changelog(std::string snapshot_path, std::uint64_t base_seq, ChangelogOptions opts);

  bool OpenNewTail(std::string* error) REQUIRES(commit_mutex_);
  bool SealTailLocked(std::string* error) REQUIRES(commit_mutex_);
  bool Broken(std::string* error) const REQUIRES(commit_mutex_);
  /// Truncates the tail back to tail_bytes_ after a failed write/sync and
  /// syncs the truncation; marks the log broken if the truncate fails.
  /// Always returns false, reporting `what` through `error`.
  bool RollbackTail(std::string* error, const std::string& what) REQUIRES(commit_mutex_);

  struct Segment {
    std::uint64_t seq = 0;
    std::string path;
    bool sealed = false;
  };

  std::string snapshot_path_;
  std::uint64_t base_seq_ = 0;
  ChangelogOptions opts_;
  std::vector<Segment> segments_ GUARDED_BY(commit_mutex_);  // live, ascending seq
  std::uint64_t last_seq_ GUARDED_BY(commit_mutex_) = 0;
  std::uint64_t sealed_seq_ GUARDED_BY(commit_mutex_) = 0;
  std::size_t updates_appended_ GUARDED_BY(commit_mutex_) = 0;
  int tail_fd_ GUARDED_BY(commit_mutex_) = -1;
  std::uint64_t tail_bytes_ GUARDED_BY(commit_mutex_) = 0;
  std::size_t tail_records_ GUARDED_BY(commit_mutex_) = 0;
  /// Running checksum of every tail byte written, so the seal record's
  /// whole-segment body checksum needs no re-read.
  Fnv1a64 tail_hash_ GUARDED_BY(commit_mutex_);
  bool broken_ GUARDED_BY(commit_mutex_) = false;
  Mutex commit_mutex_;
};

/// One-stop recovery entry for tools: removes a leftover compaction temp
/// file, loads the snapshot with the changelog replayed (LoadSnapshot),
/// then opens the changelog for appending (repairing the tail). The
/// returned Changelog must outlive anything that appends through it.
struct RecoveredSnapshot {
  SnapshotBundle bundle;
  std::unique_ptr<Changelog> log;
  ChangelogStatus status;
};

std::optional<RecoveredSnapshot> OpenSnapshotWithChangelog(
    const std::string& path, const ChangelogOptions& opts,
    const SnapshotLoadOptions& load_opts = {}, std::string* error = nullptr);

/// The compaction temp file SaveSnapshot+rename publishes through; exposed
/// so recovery and the tools agree on what to clean up.
std::string CompactionTempPath(const std::string& snapshot_path);

}  // namespace bccs

#endif  // BCCS_GRAPH_CHANGELOG_H_
