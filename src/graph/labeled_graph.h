#ifndef BCCS_GRAPH_LABELED_GRAPH_H_
#define BCCS_GRAPH_LABELED_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace bccs {

/// Vertex identifier. Vertices of a graph with n vertices are 0..n-1.
using VertexId = std::uint32_t;

/// Vertex label identifier (e.g. a department, a country, a research field).
using Label = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// An undirected edge. Canonical form has u < v, but construction accepts
/// either orientation.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable undirected vertex-labeled graph G = (V, E, l) in CSR form.
///
/// This is the substrate every algorithm in the library works on. Adjacency
/// lists are sorted, which the butterfly and truss kernels rely on for
/// linear-merge intersections. Self-loops and duplicate edges are dropped at
/// construction. Labels are dense integers 0..NumLabels()-1.
class LabeledGraph {
 public:
  LabeledGraph() = default;

  /// Builds a graph from an edge list. `labels` must have one entry per
  /// vertex; label values are used as-is (callers should keep them dense).
  /// Self-loops are removed and parallel edges collapsed.
  static LabeledGraph FromEdges(std::size_t num_vertices, std::vector<Edge> edges,
                                std::vector<Label> labels);

  std::size_t NumVertices() const { return labels_.size(); }
  std::size_t NumEdges() const { return adjacency_.size() / 2; }
  std::size_t NumLabels() const { return label_members_.size(); }

  /// Neighbors of `v`, sorted ascending.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  Label LabelOf(VertexId v) const { return labels_[v]; }

  /// True if the (undirected) edge {u, v} exists. O(log deg(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// True if the endpoints carry different labels (a heterogeneous edge).
  bool IsCrossEdge(VertexId u, VertexId v) const { return labels_[u] != labels_[v]; }

  /// All vertices carrying label `l`, sorted ascending. Empty for unused labels.
  std::span<const VertexId> VerticesWithLabel(Label l) const {
    return label_members_[l];
  }

  std::size_t MaxDegree() const { return max_degree_; }

  /// All edges in canonical (u < v) form, sorted lexicographically.
  std::vector<Edge> AllEdges() const;

 private:
  std::vector<std::size_t> offsets_;    // size NumVertices()+1
  std::vector<VertexId> adjacency_;     // both directions, sorted per vertex
  std::vector<Label> labels_;           // size NumVertices()
  std::vector<std::vector<VertexId>> label_members_;
  std::size_t max_degree_ = 0;
};

/// Invokes `fn(w)` for every common neighbor w of u and v (linear merge over
/// the sorted adjacency lists).
template <typename Fn>
void ForEachCommonNeighbor(const LabeledGraph& g, VertexId u, VertexId v, Fn fn) {
  auto nu = g.Neighbors(u);
  auto nv = g.Neighbors(v);
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      fn(nu[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace bccs

#endif  // BCCS_GRAPH_LABELED_GRAPH_H_
