#ifndef BCCS_GRAPH_LABELED_GRAPH_H_
#define BCCS_GRAPH_LABELED_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace bccs {

/// Vertex identifier. Vertices of a graph with n vertices are 0..n-1.
using VertexId = std::uint32_t;

/// Vertex label identifier (e.g. a department, a country, a research field).
using Label = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// An undirected edge. Canonical form has u < v, but construction accepts
/// either orientation.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// An immutable array that either owns its storage (shared, so copies of the
/// holder share one buffer) or views external memory — e.g. a section of an
/// mmap'ed snapshot, kept alive by the holder's keepalive handle. This is
/// what lets a snapshot load be zero-copy: the big CSR arrays stay in the
/// mapped file and are paged in on demand.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;
  /*implicit*/ ArrayRef(std::vector<T> v)
      : owned_(std::make_shared<const std::vector<T>>(std::move(v))),
        data_(owned_->data()),
        size_(owned_->size()) {}

  /// Non-owning view; the caller must keep `data` alive (snapshot loaders
  /// pair views with a keepalive on the mapping).
  static ArrayRef View(const T* data, std::size_t size) {
    ArrayRef a;
    a.data_ = data;
    a.size_ = size;
    return a;
  }

  const T& operator[](std::size_t i) const { return data_[i]; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  std::span<const T> span() const { return {data_, size_}; }

 private:
  std::shared_ptr<const std::vector<T>> owned_;  // null in view mode
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Immutable undirected vertex-labeled graph G = (V, E, l) in CSR form.
///
/// This is the substrate every algorithm in the library works on. Adjacency
/// lists are sorted, which the butterfly and truss kernels rely on for
/// linear-merge intersections. Self-loops and duplicate edges are dropped at
/// construction. Labels are dense integers 0..NumLabels()-1.
///
/// All arrays (including the per-label member lists, stored in CSR form
/// themselves) live in ArrayRef storage, so a graph is either built in
/// memory or reconstructed as zero-copy views over a mapped snapshot (see
/// graph/snapshot.h).
class LabeledGraph {
 public:
  LabeledGraph() = default;

  /// Builds a graph from an edge list. `labels` must have one entry per
  /// vertex; label values are used as-is (callers should keep them dense).
  /// Self-loops are removed and parallel edges collapsed.
  static LabeledGraph FromEdges(std::size_t num_vertices, std::vector<Edge> edges,
                                std::vector<Label> labels);

  std::size_t NumVertices() const { return labels_.size(); }
  std::size_t NumEdges() const { return adjacency_.size() / 2; }
  std::size_t NumLabels() const {
    return label_offsets_.empty() ? 0 : label_offsets_.size() - 1;
  }

  /// Neighbors of `v`, sorted ascending.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t Degree(VertexId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  Label LabelOf(VertexId v) const { return labels_[v]; }

  /// True if the (undirected) edge {u, v} exists. O(log deg(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// True if the endpoints carry different labels (a heterogeneous edge).
  bool IsCrossEdge(VertexId u, VertexId v) const { return labels_[u] != labels_[v]; }

  /// All vertices carrying label `l`, sorted ascending. Empty for unused labels.
  std::span<const VertexId> VerticesWithLabel(Label l) const {
    return {label_members_.data() + label_offsets_[l],
            label_members_.data() + label_offsets_[l + 1]};
  }

  std::size_t MaxDegree() const { return max_degree_; }

  /// All edges in canonical (u < v) form, sorted lexicographically.
  std::vector<Edge> AllEdges() const;

 private:
  friend class SnapshotAccess;    // builds view-mode graphs from mapped files
  friend class GraphDeltaAccess;  // rebuilds adjacency, shares label arrays
  friend class ValidateAccess;    // common/validate.h audits the raw arrays

  ArrayRef<std::uint64_t> offsets_;        // size NumVertices()+1
  ArrayRef<VertexId> adjacency_;           // both directions, sorted per vertex
  ArrayRef<Label> labels_;                 // size NumVertices()
  ArrayRef<std::uint64_t> label_offsets_;  // size NumLabels()+1
  ArrayRef<VertexId> label_members_;       // label groups, ascending per label
  std::size_t max_degree_ = 0;
  std::shared_ptr<const void> keepalive_;  // mapping backing view-mode arrays
};

/// Invokes `fn(w)` for every common neighbor w of u and v (linear merge over
/// the sorted adjacency lists).
template <typename Fn>
void ForEachCommonNeighbor(const LabeledGraph& g, VertexId u, VertexId v, Fn fn) {
  auto nu = g.Neighbors(u);
  auto nv = g.Neighbors(v);
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      fn(nu[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace bccs

#endif  // BCCS_GRAPH_LABELED_GRAPH_H_
