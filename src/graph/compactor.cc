#include "graph/compactor.h"

#include <filesystem>
#include <system_error>
#include <utility>

namespace bccs {

Compactor::Compactor(Changelog& log, StateFn state_fn, CompactorOptions opts)
    : log_(&log), state_fn_(std::move(state_fn)), opts_(opts) {}

Compactor::~Compactor() { Stop(); }

bool Compactor::Fail(std::string* error, const std::string& msg) {
  {
    MutexLock lock(error_mutex_);
    last_error_ = msg;
  }
  if (error != nullptr) *error = msg;
  return false;
}

std::string Compactor::last_error() const {
  MutexLock lock(error_mutex_);
  return last_error_;
}

bool Compactor::RunOnce(bool force, std::string* error, bool* folded) {
  if (folded != nullptr) *folded = false;
  MutexLock run(run_mutex_);

  // Seal + capture under the commit lock: the captured state then contains
  // exactly the records in segments <= `through`, which is the invariant
  // that lets the new base claim them folded. Appends resume the moment the
  // lock drops — they go to segments > `through` and stay live.
  std::uint64_t through = 0;
  State state;
  {
    MutexLock commit(log_->commit_mutex());
    if (!force && log_->sealed_segments() < opts_.threshold_segments) return true;
    std::string seal_err;
    if (!log_->SealTail(&seal_err)) return Fail(error, "compaction seal: " + seal_err);
    through = log_->sealed_seq();
    if (through <= log_->base_seq()) return true;  // nothing to fold
    state = state_fn_();
  }
  if (state.graph == nullptr || state.index == nullptr) {
    return Fail(error, "compaction requires a served graph and index");
  }

  // Publish via fsync'd tmp + rename + directory fsync: the snapshot path
  // always names either the complete old base or the complete new one.
  const std::string& path = log_->snapshot_path();
  const std::string tmp = CompactionTempPath(path);
  std::string err;
  auto discard_tmp = [&tmp] {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  };
  if (!SaveSnapshot(*state.index, tmp, &err, state.stamp, through)) {
    discard_tmp();
    return Fail(error, "compaction save: " + err);
  }
  if (!FsyncFile(tmp, &err)) {
    discard_tmp();
    return Fail(error, "compaction fsync: " + err);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    discard_tmp();
    return Fail(error, "compaction rename to " + path + " failed: " + ec.message());
  }
  if (!FsyncParentDir(path, &err)) return Fail(error, "compaction dir fsync: " + err);

  {
    MutexLock commit(log_->commit_mutex());
    if (!log_->DropSegmentsThrough(through, &err)) {
      // The fold itself is published; the stale segments will be deleted by
      // the next recovery. Still a failure worth reporting.
      return Fail(error, "compaction segment drop: " + err);
    }
  }
  folds_.fetch_add(1, std::memory_order_relaxed);
  if (folded != nullptr) *folded = true;
  return true;
}

void Compactor::Start() {
  MutexLock lock(stop_mutex_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Compactor::Stop() {
  {
    MutexLock lock(stop_mutex_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  stop_cv_.NotifyAll();
  thread_.join();
}

void Compactor::Loop() {
  stop_mutex_.lock();
  while (!stop_) {
    stop_cv_.WaitFor(stop_mutex_, opts_.poll_interval);
    if (stop_) break;
    // RunOnce takes run_mutex_ and the commit lock; never hold stop_mutex_
    // across it or Stop() would block behind a whole fold.
    stop_mutex_.unlock();
    RunOnce(/*force=*/false);
    stop_mutex_.lock();
  }
  stop_mutex_.unlock();
}

}  // namespace bccs
