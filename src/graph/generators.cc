#include "graph/generators.h"

#include "common/check.h"

#include <algorithm>
#include <random>
#include <set>
#include <utility>

namespace bccs {
namespace {

using Rng = std::mt19937_64;

// Adds Erdos-Renyi edges among `members` with probability `p`, plus a cycle
// backbone and a chord cycle (i, i+2). The backbones give every member an
// intra-group degree of at least 4, so a whole planted group survives k-core
// peeling for k <= 4 (keeping the liaison vertices of AddCrossPair inside
// the community cores).
void AddDenseGroup(const std::vector<VertexId>& members, double p, bool strong_backbone,
                   Rng& rng, std::vector<Edge>* edges) {
  std::bernoulli_distribution coin(p);
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (coin(rng)) edges->push_back({members[i], members[j]});
    }
  }
  if (members.size() >= 3) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      edges->push_back({members[i], members[(i + 1) % members.size()]});
    }
  }
  if (strong_backbone && members.size() >= 5) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      edges->push_back({members[i], members[(i + 2) % members.size()]});
    }
  }
}

// Adds cross edges between two sibling groups: Bernoulli(p) on all pairs plus
// one explicit biclique between up to 3 + 3 "leader" vertices, so each group
// holds a liaison whose butterfly degree is at least 6 (every community then
// satisfies the b <= 5 range swept by the paper's Figure 9).
void AddCrossPair(const std::vector<VertexId>& a, const std::vector<VertexId>& b, double p,
                  Rng& rng, std::vector<Edge>* edges) {
  std::bernoulli_distribution coin(p);
  for (VertexId u : a) {
    for (VertexId v : b) {
      if (coin(rng)) edges->push_back({u, v});
    }
  }
  if (a.size() >= 2 && b.size() >= 2) {
    std::vector<VertexId> leaders_a = a, leaders_b = b;
    std::shuffle(leaders_a.begin(), leaders_a.end(), rng);
    std::shuffle(leaders_b.begin(), leaders_b.end(), rng);
    leaders_a.resize(std::min<std::size_t>(3, leaders_a.size()));
    leaders_b.resize(std::min<std::size_t>(3, leaders_b.size()));
    for (VertexId u : leaders_a) {
      for (VertexId v : leaders_b) edges->push_back({u, v});
    }
  }
}

}  // namespace

std::vector<VertexId> PlantedCommunity::AllVertices() const {
  std::vector<VertexId> all;
  for (const auto& group : groups) all.insert(all.end(), group.begin(), group.end());
  std::sort(all.begin(), all.end());
  return all;
}

PlantedGraph GeneratePlanted(const PlantedConfig& cfg) {
  BCCS_CHECK_GE(cfg.num_labels, cfg.groups_per_community);
  BCCS_CHECK_GE(cfg.groups_per_community, 2u);
  BCCS_CHECK_GE(cfg.min_group_size, 4u);
  BCCS_CHECK_GE(cfg.max_group_size, cfg.min_group_size);

  Rng rng(cfg.seed);
  std::uniform_int_distribution<std::size_t> group_size(cfg.min_group_size, cfg.max_group_size);

  PlantedGraph out;
  std::vector<Edge> edges;
  std::vector<Label> labels;

  for (std::size_t c = 0; c < cfg.num_communities; ++c) {
    PlantedCommunity community;
    std::size_t groups = cfg.groups_per_community;
    double intra_p = cfg.intra_edge_prob;
    double cross_p = cfg.cross_pair_prob;
    if (cfg.mixed_group_counts && cfg.groups_per_community > 2) {
      groups = 2 + c % (cfg.groups_per_community - 1);
      // Larger joint projects are thinner per pair: scale densities down
      // with the group count, so high-m communities are genuinely harder to
      // recover (the paper's Figure 14 trend).
      intra_p = cfg.intra_edge_prob * 2.0 / static_cast<double>(groups);
      cross_p = cfg.cross_pair_prob * 2.0 / static_cast<double>(groups);
    }

    // Choose m distinct labels for this community.
    std::vector<Label> pool(cfg.num_labels);
    for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = static_cast<Label>(i);
    std::shuffle(pool.begin(), pool.end(), rng);
    pool.resize(groups);
    community.labels = pool;

    for (std::size_t gi = 0; gi < groups; ++gi) {
      std::size_t size = group_size(rng);
      std::vector<VertexId> members(size);
      for (std::size_t i = 0; i < size; ++i) {
        members[i] = static_cast<VertexId>(labels.size());
        labels.push_back(community.labels[gi]);
      }
      AddDenseGroup(members, intra_p, cfg.strong_backbone, rng, &edges);
      community.groups.push_back(std::move(members));
    }

    // Heterogeneous edges between consecutive sibling groups; for m = 2 this
    // is the single left-right bipartite block.
    for (std::size_t gi = 0; gi + 1 < community.groups.size(); ++gi) {
      AddCrossPair(community.groups[gi], community.groups[gi + 1], cross_p, rng, &edges);
    }
    out.communities.push_back(std::move(community));
  }

  // Background vertices loosely attached to the rest of the graph.
  std::size_t planted_n = labels.size();
  if (cfg.background_vertices > 0 && planted_n > 0) {
    std::uniform_int_distribution<Label> any_label(0, static_cast<Label>(cfg.num_labels - 1));
    for (std::size_t i = 0; i < cfg.background_vertices; ++i) {
      labels.push_back(any_label(rng));
    }
    std::size_t total_n = labels.size();
    auto target_edges =
        static_cast<std::size_t>(cfg.background_avg_degree * cfg.background_vertices / 2.0);
    std::uniform_int_distribution<VertexId> bg(static_cast<VertexId>(planted_n),
                                               static_cast<VertexId>(total_n - 1));
    std::uniform_int_distribution<VertexId> any(0, static_cast<VertexId>(total_n - 1));
    for (std::size_t i = 0; i < target_edges; ++i) {
      VertexId u = bg(rng);
      VertexId v = any(rng);
      if (u != v) edges.push_back({u, v});
    }
    // Keep background vertices from being isolated.
    for (VertexId v = static_cast<VertexId>(planted_n); v < total_n; ++v) {
      edges.push_back({v, any(rng)});
    }
  }

  // Global noise: random heterogeneous and homogeneous edges anywhere in the
  // graph.
  std::size_t n = labels.size();
  auto cross_noise = static_cast<std::size_t>(cfg.noise_cross_fraction * edges.size());
  auto same_noise = static_cast<std::size_t>(cfg.noise_same_fraction * edges.size());
  std::uniform_int_distribution<VertexId> any(0, static_cast<VertexId>(n - 1));
  for (std::size_t i = 0; i < cross_noise; ++i) {
    VertexId u = any(rng);
    VertexId v = any(rng);
    if (u != v && labels[u] != labels[v]) edges.push_back({u, v});
  }
  for (std::size_t i = 0; i < same_noise; ++i) {
    VertexId u = any(rng);
    VertexId v = any(rng);
    if (u != v && labels[u] == labels[v]) edges.push_back({u, v});
  }

  out.graph = LabeledGraph::FromEdges(n, std::move(edges), std::move(labels));
  return out;
}

LabeledGraph GenerateErdosRenyi(std::size_t n, double avg_degree, std::size_t num_labels,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  auto target = static_cast<std::size_t>(avg_degree * n / 2.0);
  std::uniform_int_distribution<VertexId> any(0, static_cast<VertexId>(n - 1));
  for (std::size_t i = 0; i < target; ++i) {
    VertexId u = any(rng);
    VertexId v = any(rng);
    if (u != v) edges.push_back({u, v});
  }
  std::vector<Label> labels(n);
  std::uniform_int_distribution<Label> lab(0, static_cast<Label>(num_labels - 1));
  for (auto& l : labels) l = lab(rng);
  return LabeledGraph::FromEdges(n, std::move(edges), std::move(labels));
}

LabeledGraph GenerateRandomBipartite(std::size_t nl, std::size_t nr, double edge_prob,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::bernoulli_distribution coin(edge_prob);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < nl; ++u) {
    for (VertexId v = 0; v < nr; ++v) {
      if (coin(rng)) edges.push_back({u, static_cast<VertexId>(nl + v)});
    }
  }
  std::vector<Label> labels(nl + nr, 0);
  for (std::size_t v = nl; v < nl + nr; ++v) labels[v] = 1;
  return LabeledGraph::FromEdges(nl + nr, std::move(edges), std::move(labels));
}

LabeledGraph GenerateHubSpoke(const HubSpokeConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<Edge> edges;
  std::vector<Label> labels;
  std::vector<std::vector<VertexId>> hubs(cfg.num_countries);

  for (std::size_t c = 0; c < cfg.num_countries; ++c) {
    for (std::size_t h = 0; h < cfg.hubs_per_country; ++h) {
      hubs[c].push_back(static_cast<VertexId>(labels.size()));
      labels.push_back(static_cast<Label>(c));
    }
    // Domestic hub clique.
    for (std::size_t i = 0; i < hubs[c].size(); ++i) {
      for (std::size_t j = i + 1; j < hubs[c].size(); ++j) {
        edges.push_back({hubs[c][i], hubs[c][j]});
      }
    }
    // Spokes: each attached to two domestic hubs (plus the previous spoke, so
    // the domestic network is denser than a star).
    VertexId prev_spoke = kInvalidVertex;
    std::uniform_int_distribution<std::size_t> pick_hub(0, hubs[c].size() - 1);
    for (std::size_t s = 0; s < cfg.spokes_per_country; ++s) {
      auto v = static_cast<VertexId>(labels.size());
      labels.push_back(static_cast<Label>(c));
      std::size_t h1 = pick_hub(rng);
      std::size_t h2 = pick_hub(rng);
      if (h2 == h1) h2 = (h1 + 1) % hubs[c].size();
      edges.push_back({v, hubs[c][h1]});
      edges.push_back({v, hubs[c][h2]});
      if (prev_spoke != kInvalidVertex) edges.push_back({v, prev_spoke});
      prev_spoke = v;
    }
  }

  // International hub connections, denser within alliances.
  std::bernoulli_distribution intra(cfg.intra_alliance_hub_prob);
  std::bernoulli_distribution inter(cfg.inter_alliance_hub_prob);
  for (std::size_t c1 = 0; c1 < cfg.num_countries; ++c1) {
    for (std::size_t c2 = c1 + 1; c2 < cfg.num_countries; ++c2) {
      bool same_alliance = (c1 / cfg.alliance_size) == (c2 / cfg.alliance_size);
      auto& coin = same_alliance ? intra : inter;
      for (VertexId h1 : hubs[c1]) {
        for (VertexId h2 : hubs[c2]) {
          if (coin(rng)) edges.push_back({h1, h2});
        }
      }
    }
  }
  const std::size_t n = labels.size();
  return LabeledGraph::FromEdges(n, std::move(edges), std::move(labels));
}

LabeledGraph GenerateCorePeriphery(const CorePeripheryConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<Edge> edges;
  std::vector<Label> labels;
  std::vector<std::vector<VertexId>> majors(cfg.num_continents);
  std::vector<std::vector<VertexId>> minors(cfg.num_continents);

  for (std::size_t c = 0; c < cfg.num_continents; ++c) {
    for (std::size_t i = 0; i < cfg.majors_per_continent; ++i) {
      majors[c].push_back(static_cast<VertexId>(labels.size()));
      labels.push_back(static_cast<Label>(c));
    }
    for (std::size_t i = 0; i < cfg.minors_per_continent; ++i) {
      minors[c].push_back(static_cast<VertexId>(labels.size()));
      labels.push_back(static_cast<Label>(c));
    }
  }

  std::bernoulli_distribution mm(cfg.major_major_prob);
  std::bernoulli_distribution minor_major(cfg.minor_major_prob);
  std::bernoulli_distribution minor_minor(cfg.minor_minor_prob);

  // Majors trade with majors everywhere (dense world core).
  std::vector<VertexId> all_majors;
  for (const auto& ms : majors) all_majors.insert(all_majors.end(), ms.begin(), ms.end());
  for (std::size_t i = 0; i < all_majors.size(); ++i) {
    for (std::size_t j = i + 1; j < all_majors.size(); ++j) {
      if (mm(rng)) edges.push_back({all_majors[i], all_majors[j]});
    }
  }
  // Minors attach mostly to their continent's majors, a little to each other.
  for (std::size_t c = 0; c < cfg.num_continents; ++c) {
    for (VertexId v : minors[c]) {
      bool attached = false;
      for (VertexId m : majors[c]) {
        if (minor_major(rng)) {
          edges.push_back({v, m});
          attached = true;
        }
      }
      if (!attached) edges.push_back({v, majors[c][0]});
    }
    for (std::size_t i = 0; i < minors[c].size(); ++i) {
      for (std::size_t j = i + 1; j < minors[c].size(); ++j) {
        if (minor_minor(rng)) edges.push_back({minors[c][i], minors[c][j]});
      }
    }
  }
  const std::size_t n = labels.size();
  return LabeledGraph::FromEdges(n, std::move(edges), std::move(labels));
}

}  // namespace bccs
