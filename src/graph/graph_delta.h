#ifndef BCCS_GRAPH_GRAPH_DELTA_H_
#define BCCS_GRAPH_GRAPH_DELTA_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/labeled_graph.h"

namespace bccs {

/// The edge-update layer of the dynamic-graph subsystem.
///
/// A serving process observes the graph as an immutable CSR snapshot
/// (graph/labeled_graph.h, graph/snapshot.h); evolution arrives as batches of
/// `EdgeUpdate`s. The pipeline is
///
///   raw updates --BuildGraphDelta--> GraphDelta --ApplyGraphDelta--> graph'
///
/// BuildGraphDelta validates the batch against the base graph with
/// sequential semantics (an insert of a present edge or a delete of an
/// absent edge — relative to the updates already applied — is an error with
/// the offending update's index) and normalizes it into the *net* toggle
/// set: each edge appears at most once, as an insert of an edge absent from
/// the base or a delete of an edge present in it. Downstream consumers
/// (BcIndex::ApplyUpdates, the snapshot delta-log replay) therefore never
/// see the same edge twice in one batch.
///
/// Edge updates never change the vertex set or the labeling, so
/// ApplyGraphDelta rebuilds only the adjacency CSR; the label arrays (and
/// the label-group CSR) of the result *share* the base graph's storage —
/// including mmap'ed snapshot views, whose keepalive the result inherits.

/// One edge-level mutation of a labeled graph.
enum class EdgeUpdateKind : std::uint8_t { kInsert = 0, kDelete = 1 };

struct EdgeUpdate {
  EdgeUpdateKind kind = EdgeUpdateKind::kInsert;
  Edge edge;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// A validated, normalized update batch relative to one base graph: the net
/// effect of the raw update sequence. `inserts` are absent from the base,
/// `deletes` present in it; both are canonical (u < v), lexicographically
/// sorted, and disjoint.
struct GraphDelta {
  std::vector<Edge> inserts;
  std::vector<Edge> deletes;

  bool Empty() const { return inserts.empty() && deletes.empty(); }
  std::size_t Size() const { return inserts.size() + deletes.size(); }
};

/// Validates `updates` against `g` under sequential semantics and returns
/// the normalized net delta. Rejected batches (vertex id out of range, self
/// loop, insert of a present edge, delete of an absent edge — presence
/// evaluated after the preceding updates) return std::nullopt and set
/// `error` to a reason naming the first offending update's 0-based index.
std::optional<GraphDelta> BuildGraphDelta(const LabeledGraph& g,
                                          std::span<const EdgeUpdate> updates,
                                          std::string* error = nullptr);

/// Applies a delta built against `g` and returns the updated graph. The
/// adjacency CSR is rebuilt in O(V + E + |delta| log d_max); the label
/// arrays are shared with `g` (zero-copy, keepalive inherited), so `g` — or
/// the snapshot mapping backing it — must outlive the result exactly as it
/// must outlive `g` itself.
LabeledGraph ApplyGraphDelta(const LabeledGraph& g, const GraphDelta& delta);

/// Text format for update files (tools/bccs_update, bccs_query
/// --updates-file), one update per line:
///   + <u> <v>     insert undirected edge {u, v}
///   - <u> <v>     delete undirected edge {u, v}
/// '#' comments, blank lines and CRLF endings are tolerated, mirroring
/// graph_io. Malformed lines are a hard error with the 1-based line number.
std::optional<std::vector<EdgeUpdate>> ReadEdgeUpdates(std::istream& in,
                                                       std::string* error = nullptr);
std::optional<std::vector<EdgeUpdate>> ReadEdgeUpdatesFromFile(const std::string& path,
                                                               std::string* error = nullptr);

}  // namespace bccs

#endif  // BCCS_GRAPH_GRAPH_DELTA_H_
