#ifndef BCCS_GRAPH_GRAPH_IO_H_
#define BCCS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/labeled_graph.h"

namespace bccs {

/// Text format used by the library (SNAP-style):
///   - a line "v <num_vertices>" first,
///   - one line "l <vertex> <label>" per vertex (missing vertices get label 0),
///   - one line "e <u> <v>" per undirected edge.
/// Lines starting with '#' (after optional leading whitespace) are comments;
/// blank lines and CRLF line endings are tolerated.
///
/// Malformed input is a hard error, not a silent truncation: the first bad
/// line (unknown record kind, missing or trailing tokens, ids or labels out
/// of range, records before the 'v' header, duplicate header) stops the
/// parse, returns std::nullopt, and — when `error` is non-null — reports the
/// 1-based line number and reason. Labels may be sparse but must stay under
/// max(num_vertices, 2^20), which keeps a stray huge label from blowing up
/// the dense label table.
std::optional<LabeledGraph> ReadLabeledGraph(std::istream& in, std::string* error = nullptr);
std::optional<LabeledGraph> ReadLabeledGraphFromFile(const std::string& path,
                                                     std::string* error = nullptr);

void WriteLabeledGraph(const LabeledGraph& g, std::ostream& out);
bool WriteLabeledGraphToFile(const LabeledGraph& g, const std::string& path);

}  // namespace bccs

#endif  // BCCS_GRAPH_GRAPH_IO_H_
