#ifndef BCCS_GRAPH_GRAPH_IO_H_
#define BCCS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/labeled_graph.h"

namespace bccs {

/// Text format used by the library (SNAP-style):
///   - a line "v <num_vertices>" first,
///   - one line "l <vertex> <label>" per vertex (missing vertices get label 0),
///   - one line "e <u> <v>" per undirected edge.
/// Lines starting with '#' are comments.
std::optional<LabeledGraph> ReadLabeledGraph(std::istream& in);
std::optional<LabeledGraph> ReadLabeledGraphFromFile(const std::string& path);

void WriteLabeledGraph(const LabeledGraph& g, std::ostream& out);
bool WriteLabeledGraphToFile(const LabeledGraph& g, const std::string& path);

}  // namespace bccs

#endif  // BCCS_GRAPH_GRAPH_IO_H_
