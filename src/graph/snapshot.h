#ifndef BCCS_GRAPH_SNAPSHOT_H_
#define BCCS_GRAPH_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "bcc/bc_index.h"
#include "graph/graph_delta.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// Persistent binary snapshots of a labeled graph plus its BcIndex, with an
/// appendable edge-update delta log for dynamic graphs.
///
/// A snapshot file is the version-3 payload followed by zero or more
/// appended delta blocks:
///
///   [88-byte header]  magic "BCCSNAP1", format version (3), endian tag,
///                     array sizes, number of materialized pairs, max
///                     degree, size + mtime of the source graph file (0/0
///                     when unknown), the base changelog sequence number
///                     (the highest rotated-changelog segment already
///                     folded into this payload — see graph/changelog.h;
///                     0 when the snapshot has never been compacted from
///                     a changelog), FNV-1a64 checksum of the payload
///   [payload]         64-byte-aligned sections in order: the graph's CSR
///                     arrays (offsets, adjacency, labels, label-group
///                     offsets, label-group members), the index's coreness
///                     arrays (per-vertex, per-label max), the pair table
///                     (one 48-byte entry per materialized butterfly pair),
///                     then each pair's chi values back to back, compacted
///                     over the two label groups
///   [delta blocks]*   appended by AppendDeltaBlock (tools/bccs_update),
///                     each: a 40-byte block header — magic "BCCSDLT1",
///                     entry count, the source graph identity the snapshot
///                     REPRESENTS once the block is replayed (the
///                     "re-stamp"; the last block's stamp wins), FNV-1a64
///                     checksum of the entries — followed by count 16-byte
///                     entries {kind (0 insert / 1 delete), u, v, reserved}
///
/// Every payload section starts on a 64-byte boundary, so after mmap() each
/// array is cache-line aligned and can be used in place: LoadSnapshot
/// reconstructs the graph and index as zero-copy views over the mapping
/// (the only copied data are the per-pair chi arrays, which are
/// re-scattered into dense vectors). On platforms without mmap — or with
/// allow_mmap = false — the loader falls back to one read() of the file
/// into an owned buffer and builds the same views over it. Delta blocks are
/// 8-byte aligned (the payload ends on an 8-byte boundary and both delta
/// records are multiples of 8), so the chain is parsed in place too.
///
/// When delta blocks are present the loader replays them onto the mapped
/// state through the dynamic-graph layer (BuildGraphDelta → ApplyGraphDelta
/// → BcIndex::ApplyUpdates), so the bundle it returns is the *updated*
/// graph and index: the label arrays stay zero-copy views over the mapping,
/// the adjacency and the repaired index arrays are rebuilt in memory. The
/// staleness check compares `expected_source` against the file's EFFECTIVE
/// stamp — the last delta block's stamp when any block exists, the header's
/// otherwise — which is what lets a snapshot whose base payload is stale
/// keep serving after bccs_update appended the matching deltas.
///
/// Next to the in-file delta chain, a snapshot may be accompanied by
/// rotated changelog segment files (`<path>.log.NNNNNN`, graph/changelog.h)
/// — the crash-safe durability layer. LoadSnapshot replays them (read-only,
/// after the in-file chain) with the same torn-tail tolerance recovery
/// uses, so every consumer of a snapshot observes the durable state.
///
/// Torn tails are RECOVERED, not rejected: a crash mid-append leaves a
/// prefix of a valid delta block at the end of the file, and the loader
/// replays the complete blocks before it, reporting the torn byte count in
/// the bundle (write-mode recovery — OpenSnapshotWithChangelog — truncates
/// them physically). Trailing bytes that are NOT a prefix of a delta block
/// are foreign garbage and still rejected.
///
/// Rejected inputs (truncated file, bad magic, wrong version or
/// endianness, checksum mismatch in the payload or a non-tail block, stale
/// effective source stamp, a delta log that does not apply to the stored
/// graph) return std::nullopt with a human-readable reason.

/// Bump when the on-disk layout changes; loaders reject other versions.
/// v3 added the base-changelog-sequence watermark to the header (88 bytes,
/// up from v2's 80).
inline constexpr std::uint32_t kSnapshotFormatVersion = 3;

/// Identity of the text graph file a snapshot was built from, stamped into
/// the header so a loader given the graph path can detect a stale snapshot
/// (graph edited after the snapshot was written). {0, 0} means unknown —
/// e.g. a snapshot of an in-memory graph — and disables the check.
///
/// This is the size+mtime heuristic of make/rsync, chosen so the warm
/// serving path never has to read the text graph: a same-size rewrite
/// within one mtime tick of the filesystem goes undetected (run bccs_build
/// again after such an edit).
struct SourceGraphInfo {
  std::uint64_t size_bytes = 0;
  std::uint64_t mtime_ns = 0;

  bool Known() const { return size_bytes != 0 || mtime_ns != 0; }
  friend bool operator==(const SourceGraphInfo&, const SourceGraphInfo&) = default;
};

/// Stats `path` into a SourceGraphInfo; {0, 0} when the file is missing or
/// unreadable.
SourceGraphInfo StatSourceGraph(const std::string& path);

/// A loaded (or freshly built, for BcIndex::BuildOrLoad) graph + index. The
/// graph shared_ptr owns the file mapping; the index points into the graph,
/// so keep the bundle together (or at least the graph) while the index is
/// in use.
struct SnapshotBundle {
  std::shared_ptr<const LabeledGraph> graph;
  std::unique_ptr<BcIndex> index;
  /// True when the bundle came from a snapshot file rather than a build.
  bool loaded_from_snapshot = false;
  /// True when the arrays are zero-copy views over an mmap'ed file (false
  /// for the read() fallback and for built bundles). With a replayed delta
  /// log, the label arrays remain mapped views; adjacency and index arrays
  /// are rebuilt in memory.
  bool mapped = false;
  /// Snapshot file size in bytes (0 for built bundles that failed to save).
  std::size_t snapshot_bytes = 0;
  /// Delta-log updates replayed onto the loaded state (0 for a bare
  /// snapshot or a built bundle).
  std::size_t replayed_updates = 0;
  /// Delta blocks in the file's log chain (what bccs_update --auto-compact
  /// compares against its threshold).
  std::size_t delta_blocks = 0;
  /// The header's changelog watermark: rotated segments with seq <= this
  /// are already folded into the payload (graph/changelog.h).
  std::uint64_t base_changelog_seq = 0;
  /// Where the valid in-file delta chain ends, and how many torn bytes
  /// follow it (0 = clean tail). The loader never mutates the file; a tool
  /// that will append must truncate to delta_log_valid_bytes first (what
  /// OpenSnapshotWithChangelog does).
  std::size_t delta_log_valid_bytes = 0;
  std::uint64_t delta_log_torn_bytes = 0;
  /// Rotated-changelog replay: live segments scanned / updates replayed
  /// from them (already included in replayed_updates), and tail bytes a
  /// crash tore off (tolerated, not replayed).
  std::size_t changelog_segments = 0;
  std::size_t changelog_updates = 0;
  std::uint64_t changelog_torn_bytes = 0;
};

struct SnapshotLoadOptions {
  /// Verify the payload checksum before trusting the file. One sequential
  /// pass over the payload; disable only for trusted files where pure
  /// page-fault cold start matters.
  bool verify_checksum = true;
  /// Use mmap when the platform has it; false forces the read() path.
  bool allow_mmap = true;
  /// When Known(), reject snapshots whose stamped source-graph identity is
  /// also known and differs ("stale snapshot"). Snapshots stamped as
  /// unknown skip the check. The comparison uses the file's EFFECTIVE
  /// stamp: the last replayed delta block / changelog record wins.
  SourceGraphInfo expected_source;
  /// Replay rotated changelog segments (`<path>.log.NNNNNN`) on top of the
  /// payload + in-file chain. Disable only to inspect the bare base state
  /// (the recovery-time bench does, to separate base load from replay).
  bool replay_changelog = true;
};

/// Serializes `index.graph()` plus `index` (coreness arrays and the
/// currently cached pair butterflies — run index.MaterializeAllPairs()
/// first for a complete serving snapshot) to `path`, stamping `source` (the
/// identity of the graph file the index came from, when there is one) and
/// `base_changelog_seq` (the changelog watermark this payload folds in; 0
/// for a fresh build) into the header. Returns false and sets `error` on
/// I/O failure; a partially written file is removed.
bool SaveSnapshot(const BcIndex& index, const std::string& path,
                  std::string* error = nullptr, const SourceGraphInfo& source = {},
                  std::uint64_t base_changelog_seq = 0);

/// Loads a snapshot written by SaveSnapshot, replaying any appended delta
/// blocks (see the format above). On failure returns std::nullopt and sets
/// `error` to the rejection reason.
std::optional<SnapshotBundle> LoadSnapshot(const std::string& path,
                                           std::string* error = nullptr,
                                           const SnapshotLoadOptions& opts = {});

/// Appends one delta block holding `updates` (in order) to the snapshot at
/// `path` and stamps it with `source` — the identity of the graph file the
/// snapshot corresponds to once the block is replayed ({0, 0} = unknown,
/// disabling the staleness check). The base payload is not rewritten; a
/// failed append truncates the file back to its prior size so the snapshot
/// stays loadable. The updates are NOT validated here — validate against
/// the loaded (replayed) graph first (BuildGraphDelta), as tools/bccs_update
/// does, or the next load will reject the file. With `durable` the block is
/// fdatasync'd before the call returns (the in-file analogue of the
/// changelog's every-append policy).
bool AppendDeltaBlock(const std::string& path, std::span<const EdgeUpdate> updates,
                      const SourceGraphInfo& source, std::string* error = nullptr,
                      bool durable = false);

namespace internal {
/// Test seam: force AppendDeltaBlock to fail after writing this many bytes
/// of the block (simulating a crash / full disk mid-append), so the
/// partial-append rollback path is testable without fault injection.
/// SIZE_MAX (the default) disables the seam.
extern std::size_t g_append_fail_after_bytes_for_test;
}  // namespace internal

/// Builds a fresh index from `g` (materializing every cross-label pair) and
/// best-effort saves it to `path` stamped with `source`; `error` reports a
/// failed save. This is the build half of BcIndex::BuildOrLoad — call it
/// directly when a load of `path` was already attempted and failed, to
/// avoid re-reading the file.
SnapshotBundle BuildSnapshotBundle(const LabeledGraph& g, const std::string& path,
                                   std::string* error = nullptr,
                                   const SourceGraphInfo& source = {});

}  // namespace bccs

#endif  // BCCS_GRAPH_SNAPSHOT_H_
