#ifndef BCCS_GRAPH_POSIX_IO_H_
#define BCCS_GRAPH_POSIX_IO_H_

/// Raw POSIX file-descriptor I/O helpers shared by the durability layer
/// (graph/snapshot.cc, graph/changelog.cc). The durability code writes
/// through fds instead of iostreams on purpose: fdatasync needs the fd,
/// and the fault-injection harness (tests/fault_fs) interposes the libc
/// write/fsync/rename symbols — which buffered stdio bypasses internally.

#include <cstddef>

#if defined(__unix__) || defined(__APPLE__)
#define BCCS_HAVE_POSIX_IO 1
#include <cerrno>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace bccs::internal {

/// write(2) the whole buffer, retrying short writes and EINTR.
inline bool FullWrite(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// pwrite(2) the whole buffer at `offset`, retrying short writes and EINTR.
inline bool FullWriteAt(int fd, std::size_t offset, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    offset += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace bccs::internal
#endif

#endif  // BCCS_GRAPH_POSIX_IO_H_
