#include "graph/graph_delta.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace bccs {

/// Friend of LabeledGraph: assembles an updated graph from a rebuilt
/// adjacency CSR while sharing the base graph's label arrays (and the
/// keepalive of a mapped snapshot) untouched.
class GraphDeltaAccess {
 public:
  static LabeledGraph WithNewAdjacency(const LabeledGraph& base,
                                       std::vector<std::uint64_t> offsets,
                                       std::vector<VertexId> adjacency,
                                       std::size_t max_degree) {
    LabeledGraph g;
    g.offsets_ = std::move(offsets);
    g.adjacency_ = std::move(adjacency);
    g.labels_ = base.labels_;
    g.label_offsets_ = base.label_offsets_;
    g.label_members_ = base.label_members_;
    g.max_degree_ = max_degree;
    g.keepalive_ = base.keepalive_;
    return g;
  }
};

namespace {

std::uint64_t EdgeKey(const Edge& e) {
  return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
}

}  // namespace

std::optional<GraphDelta> BuildGraphDelta(const LabeledGraph& g,
                                          std::span<const EdgeUpdate> updates,
                                          std::string* error) {
  const std::size_t n = g.NumVertices();
  auto fail = [error](std::size_t i, const std::string& msg) {
    if (error != nullptr) *error = "update #" + std::to_string(i) + ": " + msg;
    return std::nullopt;
  };

  // Edges toggled an odd number of times so far (keys are canonical).
  std::unordered_set<std::uint64_t> toggled;
  toggled.reserve(updates.size());

  for (std::size_t i = 0; i < updates.size(); ++i) {
    Edge e = updates[i].edge;
    if (e.u > e.v) std::swap(e.u, e.v);
    const std::string name =
        std::to_string(e.u) + "-" + std::to_string(e.v);
    if (e.v >= n) return fail(i, "vertex id out of range (graph has " +
                                     std::to_string(n) + " vertices)");
    if (e.u == e.v) return fail(i, "self loop " + name);
    const std::uint64_t key = EdgeKey(e);
    const bool present = g.HasEdge(e.u, e.v) != toggled.contains(key);
    if (updates[i].kind == EdgeUpdateKind::kInsert) {
      if (present) return fail(i, "insert of existing edge " + name);
    } else {
      if (!present) return fail(i, "delete of absent edge " + name);
    }
    if (!toggled.insert(key).second) toggled.erase(key);  // even toggles cancel
  }

  GraphDelta delta;
  for (std::uint64_t key : toggled) {
    const Edge e{static_cast<VertexId>(key >> 32),
                 static_cast<VertexId>(key & 0xffffffffu)};
    (g.HasEdge(e.u, e.v) ? delta.deletes : delta.inserts).push_back(e);
  }
  auto lex = [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  };
  std::sort(delta.inserts.begin(), delta.inserts.end(), lex);
  std::sort(delta.deletes.begin(), delta.deletes.end(), lex);
  return delta;
}

LabeledGraph ApplyGraphDelta(const LabeledGraph& g, const GraphDelta& delta) {
  if (delta.Empty()) return g;  // shares every array with the base

  const std::size_t n = g.NumVertices();
  // Directed patch half-edges, sorted by source so each vertex's slice can
  // be merged against its (sorted) base adjacency in one pass.
  std::vector<std::pair<VertexId, VertexId>> add, rem;
  add.reserve(delta.inserts.size() * 2);
  rem.reserve(delta.deletes.size() * 2);
  for (const Edge& e : delta.inserts) {
    add.emplace_back(e.u, e.v);
    add.emplace_back(e.v, e.u);
  }
  for (const Edge& e : delta.deletes) {
    rem.emplace_back(e.u, e.v);
    rem.emplace_back(e.v, e.u);
  }
  std::sort(add.begin(), add.end());
  std::sort(rem.begin(), rem.end());

  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<VertexId> adjacency;
  adjacency.reserve(2 * g.NumEdges() + add.size() - rem.size());

  std::size_t ai = 0, ri = 0, max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto base = g.Neighbors(v);
    std::size_t bi = 0;
    // Merge base \ rem[v] with add[v]; all three sequences are ascending.
    while (bi < base.size() || (ai < add.size() && add[ai].first == v)) {
      const bool has_add = ai < add.size() && add[ai].first == v;
      if (bi < base.size() && (!has_add || base[bi] <= add[ai].second)) {
        const VertexId w = base[bi++];
        if (ri < rem.size() && rem[ri].first == v && rem[ri].second == w) {
          ++ri;  // deleted
          continue;
        }
        adjacency.push_back(w);
      } else {
        adjacency.push_back(add[ai++].second);
      }
    }
    offsets[v + 1] = adjacency.size();
    max_degree = std::max<std::size_t>(max_degree, offsets[v + 1] - offsets[v]);
  }
  return GraphDeltaAccess::WithNewAdjacency(g, std::move(offsets), std::move(adjacency),
                                            max_degree);
}

std::optional<std::vector<EdgeUpdate>> ReadEdgeUpdates(std::istream& in, std::string* error) {
  std::vector<EdgeUpdate> updates;
  std::string line;
  std::size_t line_no = 0;
  auto fail = [error](std::size_t line_no, const std::string& msg) {
    if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + msg;
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string op;
    std::uint64_t u = 0, v = 0;
    if (!(ls >> op >> u >> v)) return fail(line_no, "expected '<+|-> <u> <v>'");
    std::string trailing;
    if (ls >> trailing) return fail(line_no, "trailing token '" + trailing + "'");
    EdgeUpdate upd;
    if (op == "+") {
      upd.kind = EdgeUpdateKind::kInsert;
    } else if (op == "-") {
      upd.kind = EdgeUpdateKind::kDelete;
    } else {
      return fail(line_no, "unknown operation '" + op + "' (expected + or -)");
    }
    constexpr std::uint64_t kMaxId = std::numeric_limits<VertexId>::max();
    if (u > kMaxId || v > kMaxId) return fail(line_no, "vertex id does not fit 32 bits");
    upd.edge = {static_cast<VertexId>(u), static_cast<VertexId>(v)};
    updates.push_back(upd);
  }
  return updates;
}

std::optional<std::vector<EdgeUpdate>> ReadEdgeUpdatesFromFile(const std::string& path,
                                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadEdgeUpdates(in, error);
}

}  // namespace bccs
