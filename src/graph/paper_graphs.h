#ifndef BCCS_GRAPH_PAPER_GRAPHS_H_
#define BCCS_GRAPH_PAPER_GRAPHS_H_

#include <vector>

#include "graph/labeled_graph.h"

namespace bccs {

/// Reconstruction of the paper's Figure 1 IT-professional network and its
/// Figure 2 answer. The paper does not list every edge, so this instance is
/// built to satisfy every stated constraint:
///   - L = {ql, v1..v5} is the connected 4-core of the SE-labeled subgraph
///     (a 4-regular K6-minus-perfect-matching), v6..v10 are a degree-3 SE
///     periphery that peels out of the 4-core;
///   - R = {qr, u1..u3} is the connected 3-core of the UI-labeled subgraph
///     (a K4), u4..u7 are a UI periphery that peels out of the 3-core;
///   - B restricted to L u R is exactly the butterfly {ql, v5} x {qr, u3};
///   - z1 is a PM vertex irrelevant to the query labels;
///   - every vertex of the whole graph has degree >= 3.
/// The expected (4, 3, 1)-BCC for Q = {ql, qr} is L u B u R (Example 3).
struct Figure1Graph {
  LabeledGraph graph;
  VertexId ql, v1, v2, v3, v4, v5, v6, v7, v8, v9, v10;
  VertexId qr, u1, u2, u3, u4, u5, u6, u7;
  VertexId z1;
  Label se = 0, ui = 1, pm = 2;
  /// Sorted vertex set of the paper's Figure 2 answer.
  std::vector<VertexId> expected_bcc;
};

Figure1Graph MakeFigure1Graph();

/// Reconstruction of the paper's Figure 3 example used by Examples 4-6.
/// This instance reproduces every number the paper reports:
///   - the Table 2 BFS levels from ql and from qr, before and after the
///     deletion of u9 (with exactly {u4, u7} changing distance);
///   - butterfly degrees chi(v1) = chi(v3) = 6, chi(u2) = chi(u3) = chi(u5)
///     = chi(u6) = 3 (Example 5, leader pair {v1, u2});
///   - Algorithm 7 updates on deleting u6: chi(u2) 3 -> 2, chi(v1) 6 -> 3
///     (Example 6).
struct Figure3Graph {
  LabeledGraph graph;
  VertexId ql, v1, v2, v3;
  VertexId qr, u1, u2, u3, u4, u5, u6, u7, u9;
  Label left = 0, right = 1;
};

Figure3Graph MakeFigure3Graph();

}  // namespace bccs

#endif  // BCCS_GRAPH_PAPER_GRAPHS_H_
