#include "graph/paper_graphs.h"

#include <algorithm>

namespace bccs {

Figure1Graph MakeFigure1Graph() {
  Figure1Graph f;
  // Vertex ids, grouped: SE core, SE periphery, UI core, UI periphery, PM.
  f.ql = 0;
  f.v1 = 1;
  f.v2 = 2;
  f.v3 = 3;
  f.v4 = 4;
  f.v5 = 5;
  f.v6 = 6;
  f.v7 = 7;
  f.v8 = 8;
  f.v9 = 9;
  f.v10 = 10;
  f.qr = 11;
  f.u1 = 12;
  f.u2 = 13;
  f.u3 = 14;
  f.u4 = 15;
  f.u5 = 16;
  f.u6 = 17;
  f.u7 = 18;
  f.z1 = 19;

  std::vector<Label> labels(20, f.se);
  for (VertexId v : {f.qr, f.u1, f.u2, f.u3, f.u4, f.u5, f.u6, f.u7}) labels[v] = f.ui;
  labels[f.z1] = f.pm;

  std::vector<Edge> edges;
  // SE core: K6 on {ql, v1..v5} minus the perfect matching
  // {(ql,v3), (v1,v4), (v2,v5)}; every member has degree exactly 4.
  const VertexId core_l[] = {f.ql, f.v1, f.v2, f.v3, f.v4, f.v5};
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      Edge e{core_l[i], core_l[j]};
      bool matched = (e.u == f.ql && e.v == f.v3) || (e.u == f.v1 && e.v == f.v4) ||
                     (e.u == f.v2 && e.v == f.v5);
      if (!matched) edges.push_back(e);
    }
  }
  // SE periphery: 5-cycle + one edge into the core each (degree 3).
  edges.push_back({f.v6, f.v7});
  edges.push_back({f.v7, f.v8});
  edges.push_back({f.v8, f.v9});
  edges.push_back({f.v9, f.v10});
  edges.push_back({f.v10, f.v6});
  edges.push_back({f.v6, f.v1});
  edges.push_back({f.v7, f.v2});
  edges.push_back({f.v8, f.v3});
  edges.push_back({f.v9, f.v4});
  edges.push_back({f.v10, f.v5});
  // UI core: K4 on {qr, u1, u2, u3}.
  const VertexId core_r[] = {f.qr, f.u1, f.u2, f.u3};
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) edges.push_back({core_r[i], core_r[j]});
  }
  // UI periphery: path u4-u5-u6-u7 anchored at u1 and u3 (peels out of the
  // 3-core because u4 starts at degree 2 within UI).
  edges.push_back({f.u4, f.u5});
  edges.push_back({f.u5, f.u6});
  edges.push_back({f.u6, f.u7});
  edges.push_back({f.u4, f.u1});
  edges.push_back({f.u7, f.u3});
  // The bow-tie butterfly B: {ql, v5} x {qr, u3}.
  edges.push_back({f.ql, f.qr});
  edges.push_back({f.ql, f.u3});
  edges.push_back({f.v5, f.qr});
  edges.push_back({f.v5, f.u3});
  // Cross edges among peripheral vertices (outside the answer) and the PM
  // vertex, padding every degree to >= 3.
  edges.push_back({f.v7, f.u5});
  edges.push_back({f.v8, f.u6});
  edges.push_back({f.v9, f.u7});
  edges.push_back({f.z1, f.v6});
  edges.push_back({f.z1, f.u4});
  edges.push_back({f.z1, f.u5});

  const std::size_t n = labels.size();
  f.graph = LabeledGraph::FromEdges(n, std::move(edges), std::move(labels));
  f.expected_bcc = {f.ql, f.v1, f.v2, f.v3, f.v4, f.v5, f.qr, f.u1, f.u2, f.u3};
  std::sort(f.expected_bcc.begin(), f.expected_bcc.end());
  return f;
}

Figure3Graph MakeFigure3Graph() {
  Figure3Graph f;
  f.ql = 0;
  f.v1 = 1;
  f.v2 = 2;
  f.v3 = 3;
  f.qr = 4;
  f.u1 = 5;
  f.u2 = 6;
  f.u3 = 7;
  f.u4 = 8;
  f.u5 = 9;
  f.u6 = 10;
  f.u7 = 11;
  f.u9 = 12;

  std::vector<Label> labels(13, f.left);
  for (VertexId v : {f.qr, f.u1, f.u2, f.u3, f.u4, f.u5, f.u6, f.u7, f.u9}) {
    labels[v] = f.right;
  }

  std::vector<Edge> edges = {
      // Left-internal edges (v2 also neighbors v1 so that, per Table 2,
      // dist(v2, qr) = 3).
      {f.ql, f.v1},
      {f.ql, f.v2},
      {f.ql, f.v3},
      {f.v1, f.v2},
      // Cross (bipartite) edges: {v1, v3} x {u2, u3, u5, u6}.
      {f.v1, f.u2},
      {f.v1, f.u3},
      {f.v1, f.u5},
      {f.v1, f.u6},
      {f.v3, f.u2},
      {f.v3, f.u3},
      {f.v3, f.u5},
      {f.v3, f.u6},
      // Right-internal edges.
      {f.qr, f.u1},
      {f.qr, f.u2},
      {f.qr, f.u3},
      {f.qr, f.u9},
      {f.u9, f.u4},
      {f.u9, f.u7},
      {f.u1, f.u5},
      {f.u6, f.u7},
      {f.u4, f.u5},
      {f.u5, f.u7},
  };

  const std::size_t n = labels.size();
  f.graph = LabeledGraph::FromEdges(n, std::move(edges), std::move(labels));
  return f;
}

}  // namespace bccs
