#ifndef BCCS_GRAPH_GENERATORS_H_
#define BCCS_GRAPH_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

namespace bccs {

/// One planted ground-truth cross-group community: `groups[i]` holds the
/// members of the i-th labeled group and carries label `labels[i]`. For the
/// two-label BCC experiments m = 2; for the mBCC experiments m >= 2.
struct PlantedCommunity {
  std::vector<Label> labels;
  std::vector<std::vector<VertexId>> groups;

  /// Union of all groups (the ground-truth community the F1 metric uses).
  std::vector<VertexId> AllVertices() const;
};

/// A generated graph together with its planted ground truth.
struct PlantedGraph {
  LabeledGraph graph;
  std::vector<PlantedCommunity> communities;
};

/// Configuration for the planted cross-group community generator.
///
/// This reproduces the labeling protocol of the paper's Section 8: each
/// ground-truth community is split into labeled groups, groups are internally
/// dense (so they contain non-trivial k-cores), roughly `cross_pair_prob` of
/// the possible pairs between sibling groups become heterogeneous edges (the
/// paper used 10% cross edges within communities), and
/// `noise_cross_fraction` * |E| random heterogeneous edges are added globally
/// (the paper's 10% noise). Each sibling group pair additionally receives an
/// explicit 3x3 liaison biclique, so a leader pair with butterfly degree >= 6
/// exists in every community.
struct PlantedConfig {
  std::size_t num_communities = 8;
  std::size_t groups_per_community = 2;
  /// When true, community i gets a group count cycling over
  /// 2..groups_per_community instead of the fixed value, so the graph holds
  /// ground-truth communities for every m (the Exp-9 mixed regime).
  bool mixed_group_counts = false;
  std::size_t min_group_size = 12;
  std::size_t max_group_size = 28;
  double intra_edge_prob = 0.35;
  double cross_pair_prob = 0.08;
  double noise_cross_fraction = 0.10;
  /// Random homogeneous (same-label) edges, as a fraction of |E|. These
  /// bridge same-label groups of different communities, so the label-side
  /// k-core component around a query spans many communities -- the regime of
  /// the paper's real graphs where Find-G0 returns a large candidate that
  /// greedy peeling must shrink.
  double noise_same_fraction = 0.05;
  /// Number of distinct labels in the graph. Must be >= groups_per_community.
  /// With exactly `groups_per_community` labels every community uses every
  /// label; with more labels, each community samples a random distinct subset
  /// (the Baidu-like many-department regime).
  std::size_t num_labels = 2;
  /// When false, groups get only a connectivity cycle (no chord cycle), so
  /// community members have weak intra-group degrees and need not survive
  /// k-core peeling -- the Youtube-like regime where ground-truth communities
  /// are not core-shaped and every method scores poorly.
  bool strong_backbone = true;
  /// Extra vertices outside any planted community, sparsely attached.
  std::size_t background_vertices = 0;
  double background_avg_degree = 3.0;
  std::uint64_t seed = 1;
};

/// Generates a labeled graph with planted cross-group communities.
PlantedGraph GeneratePlanted(const PlantedConfig& cfg);

/// Erdos-Renyi G(n, p) with p chosen so the expected degree is `avg_degree`,
/// labels assigned uniformly at random.
LabeledGraph GenerateErdosRenyi(std::size_t n, double avg_degree, std::size_t num_labels,
                                std::uint64_t seed);

/// Random bipartite graph: `nl` + `nr` vertices with labels 0 / 1 and only
/// heterogeneous edges, each present with probability `edge_prob`.
/// Used to exercise the butterfly kernels.
LabeledGraph GenerateRandomBipartite(std::size_t nl, std::size_t nr, double edge_prob,
                                     std::uint64_t seed);

/// Configuration for the flight-network-like generator (paper Exp-6): one
/// label per country; each country has a few hub cities forming a clique,
/// spoke cities attached to hubs, and international edges connecting hubs of
/// different countries (denser within "alliances" of countries).
struct HubSpokeConfig {
  std::size_t num_countries = 24;
  std::size_t hubs_per_country = 3;
  std::size_t spokes_per_country = 12;
  /// Countries are grouped into alliances of this size; hub pairs within an
  /// alliance are connected with high probability.
  std::size_t alliance_size = 4;
  double intra_alliance_hub_prob = 0.8;
  double inter_alliance_hub_prob = 0.05;
  std::uint64_t seed = 7;
};

LabeledGraph GenerateHubSpoke(const HubSpokeConfig& cfg);

/// Configuration for the trade-network-like generator (paper Exp-7): one
/// label per continent; every continent has a few "major traders" (high
/// degree, connected worldwide) and many minor economies connected mostly to
/// their continent's majors.
struct CorePeripheryConfig {
  std::size_t num_continents = 7;
  std::size_t majors_per_continent = 3;
  std::size_t minors_per_continent = 25;
  double major_major_prob = 0.9;
  double minor_major_prob = 0.6;
  double minor_minor_prob = 0.05;
  std::uint64_t seed = 11;
};

LabeledGraph GenerateCorePeriphery(const CorePeripheryConfig& cfg);

}  // namespace bccs

#endif  // BCCS_GRAPH_GENERATORS_H_
