#include "graph/changelog.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <system_error>
#include <utility>

#include "graph/posix_io.h"

namespace bccs {

namespace {

constexpr char kSegmentMagic[8] = {'B', 'C', 'C', 'S', 'L', 'O', 'G', '1'};
constexpr char kRecordMagic[8] = {'B', 'C', 'C', 'S', 'R', 'E', 'C', '1'};
constexpr std::uint32_t kSegmentFormatVersion = 1;

struct SegmentHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t seq;
  std::uint64_t header_checksum;  // FNV-1a64 of the preceding 24 bytes
};
static_assert(sizeof(SegmentHeader) == 32, "segment header layout drifted");

struct RecordHeader {
  char magic[8];
  std::uint32_t kind;   // 0 = update batch, 1 = seal
  std::uint32_t count;  // entries (0 for a seal)
  std::uint64_t source_graph_size;      // effective source identity once this
  std::uint64_t source_graph_mtime_ns;  // record is replayed; 0/0 = unknown
  /// kind 0: FNV-1a64 of the entry bytes. kind 1: FNV-1a64 of every
  /// segment byte before this record (the whole-segment seal check).
  std::uint64_t body_checksum;
  std::uint64_t header_checksum;  // FNV-1a64 of the preceding 40 bytes
};
static_assert(sizeof(RecordHeader) == 48, "record header layout drifted");

struct LogEntry {
  std::uint32_t kind;  // 0 = insert, 1 = delete
  std::uint32_t u;
  std::uint32_t v;
  std::uint32_t reserved;
};
static_assert(sizeof(LogEntry) == 16, "log entry layout drifted");

constexpr std::uint32_t kRecordUpdates = 0;
constexpr std::uint32_t kRecordSeal = 1;

std::uint64_t HashBytes(const void* data, std::size_t len) {
  Fnv1a64 h;
  h.Update(data, len);
  return h.Digest();
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

std::string SegmentPath(const std::string& snapshot_path, std::uint64_t seq) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".log.%06llu",
                static_cast<unsigned long long>(seq));
  return snapshot_path + suffix;
}

struct SegFile {
  std::uint64_t seq = 0;
  std::string path;
};

/// A listing failure must NOT degrade into "no segments": recovery would
/// then believe durable segments absent and the next append's O_TRUNC open
/// would clobber one at the same sequence number. Only a missing directory
/// genuinely means no segments exist; every other error is hard.
bool ListSegmentFiles(const std::string& snapshot_path, std::vector<SegFile>* out,
                      std::string* error) {
  namespace fs = std::filesystem;
  out->clear();
  fs::path p(snapshot_path);
  fs::path dir = p.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = p.filename().string() + ".log.";
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec == std::errc::no_such_file_or_directory) return true;
  if (ec) {
    return Fail(error, "cannot list changelog directory " + dir.string() + ": " +
                           ec.message());
  }
  for (const fs::directory_iterator end_it; it != end_it; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string digits = name.substr(prefix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    errno = 0;
    char* end = nullptr;
    const unsigned long long seq = std::strtoull(digits.c_str(), &end, 10);
    if (errno != 0 || end == digits.c_str() || *end != '\0' || seq == 0) continue;
    out->push_back({static_cast<std::uint64_t>(seq), it->path().string()});
  }
  if (ec) {
    return Fail(error, "cannot list changelog directory " + dir.string() + ": " +
                           ec.message());
  }
  std::sort(out->begin(), out->end(),
            [](const SegFile& a, const SegFile& b) { return a.seq < b.seq; });
  return true;
}

bool ReadWholeFile(const std::string& path, std::vector<unsigned char>* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) return Fail(error, "cannot read " + path);
  out->resize(static_cast<std::size_t>(end));
  in.seekg(0, std::ios::beg);
  if (!out->empty() &&
      !in.read(reinterpret_cast<char*>(out->data()),
               static_cast<std::streamsize>(out->size()))) {
    return Fail(error, "cannot read " + path);
  }
  return true;
}

/// One scanned live segment.
struct ScanSeg {
  SegFile file;
  bool header_valid = false;
  bool sealed = false;
  std::size_t records = 0;  // update records (seal excluded)
  std::size_t updates = 0;
  std::uint64_t valid_bytes = 0;  // end offset of the last valid record
  std::uint64_t file_bytes = 0;
  bool torn = false;  // valid_bytes < file_bytes (tail tear)
};

struct ScanResult {
  std::vector<SegFile> stale;  // seq <= base watermark (already folded)
  std::vector<ScanSeg> live;   // ascending, contiguous from base + 1
  std::vector<EdgeUpdate> updates;
  SourceGraphInfo effective;
  bool has_stamp = false;
  std::uint64_t torn_tail_bytes = 0;
  bool dropped_tail = false;  // last segment's very header was torn
};

/// The one scan both the read-only loader and write-mode recovery share.
/// Prefix-consistent: a torn record is tolerated only at the tail of the
/// LAST segment (a crash can only tear what was last being written);
/// anywhere else it is corruption of possibly-acknowledged data → error.
bool ScanSegments(const std::string& snapshot_path, std::uint64_t base_seq,
                  ScanResult* out, std::string* error) {
  *out = ScanResult{};
  std::vector<SegFile> files;
  if (!ListSegmentFiles(snapshot_path, &files, error)) return false;
  for (const SegFile& f : files) {
    if (f.seq <= base_seq) {
      out->stale.push_back(f);
    } else {
      out->live.push_back(ScanSeg{});
      out->live.back().file = f;
    }
  }
  for (std::size_t i = 0; i < out->live.size(); ++i) {
    const std::uint64_t expect = base_seq + 1 + i;
    if (out->live[i].file.seq != expect) {
      return Fail(error, "changelog sequence gap: expected segment " +
                             std::to_string(expect) + ", found " +
                             std::to_string(out->live[i].file.seq) + " (" +
                             out->live[i].file.path + ")");
    }
  }

  for (std::size_t i = 0; i < out->live.size(); ++i) {
    ScanSeg& seg = out->live[i];
    const bool is_last = i + 1 == out->live.size();
    std::vector<unsigned char> bytes;
    if (!ReadWholeFile(seg.file.path, &bytes, error)) return false;
    seg.file_bytes = bytes.size();

    SegmentHeader header = {};
    const bool header_ok =
        bytes.size() >= sizeof(SegmentHeader) &&
        (std::memcpy(&header, bytes.data(), sizeof(header)), true) &&
        std::memcmp(header.magic, kSegmentMagic, sizeof(header.magic)) == 0 &&
        header.version == kSegmentFormatVersion && header.seq == seg.file.seq &&
        header.header_checksum == HashBytes(bytes.data(), 24);
    if (!header_ok) {
      if (!is_last) {
        return Fail(error, "corrupt changelog segment header: " + seg.file.path);
      }
      // The tail segment died before its header was durable: nothing in it
      // was ever replayable, drop the whole file.
      out->dropped_tail = true;
      out->torn_tail_bytes += bytes.size();
      seg.torn = true;
      return true;
    }
    seg.header_valid = true;

    Fnv1a64 running;  // hash of [0, off) for the seal's whole-segment check
    running.Update(bytes.data(), sizeof(SegmentHeader));
    std::size_t off = sizeof(SegmentHeader);
    seg.valid_bytes = off;
    std::size_t tear_at = 0;
    bool torn = false;
    while (off < bytes.size()) {
      const std::size_t remaining = bytes.size() - off;
      RecordHeader rec = {};
      if (remaining < sizeof(RecordHeader)) {
        tear_at = off;
        torn = true;
        break;
      }
      std::memcpy(&rec, bytes.data() + off, sizeof(rec));
      if (std::memcmp(rec.magic, kRecordMagic, sizeof(rec.magic)) != 0 ||
          rec.header_checksum != HashBytes(bytes.data() + off, 40)) {
        tear_at = off;
        torn = true;
        break;
      }
      if (rec.kind == kRecordSeal) {
        if (rec.count != 0 || rec.body_checksum != running.Digest()) {
          tear_at = off;
          torn = true;
          break;
        }
        seg.sealed = true;
        off += sizeof(RecordHeader);
        seg.valid_bytes = off;
        if (off < bytes.size()) {
          // Bytes after the seal: a torn post-seal write (possible only if
          // rotation raced a crash before the new segment existed).
          tear_at = off;
          torn = true;
        }
        break;
      }
      if (rec.kind != kRecordUpdates) {
        tear_at = off;
        torn = true;
        break;
      }
      const std::size_t body = static_cast<std::size_t>(rec.count) * sizeof(LogEntry);
      if (remaining - sizeof(RecordHeader) < body) {
        tear_at = off;
        torn = true;
        break;
      }
      const unsigned char* entries = bytes.data() + off + sizeof(RecordHeader);
      if (rec.body_checksum != HashBytes(entries, body)) {
        tear_at = off;
        torn = true;
        break;
      }
      bool entries_ok = true;
      for (std::uint32_t e = 0; e < rec.count; ++e) {
        LogEntry le;
        std::memcpy(&le, entries + e * sizeof(LogEntry), sizeof(le));
        if (le.kind > 1) {
          entries_ok = false;
          break;
        }
      }
      if (!entries_ok) {
        tear_at = off;
        torn = true;
        break;
      }
      for (std::uint32_t e = 0; e < rec.count; ++e) {
        LogEntry le;
        std::memcpy(&le, entries + e * sizeof(LogEntry), sizeof(le));
        EdgeUpdate u;
        u.kind = le.kind == 0 ? EdgeUpdateKind::kInsert : EdgeUpdateKind::kDelete;
        u.edge = {le.u, le.v};
        out->updates.push_back(u);
      }
      out->effective = SourceGraphInfo{rec.source_graph_size, rec.source_graph_mtime_ns};
      out->has_stamp = true;
      seg.records += 1;
      seg.updates += rec.count;
      running.Update(bytes.data() + off, sizeof(RecordHeader) + body);
      off += sizeof(RecordHeader) + body;
      seg.valid_bytes = off;
    }
    if (torn) {
      if (!is_last) {
        return Fail(error, "corrupt changelog record in sealed/non-tail segment " +
                               seg.file.path + " at offset " + std::to_string(tear_at));
      }
      seg.torn = true;
      out->torn_tail_bytes += bytes.size() - seg.valid_bytes;
    }
  }
  return true;
}

#if BCCS_HAVE_POSIX_IO
using internal::FullWrite;
#endif

}  // namespace

const char* Name(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kOnRotation: return "on-rotation";
    case FsyncPolicy::kEveryAppend: return "every-append";
  }
  return "?";
}

bool ParseFsyncPolicy(const std::string& text, FsyncPolicy* out) {
  if (text == "none") {
    *out = FsyncPolicy::kNone;
  } else if (text == "on-rotation") {
    *out = FsyncPolicy::kOnRotation;
  } else if (text == "every-append") {
    *out = FsyncPolicy::kEveryAppend;
  } else {
    return false;
  }
  return true;
}

bool FsyncFile(const std::string& path, std::string* error) {
#if BCCS_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Fail(error, "cannot open " + path + " for fsync");
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return Fail(error, "fsync failed for " + path);
#else
  (void)path;
#endif
  return true;
}

bool FsyncParentDir(const std::string& path, std::string* error) {
#if BCCS_HAVE_POSIX_IO
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  int flags = O_RDONLY;
#ifdef O_DIRECTORY
  flags |= O_DIRECTORY;
#endif
  const int fd = ::open(dir.c_str(), flags);
  if (fd < 0) return Fail(error, "cannot open directory " + dir.string() + " for fsync");
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return Fail(error, "fsync failed for directory " + dir.string());
#else
  (void)path;
#endif
  return true;
}

bool ScanChangelog(const std::string& snapshot_path, std::uint64_t base_seq,
                   ChangelogReplay* out, std::string* error) {
  ScanResult scan;
  if (!ScanSegments(snapshot_path, base_seq, &scan, error)) return false;
  *out = ChangelogReplay{};
  out->updates = std::move(scan.updates);
  out->effective = scan.effective;
  out->has_stamp = scan.has_stamp;
  out->stale_segments = scan.stale.size();
  out->torn_tail_bytes = scan.torn_tail_bytes;
  for (const SegFile& f : scan.stale) {
    out->stale_details.push_back({f.seq, f.path, false, 0, false});
  }
  for (const ScanSeg& seg : scan.live) {
    out->segment_details.push_back(
        {seg.file.seq, seg.file.path, seg.sealed, seg.records, seg.torn});
    if (scan.dropped_tail && seg.torn && !seg.header_valid) continue;
    ++out->segments;
    if (seg.sealed) ++out->sealed_segments;
    out->records += seg.records;
  }
  return true;
}

bool RemoveChangelogSegments(const std::string& snapshot_path, std::string* error) {
  std::vector<SegFile> files;
  if (!ListSegmentFiles(snapshot_path, &files, error)) return false;
  bool removed = false;
  for (const SegFile& f : files) {
    std::error_code ec;
    std::filesystem::remove(f.path, ec);
    if (ec) return Fail(error, "cannot remove changelog segment " + f.path);
    removed = true;
  }
  if (removed && !FsyncParentDir(snapshot_path, error)) return false;
  return true;
}

std::string CompactionTempPath(const std::string& snapshot_path) {
  return snapshot_path + ".compact.tmp";
}

// ---------------------------------------------------------------------------
// Changelog.
// ---------------------------------------------------------------------------

Changelog::Changelog(std::string snapshot_path, std::uint64_t base_seq,
                     ChangelogOptions opts)
    : snapshot_path_(std::move(snapshot_path)), base_seq_(base_seq), opts_(opts) {
  last_seq_ = base_seq;
  sealed_seq_ = base_seq;
}

Changelog::~Changelog() {
#if BCCS_HAVE_POSIX_IO
  if (tail_fd_ >= 0) ::close(tail_fd_);
#endif
}

std::unique_ptr<Changelog> Changelog::Open(const std::string& snapshot_path,
                                           std::uint64_t base_seq,
                                           const ChangelogOptions& opts,
                                           ChangelogStatus* status, std::string* error) {
#if !BCCS_HAVE_POSIX_IO
  (void)snapshot_path;
  (void)base_seq;
  (void)opts;
  (void)status;
  Fail(error, "changelog requires POSIX file I/O on this platform");
  return nullptr;
#else
  ScanResult scan;
  if (!ScanSegments(snapshot_path, base_seq, &scan, error)) return nullptr;

  ChangelogStatus st;
  st.stale_segments_removed = scan.stale.size();
  st.truncated_bytes = scan.torn_tail_bytes;
  st.dropped_tail_segment = scan.dropped_tail;

  // Repair pass. Stale segments are leftovers of a crash between a
  // compaction's rename and its segment deletion — finishing the deletion
  // here is what makes the fold idempotent.
  bool dir_dirty = false;
  for (const SegFile& f : scan.stale) {
    std::error_code ec;
    std::filesystem::remove(f.path, ec);
    if (ec) {
      Fail(error, "cannot remove folded changelog segment " + f.path);
      return nullptr;
    }
    dir_dirty = true;
  }
  std::vector<ScanSeg> live;
  for (ScanSeg& seg : scan.live) {
    if (seg.torn && !seg.header_valid) {
      // Whole tail file torn before its header was durable: nothing in it
      // replays; drop it so the next append recreates the sequence slot.
      std::error_code ec;
      std::filesystem::remove(seg.file.path, ec);
      if (ec) {
        Fail(error, "cannot remove torn changelog segment " + seg.file.path);
        return nullptr;
      }
      dir_dirty = true;
      continue;
    }
    if (seg.torn) {
      std::error_code ec;
      std::filesystem::resize_file(seg.file.path, seg.valid_bytes, ec);
      if (ec) {
        Fail(error, "cannot truncate torn changelog tail " + seg.file.path);
        return nullptr;
      }
      if (!FsyncFile(seg.file.path, error)) return nullptr;
    }
    live.push_back(std::move(seg));
  }
  if (dir_dirty && !FsyncParentDir(snapshot_path, error)) return nullptr;

  std::unique_ptr<Changelog> log(new Changelog(snapshot_path, base_seq, opts));
  // The object is still single-owned, but its state is GUARDED_BY the commit
  // lock — hold it (uncontended) so the annotations hold in Open too.
  MutexLock commit(log->commit_mutex_);
  for (const ScanSeg& seg : live) {
    log->segments_.push_back(Segment{seg.file.seq, seg.file.path, seg.sealed});
    log->last_seq_ = seg.file.seq;
  }
  for (const ScanSeg& seg : live) {
    if (!seg.sealed) break;
    log->sealed_seq_ = seg.file.seq;
  }

  // Reopen an unsealed tail for appending, rebuilding the running
  // whole-segment checksum the next seal record will stamp.
  if (!live.empty() && !live.back().sealed) {
    const ScanSeg& tail = live.back();
    std::vector<unsigned char> bytes;
    if (!ReadWholeFile(tail.file.path, &bytes, error)) return nullptr;
    const int fd = ::open(tail.file.path.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) {
      Fail(error, "cannot reopen changelog tail " + tail.file.path);
      return nullptr;
    }
    log->tail_fd_ = fd;
    log->tail_bytes_ = tail.valid_bytes;
    log->tail_records_ = tail.records;
    log->tail_hash_ = Fnv1a64();
    log->tail_hash_.Update(bytes.data(), tail.valid_bytes);
  }

  st.segments = log->segments_.size();
  st.sealed_segments = log->sealed_segments();
  for (const ScanSeg& seg : live) st.records += seg.records;
  for (const ScanSeg& seg : live) st.updates += seg.updates;
  if (status != nullptr) *status = st;
  return log;
#endif
}

std::size_t Changelog::sealed_segments() const {
  std::size_t n = 0;
  for (const Segment& s : segments_) n += s.sealed ? 1 : 0;
  return n;
}

bool Changelog::Broken(std::string* error) const {
  if (!broken_) return false;
  Fail(error, "changelog is broken (a failed append could not be rolled back)");
  return true;
}

bool Changelog::RollbackTail(std::string* error, const std::string& what) {
#if !BCCS_HAVE_POSIX_IO
  return Fail(error, what);
#else
  if (::ftruncate(tail_fd_, static_cast<off_t>(tail_bytes_)) != 0) {
    broken_ = true;
    return Fail(error, what + " (and rollback failed: the segment is now torn; "
                           "recovery will truncate it)");
  }
  // Persist the truncation so a crash cannot resurrect a fully-written,
  // checksum-valid record whose batch was already rejected to the caller.
  // Best-effort: if this sync also fails the file is still logically rolled
  // back, but — as with any WAL — a rejected-then-crashed batch may replay
  // (DESIGN.md, durability contract).
  (void)::fdatasync(tail_fd_);
  return Fail(error, what);
#endif
}

bool Changelog::OpenNewTail(std::string* error) {
#if !BCCS_HAVE_POSIX_IO
  return Fail(error, "changelog requires POSIX file I/O on this platform");
#else
  const std::uint64_t seq = last_seq_ + 1;
  const std::string path = SegmentPath(snapshot_path_, seq);
  // O_APPEND (matching the recovery reopen in Open): every write lands at
  // the current EOF, so after a rollback ftruncate the next append can
  // never leave a zero-filled hole at the fd's stale offset — a hole would
  // make recovery truncate there and drop acknowledged records behind it.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) return Fail(error, "cannot create changelog segment " + path);

  SegmentHeader header = {};
  std::memcpy(header.magic, kSegmentMagic, sizeof(header.magic));
  header.version = kSegmentFormatVersion;
  header.seq = seq;
  header.header_checksum = HashBytes(&header, 24);
  if (!FullWrite(fd, &header, sizeof(header))) {
    ::close(fd);
    ::unlink(path.c_str());
    return Fail(error, "cannot write changelog segment header " + path);
  }
  if (opts_.fsync != FsyncPolicy::kNone) {
    if (::fdatasync(fd) != 0) {
      ::close(fd);
      ::unlink(path.c_str());
      return Fail(error, "fdatasync failed for " + path);
    }
    if (!FsyncParentDir(path, error)) {
      ::close(fd);
      ::unlink(path.c_str());
      return false;
    }
  }
  tail_fd_ = fd;
  tail_bytes_ = sizeof(header);
  tail_records_ = 0;
  tail_hash_ = Fnv1a64();
  tail_hash_.Update(&header, sizeof(header));
  last_seq_ = seq;
  segments_.push_back(Segment{seq, path, false});
  return true;
#endif
}

bool Changelog::Append(std::span<const EdgeUpdate> updates, const SourceGraphInfo& stamp,
                       std::string* error) {
#if !BCCS_HAVE_POSIX_IO
  (void)updates;
  (void)stamp;
  return Fail(error, "changelog requires POSIX file I/O on this platform");
#else
  if (Broken(error)) return false;
  if (updates.size() > std::numeric_limits<std::uint32_t>::max()) {
    return Fail(error, "changelog record cannot hold more than 2^32-1 updates");
  }
  if (tail_fd_ < 0 && !OpenNewTail(error)) return false;

  std::vector<unsigned char> buf(sizeof(RecordHeader) + updates.size() * sizeof(LogEntry));
  for (std::size_t i = 0; i < updates.size(); ++i) {
    LogEntry le = {};
    le.kind = updates[i].kind == EdgeUpdateKind::kInsert ? 0u : 1u;
    le.u = updates[i].edge.u;
    le.v = updates[i].edge.v;
    std::memcpy(buf.data() + sizeof(RecordHeader) + i * sizeof(LogEntry), &le, sizeof(le));
  }
  RecordHeader rec = {};
  std::memcpy(rec.magic, kRecordMagic, sizeof(rec.magic));
  rec.kind = kRecordUpdates;
  rec.count = static_cast<std::uint32_t>(updates.size());
  rec.source_graph_size = stamp.size_bytes;
  rec.source_graph_mtime_ns = stamp.mtime_ns;
  rec.body_checksum =
      HashBytes(buf.data() + sizeof(RecordHeader), buf.size() - sizeof(RecordHeader));
  rec.header_checksum = HashBytes(&rec, 40);
  std::memcpy(buf.data(), &rec, sizeof(rec));

  if (!FullWrite(tail_fd_, buf.data(), buf.size())) {
    return RollbackTail(error, "changelog append write failed");
  }
  if (opts_.fsync == FsyncPolicy::kEveryAppend && ::fdatasync(tail_fd_) != 0) {
    return RollbackTail(error, "changelog append fdatasync failed");
  }
  tail_bytes_ += buf.size();
  tail_records_ += 1;
  updates_appended_ += updates.size();
  tail_hash_.Update(buf.data(), buf.size());

  if (tail_records_ >= opts_.segment_blocks || tail_bytes_ >= opts_.segment_bytes) {
    return SealTailLocked(error);
  }
  return true;
#endif
}

bool Changelog::SealTail(std::string* error) {
  if (Broken(error)) return false;
  return SealTailLocked(error);
}

bool Changelog::SealTailLocked(std::string* error) {
#if !BCCS_HAVE_POSIX_IO
  return Fail(error, "changelog requires POSIX file I/O on this platform");
#else
  if (tail_fd_ < 0 || tail_records_ == 0) return true;  // nothing worth sealing

  RecordHeader rec = {};
  std::memcpy(rec.magic, kRecordMagic, sizeof(rec.magic));
  rec.kind = kRecordSeal;
  rec.count = 0;
  rec.body_checksum = tail_hash_.Digest();
  rec.header_checksum = HashBytes(&rec, 40);

  if (!FullWrite(tail_fd_, &rec, sizeof(rec))) {
    return RollbackTail(error, "changelog seal write failed");
  }
  if (opts_.fsync != FsyncPolicy::kNone && ::fdatasync(tail_fd_) != 0) {
    return RollbackTail(error, "changelog seal fdatasync failed");
  }
  ::close(tail_fd_);
  tail_fd_ = -1;
  tail_bytes_ = 0;
  tail_records_ = 0;
  segments_.back().sealed = true;
  sealed_seq_ = segments_.back().seq;
  return true;
#endif
}

bool Changelog::DropSegmentsThrough(std::uint64_t through_seq, std::string* error) {
  if (Broken(error)) return false;
  bool dir_dirty = false;
  std::vector<Segment> keep;
  for (Segment& s : segments_) {
    if (s.seq <= through_seq) {
      if (!s.sealed) {
        return Fail(error, "refusing to drop unsealed changelog segment " + s.path);
      }
      std::error_code ec;
      std::filesystem::remove(s.path, ec);
      if (ec) return Fail(error, "cannot remove changelog segment " + s.path);
      dir_dirty = true;
    } else {
      keep.push_back(std::move(s));
    }
  }
  segments_ = std::move(keep);
  if (dir_dirty && !FsyncParentDir(snapshot_path_, error)) return false;
  return true;
}

std::optional<RecoveredSnapshot> OpenSnapshotWithChangelog(
    const std::string& path, const ChangelogOptions& opts,
    const SnapshotLoadOptions& load_opts, std::string* error) {
  // A crash mid-compaction can leave the temp file behind; it was never
  // published (the rename did not happen), so it is garbage.
  {
    std::error_code ec;
    if (std::filesystem::remove(CompactionTempPath(path), ec)) FsyncParentDir(path);
  }

  auto bundle = LoadSnapshot(path, error, load_opts);
  if (!bundle) return std::nullopt;

  // Repair the in-file delta chain's torn tail physically — appends (and
  // offline tools) must find the file ending at the last durable block.
  if (bundle->delta_log_torn_bytes > 0) {
    std::error_code ec;
    std::filesystem::resize_file(path, bundle->delta_log_valid_bytes, ec);
    if (ec) {
      if (error != nullptr) *error = "cannot truncate torn snapshot delta tail of " + path;
      return std::nullopt;
    }
    if (!FsyncFile(path, error)) return std::nullopt;
  }

  RecoveredSnapshot out;
  out.log = Changelog::Open(path, bundle->base_changelog_seq, opts, &out.status, error);
  if (out.log == nullptr) return std::nullopt;
  out.bundle = std::move(*bundle);
  return out;
}

}  // namespace bccs
