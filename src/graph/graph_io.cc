#include "graph/graph_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace bccs {
namespace {

std::nullopt_t Fail(std::string* error, std::size_t line_no, const std::string& msg) {
  if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + msg;
  return std::nullopt;
}

/// True when the stream has unconsumed non-whitespace — a malformed line like
/// "e 1 2 junk" must be rejected, not silently half-read.
bool HasTrailingGarbage(std::istringstream& ls) {
  std::string extra;
  return static_cast<bool>(ls >> extra);
}

}  // namespace

std::optional<LabeledGraph> ReadLabeledGraph(std::istream& in, std::string* error) {
  std::size_t num_vertices = 0;
  bool saw_header = false;
  std::vector<Label> labels;
  std::vector<Edge> edges;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // blank or whitespace-only
    if (line[first] == '#') continue;          // comment

    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "v") {
      if (saw_header) return Fail(error, line_no, "duplicate 'v' header");
      if (!(ls >> num_vertices)) {
        return Fail(error, line_no, "expected 'v <num_vertices>'");
      }
      // Vertex ids are uint32 with the top value reserved as the no-vertex
      // sentinel; a count past that (including 'v -1' wrapping to SIZE_MAX)
      // must be a parse error, not a giant allocation or id wrap-around.
      if (num_vertices >= static_cast<std::size_t>(kInvalidVertex)) {
        return Fail(error, line_no,
                    "vertex count " + std::to_string(num_vertices) + " exceeds the maximum " +
                        std::to_string(kInvalidVertex - 1));
      }
      try {
        labels.assign(num_vertices, 0);
      } catch (const std::exception&) {
        return Fail(error, line_no, "vertex count too large to allocate");
      }
      saw_header = true;
    } else if (kind == "l") {
      VertexId v = 0;
      Label l = 0;
      if (!saw_header) return Fail(error, line_no, "'l' record before the 'v' header");
      if (!(ls >> v >> l)) return Fail(error, line_no, "expected 'l <vertex> <label>'");
      if (v >= num_vertices) {
        return Fail(error, line_no,
                    "vertex id " + std::to_string(v) + " out of range (graph has " +
                        std::to_string(num_vertices) + " vertices)");
      }
      // Labels index a dense table, so a stray huge value (e.g. 2^32-1)
      // would drive a multi-GB allocation. Sparse label ids are fine as
      // long as they stay under a generous cap.
      const std::size_t label_cap = std::max<std::size_t>(num_vertices, 1u << 20);
      if (l >= label_cap) {
        return Fail(error, line_no,
                    "label " + std::to_string(l) + " out of range (labels must be < " +
                        std::to_string(label_cap) + ")");
      }
      labels[v] = l;
    } else if (kind == "e") {
      Edge e;
      if (!saw_header) return Fail(error, line_no, "'e' record before the 'v' header");
      if (!(ls >> e.u >> e.v)) return Fail(error, line_no, "expected 'e <u> <v>'");
      if (e.u >= num_vertices || e.v >= num_vertices) {
        return Fail(error, line_no,
                    "edge endpoint out of range (graph has " + std::to_string(num_vertices) +
                        " vertices)");
      }
      edges.push_back(e);
    } else {
      return Fail(error, line_no, "unknown record kind '" + kind + "'");
    }
    if (HasTrailingGarbage(ls)) {
      return Fail(error, line_no, "trailing tokens after '" + kind + "' record");
    }
  }
  if (!saw_header) {
    if (error != nullptr) *error = "missing 'v <num_vertices>' header";
    return std::nullopt;
  }
  if (error != nullptr) error->clear();
  return LabeledGraph::FromEdges(num_vertices, std::move(edges), std::move(labels));
}

std::optional<LabeledGraph> ReadLabeledGraphFromFile(const std::string& path,
                                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadLabeledGraph(in, error);
}

void WriteLabeledGraph(const LabeledGraph& g, std::ostream& out) {
  out << "# bccs labeled graph\n";
  out << "v " << g.NumVertices() << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "l " << v << " " << g.LabelOf(v) << "\n";
  }
  for (const Edge& e : g.AllEdges()) {
    out << "e " << e.u << " " << e.v << "\n";
  }
}

bool WriteLabeledGraphToFile(const LabeledGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteLabeledGraph(g, out);
  return static_cast<bool>(out);
}

}  // namespace bccs
