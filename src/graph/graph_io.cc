#include "graph/graph_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace bccs {

std::optional<LabeledGraph> ReadLabeledGraph(std::istream& in) {
  std::size_t num_vertices = 0;
  bool saw_header = false;
  std::vector<Label> labels;
  std::vector<Edge> edges;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'v') {
      if (!(ls >> num_vertices)) return std::nullopt;
      labels.assign(num_vertices, 0);
      saw_header = true;
    } else if (kind == 'l') {
      VertexId v = 0;
      Label l = 0;
      if (!saw_header || !(ls >> v >> l) || v >= num_vertices) return std::nullopt;
      labels[v] = l;
    } else if (kind == 'e') {
      Edge e;
      if (!saw_header || !(ls >> e.u >> e.v) || e.u >= num_vertices || e.v >= num_vertices) {
        return std::nullopt;
      }
      edges.push_back(e);
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) return std::nullopt;
  return LabeledGraph::FromEdges(num_vertices, std::move(edges), std::move(labels));
}

std::optional<LabeledGraph> ReadLabeledGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadLabeledGraph(in);
}

void WriteLabeledGraph(const LabeledGraph& g, std::ostream& out) {
  out << "# bccs labeled graph\n";
  out << "v " << g.NumVertices() << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "l " << v << " " << g.LabelOf(v) << "\n";
  }
  for (const Edge& e : g.AllEdges()) {
    out << "e " << e.u << " " << e.v << "\n";
  }
}

bool WriteLabeledGraphToFile(const LabeledGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteLabeledGraph(g, out);
  return static_cast<bool>(out);
}

}  // namespace bccs
