#ifndef BCCS_GRAPH_UNION_FIND_H_
#define BCCS_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace bccs {

/// Disjoint-set forest with path halving and union by size.
///
/// Used for the mBCC cross-group meta-connectivity check (paper Section 7)
/// and for locating the maximal truss level connecting two query vertices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::uint32_t Find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing `a` and `b`. Returns true if they were
  /// previously distinct.
  bool Union(std::uint32_t a, std::uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool Connected(std::uint32_t a, std::uint32_t b) { return Find(a) == Find(b); }

  std::size_t SetSize(std::uint32_t x) { return size_[Find(x)]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace bccs

#endif  // BCCS_GRAPH_UNION_FIND_H_
