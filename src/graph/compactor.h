#ifndef BCCS_GRAPH_COMPACTOR_H_
#define BCCS_GRAPH_COMPACTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "bcc/bc_index.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "graph/changelog.h"
#include "graph/labeled_graph.h"
#include "graph/snapshot.h"

namespace bccs {

/// Folds sealed changelog segments into a new base snapshot so recovery
/// stays bounded: replaying an ever-growing log would make restart time
/// proportional to total update history instead of the window since the
/// last fold.
///
/// A fold is: seal the tail (under the log's commit lock, together with a
/// capture of the serving state, so the state and the sealed sequence
/// number agree exactly), serialize the captured state to the compaction
/// temp path with base_changelog_seq = the sealed watermark, fsync the
/// temp file, rename it over the snapshot, fsync the parent directory,
/// then drop the folded segments. Readers never block: the capture is a
/// pair of shared_ptr copies out of the copy-on-write epoch machinery, and
/// the slow serialization runs outside every lock.
///
/// Crash safety at every point, by construction:
///   - before the rename: the old base + the full segment chain recover
///     (the temp file is deleted by OpenSnapshotWithChangelog);
///   - after the rename, before the drop: the new base's watermark makes
///     the folded segments stale, and Changelog::Open deletes them — the
///     fold is idempotent.
struct CompactorOptions {
  /// RunOnce(false) folds only once this many sealed segments exist.
  std::size_t threshold_segments = 4;
  /// Background poll cadence (Start()'s thread).
  std::chrono::milliseconds poll_interval{100};
};

class Compactor {
 public:
  /// A consistent serving state to fold. `stamp` is the source-graph
  /// identity the new base should carry (the effective stamp).
  struct State {
    std::shared_ptr<const LabeledGraph> graph;
    std::shared_ptr<const BcIndex> index;
    SourceGraphInfo stamp;
  };
  /// Called WHILE THE COMPACTOR HOLDS THE LOG'S COMMIT LOCK, so the
  /// returned state contains exactly the updates appended so far (the
  /// serve engine publishes the epoch under the same lock as the append).
  using StateFn = std::function<State()>;

  /// `log` and whatever `state_fn` captures must outlive the compactor.
  Compactor(Changelog& log, StateFn state_fn, CompactorOptions opts = {});
  ~Compactor();  // Stop()

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// One fold, synchronously, on the calling thread. force=true folds
  /// whatever is in the log regardless of the threshold (a final fold at
  /// shutdown); force=false applies the threshold. Returns true with
  /// *folded=false when there was nothing to do. Failures also land in
  /// last_error() (the background thread has nowhere else to report).
  bool RunOnce(bool force, std::string* error = nullptr, bool* folded = nullptr);

  /// Starts the background thread (idempotent). It polls the sealed-segment
  /// count and folds past the threshold.
  void Start();
  /// Stops and joins the background thread (idempotent; the destructor
  /// calls it). In-progress folds complete.
  void Stop();

  std::size_t folds() const { return folds_.load(std::memory_order_relaxed); }
  std::string last_error() const;

 private:
  void Loop() EXCLUDES(stop_mutex_, run_mutex_);
  bool Fail(std::string* error, const std::string& msg) EXCLUDES(error_mutex_);

  Changelog* log_;
  StateFn state_fn_;
  CompactorOptions opts_;
  Mutex run_mutex_;  // one fold at a time (manual vs background)
  std::atomic<std::size_t> folds_{0};
  mutable Mutex error_mutex_;
  std::string last_error_ GUARDED_BY(error_mutex_);
  // Written by Start, joined by Stop; the two serialize through stop_mutex_
  // (the joinable check), but the join itself runs outside the lock so the
  // exiting thread can reacquire it — deliberately not GUARDED_BY.
  std::thread thread_;
  Mutex stop_mutex_;
  CondVar stop_cv_;
  bool stop_ GUARDED_BY(stop_mutex_) = false;
};

}  // namespace bccs

#endif  // BCCS_GRAPH_COMPACTOR_H_
