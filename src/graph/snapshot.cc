#include "graph/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/changelog.h"
#include "graph/fnv1a64.h"
#include "graph/posix_io.h"

#if defined(__unix__) || defined(__APPLE__)
#define BCCS_HAVE_MMAP 1
#include <sys/mman.h>
#endif

namespace bccs {

/// Friend of LabeledGraph and BcIndex: the only code allowed to assemble the
/// two classes field by field from mapped arrays.
class SnapshotAccess {
 public:
  static std::span<const std::uint64_t> Offsets(const LabeledGraph& g) {
    return g.offsets_.span();
  }
  static std::span<const VertexId> Adjacency(const LabeledGraph& g) {
    return g.adjacency_.span();
  }
  static std::span<const Label> Labels(const LabeledGraph& g) { return g.labels_.span(); }
  static std::span<const std::uint64_t> LabelOffsets(const LabeledGraph& g) {
    return g.label_offsets_.span();
  }
  static std::span<const VertexId> LabelMembers(const LabeledGraph& g) {
    return g.label_members_.span();
  }
  static std::span<const std::uint32_t> Coreness(const BcIndex& i) {
    return i.label_coreness_.span();
  }
  static std::span<const std::uint32_t> MaxCorePerLabel(const BcIndex& i) {
    return i.max_core_per_label_.span();
  }

  static std::shared_ptr<const LabeledGraph> MakeGraph(
      std::span<const std::uint64_t> offsets, std::span<const VertexId> adjacency,
      std::span<const Label> labels, std::span<const std::uint64_t> label_offsets,
      std::span<const VertexId> label_members, std::size_t max_degree,
      std::shared_ptr<const void> keepalive) {
    auto g = std::make_shared<LabeledGraph>();
    g->offsets_ = ArrayRef<std::uint64_t>::View(offsets.data(), offsets.size());
    g->adjacency_ = ArrayRef<VertexId>::View(adjacency.data(), adjacency.size());
    g->labels_ = ArrayRef<Label>::View(labels.data(), labels.size());
    g->label_offsets_ =
        ArrayRef<std::uint64_t>::View(label_offsets.data(), label_offsets.size());
    g->label_members_ = ArrayRef<VertexId>::View(label_members.data(), label_members.size());
    g->max_degree_ = max_degree;
    g->keepalive_ = std::move(keepalive);
    return g;
  }

  static std::unique_ptr<BcIndex> MakeIndex(
      const LabeledGraph* g, std::span<const std::uint32_t> coreness,
      std::span<const std::uint32_t> max_core,
      std::map<std::pair<Label, Label>, ButterflyCounts> pairs) {
    std::unique_ptr<BcIndex> index(new BcIndex());
    index->g_ = g;
    index->label_coreness_ = ArrayRef<std::uint32_t>::View(coreness.data(), coreness.size());
    index->max_core_per_label_ =
        ArrayRef<std::uint32_t>::View(max_core.data(), max_core.size());
    // Snapshot-loaded pairs are pinned: they were materialized before the
    // save, so they stay resident regardless of any serving byte budget.
    for (auto& [key, counts] : pairs) {
      index->pair_cache_.Insert(key.first, key.second, std::move(counts), /*pin=*/true);
    }
    return index;
  }
};

namespace {

constexpr char kMagicBytes[8] = {'B', 'C', 'C', 'S', 'N', 'A', 'P', '1'};
// Written on the host as 0x01020304; a reader on a machine with different
// byte order sees a permutation and rejects the file.
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kSectionAlign = 64;

struct SnapshotHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian;
  std::uint64_t num_vertices;
  std::uint64_t num_labels;
  std::uint64_t adjacency_size;
  std::uint64_t num_pairs;
  std::uint64_t max_degree;
  std::uint64_t source_graph_size;      // source text graph identity;
  std::uint64_t source_graph_mtime_ns;  // 0/0 = unknown (no staleness check)
  std::uint64_t base_changelog_seq;     // changelog segments <= this are folded in
  std::uint64_t payload_checksum;       // FNV-1a64 of the payload bytes
};
static_assert(sizeof(SnapshotHeader) == 88, "snapshot header must stay 88 bytes");

struct SnapshotPairEntry {
  std::uint32_t label_a;
  std::uint32_t label_b;
  std::uint64_t chi_len;  // |members(a)| + |members(b)|
  std::uint64_t total;
  std::uint64_t max_left;
  std::uint64_t max_right;
  std::uint32_t argmax_left;
  std::uint32_t argmax_right;
};
static_assert(sizeof(SnapshotPairEntry) == 48, "pair entry layout drifted");

// --- Delta log (appended after the payload; see the header layout note in
// snapshot.h). Blocks are 8-byte aligned: the payload ends on an 8-byte
// boundary and both records are multiples of 8 bytes.

constexpr char kDeltaMagicBytes[8] = {'B', 'C', 'C', 'S', 'D', 'L', 'T', '1'};

struct DeltaBlockHeader {
  char magic[8];
  std::uint32_t count;     // entries in this block
  std::uint32_t reserved;  // zero
  std::uint64_t source_graph_size;      // effective source identity once this
  std::uint64_t source_graph_mtime_ns;  // block is replayed; 0/0 = unknown
  std::uint64_t entries_checksum;       // FNV-1a64 of the entry bytes
};
static_assert(sizeof(DeltaBlockHeader) == 40, "delta block header layout drifted");

struct DeltaEntry {
  std::uint32_t kind;  // 0 = insert, 1 = delete
  std::uint32_t u;
  std::uint32_t v;
  std::uint32_t reserved;  // zero
};
static_assert(sizeof(DeltaEntry) == 16, "delta entry layout drifted");

constexpr std::size_t Align(std::size_t offset) {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

/// Byte offsets of the fixed-size payload sections; the per-pair chi arrays
/// follow `chi` back to back (all 8-byte aligned).
struct Layout {
  std::size_t offsets, adjacency, labels, label_offsets, label_members;
  std::size_t coreness, max_core, pairs, chi;
};

Layout ComputeLayout(std::uint64_t n, std::uint64_t num_labels, std::uint64_t adjacency_size,
                     std::uint64_t num_pairs) {
  Layout l;
  std::size_t off = sizeof(SnapshotHeader);
  auto section = [&off](std::size_t bytes) {
    std::size_t start = Align(off);
    off = start + bytes;
    return start;
  };
  l.offsets = section((n + 1) * sizeof(std::uint64_t));
  l.adjacency = section(adjacency_size * sizeof(VertexId));
  l.labels = section(n * sizeof(Label));
  l.label_offsets = section((num_labels + 1) * sizeof(std::uint64_t));
  l.label_members = section(n * sizeof(VertexId));
  l.coreness = section(n * sizeof(std::uint32_t));
  l.max_core = section(num_labels * sizeof(std::uint32_t));
  l.pairs = section(num_pairs * sizeof(SnapshotPairEntry));
  l.chi = section(0);
  return l;
}

bool IoFail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// ---------------------------------------------------------------------------
// Writer. Raw POSIX fds where available: fdatasync needs the fd, and the
// fault-injection harness interposes the libc write symbol — which
// buffered iostreams bypass internally (glibc stdio calls hidden aliases).
// ---------------------------------------------------------------------------

class FileSink {
 public:
  FileSink() = default;
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;
  ~FileSink() {
#if BCCS_HAVE_POSIX_IO
    if (fd_ >= 0) ::close(fd_);
#endif
  }

  bool Open(const std::string& path) {
#if BCCS_HAVE_POSIX_IO
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    return fd_ >= 0;
#else
    out_.open(path, std::ios::binary | std::ios::trunc);
    return static_cast<bool>(out_);
#endif
  }

  bool Write(const void* data, std::size_t len) {
#if BCCS_HAVE_POSIX_IO
    return internal::FullWrite(fd_, data, len);
#else
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
    return static_cast<bool>(out_);
#endif
  }

  /// Patches previously written bytes (the checksum back-fill).
  bool WriteAt(std::size_t offset, const void* data, std::size_t len) {
#if BCCS_HAVE_POSIX_IO
    return internal::FullWriteAt(fd_, offset, data, len);
#else
    out_.seekp(static_cast<std::streamoff>(offset), std::ios::beg);
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
    return static_cast<bool>(out_);
#endif
  }

  bool Close() {
#if BCCS_HAVE_POSIX_IO
    if (fd_ < 0) return false;
    const bool ok = ::close(fd_) == 0;
    fd_ = -1;
    return ok;
#else
    out_.flush();
    const bool ok = static_cast<bool>(out_);
    out_.close();
    return ok;
#endif
  }

 private:
#if BCCS_HAVE_POSIX_IO
  int fd_ = -1;
#else
  std::ofstream out_;
#endif
};

class SnapshotWriter {
 public:
  explicit SnapshotWriter(FileSink& out) : out_(&out) {}

  void WriteRaw(const void* data, std::size_t len) {
    if (len == 0) return;
    ok_ = ok_ && out_->Write(data, len);
    offset_ += len;
  }

  /// Checksummed payload bytes at the current offset (no alignment; used for
  /// the back-to-back chi arrays).
  template <typename T>
  void WriteArray(std::span<const T> data) {
    if (data.empty()) return;
    checksum_.Update(data.data(), data.size_bytes());
    WriteRaw(data.data(), data.size_bytes());
  }

  /// A payload section: zero-padded to the next 64-byte boundary (the pad
  /// bytes are part of the checksummed payload), then the array.
  template <typename T>
  void WriteSection(std::span<const T> data) {
    PadTo(Align(offset_));
    WriteArray(data);
  }

  void PadTo(std::size_t target) {
    static constexpr char kZeros[kSectionAlign] = {};
    while (offset_ < target) {
      std::size_t chunk = std::min(target - offset_, sizeof(kZeros));
      checksum_.Update(kZeros, chunk);
      WriteRaw(kZeros, chunk);
    }
  }

  std::size_t offset() const { return offset_; }
  std::uint64_t Checksum() const { return checksum_.Digest(); }
  bool ok() const { return ok_; }

 private:
  FileSink* out_;
  std::size_t offset_ = 0;
  bool ok_ = true;
  Fnv1a64 checksum_;
};

// ---------------------------------------------------------------------------
// File mapping (mmap with a read() fallback).
// ---------------------------------------------------------------------------

struct MappedFile {
  const std::byte* data = nullptr;
  std::size_t size = 0;
  bool mapped = false;

#if BCCS_HAVE_MMAP
  void* map_base = nullptr;
#endif
  std::vector<std::byte> heap;  // read() fallback storage

  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
#if BCCS_HAVE_MMAP
    if (map_base != nullptr) ::munmap(map_base, size);
#endif
  }
};

std::shared_ptr<MappedFile> OpenSnapshotFile(const std::string& path, bool allow_mmap,
                                             std::string* error) {
  auto file = std::make_shared<MappedFile>();
#if BCCS_HAVE_MMAP
  if (allow_mmap) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      IoFail(error, "cannot open " + path);
      return nullptr;
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      IoFail(error, "cannot stat " + path);
      return nullptr;
    }
    file->size = static_cast<std::size_t>(st.st_size);
    if (file->size > 0) {
      void* base = ::mmap(nullptr, file->size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (base == MAP_FAILED) {
        IoFail(error, "mmap failed for " + path);
        return nullptr;
      }
      file->map_base = base;
      file->data = static_cast<const std::byte*>(base);
    } else {
      ::close(fd);
    }
    file->mapped = true;
    return file;
  }
#else
  (void)allow_mmap;
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    IoFail(error, "cannot open " + path);
    return nullptr;
  }
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(0, std::ios::beg);
  if (end < 0) {
    IoFail(error, "cannot read " + path);
    return nullptr;
  }
  file->heap.resize(static_cast<std::size_t>(end));
  if (!file->heap.empty() &&
      !in.read(reinterpret_cast<char*>(file->heap.data()),
               static_cast<std::streamsize>(file->heap.size()))) {
    IoFail(error, "cannot read " + path);
    return nullptr;
  }
  file->data = file->heap.data();
  file->size = file->heap.size();
  return file;
}

template <typename T>
std::span<const T> SectionView(const MappedFile& file, std::size_t offset, std::size_t count) {
  return {reinterpret_cast<const T*>(file.data + offset), count};
}

}  // namespace

SourceGraphInfo StatSourceGraph(const std::string& path) {
  SourceGraphInfo info;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return info;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return info;
  info.size_bytes = static_cast<std::uint64_t>(size);
  info.mtime_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(mtime.time_since_epoch())
          .count());
  return info;
}

bool SaveSnapshot(const BcIndex& index, const std::string& path, std::string* error,
                  const SourceGraphInfo& source, std::uint64_t base_changelog_seq) {
  const LabeledGraph& g = index.graph();
  const auto offsets = SnapshotAccess::Offsets(g);
  const auto adjacency = SnapshotAccess::Adjacency(g);
  const auto labels = SnapshotAccess::Labels(g);
  const auto label_offsets = SnapshotAccess::LabelOffsets(g);
  const auto label_members = SnapshotAccess::LabelMembers(g);
  const auto coreness = SnapshotAccess::Coreness(index);
  const auto max_core = SnapshotAccess::MaxCorePerLabel(index);

  // Collect the resident pairs up front as pinned shared_ptr blocks, in
  // sorted key order. The pins keep each block alive for the duration of the
  // serialization even if a concurrently serving thread evicts it from the
  // byte-budgeted cache (the compactor saves the live serving index).
  std::vector<std::tuple<Label, Label, std::shared_ptr<const ButterflyCounts>>> pairs;
  for (auto& entry : index.CachedPairEntries()) {
    pairs.emplace_back(entry.a, entry.b, std::move(entry.counts));
  }

  SnapshotHeader header = {};
  std::memcpy(header.magic, kMagicBytes, sizeof(header.magic));
  header.version = kSnapshotFormatVersion;
  header.endian = kEndianTag;
  header.num_vertices = g.NumVertices();
  header.num_labels = g.NumLabels();
  header.adjacency_size = adjacency.size();
  header.num_pairs = pairs.size();
  header.max_degree = g.MaxDegree();
  header.source_graph_size = source.size_bytes;
  header.source_graph_mtime_ns = source.mtime_ns;
  header.base_changelog_seq = base_changelog_seq;
  header.payload_checksum = 0;  // patched after the payload is written

  FileSink out;
  if (!out.Open(path)) return IoFail(error, "cannot open " + path + " for writing");

  SnapshotWriter writer(out);
  writer.WriteRaw(&header, sizeof(header));
  writer.WriteSection(offsets);
  writer.WriteSection(adjacency);
  writer.WriteSection(labels);
  writer.WriteSection(label_offsets);
  writer.WriteSection(label_members);
  writer.WriteSection(coreness);
  writer.WriteSection(max_core);

  std::vector<SnapshotPairEntry> entries;
  entries.reserve(pairs.size());
  for (const auto& [a, b, counts] : pairs) {
    SnapshotPairEntry e = {};
    e.label_a = a;
    e.label_b = b;
    e.chi_len = g.VerticesWithLabel(a).size() + g.VerticesWithLabel(b).size();
    e.total = counts->total;
    e.max_left = counts->max_left;
    e.max_right = counts->max_right;
    e.argmax_left = counts->argmax_left;
    e.argmax_right = counts->argmax_right;
    entries.push_back(e);
  }
  writer.WriteSection(std::span<const SnapshotPairEntry>(entries));

  // Pair chi arrays, compacted over the two label groups (a's members, then
  // b's) instead of the dense n-sized vector they occupy in memory. They sit
  // back to back after one aligned section start — the loader walks them by
  // the chi_len fields of the pair table.
  writer.PadTo(Align(writer.offset()));
  std::vector<std::uint64_t> compact;
  for (const auto& [a, b, counts] : pairs) {
    compact.clear();
    for (VertexId v : g.VerticesWithLabel(a)) compact.push_back(counts->chi[v]);
    for (VertexId v : g.VerticesWithLabel(b)) compact.push_back(counts->chi[v]);
    writer.WriteArray(std::span<const std::uint64_t>(compact));
  }

  header.payload_checksum = writer.Checksum();
  const bool patched = out.WriteAt(offsetof(SnapshotHeader, payload_checksum),
                                   &header.payload_checksum,
                                   sizeof(header.payload_checksum));
  if (!writer.ok() || !patched || !out.Close()) {
    std::remove(path.c_str());
    return IoFail(error, "write failed for " + path);
  }
  return true;
}

std::optional<SnapshotBundle> LoadSnapshot(const std::string& path, std::string* error,
                                           const SnapshotLoadOptions& opts) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  std::shared_ptr<MappedFile> file = OpenSnapshotFile(path, opts.allow_mmap, error);
  if (file == nullptr) return std::nullopt;
  if (file->size < sizeof(SnapshotHeader)) {
    return fail("truncated snapshot: " + std::to_string(file->size) +
                " bytes is smaller than the " + std::to_string(sizeof(SnapshotHeader)) +
                "-byte header");
  }

  SnapshotHeader header;
  std::memcpy(&header, file->data, sizeof(header));
  if (std::memcmp(header.magic, kMagicBytes, sizeof(header.magic)) != 0) {
    return fail("bad magic: not a bccs snapshot");
  }
  if (header.endian != kEndianTag) return fail("endianness mismatch");
  if (header.version != kSnapshotFormatVersion) {
    return fail("unsupported snapshot version " + std::to_string(header.version) +
                " (expected " + std::to_string(kSnapshotFormatVersion) + ")");
  }
  const std::uint64_t n = header.num_vertices;
  const std::uint64_t num_labels = header.num_labels;
  // Every array element is at least one byte, so a header whose counts
  // exceed the file size is corrupt; rejecting here also keeps the layout
  // arithmetic below far away from 64-bit overflow.
  if (n > file->size || num_labels > file->size || header.adjacency_size > file->size ||
      header.num_pairs > file->size) {
    return fail("corrupt snapshot: header sizes exceed the file size");
  }
  const Layout layout = ComputeLayout(n, num_labels, header.adjacency_size, header.num_pairs);
  if (file->size < layout.chi) {
    return fail("truncated snapshot: sections need " + std::to_string(layout.chi) +
                " bytes, file has " + std::to_string(file->size));
  }

  const auto pair_entries =
      SectionView<SnapshotPairEntry>(*file, layout.pairs, header.num_pairs);
  // Bound every chi_len BEFORE trusting the sum: the per-pair SectionViews
  // below read chi_len*8 bytes each, so an attacker-chosen huge chi_len must
  // not be able to wrap the 64-bit sum back onto the real file size and
  // sneak past the expected-size check. Capping the running total at the
  // words actually present after layout.chi keeps the sum (and the
  // expected_size product) overflow-free and every per-pair view in bounds.
  const std::uint64_t chi_capacity =
      (file->size - layout.chi) / sizeof(std::uint64_t);
  std::uint64_t chi_total = 0;
  for (const SnapshotPairEntry& e : pair_entries) {
    if (e.chi_len > chi_capacity - chi_total) {
      return fail("truncated or corrupt snapshot: pair chi lengths exceed the file size");
    }
    chi_total += e.chi_len;
  }
  const std::size_t expected_size = layout.chi + chi_total * sizeof(std::uint64_t);
  if (file->size < expected_size) {
    return fail("truncated snapshot: expected " + std::to_string(expected_size) +
                " bytes, file has " + std::to_string(file->size));
  }

  // Bytes past the payload must form a valid delta-log chain (see
  // snapshot.h). A torn TAIL — a crash mid-append left a prefix of a block
  // at end-of-file — is tolerated: the complete blocks before it replay,
  // and the torn byte count is reported in the bundle. Trailing bytes that
  // are not even a prefix of a block (wrong magic, a checksum mismatch on a
  // block that is NOT the last) are foreign corruption and still rejected.
  // The chain is parsed before the payload work so the staleness check
  // below can compare against the file's EFFECTIVE stamp (last block wins).
  std::vector<EdgeUpdate> replay;
  std::size_t delta_blocks = 0;
  SourceGraphInfo effective{header.source_graph_size, header.source_graph_mtime_ns};
  std::size_t valid_end = expected_size;
  for (std::size_t off = expected_size; off < file->size;) {
    const std::size_t remaining = file->size - off;
    const std::size_t magic_prefix = std::min(remaining, sizeof(kDeltaMagicBytes));
    if (std::memcmp(file->data + off, kDeltaMagicBytes, magic_prefix) != 0) {
      return fail("trailing bytes are not a snapshot delta log");
    }
    if (remaining < sizeof(DeltaBlockHeader)) break;  // torn mid-header
    DeltaBlockHeader block;
    std::memcpy(&block, file->data + off, sizeof(block));
    const std::size_t body_off = off + sizeof(block);
    if (block.count > (file->size - body_off) / sizeof(DeltaEntry)) {
      break;  // torn mid-entries
    }
    const auto entries = SectionView<DeltaEntry>(*file, body_off, block.count);
    const std::size_t block_end = body_off + block.count * sizeof(DeltaEntry);
    if (opts.verify_checksum) {
      Fnv1a64 checksum;
      checksum.Update(entries.data(), entries.size_bytes());
      if (checksum.Digest() != block.entries_checksum) {
        // A corrupt LAST block is indistinguishable from a torn append that
        // stopped inside the entries of a block whose header claimed more:
        // recoverable. Anywhere else it is corruption of settled data.
        if (block_end >= file->size) break;
        return fail("snapshot delta block checksum mismatch");
      }
    }
    for (const DeltaEntry& e : entries) {
      if (e.kind > 1) return fail("corrupt snapshot delta entry: unknown kind");
      EdgeUpdate u;
      u.kind = e.kind == 0 ? EdgeUpdateKind::kInsert : EdgeUpdateKind::kDelete;
      u.edge = {e.u, e.v};
      replay.push_back(u);
    }
    effective = SourceGraphInfo{block.source_graph_size, block.source_graph_mtime_ns};
    ++delta_blocks;
    off = block_end;
    valid_end = off;
  }
  const std::size_t delta_log_valid_bytes = valid_end;
  const std::uint64_t delta_log_torn_bytes = file->size - valid_end;

  // Rotated changelog segments replay after the in-file chain (they are
  // strictly newer: an append path never mixes the two forms — bccs_update
  // switches to the changelog once segments exist).
  ChangelogReplay clog;
  if (opts.replay_changelog) {
    if (!ScanChangelog(path, header.base_changelog_seq, &clog, error)) {
      return std::nullopt;
    }
    replay.insert(replay.end(), clog.updates.begin(), clog.updates.end());
    if (clog.has_stamp) effective = clog.effective;
  }

  if (opts.expected_source.Known() && effective.Known() &&
      !(effective == opts.expected_source)) {
    return fail("stale snapshot: the effective source graph (" +
                std::to_string(effective.size_bytes) + " bytes, mtime " +
                std::to_string(effective.mtime_ns) + "ns) does not match the graph file (" +
                std::to_string(opts.expected_source.size_bytes) + " bytes, mtime " +
                std::to_string(opts.expected_source.mtime_ns) + "ns)");
  }

  if (opts.verify_checksum) {
    Fnv1a64 checksum;
    checksum.Update(file->data + sizeof(SnapshotHeader), expected_size - sizeof(SnapshotHeader));
    if (checksum.Digest() != header.payload_checksum) return fail("checksum mismatch");
  }

  // Full structural validation: the checksum only catches accidental
  // corruption (FNV is not cryptographic, and verify_checksum can be turned
  // off), so every value later used as an array index or span bound must be
  // range-checked here — one linear pass per array — before anything
  // dereferences the mapping.
  const auto offsets = SectionView<std::uint64_t>(*file, layout.offsets, n + 1);
  const auto adjacency = SectionView<VertexId>(*file, layout.adjacency, header.adjacency_size);
  const auto labels = SectionView<Label>(*file, layout.labels, n);
  const auto label_offsets =
      SectionView<std::uint64_t>(*file, layout.label_offsets, num_labels + 1);
  const auto label_members = SectionView<VertexId>(*file, layout.label_members, n);
  if (offsets[0] != 0 || offsets[n] != header.adjacency_size || label_offsets[0] != 0 ||
      label_offsets[num_labels] != n) {
    return fail("corrupt snapshot: CSR bounds are inconsistent");
  }
  std::uint64_t max_degree = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) return fail("corrupt snapshot: offsets not monotonic");
    max_degree = std::max(max_degree, offsets[v + 1] - offsets[v]);
  }
  // max_degree is the one header field no size check constrains; cross-check
  // it against the offsets so header corruption cannot propagate silently.
  if (max_degree != header.max_degree) return fail("corrupt snapshot: max degree mismatch");
  for (std::uint64_t l = 0; l < num_labels; ++l) {
    if (label_offsets[l] > label_offsets[l + 1]) {
      return fail("corrupt snapshot: label offsets not monotonic");
    }
  }
  // The kernels rely on adjacency lists being strictly sorted (linear-merge
  // intersections, binary-search HasEdge) and on label groups being strictly
  // ascending lists of exactly the vertices carrying that label; a file
  // violating those invariants would silently return wrong communities, so
  // it is rejected like any other corruption.
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (adjacency[i] >= n) return fail("corrupt snapshot: adjacency entry out of range");
      if (i > offsets[v] && adjacency[i - 1] >= adjacency[i]) {
        return fail("corrupt snapshot: adjacency list not sorted");
      }
    }
  }
  for (Label l : labels) {
    if (l >= num_labels) return fail("corrupt snapshot: label out of range");
  }
  for (std::uint64_t l = 0; l < num_labels; ++l) {
    for (std::uint64_t i = label_offsets[l]; i < label_offsets[l + 1]; ++i) {
      const VertexId v = label_members[i];
      if (v >= n) return fail("corrupt snapshot: label member out of range");
      if (labels[v] != l) return fail("corrupt snapshot: label member in wrong group");
      if (i > label_offsets[l] && label_members[i - 1] >= v) {
        return fail("corrupt snapshot: label group not sorted");
      }
    }
  }

  SnapshotBundle bundle;
  bundle.loaded_from_snapshot = true;
  bundle.mapped = file->mapped;
  bundle.snapshot_bytes = file->size;
  bundle.delta_blocks = delta_blocks;
  bundle.base_changelog_seq = header.base_changelog_seq;
  bundle.delta_log_valid_bytes = delta_log_valid_bytes;
  bundle.delta_log_torn_bytes = delta_log_torn_bytes;
  bundle.changelog_segments = clog.segments;
  bundle.changelog_updates = clog.updates.size();
  bundle.changelog_torn_bytes = clog.torn_tail_bytes;
  bundle.graph = SnapshotAccess::MakeGraph(offsets, adjacency, labels, label_offsets,
                                           label_members, header.max_degree, file);

  // The pair cache: scatter each compact chi array back over the two label
  // groups. This is the only copied data; everything else stays mapped.
  std::map<std::pair<Label, Label>, ButterflyCounts> pairs;
  std::size_t chi_offset = layout.chi;
  for (const SnapshotPairEntry& e : pair_entries) {
    if (e.label_a >= num_labels || e.label_b >= num_labels || e.label_a >= e.label_b) {
      return fail("corrupt snapshot: invalid pair labels");
    }
    const auto left = bundle.graph->VerticesWithLabel(e.label_a);
    const auto right = bundle.graph->VerticesWithLabel(e.label_b);
    if (e.chi_len != left.size() + right.size()) {
      return fail("corrupt snapshot: pair chi length does not match label groups");
    }
    // The argmax fields index chi (and flow into leader selection), so they
    // must be members of their side's label group or the no-vertex sentinel.
    const auto in_group = [](std::span<const VertexId> group, VertexId v) {
      return v == kInvalidVertex || std::binary_search(group.begin(), group.end(), v);
    };
    if (!in_group(left, e.argmax_left) || !in_group(right, e.argmax_right)) {
      return fail("corrupt snapshot: pair argmax outside its label group");
    }
    const auto compact = SectionView<std::uint64_t>(*file, chi_offset, e.chi_len);
    chi_offset += e.chi_len * sizeof(std::uint64_t);
    ButterflyCounts counts;
    counts.chi.assign(n, 0);
    std::size_t i = 0;
    for (VertexId v : left) counts.chi[v] = compact[i++];
    for (VertexId v : right) counts.chi[v] = compact[i++];
    counts.total = e.total;
    counts.max_left = e.max_left;
    counts.max_right = e.max_right;
    counts.argmax_left = e.argmax_left;
    counts.argmax_right = e.argmax_right;
    pairs.emplace(std::make_pair(e.label_a, e.label_b), std::move(counts));
  }

  bundle.index = SnapshotAccess::MakeIndex(
      bundle.graph.get(), SectionView<std::uint32_t>(*file, layout.coreness, n),
      SectionView<std::uint32_t>(*file, layout.max_core, num_labels), std::move(pairs));

  // Replay the delta log onto the mapped state through the dynamic-graph
  // layer. The updated graph shares the mapped label arrays (and keeps the
  // mapping alive); the index repair touches only the affected labels and
  // cached pairs.
  if (!replay.empty()) {
    std::string delta_err;
    const auto delta = BuildGraphDelta(*bundle.graph, replay, &delta_err);
    if (!delta) {
      return fail("snapshot delta log does not apply to the stored graph: " + delta_err);
    }
    auto updated = std::make_shared<const LabeledGraph>(ApplyGraphDelta(*bundle.graph, *delta));
    auto repaired = bundle.index->ApplyUpdates(*updated, *delta);
    bundle.index = std::move(repaired);
    bundle.graph = std::move(updated);
    bundle.replayed_updates = replay.size();
  }
  return bundle;
}

namespace internal {
std::size_t g_append_fail_after_bytes_for_test = std::numeric_limits<std::size_t>::max();
}  // namespace internal

bool AppendDeltaBlock(const std::string& path, std::span<const EdgeUpdate> updates,
                      const SourceGraphInfo& source, std::string* error, bool durable) {
  if (updates.size() > std::numeric_limits<std::uint32_t>::max()) {
    return IoFail(error, "delta block cannot hold more than 2^32-1 updates");
  }
  std::error_code ec;
  const auto prior_size = std::filesystem::file_size(path, ec);
  if (ec) return IoFail(error, "cannot stat " + path);
  if (prior_size < sizeof(SnapshotHeader)) {
    return IoFail(error, path + " is not a snapshot (smaller than the header)");
  }
  {
    std::ifstream in(path, std::ios::binary);
    char magic[8] = {};
    if (!in.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagicBytes, sizeof(magic)) != 0) {
      return IoFail(error, path + " is not a bccs snapshot");
    }
  }

  std::vector<DeltaEntry> entries;
  entries.reserve(updates.size());
  for (const EdgeUpdate& u : updates) {
    DeltaEntry e = {};
    e.kind = u.kind == EdgeUpdateKind::kInsert ? 0 : 1;
    e.u = u.edge.u;
    e.v = u.edge.v;
    entries.push_back(e);
  }
  Fnv1a64 checksum;
  checksum.Update(entries.data(), entries.size() * sizeof(DeltaEntry));

  DeltaBlockHeader block = {};
  std::memcpy(block.magic, kDeltaMagicBytes, sizeof(block.magic));
  block.count = static_cast<std::uint32_t>(entries.size());
  block.source_graph_size = source.size_bytes;
  block.source_graph_mtime_ns = source.mtime_ns;
  block.entries_checksum = checksum.Digest();

  // One contiguous buffer so the write is a single (interposable,
  // injectable) syscall on the happy path.
  std::vector<unsigned char> buf(sizeof(block) + entries.size() * sizeof(DeltaEntry));
  std::memcpy(buf.data(), &block, sizeof(block));
  if (!entries.empty()) {
    std::memcpy(buf.data() + sizeof(block), entries.data(),
                entries.size() * sizeof(DeltaEntry));
  }

  auto rollback = [&](const char* what) {
    std::error_code rb_ec;
    std::filesystem::resize_file(path, prior_size, rb_ec);
    return IoFail(error, std::string(what) + " for " + path +
                             (rb_ec ? " (and rollback failed: the file is now corrupt)"
                                    : " (rolled back to the prior size)"));
  };

#if BCCS_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return IoFail(error, "cannot open " + path + " for appending");
  const std::size_t inject = internal::g_append_fail_after_bytes_for_test;
  if (inject < buf.size()) {
    // Test seam: emulate a crash/ENOSPC after `inject` bytes of the block.
    internal::FullWrite(fd, buf.data(), inject);
    ::close(fd);
    return rollback("append failed (injected write failure)");
  }
  bool ok = internal::FullWrite(fd, buf.data(), buf.size());
  if (ok && durable) ok = ::fdatasync(fd) == 0;
  if (::close(fd) != 0) ok = false;
  if (!ok) return rollback("append failed");
#else
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return IoFail(error, "cannot open " + path + " for appending");
  const std::size_t inject = internal::g_append_fail_after_bytes_for_test;
  if (inject < buf.size()) {
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(inject));
    out.flush();
    out.close();
    return rollback("append failed (injected write failure)");
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  out.flush();
  if (!out) {
    out.close();
    return rollback("append failed");
  }
  (void)durable;  // no fd to sync through on this fallback
#endif
  return true;
}

SnapshotBundle BuildSnapshotBundle(const LabeledGraph& g, const std::string& path,
                                   std::string* error, const SourceGraphInfo& source) {
  SnapshotBundle out;
  out.graph = std::make_shared<const LabeledGraph>(g);  // shares the CSR arrays
  out.index = std::make_unique<BcIndex>(*out.graph);
  out.index->MaterializeAllPairs();
  std::string save_err;
  if (SaveSnapshot(*out.index, path, &save_err, source)) {
    if (error != nullptr) error->clear();
    // A fresh base makes any leftover changelog segments stale garbage: the
    // text graph is authoritative here, and replaying old segments onto the
    // new payload would corrupt it. A failed cleanup leaves that hazard on
    // disk, so it is reported like a failed save (the in-memory bundle is
    // still good; the on-disk snapshot must not be trusted).
    std::string clear_err;
    if (!RemoveChangelogSegments(path, &clear_err) && error != nullptr) {
      *error = "stale changelog cleanup failed: " + clear_err;
    }
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec) out.snapshot_bytes = static_cast<std::size_t>(size);
  } else if (error != nullptr) {
    *error = "save failed: " + save_err;
  }
  return out;
}

SnapshotBundle BcIndex::BuildOrLoad(const LabeledGraph& g, const std::string& path,
                                    std::string* error) {
  return BuildOrLoad(g, path, error, SourceGraphInfo{});
}

SnapshotBundle BcIndex::BuildOrLoad(const LabeledGraph& g, const std::string& path,
                                    std::string* error, const SourceGraphInfo& source) {
  std::string load_err;
  SnapshotLoadOptions opts;
  opts.expected_source = source;
  if (auto bundle = LoadSnapshot(path, &load_err, opts)) {
    if (error != nullptr) error->clear();
    return std::move(*bundle);
  }

  std::string build_err;
  SnapshotBundle out = BuildSnapshotBundle(g, path, &build_err, source);
  if (!build_err.empty()) {
    if (!load_err.empty()) load_err += "; ";
    load_err += build_err;
  }
  if (error != nullptr) *error = load_err;
  return out;
}

}  // namespace bccs
