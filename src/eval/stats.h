#ifndef BCCS_EVAL_STATS_H_
#define BCCS_EVAL_STATS_H_

#include <cstddef>
#include <cstdint>

#include "graph/labeled_graph.h"

namespace bccs {

/// Table-3-style statistics of a labeled graph.
struct GraphStats {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t num_labels = 0;
  /// Maximum coreness (the paper's k_max).
  std::uint32_t k_max = 0;
  /// Maximum degree (the paper's d_max).
  std::size_t d_max = 0;
  /// Lower bound on the diameter of the largest component via a BFS double
  /// sweep (reported for context; the paper's d_max column is max degree).
  std::uint32_t diameter_lb = 0;
  /// Number of heterogeneous (cross) edges.
  std::size_t num_cross_edges = 0;
};

GraphStats ComputeGraphStats(const LabeledGraph& g);

}  // namespace bccs

#endif  // BCCS_EVAL_STATS_H_
