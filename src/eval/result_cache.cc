#include "eval/result_cache.h"

#include <algorithm>

#include "common/check.h"

namespace bccs {

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity), shard_capacity_(std::max<std::size_t>(1, capacity / kShards)) {
  BCCS_CHECK(capacity > 0) << "result cache: zero capacity (disabled caches are null)";
}

std::uint64_t ResultCache::RelevantRepairEpochLocked(std::span<const Label> labels) const {
  std::uint64_t latest = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (auto it = intra_repair_.find(labels[i]); it != intra_repair_.end()) {
      latest = std::max(latest, it->second);
    }
    for (std::size_t j = i + 1; j < labels.size(); ++j) {
      const auto pair = std::minmax(labels[i], labels[j]);
      if (auto it = cross_repair_.find(pair); it != cross_repair_.end()) {
        latest = std::max(latest, it->second);
      }
    }
  }
  return latest;
}

bool ResultCache::Lookup(const ResultCacheKey& key, std::uint64_t query_epoch,
                         std::size_t lane, Community* community, SearchStats* stats) {
  BCCS_DCHECK(lane < 2) << "result cache: lane index out of range";
  Shard& shard = shards_[ShardOf(key)];
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    lane_misses_[lane].fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Entry& entry = it->second;
  if (entry.compute_epoch > query_epoch) {
    // Computed after this query's pinned epoch — useless for us, but newer
    // queries will want it; keep it resident.
    lane_misses_[lane].fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  bool stale = false;
  {
    MutexLock repair_lock(repair_mu_);
    stale = RelevantRepairEpochLocked(entry.labels) > entry.compute_epoch;
  }
  if (stale) {
    shard.lru.erase(entry.lru_it);
    shard.map.erase(it);
    stale_drops_.fetch_add(1, std::memory_order_relaxed);
    lane_misses_[lane].fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *community = entry.community;
  *stats = entry.stats;
  shard.lru.splice(shard.lru.end(), shard.lru, entry.lru_it);
  lane_hits_[lane].fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(const ResultCacheKey& key, std::span<const Label> labels,
                         std::uint64_t compute_epoch, const Community& community,
                         const SearchStats& stats) {
  Shard& shard = shards_[ShardOf(key)];
  MutexLock lock(shard.mu);
  {
    // The answer is only storable if no relevant repair landed after it was
    // computed; checked under the shard lock so a concurrent NoteRepairs is
    // ordered entirely before or after the (check, insert) pair.
    MutexLock repair_lock(repair_mu_);
    if (RelevantRepairEpochLocked(labels) > compute_epoch) {
      rejected_inserts_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Keep whichever answer is valid for the larger epoch window.
    if (it->second.compute_epoch < compute_epoch) {
      it->second.community = community;
      it->second.stats = stats;
      it->second.compute_epoch = compute_epoch;
      it->second.labels.assign(labels.begin(), labels.end());
    }
    shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
    return;
  }
  Entry entry;
  entry.community = community;
  entry.stats = stats;
  entry.compute_epoch = compute_epoch;
  entry.labels.assign(labels.begin(), labels.end());
  entry.lru_it = shard.lru.insert(shard.lru.end(), key);
  shard.map.emplace(key, std::move(entry));
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.map.size() > shard_capacity_) {
    const ResultCacheKey victim = shard.lru.front();
    shard.lru.pop_front();
    shard.map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::NoteRepairs(std::span<const Label> intra_labels,
                              std::span<const std::pair<Label, Label>> cross_pairs,
                              std::uint64_t epoch) {
  MutexLock lock(repair_mu_);
  for (Label l : intra_labels) {
    auto& mark = intra_repair_[l];
    mark = std::max(mark, epoch);
  }
  for (const auto& pair : cross_pairs) {
    BCCS_DCHECK(pair.first < pair.second) << "result cache: cross pair not canonical";
    auto& mark = cross_repair_[pair];
    mark = std::max(mark, epoch);
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats s;
  for (std::size_t lane = 0; lane < 2; ++lane) {
    s.lane_hits[lane] = lane_hits_[lane].load(std::memory_order_relaxed);
    s.lane_misses[lane] = lane_misses_[lane].load(std::memory_order_relaxed);
    s.hits += s.lane_hits[lane];
    s.misses += s.lane_misses[lane];
  }
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.stale_drops = stale_drops_.load(std::memory_order_relaxed);
  s.rejected_inserts = rejected_inserts_.load(std::memory_order_relaxed);
  s.capacity = capacity_;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    s.entries += shard.map.size();
  }
  return s;
}

}  // namespace bccs
