#ifndef BCCS_EVAL_SERVE_ENGINE_H_
#define BCCS_EVAL_SERVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "eval/batch_runner.h"
#include "graph/graph_delta.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// The unified serving engine: every request — query or edge-update — enters
/// here. The life of a served item:
///
///   1. **Admission.** The caller hands Serve() a span of items. Each item
///      is either a QueryRequest (what to search for, which algorithm, how
///      urgent, how long it may run) or an UpdateRequest (an edge-update
///      batch). Items without an explicit request id are assigned one
///      (stable per engine: the i-th item of the first call gets 1 + i).
///   2. **Segmentation.** The stream is split at UpdateRequests. Each
///      maximal run of queries forms one scheduling segment served against
///      the engine's current epoch; updates apply single-threaded at the
///      segment boundaries, so no query ever observes a half-applied batch
///      (DESIGN.md, serving contract 3).
///   3. **Scheduling.** Within a segment, BuildLaneOrder compiles the
///      two-lane policy (interactive ahead of bulk, anti-starvation aging)
///      into a claim order; BatchRunner workers claim slots FIFO over it.
///   4. **Planning.** Each claimed query is planned onto its method —
///      online / lp / l2p / mbcc. kL2pBcc without an index degrades to
///      LP-BCC (same model, no index). The per-query approx seed is derived
///      as `seed ^ request_id`, so sampled answers are bit-identical across
///      thread counts and claim orders.
///   5. **Execution.** The worker stamps its QueryWorkspace with the
///      request's deadline and runs the search; an expired deadline yields
///      the best valid partial answer with SearchStats::timed_out set.
///   6. **Update application.** An UpdateRequest is validated
///      (BuildGraphDelta) against the current epoch's graph; on success the
///      engine builds the updated graph (ApplyGraphDelta), incrementally
///      repairs the index (BcIndex::ApplyUpdates), atomically swaps both in,
///      and increments the epoch. A rejected batch leaves the epoch
///      untouched and reports the reason in its UpdateOutcome.
///   7. **Reporting.** BatchResult returns per-item outputs in stream
///      order: communities/stats/latency for queries, UpdateOutcomes for
///      updates, per-lane sojourn percentiles, and the epoch each item
///      executed in (epoch_of).

/// The paper's search variants as planner targets. kMbcc serves the
/// Section 7 multi-labeled model; the other three serve two-label queries.
enum class QueryMethod : std::uint8_t { kOnlineBcc, kLpBcc, kL2pBcc, kMbcc };

const char* Name(QueryMethod m);

/// A method-erased serving request: what to search for, which algorithm to
/// plan it onto, how urgent it is, and how long it may run.
struct QueryRequest {
  /// BccQuery for the two-label methods, MbccQuery for kMbcc. A request
  /// whose variant does not match its method is answered with an empty
  /// community (never dispatched onto the wrong engine).
  std::variant<BccQuery, MbccQuery> query;
  QueryMethod method = QueryMethod::kLpBcc;
  Lane lane = Lane::kBulk;
  /// Cooperative per-query deadline; 0 = none. Checked at peel-round
  /// granularity: an expired query returns its best valid intermediate
  /// community (possibly empty) with SearchStats::timed_out set.
  double deadline_seconds = 0;
  /// 0 = assigned by the engine (stable per engine instance: the i-th
  /// request of the first Serve call gets id 1 + i). Feeds the per-query
  /// approx seed derivation `seed ^ request_id`, so sampled answers are
  /// bit-identical across thread counts and claim orders.
  std::uint64_t request_id = 0;
  /// Two-label parameters (ignored by kMbcc).
  BccParams params;
  /// Multi-label parameters (kMbcc only).
  MbccParams mbcc_params;
};

/// An edge-update batch as a serving request (the third request kind, next
/// to two-label and multi-label queries): applied between query segments
/// with epoch semantics — queries ahead of it in the stream observe the
/// pre-update epoch, queries behind it the post-update epoch.
struct UpdateRequest {
  /// Applied in order with sequential semantics (see BuildGraphDelta); the
  /// whole batch is one atomic epoch transition — it applies fully or, on a
  /// validation error, not at all.
  std::vector<EdgeUpdate> updates;
  /// Incremental-repair fallback thresholds for BcIndex::ApplyUpdates.
  UpdateRepairOptions repair;
};

/// One serving-stream item.
using ServeItem = std::variant<QueryRequest, UpdateRequest>;

/// Engine-wide planning configuration: per-method search options plus the
/// scheduler's anti-starvation aging period.
struct ServeOptions {
  SearchOptions online = OnlineBccOptions();
  SearchOptions lp = LpBccOptions();
  L2pOptions l2p;
  SearchOptions mbcc = LpBccOptions();
  /// Every (aging_period + 1)-th claim slot goes to the oldest waiting bulk
  /// query even while interactive queries remain (0 disables aging).
  std::size_t aging_period = 8;
};

/// Plans method-erased requests onto the right search algorithm and
/// executes them on a shared BatchRunner pool under the two-lane schedule;
/// owns the epoch state for dynamic graphs (see the lifecycle above).
///
/// This is the single dispatch path for all four methods — the
/// BatchRunner::Run*Batch entry points are thin shims over it.
class ServeEngine {
 public:
  /// Non-owning: `g` (and `index`, when given) must outlive the engine.
  /// After an UpdateRequest the engine serves its own updated graph/index;
  /// the originals are never modified.
  ServeEngine(BatchRunner& runner, const LabeledGraph& g, const BcIndex* index = nullptr,
              ServeOptions opts = {});

  /// Owning: shares the graph (and index) with the caller — the natural fit
  /// for a SnapshotBundle. `index` may be null (kL2pBcc degrades to LP).
  ServeEngine(BatchRunner& runner, std::shared_ptr<const LabeledGraph> g,
              std::shared_ptr<const BcIndex> index, ServeOptions opts = {});

  /// Serves a mixed stream of queries and updates (the full lifecycle
  /// above). Outputs come back in stream order: query slots carry their
  /// community/stats, update slots carry an entry in BatchResult::updates.
  BatchResult Serve(std::span<const ServeItem> items);

  /// Query-only convenience: one segment against the current epoch.
  BatchResult Serve(std::span<const QueryRequest> requests);

  /// Current epoch (starts at 1; each applied UpdateRequest increments it).
  std::uint64_t epoch() const { return epoch_; }

  /// The current epoch's graph and index (index may be null). Valid until
  /// the next applied update; callers holding across updates should copy
  /// the shared_ptrs via graph_ptr()/index_ptr().
  const LabeledGraph& graph() const { return *g_; }
  const BcIndex* index() const { return index_.get(); }
  std::shared_ptr<const LabeledGraph> graph_ptr() const { return g_; }
  std::shared_ptr<const BcIndex> index_ptr() const { return index_; }

  const ServeOptions& options() const { return opts_; }

 private:
  void Dispatch(const QueryRequest& req, std::uint64_t request_id, QueryWorkspace& ws,
                Community* community, SearchStats* stats) const;
  void ApplyUpdateRequest(const UpdateRequest& req, UpdateOutcome* outcome);

  BatchRunner* runner_;
  std::shared_ptr<const LabeledGraph> g_;
  std::shared_ptr<const BcIndex> index_;
  ServeOptions opts_;
  std::uint64_t epoch_ = 1;
  std::atomic<std::uint64_t> next_request_id_{1};
};

}  // namespace bccs

#endif  // BCCS_EVAL_SERVE_ENGINE_H_
