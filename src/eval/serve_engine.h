#ifndef BCCS_EVAL_SERVE_ENGINE_H_
#define BCCS_EVAL_SERVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "eval/admission_queue.h"
#include "eval/batch_runner.h"
#include "eval/result_cache.h"
#include "graph/graph_delta.h"
#include "graph/labeled_graph.h"
#include "graph/snapshot.h"

namespace bccs {

class Changelog;

/// The unified serving engine: every request — query or edge-update — enters
/// here, through the streaming serve loop. The life of a served item:
///
///   1. **Admission.** OpenStream() starts the persistent worker pool
///      draining an AdmissionQueue; Stream::Submit admits items — each a
///      QueryRequest (what to search for, which algorithm, how urgent, how
///      long it may run) or an UpdateRequest (an edge-update batch) — while
///      workers are already serving earlier ones. Items without an explicit
///      request id are assigned one (stable per engine: the i-th item of
///      the first stream gets 1 + i). RunStream()/Serve() are the
///      submit-everything-then-drain conveniences over the same loop.
///   2. **Epoch tagging.** Each admitted query is stamped with its *epoch
///      slot*: the number of updates admitted before it. The query will
///      execute against exactly that slot's published (graph, index) state,
///      so answers are bit-identical to a serialized replay of the
///      admission order no matter how execution interleaves.
///   3. **Scheduling.** Workers dequeue under the two-lane policy
///      (interactive ahead of bulk, anti-starvation aging every
///      (aging_period + 1)-th slot) with per-lane in-flight caps
///      (ServeOptions::caps): a saturating bulk backlog can occupy at most
///      caps.bulk workers, so interactive tail latency stays bounded.
///   4. **Planning.** Each claimed query is planned onto its method —
///      online / lp / l2p / mbcc. kL2pBcc without an index degrades to
///      LP-BCC (same model, no index). The per-query approx seed is derived
///      as `seed ^ request_id`, so sampled answers are bit-identical across
///      thread counts and claim orders.
///   5. **Execution.** The worker pins its epoch slot's state (a shared_ptr
///      copy — the state outlives any concurrent update publish), stamps
///      its QueryWorkspace with the request's deadline and runs the search;
///      an expired deadline yields the best valid partial answer with
///      SearchStats::timed_out set.
///   6. **Update preparation (copy-on-write epochs).** An UpdateRequest is
///      claimed by a worker as soon as the previous update has resolved and
///      *prepared off-thread* against its pinned base epoch — validation
///      (BuildGraphDelta), graph rebuild (ApplyGraphDelta), incremental
///      index repair (BcIndex::ApplyUpdates) — while queries of older
///      epochs keep draining on the other workers. The new state is then
///      published with a single swap; queries admitted after the update
///      become runnable and observe it. A rejected batch publishes the
///      unchanged state (epoch not incremented) and reports the reason in
///      its UpdateOutcome. Old epoch states are released as soon as their
///      last pinned query completes.
///   7. **Reporting.** Stream::Finish() (and the RunStream/Serve shims)
///      returns a BatchResult with per-item outputs in admission order:
///      communities/stats/latency for queries, UpdateOutcomes for updates,
///      per-lane sojourn percentiles, and the epoch each item executed in
///      (epoch_of).

/// The paper's search variants as planner targets. kMbcc serves the
/// Section 7 multi-labeled model; the other three serve two-label queries.
enum class QueryMethod : std::uint8_t { kOnlineBcc, kLpBcc, kL2pBcc, kMbcc };

const char* Name(QueryMethod m);

/// A method-erased serving request: what to search for, which algorithm to
/// plan it onto, how urgent it is, and how long it may run.
struct QueryRequest {
  /// BccQuery for the two-label methods, MbccQuery for kMbcc. A request
  /// whose variant does not match its method is answered with an empty
  /// community (never dispatched onto the wrong engine).
  std::variant<BccQuery, MbccQuery> query;
  QueryMethod method = QueryMethod::kLpBcc;
  Lane lane = Lane::kBulk;
  /// Cooperative per-query deadline; 0 = none. Checked at peel-round
  /// granularity: an expired query returns its best valid intermediate
  /// community (possibly empty) with SearchStats::timed_out set.
  double deadline_seconds = 0;
  /// 0 = assigned by the engine (stable per engine instance: the i-th
  /// request of the first stream gets id 1 + i). Feeds the per-query
  /// approx seed derivation `seed ^ request_id`, so sampled answers are
  /// bit-identical across thread counts and claim orders.
  std::uint64_t request_id = 0;
  /// Two-label parameters (ignored by kMbcc).
  BccParams params;
  /// Multi-label parameters (kMbcc only).
  MbccParams mbcc_params;
};

/// An edge-update batch as a serving request (the third request kind, next
/// to two-label and multi-label queries): prepared off-thread against the
/// epoch current at its admission point and published as a new epoch —
/// queries ahead of it in the stream observe the pre-update epoch, queries
/// behind it the post-update epoch (DESIGN.md, serving contract 3).
struct UpdateRequest {
  /// Applied in order with sequential semantics (see BuildGraphDelta); the
  /// whole batch is one atomic epoch transition — it applies fully or, on a
  /// validation error, not at all.
  std::vector<EdgeUpdate> updates;
  /// Incremental-repair fallback thresholds for BcIndex::ApplyUpdates.
  UpdateRepairOptions repair;
};

/// One serving-stream item.
using ServeItem = std::variant<QueryRequest, UpdateRequest>;

/// Per-item completion notification of the streaming serve loop: what a
/// submitted item resolved to, delivered on the worker thread that executed
/// it the moment the result is written — the socket front-end's hook for
/// streaming each response back on its originating connection while the
/// stream is still admitting (instead of reporting everything at drain).
///
/// The pointers alias the stream's result slots: they are valid for the
/// duration of the callback (and in fact until Finish returns), but the
/// callback must not block — it runs inside a serving worker, so a slow
/// callback stalls one worker's dequeue loop.
struct ItemCompletion {
  /// Admission index within the stream (the Finish() result slot).
  std::size_t index = 0;
  std::uint64_t request_id = 0;
  /// Epoch the item executed in (queries) or produced (updates; a rejected
  /// update reports its unchanged base epoch).
  std::uint64_t epoch = 0;
  double seconds = 0;          // execution / preparation duration
  double sojourn_seconds = 0;  // admission -> completion
  bool is_update = false;
  // Queries (null for updates):
  const Community* community = nullptr;
  const SearchStats* stats = nullptr;
  // Updates (null for queries):
  const UpdateOutcome* outcome = nullptr;
};

/// Invoked on a worker thread when the item completes. Must be thread-safe
/// against other completions: items finish out of admission order and on
/// different workers concurrently.
using CompletionFn = std::function<void(const ItemCompletion&)>;

/// Engine-wide planning configuration: per-method search options plus the
/// streaming scheduler's knobs.
struct ServeOptions {
  SearchOptions online = OnlineBccOptions();
  SearchOptions lp = LpBccOptions();
  L2pOptions l2p;
  SearchOptions mbcc = LpBccOptions();
  /// Every (aging_period + 1)-th query dequeue goes to the oldest waiting
  /// bulk query even while interactive queries remain (0 disables aging).
  std::size_t aging_period = 8;
  /// Per-lane in-flight concurrency caps (0 = unlimited). caps.bulk = K
  /// bounds interactive tail latency under a saturating bulk backlog: bulk
  /// occupies at most K workers no matter how deep its queue grows.
  AdmissionCaps caps;
  /// Result-cache entry budget (0 = caching off). When on, cacheable
  /// queries — no deadline, effective approx disabled for their method —
  /// consult the epoch-keyed ResultCache before planning; a hit is
  /// bit-identical to re-executing at the query's pinned epoch (DESIGN.md
  /// serving contract 6).
  std::size_t result_cache_entries = 0;
  /// Byte budget for the index's lazily faulted pair-butterfly blocks
  /// (0 = unbounded). Applied to the serving index at engine construction
  /// and carried across epoch repairs; materialized/snapshot-loaded pairs
  /// are pinned and exempt.
  std::size_t pair_cache_bytes = 0;
};

/// Plans method-erased requests onto the right search algorithm and
/// executes them on a shared BatchRunner pool through the streaming
/// admission queue; owns the copy-on-write epoch state for dynamic graphs
/// (see the lifecycle above).
///
/// This is the single dispatch path for all four methods — the
/// BatchRunner::Run*Batch entry points and Serve() are thin shims over
/// OpenStream/RunStream.
///
/// One stream (or Serve call) at a time per engine: the stream occupies the
/// runner's worker pool until finished.
class ServeEngine {
 public:
  /// Non-owning: `g` (and `index`, when given) must outlive the engine.
  /// After an UpdateRequest the engine serves its own updated graph/index;
  /// the originals are never modified.
  ServeEngine(BatchRunner& runner, const LabeledGraph& g, const BcIndex* index = nullptr,
              ServeOptions opts = {});

  /// Owning: shares the graph (and index) with the caller — the natural fit
  /// for a SnapshotBundle. `index` may be null (kL2pBcc degrades to LP).
  ServeEngine(BatchRunner& runner, std::shared_ptr<const LabeledGraph> g,
              std::shared_ptr<const BcIndex> index, ServeOptions opts = {});

  ~ServeEngine();

  /// A live serving session: Submit admits items while the worker pool is
  /// already draining earlier ones; Finish closes admission, drains
  /// gracefully, and returns the per-item results in admission order.
  /// Submit is multi-producer: any number of threads may admit concurrently
  /// (each connection of the socket front-end is one producer), and the
  /// admission order — the order that fixes epoch slots, request ids, and
  /// the serialized-replay equivalence — is the order the submissions win
  /// the stream lock. Items submitted from ONE thread keep their program
  /// order, so a connection's own updates are always ordered before its
  /// later queries. Finish (and the destructor) must not race Submit: stop
  /// every producer first. The engine (and its BatchRunner) must outlive
  /// the Stream — a Stream moved past its engine's lifetime dangles.
  class Stream {
   public:
    Stream(Stream&&) noexcept;
    Stream& operator=(Stream&&) noexcept;
    ~Stream();

    /// Admits one item; returns the request id it will execute under.
    std::uint64_t Submit(ServeItem item);

    /// Admits one item with a per-item completion callback, invoked on the
    /// executing worker the moment the result lands (streaming completions:
    /// the caller hears about each item as it finishes, not at drain).
    std::uint64_t Submit(ServeItem item, CompletionFn on_complete);
    /// Items admitted so far.
    std::size_t Submitted() const;
    /// Closes admission, waits for the drain, and collects the results.
    BatchResult Finish();

   private:
    friend class ServeEngine;
    explicit Stream(std::unique_ptr<struct StreamState> state);
    std::unique_ptr<struct StreamState> state_;
  };

  /// Opens a stream: the runner's workers start draining immediately
  /// (behind a pump thread, so this caller stays free to Submit) and block
  /// on the admission queue until items arrive. Opening a second stream —
  /// or calling RunStream/Serve — while one is open aborts with a message
  /// (the shared worker pool cannot run two drains; the failure mode would
  /// otherwise be a silent deadlock). The same guard lives on BatchRunner
  /// itself, so a *different* engine sharing this runner aborts too.
  Stream OpenStream();

  /// Submit-everything-then-finish convenience: admits all items, then
  /// drains on the calling thread (no pump thread — the items are known up
  /// front, so there is nothing to overlap admission with). Update
  /// preparation still interleaves with old-epoch queries on the pool.
  BatchResult RunStream(std::span<const ServeItem> items);

  /// Compatibility shim over RunStream (the historical batch entry point).
  BatchResult Serve(std::span<const ServeItem> items);

  /// Query-only convenience shim.
  BatchResult Serve(std::span<const QueryRequest> requests);

  /// Current epoch (starts at 1; each applied UpdateRequest increments it).
  std::uint64_t epoch() const;

  /// The newest published epoch's graph and index (index may be null).
  /// graph()/index() are valid until the next applied update; callers
  /// holding across updates should copy the shared_ptrs via
  /// graph_ptr()/index_ptr().
  const LabeledGraph& graph() const;
  const BcIndex* index() const;
  std::shared_ptr<const LabeledGraph> graph_ptr() const;
  std::shared_ptr<const BcIndex> index_ptr() const;

  const ServeOptions& options() const { return opts_; }

  /// Durable serving: every applied UpdateRequest is appended to `log`
  /// before its new epoch publishes — append and publish happen together
  /// under the log's commit lock, so an UpdateOutcome with applied=true IS
  /// the durable acknowledgment (durable per the log's fsync policy), and a
  /// compactor capturing state under the same lock sees exactly the
  /// appended records. An append failure rejects the batch: the epoch does
  /// not advance and the outcome reports the error. `stamp` is the
  /// source-graph identity written with each record (what the snapshot
  /// represents after replay). `log` must outlive the engine; pass nullptr
  /// to detach. Call while no stream is open.
  void AttachDurability(Changelog* log, const SourceGraphInfo& stamp = {});
  Changelog* durability_log() const { return durability_log_; }

  /// Result-cache counters (all-zero when caching is off).
  bool result_cache_enabled() const { return result_cache_ != nullptr; }
  ResultCacheStats result_cache_stats() const;

  /// Pair block-cache counters of the newest published index (all-zero when
  /// the engine serves without an index).
  BlockCacheStats pair_cache_stats() const;

 private:
  friend struct StreamState;

  /// One published epoch: an immutable (graph, index) pair. Queries pin the
  /// state of their admission-time slot; updates build slot u+1 from slot u.
  struct EpochState {
    std::shared_ptr<const LabeledGraph> graph;
    std::shared_ptr<const BcIndex> index;
    std::uint64_t epoch = 0;
  };

  /// The labels an applied update repaired, for result-cache invalidation:
  /// labels with intra-label edge updates and canonical (first < second)
  /// label pairs with cross-label updates. Sorted, deduped.
  struct RepairTouch {
    std::vector<Label> intra;
    std::vector<std::pair<Label, Label>> cross;
  };

  std::unique_ptr<struct StreamState> MakeStreamState();
  void Dispatch(const QueryRequest& req, std::uint64_t request_id, const LabeledGraph& g,
                const BcIndex* index, QueryWorkspace& ws, Community* community,
                SearchStats* stats) const;
  /// True when the request may consult/populate the result cache: variant
  /// matches method, no deadline (a timed-out partial answer is
  /// timing-dependent), and the method's effective approx sampling is off
  /// (per-query seeds make sampled answers request-id-dependent).
  bool CacheableRequest(const QueryRequest& req, bool has_index) const;
  /// Validates and prepares `req` against `base` (off-thread safe: touches
  /// no engine state) and returns the successor state — `base` itself when
  /// the batch is rejected. `touch`, when non-null, receives the repaired
  /// labels of an applied batch.
  EpochState PrepareUpdate(const EpochState& base, const UpdateRequest& req,
                           UpdateOutcome* outcome, RepairTouch* touch = nullptr) const;
  void RunWorker(StreamState& state, QueryWorkspace& ws);

  BatchRunner* runner_;
  ServeOptions opts_;
  /// Epoch-keyed query-result cache; null when result_cache_entries == 0.
  /// Engine-lifetime (not per stream): entries persist across streams, and
  /// NoteRepairs keeps them exact across epochs.
  std::unique_ptr<ResultCache> result_cache_;
  Changelog* durability_log_ = nullptr;  // non-owning; see AttachDurability
  SourceGraphInfo durability_stamp_;
  mutable Mutex state_mutex_;
  /// The published head: the newest epoch's (graph, index).
  EpochState current_ GUARDED_BY(state_mutex_);
  std::atomic<std::uint64_t> next_request_id_{1};
  /// One stream at a time: the worker pool cannot run two drains. Set by
  /// MakeStreamState, cleared by Stream::Finish.
  std::atomic<bool> stream_open_{false};
};

}  // namespace bccs

#endif  // BCCS_EVAL_SERVE_ENGINE_H_
