#ifndef BCCS_EVAL_SERVE_ENGINE_H_
#define BCCS_EVAL_SERVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <variant>

#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "eval/batch_runner.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// The paper's search variants as planner targets. kMbcc serves the
/// Section 7 multi-labeled model; the other three serve two-label queries.
enum class QueryMethod : std::uint8_t { kOnlineBcc, kLpBcc, kL2pBcc, kMbcc };

const char* Name(QueryMethod m);

/// A method-erased serving request: what to search for, which algorithm to
/// plan it onto, how urgent it is, and how long it may run.
struct QueryRequest {
  /// BccQuery for the two-label methods, MbccQuery for kMbcc. A request
  /// whose variant does not match its method is answered with an empty
  /// community (never dispatched onto the wrong engine).
  std::variant<BccQuery, MbccQuery> query;
  QueryMethod method = QueryMethod::kLpBcc;
  Lane lane = Lane::kBulk;
  /// Cooperative per-query deadline; 0 = none. Checked at peel-round
  /// granularity: an expired query returns its best valid intermediate
  /// community (possibly empty) with SearchStats::timed_out set.
  double deadline_seconds = 0;
  /// 0 = assigned by the engine (stable per engine instance: the i-th
  /// request of the first Serve call gets id 1 + i). Feeds the per-query
  /// approx seed derivation `seed ^ request_id`, so sampled answers are
  /// bit-identical across thread counts and claim orders.
  std::uint64_t request_id = 0;
  /// Two-label parameters (ignored by kMbcc).
  BccParams params;
  /// Multi-label parameters (kMbcc only).
  MbccParams mbcc_params;
};

/// Engine-wide planning configuration: per-method search options plus the
/// scheduler's anti-starvation aging period.
struct ServeOptions {
  SearchOptions online = OnlineBccOptions();
  SearchOptions lp = LpBccOptions();
  L2pOptions l2p;
  SearchOptions mbcc = LpBccOptions();
  /// Every (aging_period + 1)-th claim slot goes to the oldest waiting bulk
  /// query even while interactive queries remain (0 disables aging).
  std::size_t aging_period = 8;
};

/// The unified serving engine: plans method-erased QueryRequests onto the
/// right search algorithm and executes them on a shared BatchRunner pool
/// under the two-lane schedule (interactive ahead of bulk, with aging).
///
/// This is the single dispatch path for all four methods — the
/// BatchRunner::Run*Batch entry points are thin shims over it.
///
/// Per-query deadlines are stamped into the worker's QueryWorkspace before
/// dispatch; the approx fast path (SearchOptions::approx of the per-method
/// options) has its seed derived per query as `seed ^ request_id`.
///
/// kL2pBcc requests require an index; when the engine was built without one
/// they are planned onto LP-BCC instead (same model, no index) — the
/// planned degradation for serving processes that skipped the index build.
class ServeEngine {
 public:
  ServeEngine(BatchRunner& runner, const LabeledGraph& g, const BcIndex* index = nullptr,
              ServeOptions opts = {});

  /// Executes the batch and returns per-query outputs in request order.
  /// BatchResult::seconds holds execution latency; sojourn_seconds holds
  /// submission-to-completion latency, and `lanes` summarizes it per lane
  /// (the interactive-vs-bulk p99 the scheduler exists for). `timed_out`
  /// counts deadline-expired queries.
  BatchResult Serve(std::span<const QueryRequest> requests);

  const ServeOptions& options() const { return opts_; }

 private:
  void Dispatch(const QueryRequest& req, std::uint64_t request_id, QueryWorkspace& ws,
                Community* community, SearchStats* stats) const;

  BatchRunner* runner_;
  const LabeledGraph* g_;
  const BcIndex* index_;
  ServeOptions opts_;
  std::atomic<std::uint64_t> next_request_id_{1};
};

}  // namespace bccs

#endif  // BCCS_EVAL_SERVE_ENGINE_H_
