#ifndef BCCS_EVAL_ADMISSION_QUEUE_H_
#define BCCS_EVAL_ADMISSION_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "eval/batch_runner.h"

namespace bccs {

/// Per-lane in-flight concurrency caps of the streaming serve loop. A lane
/// with cap K has at most K queries executing at once; further dequeues of
/// that lane block (the slot goes to the other lane or the worker waits).
/// This is what keeps interactive tail latency bounded under a saturating
/// bulk stream: bulk can queue arbitrarily deep but can only occupy K
/// workers. 0 = unlimited.
struct AdmissionCaps {
  std::size_t interactive = 0;
  std::size_t bulk = 0;
};

/// The admission layer of the streaming serve loop: a mutex+condvar MPMC
/// queue that accepts items while workers are already draining.
///
/// Producers admit *tickets* (queries tagged with a lane, updates) in
/// stream order; workers Pop() them under the dequeue policy that replaces
/// the old per-batch compiled claim order (BuildLaneOrder):
///
///   1. **Updates first, one at a time.** The oldest unresolved update is
///      handed out as soon as the previous one has been published — updates
///      gate the epoch progress of every query admitted after them, so
///      their preparation starts as early as a worker is free. At most one
///      update is ever in flight (epoch transitions are ordered).
///   2. **Interactive over bulk, with aging.** Among runnable queries,
///      interactive is dequeued first; every (aging_period + 1)-th query
///      dequeue goes to the oldest waiting bulk query even while
///      interactive queries remain (0 disables aging), exactly the
///      BuildLaneOrder policy expressed dynamically.
///   3. **Per-lane concurrency caps.** A lane at its in-flight cap is not
///      runnable; the worker takes the other lane or blocks until a
///      CompleteQuery frees a slot.
///   4. **Epoch gating.** A query admitted after the u-th update is not
///      runnable until that update has been published (PublishUpdate);
///      workers never busy-wait on an epoch — blocked queries simply stay
///      queued while runnable ones behind *older* epochs drain.
///
/// Admission indices are dense stream positions (0, 1, 2, ...) shared by
/// queries and updates — the caller uses them as result slots. The queue
/// itself carries no payloads; the caller keeps the items.
///
/// Thread safety: every method is safe to call concurrently. Close() makes
/// further Admit* calls a contract violation (they abort with a message —
/// the enqueued item would silently never execute) and lets Pop() drain
/// the remaining tickets before returning false.
class AdmissionQueue {
 public:
  /// One dequeued ticket.
  struct Ticket {
    enum class Kind : std::uint8_t { kQuery, kUpdate };
    Kind kind = Kind::kQuery;
    /// Admission index: position in the stream across both ticket kinds.
    std::size_t index = 0;
    /// Queries: number of updates admitted before this query — the epoch
    /// slot whose published state the query must observe.
    std::size_t epoch_slot = 0;
    /// Updates: position among updates (0-based). The u-th update builds
    /// epoch slot u+1 from slot u.
    std::size_t update_ordinal = 0;
    Lane lane = Lane::kBulk;
  };

  AdmissionQueue(std::size_t aging_period, AdmissionCaps caps);

  // Producer side -----------------------------------------------------------

  /// Admits a query on `lane`; returns its admission index.
  std::size_t AdmitQuery(Lane lane);

  /// Admits an edge-update batch; returns its admission index.
  std::size_t AdmitUpdate();

  /// Ends admission: Pop() drains the remaining tickets, then returns false.
  void Close();

  // Worker side -------------------------------------------------------------

  /// Blocks until a ticket is runnable (or the queue is closed and fully
  /// drained — returns false). A returned query occupies one slot of its
  /// lane until CompleteQuery; a returned update must be resolved with
  /// PublishUpdate before the next update (or any query admitted after it)
  /// becomes runnable.
  bool Pop(Ticket* out);

  /// Releases the lane slot a popped query occupied.
  void CompleteQuery(Lane lane);

  /// Marks the in-flight update resolved (applied OR rejected — either way
  /// its epoch slot is now published by the caller), unblocking queries
  /// admitted after it and the next update.
  void PublishUpdate();

  // Introspection (tests, stats) --------------------------------------------

  std::size_t admitted() const;
  std::size_t updates_admitted() const;
  std::size_t resolved_updates() const;
  /// High-water mark of concurrently executing queries per lane.
  std::size_t max_inflight(Lane lane) const;
  bool closed() const;

 private:
  struct PendingQuery {
    std::size_t index = 0;
    std::size_t epoch_slot = 0;
  };

  bool LaneRunnable(const std::deque<PendingQuery>& q, std::size_t inflight,
                    std::size_t cap) const REQUIRES(mutex_);

  const std::size_t aging_period_;
  const AdmissionCaps caps_;

  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<PendingQuery> interactive_ GUARDED_BY(mutex_);
  std::deque<PendingQuery> bulk_ GUARDED_BY(mutex_);
  // Admission indices of unclaimed updates.
  std::deque<std::size_t> updates_ GUARDED_BY(mutex_);
  std::size_t admitted_ GUARDED_BY(mutex_) = 0;
  std::size_t updates_admitted_ GUARDED_BY(mutex_) = 0;
  std::size_t claimed_updates_ GUARDED_BY(mutex_) = 0;
  std::size_t resolved_updates_ GUARDED_BY(mutex_) = 0;
  std::size_t inflight_[2] GUARDED_BY(mutex_) = {0, 0};      // indexed by Lane
  std::size_t max_inflight_[2] GUARDED_BY(mutex_) = {0, 0};  // high-water marks
  // Query dequeues since the last bulk one.
  std::size_t since_bulk_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace bccs

#endif  // BCCS_EVAL_ADMISSION_QUEUE_H_
