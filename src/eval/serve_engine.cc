#include "eval/serve_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/validate.h"
#include "eval/timer.h"
#include "graph/changelog.h"
#include "graph/graph_delta.h"

namespace bccs {

const char* Name(QueryMethod m) {
  switch (m) {
    case QueryMethod::kOnlineBcc: return "online";
    case QueryMethod::kLpBcc: return "lp";
    case QueryMethod::kL2pBcc: return "l2p";
    case QueryMethod::kMbcc: return "mbcc";
  }
  return "?";
}

namespace {

/// Wraps a caller-owned object in a non-owning shared_ptr (the legacy
/// constructor's lifetime contract: the caller keeps it alive).
template <typename T>
std::shared_ptr<const T> Unowned(const T* p) {
  return std::shared_ptr<const T>(p, [](const T*) {});
}

// Per-query approx seed derivation: deterministic in the request id, so a
// sampled query's whole schedule is independent of which worker claims it.
SearchOptions SeededOptions(const SearchOptions& base, std::uint64_t request_id) {
  SearchOptions o = base;
  if (o.approx.enabled) o.approx.seed ^= request_id;
  return o;
}

/// Canonical cache identity of a cacheable request, plus the label set its
/// answer depends on (a BCC answer is a function of the induced subgraph of
/// its query labels — the structural fact the result cache's invalidation
/// rests on). Returns false for malformed requests (wrong variant,
/// out-of-range vertices) — those are answered, but never cached.
bool BuildCacheKey(const QueryRequest& req, const LabeledGraph& g, ResultCacheKey* key,
                   std::vector<Label>* labels) {
  key->method = static_cast<std::uint8_t>(req.method);
  labels->clear();
  if (req.method == QueryMethod::kMbcc) {
    const auto* q = std::get_if<MbccQuery>(&req.query);
    if (q == nullptr || q->vertices.empty()) return false;
    for (VertexId v : q->vertices) {
      if (v >= g.NumVertices()) return false;
    }
    key->vertices = q->vertices;
    key->ks = req.mbcc_params.k;
    key->b = req.mbcc_params.b;
    for (VertexId v : q->vertices) labels->push_back(g.LabelOf(v));
  } else {
    const auto* q = std::get_if<BccQuery>(&req.query);
    if (q == nullptr) return false;
    if (q->ql >= g.NumVertices() || q->qr >= g.NumVertices()) return false;
    key->vertices = {q->ql, q->qr};
    key->ks = {req.params.k1, req.params.k2};
    key->b = req.params.b;
    labels->push_back(g.LabelOf(q->ql));
    labels->push_back(g.LabelOf(q->qr));
  }
  std::sort(labels->begin(), labels->end());
  labels->erase(std::unique(labels->begin(), labels->end()), labels->end());
  return true;
}

}  // namespace

/// All mutable state of one stream. Producers (Stream::Submit — any number
/// of threads, one per connection in the socket front-end) grow the
/// per-item containers under `mutex`; workers take stable pointers to their
/// exclusive slots under the same mutex and then execute unlocked (std::deque
/// growth never moves existing elements). The admission queue provides the
/// cross-thread ordering: a worker only learns an index from Pop(), which
/// happens-after the producer's bookkeeping for that index — admission into
/// the queue happens under `mutex` too, so the queue's dense admission
/// indices always match the container slots even with racing producers.
struct StreamState {
  StreamState(ServeEngine* e, std::size_t aging_period, AdmissionCaps caps)
      : engine(e), queue(aging_period, caps) {}

  ServeEngine* engine;
  AdmissionQueue queue;
  Timer wall;           // stream-open reference clock (admit/sojourn times)
  std::thread pump;     // blocks in BatchRunner::Run while workers drain

  Mutex mutex;  // guards every container below
  struct Slot {
    std::uint64_t request_id = 0;
    double admit_seconds = 0;
    int lane = -1;  // -1 = update slot (excluded from query latency)
  };
  std::deque<ServeItem> items GUARDED_BY(mutex);
  std::deque<Slot> slots GUARDED_BY(mutex);
  std::deque<Community> communities GUARDED_BY(mutex);
  std::deque<SearchStats> stats GUARDED_BY(mutex);
  std::deque<double> seconds GUARDED_BY(mutex);
  std::deque<double> sojourn GUARDED_BY(mutex);
  std::deque<std::uint64_t> epoch_of GUARDED_BY(mutex);
  // One per update, by ordinal.
  std::deque<UpdateOutcome> update_outcomes GUARDED_BY(mutex);
  // Per-item completion callbacks (empty function = none). Moved out by the
  // executing worker and invoked exactly once, outside every lock.
  std::deque<CompletionFn> callbacks GUARDED_BY(mutex);

  /// Copy-on-write epoch history: history[s] is the state observed by
  /// queries admitted after s updates. Slot 0 is published at open; slot
  /// u+1 is published when the u-th update resolves. `pending` counts
  /// admitted-but-not-completed queries pinned to the slot; a drained slot
  /// older than the newest published one releases its shared_ptrs (the
  /// copy-on-write garbage collection).
  struct HistorySlot {
    ServeEngine::EpochState state;
    std::size_t pending = 0;
  };
  std::deque<HistorySlot> history GUARDED_BY(mutex);
  // Number of published history slots.
  std::size_t published GUARDED_BY(mutex) = 1;
  // First slot that may still hold state.
  std::size_t release_cursor GUARDED_BY(mutex) = 0;
  std::size_t updates_admitted GUARDED_BY(mutex) = 0;
  /// Set by Finish (which must not race Submit — stop every producer
  /// first); atomic so concurrent producers' contract-violation check in
  /// Submit reads a coherent value rather than a torn one.
  std::atomic<bool> finished{false};
  /// Captured by BatchRunner::Run before the pool is released — reading
  /// the workspaces after Run returns would race the next job on a shared
  /// runner.
  WorkspaceStats drain_stats;

  /// Releases drained old epochs. Slots gain pending queries only while
  /// they are the newest admitted slot, so a drained slot behind the
  /// published head can never be pinned again.
  void ReleaseDrainedHistory() REQUIRES(mutex) {
    while (release_cursor + 1 < published && history[release_cursor].pending == 0) {
      history[release_cursor].state = ServeEngine::EpochState{};
      ++release_cursor;
    }
  }
};

ServeEngine::ServeEngine(BatchRunner& runner, const LabeledGraph& g, const BcIndex* index,
                         ServeOptions opts)
    : runner_(&runner), opts_(std::move(opts)) {
  current_.graph = Unowned(&g);
  current_.index = index != nullptr ? Unowned(index) : nullptr;
  current_.epoch = 1;
  if (opts_.result_cache_entries > 0) {
    result_cache_ = std::make_unique<ResultCache>(opts_.result_cache_entries);
  }
  if (opts_.pair_cache_bytes > 0 && current_.index != nullptr) {
    current_.index->SetPairCacheBudget(opts_.pair_cache_bytes);
  }
}

ServeEngine::ServeEngine(BatchRunner& runner, std::shared_ptr<const LabeledGraph> g,
                         std::shared_ptr<const BcIndex> index, ServeOptions opts)
    : runner_(&runner), opts_(std::move(opts)) {
  current_.graph = std::move(g);
  current_.index = std::move(index);
  current_.epoch = 1;
  if (opts_.result_cache_entries > 0) {
    result_cache_ = std::make_unique<ResultCache>(opts_.result_cache_entries);
  }
  if (opts_.pair_cache_bytes > 0 && current_.index != nullptr) {
    current_.index->SetPairCacheBudget(opts_.pair_cache_bytes);
  }
}

ServeEngine::~ServeEngine() = default;

void ServeEngine::AttachDurability(Changelog* log, const SourceGraphInfo& stamp) {
  durability_log_ = log;
  durability_stamp_ = stamp;
}

std::uint64_t ServeEngine::epoch() const {
  MutexLock lock(state_mutex_);
  return current_.epoch;
}

const LabeledGraph& ServeEngine::graph() const {
  MutexLock lock(state_mutex_);
  return *current_.graph;
}

const BcIndex* ServeEngine::index() const {
  MutexLock lock(state_mutex_);
  return current_.index.get();
}

std::shared_ptr<const LabeledGraph> ServeEngine::graph_ptr() const {
  MutexLock lock(state_mutex_);
  return current_.graph;
}

std::shared_ptr<const BcIndex> ServeEngine::index_ptr() const {
  MutexLock lock(state_mutex_);
  return current_.index;
}

ResultCacheStats ServeEngine::result_cache_stats() const {
  return result_cache_ != nullptr ? result_cache_->Stats() : ResultCacheStats{};
}

BlockCacheStats ServeEngine::pair_cache_stats() const {
  const auto index = index_ptr();
  return index != nullptr ? index->PairCacheStats() : BlockCacheStats{};
}

bool ServeEngine::CacheableRequest(const QueryRequest& req, bool has_index) const {
  if (req.deadline_seconds > 0) return false;
  switch (req.method) {
    case QueryMethod::kOnlineBcc:
      return !opts_.online.approx.enabled;
    case QueryMethod::kLpBcc:
      return !opts_.lp.approx.enabled;
    case QueryMethod::kL2pBcc:
      // Matches Dispatch: without an index, l2p degrades to LP and runs
      // under the LP options' approx setting.
      return has_index ? !opts_.l2p.search.approx.enabled : !opts_.lp.approx.enabled;
    case QueryMethod::kMbcc:
      return !opts_.mbcc.approx.enabled;
  }
  return false;
}

void ServeEngine::Dispatch(const QueryRequest& req, std::uint64_t request_id,
                           const LabeledGraph& g, const BcIndex* index, QueryWorkspace& ws,
                           Community* community, SearchStats* stats) const {
  if (req.method == QueryMethod::kMbcc) {
    const auto* q = std::get_if<MbccQuery>(&req.query);
    if (q == nullptr) return;  // variant/method mismatch: empty answer
    *community = MbccSearch(g, *q, req.mbcc_params, SeededOptions(opts_.mbcc, request_id),
                            stats, nullptr, &ws);
    return;
  }
  const auto* q = std::get_if<BccQuery>(&req.query);
  if (q == nullptr) return;
  switch (req.method) {
    case QueryMethod::kOnlineBcc:
      *community =
          BccSearch(g, *q, req.params, SeededOptions(opts_.online, request_id), stats, &ws);
      break;
    case QueryMethod::kLpBcc:
      *community =
          BccSearch(g, *q, req.params, SeededOptions(opts_.lp, request_id), stats, &ws);
      break;
    case QueryMethod::kL2pBcc:
      if (index != nullptr) {
        L2pOptions o = opts_.l2p;
        o.search = SeededOptions(o.search, request_id);
        *community = L2pBcc(g, *index, *q, req.params, o, stats, &ws);
      } else {
        // Planned degradation: no index in this process, serve via LP.
        *community =
            BccSearch(g, *q, req.params, SeededOptions(opts_.lp, request_id), stats, &ws);
      }
      break;
    case QueryMethod::kMbcc:
      break;  // handled above
  }
}

ServeEngine::EpochState ServeEngine::PrepareUpdate(const EpochState& base,
                                                   const UpdateRequest& req,
                                                   UpdateOutcome* outcome,
                                                   RepairTouch* touch) const {
  std::string error;
  const auto delta = BuildGraphDelta(*base.graph, req.updates, &error);
  if (!delta) {
    // Rejected: the successor epoch is the base itself — queries admitted
    // after this update observe the unchanged graph.
    outcome->error = error;
    return base;
  }
  if (touch != nullptr) {
    // Labels never change across edge updates, so the base graph's labeling
    // identifies exactly which label groups (and cross pairs) the batch
    // repairs — the result cache invalidates only those.
    for (const auto* edges : {&delta->inserts, &delta->deletes}) {
      for (const Edge& e : *edges) {
        const Label a = base.graph->LabelOf(e.u);
        const Label b = base.graph->LabelOf(e.v);
        if (a == b) {
          touch->intra.push_back(a);
        } else {
          touch->cross.push_back(std::minmax(a, b));
        }
      }
    }
    std::sort(touch->intra.begin(), touch->intra.end());
    touch->intra.erase(std::unique(touch->intra.begin(), touch->intra.end()),
                       touch->intra.end());
    std::sort(touch->cross.begin(), touch->cross.end());
    touch->cross.erase(std::unique(touch->cross.begin(), touch->cross.end()),
                       touch->cross.end());
  }
  EpochState next;
  next.graph = std::make_shared<const LabeledGraph>(ApplyGraphDelta(*base.graph, *delta));
  next.epoch = base.epoch + 1;
  outcome->inserts = delta->inserts.size();
  outcome->deletes = delta->deletes.size();
  if (base.index != nullptr) {
    // Repair against the pinned base graph/index (both kept alive by the
    // epoch history while old-epoch queries drain).
    next.index = base.index->ApplyUpdates(*next.graph, *delta, req.repair, &outcome->repair);
  }
  outcome->applied = true;
  return next;
}

void ServeEngine::RunWorker(StreamState& state, QueryWorkspace& ws) {
  AdmissionQueue::Ticket t;
  while (state.queue.Pop(&t)) {
    if (t.kind == AdmissionQueue::Ticket::Kind::kUpdate) {
      const std::size_t u = t.update_ordinal;
      EpochState base;
      const ServeItem* item;
      double admit_seconds;
      std::uint64_t request_id;
      UpdateOutcome* outcome;
      CompletionFn done;
      {
        MutexLock lock(state.mutex);
        base = state.history[u].state;
        item = &state.items[t.index];
        admit_seconds = state.slots[t.index].admit_seconds;
        request_id = state.slots[t.index].request_id;
        outcome = &state.update_outcomes[u];
        done = std::move(state.callbacks[t.index]);
      }
      outcome->item_index = t.index;
      Timer apply;
      RepairTouch touch;
      EpochState next = PrepareUpdate(base, std::get<UpdateRequest>(*item), outcome, &touch);
      if (durability_log_ != nullptr && outcome->applied) {
        // The durable commit: changelog append and epoch publish happen
        // together under the log's commit lock, so the log and the
        // published head never disagree — and a compactor capturing state
        // under the same lock sees exactly the appended records. A failed
        // append rejects the batch; the un-durable state never publishes.
        const auto& update_req = std::get<UpdateRequest>(*item);
        MutexLock commit(durability_log_->commit_mutex());
        std::string err;
        if (!durability_log_->Append(
                std::span<const EdgeUpdate>(update_req.updates), durability_stamp_,
                &err)) {
          outcome->applied = false;
          outcome->error = "durability append failed: " + err;
          outcome->inserts = 0;
          outcome->deletes = 0;
          next = base;
        } else {
          MutexLock lock(state_mutex_);
          current_ = next;
        }
      } else {
        MutexLock lock(state_mutex_);
        current_ = next;
      }
      if (outcome->applied && result_cache_ != nullptr) {
        // Invalidate BEFORE the queue releases epoch-(u+1) queries (the
        // PublishUpdate below): any query that can observe the new graph
        // observes the repair marks first, so no stale entry can be served
        // at — or inserted above — the new epoch for a touched label set.
        result_cache_->NoteRepairs(touch.intra, touch.cross, next.epoch);
      }
      outcome->seconds = apply.Seconds();
      outcome->epoch = next.epoch;
      double update_sojourn;
      {
        MutexLock lock(state.mutex);
        state.history[u + 1].state = next;
        state.published = u + 2;
        state.ReleaseDrainedHistory();
        state.seconds[t.index] = outcome->seconds;
        update_sojourn = state.wall.Seconds() - admit_seconds;
        state.sojourn[t.index] = update_sojourn;
        state.epoch_of[t.index] = next.epoch;
      }
      // Resolve on the queue AFTER the history write: Pop()'s mutex
      // acquisition gives any worker that observes the resolution a
      // happens-before edge to the new state.
      state.queue.PublishUpdate();
      if (done) {
        // Streaming completion, after the publish: when the callback fires,
        // the new epoch is already observable by later admissions — an ack
        // the socket layer relays (and keeps for idempotent retries) is
        // never ahead of the state it describes.
        ItemCompletion c;
        c.index = t.index;
        c.request_id = request_id;
        c.epoch = outcome->epoch;
        c.seconds = outcome->seconds;
        c.sojourn_seconds = update_sojourn;
        c.is_update = true;
        c.outcome = outcome;
        done(c);
      }
      continue;
    }

    // Query: pin the admission-time epoch (the queue guarantees it is
    // published by now), then execute against it unlocked — a concurrent
    // update publish cannot invalidate the pinned shared_ptrs.
    EpochState pinned;
    const ServeItem* item;
    std::uint64_t request_id;
    double admit_seconds;
    Community* community;
    SearchStats* stats;
    CompletionFn done;
    {
      MutexLock lock(state.mutex);
      pinned = state.history[t.epoch_slot].state;
      item = &state.items[t.index];
      request_id = state.slots[t.index].request_id;
      admit_seconds = state.slots[t.index].admit_seconds;
      community = &state.communities[t.index];
      stats = &state.stats[t.index];
      done = std::move(state.callbacks[t.index]);
    }
    const QueryRequest& req = std::get<QueryRequest>(*item);
    ResultCacheKey cache_key;
    std::vector<Label> cache_labels;
    const bool cacheable = result_cache_ != nullptr &&
                           CacheableRequest(req, pinned.index != nullptr) &&
                           BuildCacheKey(req, *pinned.graph, &cache_key, &cache_labels);
    const auto lane_idx = static_cast<std::size_t>(req.lane);
    Timer exec;
    const bool cache_hit =
        cacheable &&
        result_cache_->Lookup(cache_key, pinned.epoch, lane_idx, community, stats);
    if (!cache_hit) {
      if (req.deadline_seconds > 0) ws.SetDeadline(Deadline::After(req.deadline_seconds));
      Dispatch(req, request_id, *pinned.graph, pinned.index.get(), ws, community, stats);
      ws.SetDeadline(Deadline{});
      // Timed-out partial answers are timing-dependent, never cached (the
      // deadline gate above already excludes them; keep the belt with the
      // suspenders in case a search ever times out without a deadline).
      if (cacheable && !stats->timed_out) {
        result_cache_->Insert(cache_key, cache_labels, pinned.epoch, *community, *stats);
      }
    }
    const double exec_seconds = exec.Seconds();
    const std::uint64_t pinned_epoch = pinned.epoch;
    double query_sojourn;
    {
      MutexLock lock(state.mutex);
      state.seconds[t.index] = exec_seconds;
      query_sojourn = state.wall.Seconds() - admit_seconds;
      state.sojourn[t.index] = query_sojourn;
      state.epoch_of[t.index] = pinned.epoch;
      if (--state.history[t.epoch_slot].pending == 0) state.ReleaseDrainedHistory();
    }
    pinned = EpochState{};  // drop the pin before (not while) holding queue locks
    state.queue.CompleteQuery(t.lane);
    if (done) {
      // After CompleteQuery: the lane slot is free while the caller's
      // callback runs, so a slow consumer delays only this worker's next
      // dequeue, never the lane's concurrency budget.
      ItemCompletion c;
      c.index = t.index;
      c.request_id = request_id;
      c.epoch = pinned_epoch;
      c.seconds = exec_seconds;
      c.sojourn_seconds = query_sojourn;
      c.community = community;
      c.stats = stats;
      done(c);
    }
  }
}

// ---------------------------------------------------------------------------
// Stream: the streaming session handle.
// ---------------------------------------------------------------------------

ServeEngine::Stream::Stream(std::unique_ptr<StreamState> state) : state_(std::move(state)) {}

ServeEngine::Stream::Stream(Stream&&) noexcept = default;

ServeEngine::Stream& ServeEngine::Stream::operator=(Stream&& other) noexcept {
  if (this != &other) {
    // Finish an unfinished target first — destroying its state outright
    // would run std::thread's destructor on the joinable pump
    // (std::terminate) and leak the engine's stream_open_ flag.
    if (state_ != nullptr && !state_->finished) Finish();
    state_ = std::move(other.state_);
  }
  return *this;
}

ServeEngine::Stream::~Stream() {
  if (state_ != nullptr && !state_->finished) Finish();
}

std::uint64_t ServeEngine::Stream::Submit(ServeItem item) {
  return Submit(std::move(item), CompletionFn());
}

std::uint64_t ServeEngine::Stream::Submit(ServeItem item, CompletionFn on_complete) {
  StreamState& s = *state_;
  if (s.finished.load(std::memory_order_acquire)) {
    // The worker pool has already been released; enqueueing would silently
    // drop the item while handing back a valid-looking request id.
    std::fprintf(stderr, "ServeEngine::Stream: Submit after Finish\n");
    std::abort();
  }
  const bool is_update = std::holds_alternative<UpdateRequest>(item);
  std::uint64_t id = 0;
  Lane lane = Lane::kBulk;
  {
    MutexLock lock(s.mutex);
    // Every item consumes one request id (updates too), drawn under the
    // stream lock so ids follow the admission order even with racing
    // producers — a query's id, and with it its approx seed, depends only
    // on its admission position, exactly as in a serialized replay.
    id = s.engine->next_request_id_.fetch_add(1);
    s.items.push_back(std::move(item));
    StreamState::Slot slot;
    slot.admit_seconds = s.wall.Seconds();
    if (const auto* q = std::get_if<QueryRequest>(&s.items.back())) {
      if (q->request_id != 0) id = q->request_id;
      lane = q->lane;
      slot.lane = static_cast<int>(q->lane);
      ++s.history[s.updates_admitted].pending;
    } else {
      s.update_outcomes.emplace_back();
      s.history.emplace_back();  // the slot this update will publish
      ++s.updates_admitted;
    }
    slot.request_id = id;
    s.slots.push_back(slot);
    s.communities.emplace_back();
    s.stats.emplace_back();
    s.seconds.push_back(0);
    s.sojourn.push_back(0);
    s.epoch_of.push_back(0);
    s.callbacks.push_back(std::move(on_complete));
    // Admit under the same lock (after the bookkeeping above): with
    // multiple producers the queue's dense admission index must be assigned
    // in the order the container slots were pushed, or a worker would read
    // another producer's item. Lock order stream mutex -> queue mutex;
    // workers never hold both (Pop returns before they take the stream
    // mutex), so the nesting is acyclic (DESIGN.md, serving contract 5).
    if (is_update) {
      s.queue.AdmitUpdate();
    } else {
      s.queue.AdmitQuery(lane);
    }
  }
  return id;
}

std::size_t ServeEngine::Stream::Submitted() const {
  MutexLock lock(state_->mutex);
  return state_->slots.size();
}

BatchResult ServeEngine::Stream::Finish() {
  StreamState& s = *state_;
  BatchResult out;
  if (s.finished) return out;
  s.queue.Close();
  if (s.pump.joinable()) s.pump.join();
  s.finished = true;
  const double wall_seconds = s.wall.Seconds();

  // Workers are gone (the pump join above is the synchronization point), but
  // the containers are GUARDED_BY the stream mutex — hold it (uncontended)
  // for the aggregation so the annotation holds here too.
  MutexLock lock(s.mutex);
#if BCCS_DCHECK_IS_ON
  {
    // The drained stream must leave the copy-on-write bookkeeping coherent:
    // every admitted query completed, so every slot behind the published
    // head is released and the head still holds state.
    EpochHistoryView view;
    view.published = s.published;
    view.release_cursor = s.release_cursor;
    view.updates_admitted = s.updates_admitted;
    for (const StreamState::HistorySlot& slot : s.history) {
      view.slots.push_back(
          {slot.state.epoch, slot.pending, slot.state.graph != nullptr});
    }
    const ValidationResult audit = ValidateEpochHistory(view);
    BCCS_DCHECK(audit.ok) << "epoch history audit: " << audit.reason;
  }
#endif
  const std::size_t count = s.slots.size();
  out.communities.assign(s.communities.begin(), s.communities.end());
  out.stats.assign(s.stats.begin(), s.stats.end());
  out.seconds.assign(s.seconds.begin(), s.seconds.end());
  out.sojourn_seconds.assign(s.sojourn.begin(), s.sojourn.end());
  out.epoch_of.assign(s.epoch_of.begin(), s.epoch_of.end());
  out.updates.assign(s.update_outcomes.begin(), s.update_outcomes.end());
  out.threads_used = s.engine->runner_->NumThreads();

  // The latency/qps summary describes query serving only — update slots
  // (whose seconds hold the preparation duration) would otherwise smear a
  // slow repair into the query percentiles the lane summaries exclude.
  std::vector<double> query_seconds;
  query_seconds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (s.slots[i].lane >= 0) query_seconds.push_back(out.seconds[i]);
  }
  out.latency = SummarizeLatency(query_seconds, wall_seconds);
  out.workspace_stats = s.drain_stats;
  out.result_cache_enabled = s.engine->result_cache_ != nullptr;
  out.result_cache = s.engine->result_cache_stats();
  // The newest published slot of this stream IS the engine's current state;
  // read it here (under s.mutex) rather than through the engine head to keep
  // the lock sets disjoint.
  if (const auto& head = s.history[s.published - 1].state; head.index != nullptr) {
    out.pair_cache = head.index->PairCacheStats();
  }
  for (const SearchStats& st : out.stats) out.timed_out += st.timed_out ? 1 : 0;

  std::vector<double> lane_sojourn;
  for (Lane lane : {Lane::kInteractive, Lane::kBulk}) {
    lane_sojourn.clear();
    for (std::size_t i = 0; i < count; ++i) {
      if (s.slots[i].lane == static_cast<int>(lane)) {
        lane_sojourn.push_back(out.sojourn_seconds[i]);
      }
    }
    if (lane_sojourn.empty()) continue;
    LaneSummary summary;
    summary.lane = lane;
    summary.queries = lane_sojourn.size();
    summary.latency = SummarizeLatency(lane_sojourn, wall_seconds);
    summary.max_inflight = s.queue.max_inflight(lane);
    out.lanes.push_back(summary);
  }
  // Release the engine only after every read of shared state above — a
  // stream opened the instant this clears must not race the aggregation.
  s.engine->stream_open_.store(false);
  return out;
}

std::unique_ptr<StreamState> ServeEngine::MakeStreamState() {
  if (stream_open_.exchange(true)) {
    // The alternative is a silent deadlock: two drains would clobber the
    // shared worker pool's job state and neither would ever complete.
    std::fprintf(stderr,
                 "ServeEngine: a stream is already open on this engine/runner "
                 "(one drain at a time)\n");
    std::abort();
  }
  auto state = std::make_unique<StreamState>(this, opts_.aging_period, opts_.caps);
  StreamState::HistorySlot slot0;
  {
    MutexLock lock(state_mutex_);
    slot0.state = current_;
  }
  MutexLock lock(state->mutex);
  state->history.push_back(std::move(slot0));
  return state;
}

ServeEngine::Stream ServeEngine::OpenStream() {
  auto state = MakeStreamState();
  // The pump thread parks the pool in the drain loop so the caller's thread
  // stays free to Submit while workers serve.
  StreamState* raw = state.get();
  state->pump = std::thread([this, raw] {
    runner_->Run(
        runner_->NumThreads(),
        [this, raw](std::size_t, QueryWorkspace& ws) { RunWorker(*raw, ws); },
        &raw->drain_stats);
  });
  return Stream(std::move(state));
}

BatchResult ServeEngine::RunStream(std::span<const ServeItem> items) {
  // All items are known up front: no pump thread — admit, close, and drain
  // on the calling thread, sparing the batch shims (and single-query tools)
  // a thread spawn+join per call.
  Stream stream(MakeStreamState());
  for (const ServeItem& item : items) stream.Submit(item);
  StreamState& s = *stream.state_;
  s.queue.Close();
  runner_->Run(
      runner_->NumThreads(),
      [this, &s](std::size_t, QueryWorkspace& ws) { RunWorker(s, ws); }, &s.drain_stats);
  return stream.Finish();
}

BatchResult ServeEngine::Serve(std::span<const ServeItem> items) { return RunStream(items); }

BatchResult ServeEngine::Serve(std::span<const QueryRequest> requests) {
  std::vector<ServeItem> items(requests.begin(), requests.end());
  return RunStream(std::span<const ServeItem>(items));
}

// ---------------------------------------------------------------------------
// Compatibility shims: the historical per-method batch entry points, now
// thin request builders over the unified engine (declared in batch_runner.h).
// ---------------------------------------------------------------------------

BatchResult BatchRunner::RunBccBatch(const LabeledGraph& g, std::span<const BccQuery> queries,
                                     const BccParams& params, const SearchOptions& opts) {
  ServeOptions so;
  so.online = opts;
  so.lp = opts;
  const QueryMethod method =
      opts.use_leader_pair ? QueryMethod::kLpBcc : QueryMethod::kOnlineBcc;
  ServeEngine engine(*this, g, nullptr, so);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = method;
    requests[i].params = params;
  }
  return engine.Serve(requests);
}

BatchResult BatchRunner::RunL2pBatch(const LabeledGraph& g, const BcIndex& index,
                                     std::span<const BccQuery> queries,
                                     const BccParams& params, const L2pOptions& opts) {
  ServeOptions so;
  so.l2p = opts;
  ServeEngine engine(*this, g, &index, so);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kL2pBcc;
    requests[i].params = params;
  }
  return engine.Serve(requests);
}

BatchResult BatchRunner::RunMbccBatch(const LabeledGraph& g,
                                      std::span<const MbccQuery> queries,
                                      const MbccParams& params, const SearchOptions& opts) {
  ServeOptions so;
  so.mbcc = opts;
  ServeEngine engine(*this, g, nullptr, so);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kMbcc;
    requests[i].mbcc_params = params;
  }
  return engine.Serve(requests);
}

}  // namespace bccs
