#include "eval/serve_engine.h"

#include <vector>

#include "eval/timer.h"

namespace bccs {

const char* Name(QueryMethod m) {
  switch (m) {
    case QueryMethod::kOnlineBcc: return "online";
    case QueryMethod::kLpBcc: return "lp";
    case QueryMethod::kL2pBcc: return "l2p";
    case QueryMethod::kMbcc: return "mbcc";
  }
  return "?";
}

ServeEngine::ServeEngine(BatchRunner& runner, const LabeledGraph& g, const BcIndex* index,
                         ServeOptions opts)
    : runner_(&runner), g_(&g), index_(index), opts_(std::move(opts)) {}

namespace {

// Per-query approx seed derivation: deterministic in the request id, so a
// sampled query's whole schedule is independent of which worker claims it.
SearchOptions SeededOptions(const SearchOptions& base, std::uint64_t request_id) {
  SearchOptions o = base;
  if (o.approx.enabled) o.approx.seed ^= request_id;
  return o;
}

}  // namespace

void ServeEngine::Dispatch(const QueryRequest& req, std::uint64_t request_id,
                           QueryWorkspace& ws, Community* community,
                           SearchStats* stats) const {
  if (req.method == QueryMethod::kMbcc) {
    const auto* q = std::get_if<MbccQuery>(&req.query);
    if (q == nullptr) return;  // variant/method mismatch: empty answer
    *community = MbccSearch(*g_, *q, req.mbcc_params, SeededOptions(opts_.mbcc, request_id),
                            stats, nullptr, &ws);
    return;
  }
  const auto* q = std::get_if<BccQuery>(&req.query);
  if (q == nullptr) return;
  switch (req.method) {
    case QueryMethod::kOnlineBcc:
      *community = BccSearch(*g_, *q, req.params, SeededOptions(opts_.online, request_id),
                             stats, &ws);
      break;
    case QueryMethod::kLpBcc:
      *community =
          BccSearch(*g_, *q, req.params, SeededOptions(opts_.lp, request_id), stats, &ws);
      break;
    case QueryMethod::kL2pBcc:
      if (index_ != nullptr) {
        L2pOptions o = opts_.l2p;
        o.search = SeededOptions(o.search, request_id);
        *community = L2pBcc(*g_, *index_, *q, req.params, o, stats, &ws);
      } else {
        // Planned degradation: no index in this process, serve via LP.
        *community =
            BccSearch(*g_, *q, req.params, SeededOptions(opts_.lp, request_id), stats, &ws);
      }
      break;
    case QueryMethod::kMbcc:
      break;  // handled above
  }
}

BatchResult ServeEngine::Serve(std::span<const QueryRequest> requests) {
  BatchResult out;
  const std::size_t count = requests.size();
  out.communities.resize(count);
  out.stats.assign(count, SearchStats{});
  out.seconds.assign(count, 0);
  out.sojourn_seconds.assign(count, 0);
  out.threads_used = runner_->NumThreads();
  if (count == 0) return out;

  std::vector<Lane> lanes(count);
  std::vector<std::uint64_t> ids(count);
  const std::uint64_t base = next_request_id_.fetch_add(count);
  for (std::size_t i = 0; i < count; ++i) {
    lanes[i] = requests[i].lane;
    ids[i] = requests[i].request_id != 0 ? requests[i].request_id : base + i;
  }
  const std::vector<std::uint32_t> order = BuildLaneOrder(lanes, opts_.aging_period);

  Timer wall;
  runner_->RunOrdered(order, [&](std::size_t i, QueryWorkspace& ws) {
    const QueryRequest& req = requests[i];
    if (req.deadline_seconds > 0) ws.SetDeadline(Deadline::After(req.deadline_seconds));
    Timer exec;
    Dispatch(req, ids[i], ws, &out.communities[i], &out.stats[i]);
    out.seconds[i] = exec.Seconds();
    out.sojourn_seconds[i] = wall.Seconds();
    ws.SetDeadline(Deadline{});
  });
  const double wall_seconds = wall.Seconds();

  out.latency = SummarizeLatency(out.seconds, wall_seconds);
  out.workspace_stats = runner_->AggregateWorkspaceStats();
  for (const SearchStats& s : out.stats) out.timed_out += s.timed_out ? 1 : 0;

  std::vector<double> lane_sojourn;
  for (Lane lane : {Lane::kInteractive, Lane::kBulk}) {
    lane_sojourn.clear();
    for (std::size_t i = 0; i < count; ++i) {
      if (lanes[i] == lane) lane_sojourn.push_back(out.sojourn_seconds[i]);
    }
    if (lane_sojourn.empty()) continue;
    LaneSummary summary;
    summary.lane = lane;
    summary.queries = lane_sojourn.size();
    summary.latency = SummarizeLatency(lane_sojourn, wall_seconds);
    out.lanes.push_back(summary);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Compatibility shims: the historical per-method batch entry points, now
// thin request builders over the unified engine (declared in batch_runner.h).
// ---------------------------------------------------------------------------

BatchResult BatchRunner::RunBccBatch(const LabeledGraph& g, std::span<const BccQuery> queries,
                                     const BccParams& params, const SearchOptions& opts) {
  ServeOptions so;
  so.online = opts;
  so.lp = opts;
  const QueryMethod method =
      opts.use_leader_pair ? QueryMethod::kLpBcc : QueryMethod::kOnlineBcc;
  ServeEngine engine(*this, g, nullptr, so);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = method;
    requests[i].params = params;
  }
  return engine.Serve(requests);
}

BatchResult BatchRunner::RunL2pBatch(const LabeledGraph& g, const BcIndex& index,
                                     std::span<const BccQuery> queries,
                                     const BccParams& params, const L2pOptions& opts) {
  ServeOptions so;
  so.l2p = opts;
  ServeEngine engine(*this, g, &index, so);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kL2pBcc;
    requests[i].params = params;
  }
  return engine.Serve(requests);
}

BatchResult BatchRunner::RunMbccBatch(const LabeledGraph& g,
                                      std::span<const MbccQuery> queries,
                                      const MbccParams& params, const SearchOptions& opts) {
  ServeOptions so;
  so.mbcc = opts;
  ServeEngine engine(*this, g, nullptr, so);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kMbcc;
    requests[i].mbcc_params = params;
  }
  return engine.Serve(requests);
}

}  // namespace bccs
