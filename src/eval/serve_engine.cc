#include "eval/serve_engine.h"

#include <utility>
#include <vector>

#include "eval/timer.h"
#include "graph/graph_delta.h"

namespace bccs {

const char* Name(QueryMethod m) {
  switch (m) {
    case QueryMethod::kOnlineBcc: return "online";
    case QueryMethod::kLpBcc: return "lp";
    case QueryMethod::kL2pBcc: return "l2p";
    case QueryMethod::kMbcc: return "mbcc";
  }
  return "?";
}

namespace {

/// Wraps a caller-owned object in a non-owning shared_ptr (the legacy
/// constructor's lifetime contract: the caller keeps it alive).
template <typename T>
std::shared_ptr<const T> Unowned(const T* p) {
  return std::shared_ptr<const T>(p, [](const T*) {});
}

// Per-query approx seed derivation: deterministic in the request id, so a
// sampled query's whole schedule is independent of which worker claims it.
SearchOptions SeededOptions(const SearchOptions& base, std::uint64_t request_id) {
  SearchOptions o = base;
  if (o.approx.enabled) o.approx.seed ^= request_id;
  return o;
}

}  // namespace

ServeEngine::ServeEngine(BatchRunner& runner, const LabeledGraph& g, const BcIndex* index,
                         ServeOptions opts)
    : runner_(&runner),
      g_(Unowned(&g)),
      index_(index != nullptr ? Unowned(index) : nullptr),
      opts_(std::move(opts)) {}

ServeEngine::ServeEngine(BatchRunner& runner, std::shared_ptr<const LabeledGraph> g,
                         std::shared_ptr<const BcIndex> index, ServeOptions opts)
    : runner_(&runner), g_(std::move(g)), index_(std::move(index)), opts_(std::move(opts)) {}

void ServeEngine::Dispatch(const QueryRequest& req, std::uint64_t request_id,
                           QueryWorkspace& ws, Community* community,
                           SearchStats* stats) const {
  if (req.method == QueryMethod::kMbcc) {
    const auto* q = std::get_if<MbccQuery>(&req.query);
    if (q == nullptr) return;  // variant/method mismatch: empty answer
    *community = MbccSearch(*g_, *q, req.mbcc_params, SeededOptions(opts_.mbcc, request_id),
                            stats, nullptr, &ws);
    return;
  }
  const auto* q = std::get_if<BccQuery>(&req.query);
  if (q == nullptr) return;
  switch (req.method) {
    case QueryMethod::kOnlineBcc:
      *community = BccSearch(*g_, *q, req.params, SeededOptions(opts_.online, request_id),
                             stats, &ws);
      break;
    case QueryMethod::kLpBcc:
      *community =
          BccSearch(*g_, *q, req.params, SeededOptions(opts_.lp, request_id), stats, &ws);
      break;
    case QueryMethod::kL2pBcc:
      if (index_ != nullptr) {
        L2pOptions o = opts_.l2p;
        o.search = SeededOptions(o.search, request_id);
        *community = L2pBcc(*g_, *index_, *q, req.params, o, stats, &ws);
      } else {
        // Planned degradation: no index in this process, serve via LP.
        *community =
            BccSearch(*g_, *q, req.params, SeededOptions(opts_.lp, request_id), stats, &ws);
      }
      break;
    case QueryMethod::kMbcc:
      break;  // handled above
  }
}

void ServeEngine::ApplyUpdateRequest(const UpdateRequest& req, UpdateOutcome* outcome) {
  std::string error;
  const auto delta = BuildGraphDelta(*g_, req.updates, &error);
  if (!delta) {
    outcome->error = error;  // epoch unchanged; later queries see the old graph
    return;
  }
  auto updated = std::make_shared<const LabeledGraph>(ApplyGraphDelta(*g_, *delta));
  outcome->inserts = delta->inserts.size();
  outcome->deletes = delta->deletes.size();
  if (index_ != nullptr) {
    // Repair against the old graph/index (both still alive), then swap.
    std::shared_ptr<const BcIndex> repaired =
        index_->ApplyUpdates(*updated, *delta, req.repair, &outcome->repair);
    index_ = std::move(repaired);
  }
  g_ = std::move(updated);
  ++epoch_;
  outcome->applied = true;
}

BatchResult ServeEngine::Serve(std::span<const ServeItem> items) {
  BatchResult out;
  const std::size_t count = items.size();
  out.communities.resize(count);
  out.stats.assign(count, SearchStats{});
  out.seconds.assign(count, 0);
  out.sojourn_seconds.assign(count, 0);
  out.epoch_of.assign(count, 0);
  out.threads_used = runner_->NumThreads();
  if (count == 0) return out;

  const std::uint64_t base = next_request_id_.fetch_add(count);
  Timer wall;

  // Query lanes, tracked per item for the per-lane summaries below (update
  // slots stay kInvalid).
  constexpr int kNoLane = -1;
  std::vector<int> item_lane(count, kNoLane);

  // One scheduling segment: the maximal run of queries since the last
  // update. Updates apply single-threaded between segments, so a query
  // never observes a half-applied batch and the epoch it runs against is
  // the one current when it was admitted to its segment.
  std::vector<std::uint32_t> segment;
  std::vector<Lane> lanes;
  auto flush_segment = [&] {
    if (segment.empty()) return;
    lanes.clear();
    for (std::uint32_t item : segment) {
      lanes.push_back(std::get<QueryRequest>(items[item]).lane);
    }
    const std::vector<std::uint32_t> order = BuildLaneOrder(lanes, opts_.aging_period);
    runner_->RunOrdered(order, [&](std::size_t i, QueryWorkspace& ws) {
      const std::uint32_t item = segment[i];
      const QueryRequest& req = std::get<QueryRequest>(items[item]);
      const std::uint64_t id = req.request_id != 0 ? req.request_id : base + item;
      if (req.deadline_seconds > 0) ws.SetDeadline(Deadline::After(req.deadline_seconds));
      Timer exec;
      Dispatch(req, id, ws, &out.communities[item], &out.stats[item]);
      out.seconds[item] = exec.Seconds();
      out.sojourn_seconds[item] = wall.Seconds();
      ws.SetDeadline(Deadline{});
    });
    segment.clear();
  };

  for (std::size_t i = 0; i < count; ++i) {
    if (const auto* q = std::get_if<QueryRequest>(&items[i])) {
      out.epoch_of[i] = epoch_;
      item_lane[i] = static_cast<int>(q->lane);
      segment.push_back(static_cast<std::uint32_t>(i));
      continue;
    }
    flush_segment();  // barrier: the update applies at a batch boundary
    UpdateOutcome outcome;
    outcome.item_index = i;
    Timer apply;
    ApplyUpdateRequest(std::get<UpdateRequest>(items[i]), &outcome);
    outcome.seconds = apply.Seconds();
    outcome.epoch = epoch_;
    out.epoch_of[i] = epoch_;
    out.seconds[i] = outcome.seconds;
    out.sojourn_seconds[i] = wall.Seconds();
    out.updates.push_back(std::move(outcome));
  }
  flush_segment();
  const double wall_seconds = wall.Seconds();

  // The latency/qps summary describes query serving only — update slots
  // (whose out.seconds holds the apply duration) would otherwise smear a
  // slow repair into the query percentiles the lane summaries exclude.
  std::vector<double> query_seconds;
  query_seconds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (item_lane[i] != kNoLane) query_seconds.push_back(out.seconds[i]);
  }
  out.latency = SummarizeLatency(query_seconds, wall_seconds);
  out.workspace_stats = runner_->AggregateWorkspaceStats();
  for (const SearchStats& s : out.stats) out.timed_out += s.timed_out ? 1 : 0;

  std::vector<double> lane_sojourn;
  for (Lane lane : {Lane::kInteractive, Lane::kBulk}) {
    lane_sojourn.clear();
    for (std::size_t i = 0; i < count; ++i) {
      if (item_lane[i] == static_cast<int>(lane)) {
        lane_sojourn.push_back(out.sojourn_seconds[i]);
      }
    }
    if (lane_sojourn.empty()) continue;
    LaneSummary summary;
    summary.lane = lane;
    summary.queries = lane_sojourn.size();
    summary.latency = SummarizeLatency(lane_sojourn, wall_seconds);
    out.lanes.push_back(summary);
  }
  return out;
}

BatchResult ServeEngine::Serve(std::span<const QueryRequest> requests) {
  std::vector<ServeItem> items(requests.begin(), requests.end());
  return Serve(std::span<const ServeItem>(items));
}

// ---------------------------------------------------------------------------
// Compatibility shims: the historical per-method batch entry points, now
// thin request builders over the unified engine (declared in batch_runner.h).
// ---------------------------------------------------------------------------

BatchResult BatchRunner::RunBccBatch(const LabeledGraph& g, std::span<const BccQuery> queries,
                                     const BccParams& params, const SearchOptions& opts) {
  ServeOptions so;
  so.online = opts;
  so.lp = opts;
  const QueryMethod method =
      opts.use_leader_pair ? QueryMethod::kLpBcc : QueryMethod::kOnlineBcc;
  ServeEngine engine(*this, g, nullptr, so);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = method;
    requests[i].params = params;
  }
  return engine.Serve(requests);
}

BatchResult BatchRunner::RunL2pBatch(const LabeledGraph& g, const BcIndex& index,
                                     std::span<const BccQuery> queries,
                                     const BccParams& params, const L2pOptions& opts) {
  ServeOptions so;
  so.l2p = opts;
  ServeEngine engine(*this, g, &index, so);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kL2pBcc;
    requests[i].params = params;
  }
  return engine.Serve(requests);
}

BatchResult BatchRunner::RunMbccBatch(const LabeledGraph& g,
                                      std::span<const MbccQuery> queries,
                                      const MbccParams& params, const SearchOptions& opts) {
  ServeOptions so;
  so.mbcc = opts;
  ServeEngine engine(*this, g, nullptr, so);
  std::vector<QueryRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
    requests[i].method = QueryMethod::kMbcc;
    requests[i].mbcc_params = params;
  }
  return engine.Serve(requests);
}

}  // namespace bccs
