#ifndef BCCS_EVAL_QUERY_GEN_H_
#define BCCS_EVAL_QUERY_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bcc/bcc_types.h"
#include "bcc/mbcc.h"
#include "graph/generators.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// Query-sampling protocol of the paper's Section 8: query vertices are
/// constrained by degree rank Q_d (a vertex qualifies if its degree exceeds
/// the degree of a `degree_rank` fraction of all vertices; paper default
/// 80%) and by the inter-distance l between the two query vertices (paper
/// default 1 = adjacent).
struct QueryGenConfig {
  double degree_rank = 0.8;
  std::uint32_t inter_distance = 1;
  std::uint64_t seed = 1;
  std::size_t max_attempts = 20000;
};

/// Samples up to `count` query pairs with different labels satisfying the
/// config (fewer if the graph runs out of qualifying pairs).
std::vector<BccQuery> SampleQueries(const LabeledGraph& g, std::size_t count,
                                    const QueryGenConfig& cfg);

/// A query tied to the planted community it was drawn from, for F1 scoring.
struct GroundTruthQuery {
  BccQuery query;
  std::size_t community_index = 0;
};

/// Samples query pairs from planted communities: q_l from one group, q_r
/// from a sibling group, honoring degree rank (within the community) and
/// inter-distance where achievable (falls back to the closest achievable
/// pair inside the community).
std::vector<GroundTruthQuery> SampleGroundTruthQueries(const PlantedGraph& pg,
                                                       std::size_t count,
                                                       const QueryGenConfig& cfg);

/// Multi-label variant: one query vertex from each of the first `m` groups
/// of a planted community.
struct MbccGroundTruthQuery {
  MbccQuery query;
  std::size_t community_index = 0;
};

std::vector<MbccGroundTruthQuery> SampleMbccGroundTruthQueries(const PlantedGraph& pg,
                                                               std::size_t m,
                                                               std::size_t count,
                                                               std::uint64_t seed);

}  // namespace bccs

#endif  // BCCS_EVAL_QUERY_GEN_H_
