#ifndef BCCS_EVAL_TIMER_H_
#define BCCS_EVAL_TIMER_H_

#include <chrono>

namespace bccs {

/// Monotonic wall-clock timer.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the elapsed scope time to `*target` on destruction.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double* target) : target_(target) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { *target_ += timer_.Seconds(); }

 private:
  double* target_;
  Timer timer_;
};

}  // namespace bccs

#endif  // BCCS_EVAL_TIMER_H_
