#include "eval/stats.h"

#include <algorithm>
#include <vector>

#include "bcc/query_distance.h"
#include "core/core_decomposition.h"

namespace bccs {

GraphStats ComputeGraphStats(const LabeledGraph& g) {
  GraphStats s;
  s.num_vertices = g.NumVertices();
  s.num_edges = g.NumEdges();
  s.num_labels = g.NumLabels();
  s.d_max = g.MaxDegree();
  for (const Edge& e : g.AllEdges()) {
    if (g.IsCrossEdge(e.u, e.v)) ++s.num_cross_edges;
  }
  if (g.NumVertices() == 0) return s;

  std::vector<std::uint32_t> core = CoreDecomposition(g);
  s.k_max = *std::max_element(core.begin(), core.end());

  // Double-sweep diameter lower bound from the maximum-degree vertex.
  VertexId start = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > g.Degree(start)) start = v;
  }
  std::vector<char> alive(g.NumVertices(), 1);
  std::vector<std::uint32_t> dist;
  BfsDistances(g, alive, start, &dist);
  VertexId far = start;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (dist[v] != kInfDistance && (dist[far] == kInfDistance || dist[v] > dist[far])) far = v;
  }
  BfsDistances(g, alive, far, &dist);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (dist[v] != kInfDistance) s.diameter_lb = std::max(s.diameter_lb, dist[v]);
  }
  return s;
}

}  // namespace bccs
