#include "eval/admission_queue.h"

#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace bccs {

namespace {

// Admission after Close would enqueue a ticket no worker will ever drain —
// the caller would get a valid-looking index for an item that silently
// never executes — so the contract violation fails loudly in every build.
void AbortClosedAdmission(const char* what) {
  std::fprintf(stderr, "AdmissionQueue: %s after Close\n", what);
  std::abort();
}

}  // namespace

AdmissionQueue::AdmissionQueue(std::size_t aging_period, AdmissionCaps caps)
    : aging_period_(aging_period), caps_(caps) {}

std::size_t AdmissionQueue::AdmitQuery(Lane lane) {
  std::size_t index;
  {
    MutexLock lock(mutex_);
    if (closed_) AbortClosedAdmission("AdmitQuery");
    index = admitted_++;
    PendingQuery pq{index, updates_admitted_};
    (lane == Lane::kInteractive ? interactive_ : bulk_).push_back(pq);
  }
  cv_.NotifyOne();
  return index;
}

std::size_t AdmissionQueue::AdmitUpdate() {
  std::size_t index;
  {
    MutexLock lock(mutex_);
    if (closed_) AbortClosedAdmission("AdmitUpdate");
    index = admitted_++;
    updates_.push_back(index);
    ++updates_admitted_;
  }
  cv_.NotifyOne();
  return index;
}

void AdmissionQueue::Close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

bool AdmissionQueue::LaneRunnable(const std::deque<PendingQuery>& q, std::size_t inflight,
                                  std::size_t cap) const {
  // Admission order makes epoch_slot monotone within a lane, so a blocked
  // front implies a blocked tail: checking the front suffices.
  return !q.empty() && q.front().epoch_slot <= resolved_updates_ &&
         (cap == 0 || inflight < cap);
}

bool AdmissionQueue::Pop(Ticket* out) {
  MutexLock lock(mutex_);
  for (;;) {
    // Updates first: they gate the epoch progress of everything behind
    // them, and epoch transitions are ordered, so the oldest update is
    // handed out as soon as the previous one has been published.
    if (!updates_.empty() && claimed_updates_ == resolved_updates_) {
      out->kind = Ticket::Kind::kUpdate;
      out->index = updates_.front();
      out->update_ordinal = claimed_updates_;
      updates_.pop_front();
      ++claimed_updates_;
      return true;
    }

    const bool i_ok =
        LaneRunnable(interactive_, inflight_[0], caps_.interactive);
    const bool b_ok = LaneRunnable(bulk_, inflight_[1], caps_.bulk);
    const bool age_out = aging_period_ > 0 && since_bulk_ >= aging_period_;
    if (i_ok || b_ok) {
      const bool take_bulk = b_ok && (!i_ok || age_out);
      std::deque<PendingQuery>& q = take_bulk ? bulk_ : interactive_;
      const Lane lane = take_bulk ? Lane::kBulk : Lane::kInteractive;
      out->kind = Ticket::Kind::kQuery;
      out->index = q.front().index;
      out->epoch_slot = q.front().epoch_slot;
      out->lane = lane;
      q.pop_front();
      const auto li = static_cast<std::size_t>(lane);
      ++inflight_[li];
      if (inflight_[li] > max_inflight_[li]) max_inflight_[li] = inflight_[li];
      since_bulk_ = take_bulk ? 0 : since_bulk_ + 1;
      return true;
    }

    // Nothing runnable. Exit only when no ticket remains unclaimed: a query
    // gated on an in-flight update stays queued, so the non-empty deques
    // keep every waiting worker here until PublishUpdate unblocks it.
    if (closed_ && interactive_.empty() && bulk_.empty() && updates_.empty()) {
      return false;
    }
    cv_.Wait(mutex_);
  }
}

void AdmissionQueue::CompleteQuery(Lane lane) {
  {
    MutexLock lock(mutex_);
    const auto li = static_cast<std::size_t>(lane);
    BCCS_CHECK_GT(inflight_[li], 0u) << "CompleteQuery without a matching Pop";
    --inflight_[li];
  }
  cv_.NotifyAll();
}

void AdmissionQueue::PublishUpdate() {
  {
    MutexLock lock(mutex_);
    BCCS_CHECK_LT(resolved_updates_, claimed_updates_)
        << "PublishUpdate without an in-flight update";
    ++resolved_updates_;
  }
  cv_.NotifyAll();
}

std::size_t AdmissionQueue::admitted() const {
  MutexLock lock(mutex_);
  return admitted_;
}

std::size_t AdmissionQueue::updates_admitted() const {
  MutexLock lock(mutex_);
  return updates_admitted_;
}

std::size_t AdmissionQueue::resolved_updates() const {
  MutexLock lock(mutex_);
  return resolved_updates_;
}

std::size_t AdmissionQueue::max_inflight(Lane lane) const {
  MutexLock lock(mutex_);
  return max_inflight_[static_cast<std::size_t>(lane)];
}

bool AdmissionQueue::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

}  // namespace bccs
