#ifndef BCCS_EVAL_DATASETS_H_
#define BCCS_EVAL_DATASETS_H_

#include <string>
#include <vector>

#include "bcc/bcc_types.h"
#include "graph/generators.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// A named, seeded stand-in for one of the paper's evaluation networks
/// (Table 3). Generation is deterministic given the spec.
struct DatasetSpec {
  std::string name;
  PlantedConfig config;
};

/// The seven two-label benchmark networks standing in for Baidu-1, Baidu-2,
/// Amazon, DBLP, Youtube, LiveJournal and Orkut (laptop scale; DESIGN.md
/// Section 3 documents the substitution).
const std::vector<DatasetSpec>& StandInSpecs();

/// Multi-label (6 groups per community) variants standing in for Baidu-1/2
/// with multi-team ground truth and for DBLP-M / LiveJournal-M / Orkut-M
/// (paper Exp-9 and Exp-10).
const std::vector<DatasetSpec>& MultiLabelSpecs();

/// Finds a spec by name across both lists; null when absent.
const DatasetSpec* FindSpec(const std::string& name);

/// Generates the dataset for a spec.
PlantedGraph MakeDataset(const DatasetSpec& spec);

/// A case-study network with human-readable vertex and label names plus the
/// paper's query setting (Exp-6..8 and Exp-11).
struct CaseStudy {
  std::string name;
  LabeledGraph graph;
  std::vector<std::string> vertex_names;
  std::vector<std::string> label_names;
  /// Suggested query vertices (2 for the BCC cases, 3 for the mBCC case).
  std::vector<VertexId> queries;
  /// Butterfly threshold used by the paper for the case (b = 3; k auto).
  BccParams params;
};

/// Synthetic analogue of the OpenFlights global flight network (Exp-6):
/// country labels, domestic hub cliques + spokes, international hub edges.
CaseStudy MakeFlightCase();

/// Synthetic analogue of the WITS international trade network (Exp-7):
/// continent labels, worldwide major-trader core, continental peripheries.
CaseStudy MakeTradeCase();

/// Hand-built two-camp fiction network in the shape of the Harry Potter
/// character graph (Exp-8): justice/evil labels, family and clique
/// structure, hostility cross edges.
CaseStudy MakePotterCase();

/// Synthetic analogue of the DBLP interdisciplinary collaboration network
/// (Exp-11): 7 research-field labels, 3-field planted communities; the three
/// suggested queries allow both the 2-label and the 3-label experiment.
CaseStudy MakeDblpCase();

}  // namespace bccs

#endif  // BCCS_EVAL_DATASETS_H_
