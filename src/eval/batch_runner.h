#ifndef BCCS_EVAL_BATCH_RUNNER_H_
#define BCCS_EVAL_BATCH_RUNNER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "bcc/bcc_types.h"
#include "butterfly/block_cache.h"
#include "common/mutex.h"
#include "eval/result_cache.h"
#include "common/thread_annotations.h"
#include "bcc/local_search.h"
#include "bcc/mbcc.h"
#include "bcc/online_search.h"
#include "bcc/workspace.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// Scheduling lane of a serving request. Interactive queries are claimed
/// ahead of bulk ones (with anti-starvation aging, see BuildLaneOrder).
enum class Lane : std::uint8_t { kInteractive = 0, kBulk = 1 };

inline const char* Name(Lane lane) {
  return lane == Lane::kInteractive ? "interactive" : "bulk";
}

/// Latency/throughput summary of one batch execution.
struct BatchLatency {
  double wall_seconds = 0;
  double qps = 0;
  double avg_seconds = 0;
  double p50_seconds = 0;
  double p90_seconds = 0;
  double p95_seconds = 0;
  double p99_seconds = 0;
};

/// Per-lane slice of a served batch: percentiles over *sojourn* time
/// (submission of the batch to completion of the query, so queueing delay
/// counts — the number an interactive caller actually experiences).
struct LaneSummary {
  Lane lane = Lane::kBulk;
  std::size_t queries = 0;
  BatchLatency latency;
  /// High-water mark of concurrently executing queries of this lane
  /// (streaming serve loop only; bounded by ServeOptions::caps).
  std::size_t max_inflight = 0;
};

/// Outcome of one UpdateRequest served by ServeEngine (see
/// eval/serve_engine.h): whether the edge-update batch applied, what the
/// incremental index repair did, and the epoch it produced.
struct UpdateOutcome {
  std::size_t item_index = 0;  // position in the served item stream
  bool applied = false;
  std::string error;       // validation failure reason when !applied
  std::uint64_t epoch = 0;  // engine epoch after this item
  std::size_t inserts = 0;  // net edge toggles applied
  std::size_t deletes = 0;
  UpdateRepairStats repair;  // bc_index.h: incremental vs scoped-rebuild work
  double seconds = 0;        // validation + graph rebuild + index repair
};

/// Result of a batch: per-item outputs in input order plus the summary.
/// In a mixed query/update stream, `latency` (and the per-lane summaries)
/// cover query items only; update slots report through `updates`, with
/// their apply duration also mirrored into their `seconds` slot.
struct BatchResult {
  std::vector<Community> communities;
  std::vector<SearchStats> stats;
  std::vector<double> seconds;  // per-query execution latency
  BatchLatency latency;
  std::size_t threads_used = 0;
  WorkspaceStats workspace_stats;  // aggregated over worker workspaces

  // Filled by ServeEngine::Serve only (empty for the raw Run* paths):
  std::vector<double> sojourn_seconds;  // batch submission -> query completion
  std::vector<LaneSummary> lanes;       // per-lane percentiles over sojourn
  std::size_t timed_out = 0;            // queries whose deadline expired

  // Filled by the mixed-stream ServeEngine::Serve only:
  std::vector<UpdateOutcome> updates;    // per UpdateRequest, in stream order
  std::vector<std::uint64_t> epoch_of;   // epoch each item executed in

  // Caching-tier counters at stream finish (ServeEngine streams only).
  // The result-cache counters are engine-cumulative (the cache outlives
  // individual streams); pair_cache reports the newest published index's
  // block cache, all-zero when serving without an index.
  bool result_cache_enabled = false;
  ResultCacheStats result_cache;
  BlockCacheStats pair_cache;
};

/// Thread-pool batch-query engine. Each worker owns a persistent
/// QueryWorkspace, so per-worker steady state performs no O(n) allocations;
/// queries of a batch are claimed dynamically over an atomic cursor.
///
/// The pool threads persist across Run() calls (construction cost is paid
/// once per runner, matching a long-lived serving process).
class BatchRunner {
 public:
  /// num_threads == 0 picks std::thread::hardware_concurrency().
  explicit BatchRunner(std::size_t num_threads = 0);
  ~BatchRunner();
  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  std::size_t NumThreads() const { return threads_.size(); }

  /// Generic fan-out: invokes fn(index, workspace) for every index in
  /// [0, count), distributing indices over the pool. fn must only touch
  /// shared state in a thread-safe way; the workspace is exclusive to the
  /// calling worker. Blocks until the batch drains. A non-null
  /// `stats_after` receives AggregateWorkspaceStats() captured *before*
  /// the pool is released to the next job — the only race-free point when
  /// the runner is shared between engines (a post-Run aggregation could
  /// interleave with the next job's workspace writes).
  void Run(std::size_t count, const std::function<void(std::size_t, QueryWorkspace&)>& fn,
           WorkspaceStats* stats_after = nullptr);

  /// Scheduled fan-out: workers claim the *slots* of `order` FIFO and invoke
  /// fn(order[slot], workspace) — the claim loop stays a single atomic
  /// cursor with the policy compiled into the order array. This was the
  /// serving engine's scheduler through PR 4; serving now dequeues
  /// dynamically from an AdmissionQueue (eval/admission_queue.h), so this
  /// entry point remains for callers that want a precomputed order (e.g. a
  /// BuildLaneOrder oracle in tests). `order` must stay alive until the
  /// call returns and hold each index at most once.
  void RunOrdered(std::span<const std::uint32_t> order,
                  const std::function<void(std::size_t, QueryWorkspace&)>& fn);

  /// Aggregated workspace stats over all workers (for allocation tests).
  WorkspaceStats AggregateWorkspaceStats() const;

  /// Per-query callable of the timed batch wrappers.
  using RunTimedFn = std::function<void(std::size_t, QueryWorkspace&, Community*, SearchStats*)>;

  /// Timed fan-out of an arbitrary per-query function (used for methods not
  /// covered by the convenience wrappers, e.g. the CTC/PSA baselines).
  BatchResult RunCustomBatch(std::size_t count, const RunTimedFn& fn);

  // Compatibility shims over the unified serving engine. Each builds one
  // QueryRequest per query (bulk lane, no deadline) and routes it through
  // ServeEngine — the single dispatch path for all four methods. Defined in
  // serve_engine.cc; prefer ServeEngine directly for new code (lanes,
  // deadlines, approx, mixed-method batches).

  /// Batch Online-BCC / LP-BCC (per `opts`) over one graph.
  BatchResult RunBccBatch(const LabeledGraph& g, std::span<const BccQuery> queries,
                          const BccParams& params, const SearchOptions& opts);

  /// Batch L2P-BCC. The index's lazy pair cache is internally synchronized.
  BatchResult RunL2pBatch(const LabeledGraph& g, const BcIndex& index,
                          std::span<const BccQuery> queries, const BccParams& params,
                          const L2pOptions& opts);

  /// Batch multi-label search.
  BatchResult RunMbccBatch(const LabeledGraph& g, std::span<const MbccQuery> queries,
                           const MbccParams& params, const SearchOptions& opts);

 private:
  void WorkerLoop(std::size_t tid);
  /// One job at a time: aborts (with a message) on a concurrent Run — the
  /// shared job state cannot hold two batches, and the failure mode would
  /// otherwise be silent corruption or a deadlock.
  void AcquireBusy();

  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<QueryWorkspace>> workspaces_;
  std::atomic<bool> busy_{false};

  Mutex mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(std::size_t, QueryWorkspace&)>* job_ GUARDED_BY(mutex_) = nullptr;
  // Slot -> index map; null = identity.
  const std::uint32_t* order_ GUARDED_BY(mutex_) = nullptr;
  std::size_t job_count_ GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  // (generation & 0xffffffff) << 32 | next_index; see WorkerLoop. Atomics
  // are deliberately outside the mutex capability: the claim loop reads
  // them lock-free.
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::size_t> pending_{0};
  bool stop_ GUARDED_BY(mutex_) = false;
};

/// Computes the latency summary from per-query seconds (sorted copy inside).
/// When the wall clock reads zero (sub-tick batches), qps falls back to the
/// sum of per-query seconds instead of silently reporting 0.
BatchLatency SummarizeLatency(std::span<const double> seconds, double wall_seconds);

/// Compiles the two-lane policy into a claim order over [0, lanes.size()):
/// interactive indices first (arrival order preserved within a lane), bulk
/// after — except that every (aging_period + 1)-th claim slot is given to
/// the oldest waiting bulk query, so a saturated interactive lane cannot
/// starve bulk indefinitely. aging_period == 0 disables aging (bulk runs
/// strictly after interactive).
std::vector<std::uint32_t> BuildLaneOrder(std::span<const Lane> lanes,
                                          std::size_t aging_period);

}  // namespace bccs

#endif  // BCCS_EVAL_BATCH_RUNNER_H_
