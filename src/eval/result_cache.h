#ifndef BCCS_EVAL_RESULT_CACHE_H_
#define BCCS_EVAL_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bcc/bcc_types.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// Canonical identity of a cacheable query. Built by ServeEngine from a
/// QueryRequest: `method` is the QueryMethod, `vertices` the query vertices
/// ({ql, qr} for the two-label methods, the full query set for mBCC), `ks`
/// the per-group coreness thresholds ({k1, k2} or MbccParams::k), `b` the
/// butterfly threshold. Lane, deadline, and request id are deliberately
/// excluded — they do not affect the answer (deadline-bearing queries are
/// not cached at all, see ServeOptions::result_cache_entries).
struct ResultCacheKey {
  std::uint8_t method = 0;
  std::vector<VertexId> vertices;
  std::vector<std::uint32_t> ks;
  std::uint64_t b = 1;

  bool operator==(const ResultCacheKey&) const = default;

  std::size_t Hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t x) {
      h ^= x;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    };
    mix(method);
    mix(b);
    mix(vertices.size());
    for (VertexId v : vertices) mix(v);
    for (std::uint32_t k : ks) mix(k);
    return static_cast<std::size_t>(h);
  }
};

/// Counters exported by ResultCache::Stats(). Lane-indexed arrays follow
/// the Lane enum of eval/batch_runner.h (0 = interactive, 1 = bulk).
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t lane_hits[2] = {0, 0};
  std::uint64_t lane_misses[2] = {0, 0};
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t stale_drops = 0;       // entries dropped on lookup: repaired past
  std::uint64_t rejected_inserts = 0;  // lost the race with a newer repair
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

/// Sharded, thread-safe LRU cache of query results, keyed by canonical
/// query identity and validated against an epoch window.
///
/// Correctness rests on one structural fact of the BCC model: an answer
/// depends only on the induced subgraph of the query's label groups. Every
/// entry therefore records the labels it touched, and every published
/// update reports which labels it repaired (intra-label edges) and which
/// label pairs (cross-label edges) via NoteRepairs. A stored answer
/// computed at epoch E is served to a query pinned at epoch Q iff
///
///   E <= Q  and  no repair relevant to the entry's labels happened after E
///
/// where "relevant" means an intra-label repair of any entry label, or a
/// cross-label repair of a pair of entry labels. Entries for untouched
/// labels carry forward across epochs, so the steady-state hit rate
/// survives an update stream; a hit is bit-identical to re-executing the
/// query at epoch Q (DESIGN.md serving contract 6).
///
/// Inserts are guarded by the same window: an answer computed at epoch E is
/// dropped if a relevant repair with epoch > E has already been noted —
/// this closes the race where a slow query finishes after a concurrent
/// update published. A lost race only costs a future miss, never a stale
/// hit.
class ResultCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards
  /// (minimum one entry per shard). Must be > 0 — a disabled cache is a
  /// null ResultCache pointer, not a zero-capacity one.
  explicit ResultCache(std::size_t capacity);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Serves a stored answer valid at `query_epoch`, or returns false.
  /// `lane` indexes the per-lane hit/miss counters (0/1). Stale entries
  /// found along the way are dropped.
  bool Lookup(const ResultCacheKey& key, std::uint64_t query_epoch, std::size_t lane,
              Community* community, SearchStats* stats);

  /// Stores an answer computed at `compute_epoch` over `labels` (the
  /// query's label groups). May evict the shard's least-recent entry.
  void Insert(const ResultCacheKey& key, std::span<const Label> labels,
              std::uint64_t compute_epoch, const Community& community,
              const SearchStats& stats);

  /// Records that the update published as `epoch` repaired the given labels
  /// (intra-label edge updates) and label pairs (cross-label, first < second).
  /// ServeEngine calls this after the epoch swap and before the admission
  /// queue releases queries of the new epoch, so any query that could
  /// observe the new graph also observes the invalidation.
  void NoteRepairs(std::span<const Label> intra_labels,
                   std::span<const std::pair<Label, Label>> cross_pairs, std::uint64_t epoch);

  ResultCacheStats Stats() const;

 private:
  static constexpr std::size_t kShards = 8;

  struct Entry {
    Community community;
    SearchStats stats;
    std::uint64_t compute_epoch = 0;
    std::vector<Label> labels;  // sorted, deduped
    std::list<ResultCacheKey>::iterator lru_it;
  };
  struct KeyHash {
    std::size_t operator()(const ResultCacheKey& k) const { return k.Hash(); }
  };
  struct Shard {
    mutable Mutex mu;  // Stats() reads shard sizes from a const cache
    std::unordered_map<ResultCacheKey, Entry, KeyHash> map GUARDED_BY(mu);
    std::list<ResultCacheKey> lru GUARDED_BY(mu);  // front = least recently used
  };

  std::size_t ShardOf(const ResultCacheKey& key) const {
    return (key.Hash() >> 17) % kShards;
  }

  /// Latest repair epoch relevant to an entry over `labels`: intra repairs
  /// of any label, cross repairs of any pair of them. 0 when none noted.
  std::uint64_t RelevantRepairEpochLocked(std::span<const Label> labels) const
      REQUIRES(repair_mu_);

  const std::size_t capacity_;
  const std::size_t shard_capacity_;
  Shard shards_[kShards];

  /// Leaf lock (acquired after a shard lock, never holds another): the
  /// repair high-water marks published by updates.
  mutable Mutex repair_mu_;
  std::unordered_map<Label, std::uint64_t> intra_repair_ GUARDED_BY(repair_mu_);
  std::map<std::pair<Label, Label>, std::uint64_t> cross_repair_ GUARDED_BY(repair_mu_);

  std::atomic<std::uint64_t> lane_hits_[2] = {0, 0};
  std::atomic<std::uint64_t> lane_misses_[2] = {0, 0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> stale_drops_{0};
  std::atomic<std::uint64_t> rejected_inserts_{0};
};

}  // namespace bccs

#endif  // BCCS_EVAL_RESULT_CACHE_H_
