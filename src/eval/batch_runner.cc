#include "eval/batch_runner.h"

#include <algorithm>
#include <cmath>

#include "eval/timer.h"

namespace bccs {

BatchLatency SummarizeLatency(std::span<const double> seconds, double wall_seconds) {
  BatchLatency out;
  out.wall_seconds = wall_seconds;
  if (seconds.empty()) return out;
  out.qps = wall_seconds > 0 ? static_cast<double>(seconds.size()) / wall_seconds : 0;
  std::vector<double> sorted(seconds.begin(), seconds.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (double s : sorted) sum += s;
  out.avg_seconds = sum / static_cast<double>(sorted.size());
  auto pct = [&](double p) {
    // Nearest-rank (rounded up) so p99 of a small batch reports the tail.
    auto idx = static_cast<std::size_t>(std::ceil(p * static_cast<double>(sorted.size() - 1)));
    return sorted[std::min(idx, sorted.size() - 1)];
  };
  out.p50_seconds = pct(0.50);
  out.p90_seconds = pct(0.90);
  out.p99_seconds = pct(0.99);
  return out;
}

BatchRunner::BatchRunner(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workspaces_.reserve(num_threads);
  threads_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workspaces_.push_back(std::make_unique<QueryWorkspace>());
  }
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

BatchRunner::~BatchRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void BatchRunner::WorkerLoop(std::size_t tid) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, QueryWorkspace&)>* job;
    std::size_t count;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
    }
    QueryWorkspace& ws = *workspaces_[tid];
    for (;;) {
      // Generation-checked claim: a straggler from an older batch sees the
      // generation mismatch and backs off without consuming an index of the
      // new batch.
      std::uint64_t cur = cursor_.load(std::memory_order_acquire);
      if ((cur >> 32) != (seen_generation & 0xffffffff)) break;
      std::uint64_t i = cur & 0xffffffff;
      if (i >= count) break;
      if (!cursor_.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel)) continue;
      (*job)(static_cast<std::size_t>(i), ws);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }
}

void BatchRunner::Run(std::size_t count,
                      const std::function<void(std::size_t, QueryWorkspace&)>& fn) {
  if (count == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  job_count_ = count;
  pending_.store(count, std::memory_order_relaxed);
  ++generation_;
  cursor_.store((generation_ & 0xffffffff) << 32, std::memory_order_release);
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return pending_.load(std::memory_order_acquire) == 0; });
  job_ = nullptr;
}

WorkspaceStats BatchRunner::AggregateWorkspaceStats() const {
  WorkspaceStats agg;
  for (const auto& ws : workspaces_) agg += ws->Stats();
  return agg;
}

BatchResult BatchRunner::RunCustomBatch(std::size_t count, const RunTimedFn& query_fn) {
  BatchResult out;
  out.communities.resize(count);
  out.stats.resize(count);
  out.seconds.resize(count, 0);
  out.threads_used = NumThreads();
  Timer wall;
  Run(count, [&](std::size_t i, QueryWorkspace& ws) {
    Timer t;
    query_fn(i, ws, &out.communities[i], &out.stats[i]);
    out.seconds[i] = t.Seconds();
  });
  out.latency = SummarizeLatency(out.seconds, wall.Seconds());
  out.workspace_stats = AggregateWorkspaceStats();
  return out;
}

BatchResult BatchRunner::RunBccBatch(const LabeledGraph& g, std::span<const BccQuery> queries,
                                     const BccParams& params, const SearchOptions& opts) {
  return RunCustomBatch(queries.size(), [&](std::size_t i, QueryWorkspace& ws, Community* c,
                                      SearchStats* stats) {
    *c = BccSearch(g, queries[i], params, opts, stats, &ws);
  });
}

BatchResult BatchRunner::RunL2pBatch(const LabeledGraph& g, const BcIndex& index,
                                     std::span<const BccQuery> queries,
                                     const BccParams& params, const L2pOptions& opts) {
  return RunCustomBatch(queries.size(), [&](std::size_t i, QueryWorkspace& ws, Community* c,
                                      SearchStats* stats) {
    *c = L2pBcc(g, index, queries[i], params, opts, stats, &ws);
  });
}

BatchResult BatchRunner::RunMbccBatch(const LabeledGraph& g,
                                      std::span<const MbccQuery> queries,
                                      const MbccParams& params, const SearchOptions& opts) {
  return RunCustomBatch(queries.size(), [&](std::size_t i, QueryWorkspace& ws, Community* c,
                                      SearchStats* stats) {
    *c = MbccSearch(g, queries[i], params, opts, stats, nullptr, &ws);
  });
}

}  // namespace bccs
