#include "eval/batch_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "eval/timer.h"

namespace bccs {

BatchLatency SummarizeLatency(std::span<const double> seconds, double wall_seconds) {
  BatchLatency out;
  out.wall_seconds = wall_seconds;
  if (seconds.empty()) return out;
  std::vector<double> sorted(seconds.begin(), seconds.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (double s : sorted) sum += s;
  // A sub-microsecond batch can read a zero wall clock; fall back to the
  // summed per-query seconds instead of silently reporting qps = 0.
  const double denom = wall_seconds > 0 ? wall_seconds : sum;
  out.qps = denom > 0 ? static_cast<double>(sorted.size()) / denom : 0;
  out.avg_seconds = sum / static_cast<double>(sorted.size());
  auto pct = [&](double p) {
    // Nearest-rank (rounded up) so p99 of a small batch reports the tail.
    auto idx = static_cast<std::size_t>(std::ceil(p * static_cast<double>(sorted.size() - 1)));
    return sorted[std::min(idx, sorted.size() - 1)];
  };
  out.p50_seconds = pct(0.50);
  out.p90_seconds = pct(0.90);
  out.p95_seconds = pct(0.95);
  out.p99_seconds = pct(0.99);
  return out;
}

BatchRunner::BatchRunner(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workspaces_.reserve(num_threads);
  threads_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workspaces_.push_back(std::make_unique<QueryWorkspace>());
  }
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

BatchRunner::~BatchRunner() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void BatchRunner::WorkerLoop(std::size_t tid) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, QueryWorkspace&)>* job;
    const std::uint32_t* order;
    std::size_t count;
    {
      MutexLock lock(mutex_);
      while (!stop_ && generation_ == seen_generation) work_cv_.Wait(mutex_);
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      order = order_;
      count = job_count_;
    }
    QueryWorkspace& ws = *workspaces_[tid];
    for (;;) {
      // Generation-checked claim: a straggler from an older batch sees the
      // generation mismatch and backs off without consuming an index of the
      // new batch. Claims are FIFO over *slots*; the optional order array
      // maps a slot to its query index (the lane scheduler's policy).
      std::uint64_t cur = cursor_.load(std::memory_order_acquire);
      if ((cur >> 32) != (seen_generation & 0xffffffff)) break;
      std::uint64_t i = cur & 0xffffffff;
      if (i >= count) break;
      if (!cursor_.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel)) continue;
      const std::size_t index =
          order != nullptr ? order[i] : static_cast<std::size_t>(i);
      (*job)(index, ws);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(mutex_);
        done_cv_.NotifyAll();
      }
    }
  }
}

void BatchRunner::AcquireBusy() {
  if (busy_.exchange(true, std::memory_order_acquire)) {
    // The pool runs one job at a time: a second Run would clobber
    // job_/generation_/pending_ while workers still drain the first (the
    // waiter releases mutex_ inside done_cv_.wait), silently corrupting
    // both batches — a ServeEngine stream on this runner counts as a
    // running job for its whole lifetime.
    std::fprintf(stderr, "BatchRunner: concurrent Run on one worker pool\n");
    std::abort();
  }
}

void BatchRunner::Run(std::size_t count,
                      const std::function<void(std::size_t, QueryWorkspace&)>& fn,
                      WorkspaceStats* stats_after) {
  if (count == 0) return;
  AcquireBusy();
  MutexLock lock(mutex_);
  job_ = &fn;
  order_ = nullptr;
  job_count_ = count;
  pending_.store(count, std::memory_order_relaxed);
  ++generation_;
  cursor_.store((generation_ & 0xffffffff) << 32, std::memory_order_release);
  work_cv_.NotifyAll();
  while (pending_.load(std::memory_order_acquire) != 0) done_cv_.Wait(mutex_);
  job_ = nullptr;
  // Workers are parked and the pool is still ours: the one point where the
  // workspace stats are safe to read on a shared runner.
  if (stats_after != nullptr) *stats_after = AggregateWorkspaceStats();
  busy_.store(false, std::memory_order_release);
}

void BatchRunner::RunOrdered(std::span<const std::uint32_t> order,
                             const std::function<void(std::size_t, QueryWorkspace&)>& fn) {
  if (order.empty()) return;
  AcquireBusy();
  MutexLock lock(mutex_);
  job_ = &fn;
  order_ = order.data();
  job_count_ = order.size();
  pending_.store(order.size(), std::memory_order_relaxed);
  ++generation_;
  cursor_.store((generation_ & 0xffffffff) << 32, std::memory_order_release);
  work_cv_.NotifyAll();
  while (pending_.load(std::memory_order_acquire) != 0) done_cv_.Wait(mutex_);
  job_ = nullptr;
  order_ = nullptr;
  busy_.store(false, std::memory_order_release);
}

WorkspaceStats BatchRunner::AggregateWorkspaceStats() const {
  WorkspaceStats agg;
  for (const auto& ws : workspaces_) agg += ws->Stats();
  return agg;
}

BatchResult BatchRunner::RunCustomBatch(std::size_t count, const RunTimedFn& query_fn) {
  BatchResult out;
  out.communities.resize(count);
  out.stats.resize(count);
  out.seconds.resize(count, 0);
  out.threads_used = NumThreads();
  Timer wall;
  Run(
      count,
      [&](std::size_t i, QueryWorkspace& ws) {
        Timer t;
        query_fn(i, ws, &out.communities[i], &out.stats[i]);
        out.seconds[i] = t.Seconds();
      },
      &out.workspace_stats);
  out.latency = SummarizeLatency(out.seconds, wall.Seconds());
  return out;
}

// BatchRunner::RunBccBatch / RunL2pBatch / RunMbccBatch are compatibility
// shims over ServeEngine and live in serve_engine.cc.

std::vector<std::uint32_t> BuildLaneOrder(std::span<const Lane> lanes,
                                          std::size_t aging_period) {
  std::vector<std::uint32_t> interactive, bulk;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    (lanes[i] == Lane::kInteractive ? interactive : bulk)
        .push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint32_t> order;
  order.reserve(lanes.size());
  std::size_t ii = 0, bi = 0, since_bulk = 0;
  while (ii < interactive.size() || bi < bulk.size()) {
    const bool bulk_left = bi < bulk.size();
    const bool age_out = aging_period > 0 && since_bulk >= aging_period;
    if (ii < interactive.size() && (!bulk_left || !age_out)) {
      order.push_back(interactive[ii++]);
      ++since_bulk;
    } else {
      order.push_back(bulk[bi++]);
      since_bulk = 0;
    }
  }
  return order;
}

}  // namespace bccs
