#include "eval/datasets.h"

#include <algorithm>
#include <map>

namespace bccs {
namespace {

PlantedConfig TwoLabelConfig(std::size_t communities, std::size_t min_size,
                             std::size_t max_size, double intra, std::size_t labels,
                             std::size_t background, double bg_degree, double noise,
                             std::uint64_t seed) {
  PlantedConfig cfg;
  cfg.num_communities = communities;
  cfg.groups_per_community = 2;
  cfg.min_group_size = min_size;
  cfg.max_group_size = max_size;
  cfg.intra_edge_prob = intra;
  cfg.num_labels = labels;
  cfg.background_vertices = background;
  cfg.background_avg_degree = bg_degree;
  cfg.noise_cross_fraction = noise;
  cfg.noise_same_fraction = 0.04;
  cfg.seed = seed;
  return cfg;
}

PlantedConfig MultiLabelConfig(std::size_t communities, std::size_t labels,
                               std::uint64_t seed, double intra = 0.45) {
  PlantedConfig cfg;
  cfg.num_communities = communities;
  cfg.groups_per_community = 6;
  cfg.min_group_size = 8;
  cfg.max_group_size = 15;
  cfg.intra_edge_prob = intra;
  cfg.cross_pair_prob = 0.12;
  cfg.num_labels = labels;
  cfg.background_vertices = communities * 8;
  cfg.background_avg_degree = 3.0;
  cfg.mixed_group_counts = true;
  // Heavier noise than the two-label sets: the enterprise joint-project
  // ground truth is blurrier, which is what makes the label-blind baselines
  // degrade with m (paper Figure 14).
  cfg.noise_cross_fraction = 0.18;
  cfg.noise_same_fraction = 0.12;
  cfg.seed = seed;
  return cfg;
}

// Youtube-like regime: weak, non-core-shaped ground-truth communities buried
// in heavy noise; the paper observes that every method scores poorly there.
PlantedConfig WeakYoutubeConfig() {
  PlantedConfig cfg = TwoLabelConfig(1200, 8, 16, 0.14, 2, 20000, 2.5, 0.35, 105);
  cfg.strong_backbone = false;
  cfg.noise_same_fraction = 0.15;
  return cfg;
}

}  // namespace

const std::vector<DatasetSpec>& StandInSpecs() {
  static const std::vector<DatasetSpec>& specs = *new std::vector<DatasetSpec>{
      // name                      comms  min max intra labels  bg    bgdeg noise seed
      {"baidu1", TwoLabelConfig(200, 14, 26, 0.40, 40, 2500, 4.0, 0.10, 101)},
      {"baidu2", TwoLabelConfig(250, 16, 30, 0.50, 35, 3000, 5.0, 0.10, 102)},
      {"amazon", TwoLabelConfig(900, 10, 18, 0.32, 2, 6000, 3.0, 0.10, 103)},
      {"dblp", TwoLabelConfig(1000, 12, 22, 0.35, 2, 8000, 3.0, 0.10, 104)},
      {"youtube", WeakYoutubeConfig()},
      {"livejournal", TwoLabelConfig(1300, 14, 26, 0.40, 2, 12000, 3.5, 0.10, 106)},
      {"orkut", TwoLabelConfig(1000, 18, 32, 0.50, 2, 8000, 5.0, 0.10, 107)},
  };
  return specs;
}

const std::vector<DatasetSpec>& MultiLabelSpecs() {
  static const std::vector<DatasetSpec>& specs = *new std::vector<DatasetSpec>{
      {"baidu1-m", MultiLabelConfig(120, 40, 111)},
      {"baidu2-m", MultiLabelConfig(150, 35, 112, 0.55)},
      {"dblp-m", MultiLabelConfig(250, 6, 113)},
      {"livejournal-m", MultiLabelConfig(400, 6, 114)},
      {"orkut-m", MultiLabelConfig(320, 6, 115, 0.55)},
  };
  return specs;
}

const DatasetSpec* FindSpec(const std::string& name) {
  for (const auto& s : StandInSpecs()) {
    if (s.name == name) return &s;
  }
  for (const auto& s : MultiLabelSpecs()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

PlantedGraph MakeDataset(const DatasetSpec& spec) { return GeneratePlanted(spec.config); }

CaseStudy MakeFlightCase() {
  CaseStudy cs;
  cs.name = "flight";
  HubSpokeConfig cfg;
  cfg.num_countries = 24;
  cfg.hubs_per_country = 3;
  cfg.spokes_per_country = 12;
  cfg.alliance_size = 4;
  // Hubs of allied countries are fully interconnected, like the paper's
  // Toronto/Vancouver x Frankfurt/Munich transnational-hub butterflies.
  cfg.intra_alliance_hub_prob = 1.0;
  cfg.seed = 2107;
  cs.graph = GenerateHubSpoke(cfg);

  cs.label_names.resize(cfg.num_countries);
  cs.vertex_names.resize(cs.graph.NumVertices());
  VertexId v = 0;
  for (std::size_t c = 0; c < cfg.num_countries; ++c) {
    cs.label_names[c] = "Country" + std::to_string(c);
    for (std::size_t h = 0; h < cfg.hubs_per_country; ++h) {
      cs.vertex_names[v++] = cs.label_names[c] + "_Hub" + std::to_string(h);
    }
    for (std::size_t s = 0; s < cfg.spokes_per_country; ++s) {
      cs.vertex_names[v++] = cs.label_names[c] + "_City" + std::to_string(s);
    }
  }
  // Query two allied countries' primary hubs ("Toronto" and "Frankfurt").
  const auto stride = static_cast<VertexId>(cfg.hubs_per_country + cfg.spokes_per_country);
  cs.queries = {0, stride};
  cs.params.b = 3;
  return cs;
}

CaseStudy MakeTradeCase() {
  CaseStudy cs;
  cs.name = "trade";
  CorePeripheryConfig cfg;
  cfg.num_continents = 7;
  cfg.majors_per_continent = 3;
  cfg.minors_per_continent = 25;
  // The world major-trader core is complete (every major is a top partner of
  // every other), matching the paper's dense transcontinental block and
  // guaranteeing the b = 3 butterflies between any two continents.
  cfg.major_major_prob = 1.0;
  cfg.seed = 2019;
  cs.graph = GenerateCorePeriphery(cfg);

  cs.label_names = {"NorthAmerica", "Asia",    "Europe",    "SouthAmerica",
                    "Africa",       "Oceania", "MiddleEast"};
  cs.vertex_names.resize(cs.graph.NumVertices());
  VertexId v = 0;
  for (std::size_t c = 0; c < cfg.num_continents; ++c) {
    for (std::size_t i = 0; i < cfg.majors_per_continent; ++i) {
      cs.vertex_names[v++] = cs.label_names[c] + "_Major" + std::to_string(i);
    }
    for (std::size_t i = 0; i < cfg.minors_per_continent; ++i) {
      cs.vertex_names[v++] = cs.label_names[c] + "_Minor" + std::to_string(i);
    }
  }
  // "United States" x "China": first majors of North America and Asia.
  const auto stride = static_cast<VertexId>(cfg.majors_per_continent + cfg.minors_per_continent);
  cs.queries = {0, stride};
  cs.params.b = 3;
  return cs;
}

CaseStudy MakePotterCase() {
  CaseStudy cs;
  cs.name = "potter";
  cs.label_names = {"justice", "evil"};
  const std::vector<std::string> justice = {
      "Harry Potter",   "Ron Weasley",    "Hermione Granger", "Ginny Weasley",
      "Fred Weasley",   "George Weasley", "Bill Weasley",     "Charlie Weasley",
      "Arthur Weasley", "Molly Weasley",  "Albus Dumbledore"};
  const std::vector<std::string> evil = {"Lord Voldemort",     "Draco Malfoy",
                                         "Lucius Malfoy",      "Bellatrix Lestrange",
                                         "Vincent Crabbe",     "Gregory Goyle",
                                         "Vincent Crabbe Sr."};
  std::map<std::string, VertexId> id;
  std::vector<Label> labels;
  for (const auto& name : justice) {
    id[name] = static_cast<VertexId>(cs.vertex_names.size());
    cs.vertex_names.push_back(name);
    labels.push_back(0);
  }
  for (const auto& name : evil) {
    id[name] = static_cast<VertexId>(cs.vertex_names.size());
    cs.vertex_names.push_back(name);
    labels.push_back(1);
  }

  std::vector<Edge> edges;
  auto add = [&](const std::string& a, const std::string& b) {
    edges.push_back({id.at(a), id.at(b)});
  };
  // The Weasley family: both parents connected to every child, children in a
  // sibling cycle. This keeps the justice side a uniform 4-core (so the
  // coreness of the query vertex admits the whole camp, as in the paper's
  // Figure 13a) instead of a dominating family clique.
  const std::vector<std::string> children = {"Bill Weasley", "Charlie Weasley",
                                             "Fred Weasley", "George Weasley",
                                             "Ron Weasley",  "Ginny Weasley"};
  add("Arthur Weasley", "Molly Weasley");
  for (const auto& child : children) {
    add("Arthur Weasley", child);
    add("Molly Weasley", child);
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    add(children[i], children[(i + 1) % children.size()]);
  }
  // The trio and their allies.
  add("Harry Potter", "Ron Weasley");
  add("Harry Potter", "Hermione Granger");
  add("Hermione Granger", "Ron Weasley");
  add("Harry Potter", "Ginny Weasley");
  add("Hermione Granger", "Ginny Weasley");
  add("Harry Potter", "Albus Dumbledore");
  add("Hermione Granger", "Albus Dumbledore");
  add("Ron Weasley", "Albus Dumbledore");
  add("Albus Dumbledore", "Arthur Weasley");
  add("Harry Potter", "Fred Weasley");
  add("Hermione Granger", "Molly Weasley");
  // The evil camp.
  add("Lord Voldemort", "Bellatrix Lestrange");
  add("Lord Voldemort", "Lucius Malfoy");
  add("Lord Voldemort", "Vincent Crabbe Sr.");
  add("Lord Voldemort", "Draco Malfoy");
  add("Bellatrix Lestrange", "Lucius Malfoy");
  add("Bellatrix Lestrange", "Draco Malfoy");
  add("Lucius Malfoy", "Draco Malfoy");
  add("Lucius Malfoy", "Vincent Crabbe Sr.");
  add("Bellatrix Lestrange", "Vincent Crabbe Sr.");
  add("Draco Malfoy", "Vincent Crabbe");
  add("Draco Malfoy", "Gregory Goyle");
  add("Vincent Crabbe", "Gregory Goyle");
  add("Vincent Crabbe", "Vincent Crabbe Sr.");
  add("Gregory Goyle", "Vincent Crabbe Sr.");
  // Hostility (cross) edges; {Harry, Ron, Hermione} x {Draco, Crabbe, Goyle}
  // carries several butterflies, and Voldemort duels the trio.
  add("Harry Potter", "Draco Malfoy");
  add("Harry Potter", "Vincent Crabbe");
  add("Harry Potter", "Gregory Goyle");
  add("Ron Weasley", "Draco Malfoy");
  add("Ron Weasley", "Vincent Crabbe");
  add("Ron Weasley", "Gregory Goyle");
  add("Hermione Granger", "Draco Malfoy");
  add("Hermione Granger", "Vincent Crabbe");
  add("Hermione Granger", "Gregory Goyle");
  add("Harry Potter", "Lord Voldemort");
  add("Ron Weasley", "Lord Voldemort");
  add("Hermione Granger", "Lord Voldemort");
  add("Ginny Weasley", "Lord Voldemort");
  add("Harry Potter", "Lucius Malfoy");
  add("Ginny Weasley", "Lucius Malfoy");
  add("Harry Potter", "Bellatrix Lestrange");
  add("Molly Weasley", "Bellatrix Lestrange");

  const std::size_t n = labels.size();
  cs.graph = LabeledGraph::FromEdges(n, std::move(edges), std::move(labels));
  cs.queries = {id.at("Ron Weasley"), id.at("Draco Malfoy")};
  cs.params.b = 3;
  return cs;
}

CaseStudy MakeDblpCase() {
  CaseStudy cs;
  cs.name = "dblp-collab";
  PlantedConfig cfg;
  cfg.num_communities = 60;
  cfg.groups_per_community = 3;
  cfg.min_group_size = 10;
  cfg.max_group_size = 20;
  cfg.intra_edge_prob = 0.40;
  cfg.cross_pair_prob = 0.10;
  cfg.num_labels = 7;
  cfg.background_vertices = 2000;
  cfg.background_avg_degree = 3.0;
  cfg.seed = 2012;
  PlantedGraph pg = GeneratePlanted(cfg);
  cs.graph = std::move(pg.graph);

  cs.label_names = {"Database",        "MachineLearning", "SystemsNetworking", "Theory",
                    "ComputerVision",  "NLP",             "DataMining"};
  cs.vertex_names.resize(cs.graph.NumVertices());
  for (VertexId v = 0; v < cs.graph.NumVertices(); ++v) {
    cs.vertex_names[v] =
        cs.label_names[cs.graph.LabelOf(v) % cs.label_names.size()] + "_Author" +
        std::to_string(v);
  }
  // One query author per field group of the first planted community, highest
  // degree first (the "Tim Kraska" / "Michael I. Jordan" / "Ion Stoica"
  // role).
  const PlantedCommunity& comm = pg.communities.front();
  for (std::size_t gi = 0; gi < 3; ++gi) {
    VertexId best = comm.groups[gi].front();
    for (VertexId v : comm.groups[gi]) {
      if (cs.graph.Degree(v) > cs.graph.Degree(best)) best = v;
    }
    cs.queries.push_back(best);
  }
  // The paper's Exp-11 setting: b = 3 and k_i = 3 for every query vertex.
  cs.params = BccParams{3, 3, 3};
  return cs;
}

}  // namespace bccs
