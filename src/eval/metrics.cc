#include "eval/metrics.h"

#include <algorithm>

namespace bccs {

F1Result F1Score(std::span<const VertexId> found, std::span<const VertexId> truth) {
  std::vector<VertexId> f(found.begin(), found.end());
  std::vector<VertexId> t(truth.begin(), truth.end());
  std::sort(f.begin(), f.end());
  f.erase(std::unique(f.begin(), f.end()), f.end());
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());

  F1Result out;
  if (f.empty() || t.empty()) return out;
  std::vector<VertexId> common;
  std::set_intersection(f.begin(), f.end(), t.begin(), t.end(), std::back_inserter(common));
  out.precision = static_cast<double>(common.size()) / static_cast<double>(f.size());
  out.recall = static_cast<double>(common.size()) / static_cast<double>(t.size());
  if (out.precision + out.recall > 0) {
    out.f1 = 2 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

}  // namespace bccs
