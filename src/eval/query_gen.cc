#include "eval/query_gen.h"

#include <algorithm>
#include <random>

#include "bcc/query_distance.h"

namespace bccs {
namespace {

using Rng = std::mt19937_64;

// Degree threshold: a vertex qualifies if its degree is >= the degree at the
// `rank` quantile of the degree distribution.
std::size_t DegreeThreshold(const LabeledGraph& g, double rank) {
  if (g.NumVertices() == 0) return 0;
  std::vector<std::size_t> degrees(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) degrees[v] = g.Degree(v);
  std::sort(degrees.begin(), degrees.end());
  auto idx = static_cast<std::size_t>(rank * static_cast<double>(degrees.size() - 1));
  return degrees[std::min(idx, degrees.size() - 1)];
}

// BFS from `source` limited to `max_depth`, returning per-vertex distance.
std::vector<std::uint32_t> BoundedBfs(const LabeledGraph& g, VertexId source,
                                      std::uint32_t max_depth) {
  std::vector<std::uint32_t> dist(g.NumVertices(), kInfDistance);
  dist[source] = 0;
  std::vector<VertexId> frontier = {source};
  for (std::uint32_t level = 1; level <= max_depth && !frontier.empty(); ++level) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (VertexId w : g.Neighbors(v)) {
        if (dist[w] != kInfDistance) continue;
        dist[w] = level;
        next.push_back(w);
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

}  // namespace

std::vector<BccQuery> SampleQueries(const LabeledGraph& g, std::size_t count,
                                    const QueryGenConfig& cfg) {
  std::vector<BccQuery> out;
  if (g.NumVertices() == 0 || g.NumLabels() < 2) return out;
  Rng rng(cfg.seed);

  std::size_t threshold = DegreeThreshold(g, cfg.degree_rank);
  std::vector<VertexId> candidates;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) >= threshold) candidates.push_back(v);
  }
  if (candidates.empty()) return out;
  std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);

  for (std::size_t attempt = 0; attempt < cfg.max_attempts && out.size() < count; ++attempt) {
    VertexId ql = candidates[pick(rng)];
    auto dist = BoundedBfs(g, ql, cfg.inter_distance);
    std::vector<VertexId> partners;
    for (VertexId v : candidates) {
      if (dist[v] == cfg.inter_distance && g.LabelOf(v) != g.LabelOf(ql)) {
        partners.push_back(v);
      }
    }
    if (partners.empty()) continue;
    std::uniform_int_distribution<std::size_t> pick_partner(0, partners.size() - 1);
    out.push_back({ql, partners[pick_partner(rng)]});
  }
  return out;
}

std::vector<GroundTruthQuery> SampleGroundTruthQueries(const PlantedGraph& pg,
                                                       std::size_t count,
                                                       const QueryGenConfig& cfg) {
  std::vector<GroundTruthQuery> out;
  const LabeledGraph& g = pg.graph;
  if (pg.communities.empty()) return out;
  Rng rng(cfg.seed);
  std::uniform_int_distribution<std::size_t> pick_comm(0, pg.communities.size() - 1);

  // Degree-rank filter applied within a group: keep the top (1 - rank)
  // fraction by degree (at least one vertex).
  auto ranked = [&](const std::vector<VertexId>& group) {
    std::vector<VertexId> sorted = group;
    std::sort(sorted.begin(), sorted.end(), [&](VertexId a, VertexId b) {
      return g.Degree(a) < g.Degree(b);
    });
    auto cut = static_cast<std::size_t>(cfg.degree_rank *
                                        static_cast<double>(sorted.size()));
    cut = std::min(cut, sorted.size() - 1);
    return std::vector<VertexId>(sorted.begin() + static_cast<std::ptrdiff_t>(cut),
                                 sorted.end());
  };

  for (std::size_t attempt = 0; attempt < cfg.max_attempts && out.size() < count; ++attempt) {
    std::size_t ci = pick_comm(rng);
    const PlantedCommunity& comm = pg.communities[ci];
    if (comm.groups.size() < 2 || comm.groups[0].empty() || comm.groups[1].empty()) continue;
    std::vector<VertexId> left = ranked(comm.groups[0]);
    std::vector<VertexId> right = ranked(comm.groups[1]);
    std::uniform_int_distribution<std::size_t> pick_left(0, left.size() - 1);
    VertexId ql = left[pick_left(rng)];

    // Prefer partners at exactly the requested inter-distance; fall back to
    // the closest achievable partner within the community.
    auto dist = BoundedBfs(g, ql, cfg.inter_distance + 4);
    std::vector<VertexId> exact, fallback;
    std::uint32_t best_d = kInfDistance;
    for (VertexId v : right) {
      if (dist[v] == kInfDistance) continue;
      if (dist[v] == cfg.inter_distance) exact.push_back(v);
      if (dist[v] < best_d) {
        best_d = dist[v];
        fallback.assign(1, v);
      } else if (dist[v] == best_d) {
        fallback.push_back(v);
      }
    }
    const std::vector<VertexId>& pool = exact.empty() ? fallback : exact;
    if (pool.empty()) continue;
    std::uniform_int_distribution<std::size_t> pick_right(0, pool.size() - 1);
    out.push_back({{ql, pool[pick_right(rng)]}, ci});
  }
  return out;
}

std::vector<MbccGroundTruthQuery> SampleMbccGroundTruthQueries(const PlantedGraph& pg,
                                                               std::size_t m,
                                                               std::size_t count,
                                                               std::uint64_t seed) {
  std::vector<MbccGroundTruthQuery> out;
  Rng rng(seed);
  // Prefer communities with exactly m groups (so the ground truth matches
  // the query arity); fall back to any community with at least m groups.
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < pg.communities.size(); ++i) {
    if (pg.communities[i].groups.size() == m) eligible.push_back(i);
  }
  if (eligible.empty()) {
    for (std::size_t i = 0; i < pg.communities.size(); ++i) {
      if (pg.communities[i].groups.size() >= m) eligible.push_back(i);
    }
  }
  if (eligible.empty()) return out;
  std::uniform_int_distribution<std::size_t> pick_comm(0, eligible.size() - 1);
  for (std::size_t n = 0; n < count; ++n) {
    std::size_t ci = eligible[pick_comm(rng)];
    const PlantedCommunity& comm = pg.communities[ci];
    MbccQuery q;
    for (std::size_t gi = 0; gi < m; ++gi) {
      const auto& group = comm.groups[gi];
      std::uniform_int_distribution<std::size_t> pick(0, group.size() - 1);
      q.vertices.push_back(group[pick(rng)]);
    }
    out.push_back({std::move(q), ci});
  }
  return out;
}

}  // namespace bccs
