#ifndef BCCS_EVAL_METRICS_H_
#define BCCS_EVAL_METRICS_H_

#include <span>
#include <vector>

#include "graph/labeled_graph.h"

namespace bccs {

/// Precision / recall / F1 of a discovered community against a ground-truth
/// community (the paper's Section 8 quality metric).
struct F1Result {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

/// Both inputs are vertex sets (need not be sorted; duplicates ignored).
F1Result F1Score(std::span<const VertexId> found, std::span<const VertexId> truth);

}  // namespace bccs

#endif  // BCCS_EVAL_METRICS_H_
