#ifndef BCCS_NET_LINE_PROTOCOL_H_
#define BCCS_NET_LINE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "eval/serve_engine.h"
#include "graph/graph_delta.h"

namespace bccs {

/// The wire protocol of the socket front-end (see ARCHITECTURE.md, "Wire
/// protocol"): newline-delimited UTF-8-agnostic byte lines, one request per
/// line, one response line per request. Everything here is pure
/// byte-in/byte-out — no sockets — so the codec is testable (and fuzzable)
/// without a server.
///
/// Requests (tokens separated by spaces/tabs; '\r' before the terminating
/// '\n' is tolerated for netcat/telnet clients; blank lines and lines whose
/// first token starts with '#' are ignored):
///
///   q <ql> <qr> [interactive|bulk|i|b] [id=<N>]   two-label query
///   u <+|-> <a> <b> [id=<N>]                      one-edge update batch
///   ping                                          liveness probe -> "pong"
///   quit                                          flush pending responses,
///                                                 then server closes
///
/// `id=<N>` is the client-supplied request id (N >= 1): the idempotency
/// handle. Responses carry it back so pipelined completions can be matched
/// out of order, and the server's ResponseKeeper deduplicates re-sent ids
/// (net/response_keeper.h). Requests without an id get engine-assigned ids
/// and are NOT deduplicated on retry.
///
/// Responses (one line each, in completion order — NOT request order):
///
///   ok <id> q epoch=<E> n=<M> h=<16-hex>    query: community size + hash
///   ok <id> u epoch=<E> +<ins> -<del>       update applied (durable ack
///                                           when the server is durable)
///   rej <id> u epoch=<E> <reason>           update validated and refused;
///                                           epoch unchanged
///   err <id> <reason>                       malformed request line (id 0
///                                           when none could be parsed)
///   pong                                    reply to "ping"
///
/// A malformed line is answered with "err" and the connection stays usable
/// (the framing is still line-aligned); only an overlong line — where the
/// line boundary itself is lost — forces a connection close
/// (LineSplitter::Feed returning false).
enum class NetRequestKind : std::uint8_t { kQuery, kUpdate, kPing, kQuit };

/// One parsed request line.
struct NetRequest {
  NetRequestKind kind = NetRequestKind::kPing;
  /// Client-supplied request id (0 = none given).
  std::uint64_t id = 0;
  // kQuery:
  VertexId ql = 0;
  VertexId qr = 0;
  Lane lane = Lane::kBulk;
  // kUpdate:
  EdgeUpdate update;
};

enum class NetParseStatus : std::uint8_t {
  kOk,     // *out filled
  kBlank,  // empty/comment line: ignore, no response
  kError,  // *error filled; answer with "err <id> ..." (id best-effort)
};

/// Parses one request line (terminator already stripped). Strict: every
/// number must be a plain decimal that fits its type, vertex ids must be
/// below `num_vertices`, and trailing junk is an error — a line-protocol
/// typo must never half-apply as something else. On kError, *out->id still
/// carries the client id when one was parsed (so the error response can
/// name it).
NetParseStatus ParseNetRequest(std::string_view line, std::size_t num_vertices,
                               NetRequest* out, std::string* error);

/// Incremental line framing over torn reads: Feed() appends raw bytes as
/// they arrive from the socket (any chunking — 1-byte reads reassemble
/// identically), Next() extracts complete lines. Feed returns false once
/// the pending un-terminated line exceeds max_line_bytes: the line boundary
/// is lost, and the only safe reaction is closing the connection.
class LineSplitter {
 public:
  explicit LineSplitter(std::size_t max_line_bytes) : max_line_bytes_(max_line_bytes) {}

  bool Feed(std::string_view bytes);

  /// Moves the next complete line (terminator stripped; a trailing '\r' is
  /// stripped too) into *line. Returns false when no complete line is
  /// buffered yet.
  bool Next(std::string* line);

  /// Bytes buffered past the last complete line (a non-empty tail at EOF is
  /// an abrupt mid-request disconnect: the fragment must be discarded, never
  /// parsed as a request).
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  const std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already returned as lines
};

/// Order-independent identity of a community: FNV-1a64 over the sorted
/// member ids (communities are canonically sorted already) plus the size.
/// Responses carry this instead of the member list, so the bit-identity
/// acceptance check (socket serving == serialized replay) works without
/// shipping thousands of ids per line.
std::uint64_t CommunityHash(const Community& c);

std::string FormatQueryResponse(std::uint64_t id, std::uint64_t epoch, const Community& c);
std::string FormatUpdateResponse(std::uint64_t id, const UpdateOutcome& outcome);
std::string FormatErrorResponse(std::uint64_t id, std::string_view reason);

/// Formats the response line for any completed stream item — the single
/// switch the server (and its ResponseKeeper) routes completions through.
std::string FormatCompletionResponse(std::uint64_t client_id, const ItemCompletion& done);

}  // namespace bccs

#endif  // BCCS_NET_LINE_PROTOCOL_H_
