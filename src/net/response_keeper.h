#ifndef BCCS_NET_RESPONSE_KEEPER_H_
#define BCCS_NET_RESPONSE_KEEPER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace bccs {

/// Bounded request-id -> response map: the idempotent-retry layer of the
/// socket front-end (the response-keeper shape of YTsaurus's
/// yt/core/rpc/response_keeper.h, specialized to line responses).
///
/// The failure it exists for: a client sends an update with `id=N`, the
/// server applies it and acks, the connection drops before the ack is read.
/// The client cannot tell "never applied" from "ack lost", so it reconnects
/// and resends `id=N`. Without deduplication the edge update would apply
/// twice (epoch advanced twice, toggle semantics inverted). With the
/// keeper, the resend is answered from the kept response — exactly-once
/// apply, at-least-once delivery of the ack.
///
/// Lifecycle of an id:
///   StartRequest(N) on an unknown id registers it *pending* and returns
///   kStarted: the caller executes the request and must eventually call
///   CompleteRequest(N, response). A StartRequest(N) while pending attaches
///   the new deliverer (kAttached: the retry gets the same response when it
///   lands, the request is NOT re-executed). A StartRequest(N) after
///   completion delivers the kept response immediately (kReplayed).
///
/// Capacity: at most `capacity` *completed* responses are kept; the oldest
/// completed id is evicted first (pending ids are never evicted — they are
/// bounded by the stream's in-flight items). A retry of an evicted id
/// re-executes, so clients must retry within the window the capacity
/// affords; `evictions` counts how often that window rolled.
///
/// Thread safety: fully synchronized; deliver callbacks run OUTSIDE the
/// keeper lock (a deliverer may re-enter the keeper).
class ResponseKeeper {
 public:
  using DeliverFn = std::function<void(const std::string& response)>;

  enum class Start : std::uint8_t { kStarted, kAttached, kReplayed };

  explicit ResponseKeeper(std::size_t capacity);

  /// Registers interest in id. kStarted: caller owns execution. kAttached /
  /// kReplayed: caller must NOT execute; `deliver` receives the response
  /// (immediately for kReplayed, on completion for kAttached).
  Start StartRequest(std::uint64_t id, DeliverFn deliver);

  /// Resolves a pending id: keeps the response (evicting the oldest
  /// completed entry past capacity) and invokes every attached deliverer,
  /// including the original StartRequest's, outside the lock. Unknown ids
  /// are ignored (the entry may have been evicted under pathological
  /// capacity pressure while executing).
  void CompleteRequest(std::uint64_t id, std::string response);

  struct Stats {
    std::uint64_t started = 0;   // fresh executions
    std::uint64_t attached = 0;  // retries that joined an in-flight request
    std::uint64_t replayed = 0;  // retries answered from a kept response
    std::uint64_t evictions = 0;
    std::size_t completed_entries = 0;
    std::size_t pending_entries = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    bool completed = false;
    std::string response;             // valid when completed
    std::vector<DeliverFn> waiters;   // pending deliverers
  };

  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_ GUARDED_BY(mutex_);
  /// Completed ids in completion order (the FIFO eviction queue).
  std::deque<std::uint64_t> completed_fifo_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace bccs

#endif  // BCCS_NET_RESPONSE_KEEPER_H_
