#include "net/line_protocol.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "graph/fnv1a64.h"

namespace bccs {

namespace {

/// Splits `line` into whitespace-separated tokens (spaces and tabs only:
/// control bytes or other garbage stay inside tokens and fail the numeric
/// parses below, rather than being silently skipped).
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Strict decimal u64: the whole token, no sign, no leading '+', no
/// overflow. Garbage bytes (including invalid UTF-8) fail here instead of
/// being half-consumed.
bool ParseU64(std::string_view token, std::uint64_t* out) {
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out, 10);
  return ec == std::errc() && ptr == token.data() + token.size();
}

/// Consumes an optional trailing `id=<N>` token (N >= 1). Returns false on a
/// malformed id token.
bool ParseOptionalId(const std::vector<std::string_view>& tokens, std::size_t pos,
                     std::uint64_t* id, std::string* error) {
  if (pos >= tokens.size()) return true;
  std::string_view t = tokens[pos];
  if (t.substr(0, 3) != "id=") {
    *error = "unexpected trailing token '" + std::string(t) + "'";
    return false;
  }
  if (!ParseU64(t.substr(3), id) || *id == 0) {
    *error = "id= must be a positive integer";
    return false;
  }
  if (pos + 1 < tokens.size()) {
    *error = "unexpected trailing token '" + std::string(tokens[pos + 1]) + "'";
    return false;
  }
  return true;
}

bool ParseVertex(std::string_view token, std::size_t num_vertices, VertexId* out,
                 std::string* error) {
  std::uint64_t v = 0;
  if (!ParseU64(token, &v) || v >= num_vertices) {
    *error = "vertex id '" + std::string(token) + "' must be a decimal below " +
             std::to_string(num_vertices);
    return false;
  }
  *out = static_cast<VertexId>(v);
  return true;
}

}  // namespace

NetParseStatus ParseNetRequest(std::string_view line, std::size_t num_vertices,
                               NetRequest* out, std::string* error) {
  *out = NetRequest{};
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0].front() == '#') return NetParseStatus::kBlank;
  const std::string_view kind = tokens[0];

  if (kind == "ping" || kind == "quit") {
    out->kind = kind == "ping" ? NetRequestKind::kPing : NetRequestKind::kQuit;
    if (tokens.size() > 1) {
      *error = std::string(kind) + " takes no arguments";
      return NetParseStatus::kError;
    }
    return NetParseStatus::kOk;
  }

  if (kind == "q") {
    out->kind = NetRequestKind::kQuery;
    if (tokens.size() < 3) {
      *error = "expected 'q <ql> <qr> [lane] [id=N]'";
      return NetParseStatus::kError;
    }
    if (!ParseVertex(tokens[1], num_vertices, &out->ql, error) ||
        !ParseVertex(tokens[2], num_vertices, &out->qr, error)) {
      return NetParseStatus::kError;
    }
    std::size_t pos = 3;
    if (pos < tokens.size() && tokens[pos].substr(0, 3) != "id=") {
      const std::string_view lane = tokens[pos];
      if (lane == "interactive" || lane == "i") {
        out->lane = Lane::kInteractive;
      } else if (lane == "bulk" || lane == "b") {
        out->lane = Lane::kBulk;
      } else {
        *error = "unknown lane '" + std::string(lane) + "' (interactive|bulk)";
        return NetParseStatus::kError;
      }
      ++pos;
    }
    if (!ParseOptionalId(tokens, pos, &out->id, error)) return NetParseStatus::kError;
    return NetParseStatus::kOk;
  }

  if (kind == "u") {
    out->kind = NetRequestKind::kUpdate;
    if (tokens.size() < 4) {
      *error = "expected 'u <+|-> <a> <b> [id=N]'";
      return NetParseStatus::kError;
    }
    if (tokens[1] == "+") {
      out->update.kind = EdgeUpdateKind::kInsert;
    } else if (tokens[1] == "-") {
      out->update.kind = EdgeUpdateKind::kDelete;
    } else {
      *error = "update sign must be + or -";
      return NetParseStatus::kError;
    }
    VertexId a = 0, b = 0;
    if (!ParseVertex(tokens[2], num_vertices, &a, error) ||
        !ParseVertex(tokens[3], num_vertices, &b, error)) {
      return NetParseStatus::kError;
    }
    out->update.edge = {std::min(a, b), std::max(a, b)};
    if (!ParseOptionalId(tokens, 4, &out->id, error)) return NetParseStatus::kError;
    return NetParseStatus::kOk;
  }

  *error = "unknown request kind '" + std::string(kind) + "' (q|u|ping|quit)";
  return NetParseStatus::kError;
}

bool LineSplitter::Feed(std::string_view bytes) {
  // Compact lazily: once everything buffered has been handed out as lines,
  // drop it, so a long-lived connection's buffer stays proportional to the
  // largest single line, not the total traffic.
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
  // Framing check: an un-terminated tail longer than the line limit can
  // never become a valid line again.
  const std::size_t last_nl = buffer_.find_last_of('\n');
  const std::size_t tail_start = last_nl == std::string::npos ? consumed_ : last_nl + 1;
  return buffer_.size() - tail_start <= max_line_bytes_;
}

bool LineSplitter::Next(std::string* line) {
  const std::size_t nl = buffer_.find('\n', consumed_);
  if (nl == std::string::npos) return false;
  std::size_t len = nl - consumed_;
  if (len > 0 && buffer_[consumed_ + len - 1] == '\r') --len;
  line->assign(buffer_, consumed_, len);
  consumed_ = nl + 1;
  return true;
}

std::uint64_t CommunityHash(const Community& c) {
  Fnv1a64 h;
  const std::uint64_t n = c.vertices.size();
  h.Update(&n, sizeof n);
  for (VertexId v : c.vertices) {
    const std::uint64_t w = v;
    h.Update(&w, sizeof w);
  }
  return h.Digest();
}

std::string FormatQueryResponse(std::uint64_t id, std::uint64_t epoch, const Community& c) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "ok %" PRIu64 " q epoch=%" PRIu64 " n=%zu h=%016" PRIx64,
                id, epoch, c.Size(), CommunityHash(c));
  return buf;
}

std::string FormatUpdateResponse(std::uint64_t id, const UpdateOutcome& outcome) {
  char buf[96];
  if (outcome.applied) {
    std::snprintf(buf, sizeof buf, "ok %" PRIu64 " u epoch=%" PRIu64 " +%zu -%zu", id,
                  outcome.epoch, outcome.inserts, outcome.deletes);
    return buf;
  }
  std::snprintf(buf, sizeof buf, "rej %" PRIu64 " u epoch=%" PRIu64 " ", id, outcome.epoch);
  return std::string(buf) + outcome.error;
}

std::string FormatErrorResponse(std::uint64_t id, std::string_view reason) {
  return "err " + std::to_string(id) + " " + std::string(reason);
}

std::string FormatCompletionResponse(std::uint64_t client_id, const ItemCompletion& done) {
  // The wire id is the client's when one was supplied, else the
  // engine-assigned one — either way the id the response must echo.
  const std::uint64_t id = client_id != 0 ? client_id : done.request_id;
  if (done.is_update) return FormatUpdateResponse(id, *done.outcome);
  return FormatQueryResponse(id, done.epoch, *done.community);
}

}  // namespace bccs
