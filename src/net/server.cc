#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "net/line_protocol.h"

namespace bccs {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

/// Per-connection state. Ownership split:
///   - The poll loop exclusively owns the socket (fd, splitter, read_closed)
///     — no lock needed, single thread.
///   - Engine workers reach a connection only through Deliver(), which
///     touches the fields under `mutex` and wakes the loop. A worker never
///     sees the fd.
/// shared_ptr lifetime: completion callbacks capture the Connection, so a
/// hard close (reset, overflow) cannot free state a late completion still
/// writes to — `closed` makes the late Deliver a no-op instead.
struct NetServer::Connection {
  Connection(int fd_in, std::size_t max_line_bytes)
      : fd(fd_in), splitter(max_line_bytes) {}

  // Poll-loop-only:
  int fd;
  LineSplitter splitter;
  bool read_closed = false;  // EOF / quit / overlong: stop reading, drain, close

  // Shared with workers:
  Mutex mutex;
  std::string outbox GUARDED_BY(mutex);       // formatted, unsent response bytes
  std::size_t inflight GUARDED_BY(mutex) = 0; // submitted items not yet completed
  bool closed GUARDED_BY(mutex) = false;      // fd gone: drop deliveries
  bool overflowed GUARDED_BY(mutex) = false;  // outbox bound hit: loop hard-closes
};

NetServer::NetServer(ServeEngine& engine, NetServerOptions opts)
    : engine_(&engine), opts_(std::move(opts)), keeper_(opts_.keeper_capacity) {}

NetServer::~NetServer() {
  for (const auto& conn : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_[0] >= 0) ::close(wake_fd_[0]);
  if (wake_fd_[1] >= 0) ::close(wake_fd_[1]);
}

bool NetServer::Start(std::string* error) {
  BCCS_CHECK(listen_fd_ < 0) << "NetServer::Start called twice";
  if (::pipe(wake_fd_) != 0) {
    *error = ErrnoString("pipe");
    return false;
  }
  if (!SetNonBlocking(wake_fd_[0]) || !SetNonBlocking(wake_fd_[1])) {
    *error = ErrnoString("fcntl(self-pipe)");
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = ErrnoString("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid bind address '" + opts_.bind_address + "'";
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    *error = ErrnoString(("bind " + opts_.bind_address + ":" +
                          std::to_string(opts_.port)).c_str());
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    *error = ErrnoString("listen");
    return false;
  }
  if (!SetNonBlocking(listen_fd_)) {
    *error = ErrnoString("fcntl(listener)");
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    *error = ErrnoString("getsockname");
    return false;
  }
  port_ = ntohs(bound.sin_port);
  return true;
}

void NetServer::RequestShutdown() {
  // Async-signal-safe: a lock-free atomic store plus one write(2). Never
  // takes a lock or allocates — this runs inside SIGINT/SIGTERM handlers.
  shutdown_.store(true, std::memory_order_release);
  const char byte = 'q';
  [[maybe_unused]] ssize_t n = ::write(wake_fd_[1], &byte, 1);
}

void NetServer::Wake() {
  const char byte = 'w';
  // EAGAIN (pipe full) is fine: a full pipe already guarantees a pending
  // wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_[1], &byte, 1);
}

void NetServer::Deliver(const std::shared_ptr<Connection>& conn, std::string_view text) {
  bool wake = false;
  {
    MutexLock lock(conn->mutex);
    if (!conn->closed && !conn->overflowed) {
      conn->outbox.append(text);
      conn->outbox.push_back('\n');
      // A client that submits without reading cannot queue unbounded
      // response bytes: flag it and let the loop disconnect it. (Kept id=
      // responses survive in the ResponseKeeper for the reconnect.)
      if (conn->outbox.size() > opts_.max_outbox_bytes) conn->overflowed = true;
      wake = true;
    }
  }
  if (wake) Wake();
}

void NetServer::HardClose(Connection& conn) {
  {
    MutexLock lock(conn.mutex);
    conn.closed = true;
    conn.outbox.clear();
  }
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;  // the reap sweep removes fd < 0 entries
}

/// Writes as much buffered output as the socket accepts. Returns false on a
/// fatal write error (connection must be hard-closed).
bool NetServer::FlushConn(Connection& conn) {
  while (true) {
    std::string pending;
    {
      MutexLock lock(conn.mutex);
      if (conn.outbox.empty()) return true;
      pending.swap(conn.outbox);
    }
    std::size_t off = 0;
    int write_errno = 0;
    while (off < pending.size()) {
      const ssize_t n = ::write(conn.fd, pending.data() + off, pending.size() - off);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      write_errno = n < 0 ? errno : EIO;
      break;
    }
    if (off < pending.size()) {
      const bool fatal = write_errno != EAGAIN && write_errno != EWOULDBLOCK;
      // Re-queue the unsent suffix ahead of anything workers appended while
      // we were writing unlocked.
      MutexLock lock(conn.mutex);
      conn.outbox.insert(0, pending, off, pending.size() - off);
      return !fatal;
    }
  }
}

void NetServer::HandleLine(const std::shared_ptr<Connection>& conn,
                           const std::string& line) {
  NetRequest req;
  std::string error;
  switch (ParseNetRequest(line, num_vertices_, &req, &error)) {
    case NetParseStatus::kBlank:
      return;
    case NetParseStatus::kError:
      ++stats_.protocol_errors;
      Deliver(conn, FormatErrorResponse(req.id, error));
      return;
    case NetParseStatus::kOk:
      break;
  }

  if (req.kind == NetRequestKind::kPing) {
    Deliver(conn, "pong");
    return;
  }
  if (req.kind == NetRequestKind::kQuit) {
    // Flush what is pending (including in-flight completions), then close.
    // Same drain condition as EOF, so the reap sweep handles both.
    conn->read_closed = true;
    return;
  }

  const std::uint64_t client_id = req.id;
  if (client_id != 0) {
    // Idempotent-retry gate: only the first arrival of an id executes.
    auto self = conn;  // shared_ptr copy for the deliverer
    const ResponseKeeper::Start start = keeper_.StartRequest(
        client_id,
        [this, self](const std::string& response) { Deliver(self, response); });
    if (start != ResponseKeeper::Start::kStarted) return;
  }

  ServeItem item;
  if (req.kind == NetRequestKind::kQuery) {
    QueryRequest q = opts_.query_proto;
    q.query = BccQuery{req.ql, req.qr};
    q.lane = req.lane;
    q.request_id = client_id;  // 0 = engine-assigned
    item = std::move(q);
  } else {
    UpdateRequest u;
    u.updates.push_back(req.update);
    item = std::move(u);
  }

  ++stats_.requests_submitted;
  {
    MutexLock lock(conn->mutex);
    ++conn->inflight;
  }
  auto self = conn;
  stream_->Submit(
      std::move(item), [this, self, client_id](const ItemCompletion& done) {
        // Worker thread. Format once; route through the keeper for id=
        // requests (which also replays to any attached retries), directly to
        // the origin connection otherwise.
        std::string response = FormatCompletionResponse(client_id, done);
        if (client_id != 0) {
          keeper_.CompleteRequest(client_id, std::move(response));
        } else {
          Deliver(self, response);
        }
        {
          MutexLock lock(self->mutex);
          --self->inflight;
        }
        Wake();  // the conn may now be drainable (read_closed reap)
      });
}

void NetServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[4096];
  while (!conn->read_closed) {
    const ssize_t n = ::read(conn->fd, buf, sizeof buf);
    if (n > 0) {
      if (!conn->splitter.Feed(std::string_view(buf, static_cast<std::size_t>(n)))) {
        // The line boundary is lost; nothing past this point can be framed.
        ++stats_.overlong_closes;
        Deliver(conn, FormatErrorResponse(
                          0, "line exceeds " + std::to_string(opts_.max_line_bytes) +
                                 " bytes; closing"));
        conn->read_closed = true;
        return;
      }
      std::string line;
      while (!conn->read_closed && conn->splitter.Next(&line)) {
        HandleLine(conn, line);
      }
      continue;
    }
    if (n == 0) {
      // EOF. A buffered un-terminated fragment is an abrupt mid-request
      // disconnect: discard it — a torn request must never partially apply.
      if (conn->splitter.pending_bytes() > 0) ++stats_.torn_disconnects;
      conn->read_closed = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    HardClose(*conn);  // ECONNRESET and friends
    return;
  }
}

void NetServer::AcceptNew() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient
    if (conns_.size() >= opts_.max_connections) {
      ++stats_.rejected_over_capacity;
      static constexpr char kMsg[] = "err 0 server at connection limit\n";
      [[maybe_unused]] ssize_t n = ::write(fd, kMsg, sizeof kMsg - 1);
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ++stats_.accepted;
    conns_.push_back(std::make_shared<Connection>(fd, opts_.max_line_bytes));
  }
}

void NetServer::PollOnce(int timeout_ms) {
  std::vector<pollfd> pfds;
  // Slot 0: the self-pipe; slot 1: the listener (accept only below the
  // connection cap — past it, leave backlog in the kernel and let clients
  // queue); then one slot per live connection.
  pfds.push_back({wake_fd_[0], POLLIN, 0});
  pfds.push_back({listen_fd_, POLLIN, 0});
  std::vector<std::shared_ptr<Connection>> polled;
  polled.reserve(conns_.size());
  for (const auto& conn : conns_) {
    if (conn->fd < 0) continue;
    short events = 0;
    if (!conn->read_closed) events |= POLLIN;
    {
      MutexLock lock(conn->mutex);
      if (!conn->outbox.empty()) events |= POLLOUT;
    }
    pfds.push_back({conn->fd, events, 0});
    polled.push_back(conn);
  }

  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc < 0 && errno != EINTR) return;

  if (pfds[0].revents & POLLIN) {
    char drain[256];
    while (::read(wake_fd_[0], drain, sizeof drain) > 0) {
    }
  }
  if (pfds[1].revents & POLLIN) AcceptNew();

  for (std::size_t i = 0; i < polled.size(); ++i) {
    const auto& conn = polled[i];
    const short rev = pfds[i + 2].revents;
    if (conn->fd < 0) continue;
    if (rev & (POLLOUT | POLLERR | POLLHUP)) {
      if (!FlushConn(*conn)) {
        HardClose(*conn);
        continue;
      }
    }
    if (rev & (POLLIN | POLLHUP)) HandleReadable(conn);
  }

  // Reap: hard-closed entries; overflowed clients; and drained read-closed
  // connections (EOF/quit/overlong with no in-flight items and an empty
  // outbox — everything owed has been sent).
  std::vector<std::shared_ptr<Connection>> live;
  live.reserve(conns_.size());
  for (const auto& conn : conns_) {
    if (conn->fd < 0) continue;
    bool drained;
    bool overflowed;
    {
      MutexLock lock(conn->mutex);
      drained = conn->outbox.empty() && conn->inflight == 0;
      overflowed = conn->overflowed;
    }
    if (overflowed) {
      ++stats_.overflow_closes;
      HardClose(*conn);
      continue;
    }
    if (conn->read_closed && drained) {
      // Try a final opportunistic flush in case output landed after the
      // poll (drained implies empty outbox, so this is just the close).
      HardClose(*conn);
      continue;
    }
    live.push_back(conn);
  }
  conns_.swap(live);
}

/// Post-drain flush: every completion has been delivered into its outbox;
/// push the tails out with a short dedicated poll loop so clients that are
/// still reading get their final responses before the process exits.
void NetServer::FlushTails() {
  constexpr int kRounds = 500;  // ~5s at 10ms per round
  for (int round = 0; round < kRounds; ++round) {
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Connection>> polled;
    for (const auto& conn : conns_) {
      if (conn->fd < 0) continue;
      bool has_output;
      {
        MutexLock lock(conn->mutex);
        has_output = !conn->outbox.empty();
      }
      if (!has_output) {
        HardClose(*conn);  // nothing owed; close now
        continue;
      }
      pfds.push_back({conn->fd, POLLOUT, 0});
      polled.push_back(conn);
    }
    if (polled.empty()) return;
    const int rc = ::poll(pfds.data(), pfds.size(), 10);
    if (rc < 0 && errno != EINTR) return;
    for (std::size_t i = 0; i < polled.size(); ++i) {
      if (pfds[i].revents & (POLLOUT | POLLERR | POLLHUP)) {
        if (!FlushConn(*polled[i])) HardClose(*polled[i]);
      }
    }
  }
}

BatchResult NetServer::Run() {
  BCCS_CHECK(listen_fd_ >= 0) << "NetServer::Run before Start";
  ServeEngine::Stream stream = engine_->OpenStream();
  stream_ = &stream;
  num_vertices_ = engine_->graph().NumVertices();

  while (!shutdown_.load(std::memory_order_acquire)) {
    // 250ms cap: bounds shutdown latency even if a wake write was lost.
    PollOnce(250);
  }

  // Graceful shutdown: stop accepting, stop reading, drain what was
  // admitted, flush the response tails, close.
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (const auto& conn : conns_) conn->read_closed = true;
  stream_ = nullptr;  // no further Submits (the loop thread is here)
  BatchResult result = stream.Finish();  // completions keep delivering to outboxes
  FlushTails();
  for (const auto& conn : conns_) {
    if (conn->fd >= 0) HardClose(*conn);
  }
  conns_.clear();
  stats_.keeper = keeper_.stats();
  return result;
}

}  // namespace bccs
