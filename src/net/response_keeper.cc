#include "net/response_keeper.h"

#include <utility>

#include "common/check.h"

namespace bccs {

ResponseKeeper::ResponseKeeper(std::size_t capacity) : capacity_(capacity) {
  BCCS_CHECK(capacity_ > 0) << "ResponseKeeper capacity must be positive";
}

ResponseKeeper::Start ResponseKeeper::StartRequest(std::uint64_t id, DeliverFn deliver) {
  std::string replay;
  {
    MutexLock lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(id);
    if (inserted) {
      ++stats_.started;
      ++stats_.pending_entries;
      it->second.waiters.push_back(std::move(deliver));
      return Start::kStarted;
    }
    if (!it->second.completed) {
      ++stats_.attached;
      it->second.waiters.push_back(std::move(deliver));
      return Start::kAttached;
    }
    ++stats_.replayed;
    replay = it->second.response;
  }
  // Replay outside the lock: the deliverer typically appends to a
  // connection buffer under the connection's own mutex.
  if (deliver) deliver(replay);
  return Start::kReplayed;
}

void ResponseKeeper::CompleteRequest(std::uint64_t id, std::string response) {
  std::vector<DeliverFn> waiters;
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.completed) return;
    it->second.completed = true;
    it->second.response = response;
    waiters = std::move(it->second.waiters);
    it->second.waiters.clear();
    --stats_.pending_entries;
    ++stats_.completed_entries;
    completed_fifo_.push_back(id);
    while (completed_fifo_.size() > capacity_) {
      const std::uint64_t victim = completed_fifo_.front();
      completed_fifo_.pop_front();
      entries_.erase(victim);
      --stats_.completed_entries;
      ++stats_.evictions;
    }
  }
  for (const DeliverFn& w : waiters) {
    if (w) w(response);
  }
}

ResponseKeeper::Stats ResponseKeeper::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace bccs
