#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace bccs {

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

bool NetClient::Connect(const std::string& host, int port, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid address '" + host + "'";
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

bool NetClient::SendLine(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  return SendRaw(framed);
}

bool NetClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server-side close surfaces as EPIPE, not SIGPIPE.
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool NetClient::ReadLine(std::string* line, double timeout_seconds) {
  if (fd_ < 0) return false;
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::size_t len = nl;
      if (len > 0 && buffer_[len - 1] == '\r') --len;
      line->assign(buffer_, 0, len);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (timeout_seconds > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_seconds * 1000));
      if (rc == 0) return false;  // timeout
      if (rc < 0 && errno != EINTR) return false;
      if (rc < 0) continue;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or error
  }
}

void NetClient::CloseSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void NetClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

}  // namespace bccs
