#ifndef BCCS_NET_SERVER_H_
#define BCCS_NET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/serve_engine.h"
#include "net/response_keeper.h"

namespace bccs {

/// Socket front-end configuration (`bccs_serve --listen`).
struct NetServerOptions {
  /// Address to bind (dotted IPv4). Loopback by default: exposing the
  /// serving port beyond the host is a deployment decision, not a default.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Beyond this many concurrent connections, new ones are accepted, told
  /// "err 0 server at connection limit", and closed.
  std::size_t max_connections = 256;
  /// A request line longer than this loses the frame boundary; the
  /// connection is answered with one final error and closed.
  std::size_t max_line_bytes = 4096;
  /// Per-connection response backlog bound: a client that stops reading
  /// while submitting is disconnected once this many unsent bytes queue up
  /// (kept responses for id= requests survive in the ResponseKeeper).
  std::size_t max_outbox_bytes = 4u << 20;
  /// ResponseKeeper capacity: how many completed id= responses are kept for
  /// idempotent retries before the oldest is evicted.
  std::size_t keeper_capacity = 4096;
  /// Prototype for every `q` request: method, k1/k2/b, deadline, and lane
  /// default. The wire request overrides query/lane/request_id.
  QueryRequest query_proto;
};

/// Poll-loop counters (single-threaded loop state; read them after Run()
/// returns).
struct NetServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_over_capacity = 0;
  std::uint64_t requests_submitted = 0;  // queries + updates reaching the engine
  std::uint64_t protocol_errors = 0;     // malformed lines answered with "err"
  std::uint64_t overlong_closes = 0;     // connections closed for frame loss
  std::uint64_t torn_disconnects = 0;    // EOF with a partial request buffered
  std::uint64_t overflow_closes = 0;     // outbox bound exceeded
  ResponseKeeper::Stats keeper;          // idempotent-retry counters
};

/// The TCP line-protocol front-end over one ServeEngine stream: a
/// poll-driven accept/read loop on the caller's thread feeding
/// Stream::Submit, with per-item completion callbacks streaming each
/// response back on its originating connection the moment the item
/// finishes — ordered by completion, matched by id, NOT request order.
///
/// Threading: the poll loop owns every socket; engine workers only ever
/// touch a connection's outbound buffer (under the connection mutex) and
/// wake the loop through a self-pipe. One NetServer per engine, one Run()
/// per NetServer.
///
/// Consistency: each connection's lines are submitted in the order its
/// bytes arrive, so the global admission order — which fixes epoch slots —
/// contains every connection's stream as a subsequence. That is the
/// connection-scoped epoch view: the epochs a connection observes are
/// monotone in its own submission order and always include its own earlier
/// updates (DESIGN.md, serving contract 7).
///
/// Shutdown (RequestShutdown, async-signal-safe): stop accepting, stop
/// reading, drain every admitted item through Stream::Finish (completions
/// keep streaming out), flush each connection's response tail, close, and
/// return the drained stream's BatchResult.
class NetServer {
 public:
  NetServer(ServeEngine& engine, NetServerOptions opts);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens (plus the self-pipe). False + *error on failure.
  bool Start(std::string* error);

  /// The bound port (after Start; the actual one when options asked for 0).
  int port() const { return port_; }

  /// Runs the serve loop on the calling thread until RequestShutdown (or a
  /// fatal listener error); returns the drained stream's per-item results.
  /// Call once, after Start.
  BatchResult Run();

  /// Stops the loop from any thread or signal handler: lock-free flag store
  /// plus a self-pipe write, both async-signal-safe.
  void RequestShutdown();

  /// Counters; stable only after Run() returns.
  const NetServerStats& stats() const { return stats_; }

 private:
  struct Connection;

  void AcceptNew();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleLine(const std::shared_ptr<Connection>& conn, const std::string& line);
  void Deliver(const std::shared_ptr<Connection>& conn, std::string_view text);
  bool FlushConn(Connection& conn);
  void HardClose(Connection& conn);
  void Wake();
  void PollOnce(int timeout_ms);
  void FlushTails();

  ServeEngine* engine_;
  NetServerOptions opts_;
  ResponseKeeper keeper_;
  std::size_t num_vertices_ = 0;  // refreshed per epoch for request validation
  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
  int port_ = 0;
  std::atomic<bool> shutdown_{false};
  std::vector<std::shared_ptr<Connection>> conns_;  // loop thread only
  ServeEngine::Stream* stream_ = nullptr;           // valid inside Run()
  NetServerStats stats_;
};

}  // namespace bccs

#endif  // BCCS_NET_SERVER_H_
