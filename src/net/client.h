#ifndef BCCS_NET_CLIENT_H_
#define BCCS_NET_CLIENT_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace bccs {

/// A minimal blocking line client for the bccs wire protocol — the test and
/// benchmark harness's view of the server (tests/net_serve_test.cc,
/// bench/perf_smoke.cc). Deliberately primitive: one socket, blocking I/O
/// with a receive timeout, newline framing. Not used by the server.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { Close(); }
  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects to host:port (dotted IPv4). False + *error on failure.
  bool Connect(const std::string& host, int port, std::string* error);

  bool connected() const { return fd_ >= 0; }

  /// Sends one request line ('\n' appended). False on a broken connection.
  bool SendLine(std::string_view line);

  /// Sends raw bytes exactly as given — lets tests control packetization
  /// (1-byte torn writes, many pipelined requests in one send).
  bool SendRaw(std::string_view bytes);

  /// Reads the next response line (terminator stripped). False on EOF,
  /// error, or timeout (timeout_seconds <= 0 waits indefinitely).
  bool ReadLine(std::string* line, double timeout_seconds = 30.0);

  /// Half-close: shutdown(SHUT_WR) — tells the server EOF while responses
  /// can still be read (the shell-client pattern).
  void CloseSend();

  /// Full close. Abrupt from the server's view if responses are unread —
  /// exactly what the retry tests need.
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  // received bytes past the last returned line
};

}  // namespace bccs

#endif  // BCCS_NET_CLIENT_H_
