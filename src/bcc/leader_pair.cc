#include "bcc/leader_pair.h"

namespace bccs {

LeaderState IdentifyLeader(const LabeledGraph& g, const std::vector<char>& side_mask,
                           VertexId q, std::uint32_t rho, std::uint64_t b,
                           const ButterflyCounts& counts, std::uint64_t side_max,
                           VertexId side_argmax, QueryWorkspace* ws) {
  LeaderState out;
  out.leader = q;
  out.chi = counts.chi[q];

  std::uint64_t bp = side_max / 2;
  if (out.chi > bp) return out;  // the query itself is leader-biased

  // BFS level sets within the side graph, up to rho hops.
  std::vector<std::vector<VertexId>> levels;
  {
    std::vector<char> visited =
        ws != nullptr ? ws->CharPool().Acquire(g.NumVertices()) : std::vector<char>(g.NumVertices(), 0);
    visited[q] = 1;
    std::vector<VertexId> frontier = {q};
    for (std::uint32_t d = 0; d < rho && !frontier.empty(); ++d) {
      std::vector<VertexId> next;
      for (VertexId v : frontier) {
        for (VertexId w : g.Neighbors(v)) {
          if (!side_mask[w] || visited[w]) continue;
          visited[w] = 1;
          next.push_back(w);
        }
      }
      frontier = next;
      levels.push_back(std::move(next));
    }
    if (ws != nullptr) {
      visited[q] = 0;
      for (const auto& level : levels) {
        for (VertexId v : level) visited[v] = 0;
      }
      ws->CharPool().ReleaseClean(std::move(visited));
    }
  }

  while (bp >= b && bp > 0) {
    for (const auto& level : levels) {
      for (VertexId s : level) {
        if (counts.chi[s] >= bp) {
          out.leader = s;
          out.chi = counts.chi[s];
          return out;
        }
      }
    }
    bp /= 2;
  }

  // Fallback: the side's maximum-degree vertex (always satisfies chi >= b
  // when the side passes the BCC butterfly check).
  if (side_argmax != kInvalidVertex && counts.chi[side_argmax] > out.chi) {
    out.leader = side_argmax;
    out.chi = counts.chi[side_argmax];
  }
  return out;
}

}  // namespace bccs
