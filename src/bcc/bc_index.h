#ifndef BCCS_BCC_BC_INDEX_H_
#define BCCS_BCC_BC_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "butterfly/block_cache.h"
#include "butterfly/butterfly_counting.h"
#include "graph/labeled_graph.h"

namespace bccs {

struct SnapshotBundle;    // graph/snapshot.h
struct SourceGraphInfo;   // graph/snapshot.h
struct GraphDelta;        // graph/graph_delta.h

/// Fallback thresholds of BcIndex::ApplyUpdates. A batch is repaired
/// incrementally per affected label / label pair; a label or pair whose
/// update count exceeds its cap takes the scoped rebuild instead (coreness:
/// SubsetCoreness over the one label group; butterflies: CountButterflies
/// over the one pair) — still far from the full-index rebuild.
struct UpdateRepairOptions {
  /// Max intra-label updates per label repaired by level passes; mixed
  /// insert+delete labels always rebuild (see core/core_maintenance.h).
  std::size_t label_incremental_cap = 8;
  /// Max cross-label updates per pair repaired edge-by-edge.
  std::size_t pair_incremental_cap = 8;
};

/// What BcIndex::ApplyUpdates did, for observability and tests.
struct UpdateRepairStats {
  std::size_t labels_touched = 0;      // labels with intra-label updates
  std::size_t labels_incremental = 0;  // repaired by level passes
  std::size_t labels_rebuilt = 0;      // scoped SubsetCoreness rebuild
  std::size_t core_passes = 0;         // level passes across all labels
  std::size_t pairs_touched = 0;       // cached pairs with cross updates
  std::size_t pairs_incremental = 0;   // repaired edge-by-edge
  std::size_t pairs_recounted = 0;     // scoped CountButterflies recount
  std::size_t cross_edges_applied = 0;
};

/// The offline butterfly-core index of Section 6.3.
///
/// Stores, for every vertex, its coreness within its own label group (the
/// delta(v) component) and, per label pair, the butterfly degrees over the
/// full bipartite graph between the two label groups (the chi(v) component).
/// The butterfly component is computed lazily on first use of a label pair
/// and cached, which keeps construction linear for graphs with hundreds of
/// labels while preserving exact per-pair query-time semantics (documented
/// deviation 3 in DESIGN.md).
///
/// The index is share-safe and const-usable: all query entry points are
/// const (the lazy pair cache is logically immutable state behind a sharded
/// block cache), so one index instance — freshly built or reconstructed from
/// a snapshot — can serve every worker thread of a BatchRunner. The coreness
/// arrays live in ArrayRef storage so a snapshot load keeps them as
/// zero-copy views over the mapped file.
///
/// The pair cache is a ButterflyBlockCache: materialized and snapshot-loaded
/// pairs are pinned (never evicted), while lazily faulted pairs live under
/// an optional byte budget (SetPairCacheBudget) with LRU eviction, so a
/// label-rich graph serving a skewed pair mix has bounded memory. Because
/// blocks can be evicted, PairButterflies returns a shared_ptr pin rather
/// than a raw reference — callers hold the pin for as long as they read the
/// counts.
class BcIndex {
 public:
  explicit BcIndex(const LabeledGraph& g);

  /// Coreness of v within its own label group.
  std::uint32_t Coreness(VertexId v) const { return label_coreness_[v]; }

  /// Maximum coreness within a label group.
  std::uint32_t MaxCoreness(Label l) const { return max_core_per_label_[l]; }

  /// Butterfly degrees over the full bipartite graph between label groups
  /// `a` and `b`. Cached after the first call for the pair. Thread-safe:
  /// concurrent batch queries may fault the same pair in (first insert
  /// wins). The returned shared_ptr pins the block — it stays valid even if
  /// the block cache evicts the pair under byte-budget pressure, so hold it
  /// for the duration of the read.
  std::shared_ptr<const ButterflyCounts> PairButterflies(Label a, Label b) const;

  /// Eagerly faults in every cross-label pair whose two label groups are
  /// both non-empty, pinning each entry (exempt from the byte budget, never
  /// evicted). This is what bccs_build runs before saving a snapshot, so a
  /// loaded index answers every pair without computing butterflies.
  void MaterializeAllPairs();

  /// Number of label pairs currently resident in the cache.
  std::size_t CachedPairCount() const;

  /// Visits every resident pair as (a, b, counts) with a < b, in key order.
  /// Iterates over a pinned snapshot of the entries, so `fn` may call back
  /// into the pair cache and concurrent evictions cannot invalidate the
  /// reference mid-visit.
  void ForEachCachedPair(
      const std::function<void(Label, Label, const ButterflyCounts&)>& fn) const;

  /// Pinned snapshot of every resident pair in sorted key order; the
  /// shared_ptrs keep the blocks alive across later evictions (used by
  /// SaveSnapshot, which may run concurrently with serving).
  std::vector<ButterflyBlockCache::Entry> CachedPairEntries() const;

  /// Byte budget for lazily faulted (unpinned) pair blocks; 0 = unbounded.
  /// Logically configuration, not index state, hence const — safe to call on
  /// a shared serving index. ApplyUpdates carries the budget to the repaired
  /// index.
  void SetPairCacheBudget(std::size_t bytes) const;

  /// Hit/miss/eviction/byte counters of the pair block cache.
  BlockCacheStats PairCacheStats() const;

  /// Loads the snapshot at `path` (graph + index, see graph/snapshot.h); on
  /// any load failure (absent, truncated, corrupt, version mismatch, stale
  /// source-graph stamp) builds a fresh index from `g`, materializes all
  /// pairs, and best-effort saves a new snapshot to `path`. `error`, when
  /// non-null, receives the load failure reason (empty when the snapshot
  /// loaded cleanly).
  ///
  /// The overload taking `source` (the identity of the graph file `g` was
  /// read from) rejects snapshots stamped with a different source graph and
  /// stamps `source` into any snapshot it writes.
  ///
  /// When the snapshot loads, the returned bundle's graph is the snapshot's
  /// own (mapped) graph and `g` is ignored — callers must query through
  /// `bundle.graph`, not `g`.
  static SnapshotBundle BuildOrLoad(const LabeledGraph& g, const std::string& path,
                                    std::string* error = nullptr);
  static SnapshotBundle BuildOrLoad(const LabeledGraph& g, const std::string& path,
                                    std::string* error, const SourceGraphInfo& source);

  /// Incrementally repairs this index for an edge-update batch and returns
  /// the repaired index over `updated`, which must be the result of
  /// ApplyGraphDelta(graph(), delta) (or an equal graph that outlives the
  /// returned index). This index is left untouched — epoch swaps keep the
  /// old index serving in-flight queries while the new one is prepared.
  ///
  /// The repaired index answers every query bit-identically to a freshly
  /// built BcIndex(updated): intra-label updates repair only their label's
  /// coreness (core/core_maintenance.h level passes driving KCoreMaintainer,
  /// scoped rebuild past the cap), cross-label updates repair only their
  /// pair's cached butterfly entry (butterfly/butterfly_update.h per-edge
  /// repair, scoped recount past the cap); untouched labels, pairs, and
  /// pairs not yet cached (they fault in lazily against the new graph) cost
  /// nothing beyond the copy.
  std::unique_ptr<BcIndex> ApplyUpdates(const LabeledGraph& updated, const GraphDelta& delta,
                                        const UpdateRepairOptions& opts = {},
                                        UpdateRepairStats* stats = nullptr) const;

  const LabeledGraph& graph() const { return *g_; }

 private:
  friend class SnapshotAccess;  // reconstructs loaded indexes field by field
  friend class ValidateAccess;  // common/validate.h reads raw arrays

  BcIndex() = default;  // snapshot loading only

  const LabeledGraph* g_ = nullptr;
  ArrayRef<std::uint32_t> label_coreness_;
  ArrayRef<std::uint32_t> max_core_per_label_;
  mutable ButterflyBlockCache pair_cache_;
};

}  // namespace bccs

#endif  // BCCS_BCC_BC_INDEX_H_
