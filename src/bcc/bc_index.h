#ifndef BCCS_BCC_BC_INDEX_H_
#define BCCS_BCC_BC_INDEX_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "butterfly/butterfly_counting.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// The offline butterfly-core index of Section 6.3.
///
/// Stores, for every vertex, its coreness within its own label group (the
/// delta(v) component) and, per label pair, the butterfly degrees over the
/// full bipartite graph between the two label groups (the chi(v) component).
/// The butterfly component is computed lazily on first use of a label pair
/// and cached, which keeps construction linear for graphs with hundreds of
/// labels while preserving exact per-pair query-time semantics (documented
/// deviation 3 in DESIGN.md).
class BcIndex {
 public:
  explicit BcIndex(const LabeledGraph& g);

  /// Coreness of v within its own label group.
  std::uint32_t Coreness(VertexId v) const { return label_coreness_[v]; }

  /// Maximum coreness within a label group.
  std::uint32_t MaxCoreness(Label l) const { return max_core_per_label_[l]; }

  /// Butterfly degrees over the full bipartite graph between label groups
  /// `a` and `b`. Cached after the first call for the pair. Thread-safe:
  /// concurrent batch queries may fault the same pair in; the cache is
  /// guarded by a mutex and entries are never invalidated, so returned
  /// references stay valid for the index lifetime.
  const ButterflyCounts& PairButterflies(Label a, Label b);

  const LabeledGraph& graph() const { return *g_; }

 private:
  const LabeledGraph* g_;
  std::vector<std::uint32_t> label_coreness_;
  std::vector<std::uint32_t> max_core_per_label_;
  std::mutex pair_cache_mutex_;
  std::map<std::pair<Label, Label>, ButterflyCounts> pair_cache_;
};

}  // namespace bccs

#endif  // BCCS_BCC_BC_INDEX_H_
