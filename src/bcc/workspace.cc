#include "bcc/workspace.h"

#include "butterfly/peel_counter.h"
#include "common/check.h"

#include <algorithm>

namespace bccs {

QueryWorkspace::QueryWorkspace() = default;
QueryWorkspace::~QueryWorkspace() = default;

DistanceMap* QueryWorkspace::AcquireDistance() {
  if (distance_free_.empty()) distance_free_.push_back(std::make_unique<DistanceMap>());
  distance_used_.push_back(std::move(distance_free_.back()));
  distance_free_.pop_back();
  return distance_used_.back().get();
}

void QueryWorkspace::ReleaseDistance(DistanceMap* dm) {
  for (auto& slot : distance_used_) {
    if (slot.get() == dm) {
      distance_free_.push_back(std::move(slot));
      std::swap(slot, distance_used_.back());
      distance_used_.pop_back();
      return;
    }
  }
  BCCS_CHECK(false) << "ReleaseDistance: unknown DistanceMap";
}

std::vector<VertexId>* QueryWorkspace::AcquireIdVec() {
  if (id_free_.empty()) id_free_.push_back(std::make_unique<std::vector<VertexId>>());
  id_used_.push_back(std::move(id_free_.back()));
  id_free_.pop_back();
  id_used_.back()->clear();
  return id_used_.back().get();
}

void QueryWorkspace::ReleaseIdVec(std::vector<VertexId>* vec) {
  for (auto& slot : id_used_) {
    if (slot.get() == vec) {
      id_free_.push_back(std::move(slot));
      std::swap(slot, id_used_.back());
      id_used_.pop_back();
      return;
    }
  }
  BCCS_CHECK(false) << "ReleaseIdVec: unknown vector";
}

PeelButterflyCounter* QueryWorkspace::AcquirePeelCounter() {
  if (peel_counter_free_.empty()) {
    peel_counter_free_.push_back(std::make_unique<PeelButterflyCounter>());
  }
  peel_counter_used_.push_back(std::move(peel_counter_free_.back()));
  peel_counter_free_.pop_back();
  return peel_counter_used_.back().get();
}

void QueryWorkspace::ReleasePeelCounter(PeelButterflyCounter* pc) {
  for (auto& slot : peel_counter_used_) {
    if (slot.get() == pc) {
      pc->Release();
      peel_counter_free_.push_back(std::move(slot));
      std::swap(slot, peel_counter_used_.back());
      peel_counter_used_.pop_back();
      return;
    }
  }
  BCCS_CHECK(false) << "ReleasePeelCounter: unknown counter";
}

WorkspaceStats QueryWorkspace::Stats() const {
  WorkspaceStats s;
  s.bulk_inits = local_bulk_inits_ + char_pool_.bulk_inits() + u32_zero_pool_.bulk_inits() +
                 u32_inf_pool_.bulk_inits() + u64_zero_pool_.bulk_inits() +
                 double_inf_pool_.bulk_inits() + core_scratch_.bulk_inits() +
                 peel_queue_.bulk_inits();
  s.buffer_acquires = char_pool_.acquires() + u32_zero_pool_.acquires() +
                      u32_inf_pool_.acquires() + u64_zero_pool_.acquires() +
                      double_inf_pool_.acquires();
  s.peel_resets = peel_queue_.resets();
  for (const auto& dm : distance_free_) {
    s.bulk_inits += dm->bulk_inits();
    s.distance_resets += dm->resets();
  }
  for (const auto& dm : distance_used_) {
    s.bulk_inits += dm->bulk_inits();
    s.distance_resets += dm->resets();
  }
  return s;
}

}  // namespace bccs
