#ifndef BCCS_BCC_FIND_G0_H_
#define BCCS_BCC_FIND_G0_H_

#include <cstdint>
#include <vector>

#include "bcc/bcc_types.h"
#include "bcc/workspace.h"
#include "butterfly/butterfly_counting.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// Result of the paper's Algorithm 2: the maximal connected (k1, k2, b)-BCC
/// G0 containing the query pair.
struct G0Result {
  bool found = false;
  /// Members of the left k1-core component containing q_l, sorted.
  std::vector<VertexId> left;
  /// Members of the right k2-core component containing q_r, sorted.
  std::vector<VertexId> right;
  /// Butterfly degrees over B(left, right), from the Algorithm 3 run.
  ButterflyCounts counts;
  /// Resolved core parameters (auto parameters replaced by query coreness).
  std::uint32_t k1 = 0;
  std::uint32_t k2 = 0;
};

/// Algorithm 2 on the whole graph. Increments
/// stats->butterfly_counting_calls and accumulates stats->butterfly_seconds
/// for the embedded Algorithm 3 run. `stats` may be null.
///
/// With a workspace, the core/component/butterfly scratch comes from its
/// pools and `counts.chi` of the result is a pooled buffer — the caller
/// must hand the finished result to ReleaseG0Counts(ws, &g0) (results are
/// identical with or without a workspace).
G0Result FindG0(const LabeledGraph& g, const BccQuery& q, const BccParams& p,
                SearchStats* stats, QueryWorkspace* ws = nullptr);

/// Algorithm 2 restricted to the vertices enabled in `restrict_to` (the L2P
/// local candidate G_t). Pass null for no restriction.
G0Result FindG0Restricted(const LabeledGraph& g, const BccQuery& q, const BccParams& p,
                          const std::vector<char>* restrict_to, SearchStats* stats,
                          QueryWorkspace* ws = nullptr);

/// Returns a workspace-pooled `g0->counts.chi` buffer to the pool (no-op for
/// results produced without a workspace). `g0->left` / `g0->right` must
/// still describe the counted members.
void ReleaseG0Counts(QueryWorkspace* ws, G0Result* g0);

}  // namespace bccs

#endif  // BCCS_BCC_FIND_G0_H_
