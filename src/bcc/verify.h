#ifndef BCCS_BCC_VERIFY_H_
#define BCCS_BCC_VERIFY_H_

#include <string>
#include <vector>

#include "bcc/bcc_types.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// Outcome of checking a community against Definition 4 / Problem 1.
enum class BccViolation {
  kNone,              // valid connected (k1,k2,b)-BCC containing the query
  kEmpty,             // empty community
  kMissingQuery,      // a query vertex is not a member
  kWrongLabels,       // members carry labels other than the two query labels
  kDisconnected,      // the induced subgraph is not connected
  kLeftCoreViolated,  // some left vertex has same-label induced degree < k1
  kRightCoreViolated,
  kButterflyViolated,  // no leader pair with chi >= b
};

const char* ToString(BccViolation v);

/// Checks every condition of the (k1, k2, b)-BCC model plus participation
/// and connectivity (Problem 1 conditions 1-2). `p.k1` and `p.k2` must be
/// resolved (nonzero).
BccViolation VerifyBcc(const LabeledGraph& g, const Community& c, const BccQuery& q,
                       const BccParams& p);

/// Multi-label variant (Definition 8): every group a k_i-core, labels
/// pairwise distinct, cross-group connectivity of the label meta-graph.
enum class MbccViolation {
  kNone,
  kEmpty,
  kMissingQuery,
  kWrongLabels,
  kDisconnected,
  kCoreViolated,
  kMetaDisconnected,  // cross-group connectivity (Definition 7) fails
};

const char* ToString(MbccViolation v);

MbccViolation VerifyMbcc(const LabeledGraph& g, const Community& c,
                         const std::vector<VertexId>& queries,
                         const std::vector<std::uint32_t>& ks, std::uint64_t b);

/// Diameter of the subgraph induced by `c` (BFS from every member); used by
/// the approximation-ratio tests. Returns kInfDistance when disconnected.
std::uint32_t CommunityDiameter(const LabeledGraph& g, const Community& c);

/// Query distance dist(H, Q) of the induced subgraph (Definition 5).
std::uint32_t CommunityQueryDistance(const LabeledGraph& g, const Community& c,
                                     const std::vector<VertexId>& queries);

}  // namespace bccs

#endif  // BCCS_BCC_VERIFY_H_
