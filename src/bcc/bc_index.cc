#include "bcc/bc_index.h"

#include <algorithm>

#include "butterfly/butterfly_update.h"
#include "core/core_decomposition.h"
#include "core/core_maintenance.h"
#include "graph/graph_delta.h"

namespace bccs {

BcIndex::BcIndex(const LabeledGraph& g) : g_(&g), label_coreness_(LabelCoreness(g)) {
  std::vector<std::uint32_t> max_core(g.NumLabels(), 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto& best = max_core[g.LabelOf(v)];
    best = std::max(best, label_coreness_[v]);
  }
  max_core_per_label_ = std::move(max_core);
}

const ButterflyCounts& BcIndex::PairButterflies(Label a, Label b) const {
  if (a > b) std::swap(a, b);
  auto key = std::make_pair(a, b);
  {
    MutexLock lock(pair_cache_mutex_);
    auto it = pair_cache_.find(key);
    if (it != pair_cache_.end()) return it->second;
  }

  // Compute outside the lock so cached lookups of other pairs never block
  // behind a cold count; concurrent faults of the same pair waste one
  // recount, and the first insert wins (map nodes are reference-stable).
  auto left = g_->VerticesWithLabel(a);
  auto right = g_->VerticesWithLabel(b);
  std::vector<char> in_left(g_->NumVertices(), 0), in_right(g_->NumVertices(), 0);
  for (VertexId v : left) in_left[v] = 1;
  for (VertexId v : right) in_right[v] = 1;
  ButterflyCounts counts =
      CountButterflies(*g_, {left.begin(), left.end()}, {right.begin(), right.end()}, in_left,
                       in_right);
  MutexLock lock(pair_cache_mutex_);
  auto [pos, inserted] = pair_cache_.emplace(key, std::move(counts));
  return pos->second;
}

void BcIndex::MaterializeAllPairs() {
  const std::size_t num_labels = g_->NumLabels();
  for (Label a = 0; a < num_labels; ++a) {
    if (g_->VerticesWithLabel(a).empty()) continue;
    for (Label b = a + 1; b < num_labels; ++b) {
      if (g_->VerticesWithLabel(b).empty()) continue;
      PairButterflies(a, b);
    }
  }
}

std::size_t BcIndex::CachedPairCount() const {
  MutexLock lock(pair_cache_mutex_);
  return pair_cache_.size();
}

void BcIndex::ForEachCachedPair(
    const std::function<void(Label, Label, const ButterflyCounts&)>& fn) const {
  MutexLock lock(pair_cache_mutex_);
  for (const auto& [key, counts] : pair_cache_) fn(key.first, key.second, counts);
}

namespace {

/// One label's (or one pair's) slice of the delta.
struct EdgeBucket {
  std::vector<Edge> inserts;
  std::vector<Edge> deletes;
};

/// Splits the delta into per-label intra-label buckets (they repair
/// coreness) and per-pair cross-label buckets (they repair cached
/// butterflies) — the two effects are disjoint by construction: coreness is
/// computed within a label group, pair butterflies over cross edges only.
void BucketDelta(const LabeledGraph& g, const GraphDelta& delta,
                 std::map<Label, EdgeBucket>* intra,
                 std::map<std::pair<Label, Label>, EdgeBucket>* cross) {
  auto route = [&](const Edge& e, bool insert) {
    const Label a = g.LabelOf(e.u);
    const Label b = g.LabelOf(e.v);
    EdgeBucket& bucket =
        a == b ? (*intra)[a] : (*cross)[std::minmax(a, b)];
    (insert ? bucket.inserts : bucket.deletes).push_back(e);
  };
  for (const Edge& e : delta.inserts) route(e, true);
  for (const Edge& e : delta.deletes) route(e, false);
}

}  // namespace

std::unique_ptr<BcIndex> BcIndex::ApplyUpdates(const LabeledGraph& updated,
                                               const GraphDelta& delta,
                                               const UpdateRepairOptions& opts,
                                               UpdateRepairStats* stats) const {
  UpdateRepairStats local;
  UpdateRepairStats& st = stats != nullptr ? *stats : local;
  st = UpdateRepairStats{};

  std::map<Label, EdgeBucket> intra;
  std::map<std::pair<Label, Label>, EdgeBucket> cross;
  BucketDelta(*g_, delta, &intra, &cross);

  // Coreness: copy, then patch only the touched labels.
  std::vector<std::uint32_t> coreness(label_coreness_.begin(), label_coreness_.end());
  std::vector<std::uint32_t> max_core(max_core_per_label_.begin(),
                                      max_core_per_label_.end());
  for (const auto& [label, bucket] : intra) {
    ++st.labels_touched;
    const auto members = updated.VerticesWithLabel(label);
    const LabelCorenessRepair repair =
        RepairLabelCoreness(updated, members, bucket.inserts, bucket.deletes,
                            opts.label_incremental_cap, &coreness);
    repair.rebuilt ? ++st.labels_rebuilt : ++st.labels_incremental;
    st.core_passes += repair.passes;
    std::uint32_t best = 0;
    for (VertexId v : members) best = std::max(best, coreness[v]);
    max_core[label] = best;
  }

  // Pair cache: copy every entry, then patch only the touched cached pairs.
  // Touched pairs that were never cached stay uncached — they fault in
  // lazily against the updated graph on first use.
  std::map<std::pair<Label, Label>, ButterflyCounts> pairs;
  {
    MutexLock lock(pair_cache_mutex_);
    pairs = pair_cache_;
  }
  for (const auto& [key, bucket] : cross) {
    auto it = pairs.find(key);
    if (it == pairs.end()) continue;
    ++st.pairs_touched;
    const PairButterflyRepair repair = RepairPairButterflies(
        *g_, updated, key.first, key.second, bucket.inserts, bucket.deletes,
        opts.pair_incremental_cap, &it->second);
    repair.recounted ? ++st.pairs_recounted : ++st.pairs_incremental;
    st.cross_edges_applied += repair.edges_applied;
  }

  std::unique_ptr<BcIndex> out(new BcIndex());
  out->g_ = &updated;
  out->label_coreness_ = std::move(coreness);
  out->max_core_per_label_ = std::move(max_core);
  {
    MutexLock lock(out->pair_cache_mutex_);
    out->pair_cache_ = std::move(pairs);
  }
  return out;
}

}  // namespace bccs
