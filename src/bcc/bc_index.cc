#include "bcc/bc_index.h"

#include <algorithm>
#include <map>
#include <utility>

#include "butterfly/butterfly_update.h"
#include "core/core_decomposition.h"
#include "core/core_maintenance.h"
#include "graph/graph_delta.h"

namespace bccs {

BcIndex::BcIndex(const LabeledGraph& g) : g_(&g), label_coreness_(LabelCoreness(g)) {
  std::vector<std::uint32_t> max_core(g.NumLabels(), 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto& best = max_core[g.LabelOf(v)];
    best = std::max(best, label_coreness_[v]);
  }
  max_core_per_label_ = std::move(max_core);
}

namespace {

ButterflyCounts ComputePairButterflies(const LabeledGraph& g, Label a, Label b) {
  auto left = g.VerticesWithLabel(a);
  auto right = g.VerticesWithLabel(b);
  std::vector<char> in_left(g.NumVertices(), 0), in_right(g.NumVertices(), 0);
  for (VertexId v : left) in_left[v] = 1;
  for (VertexId v : right) in_right[v] = 1;
  return CountButterflies(g, {left.begin(), left.end()}, {right.begin(), right.end()}, in_left,
                          in_right);
}

}  // namespace

std::shared_ptr<const ButterflyCounts> BcIndex::PairButterflies(Label a, Label b) const {
  if (a > b) std::swap(a, b);
  if (auto hit = pair_cache_.Lookup(a, b)) return hit;

  // Compute outside any lock so cached lookups of other pairs never block
  // behind a cold count; concurrent faults of the same pair waste one
  // recount, and the first insert wins.
  return pair_cache_.Insert(a, b, ComputePairButterflies(*g_, a, b), /*pin=*/false);
}

void BcIndex::MaterializeAllPairs() {
  const std::size_t num_labels = g_->NumLabels();
  for (Label a = 0; a < num_labels; ++a) {
    if (g_->VerticesWithLabel(a).empty()) continue;
    for (Label b = a + 1; b < num_labels; ++b) {
      if (g_->VerticesWithLabel(b).empty()) continue;
      if (auto resident = pair_cache_.Peek(a, b)) {
        // Promote an earlier lazy fault-in to pinned.
        pair_cache_.InsertShared(a, b, std::move(resident), /*pin=*/true);
      } else {
        pair_cache_.Insert(a, b, ComputePairButterflies(*g_, a, b), /*pin=*/true);
      }
    }
  }
}

std::size_t BcIndex::CachedPairCount() const { return pair_cache_.EntryCount(); }

void BcIndex::ForEachCachedPair(
    const std::function<void(Label, Label, const ButterflyCounts&)>& fn) const {
  for (const auto& entry : pair_cache_.Entries()) {
    fn(entry.a, entry.b, *entry.counts);
  }
}

std::vector<ButterflyBlockCache::Entry> BcIndex::CachedPairEntries() const {
  return pair_cache_.Entries();
}

void BcIndex::SetPairCacheBudget(std::size_t bytes) const { pair_cache_.SetBudget(bytes); }

BlockCacheStats BcIndex::PairCacheStats() const { return pair_cache_.Stats(); }

namespace {

/// One label's (or one pair's) slice of the delta.
struct EdgeBucket {
  std::vector<Edge> inserts;
  std::vector<Edge> deletes;
};

/// Splits the delta into per-label intra-label buckets (they repair
/// coreness) and per-pair cross-label buckets (they repair cached
/// butterflies) — the two effects are disjoint by construction: coreness is
/// computed within a label group, pair butterflies over cross edges only.
void BucketDelta(const LabeledGraph& g, const GraphDelta& delta,
                 std::map<Label, EdgeBucket>* intra,
                 std::map<std::pair<Label, Label>, EdgeBucket>* cross) {
  auto route = [&](const Edge& e, bool insert) {
    const Label a = g.LabelOf(e.u);
    const Label b = g.LabelOf(e.v);
    EdgeBucket& bucket =
        a == b ? (*intra)[a] : (*cross)[std::minmax(a, b)];
    (insert ? bucket.inserts : bucket.deletes).push_back(e);
  };
  for (const Edge& e : delta.inserts) route(e, true);
  for (const Edge& e : delta.deletes) route(e, false);
}

}  // namespace

std::unique_ptr<BcIndex> BcIndex::ApplyUpdates(const LabeledGraph& updated,
                                               const GraphDelta& delta,
                                               const UpdateRepairOptions& opts,
                                               UpdateRepairStats* stats) const {
  UpdateRepairStats local;
  UpdateRepairStats& st = stats != nullptr ? *stats : local;
  st = UpdateRepairStats{};

  std::map<Label, EdgeBucket> intra;
  std::map<std::pair<Label, Label>, EdgeBucket> cross;
  BucketDelta(*g_, delta, &intra, &cross);

  // Coreness: copy, then patch only the touched labels.
  std::vector<std::uint32_t> coreness(label_coreness_.begin(), label_coreness_.end());
  std::vector<std::uint32_t> max_core(max_core_per_label_.begin(),
                                      max_core_per_label_.end());
  for (const auto& [label, bucket] : intra) {
    ++st.labels_touched;
    const auto members = updated.VerticesWithLabel(label);
    const LabelCorenessRepair repair =
        RepairLabelCoreness(updated, members, bucket.inserts, bucket.deletes,
                            opts.label_incremental_cap, &coreness);
    repair.rebuilt ? ++st.labels_rebuilt : ++st.labels_incremental;
    st.core_passes += repair.passes;
    std::uint32_t best = 0;
    for (VertexId v : members) best = std::max(best, coreness[v]);
    max_core[label] = best;
  }

  std::unique_ptr<BcIndex> out(new BcIndex());
  out->g_ = &updated;
  out->label_coreness_ = std::move(coreness);
  out->max_core_per_label_ = std::move(max_core);

  // Pair cache: carry every resident block into the new index's cache, then
  // patch only the touched cached pairs. Untouched blocks are shared by
  // shared_ptr across the two epochs (zero copy); touched blocks are cloned
  // and repaired in the clone so the old index keeps serving in-flight
  // queries bit-identically. Touched pairs that were never cached stay
  // uncached — they fault in lazily against the updated graph on first use.
  // Budget and cumulative counters carry over so stream-level serving stats
  // survive the epoch swap.
  out->pair_cache_.SetBudget(pair_cache_.budget());
  out->pair_cache_.CarryCountersFrom(pair_cache_);
  for (const auto& entry : pair_cache_.Entries()) {
    const auto key = std::make_pair(entry.a, entry.b);
    auto it = cross.find(key);
    if (it == cross.end()) {
      out->pair_cache_.InsertShared(entry.a, entry.b, entry.counts, entry.pinned);
      continue;
    }
    ++st.pairs_touched;
    ButterflyCounts patched = *entry.counts;
    const PairButterflyRepair repair = RepairPairButterflies(
        *g_, updated, entry.a, entry.b, it->second.inserts, it->second.deletes,
        opts.pair_incremental_cap, &patched);
    repair.recounted ? ++st.pairs_recounted : ++st.pairs_incremental;
    st.cross_edges_applied += repair.edges_applied;
    out->pair_cache_.Insert(entry.a, entry.b, std::move(patched), entry.pinned);
  }
  return out;
}

}  // namespace bccs
