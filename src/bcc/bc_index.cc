#include "bcc/bc_index.h"

#include <algorithm>

#include "core/core_decomposition.h"

namespace bccs {

BcIndex::BcIndex(const LabeledGraph& g) : g_(&g), label_coreness_(LabelCoreness(g)) {
  std::vector<std::uint32_t> max_core(g.NumLabels(), 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto& best = max_core[g.LabelOf(v)];
    best = std::max(best, label_coreness_[v]);
  }
  max_core_per_label_ = std::move(max_core);
}

const ButterflyCounts& BcIndex::PairButterflies(Label a, Label b) const {
  if (a > b) std::swap(a, b);
  auto key = std::make_pair(a, b);
  {
    std::lock_guard<std::mutex> lock(pair_cache_mutex_);
    auto it = pair_cache_.find(key);
    if (it != pair_cache_.end()) return it->second;
  }

  // Compute outside the lock so cached lookups of other pairs never block
  // behind a cold count; concurrent faults of the same pair waste one
  // recount, and the first insert wins (map nodes are reference-stable).
  auto left = g_->VerticesWithLabel(a);
  auto right = g_->VerticesWithLabel(b);
  std::vector<char> in_left(g_->NumVertices(), 0), in_right(g_->NumVertices(), 0);
  for (VertexId v : left) in_left[v] = 1;
  for (VertexId v : right) in_right[v] = 1;
  ButterflyCounts counts =
      CountButterflies(*g_, {left.begin(), left.end()}, {right.begin(), right.end()}, in_left,
                       in_right);
  std::lock_guard<std::mutex> lock(pair_cache_mutex_);
  auto [pos, inserted] = pair_cache_.emplace(key, std::move(counts));
  return pos->second;
}

void BcIndex::MaterializeAllPairs() {
  const std::size_t num_labels = g_->NumLabels();
  for (Label a = 0; a < num_labels; ++a) {
    if (g_->VerticesWithLabel(a).empty()) continue;
    for (Label b = a + 1; b < num_labels; ++b) {
      if (g_->VerticesWithLabel(b).empty()) continue;
      PairButterflies(a, b);
    }
  }
}

std::size_t BcIndex::CachedPairCount() const {
  std::lock_guard<std::mutex> lock(pair_cache_mutex_);
  return pair_cache_.size();
}

void BcIndex::ForEachCachedPair(
    const std::function<void(Label, Label, const ButterflyCounts&)>& fn) const {
  std::lock_guard<std::mutex> lock(pair_cache_mutex_);
  for (const auto& [key, counts] : pair_cache_) fn(key.first, key.second, counts);
}

}  // namespace bccs
