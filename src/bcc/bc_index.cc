#include "bcc/bc_index.h"

#include <algorithm>

#include "core/core_decomposition.h"

namespace bccs {

BcIndex::BcIndex(const LabeledGraph& g)
    : g_(&g), label_coreness_(LabelCoreness(g)), max_core_per_label_(g.NumLabels(), 0) {
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto& best = max_core_per_label_[g.LabelOf(v)];
    best = std::max(best, label_coreness_[v]);
  }
}

const ButterflyCounts& BcIndex::PairButterflies(Label a, Label b) {
  if (a > b) std::swap(a, b);
  auto key = std::make_pair(a, b);
  {
    std::lock_guard<std::mutex> lock(pair_cache_mutex_);
    auto it = pair_cache_.find(key);
    if (it != pair_cache_.end()) return it->second;
  }

  // Compute outside the lock so cached lookups of other pairs never block
  // behind a cold count; concurrent faults of the same pair waste one
  // recount, and the first insert wins (map nodes are reference-stable).
  auto left = g_->VerticesWithLabel(a);
  auto right = g_->VerticesWithLabel(b);
  std::vector<char> in_left(g_->NumVertices(), 0), in_right(g_->NumVertices(), 0);
  for (VertexId v : left) in_left[v] = 1;
  for (VertexId v : right) in_right[v] = 1;
  ButterflyCounts counts =
      CountButterflies(*g_, {left.begin(), left.end()}, {right.begin(), right.end()}, in_left,
                       in_right);
  std::lock_guard<std::mutex> lock(pair_cache_mutex_);
  auto [pos, inserted] = pair_cache_.emplace(key, std::move(counts));
  return pos->second;
}

}  // namespace bccs
