#ifndef BCCS_BCC_MBCC_H_
#define BCCS_BCC_MBCC_H_

#include <cstdint>
#include <vector>

#include "bcc/bcc_types.h"
#include "bcc/workspace.h"
#include "graph/labeled_graph.h"

namespace bccs {

/// Query of the Section 7 multi-labeled BCC model: m >= 2 vertices with
/// pairwise-distinct labels.
struct MbccQuery {
  std::vector<VertexId> vertices;
};

/// Parameters of the mBCC model. `k` is per query group (empty or zero
/// entries mean "auto" = the query's coreness within its label group);
/// `b` is the shared butterfly threshold of Definition 7/8.
struct MbccParams {
  std::vector<std::uint32_t> k;
  std::uint64_t b = 1;
};

/// Paper's Algorithm 9: finds a connected mBCC containing every query with a
/// small diameter by greedy farthest-vertex peeling. Group cores are
/// maintained per label; cross-group connectivity (Definition 7) is tracked
/// over the label meta-graph with union-find; leader pairs are maintained per
/// label pair with Algorithms 6 and 7 when opts.use_leader_pair is set.
/// For m = 2 the model (and the result) coincides with the two-label BCC.
///
/// When `restrict_to` is non-null, the whole search is confined to the
/// enabled vertices (used by the L2P local extension); auto core parameters
/// then resolve within the restriction.
///
/// Like PeelToBcc, the engine runs on an epoch-stamped workspace (bucketed
/// farthest-vertex queue, pooled scratch); pass a warm `ws` for
/// allocation-free steady-state execution, or nullptr for a scoped one.
Community MbccSearch(const LabeledGraph& g, const MbccQuery& q, const MbccParams& p,
                     const SearchOptions& opts, SearchStats* stats = nullptr,
                     const std::vector<char>* restrict_to = nullptr,
                     QueryWorkspace* ws = nullptr);

/// The resolved per-group core parameters (auto entries replaced by query
/// coreness). Exposed for verification in tests and benchmarks. `ws`
/// (optional) supplies the coreness scratch for allocation-free resolution.
std::vector<std::uint32_t> ResolveMbccCores(const LabeledGraph& g, const MbccQuery& q,
                                            const MbccParams& p,
                                            QueryWorkspace* ws = nullptr);

}  // namespace bccs

#endif  // BCCS_BCC_MBCC_H_
