#include "bcc/candidate.h"

#include "common/check.h"

#include <algorithm>

namespace bccs {

GroupedCandidate::GroupedCandidate(const LabeledGraph& g,
                                   std::vector<std::vector<VertexId>> groups,
                                   std::vector<std::uint32_t> ks, QueryWorkspace* ws)
    : g_(&g), ws_(ws), ks_(std::move(ks)), members_(std::move(groups)) {
  BCCS_CHECK_EQ(members_.size(), ks_.size());
  const std::size_t n = g.NumVertices();
  if (ws_ != nullptr) {
    alive_ = ws_->CharPool().Acquire(n);
    group_of_ = ws_->U32InfPool().Acquire(n);  // default kNoGroup
    group_deg_ = ws_->U32ZeroPool().Acquire(n);
    queued_ = ws_->CharPool().Acquire(n);
    group_masks_.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      group_masks_.push_back(ws_->CharPool().Acquire(n));
    }
  } else {
    alive_.assign(n, 0);
    group_of_.assign(n, kNoGroup);
    group_deg_.assign(n, 0);
    queued_.assign(n, 0);
    group_masks_.assign(members_.size(), std::vector<char>(n, 0));
  }
  for (std::uint32_t gi = 0; gi < members_.size(); ++gi) {
    for (VertexId v : members_[gi]) {
      BCCS_DCHECK_EQ(group_of_[v], kNoGroup) << "vertex in two candidate groups";
      group_of_[v] = gi;
      alive_[v] = 1;
      group_masks_[gi][v] = 1;
      ++num_alive_;
    }
  }
  for (std::uint32_t gi = 0; gi < members_.size(); ++gi) {
    for (VertexId v : members_[gi]) {
      std::uint32_t d = 0;
      for (VertexId w : g.Neighbors(v)) d += group_masks_[gi][w];
      group_deg_[v] = d;
    }
  }
}

GroupedCandidate::~GroupedCandidate() {
  if (ws_ == nullptr) return;
  // Restore the pool defaults for exactly the entries this candidate wrote:
  // all state is confined to the initial members (queued_ is kept all-zero
  // by RemoveAndMaintain itself).
  for (std::uint32_t gi = 0; gi < members_.size(); ++gi) {
    for (VertexId v : members_[gi]) {
      alive_[v] = 0;
      group_masks_[gi][v] = 0;
      group_of_[v] = kNoGroup;
      group_deg_[v] = 0;
    }
  }
  ws_->CharPool().ReleaseClean(std::move(alive_));
  ws_->U32InfPool().ReleaseClean(std::move(group_of_));
  ws_->U32ZeroPool().ReleaseClean(std::move(group_deg_));
  ws_->CharPool().ReleaseClean(std::move(queued_));
  for (auto& mask : group_masks_) ws_->CharPool().ReleaseClean(std::move(mask));
}

std::vector<VertexId> GroupedCandidate::AliveVertices() const {
  std::vector<VertexId> out;
  out.reserve(num_alive_);
  for (std::uint32_t gi = 0; gi < members_.size(); ++gi) {
    for (VertexId v : members_[gi]) {
      if (alive_[v]) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bccs
