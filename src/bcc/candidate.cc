#include "bcc/candidate.h"

#include <cassert>

namespace bccs {

GroupedCandidate::GroupedCandidate(const LabeledGraph& g,
                                   std::vector<std::vector<VertexId>> groups,
                                   std::vector<std::uint32_t> ks)
    : g_(&g),
      ks_(std::move(ks)),
      members_(std::move(groups)),
      alive_(g.NumVertices(), 0),
      group_of_(g.NumVertices(), kNoGroup),
      group_deg_(g.NumVertices(), 0),
      queued_(g.NumVertices(), 0) {
  assert(members_.size() == ks_.size());
  group_masks_.assign(members_.size(), std::vector<char>(g.NumVertices(), 0));
  for (std::uint32_t gi = 0; gi < members_.size(); ++gi) {
    for (VertexId v : members_[gi]) {
      assert(group_of_[v] == kNoGroup);
      group_of_[v] = gi;
      alive_[v] = 1;
      group_masks_[gi][v] = 1;
      ++num_alive_;
    }
  }
  for (std::uint32_t gi = 0; gi < members_.size(); ++gi) {
    for (VertexId v : members_[gi]) {
      std::uint32_t d = 0;
      for (VertexId w : g.Neighbors(v)) d += group_masks_[gi][w];
      group_deg_[v] = d;
    }
  }
}

std::vector<VertexId> GroupedCandidate::AliveVertices() const {
  std::vector<VertexId> out;
  out.reserve(num_alive_);
  for (VertexId v = 0; v < alive_.size(); ++v) {
    if (alive_[v]) out.push_back(v);
  }
  return out;
}

}  // namespace bccs
