#include "bcc/find_g0.h"

#include <algorithm>

#include "core/core_decomposition.h"
#include "eval/timer.h"

namespace bccs {
namespace {

// Vertices of the query's label group, optionally intersected with a
// restriction mask.
std::vector<VertexId> LabelCandidates(const LabeledGraph& g, VertexId q,
                                      const std::vector<char>* restrict_to) {
  std::vector<VertexId> out;
  for (VertexId v : g.VerticesWithLabel(g.LabelOf(q))) {
    if (restrict_to == nullptr || (*restrict_to)[v]) out.push_back(v);
  }
  return out;
}

}  // namespace

G0Result FindG0Restricted(const LabeledGraph& g, const BccQuery& q, const BccParams& p,
                          const std::vector<char>* restrict_to, SearchStats* stats) {
  SearchStats local;
  if (stats == nullptr) stats = &local;
  G0Result out;
  if (q.ql >= g.NumVertices() || q.qr >= g.NumVertices()) return out;
  if (g.LabelOf(q.ql) == g.LabelOf(q.qr)) return out;

  std::vector<VertexId> cand_left = LabelCandidates(g, q.ql, restrict_to);
  std::vector<VertexId> cand_right = LabelCandidates(g, q.qr, restrict_to);
  if (cand_left.empty() || cand_right.empty()) return out;

  // Resolve auto core parameters with the query coreness inside its group
  // (paper Section 3.5).
  out.k1 = p.k1;
  out.k2 = p.k2;
  if (out.k1 == 0) out.k1 = SubsetCoreness(g, cand_left)[q.ql];
  if (out.k2 == 0) out.k2 = SubsetCoreness(g, cand_right)[q.qr];
  if (out.k1 == 0 || out.k2 == 0) return out;  // queries have no usable core

  // Left and right cores, restricted to the component containing the query.
  std::vector<VertexId> left_core = KCoreOfSubset(g, cand_left, out.k1);
  out.left = ComponentContaining(g, left_core, q.ql);
  if (out.left.empty()) return out;
  std::vector<VertexId> right_core = KCoreOfSubset(g, cand_right, out.k2);
  out.right = ComponentContaining(g, right_core, q.qr);
  if (out.right.empty()) return out;

  // Butterfly check over B = cross edges between the two cores.
  std::vector<char> in_left(g.NumVertices(), 0), in_right(g.NumVertices(), 0);
  for (VertexId v : out.left) in_left[v] = 1;
  for (VertexId v : out.right) in_right[v] = 1;
  {
    ScopedAccumulator t(&stats->butterfly_seconds);
    out.counts = CountButterflies(g, out.left, out.right, in_left, in_right);
  }
  ++stats->butterfly_counting_calls;
  if (out.counts.max_left < p.b || out.counts.max_right < p.b) return out;

  out.found = true;
  return out;
}

G0Result FindG0(const LabeledGraph& g, const BccQuery& q, const BccParams& p,
                SearchStats* stats) {
  return FindG0Restricted(g, q, p, nullptr, stats);
}

}  // namespace bccs
